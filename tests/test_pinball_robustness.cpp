//===- tests/test_pinball_robustness.cpp - Corrupted-pinball handling ---------===//
//
// Pinballs travel between machines (developer to developer, customer to
// vendor); loading one must fail cleanly, never crash, on damaged files.
//
// These tests target the *parsers*, so they load with Verify=false: with
// verification on the manifest catches the edit first (that layer is covered
// by tests/test_fault_injection.cpp's corruption matrix).
//
//===----------------------------------------------------------------------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace drdebug;
using namespace drdebug::testutil;
namespace fs = std::filesystem;

namespace {

class PinballRobustness : public ::testing::Test {
protected:
  fs::path Dir;

  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("drdebug_robust_" + std::to_string(::getpid()));
    fs::remove_all(Dir);
    Program P = assembleOrDie(".data g 0\n"
                              ".func main\n"
                              "  sysrand r1\n  sta r1, @g\n"
                              "  halt\n.endfunc\n");
    RoundRobinScheduler Sched(1);
    LogResult Log = Logger::logWholeProgram(P, Sched);
    std::string Error;
    ASSERT_TRUE(Log.Pb.save(Dir.string(), Error)) << Error;
  }
  void TearDown() override { fs::remove_all(Dir); }

  void corrupt(const char *File, const std::string &Content) {
    std::ofstream OS(Dir / File, std::ios::trunc);
    OS << Content;
  }
  void truncate(const char *File) { corrupt(File, ""); }

  bool loads(std::string *ErrorOut = nullptr, bool Verify = false) {
    Pinball Pb;
    std::string Error;
    PinballLoadOptions Opts;
    Opts.Verify = Verify;
    bool Ok = Pb.load(Dir.string(), Error, Opts);
    if (ErrorOut)
      *ErrorOut = Error;
    return Ok;
  }
};

TEST_F(PinballRobustness, IntactPinballLoadsAndReplays) {
  Pinball Pb;
  std::string Error;
  ASSERT_TRUE(Pb.load(Dir.string(), Error)) << Error; // verification on
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_FALSE(Rep.divergence());
}

TEST_F(PinballRobustness, MissingFileFails) {
  fs::remove(Dir / "schedule.txt");
  std::string Error;
  EXPECT_FALSE(loads(&Error));
  EXPECT_NE(Error.find("schedule.txt"), std::string::npos) << Error;
}

TEST_F(PinballRobustness, GarbageStateFails) {
  corrupt("state.txt", "not a machine state at all");
  std::string Error;
  EXPECT_FALSE(loads(&Error));
  EXPECT_NE(Error.find("machine state"), std::string::npos) << Error;
}

TEST_F(PinballRobustness, TruncatedStateFails) {
  corrupt("state.txt", "threads 2\nthread 0 0 0 0 0 0 1 2 3"); // cut short
  EXPECT_FALSE(loads());
}

TEST_F(PinballRobustness, BadScheduleEventKindFails) {
  corrupt("schedule.txt", "s 0 3\nz 9\n");
  std::string Error;
  EXPECT_FALSE(loads(&Error));
  EXPECT_NE(Error.find("kind"), std::string::npos) << Error;
}

TEST_F(PinballRobustness, TruncatedScheduleRecordFails) {
  corrupt("schedule.txt", "s 0\n");
  EXPECT_FALSE(loads());
}

TEST_F(PinballRobustness, BadInjectionHeaderFails) {
  corrupt("injections.txt", "inject 0 0\n");
  EXPECT_FALSE(loads());
}

TEST_F(PinballRobustness, NonInjectTagInInjectionsFails) {
  corrupt("injections.txt", "eject 0 0 0 0 0\n");
  std::string Error;
  EXPECT_FALSE(loads(&Error));
}

TEST_F(PinballRobustness, PostSaveEditIsCaughtByTheManifest) {
  // The same edit the parser tests sneak past with Verify=false is exactly
  // what default verification exists to catch.
  corrupt("state.txt", "not a machine state at all");
  std::string Error;
  EXPECT_FALSE(loads(&Error, /*Verify=*/true));
  EXPECT_NE(Error.find("state.txt"), std::string::npos) << Error;
}

TEST_F(PinballRobustness, CorruptProgramFailsAtReplayerConstruction) {
  corrupt("program.asm", ".func main\n  frobnicate\n.endfunc\n");
  Pinball Pb;
  std::string Error;
  PinballLoadOptions Opts;
  Opts.Verify = false;
  ASSERT_TRUE(Pb.load(Dir.string(), Error, Opts)) << Error; // files parse fine
  Replayer Rep(Pb);
  EXPECT_FALSE(Rep.valid());
  EXPECT_NE(Rep.error().find("frobnicate"), std::string::npos)
      << Rep.error();
}

TEST_F(PinballRobustness, EmptyMetaIsTolerated) {
  truncate("meta.txt");
  EXPECT_TRUE(loads());
}

TEST_F(PinballRobustness, EmptySyscallsIsSoftDivergence) {
  truncate("syscalls.txt");
  // The pinball parses; replay feeds zeros past the recording and still
  // terminates, but the exhausted stream is reported as a soft divergence.
  Pinball Pb;
  std::string Error;
  PinballLoadOptions Opts;
  Opts.Verify = false;
  ASSERT_TRUE(Pb.load(Dir.string(), Error, Opts));
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  ASSERT_TRUE(Rep.divergence());
  EXPECT_EQ(Rep.divergence().Kind, DivergenceKind::SyscallStreamExhausted);
  EXPECT_FALSE(divergenceIsFatal(Rep.divergence().Kind));
}

TEST_F(PinballRobustness, ScheduleForUnknownThreadDivergesGracefully) {
  // A schedule referencing a thread that does not exist cannot replay; the
  // replayer must stop with a structured report, not trip an assertion.
  corrupt("schedule.txt", "s 7 2\n");
  Pinball Pb;
  std::string Error;
  PinballLoadOptions Opts;
  Opts.Verify = false;
  ASSERT_TRUE(Pb.load(Dir.string(), Error, Opts));
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::StopRequested);
  ASSERT_TRUE(Rep.divergence());
  EXPECT_EQ(Rep.divergence().Kind, DivergenceKind::UnknownThread);
  EXPECT_TRUE(divergenceIsFatal(Rep.divergence().Kind));
  EXPECT_NE(Rep.divergence().describe().find("tid 7"), std::string::npos)
      << Rep.divergence().describe();
}

} // namespace
