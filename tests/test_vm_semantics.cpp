//===- tests/test_vm_semantics.cpp - Single-thread interpreter tests --------===//

#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

/// Assembles and runs a single-threaded body, returning the SysWrite output.
std::vector<int64_t> runBody(const std::string &Body,
                             const std::string &Data = "") {
  Program P = assembleOrDie(Data + ".func main\n" + Body + "  halt\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  return Out;
}

TEST(VmSemantics, MoviMovWrite) {
  auto Out = runBody("  movi r1, 41\n  mov r2, r1\n  addi r2, r2, 1\n"
                     "  syswrite r2\n");
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 42);
}

struct AluCase {
  const char *Mnemonic;
  int64_t A;
  int64_t B;
  int64_t Expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ThreeRegisterForm) {
  const AluCase &C = GetParam();
  std::string Body = "  movi r1, " + std::to_string(C.A) + "\n  movi r2, " +
                     std::to_string(C.B) + "\n  " + C.Mnemonic +
                     " r3, r1, r2\n  syswrite r3\n";
  auto Out = runBody(Body);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], C.Expected) << C.Mnemonic;
}

TEST_P(AluTest, ImmediateForm) {
  const AluCase &C = GetParam();
  std::string Body = "  movi r1, " + std::to_string(C.A) + "\n  " +
                     C.Mnemonic + "i r3, r1, " + std::to_string(C.B) +
                     "\n  syswrite r3\n";
  auto Out = runBody(Body);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], C.Expected) << C.Mnemonic << "i";
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluTest,
    ::testing::Values(AluCase{"add", 7, 5, 12}, AluCase{"add", -7, 5, -2},
                      AluCase{"sub", 7, 5, 2}, AluCase{"sub", 5, 7, -2},
                      AluCase{"mul", 7, 5, 35}, AluCase{"mul", -3, 4, -12},
                      AluCase{"div", 17, 5, 3}, AluCase{"div", -17, 5, -3},
                      AluCase{"div", 17, 0, 0}, // div-by-zero yields 0
                      AluCase{"mod", 17, 5, 2}, AluCase{"mod", 17, 0, 0},
                      AluCase{"and", 12, 10, 8}, AluCase{"or", 12, 10, 14},
                      AluCase{"xor", 12, 10, 6}, AluCase{"shl", 3, 4, 48},
                      AluCase{"shr", 48, 4, 3}, AluCase{"shl", 1, 64, 1}));

TEST(VmSemantics, NegNot) {
  auto Out = runBody("  movi r1, 5\n  neg r2, r1\n  not r3, r1\n"
                     "  syswrite r2\n  syswrite r3\n");
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], -5);
  EXPECT_EQ(Out[1], ~int64_t{5});
}

TEST(VmSemantics, GlobalLoadsAndStores) {
  auto Out = runBody("  lda r1, @x\n"     // 11
                     "  lea r2, @v\n"
                     "  ld r3, [r2+1]\n"  // 22
                     "  addi r3, r3, 1\n"
                     "  st r3, [r2+2]\n"
                     "  lda r4, @v+2\n"   // 23
                     "  sta r1, @v\n"
                     "  lda r5, @v\n"     // 11
                     "  syswrite r1\n  syswrite r3\n  syswrite r4\n"
                     "  syswrite r5\n",
                     ".data x 11\n.array v 4 21 22\n");
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0], 11);
  EXPECT_EQ(Out[1], 23);
  EXPECT_EQ(Out[2], 23);
  EXPECT_EQ(Out[3], 11);
}

TEST(VmSemantics, UninitializedMemoryReadsZero) {
  auto Out = runBody("  movi r1, 12345\n  ld r2, [r1]\n  syswrite r2\n");
  EXPECT_EQ(Out[0], 0);
}

TEST(VmSemantics, PushPopLifo) {
  auto Out = runBody("  movi r1, 1\n  movi r2, 2\n"
                     "  push r1\n  push r2\n"
                     "  pop r3\n  pop r4\n"
                     "  syswrite r3\n  syswrite r4\n");
  EXPECT_EQ(Out[0], 2);
  EXPECT_EQ(Out[1], 1);
}

TEST(VmSemantics, CallRet) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 20\n"
                            "  call double\n"
                            "  syswrite r1\n"
                            "  halt\n.endfunc\n"
                            ".func double\n"
                            "  add r1, r1, r1\n"
                            "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 40);
}

TEST(VmSemantics, RecursiveFactorial) {
  Program P = assembleOrDie(
      ".func main\n"
      "  movi r1, 5\n"
      "  call fact\n"
      "  syswrite r2\n"
      "  halt\n.endfunc\n"
      ".func fact\n" // input r1, output r2, clobbers r3
      "  movi r3, 1\n"
      "  bgt r1, r3, rec\n"
      "  movi r2, 1\n"
      "  ret\n"
      "rec:\n"
      "  push r1\n"
      "  subi r1, r1, 1\n"
      "  call fact\n"
      "  pop r1\n"
      "  mul r2, r2, r1\n"
      "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 120);
}

TEST(VmSemantics, TopLevelRetExitsThread) {
  Program P = assembleOrDie(".func main\n  movi r1, 9\n  syswrite r1\n"
                            "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out.size(), 1u);
}

struct BranchCase {
  const char *Mnemonic;
  int64_t A;
  int64_t B;
  bool Taken;
};

class BranchTest : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchTest, ConditionEvaluation) {
  const BranchCase &C = GetParam();
  std::string Body = "  movi r1, " + std::to_string(C.A) + "\n  movi r2, " +
                     std::to_string(C.B) + "\n  " + C.Mnemonic +
                     " r1, r2, taken\n  movi r3, 0\n  jmp out\n"
                     "taken:\n  movi r3, 1\nout:\n  syswrite r3\n";
  auto Out = runBody(Body);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], C.Taken ? 1 : 0) << C.Mnemonic;
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, BranchTest,
    ::testing::Values(BranchCase{"beq", 3, 3, true},
                      BranchCase{"beq", 3, 4, false},
                      BranchCase{"bne", 3, 4, true},
                      BranchCase{"bne", 3, 3, false},
                      BranchCase{"blt", 3, 4, true},
                      BranchCase{"blt", 4, 3, false},
                      BranchCase{"blt", -5, 0, true},
                      BranchCase{"ble", 3, 3, true},
                      BranchCase{"ble", 4, 3, false},
                      BranchCase{"bgt", 4, 3, true},
                      BranchCase{"bgt", 3, 3, false},
                      BranchCase{"bge", 3, 3, true},
                      BranchCase{"bge", 2, 3, false}));

TEST(VmSemantics, LoopSumsToTen) {
  auto Out = runBody("  movi r1, 4\n  movi r2, 0\n"
                     "loop:\n  add r2, r2, r1\n  subi r1, r1, 1\n"
                     "  bgt r1, r0, loop\n  syswrite r2\n");
  EXPECT_EQ(Out[0], 10);
}

TEST(VmSemantics, IndirectJumpThroughTable) {
  // The switch-statement pattern from paper Figure 7: a jump table indexed
  // by a runtime value.
  Program P = assembleOrDie(".array jtab 3\n"
                            ".func main\n"
                            "  lea r1, case0\n  sta r1, @jtab\n"
                            "  lea r1, case1\n  sta r1, @jtab+1\n"
                            "  lea r1, case2\n  sta r1, @jtab+2\n"
                            "  sysread r2\n" // selector
                            "  lea r3, @jtab\n"
                            "  add r3, r3, r2\n"
                            "  ld r4, [r3]\n"
                            "  ijmp r4\n"
                            "case0:\n  movi r5, 100\n  jmp out\n"
                            "case1:\n  movi r5, 101\n  jmp out\n"
                            "case2:\n  movi r5, 102\n  jmp out\n"
                            "out:\n  syswrite r5\n  halt\n.endfunc\n");
  for (int64_t Sel = 0; Sel < 3; ++Sel) {
    RoundRobinScheduler Sched(1);
    DefaultSyscalls World;
    World.setInput({Sel});
    Machine M(P);
    M.setScheduler(&Sched);
    M.setSyscalls(&World);
    EXPECT_EQ(M.run(), Machine::StopReason::Halted);
    ASSERT_EQ(M.output().size(), 1u);
    EXPECT_EQ(M.output()[0], 100 + Sel);
  }
}

TEST(VmSemantics, IndirectCall) {
  Program P = assembleOrDie(".func main\n"
                            "  lea r4, &addone\n"
                            "  movi r1, 10\n"
                            "  icall r4\n"
                            "  syswrite r1\n  halt\n.endfunc\n"
                            ".func addone\n  addi r1, r1, 1\n  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], 11);
}

TEST(VmSemantics, SysReadConsumesInputInOrder) {
  Program P = assembleOrDie(".func main\n"
                            "  sysread r1\n  sysread r2\n  sysread r3\n"
                            "  syswrite r1\n  syswrite r2\n  syswrite r3\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  DefaultSyscalls World;
  World.setInput({7, 8});
  Machine M(P);
  M.setScheduler(&Sched);
  M.setSyscalls(&World);
  EXPECT_EQ(M.run(), Machine::StopReason::Halted);
  ASSERT_EQ(M.output().size(), 3u);
  EXPECT_EQ(M.output()[0], 7);
  EXPECT_EQ(M.output()[1], 8);
  EXPECT_EQ(M.output()[2], 0); // input exhausted
}

TEST(VmSemantics, SysAllocBumpAllocator) {
  auto Out = runBody("  movi r1, 4\n  sysalloc r2, r1\n  sysalloc r3, r1\n"
                     "  sub r4, r3, r2\n  syswrite r4\n"
                     "  movi r5, 77\n  st r5, [r2]\n  ld r6, [r2]\n"
                     "  syswrite r6\n");
  EXPECT_EQ(Out[0], 4); // second allocation starts 4 words later
  EXPECT_EQ(Out[1], 77);
}

TEST(VmSemantics, SysRandAndTimeAreRecorded) {
  Program P = assembleOrDie(".func main\n  sysrand r1\n  systime r2\n"
                            "  systime r3\n  sub r4, r3, r2\n  syswrite r4\n"
                            "  halt\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], 1); // clock ticks by one per systime
}

TEST(VmSemantics, AssertPassAndFail) {
  Program PPass = assembleOrDie(".func main\n  movi r1, 1\n  assert r1\n"
                                "  halt\n.endfunc\n");
  EXPECT_EQ(runProgram(PPass), Machine::StopReason::Halted);

  Program PFail = assembleOrDie(".func main\n  nop\n  assert r0\n"
                                "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(PFail);
  M.setScheduler(&Sched);
  EXPECT_EQ(M.run(), Machine::StopReason::AssertFailed);
  EXPECT_TRUE(M.assertFailed());
  EXPECT_EQ(M.failedTid(), 0u);
  EXPECT_EQ(M.failedPc(), 1u);
}

TEST(VmSemantics, StepLimit) {
  Program P = assembleOrDie(".func main\nspin:\n  jmp spin\n.endfunc\n");
  EXPECT_EQ(runProgram(P, nullptr, 100), Machine::StopReason::StepLimit);
}

TEST(VmSemantics, ExecCountsAdvance) {
  Program P = assembleOrDie(".func main\n  nop\n  nop\n  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run();
  EXPECT_EQ(M.globalCount(), 3u);
  EXPECT_EQ(M.thread(0).ExecCount, 3u);
}

/// The def/use stream is the slicer's input; spot-check a store.
TEST(VmSemantics, ExecRecordDefsUses) {
  Program P = assembleOrDie(".data g 5\n.func main\n"
                            "  lda r1, @g\n"
                            "  sta r1, @g+1\n"
                            "  halt\n.endfunc\n");
  struct Collect : Observer {
    std::vector<ExecRecord> Records;
    void onExec(const Machine &, const ExecRecord &R) override {
      Records.push_back(R);
    }
  } C;
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  M.addObserver(&C);
  M.run();
  ASSERT_EQ(C.Records.size(), 3u);
  uint64_t G = P.findGlobal("g")->Addr;
  // lda r1, @g: uses mem[g], defs r1.
  const ExecRecord &L = C.Records[0];
  ASSERT_EQ(L.Uses.size(), 1u);
  EXPECT_EQ(L.Uses[0].Loc, memLoc(G));
  EXPECT_EQ(L.Uses[0].Value, 5);
  ASSERT_EQ(L.Defs.size(), 1u);
  EXPECT_EQ(L.Defs[0].Loc, regLoc(0, 1));
  EXPECT_EQ(L.Defs[0].Value, 5);
  // sta r1, @g+1: uses r1, defs mem[g+1].
  const ExecRecord &S = C.Records[1];
  ASSERT_EQ(S.Uses.size(), 1u);
  EXPECT_EQ(S.Uses[0].Loc, regLoc(0, 1));
  ASSERT_EQ(S.Defs.size(), 1u);
  EXPECT_EQ(S.Defs[0].Loc, memLoc(G + 1));
  EXPECT_EQ(S.Defs[0].Value, 5);
}

} // namespace
