//===- tests/test_metrics.cpp - Observability layer tests ---------------------===//
//
// The unified observability layer: MetricsRegistry concurrency (these run
// under the `tsan` CTest preset), Prometheus exposition format, the
// histogram bucket-boundary fix, TraceSpan nesting and Chrome JSON export,
// the `metrics` protocol verb on a live server, the drift test tying
// the verb registry to registered per-verb metrics, and the CommandResult
// status classification that replaced DebugSession::execute's bool.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "server/client.h"
#include "server/server.h"
#include "server/stats.h"
#include "server/transport.h"
#include "server/verbs.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/tracing.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace drdebug;
namespace mn = drdebug::metricnames;

namespace {

//===----------------------------------------------------------------------===//
// MetricsRegistry: handles, lookup, sampling
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, CounterGaugeHistogramHandles) {
  metrics::MetricsRegistry R;
  metrics::Counter &C = R.counter("t_counter");
  C.inc();
  C.inc(9);
  EXPECT_EQ(C.value(), 10u);
  EXPECT_EQ(C.load(), 10u);
  // Re-registering the same (name, labels) returns the same instance.
  EXPECT_EQ(&R.counter("t_counter"), &C);

  metrics::Gauge &G = R.gauge("t_gauge");
  G.add(5);
  G.sub(2);
  EXPECT_EQ(G.value(), 3);
  G.set(-7);
  EXPECT_EQ(G.value(), -7);

  metrics::LatencyHistogram &H = R.histogram("t_hist");
  H.record(3);
  EXPECT_EQ(H.total(), 1u);
  EXPECT_EQ(H.sumUs(), 3u);
}

TEST(MetricsRegistry, LabelledInstancesAreDistinct) {
  metrics::MetricsRegistry R;
  metrics::Counter &A = R.counter("t_verbs", {{"verb", "cmd"}});
  metrics::Counter &B = R.counter("t_verbs", {{"verb", "load"}});
  EXPECT_NE(&A, &B);
  A.inc(2);
  B.inc(5);
  EXPECT_EQ(R.sampleValue("t_verbs", {{"verb", "cmd"}}), 2);
  EXPECT_EQ(R.sampleValue("t_verbs", {{"verb", "load"}}), 5);
  EXPECT_EQ(R.findCounter("t_verbs", {{"verb", "cmd"}}), &A);
  EXPECT_EQ(R.findCounter("t_verbs", {{"verb", "nosuch"}}), nullptr);
  // Label order must not matter for lookup.
  metrics::Counter &A2 =
      R.counter("t_multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(R.findCounter("t_multi", {{"b", "2"}, {"a", "1"}}), &A2);
}

TEST(MetricsRegistry, SampleValueAndCallbacks) {
  metrics::MetricsRegistry R;
  R.counter("t_c").inc(42);
  EXPECT_EQ(R.sampleValue("t_c"), 42);
  R.gauge("t_g").set(-3);
  EXPECT_EQ(R.sampleValue("t_g"), -3);
  EXPECT_EQ(R.sampleValue("t_never_registered"), 0);

  int64_t Live = 17;
  R.registerCallback("t_cb", metrics::MetricType::CallbackGauge,
                     [&Live] { return Live; });
  EXPECT_EQ(R.sampleValue("t_cb"), 17);
  Live = 23;
  EXPECT_EQ(R.sampleValue("t_cb"), 23);
}

TEST(MetricsRegistry, ConcurrentUpdatesAndRender) {
  // The tsan preset builds this test: concurrent inc/record/render on one
  // registry must be race-free.
  metrics::MetricsRegistry R;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned IncsPerThread = 2000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&R, T] {
      metrics::Counter &C = R.counter("t_shared");
      metrics::Counter &Mine =
          R.counter("t_per_thread", {{"tid", std::to_string(T)}});
      metrics::LatencyHistogram &H = R.histogram("t_latency");
      for (unsigned I = 0; I != IncsPerThread; ++I) {
        C.inc();
        Mine.inc();
        H.record(I % 500);
        if (I % 256 == 0)
          (void)R.renderPrometheus(); // render while writers are live
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(R.sampleValue("t_shared"), NumThreads * IncsPerThread);
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_EQ(R.sampleValue("t_per_thread", {{"tid", std::to_string(T)}}),
              IncsPerThread);
  EXPECT_EQ(R.histogram("t_latency").total(),
            uint64_t(NumThreads) * IncsPerThread);
}

//===----------------------------------------------------------------------===//
// Histogram bucket boundaries (the off-by-one fix)
//===----------------------------------------------------------------------===//

TEST(MetricsHistogram, PowerOfTwoBoundariesAreInclusive) {
  // A sample of exactly 2^(I+1) us belongs to the `le_2^(I+1)` bucket —
  // Prometheus `le` semantics. The pre-registry server/stats.h copy pushed
  // boundary samples one bucket up.
  metrics::LatencyHistogram H;
  H.record(2); // boundary of bucket 0 (le_2)
  EXPECT_EQ(H.bucketCount(0), 1u);
  H.record(8); // boundary of bucket 2 (le_8)
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 0u);
  H.record(9); // just past the boundary -> next bucket (le_16)
  EXPECT_EQ(H.bucketCount(3), 1u);
  H.record(0);
  H.record(1); // sub-2us samples also land in bucket 0
  EXPECT_EQ(H.bucketCount(0), 3u);
  EXPECT_EQ(H.total(), 5u);
  EXPECT_EQ(H.sumUs(), 2u + 8u + 9u + 0u + 1u);
  // The legacy report() rendering names buckets by their upper bound.
  std::string Rep = H.report("lat");
  EXPECT_NE(Rep.find("lat.le_2 3"), std::string::npos) << Rep;
  EXPECT_NE(Rep.find("lat.le_8 1"), std::string::npos) << Rep;
  EXPECT_NE(Rep.find("lat.le_16 1"), std::string::npos) << Rep;
}

TEST(MetricsHistogram, QuantileUpperBound) {
  metrics::LatencyHistogram H;
  EXPECT_EQ(H.quantileUpperBoundUs(0.5), 0u); // empty
  for (int I = 0; I != 90; ++I)
    H.record(3); // bucket 1 (le_4)
  for (int I = 0; I != 10; ++I)
    H.record(1000); // bucket 9 (le_1024)
  EXPECT_EQ(H.quantileUpperBoundUs(0.5), 4u);
  EXPECT_EQ(H.quantileUpperBoundUs(0.99), 1024u);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

/// Every non-comment, non-blank line of a Prometheus text document must be
/// `name{labels} value` or `name value`. \returns the first bad line.
std::string firstInvalidPrometheusLine(const std::string &Text) {
  std::istringstream IS(Text);
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Sp = Line.rfind(' ');
    if (Sp == std::string::npos || Sp == 0 || Sp + 1 == Line.size())
      return Line;
    std::string Name = Line.substr(0, Sp);
    std::string Value = Line.substr(Sp + 1);
    // Name: metric chars, optionally followed by one balanced {...}.
    size_t Brace = Name.find('{');
    std::string Bare = Brace == std::string::npos ? Name : Name.substr(0, Brace);
    if (Brace != std::string::npos && Name.back() != '}')
      return Line;
    if (Bare.empty() || std::isdigit(static_cast<unsigned char>(Bare[0])))
      return Line;
    for (char C : Bare)
      if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == ':'))
        return Line;
    for (char C : Value)
      if (!(std::isdigit(static_cast<unsigned char>(C)) || C == '-' ||
            C == '+' || C == '.' || C == 'e' || C == 'E'))
        return Line;
  }
  return "";
}

TEST(MetricsPrometheus, GoldenExposition) {
  metrics::MetricsRegistry R;
  R.counter("t_requests_total", {}, "Requests served.").inc(3);
  R.gauge("t_active").set(2);
  R.counter("t_by_verb", {{"verb", "cmd"}}).inc(7);
  metrics::LatencyHistogram &H = R.histogram("t_lat_us");
  H.record(2);  // bucket le_2
  H.record(8);  // bucket le_8
  H.record(8);  // same bucket: cumulative series must show 3 at le_8

  std::string Text = R.renderPrometheus();
  // std::map ordering makes the document deterministic.
  EXPECT_EQ(Text,
            "# TYPE t_active gauge\n"
            "t_active 2\n"
            "# TYPE t_by_verb counter\n"
            "t_by_verb{verb=\"cmd\"} 7\n"
            "# TYPE t_lat_us histogram\n"
            "t_lat_us_bucket{le=\"2\"} 1\n"
            "t_lat_us_bucket{le=\"8\"} 3\n"
            "t_lat_us_bucket{le=\"+Inf\"} 3\n"
            "t_lat_us_sum 18\n"
            "t_lat_us_count 3\n"
            "# HELP t_requests_total Requests served.\n"
            "# TYPE t_requests_total counter\n"
            "t_requests_total 3\n");
  EXPECT_EQ(firstInvalidPrometheusLine(Text), "");
}

TEST(MetricsPrometheus, LabelValuesAreEscaped) {
  metrics::MetricsRegistry R;
  R.counter("t_esc", {{"k", "a\"b\\c\nd"}}).inc();
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("t_esc{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << Text;
}

//===----------------------------------------------------------------------===//
// Trace spans and Chrome JSON export
//===----------------------------------------------------------------------===//

TEST(MetricsTracing, SpanNestingDepthAndExport) {
  trace::Tracer &T = trace::Tracer::global();
  T.setEnabled(true);
  T.clear();
  {
    trace::TraceSpan Outer("test.outer", "test");
    {
      trace::TraceSpan Inner("test.inner", "test");
    }
  }
  {
    trace::TraceSpan Sibling("test.sibling", "test");
  }
  T.setEnabled(false);

  std::vector<trace::SpanEvent> Spans = T.snapshot();
  // Spans complete innermost-first.
  ASSERT_EQ(Spans.size(), 3u);
  EXPECT_STREQ(Spans[0].Name, "test.inner");
  EXPECT_EQ(Spans[0].Depth, 1u);
  EXPECT_STREQ(Spans[1].Name, "test.outer");
  EXPECT_EQ(Spans[1].Depth, 0u);
  EXPECT_STREQ(Spans[2].Name, "test.sibling");
  EXPECT_EQ(Spans[2].Depth, 0u);
  // The outer span contains the inner one in time.
  EXPECT_LE(Spans[1].StartUs, Spans[0].StartUs);
  EXPECT_GE(Spans[1].StartUs + Spans[1].DurUs,
            Spans[0].StartUs + Spans[0].DurUs);

  std::string Json = T.exportChromeJson();
  EXPECT_EQ(Json.rfind("{\"traceEvents\": [", 0), 0u) << Json;
  EXPECT_NE(Json.find("\"name\": \"test.inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"depth\": 1"), std::string::npos);

  T.clear();
  EXPECT_TRUE(T.snapshot().empty());
}

TEST(MetricsTracing, DisabledTracerRecordsNothing) {
  trace::Tracer &T = trace::Tracer::global();
  T.setEnabled(false);
  T.clear();
  {
    trace::TraceSpan S("test.ignored", "test");
  }
  EXPECT_TRUE(T.snapshot().empty());
}

//===----------------------------------------------------------------------===//
// Live server: the `metrics` verb, the alias-mapped `stats` verb, drift
//===----------------------------------------------------------------------===//

TEST(MetricsServer, MetricsVerbRendersValidPrometheus) {
  // Make sure at least one process-global family exists (registration is
  // find-or-create): the verb must append the global registry's families
  // after the server's own.
  metrics::MetricsRegistry::global().counter(mn::ReplayRuns);
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ASSERT_TRUE(Client.hello().ok());
    ClientResult<> Metrics = Client.metrics();
    ASSERT_TRUE(Metrics.ok()) << Metrics.errorText();
    const std::string &Payload = Metrics.value();
    EXPECT_EQ(firstInvalidPrometheusLine(Payload), "") << Payload;
    // The hello that preceded this request is visible per-verb...
    EXPECT_NE(
        Payload.find(std::string(mn::ServerVerbRequests) +
                     "{verb=\"hello\"} 1"),
        std::string::npos)
        << Payload;
    // ...and verbs never exercised are still exposed (eager registration).
    EXPECT_NE(Payload.find(std::string(mn::ServerVerbRequests) +
                           "{verb=\"shutdown\"} 0"),
              std::string::npos)
        << Payload;
    EXPECT_NE(Payload.find(std::string(mn::ServerSessionsActive) + " 0"),
              std::string::npos)
        << Payload;
    // The document also carries the process-global families.
    EXPECT_NE(Payload.find(mn::ReplayRuns), std::string::npos) << Payload;
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(MetricsServer, StatsVerbKeepsLegacyKeys) {
  DebugServer Srv;
  Srv.stats().SessionsCreated.inc(4);
  Srv.stats().SessionsClosed.inc(3);
  std::string Report = Srv.statsReport();
  // The redesigned `stats` verb renders the old key names from the registry
  // via the alias map; existing scrapers must not notice the redesign.
  for (const char *Key :
       {"sessions.created 4", "sessions.closed 3", "sessions.active",
        "sessions.evicted", "commands.served", "frames.malformed",
        "errors.returned", "pinballs.cached", "pinballs.cache_hits",
        "pinballs.cache_misses", "integrity.pinball_failures",
        "integrity.divergences", "retries.deduped", "deadline.timeouts",
        "watchdog.overdue", "slices.cached", "slices.cache_hits",
        "slices.cache_misses", "slices.evicted", "latency.cmd_us.count"})
    EXPECT_NE(Report.find(Key), std::string::npos)
        << "missing legacy key '" << Key << "' in:\n"
        << Report;
}

TEST(MetricsServer, VerbNameDriftAgainstRegistry) {
  // Every verb-registry entry must have an eagerly-registered VerbHandle
  // AND a labelled counter in the registry: adding a verb without metrics
  // (or renaming one) fails here.
  DebugServer Srv;
  for (const VerbInfo &V : verbRegistry()) {
    EXPECT_NE(Srv.stats().verb(V.Name), nullptr) << V.Name;
    EXPECT_NE(
        Srv.registry().findCounter(mn::ServerVerbRequests, {{"verb", V.Name}}),
        nullptr)
        << V.Name;
    EXPECT_NE(
        Srv.registry().findHistogram(mn::ServerVerbLatencyUs,
                                     {{"verb", V.Name}}),
        nullptr)
        << V.Name;
  }
}

TEST(MetricsServer, RegisteredNamesAreCatalogued) {
  // Whatever a live server (and the library's global registry) registers
  // must appear in the metric_names.h catalog — the drift test backing
  // `scripts/verify.sh --metrics-lint`.
  std::set<std::string> Catalog;
  for (const auto &M : mn::AllMetrics)
    Catalog.insert(M.Name);
  DebugServer Srv;
  for (const std::string &Name : Srv.registry().familyNames())
    EXPECT_TRUE(Catalog.count(Name)) << "uncatalogued metric: " << Name;
  for (const std::string &Name :
       metrics::MetricsRegistry::global().familyNames())
    EXPECT_TRUE(Catalog.count(Name)) << "uncatalogued metric: " << Name;
}

//===----------------------------------------------------------------------===//
// CommandResult: the typed DebugSession::execute replacement
//===----------------------------------------------------------------------===//

TEST(MetricsCommandResult, StatusClassification) {
  std::ostringstream OS;
  DebugSession S(OS);
  Program P = workloads::makeFigure5();

  CommandResult Load = S.loadProgram(P.SourceText);
  EXPECT_EQ(Load.Status, CommandStatus::Ok);
  EXPECT_NE(Load.Text.find("loaded program"), std::string::npos) << Load.Text;

  CommandResult Bad = S.executeCommand("frobnicate");
  EXPECT_EQ(Bad.Status, CommandStatus::Error);
  EXPECT_NE(Bad.Text.find("error"), std::string::npos) << Bad.Text;

  CommandResult Usage = S.executeCommand("break");
  EXPECT_EQ(Usage.Status, CommandStatus::Error) << Usage.Text;

  CommandResult Good = S.executeCommand("help");
  EXPECT_EQ(Good.Status, CommandStatus::Ok) << Good.Text;
  EXPECT_FALSE(Good.Text.empty());

  CommandResult Quit = S.executeCommand("quit");
  EXPECT_EQ(Quit.Status, CommandStatus::Exited);
}

TEST(MetricsCommandResult, TextMatchesSessionStream) {
  // The captured CommandResult::Text must be exactly what the session wrote
  // to its output stream (the tee duplicates, it doesn't divert).
  std::ostringstream OS;
  DebugSession S(OS);
  Program P = workloads::makeFigure5();
  std::string Before = OS.str();
  CommandResult Load = S.loadProgram(P.SourceText);
  EXPECT_EQ(OS.str().substr(Before.size()), Load.Text);

  Before = OS.str();
  CommandResult R = S.executeCommand("info threads");
  EXPECT_EQ(OS.str().substr(Before.size()), R.Text);

  // The bool shim still drives the same machinery.
  EXPECT_TRUE(S.execute("info threads"));
  EXPECT_FALSE(S.execute("quit"));
}

TEST(MetricsCommandResult, LoadFailureIsError) {
  std::ostringstream OS;
  DebugSession S(OS);
  CommandResult Load = S.loadProgram("this is not assembly {{{");
  EXPECT_EQ(Load.Status, CommandStatus::Error) << Load.Text;
}

} // namespace
