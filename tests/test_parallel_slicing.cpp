//===- tests/test_parallel_slicing.cpp - Parallel slicing engine ---------------===//
//
// The parallel prepare pipeline and the shared slice-session cache. Parallel
// prepares must be bit-identical to sequential ones (same slices, same
// criteria, same global trace), the def-site-indexed LP traversal must match
// the block-summary scan at every block size, and concurrent debug sessions
// attached to the same disk pinball must share exactly one prepared session.
// The `SliceRepository` suite runs under the tsan CTest preset.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "replay/logger.h"
#include "replay/repository.h"
#include "server/server.h"
#include "slicing/slice_repository.h"
#include "slicing/slicer.h"
#include "support/thread_pool.h"
#include "workloads/figure5.h"
#include "workloads/generator.h"
#include "workloads/racebugs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
using namespace drdebug::workloads;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A scratch directory removed on destruction.
struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_parslice_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
};

/// Prepares a slicing session over \p Pb, failing the test on error.
std::unique_ptr<SliceSession> prepared(const Pinball &Pb, unsigned Threads,
                                       bool UseDefIndex = true,
                                       size_t BlockSize = 4096) {
  SliceSessionOptions O;
  O.PrepareThreads = Threads;
  O.UseDefIndex = UseDefIndex;
  O.BlockSize = BlockSize;
  auto S = std::make_unique<SliceSession>(Pb, O);
  std::string Error;
  EXPECT_TRUE(S->prepare(Error)) << Error;
  return S;
}

/// Field-wise slice equality (Slice has no operator==).
void expectSameSlice(const Slice &A, const Slice &B, const std::string &What) {
  EXPECT_EQ(A.CriterionPos, B.CriterionPos) << What;
  EXPECT_EQ(A.Positions, B.Positions) << What;
  ASSERT_EQ(A.Edges.size(), B.Edges.size()) << What;
  for (size_t I = 0; I != A.Edges.size(); ++I) {
    EXPECT_EQ(A.Edges[I].FromPos, B.Edges[I].FromPos) << What << " edge " << I;
    EXPECT_EQ(A.Edges[I].ToPos, B.Edges[I].ToPos) << What << " edge " << I;
    EXPECT_EQ(A.Edges[I].IsControl, B.Edges[I].IsControl)
        << What << " edge " << I;
  }
}

/// Every slice both sessions can answer must come out identical: the failure
/// slice (if any), backwards + forward slices for the last \p NLoads load
/// criteria, and the criterion resolutions themselves.
void expectSessionsAgree(const SliceSession &A, const SliceSession &B,
                         unsigned NLoads, const std::string &What) {
  ASSERT_EQ(A.traces().totalEntries(), B.traces().totalEntries()) << What;

  auto FailA = A.failureCriterion();
  auto FailB = B.failureCriterion();
  ASSERT_EQ(FailA.has_value(), FailB.has_value()) << What;

  std::vector<SliceCriterion> Crits = A.lastLoadCriteria(NLoads);
  std::vector<SliceCriterion> CritsB = B.lastLoadCriteria(NLoads);
  ASSERT_EQ(Crits.size(), CritsB.size()) << What;
  for (size_t I = 0; I != Crits.size(); ++I) {
    EXPECT_EQ(Crits[I].Tid, CritsB[I].Tid) << What;
    EXPECT_EQ(Crits[I].Pc, CritsB[I].Pc) << What;
    EXPECT_EQ(Crits[I].Instance, CritsB[I].Instance) << What;
  }
  if (FailA)
    Crits.push_back(*FailA);

  for (const SliceCriterion &C : Crits) {
    std::string Tag = What + " crit tid=" + std::to_string(C.Tid) +
                      " pc=" + std::to_string(C.Pc) +
                      " inst=" + std::to_string(C.Instance);
    EXPECT_EQ(A.criterionPosition(C), B.criterionPosition(C)) << Tag;
    auto SlA = A.computeSlice(C);
    auto SlB = B.computeSlice(C);
    ASSERT_EQ(SlA.has_value(), SlB.has_value()) << Tag;
    if (SlA) {
      expectSameSlice(*SlA, *SlB, Tag);
      std::vector<ExclusionRegion> ExA = A.exclusionRegions(*SlA);
      std::vector<ExclusionRegion> ExB = B.exclusionRegions(*SlB);
      ASSERT_EQ(ExA.size(), ExB.size()) << Tag;
      for (size_t I = 0; I != ExA.size(); ++I) {
        EXPECT_EQ(ExA[I].Tid, ExB[I].Tid) << Tag << " region " << I;
        EXPECT_EQ(ExA[I].BeginIndex, ExB[I].BeginIndex) << Tag;
        EXPECT_EQ(ExA[I].EndIndex, ExB[I].EndIndex) << Tag;
        EXPECT_EQ(ExA[I].StartPc, ExB[I].StartPc) << Tag;
        EXPECT_EQ(ExA[I].StartInstance, ExB[I].StartInstance) << Tag;
      }
    }
    auto FwA = A.computeForwardSlice(C);
    auto FwB = B.computeForwardSlice(C);
    ASSERT_EQ(FwA.has_value(), FwB.has_value()) << Tag;
    if (FwA)
      expectSameSlice(*FwA, *FwB, Tag + " (forward)");
  }
}

/// Records the Figure 5 region with the schedule the server tests use (it
/// captures the assertion failure).
Pinball figure5Pinball() {
  Program P = workloads::makeFigure5();
  RandomScheduler Sched(1, 1, 4);
  DefaultSyscalls World(1);
  return Logger::logRegion(P, Sched, &World, RegionSpec{}).Pb;
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, ThreadPoolRunsTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);

  std::future<int> F = Pool.async([] { return 41 + 1; });
  EXPECT_EQ(F.get(), 42);

  // Each iteration owns a distinct slot, so plain writes suffice.
  std::vector<int> Hits(64, 0);
  Pool.parallelFor(Hits.size(), [&](size_t I) { Hits[I] += 1; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ParallelSlicing, ThreadPoolClampsToOneWorker) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  EXPECT_EQ(Pool.async([] { return 7; }).get(), 7);
}

//===----------------------------------------------------------------------===//
// Parallel prepare is bit-identical to sequential
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, Figure5PoolMatchesSequential) {
  Pinball Pb = figure5Pinball();
  auto Seq = prepared(Pb, 1);
  auto Par = prepared(Pb, 4);
  ASSERT_TRUE(Seq->failureCriterion().has_value());
  expectSessionsAgree(*Seq, *Par, 5, "figure5 pool1-vs-pool4");
}

TEST(ParallelSlicing, RaceBugsPoolMatchesSequential) {
  RaceBugScale Scale;
  Scale.PreWork = 60;
  auto Suite = makeRaceBugSuite(Scale);
  for (const RaceBug &Bug : Suite) {
    auto Seed = findFailingSeed(Bug.Prog, 300, 2'000'000);
    ASSERT_TRUE(Seed.has_value()) << Bug.Name << " never failed";
    RandomScheduler Sched(*Seed, 1, 3);
    Pinball Pb = Logger::logWholeProgram(Bug.Prog, Sched, nullptr).Pb;
    auto Seq = prepared(Pb, 1);
    auto Par = prepared(Pb, 3);
    expectSessionsAgree(*Seq, *Par, 4, Bug.Name + " pool1-vs-pool3");
  }
}

TEST(ParallelSlicing, GeneratorPoolMatchesSequential) {
  for (uint64_t Seed : {3u, 11u, 42u}) {
    Program P = workloads::generateRandomProgram(Seed);
    RandomScheduler Sched(Seed, 1, 3);
    DefaultSyscalls World(Seed + 7);
    Pinball Pb = Logger::logWholeProgram(P, Sched, &World).Pb;
    std::string Tag = "generator seed " + std::to_string(Seed);
    auto Seq = prepared(Pb, 1);
    auto Par = prepared(Pb, 4);
    expectSessionsAgree(*Seq, *Par, 5, Tag + " pool1-vs-pool4");
  }
}

//===----------------------------------------------------------------------===//
// Def-site index vs block-summary scan
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, IndexedMatchesBlockScanAcrossBlockSizes) {
  Pinball Pb = figure5Pinball();
  auto Indexed = prepared(Pb, 1, /*UseDefIndex=*/true);
  for (size_t BlockSize : {size_t(1), size_t(7), size_t(4096)}) {
    auto Scan = prepared(Pb, 1, /*UseDefIndex=*/false, BlockSize);
    expectSessionsAgree(*Indexed, *Scan, 5,
                        "figure5 indexed-vs-blocksize " +
                            std::to_string(BlockSize));
  }
}

TEST(ParallelSlicing, IndexedMatchesBlockScanOnGenerated) {
  for (uint64_t Seed : {5u, 19u}) {
    Program P = workloads::generateRandomProgram(Seed);
    RandomScheduler Sched(Seed + 1, 1, 3);
    Pinball Pb = Logger::logWholeProgram(P, Sched, nullptr).Pb;
    auto Indexed = prepared(Pb, 4, /*UseDefIndex=*/true);
    auto Scan = prepared(Pb, 1, /*UseDefIndex=*/false, /*BlockSize=*/64);
    expectSessionsAgree(*Indexed, *Scan, 5,
                        "generator seed " + std::to_string(Seed) +
                            " indexed-vs-scan");
  }
}

TEST(ParallelSlicing, IndexedModeKeepsBlockCounters) {
  Pinball Pb = figure5Pinball();
  auto S = prepared(Pb, 1, /*UseDefIndex=*/true, /*BlockSize=*/8);
  auto Fail = S->failureCriterion();
  ASSERT_TRUE(Fail.has_value());
  ASSERT_TRUE(S->computeSlice(*Fail).has_value());
  // The compat counters still advance so the paper's Table-2-style LP stats
  // remain reportable in indexed mode.
  EXPECT_GT(S->blocksScanned() + S->blocksSkipped(), 0u);
}

//===----------------------------------------------------------------------===//
// Shared slice-session repository
//===----------------------------------------------------------------------===//

TEST(SliceRepository, ConcurrentSessionsShareOnePrepare) {
  TempDir Tmp("share");
  Pinball Pb = figure5Pinball();
  std::string Error;
  ASSERT_TRUE(Pb.save(Tmp.Dir.string(), Error)) << Error;

  const std::string Source = workloads::makeFigure5().SourceText;
  const std::vector<std::string> Cmds = {"pinball load " + Tmp.Dir.string(),
                                         "slice fail"};

  // The reference transcript: a lone session preparing privately.
  std::string Reference;
  {
    std::ostringstream OS;
    DebugSession S(OS);
    S.loadProgramText(Source);
    for (const std::string &C : Cmds)
      S.execute(C);
    Reference = OS.str();
  }
  ASSERT_NE(Reference.find("slicing ready:"), std::string::npos) << Reference;
  ASSERT_NE(Reference.find("slice:"), std::string::npos) << Reference;

  SliceSessionRepository Repo(4);
  std::string Out[2];
  std::thread Workers[2];
  for (int I = 0; I != 2; ++I)
    Workers[I] = std::thread([&, I] {
      std::ostringstream OS;
      DebugSession S(OS);
      S.setSliceRepository(&Repo);
      S.loadProgramText(Source);
      for (const std::string &C : Cmds)
        S.execute(C);
      Out[I] = OS.str();
    });
  for (std::thread &W : Workers)
    W.join();

  // Byte-identical to the private-prepare transcript, one prepare total.
  EXPECT_EQ(Out[0], Reference);
  EXPECT_EQ(Out[1], Reference);
  EXPECT_EQ(Repo.misses(), 1u);
  EXPECT_EQ(Repo.hits(), 1u);
  EXPECT_EQ(Repo.cachedCount(), 1u);
}

TEST(SliceRepository, LruEvictsLeastRecentlyUsed) {
  Pinball PbA = figure5Pinball();
  RandomScheduler Sched(9, 1, 2);
  Pinball PbB =
      Logger::logWholeProgram(workloads::makeFigure5(), Sched, nullptr).Pb;

  SliceSessionRepository Repo(1);
  std::string Error;
  SliceSessionOptions O;
  ASSERT_NE(Repo.acquire(111, PbA, O, Error), nullptr) << Error;
  ASSERT_NE(Repo.acquire(222, PbB, O, Error), nullptr) << Error;
  EXPECT_EQ(Repo.cachedCount(), 1u);
  EXPECT_EQ(Repo.evicted(), 1u);

  // The evicted fingerprint must re-prepare on its next use.
  ASSERT_NE(Repo.acquire(111, PbA, O, Error), nullptr) << Error;
  EXPECT_EQ(Repo.misses(), 3u);
  EXPECT_EQ(Repo.hits(), 0u);

  Repo.clear();
  EXPECT_EQ(Repo.cachedCount(), 0u);
}

TEST(SliceRepository, FailedPrepareIsNotCached) {
  SliceSessionRepository Repo(4);
  Pinball Bogus; // empty pinball: the replayer rejects it
  std::string Error;
  SliceSessionOptions O;
  EXPECT_EQ(Repo.acquire(77, Bogus, O, Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Repo.cachedCount(), 0u);

  // Retrying is a fresh miss, not a cached failure.
  Error.clear();
  EXPECT_EQ(Repo.acquire(77, Bogus, O, Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Repo.misses(), 2u);
  EXPECT_EQ(Repo.hits(), 0u);
}

/// A latch the prepare-start hook can park a chosen fingerprint on, so a
/// test can hold a prepare in flight while it probes the cache.
struct PrepareGate {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;
  std::atomic<unsigned> Started{0};

  void block() {
    Started.fetch_add(1);
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> L(M);
      Open = true;
    }
    Cv.notify_all();
  }
  void awaitStarted() {
    while (Started.load() == 0)
      std::this_thread::yield();
  }
};

TEST(SliceRepository, CapPressureNeverEvictsAnInFlightPrepare) {
  Pinball PbA = figure5Pinball();
  RandomScheduler Sched(9, 1, 2);
  Pinball PbB =
      Logger::logWholeProgram(workloads::makeFigure5(), Sched, nullptr).Pb;

  SliceSessionRepository Repo(1);
  PrepareGate Gate;
  std::atomic<unsigned> PreparesOf111{0};
  Repo.setPrepareStartHookForTest([&](uint64_t Fp) {
    if (Fp != 111)
      return;
    PreparesOf111.fetch_add(1);
    Gate.block();
  });

  std::string ErrA;
  std::shared_ptr<const SliceSession> A;
  std::thread Owner([&] {
    SliceSessionOptions O;
    A = Repo.acquire(111, PbA, O, ErrA);
  });
  Gate.awaitStarted();

  // Inserting a second fingerprint overflows the cap of one, but the only
  // eviction candidate is mid-prepare: it must be skipped, not dropped
  // (dropping it would let a third same-fingerprint acquire start a
  // duplicate prepare of 111).
  std::string Error;
  SliceSessionOptions O;
  ASSERT_NE(Repo.acquire(222, PbB, O, Error), nullptr) << Error;
  EXPECT_EQ(Repo.evicted(), 0u);
  EXPECT_EQ(Repo.cachedCount(), 2u);

  Gate.release();
  Owner.join();
  ASSERT_NE(A, nullptr) << ErrA;

  // The finished entry is served from cache — exactly one prepare of 111.
  ASSERT_NE(Repo.acquire(111, PbA, O, Error), nullptr) << Error;
  EXPECT_EQ(PreparesOf111.load(), 1u);
  EXPECT_EQ(Repo.hits(), 1u);

  // With nothing in flight any more, the next insert catches up on the
  // deferred eviction and brings the cache back under its cap.
  ASSERT_NE(Repo.acquire(333, PbB, O, Error), nullptr) << Error;
  EXPECT_EQ(Repo.cachedCount(), 1u);
  EXPECT_EQ(Repo.evicted(), 2u);
}

TEST(SliceRepository, IdleEvictionSkipsInFlightPrepares) {
  Pinball Pb = figure5Pinball();
  SliceSessionRepository Repo(4);
  PrepareGate Gate;
  Repo.setPrepareStartHookForTest([&](uint64_t) { Gate.block(); });

  std::shared_ptr<const SliceSession> S;
  std::string ErrA;
  std::thread Owner([&] {
    SliceSessionOptions O;
    S = Repo.acquire(111, Pb, O, ErrA);
  });
  Gate.awaitStarted();

  // Zero idle tolerance, but the entry is mid-prepare: not evictable.
  EXPECT_EQ(Repo.evictIdle(std::chrono::seconds(0)), 0u);
  EXPECT_EQ(Repo.cachedCount(), 1u);

  Gate.release();
  Owner.join();
  ASSERT_NE(S, nullptr) << ErrA;

  // Once resolved (and idle), the same sweep reclaims it.
  EXPECT_EQ(Repo.evictIdle(std::chrono::seconds(0)), 1u);
  EXPECT_EQ(Repo.cachedCount(), 0u);
}

TEST(SliceRepository, ConcurrentWaiterOnFailedPrepareCountsAMiss) {
  SliceSessionRepository Repo(4);
  PrepareGate Gate;
  Repo.setPrepareStartHookForTest([&](uint64_t) { Gate.block(); });

  Pinball Bogus; // empty pinball: the replayer rejects it
  std::string ErrOwner, ErrWaiter;
  std::shared_ptr<const SliceSession> FromOwner, FromWaiter;
  std::thread Owner([&] {
    SliceSessionOptions O;
    FromOwner = Repo.acquire(77, Bogus, O, ErrOwner);
  });
  Gate.awaitStarted();

  std::thread Waiter([&] {
    SliceSessionOptions O;
    FromWaiter = Repo.acquire(77, Bogus, O, ErrWaiter);
  });
  // Give the waiter time to join the in-flight future before the owner's
  // prepare is allowed to fail.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Gate.release();
  Owner.join();
  Waiter.join();

  // Both callers see the failure; a share of a failed prepare is a miss,
  // not a hit (the old accounting classified by promise ownership and
  // counted the waiter as a hit before the future had resolved).
  EXPECT_EQ(FromOwner, nullptr);
  EXPECT_EQ(FromWaiter, nullptr);
  EXPECT_FALSE(ErrOwner.empty());
  EXPECT_FALSE(ErrWaiter.empty());
  EXPECT_EQ(Repo.hits(), 0u);
  EXPECT_EQ(Repo.misses(), 2u);
  EXPECT_EQ(Repo.cachedCount(), 0u);
}

TEST(SliceRepository, ServerSessionsShareCachedSlices) {
  TempDir Tmp("server");
  Pinball Pb = figure5Pinball();
  std::string Error;
  ASSERT_TRUE(Pb.save(Tmp.Dir.string(), Error)) << Error;

  DebugServer Srv;
  const std::string Source = workloads::makeFigure5().SourceText;
  uint64_t Sids[2] = {Srv.sessions().create(), Srv.sessions().create()};

  std::string Out[2];
  std::thread Workers[2];
  for (int I = 0; I != 2; ++I)
    Workers[I] = std::thread([&, I] {
      std::string Chunk;
      bool LoadOk = false;
      ASSERT_EQ(Srv.sessions().loadProgram(Sids[I], Source, Chunk, LoadOk),
                SessionManager::ExecStatus::Ok);
      ASSERT_TRUE(LoadOk) << Chunk;
      ASSERT_EQ(Srv.sessions().execute(
                    Sids[I], "pinball load " + Tmp.Dir.string(), Chunk),
                SessionManager::ExecStatus::Ok);
      ASSERT_EQ(Srv.sessions().execute(Sids[I], "slice fail", Out[I]),
                SessionManager::ExecStatus::Ok);
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Out[0], Out[1]);
  EXPECT_NE(Out[0].find("slice:"), std::string::npos) << Out[0];
  EXPECT_EQ(Srv.sliceRepository().misses(), 1u);
  EXPECT_EQ(Srv.sliceRepository().hits(), 1u);

  std::string Report = Srv.statsReport();
  EXPECT_NE(Report.find("slices.cached 1"), std::string::npos) << Report;
  EXPECT_NE(Report.find("slices.cache_hits 1"), std::string::npos) << Report;
  EXPECT_NE(Report.find("slices.cache_misses 1"), std::string::npos) << Report;
}

} // namespace
