//===- tests/test_reverse.cpp - Reverse debugging tests -----------------------===//

#include "replay/checkpoints.h"
#include "replay/logger.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "test_util.h"
#include "vm/observer.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <sstream>

#include "debugger/session.h"

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

Pinball recordCounter(unsigned Iters) {
  std::ostringstream Src;
  Src << ".data g 0\n.func main\n  movi r1, " << Iters << "\n"
      << "l:\n  lda r2, @g\n  addi r2, r2, 1\n  sta r2, @g\n"
      << "  subi r1, r1, 1\n  bgt r1, r0, l\n  halt\n.endfunc\n";
  Program P = assembleOrDie(Src.str());
  RoundRobinScheduler Sched(1);
  return Logger::logWholeProgram(P, Sched).Pb;
}

TEST(Reverse, ForwardSteppingTracksPosition) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  EXPECT_EQ(CR.position(), 0u);
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(CR.stepForward());
  EXPECT_EQ(CR.position(), 5u);
  EXPECT_EQ(CR.runForward(), Machine::StopReason::Halted);
  EXPECT_EQ(CR.position(), Pb.instructionCount());
  EXPECT_TRUE(CR.atEnd());
  EXPECT_FALSE(CR.stepForward());
}

TEST(Reverse, StepBackwardRestoresPriorState) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, 8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;

  // Walk forward remembering g's value after every instruction.
  std::vector<int64_t> History;
  History.push_back(CR.machine().mem().load(G));
  while (CR.stepForward())
    History.push_back(CR.machine().mem().load(G));

  // Now walk all the way back, checking the value at each position.
  for (uint64_t Pos = CR.position(); Pos-- > 0;) {
    ASSERT_TRUE(CR.stepBackward());
    EXPECT_EQ(CR.position(), Pos);
    EXPECT_EQ(CR.machine().mem().load(G), History[Pos]) << "position " << Pos;
  }
  EXPECT_FALSE(CR.stepBackward()) << "cannot step before position 0";
}

TEST(Reverse, SeekJumpsBothDirections) {
  Pinball Pb = recordCounter(20);
  CheckpointedReplay CR(Pb, 16);
  ASSERT_TRUE(CR.valid());
  uint64_t End = Pb.instructionCount();
  ASSERT_TRUE(CR.seek(End));
  MachineState Final = CR.machine().snapshot();

  ASSERT_TRUE(CR.seek(End / 2));
  ASSERT_TRUE(CR.seek(3));
  ASSERT_TRUE(CR.seek(End));
  EXPECT_TRUE(CR.machine().snapshot() == Final)
      << "re-reaching the end must reproduce the same state";
  EXPECT_FALSE(CR.seek(End + 1));
}

TEST(Reverse, CheckpointsBoundReexecution) {
  Pinball Pb = recordCounter(200);
  CheckpointedReplay CR(Pb, /*Interval=*/16);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  EXPECT_GE(CR.checkpointCount(), Pb.instructionCount() / 16);
  // One backward step re-executes at most Interval-1 instructions.
  uint64_t Before = CR.reexecutedInstructions();
  ASSERT_TRUE(CR.stepBackward());
  EXPECT_LE(CR.reexecutedInstructions() - Before, 16u);
}

TEST(Reverse, ReverseFindLocatesLastWriteCondition) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, 8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;
  CR.runForward();
  // "When did g last become 5?" — reverse-continue with a watch predicate.
  uint64_t Pos = CR.reverseFind(
      [&](Machine &M) { return M.mem().load(G) == 5; });
  ASSERT_NE(Pos, ~0ULL);
  EXPECT_EQ(CR.machine().mem().load(G), 5);
  // One more forward step leaves g != 5 only when the next instruction
  // writes it; stepping to the found position + full forward replay works.
  ASSERT_TRUE(CR.seek(Pb.instructionCount()));
  EXPECT_EQ(CR.machine().mem().load(G), 10);
}

TEST(Reverse, WorksOnMultithreadedPinballs) {
  Program P = makeFigure5(nullptr);
  RoundRobinScheduler Sched(3);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  ASSERT_TRUE(Log.FailureCaptured);
  CheckpointedReplay CR(Log.Pb, 8);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  EXPECT_TRUE(CR.machine().assertFailed());
  uint64_t FailPos = CR.position();
  // Rewind past the failure; the assert flag is part of run-state and the
  // restored machine no longer reports it.
  ASSERT_TRUE(CR.seek(FailPos / 2));
  EXPECT_FALSE(CR.machine().assertFailed());
  // Forward again: the failure reproduces.
  ASSERT_TRUE(CR.seek(FailPos));
  EXPECT_TRUE(CR.machine().assertFailed());
}

//===----------------------------------------------------------------------===//
// Debugger integration
//===----------------------------------------------------------------------===//

TEST(Reverse, DebuggerReverseStepi) {
  Program P = makeFigure5(nullptr);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.execute("record failure");
  S.execute("replay");
  Out.str("");
  S.execute("reverse-stepi 3");
  std::string Text = Out.str();
  EXPECT_NE(Text.find("stepped backwards to position"), std::string::npos)
      << Text;
  Out.str("");
  S.execute("replay-position");
  EXPECT_NE(Out.str().find("replay position:"), std::string::npos);
  // Continue forward again to the failure.
  Out.str("");
  S.execute("continue");
  EXPECT_NE(Out.str().find("assertion FAILED"), std::string::npos)
      << Out.str();
}

//===----------------------------------------------------------------------===//
// Seek edge cases and failure handling
//===----------------------------------------------------------------------===//

TEST(Reverse, SeekExactlyOntoCheckpoint) {
  Pinball Pb = recordCounter(20);
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;
  std::vector<int64_t> History;
  History.push_back(CR.machine().mem().load(G));
  while (CR.stepForward())
    History.push_back(CR.machine().mem().load(G));
  // Landing exactly on a checkpointed position restores it directly — no
  // catch-up replay at all.
  for (uint64_t Pos : {uint64_t(16), uint64_t(8), uint64_t(0)}) {
    uint64_t Before = CR.reexecutedInstructions();
    ASSERT_TRUE(CR.seek(Pos));
    EXPECT_EQ(CR.position(), Pos);
    EXPECT_EQ(CR.reexecutedInstructions(), Before)
        << "seek onto checkpoint " << Pos << " must not re-execute";
    EXPECT_EQ(CR.machine().mem().load(G), History[Pos]);
  }
}

TEST(Reverse, StepBackwardAtZeroAfterDivergentReplay) {
  Pinball Pb = recordCounter(10);
  // Tamper: the schedule outlives the program, a fatal divergence.
  Pb.Schedule.push_back({ScheduleEvent::Kind::Step, 0, 5, 0});
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  EXPECT_EQ(CR.runForward(), Machine::StopReason::StopRequested);
  ASSERT_TRUE(CR.divergence());
  EXPECT_EQ(CR.divergence().Kind, DivergenceKind::ScheduleNotExhausted);
  uint64_t Stopped = CR.position();
  EXPECT_LT(Stopped, CR.scheduleLength()) << "tampered tail never executes";
  // Rewinding out of the divergent stop works (the clean prefix replays
  // cleanly), all the way to position 0 — where one more backward step
  // reports false instead of asserting or corrupting the position.
  ASSERT_TRUE(CR.seek(0));
  EXPECT_EQ(CR.position(), 0u);
  EXPECT_FALSE(CR.divergence());
  EXPECT_FALSE(CR.stepBackward());
  EXPECT_EQ(CR.position(), 0u);
}

TEST(Reverse, SeekReportsPartialLandingOnObserverStop) {
  Pinball Pb = recordCounter(20);
  CheckpointedReplay CR(Pb, /*Interval=*/16);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  ASSERT_GT(CR.position(), 40u);
  ASSERT_TRUE(CR.seek(44));
  // An observer that stops the machine partway through the catch-up replay:
  // seek must report the true landing position and charge only the
  // instructions that actually re-ran.
  struct Stopper : Observer {
    Machine &M;
    unsigned Left;
    explicit Stopper(Machine &M, unsigned Left) : M(M), Left(Left) {}
    void onPreExec(const Machine &, uint32_t, uint64_t) override {
      if (Left-- == 0)
        M.requestStop();
    }
  } Stop(CR.machine(), 4);
  CR.machine().addObserver(&Stop);
  uint64_t Before = CR.reexecutedInstructions();
  bool Ok = CR.seek(40); // checkpoint at 32, so 8 instructions of catch-up
  CR.machine().removeObserver(&Stop);
  CR.machine().clearStopRequest();
  EXPECT_FALSE(Ok);
  EXPECT_EQ(CR.position(), 36u) << "restored to 32, then 4 steps";
  EXPECT_EQ(CR.reexecutedInstructions() - Before, CR.position() - 32)
      << "only instructions that actually re-ran are charged";
}

TEST(Reverse, DropCheckpointsBeforeMakesEarlySeeksFailGracefully) {
  Pinball Pb = recordCounter(100);
  // Full checkpoints only: with deltas in play, early anchors stay alive
  // for as long as later deltas reference them, and the early seek would
  // still be served.
  CheckpointOptions Opts;
  Opts.Interval = 16;
  Opts.AnchorEvery = 1;
  CheckpointedReplay CR(Pb, Opts);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  uint64_t End = CR.position();
  ASSERT_GT(CR.checkpointCount(), 4u);
  EXPECT_GT(CR.dropCheckpointsBefore(64), 0u);
  size_t BytesAfter = CR.checkpointBytes();
  EXPECT_LT(BytesAfter, CR.peakCheckpointBytes());
  // Seeking into the dropped region fails with a diagnostic, leaving the
  // cursor where it was (the old code hit UB via a release-build assert).
  EXPECT_FALSE(CR.seek(10));
  EXPECT_EQ(CR.position(), End);
  EXPECT_NE(CR.lastError().find("no checkpoint at or before position 10"),
            std::string::npos)
      << CR.lastError();
  // Seeks at or after the earliest retained checkpoint still work.
  ASSERT_TRUE(CR.seek(70));
  EXPECT_EQ(CR.position(), 70u);
  EXPECT_TRUE(CR.lastError().empty());
}

//===----------------------------------------------------------------------===//
// reverseFind: segment scan semantics
//===----------------------------------------------------------------------===//

TEST(Reverse, ReverseFindMatchesAtPositionZero) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  uint64_t EntryPc = CR.machine().thread(0).Pc;
  CR.runForward();
  // The entry pc is only current at position 0 (the first instruction moves
  // past it and the loop never returns): the scan must check the segment
  // base positions themselves, not just stepped-to positions.
  uint64_t Pos = CR.reverseFind(
      [&](Machine &M) { return M.thread(0).Pc == EntryPc; });
  EXPECT_EQ(Pos, 0u);
  EXPECT_EQ(CR.position(), 0u);
}

TEST(Reverse, ReverseFindNeverMatchingRestoresCursor) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;
  CR.runForward();
  uint64_t Cursor = CR.position();
  MachineState At = CR.machine().snapshot();
  uint64_t Pos =
      CR.reverseFind([&](Machine &M) { return M.mem().load(G) == 999; });
  EXPECT_EQ(Pos, CheckpointedReplay::NotFound);
  EXPECT_EQ(CR.position(), Cursor) << "cursor must be restored on no-hit";
  EXPECT_TRUE(CR.machine().snapshot() == At);
  EXPECT_TRUE(CR.lastError().empty());
  EXPECT_GE(CR.segmentScans(), 1u);
}

TEST(Reverse, SegmentScanAgreesWithLinearBaseline) {
  Pinball Pb = recordCounter(30);
  CheckpointedReplay Fast(Pb, /*Interval=*/8);
  CheckpointedReplay Slow(Pb, /*Interval=*/8);
  ASSERT_TRUE(Fast.valid());
  ASSERT_TRUE(Slow.valid());
  uint64_t G = Fast.program().findGlobal("g")->Addr;
  Fast.runForward();
  Slow.runForward();
  for (int64_t Want : {1, 7, 15, 30, 31}) {
    auto Pred = [&](Machine &M) { return M.mem().load(G) == Want; };
    uint64_t A = Fast.reverseFind(Pred);
    uint64_t B = Slow.reverseFindLinear(Pred);
    EXPECT_EQ(A, B) << "g == " << Want;
    if (A != CheckpointedReplay::NotFound) {
      EXPECT_TRUE(Fast.machine().snapshot() == Slow.machine().snapshot())
          << "states at the found position must be bit-identical (g == "
          << Want << ")";
      // Re-sync both cursors to the end for the next query.
      ASSERT_TRUE(Fast.seek(Fast.scheduleLength()));
      ASSERT_TRUE(Slow.seek(Slow.scheduleLength()));
    }
  }
  EXPECT_LT(Fast.reexecutedInstructions(), Slow.reexecutedInstructions())
      << "the segment scan must re-execute far less than the naive loop";
}

//===----------------------------------------------------------------------===//
// Delta checkpoints and the memory budget
//===----------------------------------------------------------------------===//

TEST(Reverse, DeltaCheckpointsRestoreBitIdentically) {
  Pinball Pb = recordCounter(60);
  CheckpointOptions FullOpts;
  FullOpts.Interval = 8;
  FullOpts.AnchorEvery = 1; // every checkpoint a full snapshot
  CheckpointOptions DeltaOpts;
  DeltaOpts.Interval = 8;
  DeltaOpts.AnchorEvery = 4; // three of four checkpoints are page deltas
  CheckpointedReplay Full(Pb, FullOpts);
  CheckpointedReplay Delta(Pb, DeltaOpts);
  ASSERT_TRUE(Full.valid());
  ASSERT_TRUE(Delta.valid());
  Full.runForward();
  Delta.runForward();
  uint64_t End = Full.position();
  ASSERT_EQ(Delta.position(), End);
  for (uint64_t Pos : {End - 1, End / 2, uint64_t(17), uint64_t(9),
                       uint64_t(8), uint64_t(1), uint64_t(0)}) {
    ASSERT_TRUE(Full.seek(Pos));
    ASSERT_TRUE(Delta.seek(Pos));
    EXPECT_TRUE(Full.machine().snapshot() == Delta.machine().snapshot())
        << "delta-restored state differs at position " << Pos;
  }
  EXPECT_LT(Delta.checkpointBytes(), Full.checkpointBytes())
      << "page deltas must be cheaper than full snapshots";
}

TEST(Reverse, MemoryBudgetBoundsCheckpointBytes) {
  Pinball Pb = recordCounter(600);
  CheckpointOptions Unbounded;
  Unbounded.Interval = 16;
  Unbounded.AnchorEvery = 4;
  CheckpointedReplay Free(Pb, Unbounded);
  ASSERT_TRUE(Free.valid());
  Free.runForward();
  ASSERT_GT(Free.checkpointBytes(), 0u);

  CheckpointOptions Capped = Unbounded;
  Capped.MemoryBudgetBytes = Free.checkpointBytes() / 2;
  CheckpointedReplay Tight(Pb, Capped);
  ASSERT_TRUE(Tight.valid());
  Tight.runForward();
  EXPECT_LE(Tight.checkpointBytes(), Capped.MemoryBudgetBytes);
  EXPECT_LT(Tight.checkpointCount(), Free.checkpointCount());
  // Thinning must never break correctness — only cost. Every position is
  // still reachable (the position-0 anchor survives) and bit-identical.
  for (uint64_t Pos : {Free.position() - 3, Free.position() / 3, uint64_t(5)}) {
    ASSERT_TRUE(Free.seek(Pos));
    ASSERT_TRUE(Tight.seek(Pos));
    EXPECT_TRUE(Free.machine().snapshot() == Tight.machine().snapshot())
        << "budget-thinned replay diverges at position " << Pos;
  }
}

TEST(Reverse, ReverseSeekCostIsIntervalNotDistance) {
  // The cyclic-debugging regression this PR exists for: stepping backwards
  // n instructions costs one checkpoint restore plus at most ~Interval of
  // catch-up replay, however large n is.
  Pinball Pb = recordCounter(400);
  const uint64_t Interval = 16;
  CheckpointedReplay CR(Pb, Interval);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  uint64_t End = CR.position();
  ASSERT_GT(End, 1000u);
  for (uint64_t N : {uint64_t(5), uint64_t(100), uint64_t(1000)}) {
    ASSERT_TRUE(CR.seek(End));
    uint64_t Before = CR.reexecutedInstructions();
    ASSERT_TRUE(CR.seek(End - N));
    EXPECT_LT(CR.reexecutedInstructions() - Before, Interval)
        << "reverse-stepi " << N << " must cost O(Interval), not O(n)";
  }
}

//===----------------------------------------------------------------------===//
// Debugger integration: reverse-continue / reverse-next / reverse-watch
//===----------------------------------------------------------------------===//

/// A single-threaded counter program as debugger source text.
std::string counterSource(unsigned Iters) {
  std::ostringstream Src;
  Src << ".data g 0\n.func main\n  movi r1, " << Iters << "\n"
      << "l:\n  lda r2, @g\n  addi r2, r2, 1\n  sta r2, @g\n"
      << "  subi r1, r1, 1\n  bgt r1, r0, l\n  halt\n.endfunc\n";
  return Src.str();
}

TEST(Reverse, DebuggerReverseContinueToBreakpoint) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(10));
  S.execute("record region 0 40");
  S.execute("replay");
  Out.str("");
  S.execute("break 3"); // the sta instruction inside the loop
  S.execute("reverse-continue");
  std::string Text = Out.str();
  EXPECT_NE(Text.find("reverse-continue: breakpoint 1 hit at position"),
            std::string::npos)
      << Text;
}

TEST(Reverse, DebuggerReverseContinueToWatchpoint) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(10));
  S.execute("record region 0 200");
  S.execute("replay");
  Out.str("");
  S.execute("watch g");
  S.execute("reverse-continue");
  std::string Text = Out.str();
  EXPECT_NE(Text.find("reverse-continue: watchpoint 1 (g) last changed 9 -> "
                      "10 at position"),
            std::string::npos)
      << Text;
}

TEST(Reverse, DebuggerReverseContinueWithoutStopsRewindsToStart) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(5));
  S.execute("record region 0 40");
  S.execute("replay");
  Out.str("");
  S.execute("reverse-continue");
  EXPECT_NE(Out.str().find("reached the beginning of the recording"),
            std::string::npos)
      << Out.str();
  Out.str("");
  S.execute("reverse-next");
  EXPECT_NE(Out.str().find("does not run earlier"), std::string::npos)
      << Out.str();
}

TEST(Reverse, DebuggerReverseNextAndWatch) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(10));
  S.execute("record region 0 200");
  S.execute("replay");
  S.execute("replay-seek 20");
  Out.str("");
  S.execute("reverse-next");
  EXPECT_NE(Out.str().find("reverse-next: tid 0 about to execute at position "
                           "19"),
            std::string::npos)
      << Out.str();
  Out.str("");
  S.execute("reverse-watch g");
  EXPECT_NE(Out.str().find("reverse-watch: g last changed"), std::string::npos)
      << Out.str();
  Out.str("");
  S.execute("reverse-watch nosuch");
  EXPECT_NE(Out.str().find("unknown global"), std::string::npos);
}

TEST(Reverse, DebuggerReverseStepiCostRegression) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(400));
  S.execute("record region 0 2000");
  S.execute("replay");
  // reverse-stepi n must issue ONE seek: a single checkpoint restore plus
  // at most ~Interval (256 in the debugger) of catch-up, not n x Interval.
  auto &Reexec = metrics::MetricsRegistry::global().counter(
      metricnames::ReplayReexecutedInstructions);
  uint64_t Before = Reexec.value();
  Out.str("");
  S.execute("reverse-stepi 1500");
  EXPECT_NE(Out.str().find("stepped backwards to position"),
            std::string::npos)
      << Out.str();
  EXPECT_LT(Reexec.value() - Before, 256u)
      << "reverse-stepi 1500 re-executed O(n x Interval) instructions";
}

TEST(Reverse, DebuggerReplayPositionReportsScheduleLength) {
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(counterSource(10));
  S.execute("record region 0 40");
  S.execute("replay");
  S.execute("replay-seek 7");
  Out.str("");
  S.execute("replay-position");
  // The honest report: true recorded length (not the old cursor+1 guess)
  // and the checkpoint memory held.
  std::string Text = Out.str();
  EXPECT_NE(Text.find("replay position: 7 of "), std::string::npos) << Text;
  EXPECT_EQ(Text.find("replay position: 7 of 8"), std::string::npos)
      << "still reporting cursor+1 instead of the schedule length: " << Text;
  EXPECT_NE(Text.find(" recorded instructions (checkpoints: "),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("bytes)"), std::string::npos) << Text;
}

TEST(Reverse, DebuggerReplaySeek) {
  Program P = makeFigure5(nullptr);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.execute("record failure");
  S.execute("replay");
  Out.str("");
  S.execute("replay-seek 0");
  EXPECT_NE(Out.str().find("replay position: 0"), std::string::npos)
      << Out.str();
  Out.str("");
  S.execute("replay-seek 5");
  EXPECT_NE(Out.str().find("replay position: 5"), std::string::npos);
}

} // namespace
