//===- tests/test_reverse.cpp - Reverse debugging tests -----------------------===//

#include "replay/checkpoints.h"
#include "replay/logger.h"
#include "test_util.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <sstream>

#include "debugger/session.h"

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

Pinball recordCounter(unsigned Iters) {
  std::ostringstream Src;
  Src << ".data g 0\n.func main\n  movi r1, " << Iters << "\n"
      << "l:\n  lda r2, @g\n  addi r2, r2, 1\n  sta r2, @g\n"
      << "  subi r1, r1, 1\n  bgt r1, r0, l\n  halt\n.endfunc\n";
  Program P = assembleOrDie(Src.str());
  RoundRobinScheduler Sched(1);
  return Logger::logWholeProgram(P, Sched).Pb;
}

TEST(Reverse, ForwardSteppingTracksPosition) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, /*Interval=*/8);
  ASSERT_TRUE(CR.valid());
  EXPECT_EQ(CR.position(), 0u);
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(CR.stepForward());
  EXPECT_EQ(CR.position(), 5u);
  EXPECT_EQ(CR.runForward(), Machine::StopReason::Halted);
  EXPECT_EQ(CR.position(), Pb.instructionCount());
  EXPECT_TRUE(CR.atEnd());
  EXPECT_FALSE(CR.stepForward());
}

TEST(Reverse, StepBackwardRestoresPriorState) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, 8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;

  // Walk forward remembering g's value after every instruction.
  std::vector<int64_t> History;
  History.push_back(CR.machine().mem().load(G));
  while (CR.stepForward())
    History.push_back(CR.machine().mem().load(G));

  // Now walk all the way back, checking the value at each position.
  for (uint64_t Pos = CR.position(); Pos-- > 0;) {
    ASSERT_TRUE(CR.stepBackward());
    EXPECT_EQ(CR.position(), Pos);
    EXPECT_EQ(CR.machine().mem().load(G), History[Pos]) << "position " << Pos;
  }
  EXPECT_FALSE(CR.stepBackward()) << "cannot step before position 0";
}

TEST(Reverse, SeekJumpsBothDirections) {
  Pinball Pb = recordCounter(20);
  CheckpointedReplay CR(Pb, 16);
  ASSERT_TRUE(CR.valid());
  uint64_t End = Pb.instructionCount();
  ASSERT_TRUE(CR.seek(End));
  MachineState Final = CR.machine().snapshot();

  ASSERT_TRUE(CR.seek(End / 2));
  ASSERT_TRUE(CR.seek(3));
  ASSERT_TRUE(CR.seek(End));
  EXPECT_TRUE(CR.machine().snapshot() == Final)
      << "re-reaching the end must reproduce the same state";
  EXPECT_FALSE(CR.seek(End + 1));
}

TEST(Reverse, CheckpointsBoundReexecution) {
  Pinball Pb = recordCounter(200);
  CheckpointedReplay CR(Pb, /*Interval=*/16);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  EXPECT_GE(CR.checkpointCount(), Pb.instructionCount() / 16);
  // One backward step re-executes at most Interval-1 instructions.
  uint64_t Before = CR.reexecutedInstructions();
  ASSERT_TRUE(CR.stepBackward());
  EXPECT_LE(CR.reexecutedInstructions() - Before, 16u);
}

TEST(Reverse, ReverseFindLocatesLastWriteCondition) {
  Pinball Pb = recordCounter(10);
  CheckpointedReplay CR(Pb, 8);
  ASSERT_TRUE(CR.valid());
  uint64_t G = CR.program().findGlobal("g")->Addr;
  CR.runForward();
  // "When did g last become 5?" — reverse-continue with a watch predicate.
  uint64_t Pos = CR.reverseFind(
      [&](Machine &M) { return M.mem().load(G) == 5; });
  ASSERT_NE(Pos, ~0ULL);
  EXPECT_EQ(CR.machine().mem().load(G), 5);
  // One more forward step leaves g != 5 only when the next instruction
  // writes it; stepping to the found position + full forward replay works.
  ASSERT_TRUE(CR.seek(Pb.instructionCount()));
  EXPECT_EQ(CR.machine().mem().load(G), 10);
}

TEST(Reverse, WorksOnMultithreadedPinballs) {
  Program P = makeFigure5(nullptr);
  RoundRobinScheduler Sched(3);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  ASSERT_TRUE(Log.FailureCaptured);
  CheckpointedReplay CR(Log.Pb, 8);
  ASSERT_TRUE(CR.valid());
  CR.runForward();
  EXPECT_TRUE(CR.machine().assertFailed());
  uint64_t FailPos = CR.position();
  // Rewind past the failure; the assert flag is part of run-state and the
  // restored machine no longer reports it.
  ASSERT_TRUE(CR.seek(FailPos / 2));
  EXPECT_FALSE(CR.machine().assertFailed());
  // Forward again: the failure reproduces.
  ASSERT_TRUE(CR.seek(FailPos));
  EXPECT_TRUE(CR.machine().assertFailed());
}

//===----------------------------------------------------------------------===//
// Debugger integration
//===----------------------------------------------------------------------===//

TEST(Reverse, DebuggerReverseStepi) {
  Program P = makeFigure5(nullptr);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.execute("record failure");
  S.execute("replay");
  Out.str("");
  S.execute("reverse-stepi 3");
  std::string Text = Out.str();
  EXPECT_NE(Text.find("stepped backwards to position"), std::string::npos)
      << Text;
  Out.str("");
  S.execute("replay-position");
  EXPECT_NE(Out.str().find("replay position:"), std::string::npos);
  // Continue forward again to the failure.
  Out.str("");
  S.execute("continue");
  EXPECT_NE(Out.str().find("assertion FAILED"), std::string::npos)
      << Out.str();
}

TEST(Reverse, DebuggerReplaySeek) {
  Program P = makeFigure5(nullptr);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.execute("record failure");
  S.execute("replay");
  Out.str("");
  S.execute("replay-seek 0");
  EXPECT_NE(Out.str().find("replay position: 0"), std::string::npos)
      << Out.str();
  Out.str("");
  S.execute("replay-seek 5");
  EXPECT_NE(Out.str().find("replay position: 5"), std::string::npos);
}

} // namespace
