//===- tests/test_cli.cpp - drdebug CLI binary tests --------------------------===//
//
// Drives the shippable `drdebug` executable end-to-end: scripted sessions
// over a program file and the --demo workflow. The binary's path is
// injected by CMake (DRDEBUG_CLI_PATH).
//
//===----------------------------------------------------------------------===//

#include "debugger/commands.h"
#include "debugger/session.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef DRDEBUG_CLI_PATH
#define DRDEBUG_CLI_PATH "drdebug"
#endif

using namespace drdebug;
namespace fs = std::filesystem;

namespace {

/// Runs the CLI with arguments, returns (exit code, combined output).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Cmd = std::string(DRDEBUG_CLI_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Output;
  char Buf[512];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Output};
}

struct TempFiles {
  fs::path Dir;
  TempFiles() {
    Dir = fs::temp_directory_path() / ("drdebug_cli_" + std::to_string(getpid()));
    fs::create_directories(Dir);
  }
  ~TempFiles() { fs::remove_all(Dir); }
  fs::path write(const char *Name, const std::string &Content) {
    fs::path P = Dir / Name;
    std::ofstream OS(P);
    OS << Content;
    return P;
  }
};

TEST(Cli, HelpExitsZero) {
  auto [Rc, Out] = runCli("--help");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("record region"), std::string::npos);
  EXPECT_NE(Out.find("slice fail"), std::string::npos);
}

TEST(Cli, VersionFlag) {
  auto [Rc, Out] = runCli("--version");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find(std::string("drdebug ") + DrDebugVersion),
            std::string::npos)
      << Out;
}

// Every word in the shared command table must be accepted by the session
// dispatcher: the generated help text and the executable commands cannot
// drift apart.
TEST(Cli, HelpTableMatchesDispatcher) {
  std::ostringstream OS;
  DebugSession S(OS);
  S.loadProgramText(workloads::makeFigure5().SourceText);
  for (const CommandInfo &Info : commandTable()) {
    std::vector<std::string> Words = {Info.Word};
    std::istringstream AliasIS(Info.Aliases);
    for (std::string A; AliasIS >> A;)
      Words.push_back(A);
    for (const std::string &Word : Words) {
      if (Word == "quit" || Word == "q")
        continue; // would end the session
      OS.str("");
      S.execute(Word);
      EXPECT_EQ(OS.str().find("unknown command"), std::string::npos)
          << "table entry '" << Word << "' is not dispatched";
    }
  }
}

TEST(Cli, NoArgumentsPrintsUsage) {
  auto [Rc, Out] = runCli("");
  EXPECT_EQ(Rc, 2);
  EXPECT_NE(Out.find("usage:"), std::string::npos);
}

// --flight drives the session itself, so combining it with a command script
// is rejected up front instead of silently ignoring the script.
TEST(Cli, FlightRejectsScript) {
  auto [Rc, Out] = runCli("--demo --flight /tmp/never_written -x /dev/null");
  EXPECT_EQ(Rc, 2);
  EXPECT_NE(Out.find("usage:"), std::string::npos) << Out;
}

TEST(Cli, MissingProgramFileFails) {
  auto [Rc, Out] = runCli("/nonexistent/prog.asm -x /dev/null");
  EXPECT_EQ(Rc, 1);
  EXPECT_NE(Out.find("cannot read"), std::string::npos);
}

TEST(Cli, ScriptedSessionOnProgramFile) {
  TempFiles T;
  auto Prog = T.write("prog.asm", ".data g 0\n"
                                  ".func main\n"
                                  "  movi r1, 6\n"
                                  "  muli r1, r1, 7\n"
                                  "  sta r1, @g\n"
                                  "  lda r2, @g\n"
                                  "  syswrite r2\n"
                                  "  halt\n.endfunc\n");
  auto Script = T.write("script", "run\noutput\nprint g\nquit\n");
  auto [Rc, Out] = runCli(Prog.string() + " -x " + Script.string());
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("program exited"), std::string::npos) << Out;
  EXPECT_NE(Out.find("output: 42"), std::string::npos) << Out;
  EXPECT_NE(Out.find("g = 42"), std::string::npos) << Out;
}

TEST(Cli, DemoRecordReplaySlice) {
  TempFiles T;
  auto Script = T.write("script", "record failure\n"
                                  "replay\n"
                                  "slice fail\n"
                                  "slice pinball\n"
                                  "slice replay\n"
                                  "slice step\n"
                                  "quit\n");
  auto [Rc, Out] = runCli(std::string("--demo -x ") + Script.string());
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("failure captured"), std::string::npos) << Out;
  EXPECT_NE(Out.find("assertion FAILED"), std::string::npos) << Out;
  EXPECT_NE(Out.find("slice:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("slice pinball:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("slice step:"), std::string::npos) << Out;
}

TEST(Cli, PipedStdinWorks) {
  TempFiles T;
  auto Prog = T.write("prog.asm",
                      ".func main\n  movi r1, 1\n  syswrite r1\n"
                      "  halt\n.endfunc\n");
  std::string Cmd = "echo 'run\noutput\nquit' | " +
                    std::string(DRDEBUG_CLI_PATH) + " " + Prog.string() +
                    " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[256];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Out += Buf;
  pclose(Pipe);
  EXPECT_NE(Out.find("output: 1"), std::string::npos) << Out;
}

TEST(Cli, ReverseDebuggingScript) {
  TempFiles T;
  auto Script = T.write("script", "record failure\n"
                                  "replay\n"
                                  "reverse-stepi 2\n"
                                  "replay-position\n"
                                  "continue\n"
                                  "quit\n");
  auto [Rc, Out] = runCli(std::string("--demo -x ") + Script.string());
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("stepped backwards to position"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("replay position:"), std::string::npos) << Out;
}

} // namespace
