//===- tests/test_snapshot.cpp - Snapshot/restore tests ---------------------===//

#include "test_util.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

Program makeBusyProgram() {
  return assembleOrDie(".data shared 0\n.data m 0\n"
                       ".func main\n"
                       "  spawn r1, w, r0\n"
                       "  movi r2, 30\n"
                       "m1:\n"
                       "  lea r4, @m\n  lock r4\n"
                       "  lda r3, @shared\n  addi r3, r3, 3\n"
                       "  sta r3, @shared\n  unlock r4\n"
                       "  push r2\n  pop r5\n"
                       "  subi r2, r2, 1\n  bgt r2, r0, m1\n"
                       "  join r1\n"
                       "  lda r3, @shared\n  syswrite r3\n"
                       "  halt\n.endfunc\n"
                       ".func w\n"
                       "  movi r2, 30\n"
                       "w1:\n"
                       "  lea r4, @m\n  lock r4\n"
                       "  lda r3, @shared\n  muli r3, r3, 2\n"
                       "  sta r3, @shared\n  unlock r4\n"
                       "  subi r2, r2, 1\n  bgt r2, r0, w1\n"
                       "  ret\n.endfunc\n");
}

TEST(Snapshot, SnapshotEqualsItself) {
  Program P = makeBusyProgram();
  RoundRobinScheduler Sched(3);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run(100);
  MachineState S1 = M.snapshot();
  MachineState S2 = M.snapshot();
  EXPECT_TRUE(S1 == S2);
}

TEST(Snapshot, RestoreRoundTrips) {
  Program P = makeBusyProgram();
  RoundRobinScheduler Sched(3);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run(120);
  MachineState S = M.snapshot();
  M.run(50); // diverge
  EXPECT_FALSE(M.snapshot() == S);
  M.restore(S);
  EXPECT_TRUE(M.snapshot() == S);
}

/// Resuming from a snapshot with a fresh scheduler of the same kind/seed
/// reproduces the exact same continuation.
TEST(Snapshot, ResumeEquivalence) {
  Program P = makeBusyProgram();

  // Run A: straight through, recording the tail after step 100.
  uint64_t TailHashA;
  MachineState Mid;
  {
    RandomScheduler Sched(7, 1, 2);
    Machine M(P);
    M.setScheduler(&Sched);
    M.run(100);
    Mid = M.snapshot();
    TraceHashObserver H;
    M.addObserver(&H);
    // Use a deterministic continuation policy so a second machine can repeat
    // it: round robin from here.
    RoundRobinScheduler Tail(2);
    M.setScheduler(&Tail);
    M.run();
    TailHashA = H.hash();
  }

  // Run B: a brand-new machine restored from the snapshot.
  {
    Machine M(P);
    M.restore(Mid);
    TraceHashObserver H;
    M.addObserver(&H);
    RoundRobinScheduler Tail(2);
    M.setScheduler(&Tail);
    M.run();
    EXPECT_EQ(H.hash(), TailHashA);
  }
}

TEST(Snapshot, TextSerializationRoundTrips) {
  Program P = makeBusyProgram();
  RoundRobinScheduler Sched(5);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run(200);
  MachineState S = M.snapshot();

  std::stringstream SS;
  S.save(SS);
  MachineState Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.load(SS, Error)) << Error;
  EXPECT_TRUE(S == Loaded);
}

TEST(Snapshot, SerializationIsDeterministic) {
  Program P = makeBusyProgram();
  RoundRobinScheduler Sched(5);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run(150);
  std::stringstream A, B;
  M.snapshot().save(A);
  M.snapshot().save(B);
  EXPECT_EQ(A.str(), B.str());
}

TEST(Snapshot, LoadRejectsGarbage) {
  std::stringstream SS("this is not a machine state");
  MachineState S;
  std::string Error;
  EXPECT_FALSE(S.load(SS, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Snapshot, CapturesBlockedThreads) {
  Program P = assembleOrDie(".data m 0\n"
                            ".func main\n"
                            "  lea r1, @m\n  lock r1\n"
                            "  spawn r2, w, r0\n"
                            "  nop\n  nop\n  nop\n  nop\n"
                            "  unlock r1\n  join r2\n  halt\n.endfunc\n"
                            ".func w\n"
                            "  lea r1, @m\n  lock r1\n  unlock r1\n"
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  // Run until the worker has attempted the lock and blocked.
  M.run(8);
  MachineState S = M.snapshot();
  bool SawBlocked = false;
  for (const ThreadContext &T : S.Threads)
    if (T.Status == ThreadStatus::BlockedOnLock)
      SawBlocked = true;
  EXPECT_TRUE(SawBlocked);
  // Restoring and continuing still completes.
  Machine M2(P);
  M2.restore(S);
  RoundRobinScheduler Sched2(1);
  M2.setScheduler(&Sched2);
  EXPECT_EQ(M2.run(), Machine::StopReason::Halted);
}

} // namespace
