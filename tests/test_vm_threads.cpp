//===- tests/test_vm_threads.cpp - Multi-thread interpreter tests -----------===//

#include "test_util.h"

#include <gtest/gtest.h>

#include <set>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

TEST(VmThreads, SpawnJoinPassesArgument) {
  Program P = assembleOrDie(".data result 0\n"
                            ".func main\n"
                            "  movi r1, 21\n"
                            "  spawn r2, worker, r1\n"
                            "  join r2\n"
                            "  lda r3, @result\n"
                            "  syswrite r3\n"
                            "  halt\n.endfunc\n"
                            ".func worker\n" // argument arrives in r0
                            "  add r1, r0, r0\n"
                            "  sta r1, @result\n"
                            "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 42);
}

TEST(VmThreads, SpawnReturnsTidsInOrder) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n"
                            "  spawn r2, w, r0\n"
                            "  syswrite r1\n  syswrite r2\n"
                            "  join r1\n  join r2\n"
                            "  halt\n.endfunc\n"
                            ".func w\n  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], 1);
  EXPECT_EQ(Out[1], 2);
}

TEST(VmThreads, ThreadsHaveSeparateStacks) {
  Program P = assembleOrDie(".data out0 0\n.data out1 0\n"
                            ".func main\n"
                            "  movi r1, 7\n"
                            "  spawn r2, child, r1\n"
                            "  movi r3, 9\n"
                            "  push r3\n"
                            "  join r2\n"
                            "  pop r4\n"
                            "  sta r4, @out0\n"
                            "  lda r5, @out0\n  syswrite r5\n"
                            "  lda r5, @out1\n  syswrite r5\n"
                            "  halt\n.endfunc\n"
                            ".func child\n"
                            "  push r0\n"
                            "  pop r1\n"
                            "  sta r1, @out1\n"
                            "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], 9);
  EXPECT_EQ(Out[1], 7);
}

TEST(VmThreads, JoinOnExitedThreadSucceedsImmediately) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n"
                            "  join r1\n"
                            "  join r1\n" // second join: already exited
                            "  halt\n.endfunc\n"
                            ".func w\n  ret\n.endfunc\n");
  EXPECT_EQ(runProgram(P), Machine::StopReason::Halted);
}

/// Mutual exclusion: with the critical section protected, the final counter
/// equals the exact sum regardless of the interleaving seed.
TEST(VmThreads, LockProvidesMutualExclusion) {
  std::string Src = ".data counter 0\n.data mtx 0\n"
                    ".func main\n"
                    "  spawn r1, adder, r0\n"
                    "  spawn r2, adder, r0\n"
                    "  join r1\n  join r2\n"
                    "  lda r3, @counter\n  syswrite r3\n"
                    "  halt\n.endfunc\n"
                    ".func adder\n"
                    "  movi r1, 100\n"
                    "  lea r2, @mtx\n"
                    "loop:\n"
                    "  lock r2\n"
                    "  lda r3, @counter\n"
                    "  addi r3, r3, 1\n"
                    "  sta r3, @counter\n"
                    "  unlock r2\n"
                    "  subi r1, r1, 1\n"
                    "  bgt r1, r0, loop\n"
                    "  ret\n.endfunc\n";
  Program P = assembleOrDie(Src);
  for (uint64_t Seed : {1u, 2u, 3u, 17u, 99u}) {
    RandomScheduler Sched(Seed, 1, 3);
    Machine M(P);
    M.setScheduler(&Sched);
    ASSERT_EQ(M.run(5'000'000), Machine::StopReason::Halted) << Seed;
    ASSERT_EQ(M.output().size(), 1u);
    EXPECT_EQ(M.output()[0], 200) << "seed " << Seed;
  }
}

/// Without the lock, some seed exhibits a lost update (the data race the
/// paper's case studies revolve around).
TEST(VmThreads, UnprotectedCounterLosesUpdates) {
  std::string Src = ".data counter 0\n"
                    ".func main\n"
                    "  spawn r1, adder, r0\n"
                    "  spawn r2, adder, r0\n"
                    "  join r1\n  join r2\n"
                    "  lda r3, @counter\n  syswrite r3\n"
                    "  halt\n.endfunc\n"
                    ".func adder\n"
                    "  movi r1, 100\n"
                    "loop:\n"
                    "  lda r3, @counter\n"
                    "  addi r3, r3, 1\n"
                    "  sta r3, @counter\n"
                    "  subi r1, r1, 1\n"
                    "  bgt r1, r0, loop\n"
                    "  ret\n.endfunc\n";
  Program P = assembleOrDie(Src);
  bool SawLostUpdate = false;
  for (uint64_t Seed = 1; Seed <= 20 && !SawLostUpdate; ++Seed) {
    RandomScheduler Sched(Seed, 1, 2);
    Machine M(P);
    M.setScheduler(&Sched);
    ASSERT_EQ(M.run(5'000'000), Machine::StopReason::Halted);
    if (M.output()[0] < 200)
      SawLostUpdate = true;
  }
  EXPECT_TRUE(SawLostUpdate);
}

TEST(VmThreads, AtomicAddNeverLosesUpdates) {
  std::string Src = ".data counter 0\n"
                    ".func main\n"
                    "  spawn r1, adder, r0\n"
                    "  spawn r2, adder, r0\n"
                    "  join r1\n  join r2\n"
                    "  lda r3, @counter\n  syswrite r3\n"
                    "  halt\n.endfunc\n"
                    ".func adder\n"
                    "  movi r1, 100\n"
                    "  lea r2, @counter\n"
                    "  movi r4, 1\n"
                    "loop:\n"
                    "  atomicadd r5, [r2], r4\n"
                    "  subi r1, r1, 1\n"
                    "  bgt r1, r0, loop\n"
                    "  ret\n.endfunc\n";
  Program P = assembleOrDie(Src);
  for (uint64_t Seed : {4u, 8u, 15u}) {
    RandomScheduler Sched(Seed, 1, 2);
    Machine M(P);
    M.setScheduler(&Sched);
    ASSERT_EQ(M.run(5'000'000), Machine::StopReason::Halted);
    EXPECT_EQ(M.output()[0], 200) << "seed " << Seed;
  }
}

TEST(VmThreads, DeadlockDetected) {
  // Two threads acquire two mutexes in opposite order; round-robin with
  // quantum 1 interleaves them into the deadlock.
  Program P = assembleOrDie(".data m1 0\n.data m2 0\n"
                            ".func main\n"
                            "  spawn r1, t1, r0\n"
                            "  spawn r2, t2, r0\n"
                            "  join r1\n  join r2\n"
                            "  halt\n.endfunc\n"
                            ".func t1\n"
                            "  lea r1, @m1\n  lea r2, @m2\n"
                            "  lock r1\n  nop\n  nop\n  nop\n  nop\n"
                            "  lock r2\n"
                            "  unlock r2\n  unlock r1\n  ret\n.endfunc\n"
                            ".func t2\n"
                            "  lea r1, @m2\n  lea r2, @m1\n"
                            "  lock r1\n  nop\n  nop\n  nop\n  nop\n"
                            "  lock r2\n"
                            "  unlock r2\n  unlock r1\n  ret\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  EXPECT_EQ(M.run(100000), Machine::StopReason::Deadlock);
}

TEST(VmThreads, BlockedLockDoesNotCountAsExecution) {
  Program P = assembleOrDie(".data m 0\n"
                            ".func main\n"
                            "  lea r1, @m\n"
                            "  lock r1\n"
                            "  spawn r2, w, r0\n"
                            "  nop\n  nop\n  nop\n  nop\n  nop\n"
                            "  unlock r1\n"
                            "  join r2\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  lea r1, @m\n"
                            "  lock r1\n"
                            "  unlock r1\n"
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);
  // Worker executed exactly: lea, lock, unlock, ret.
  EXPECT_EQ(M.thread(1).ExecCount, 4u);
}

TEST(VmThreads, SchedulerDeterminismPerSeed) {
  std::string Src = ".data x 0\n"
                    ".func main\n"
                    "  spawn r1, w, r0\n"
                    "  movi r2, 50\n"
                    "m1:\n  lda r3, @x\n  addi r3, r3, 1\n  sta r3, @x\n"
                    "  subi r2, r2, 1\n  bgt r2, r0, m1\n"
                    "  join r1\n"
                    "  lda r3, @x\n  syswrite r3\n"
                    "  halt\n.endfunc\n"
                    ".func w\n"
                    "  movi r2, 50\n"
                    "w1:\n  lda r3, @x\n  muli r3, r3, 2\n  sta r3, @x\n"
                    "  subi r2, r2, 1\n  bgt r2, r0, w1\n"
                    "  ret\n.endfunc\n";
  Program P = assembleOrDie(Src);
  auto RunWithSeed = [&](uint64_t Seed) {
    RandomScheduler Sched(Seed, 1, 2);
    TraceHashObserver H;
    Machine M(P);
    M.setScheduler(&Sched);
    M.addObserver(&H);
    EXPECT_EQ(M.run(), Machine::StopReason::Halted);
    return H.hash();
  };
  std::set<uint64_t> DistinctHashes;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    uint64_t H1 = RunWithSeed(Seed);
    uint64_t H2 = RunWithSeed(Seed);
    EXPECT_EQ(H1, H2) << "same seed must reproduce the same execution";
    DistinctHashes.insert(H1);
  }
  // Different seeds should produce several different interleavings.
  EXPECT_GT(DistinctHashes.size(), 1u);
}

TEST(VmThreads, PrioritySchedulerPrefersHighPriority) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n"
                            "  syswrite r0\n" // writes 0
                            "  join r1\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  movi r1, 1\n  syswrite r1\n  ret\n.endfunc\n");
  PriorityScheduler Sched;
  Sched.setPriority(1, 10); // boost the worker once it exists
  Machine M(P);
  M.setScheduler(&Sched);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);
  // After the spawn, the worker (priority 10) runs to completion before the
  // main thread writes.
  ASSERT_EQ(M.output().size(), 2u);
  EXPECT_EQ(M.output()[0], 1);
  EXPECT_EQ(M.output()[1], 0);
}

TEST(VmThreads, SpawnRecordsChildR0Def) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 5\n"
                            "  spawn r2, w, r1\n"
                            "  join r2\n  halt\n.endfunc\n"
                            ".func w\n  ret\n.endfunc\n");
  struct Find : Observer {
    bool FoundChildDef = false;
    void onExec(const Machine &, const ExecRecord &R) override {
      if (R.Inst->Op != Opcode::Spawn)
        return;
      for (const auto &Def : R.Defs)
        if (isRegLoc(Def.Loc) && locTid(Def.Loc) == 1 && locReg(Def.Loc) == 0)
          FoundChildDef = Def.Value == 5;
    }
  } F;
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  M.addObserver(&F);
  M.run();
  EXPECT_TRUE(F.FoundChildDef);
}

} // namespace
