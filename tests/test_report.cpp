//===- tests/test_report.cpp - Slice report rendering tests -------------------===//

#include "debugger/session.h"
#include "replay/logger.h"
#include "slicing/report.h"
#include "slicing/slicer.h"
#include "test_util.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

struct Prepared {
  std::unique_ptr<SliceSession> S;
  Slice Sl;
  Figure5Lines Lines;

  Prepared() {
    Program P = makeFigure5(&Lines);
    RoundRobinScheduler Sched(3);
    LogResult Log = Logger::logWholeProgram(P, Sched);
    S = std::make_unique<SliceSession>(Log.Pb);
    std::string Error;
    EXPECT_TRUE(S->prepare(Error)) << Error;
    auto C = S->failureCriterion();
    EXPECT_TRUE(C.has_value());
    Sl = *S->computeSlice(*C);
  }
};

TEST(SliceReport, TextMarksSliceAndCriterionLines) {
  Prepared P;
  std::ostringstream OS;
  writeSliceReportText(OS, P.S->program(), P.S->globalTrace(), P.Sl);
  std::string Text = OS.str();
  // Header counts.
  EXPECT_NE(Text.find("dynamic slice: " + std::to_string(P.Sl.dynamicSize())),
            std::string::npos);
  // The racy write's line is starred; grab that source line's text.
  std::istringstream IS(Text);
  std::string Line;
  bool SawStarredRacyWrite = false, SawCriterionMark = false;
  while (std::getline(IS, Line)) {
    if (Line.rfind("*", 0) == 0) {
      if (Line.find("\t  sta r3, @x") != std::string::npos)
        SawStarredRacyWrite = true;
      if (Line.rfind("*C", 0) == 0 &&
          Line.find("assert r7") != std::string::npos)
        SawCriterionMark = true;
    }
  }
  EXPECT_TRUE(SawStarredRacyWrite);
  EXPECT_TRUE(SawCriterionMark);
  // Dependence section exists with both kinds.
  EXPECT_NE(Text.find("[data]"), std::string::npos);
  EXPECT_NE(Text.find("[ctrl]"), std::string::npos);
}

TEST(SliceReport, UnrelatedLinesAreNotMarked) {
  Prepared P;
  std::ostringstream OS;
  writeSliceReportText(OS, P.S->program(), P.S->globalTrace(), P.Sl);
  std::istringstream IS(OS.str());
  std::string Line;
  while (std::getline(IS, Line))
    if (Line.find("sta r4, @junk") != std::string::npos)
      EXPECT_NE(Line.rfind("*", 0), 0u) << "unrelated line marked: " << Line;
}

TEST(SliceReport, HtmlHighlightsAndLinks) {
  Prepared P;
  std::ostringstream OS;
  writeSliceReportHtml(OS, P.S->program(), P.S->globalTrace(), P.Sl);
  std::string Html = OS.str();
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("class=\"line slice\""), std::string::npos);
  EXPECT_NE(Html.find("class=\"line criterion\""), std::string::npos);
  // Navigation anchors exist for the racy write's line.
  EXPECT_NE(Html.find("id=\"L" + std::to_string(P.Lines.RacyWriteLine) + "\""),
            std::string::npos);
  EXPECT_NE(Html.find("href=\"#L"), std::string::npos);
}

TEST(SliceReport, HtmlEscapesSource) {
  // A program whose source contains HTML-special characters (via comments).
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1 ; a < b & c > d\n"
                            "  sta r1, @g\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  SliceSession S(Log.Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 1;
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  std::ostringstream OS;
  writeSliceReportHtml(OS, S.program(), S.globalTrace(), *Sl);
  EXPECT_NE(OS.str().find("a &lt; b &amp; c &gt; d"), std::string::npos);
}

TEST(SliceReport, DebuggerSliceReportCommand) {
  namespace fs = std::filesystem;
  auto Path = fs::temp_directory_path() / "drdebug_slice_report.html";
  fs::remove(Path);

  Program P = makeFigure5(nullptr);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.runScript({"record failure", "slice fail",
               "slice report " + Path.string()});
  EXPECT_NE(Out.str().find("slice report written"), std::string::npos)
      << Out.str();
  std::ifstream IS(Path);
  ASSERT_TRUE(IS.good());
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  EXPECT_NE(Buf.str().find("DrDebug slice"), std::string::npos);
  fs::remove(Path);
}

} // namespace
