//===- tests/test_logger_replayer.cpp - Record/replay integration tests -----===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

/// A program whose behaviour depends on every source of non-determinism:
/// inputs, random values, clock, allocation, and thread interleaving.
Program makeNondeterministicProgram() {
  return assembleOrDie(
      ".data acc 0\n"
      ".func main\n"
      "  spawn r1, mixer, r0\n"
      "  movi r2, 40\n"
      "m1:\n"
      "  sysrand r3\n"
      "  modi r3, r3, 97\n"
      "  lda r4, @acc\n  add r4, r4, r3\n  sta r4, @acc\n"
      "  subi r2, r2, 1\n  bgt r2, r0, m1\n"
      "  sysread r5\n"
      "  lda r4, @acc\n  add r4, r4, r5\n  sta r4, @acc\n"
      "  join r1\n"
      "  lda r4, @acc\n  syswrite r4\n"
      "  halt\n.endfunc\n"
      ".func mixer\n"
      "  movi r2, 40\n"
      "x1:\n"
      "  systime r3\n"
      "  movi r6, 2\n  sysalloc r5, r6\n"
      "  st r3, [r5]\n  ld r7, [r5]\n"
      "  lda r4, @acc\n  xor r4, r4, r7\n  sta r4, @acc\n"
      "  subi r2, r2, 1\n  bgt r2, r0, x1\n"
      "  ret\n.endfunc\n");
}

TEST(LoggerReplayer, WholeProgramReplayMatchesOriginal) {
  Program P = makeNondeterministicProgram();
  RandomScheduler Sched(1234, 1, 3);
  DefaultSyscalls World(99);
  World.setInput({1000});

  // Record the original run, hashing its instruction stream.
  Machine Original(P);
  Original.setScheduler(&Sched);
  Original.setSyscalls(&World);
  TraceHashObserver OriginalHash;
  Original.addObserver(&OriginalHash);
  // (Logging and hashing simultaneously requires a second run with the same
  // seeds — instead capture the pinball first, then hash the replay twice.)
  ASSERT_EQ(Original.run(), Machine::StopReason::Halted);

  RandomScheduler Sched2(1234, 1, 3);
  DefaultSyscalls World2(99);
  World2.setInput({1000});
  LogResult Log = Logger::logWholeProgram(P, Sched2, &World2);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted);
  EXPECT_EQ(Log.Pb.instructionCount(), Original.globalCount());

  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  TraceHashObserver ReplayHash;
  Rep.machine().addObserver(&ReplayHash);
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(ReplayHash.hash(), OriginalHash.hash());
  EXPECT_EQ(ReplayHash.count(), OriginalHash.count());
  EXPECT_EQ(Rep.machine().output(), Original.output());
}

TEST(LoggerReplayer, ReplayIsRepeatable) {
  Program P = makeNondeterministicProgram();
  RandomScheduler Sched(42, 1, 4);
  LogResult Log = Logger::logWholeProgram(P, Sched);

  uint64_t Hashes[2];
  for (int I = 0; I != 2; ++I) {
    Replayer Rep(Log.Pb);
    ASSERT_TRUE(Rep.valid());
    TraceHashObserver H;
    Rep.machine().addObserver(&H);
    Rep.run();
    Hashes[I] = H.hash();
  }
  EXPECT_EQ(Hashes[0], Hashes[1]);
}

TEST(LoggerReplayer, RegionSkipAndLength) {
  Program P = makeNondeterministicProgram();
  RandomScheduler Sched(7, 1, 3);
  RegionSpec Spec;
  Spec.SkipMainInstrs = 50;
  Spec.LengthMainInstrs = 100;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  EXPECT_EQ(Log.MainThreadInstrs, 100u);
  EXPECT_GE(Log.TotalInstrs, Log.MainThreadInstrs);
  // The snapshot was taken after exactly 50 main-thread instructions.
  EXPECT_EQ(Log.Pb.StartState.Threads[0].ExecCount, 50u);

  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(Rep.replayedInstructions(), Log.TotalInstrs);
  // Replay continued the main thread to 150 executed instructions.
  EXPECT_EQ(Rep.machine().thread(0).ExecCount, 150u);
}

TEST(LoggerReplayer, RegionCapturesAssertFailure) {
  Program P = assembleOrDie(".data x 1\n"
                            ".func main\n"
                            "  movi r1, 10\n"
                            "l:\n  subi r1, r1, 1\n  bgt r1, r0, l\n"
                            "  sta r0, @x\n" // plant the bug
                            "  lda r2, @x\n"
                            "  assert r2\n"  // fails
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  RegionSpec Spec;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  EXPECT_TRUE(Log.FailureCaptured);
  EXPECT_EQ(Log.Pb.Meta.at("failtid"), "0");

  // Replay reproduces the failure at the same pc.
  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
  EXPECT_EQ(std::to_string(Rep.machine().failedPc()), Log.Pb.Meta.at("failpc"));
}

TEST(LoggerReplayer, StartTriggerSnapshotsBeforeTriggerInstruction) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 5\n"
                            "l:\n"
                            "  sta r1, @g\n" // pc 1: trigger here, 3rd time
                            "  subi r1, r1, 1\n"
                            "  bgt r1, r0, l\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  RegionSpec Spec;
  Spec.HaveStartTrigger = true;
  Spec.StartTid = 0;
  Spec.StartPc = 1;
  Spec.StartInstance = 3;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  // The snapshot leaves thread 0 poised AT pc 1 (not yet executed), with r1
  // already decremented twice (5 -> 3).
  EXPECT_EQ(Log.Pb.StartState.Threads[0].Pc, 1u);
  EXPECT_EQ(Log.Pb.StartState.Threads[0].Regs[1], 3);
  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
}

TEST(LoggerReplayer, EndTriggerStopsRegion) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 10\n"
                            "l:\n"
                            "  sta r1, @g\n" // pc 1
                            "  subi r1, r1, 1\n"
                            "  bgt r1, r0, l\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  RegionSpec Spec;
  Spec.HaveEndTrigger = true;
  Spec.EndTid = 0;
  Spec.EndPc = 1;
  Spec.EndInstance = 4;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  // Region: movi + 3 * (sta, subi, bgt) + final sta = 11 instructions.
  EXPECT_EQ(Log.Pb.instructionCount(), 11u);
}

TEST(LoggerReplayer, SyscallValuesAreReplayedNotRecomputed) {
  Program P = assembleOrDie(".func main\n"
                            "  sysrand r1\n  sysrand r2\n"
                            "  add r3, r1, r2\n  syswrite r3\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  DefaultSyscalls World(555);
  LogResult Log = Logger::logWholeProgram(P, Sched, &World);
  ASSERT_EQ(Log.Pb.Syscalls.size(), 2u);

  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  Rep.run();
  ASSERT_EQ(Rep.machine().output().size(), 1u);
  EXPECT_EQ(Rep.machine().output()[0],
            Log.Pb.Syscalls[0].Value + Log.Pb.Syscalls[1].Value);
}

TEST(LoggerReplayer, PinballSurvivesDiskRoundTrip) {
  Program P = makeNondeterministicProgram();
  RandomScheduler Sched(9, 1, 3);
  LogResult Log = Logger::logWholeProgram(P, Sched);

  auto Dir = std::filesystem::temp_directory_path() / "drdebug_lr_pinball";
  std::filesystem::remove_all(Dir);
  std::string Error;
  ASSERT_TRUE(Log.Pb.save(Dir.string(), Error)) << Error;
  Pinball Loaded;
  ASSERT_TRUE(Loaded.load(Dir.string(), Error)) << Error;
  std::filesystem::remove_all(Dir);

  uint64_t H1, H2;
  {
    Replayer Rep(Log.Pb);
    TraceHashObserver H;
    Rep.machine().addObserver(&H);
    Rep.run();
    H1 = H.hash();
  }
  {
    Replayer Rep(Loaded);
    ASSERT_TRUE(Rep.valid()) << Rep.error();
    TraceHashObserver H;
    Rep.machine().addObserver(&H);
    Rep.run();
    H2 = H.hash();
  }
  EXPECT_EQ(H1, H2);
}

TEST(LoggerReplayer, StepOneWalksWholeSchedule) {
  Program P = assembleOrDie(".func main\n  nop\n  nop\n  nop\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  uint64_t Steps = 0;
  while (Rep.stepOne())
    ++Steps;
  EXPECT_EQ(Steps, 4u);
  EXPECT_TRUE(Rep.done());
  EXPECT_FALSE(Rep.stepOne());
}

TEST(LoggerReplayer, EmptyRegionWhenProgramEndsBeforeSkip) {
  Program P = assembleOrDie(".func main\n  nop\n  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  RegionSpec Spec;
  Spec.SkipMainInstrs = 1000;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  EXPECT_EQ(Log.Pb.instructionCount(), 0u);
}

/// Property sweep: for many seeds, replay reproduces the recorded run.
class ReplayDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayDeterminismTest, ReplayMatchesRecording) {
  Program P = makeNondeterministicProgram();
  uint64_t Seed = GetParam();
  RandomScheduler Sched(Seed, 1, 2);
  DefaultSyscalls World(Seed * 13 + 1);
  World.setInput({static_cast<int64_t>(Seed)});
  LogResult Log = Logger::logWholeProgram(P, Sched, &World);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted);

  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(Rep.replayedInstructions(), Log.TotalInstrs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminismTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

} // namespace
