//===- tests/test_trace.cpp - Trace collection unit tests ---------------------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/trace.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

struct Recorded {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<TraceSet> Traces;

  Recorded(const Program &P, Scheduler &&Sched, RegionSpec Spec = {}) {
    LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
    Replayer Rep(Log.Pb);
    EXPECT_TRUE(Rep.valid());
    Prog = std::make_unique<Program>(Rep.program());
    Traces = std::make_unique<TraceSet>(*Prog);
    Rep.machine().addObserver(Traces.get());
    Rep.run();
  }
};

TEST(TraceSet, EntriesMirrorExecutionExactly) {
  Program P = assembleOrDie(".data g 3\n"
                            ".func main\n"
                            "  lda r1, @g\n"   // pc 0
                            "  addi r1, r1, 1\n"
                            "  sta r1, @g\n"
                            "  halt\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  const auto &E = R.Traces->threads()[0].Entries;
  ASSERT_EQ(E.size(), 4u);
  uint64_t G = P.findGlobal("g")->Addr;

  EXPECT_EQ(E[0].Pc, 0u);
  ASSERT_EQ(E[0].Uses.size(), 1u);
  EXPECT_EQ(E[0].Uses[0].Loc, memLoc(G));
  EXPECT_EQ(E[0].Uses[0].Value, 3);
  ASSERT_EQ(E[0].Defs.size(), 1u);
  EXPECT_EQ(E[0].Defs[0].Loc, regLoc(0, 1));

  EXPECT_EQ(E[2].Defs[0].Loc, memLoc(G));
  EXPECT_EQ(E[2].Defs[0].Value, 4);
  EXPECT_EQ(E[2].Op, Opcode::StA);
  EXPECT_EQ(E[3].Op, Opcode::Halt);

  for (size_t I = 0; I != E.size(); ++I)
    EXPECT_EQ(E[I].PerThreadIndex, I);
}

TEST(TraceSet, RegionTracesCarryAbsoluteIndices) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 20\n"
                            "l:\n  subi r1, r1, 1\n  bgt r1, r0, l\n"
                            "  halt\n.endfunc\n");
  RegionSpec Spec;
  Spec.SkipMainInstrs = 10;
  Recorded R(P, RoundRobinScheduler(1), Spec);
  const ThreadTrace &T = R.Traces->threads()[0];
  EXPECT_EQ(T.StartIndex, 10u);
  ASSERT_FALSE(T.Entries.empty());
  EXPECT_EQ(T.Entries[0].PerThreadIndex, 10u);
  EXPECT_EQ(T.Entries.back().PerThreadIndex,
            T.StartIndex + T.Entries.size() - 1);
}

/// Order-edge classification: write->read, write->write, read->write
/// conflicts across threads all produce edges; same-thread accesses don't.
TEST(TraceSet, ConflictEdgeKinds) {
  // Deterministic two-phase program: T1 writes x, then T2 reads and writes
  // x, then T1 writes x again (flag-sequenced).
  Program P = assembleOrDie(
      ".data x 0\n.data f1 0\n.data f2 0\n"
      ".func main\n"
      "  spawn r9, t2, r0\n"
      "  movi r1, 5\n"
      "  sta r1, @x\n"   // W_main(x)  (1)
      "  sta r1, @f1\n"
      "w1:\n  lda r2, @f2\n  beq r2, r0, w1\n"
      "  movi r3, 7\n"
      "  sta r3, @x\n"   // W_main(x)  (2) — after T2's read+write: WAR+WAW
      "  join r9\n  halt\n.endfunc\n"
      ".func t2\n"
      "w2:\n  lda r1, @f1\n  beq r1, r0, w2\n"
      "  lda r2, @x\n"   // R_t2(x): RAW edge from W_main(1)
      "  sta r2, @x\n"   // W_t2(x): WAW edge from W_main(1)
      "  movi r3, 1\n"
      "  sta r3, @f2\n"
      "  ret\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(2));
  uint64_t X = P.findGlobal("x")->Addr;

  // Collect cross-thread edges whose endpoints touch x.
  auto TouchesX = [&](uint32_t Tid, uint32_t Idx) {
    const TraceEntry &E = R.Traces->threads()[Tid].Entries[Idx];
    for (const auto &U : E.Uses)
      if (U.Loc == memLoc(X))
        return true;
    for (const auto &D : E.Defs)
      if (D.Loc == memLoc(X))
        return true;
    return false;
  };
  unsigned XEdges = 0;
  for (const OrderEdge &E : R.Traces->orderEdges()) {
    if (E.FromTid == E.ToTid)
      continue;
    if (E.FromIdx < R.Traces->threads()[E.FromTid].Entries.size() &&
        E.ToIdx < R.Traces->threads()[E.ToTid].Entries.size() &&
        TouchesX(E.FromTid, E.FromIdx) && TouchesX(E.ToTid, E.ToIdx))
      ++XEdges;
  }
  // At least: W_main(1)->R_t2 (RAW), W_main(1)->W_t2 (WAW or via reset),
  // R_t2->W_main(2) (WAR), W_t2->W_main(2) (WAW).
  EXPECT_GE(XEdges, 3u) << "conflict edges on x missing";
}

TEST(TraceSet, NoEdgesWithinOneThread) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1\n  sta r1, @g\n  lda r2, @g\n"
                            "  sta r2, @g\n  halt\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  for (const OrderEdge &E : R.Traces->orderEdges())
    EXPECT_NE(E.FromTid, E.ToTid);
}

TEST(TraceSet, CtrlDepInitializedUnset) {
  Program P = assembleOrDie(".func main\n  nop\n  halt\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  for (const TraceEntry &E : R.Traces->threads()[0].Entries)
    EXPECT_EQ(E.CtrlDep, -1) << "CtrlDep must be unset before the CD pass";
}

TEST(TraceSet, RecordedOrderMatchesGlobalCounts) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n  join r1\n  halt\n.endfunc\n"
                            ".func w\n  nop\n  ret\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  size_t Total = 0;
  for (const ThreadTrace &T : R.Traces->threads())
    Total += T.Entries.size();
  EXPECT_EQ(R.Traces->recordedOrder().size(), Total);
  EXPECT_EQ(R.Traces->totalEntries(), Total);
}

TEST(TraceSet, LinesComeFromSource) {
  Program P = assembleOrDie(".func main\n" // line 1
                            "  nop\n"      // line 2
                            "  halt\n"     // line 3
                            ".endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  const auto &E = R.Traces->threads()[0].Entries;
  EXPECT_EQ(E[0].Line, 2u);
  EXPECT_EQ(E[1].Line, 3u);
}

} // namespace
