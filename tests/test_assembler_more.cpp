//===- tests/test_assembler_more.cpp - Assembler robustness tests -------------===//

#include "test_util.h"
#include "workloads/figure5.h"
#include "workloads/parsec.h"
#include "workloads/racebugs.h"
#include "workloads/specomp.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

/// Property: a Program's retained SourceText reassembles to the identical
/// instruction stream — the invariant pinball portability rests on.
void expectRoundTrip(const Program &P) {
  Program Q;
  std::string Error;
  ASSERT_TRUE(assemble(P.SourceText, Q, Error)) << Error;
  ASSERT_EQ(Q.Instrs.size(), P.Instrs.size());
  for (size_t I = 0; I != P.Instrs.size(); ++I) {
    EXPECT_EQ(Q.Instrs[I].Op, P.Instrs[I].Op) << "instr " << I;
    EXPECT_EQ(Q.Instrs[I].Rd, P.Instrs[I].Rd) << "instr " << I;
    EXPECT_EQ(Q.Instrs[I].Ra, P.Instrs[I].Ra) << "instr " << I;
    EXPECT_EQ(Q.Instrs[I].Rb, P.Instrs[I].Rb) << "instr " << I;
    EXPECT_EQ(Q.Instrs[I].Imm, P.Instrs[I].Imm) << "instr " << I;
    EXPECT_EQ(Q.Instrs[I].Line, P.Instrs[I].Line) << "instr " << I;
  }
  ASSERT_EQ(Q.Globals.size(), P.Globals.size());
  for (size_t I = 0; I != P.Globals.size(); ++I) {
    EXPECT_EQ(Q.Globals[I].Addr, P.Globals[I].Addr);
    EXPECT_EQ(Q.Globals[I].Init, P.Globals[I].Init);
  }
}

TEST(AssemblerRoundTrip, Figure5) { expectRoundTrip(makeFigure5(nullptr)); }

TEST(AssemblerRoundTrip, RaceBugSuite) {
  for (const RaceBug &Bug : makeRaceBugSuite())
    expectRoundTrip(Bug.Prog);
}

TEST(AssemblerRoundTrip, AllParsecAnalogs) {
  for (const std::string &Name : parsecNames())
    expectRoundTrip(makeParsecAnalog(Name, {4, 100}));
}

TEST(AssemblerRoundTrip, AllSpecOmpAnalogs) {
  for (const std::string &Name : specOmpNames())
    expectRoundTrip(makeSpecOmpAnalog(Name, 2, 50));
}

// --- Tokenization torture --------------------------------------------------

TEST(AssemblerTorture, WhitespaceVariations) {
  Program P = assembleOrDie(".func main\n"
                            "\tmovi\tr1,\t5\n"       // tabs
                            "  add   r2 , r1 ,r1\n"  // spaces around commas
                            "   halt\n"
                            ".endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, 5);
  EXPECT_EQ(P.Instrs[1].Ra, 1);
  EXPECT_EQ(P.Instrs[1].Rb, 1);
}

TEST(AssemblerTorture, MultipleLabelsOnOneInstruction) {
  Program P = assembleOrDie(".func main\n"
                            "a: b: c: nop\n"
                            "  jmp a\n"
                            ".endfunc\n");
  EXPECT_EQ(P.Instrs[1].Imm, 0);
  // All three labels resolve to the same pc.
  Program Q = assembleOrDie(".func main\n"
                            "a: b: c: nop\n"
                            "  jmp c\n"
                            ".endfunc\n");
  EXPECT_EQ(Q.Instrs[1].Imm, 0);
}

TEST(AssemblerTorture, CommentEverywhere) {
  Program P = assembleOrDie("; top\n"
                            ".data g 1 ; trailing on data\n"
                            ".func main ; on func\n"
                            "x: ; label-only line with comment\n"
                            "  nop;packed\n"
                            "  halt # hash style\n"
                            ".endfunc ; end\n");
  EXPECT_EQ(P.Instrs.size(), 2u);
}

TEST(AssemblerTorture, NegativeAndHexImmediates) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, -0x10\n"
                            "  movi r2, 0x7fffffffffffffff\n"
                            "  movi r3, -9223372036854775807\n"
                            "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, -16);
  EXPECT_EQ(P.Instrs[1].Imm, INT64_MAX);
  EXPECT_EQ(P.Instrs[2].Imm, INT64_MIN + 1);
}

TEST(AssemblerTorture, GlobalOffsetsNegative) {
  Program P = assembleOrDie(".array v 8\n"
                            ".func main\n"
                            "  lea r1, @v+7\n"
                            "  lea r2, @v-1\n" // one before: legal address math
                            "  halt\n.endfunc\n");
  uint64_t Base = P.findGlobal("v")->Addr;
  EXPECT_EQ(P.Instrs[0].Imm, static_cast<int64_t>(Base) + 7);
  EXPECT_EQ(P.Instrs[1].Imm, static_cast<int64_t>(Base) - 1);
}

TEST(AssemblerTorture, FunctionNameAsJumpTarget) {
  // A function name used as a plain label target (tail-call style).
  Program P = assembleOrDie(".func main\n"
                            "  jmp helper\n"
                            ".endfunc\n"
                            ".func helper\n"
                            "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, static_cast<int64_t>(P.entryOf("helper")));
}

// --- Error reporting quality ------------------------------------------------

TEST(AssemblerErrorsMore, ReportsCorrectLineNumbers) {
  Program P;
  std::string Error;
  ASSERT_FALSE(assemble(".func main\n"  // 1
                        "  nop\n"       // 2
                        "  nop\n"       // 3
                        "  frob r1\n"   // 4 <- error here
                        "  halt\n.endfunc\n",
                        P, Error));
  EXPECT_NE(Error.find("line 4"), std::string::npos) << Error;
}

TEST(AssemblerErrorsMore, ForwardReferenceToMissingLabelNamesIt) {
  Program P;
  std::string Error;
  ASSERT_FALSE(assemble(".func main\n  jmp ghost\n  halt\n.endfunc\n", P,
                        Error));
  EXPECT_NE(Error.find("ghost"), std::string::npos) << Error;
}

TEST(AssemblerErrorsMore, ArrayNeedsPositiveSize) {
  Program P;
  std::string Error;
  EXPECT_FALSE(assemble(".array v 0\n.func main\n  halt\n.endfunc\n", P,
                        Error));
  EXPECT_FALSE(assemble(".array v -3\n.func main\n  halt\n.endfunc\n", P,
                        Error));
}

TEST(AssemblerErrorsMore, LabelCollidingWithGlobal) {
  Program P;
  std::string Error;
  EXPECT_FALSE(assemble(".data x 1\n.func main\nx:\n  halt\n.endfunc\n", P,
                        Error))
      << "a label may not shadow a global name";
}

TEST(AssemblerErrorsMore, FunctionCollidingWithGlobal) {
  Program P;
  std::string Error;
  EXPECT_FALSE(
      assemble(".data main 1\n.func main\n  halt\n.endfunc\n", P, Error));
}

TEST(AssemblerErrorsMore, DirectiveInsideFunction) {
  Program P;
  std::string Error;
  EXPECT_FALSE(assemble(".func main\n.data g 1\n  halt\n.endfunc\n", P,
                        Error));
  EXPECT_NE(Error.find("inside .func"), std::string::npos) << Error;
}

} // namespace
