//===- tests/test_util.h - Shared test helpers ------------------*- C++ -*-===//

#ifndef DRDEBUG_TESTS_TEST_UTIL_H
#define DRDEBUG_TESTS_TEST_UTIL_H

#include "arch/assembler.h"
#include "vm/machine.h"
#include "vm/observer.h"
#include "vm/scheduler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace drdebug {
namespace testutil {

/// Runs \p Prog single-scheduler to completion and returns the machine's
/// stop reason; \p Out receives the SysWrite output stream.
inline Machine::StopReason runProgram(const Program &Prog,
                                      std::vector<int64_t> *Out = nullptr,
                                      uint64_t MaxSteps = 1'000'000) {
  RoundRobinScheduler Sched(1);
  Machine M(Prog);
  M.setScheduler(&Sched);
  Machine::StopReason Reason = M.run(MaxSteps);
  if (Out)
    *Out = M.output();
  return Reason;
}

/// Observer that folds every executed instruction (tid, pc, defs with
/// values) into a hash: two executions with equal hashes behaved
/// identically for our purposes.
class TraceHashObserver : public Observer {
public:
  uint64_t hash() const { return Hash; }
  uint64_t count() const { return Count; }

  void onExec(const Machine &, const ExecRecord &R) override {
    mix(R.Tid);
    mix(R.Pc);
    for (const auto &Def : R.Defs) {
      mix(Def.Loc);
      mix(static_cast<uint64_t>(Def.Value));
    }
    for (const auto &Use : R.Uses) {
      mix(Use.Loc);
      mix(static_cast<uint64_t>(Use.Value));
    }
    ++Count;
  }

private:
  void mix(uint64_t V) {
    Hash ^= V + 0x9e3779b97f4a7c15ULL + (Hash << 6) + (Hash >> 2);
  }
  uint64_t Hash = 0;
  uint64_t Count = 0;
};

} // namespace testutil
} // namespace drdebug

#endif // DRDEBUG_TESTS_TEST_UTIL_H
