//===- tests/test_postdom.cpp - Post-dominator tests -------------------------===//

#include "analysis/postdom.h"

#include <gtest/gtest.h>

using namespace drdebug;

namespace {

using Graph = std::vector<std::vector<uint32_t>>;

TEST(PostDom, EmptyGraph) {
  EXPECT_TRUE(computeImmediatePostDominators({}).empty());
}

TEST(PostDom, SingleNode) {
  Graph G = {{}};
  auto IP = computeImmediatePostDominators(G);
  ASSERT_EQ(IP.size(), 1u);
  EXPECT_EQ(IP[0], PostDomExit);
}

TEST(PostDom, Chain) {
  Graph G = {{1}, {2}, {}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], 1u);
  EXPECT_EQ(IP[1], 2u);
  EXPECT_EQ(IP[2], PostDomExit);
}

TEST(PostDom, Diamond) {
  // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> exit.
  Graph G = {{1, 2}, {3}, {3}, {}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], 3u);
  EXPECT_EQ(IP[1], 3u);
  EXPECT_EQ(IP[2], 3u);
  EXPECT_EQ(IP[3], PostDomExit);
}

TEST(PostDom, NestedDiamonds) {
  // Outer: 0 -> {1, 6}; inner diamond at 1: 1 -> {2,3} -> 4 -> 5; 6 -> 5;
  // 5 -> exit.
  Graph G = {{1, 6}, {2, 3}, {4}, {4}, {5}, {}, {5}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], 5u);
  EXPECT_EQ(IP[1], 4u);
  EXPECT_EQ(IP[2], 4u);
  EXPECT_EQ(IP[3], 4u);
  EXPECT_EQ(IP[4], 5u);
  EXPECT_EQ(IP[5], PostDomExit);
  EXPECT_EQ(IP[6], 5u);
}

TEST(PostDom, NaturalLoop) {
  // 0: body; 1: cond branch back to 0 or to 2; 2: exit block.
  Graph G = {{1}, {0, 2}, {}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], 1u);
  EXPECT_EQ(IP[1], 2u);
  EXPECT_EQ(IP[2], PostDomExit);
}

TEST(PostDom, SelfLoopCannotReachExit) {
  Graph G = {{0}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], PostDomExit);
}

TEST(PostDom, BranchWithEarlyExit) {
  // 0 -> {1, 2}; 1 -> exit (return); 2 -> 3; 3 -> exit.
  // Nothing (but exit) post-dominates 0.
  Graph G = {{1, 2}, {}, {3}, {}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], PostDomExit);
  EXPECT_EQ(IP[2], 3u);
}

TEST(PostDom, ExplicitExitSuccessor) {
  // A successor entry equal to PostDomExit denotes the virtual exit.
  Graph G = {{1, PostDomExit}, {}};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], PostDomExit);
  EXPECT_EQ(IP[1], PostDomExit);
}

/// Property over a family of "switch" graphs: node 0 fans out to K cases
/// that all join at the last node; the join immediately post-dominates the
/// fan-out node regardless of K.
class SwitchPostDomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SwitchPostDomTest, JoinPostDominatesFanOut) {
  unsigned K = GetParam();
  Graph G(K + 2);
  uint32_t Join = K + 1;
  for (unsigned Case = 1; Case <= K; ++Case) {
    G[0].push_back(Case);
    G[Case] = {Join};
  }
  G[Join] = {};
  auto IP = computeImmediatePostDominators(G);
  EXPECT_EQ(IP[0], Join);
  for (unsigned Case = 1; Case <= K; ++Case)
    EXPECT_EQ(IP[Case], Join);
}

// K = 1 is excluded: with a single case the case node itself, not the join,
// is the fan-out's immediate post-dominator.
INSTANTIATE_TEST_SUITE_P(FanOuts, SwitchPostDomTest,
                         ::testing::Values(2, 3, 5, 8, 16));

} // namespace
