//===- tests/test_index.cpp - The on-disk omniscient slice index --------------===//
//
// The persistent def-use index (slicing/index_store.*): a session
// reconstructed from disk must answer every query bit-identically to a
// fresh prepare, a damaged / truncated / version-skewed / stale index must
// be rejected loudly and fall back to a full prepare (never a wrong
// answer), the repository's durable tier must count hits/writes/failures,
// and the omniscient queries themselves must agree with brute-force scans
// of the global trace. Runs under the tsan CTest preset.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "replay/logger.h"
#include "replay/manifest.h"
#include "replay/repository.h"
#include "slicing/index_store.h"
#include "slicing/report.h"
#include "slicing/slice_repository.h"
#include "slicing/slicer.h"
#include "workloads/figure5.h"
#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace drdebug;
using namespace drdebug::workloads;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_sliceindex_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
  std::string str() const { return Dir.string(); }
};

Pinball figure5Pinball() {
  Program P = workloads::makeFigure5();
  RandomScheduler Sched(1, 1, 4);
  DefaultSyscalls World(1);
  return Logger::logRegion(P, Sched, &World, RegionSpec{}).Pb;
}

/// Saves \p Pb under \p Dir and returns the directory fingerprint.
uint64_t savePinball(const Pinball &Pb, const std::string &Dir) {
  std::string Error;
  EXPECT_TRUE(Pb.save(Dir, Error)) << Error;
  uint64_t Fp = PinballRepository::dirFingerprint(Dir);
  EXPECT_NE(Fp, 0u);
  return Fp;
}

/// A session prepared the slow way (replay + analysis), with the index
/// written to \p Dir.
std::unique_ptr<SliceSession> preparedAndSaved(const Pinball &Pb,
                                               const std::string &Dir,
                                               uint64_t Fp,
                                               unsigned Threads = 2) {
  SliceSessionOptions O;
  O.PrepareThreads = Threads;
  auto S = std::make_unique<SliceSession>(Pb, O);
  std::string Error;
  EXPECT_TRUE(S->prepare(Error)) << Error;
  EXPECT_TRUE(S->saveIndex(Dir, Fp, Error)) << Error;
  EXPECT_FALSE(S->preparedFromIndex());
  return S;
}

/// A session reconstructed from the index under \p Dir.
std::unique_ptr<SliceSession> loadedFromIndex(const Pinball &Pb,
                                              const std::string &Dir,
                                              uint64_t Fp) {
  auto S = std::make_unique<SliceSession>(Pb, SliceSessionOptions());
  std::string Error;
  EXPECT_TRUE(S->loadIndex(Dir, Fp, Error)) << Error;
  EXPECT_TRUE(S->preparedFromIndex());
  return S;
}

/// The byte-exact artifacts of one slice query: the text report, the HTML
/// report, and the special slice file.
std::string sliceArtifacts(const SliceSession &S, const Slice &Sl) {
  std::ostringstream OS;
  writeSliceReportText(OS, S.program(), S.globalTrace(), Sl);
  writeSliceReportHtml(OS, S.program(), S.globalTrace(), Sl);
  saveSpecialSliceFile(OS, S.globalTrace(), Sl, S.exclusionRegions(Sl));
  return OS.str();
}

/// Renders every omniscient answer a session gives for \p L plus the
/// readers of a few positions, for byte-comparison across sessions.
std::string omniscientAnswers(const SliceSession &S, Location L) {
  std::ostringstream OS;
  for (const SliceSession::WriteEvent &W : S.valuesOf(L))
    OS << W.Pos << ":" << W.Value << ":" << W.Tid << ":" << W.Pc << ":"
       << W.Line << "\n";
  if (auto W = S.lastWrite(L))
    OS << "last " << W->Pos << ":" << W->Value << "\n";
  uint32_t Step = std::max<uint32_t>(1, S.globalTrace().size() / 16);
  for (uint32_t Pos = 0; Pos < S.globalTrace().size(); Pos += Step)
    for (const SliceSession::ReaderSet &R : S.readersOf(Pos)) {
      OS << Pos << " " << locName(R.Loc) << ":";
      for (uint32_t U : R.Readers)
        OS << " " << U;
      OS << "\n";
    }
  return OS.str();
}

/// Patches one byte of the column file in place and rebuilds the sidecar
/// manifest over the damaged bytes, so the load gets past the whole-file
/// CRC and must be stopped by the codec's own checks.
void flipByteReManifest(const std::string &IndexDir, size_t Offset) {
  fs::path Col = fs::path(IndexDir) / SliceIndexStore::ColumnFile;
  std::string Bytes;
  {
    std::ifstream IS(Col, std::ios::binary);
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Bytes = Buf.str();
  }
  ASSERT_LT(Offset, Bytes.size());
  Bytes[Offset] ^= char(0x40);
  PinballManifest M;
  M.add(SliceIndexStore::ColumnFile, Bytes);
  std::ofstream(Col, std::ios::binary).write(Bytes.data(), Bytes.size());
  std::ofstream(fs::path(IndexDir) / PinballManifest::FileName)
      << M.serialize();
}

//===----------------------------------------------------------------------===//
// Round-trip bit-identity
//===----------------------------------------------------------------------===//

TEST(SliceIndex, RoundTripIsBitIdenticalToPrepare) {
  TempDir Tmp("roundtrip");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());

  auto Cold = preparedAndSaved(Pb, Tmp.str(), Fp);
  auto Warm = loadedFromIndex(Pb, Tmp.str(), Fp);

  ASSERT_EQ(Cold->traces().totalEntries(), Warm->traces().totalEntries());
  ASSERT_EQ(Cold->globalTrace().size(), Warm->globalTrace().size());

  // The failure slice and the last-load slices, down to the report bytes.
  auto Fail = Cold->failureCriterion();
  ASSERT_TRUE(Fail.has_value());
  std::vector<SliceCriterion> Crits = Cold->lastLoadCriteria(5);
  Crits.push_back(*Fail);
  for (const SliceCriterion &C : Crits) {
    auto SlCold = Cold->computeSlice(C);
    auto SlWarm = Warm->computeSlice(C);
    ASSERT_EQ(SlCold.has_value(), SlWarm.has_value());
    if (!SlCold)
      continue;
    EXPECT_EQ(sliceArtifacts(*Cold, *SlCold), sliceArtifacts(*Warm, *SlWarm));
    auto FwCold = Cold->computeForwardSlice(C);
    auto FwWarm = Warm->computeForwardSlice(C);
    ASSERT_EQ(FwCold.has_value(), FwWarm.has_value());
    if (FwCold) {
      EXPECT_EQ(sliceArtifacts(*Cold, *FwCold),
                sliceArtifacts(*Warm, *FwWarm));
    }
  }

  // And the omniscient answers for every global.
  for (const GlobalVar &G : Cold->program().Globals)
    EXPECT_EQ(omniscientAnswers(*Cold, memLoc(G.Addr)),
              omniscientAnswers(*Warm, memLoc(G.Addr)))
        << G.Name;
}

TEST(SliceIndex, RoundTripOnGeneratedPrograms) {
  for (uint64_t Seed : {3u, 19u}) {
    TempDir Tmp("gen");
    Program P = workloads::generateRandomProgram(Seed);
    RandomScheduler Sched(Seed + 1, 1, 3);
    Pinball Pb = Logger::logWholeProgram(P, Sched, nullptr).Pb;
    uint64_t Fp = savePinball(Pb, Tmp.str());

    auto Cold = preparedAndSaved(Pb, Tmp.str(), Fp);
    auto Warm = loadedFromIndex(Pb, Tmp.str(), Fp);
    for (const SliceCriterion &C : Cold->lastLoadCriteria(4)) {
      auto A = Cold->computeSlice(C);
      auto B = Warm->computeSlice(C);
      ASSERT_EQ(A.has_value(), B.has_value());
      if (A) {
        EXPECT_EQ(sliceArtifacts(*Cold, *A), sliceArtifacts(*Warm, *B))
            << "seed " << Seed;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Omniscient queries vs brute force
//===----------------------------------------------------------------------===//

TEST(SliceIndex, OmniscientQueriesMatchBruteForce) {
  TempDir Tmp("brute");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto S = preparedAndSaved(Pb, Tmp.str(), Fp);
  const GlobalTrace &GT = S->globalTrace();

  // Brute force: scan every entry's def list.
  auto BruteLastWrite = [&](Location L,
                            uint32_t Bound) -> std::optional<uint32_t> {
    std::optional<uint32_t> Best;
    for (uint32_t Pos = 0; Pos < Bound; ++Pos)
      for (const AccessList::Entry &D : GT.entry(Pos).Defs)
        if (D.Loc == L)
          Best = Pos;
    return Best;
  };

  for (const GlobalVar &G : S->program().Globals) {
    Location L = memLoc(G.Addr);
    auto W = S->lastWrite(L);
    auto B = BruteLastWrite(L, GT.size());
    ASSERT_EQ(W.has_value(), B.has_value()) << G.Name;
    if (W) {
      EXPECT_EQ(W->Pos, *B) << G.Name;
      // The reported value is the one the write actually stored.
      int64_t Stored = 0;
      for (const AccessList::Entry &D : GT.entry(W->Pos).Defs)
        if (D.Loc == L)
          Stored = D.Value;
      EXPECT_EQ(W->Value, Stored) << G.Name;
      // A bounded query stops before the bound.
      auto Before = S->lastWrite(L, W->Pos);
      auto BBefore = BruteLastWrite(L, W->Pos);
      ASSERT_EQ(Before.has_value(), BBefore.has_value()) << G.Name;
      if (Before) {
        EXPECT_EQ(Before->Pos, *BBefore) << G.Name;
      }
    }

    // valuesOf = every def position, in order; Max keeps the tail.
    std::vector<uint32_t> AllDefs;
    for (uint32_t Pos = 0; Pos < GT.size(); ++Pos)
      for (const AccessList::Entry &D : GT.entry(Pos).Defs)
        if (D.Loc == L)
          AllDefs.push_back(Pos);
    std::vector<SliceSession::WriteEvent> Events = S->valuesOf(L);
    ASSERT_EQ(Events.size(), AllDefs.size()) << G.Name;
    for (size_t I = 0; I != Events.size(); ++I)
      EXPECT_EQ(Events[I].Pos, AllDefs[I]) << G.Name;
    if (AllDefs.size() > 1) {
      std::vector<SliceSession::WriteEvent> Tail = S->valuesOf(L, 1);
      ASSERT_EQ(Tail.size(), 1u);
      EXPECT_EQ(Tail[0].Pos, AllDefs.back());
    }
  }

  // readersOf: every reported reader must actually use the location, sit
  // after the def, and at or before the next def of it.
  for (uint32_t Pos = 0; Pos < GT.size(); ++Pos) {
    for (const SliceSession::ReaderSet &R : S->readersOf(Pos)) {
      std::optional<uint32_t> Next;
      for (uint32_t P2 = Pos + 1; P2 < GT.size() && !Next; ++P2)
        for (const AccessList::Entry &D : GT.entry(P2).Defs)
          if (D.Loc == R.Loc)
            Next = P2;
      for (uint32_t U : R.Readers) {
        EXPECT_GT(U, Pos);
        if (Next) {
          EXPECT_LE(U, *Next);
        }
        bool Used = false;
        for (const AccessList::Entry &UE : GT.entry(U).Uses)
          Used |= UE.Loc == R.Loc;
        EXPECT_TRUE(Used) << "pos " << Pos << " reader " << U;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Rejection: corruption, truncation, version skew, staleness
//===----------------------------------------------------------------------===//

TEST(SliceIndex, AbsentIndexIsASilentMiss) {
  TempDir Tmp("absent");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  SliceSession S(Pb, SliceSessionOptions());
  std::string Error = "sentinel";
  EXPECT_FALSE(S.loadIndex(Tmp.str(), Fp, Error));
  EXPECT_TRUE(Error.empty()) << Error; // a miss, not a failure
}

TEST(SliceIndex, DecodeRejectsEveryTruncation) {
  TempDir Tmp("trunc");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto S = preparedAndSaved(Pb, Tmp.str(), Fp, /*Threads=*/1);

  fs::path Col =
      fs::path(SliceIndexStore::indexDirFor(Tmp.str())) /
      SliceIndexStore::ColumnFile;
  std::string Bytes;
  {
    std::ifstream IS(Col, std::ios::binary);
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Bytes = Buf.str();
  }
  ASSERT_GT(Bytes.size(), 64u);

  SliceIndexData D;
  std::string Error;
  ASSERT_TRUE(SliceIndexStore::decode(Bytes, D, Error)) << Error;
  EXPECT_EQ(D.Fingerprint, Fp);

  // Every proper prefix must fail to decode — never a partial success.
  size_t Step = std::max<size_t>(1, Bytes.size() / 97);
  for (size_t Len = 0; Len < Bytes.size(); Len += Step) {
    SliceIndexData Out;
    std::string Why;
    EXPECT_FALSE(SliceIndexStore::decode(Bytes.substr(0, Len), Out, Why))
        << "prefix of " << Len << " bytes decoded";
    EXPECT_FALSE(Why.empty());
  }
  // Trailing garbage is rejected too.
  {
    SliceIndexData Out;
    std::string Why;
    EXPECT_FALSE(SliceIndexStore::decode(Bytes + "x", Out, Why));
  }
}

TEST(SliceIndex, DecodeRejectsBitFlipsEverywhere) {
  TempDir Tmp("flips");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto Reference = preparedAndSaved(Pb, Tmp.str(), Fp, /*Threads=*/1);

  fs::path Col =
      fs::path(SliceIndexStore::indexDirFor(Tmp.str())) /
      SliceIndexStore::ColumnFile;
  std::string Bytes;
  {
    std::ifstream IS(Col, std::ios::binary);
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Bytes = Buf.str();
  }

  auto Fail = Reference->failureCriterion();
  ASSERT_TRUE(Fail.has_value());
  std::string RefReport;
  {
    auto Sl = Reference->computeSlice(*Fail);
    ASSERT_TRUE(Sl.has_value());
    RefReport = sliceArtifacts(*Reference, *Sl);
  }

  // Flip one byte at a sample of offsets. The decode may only succeed for
  // flips in the unchecksummed header binding fields — and those must then
  // be caught by the session's fingerprint/options checks, so the end
  // result is always "rejected or identical", never a wrong answer.
  size_t Step = std::max<size_t>(1, Bytes.size() / 131);
  for (size_t Off = 0; Off < Bytes.size(); Off += Step) {
    std::string Damaged = Bytes;
    Damaged[Off] ^= char(0x10);
    SliceIndexData Out;
    std::string Why;
    if (!SliceIndexStore::decode(Damaged, Out, Why)) {
      EXPECT_FALSE(Why.empty()) << "offset " << Off;
      continue;
    }
    // Decoded despite the flip: only the header bindings are outside the
    // section CRCs, and the flip must show up there.
    EXPECT_TRUE(Out.Fingerprint != Fp || Out.MaxSave != 10 ||
                Out.RefineCfg != true)
        << "flip at offset " << Off << " survived every integrity check";
  }
}

TEST(SliceIndex, LoadRejectsCorruptIndexAndSessionFallsBack) {
  TempDir Tmp("fallback");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto Reference = preparedAndSaved(Pb, Tmp.str(), Fp);

  std::string IndexDir = SliceIndexStore::indexDirFor(Tmp.str());
  flipByteReManifest(IndexDir, 200);

  // The manifest now matches the damaged bytes, so the section CRC (or a
  // structural check behind it) must reject the load — loudly.
  SliceSession S(Pb, SliceSessionOptions());
  std::string Error;
  EXPECT_FALSE(S.loadIndex(Tmp.str(), Fp, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(S.preparedFromIndex());

  // The fallback prepare on the very same object answers like the
  // reference.
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto Fail = Reference->failureCriterion();
  ASSERT_TRUE(Fail.has_value());
  auto A = Reference->computeSlice(*Fail);
  auto B = S.computeSlice(*Fail);
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(sliceArtifacts(*Reference, *A), sliceArtifacts(S, *B));
}

TEST(SliceIndex, LoadRejectsVersionSkewFingerprintAndOptionsMismatch) {
  TempDir Tmp("skew");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto S = preparedAndSaved(Pb, Tmp.str(), Fp);

  std::string IndexDir = SliceIndexStore::indexDirFor(Tmp.str());
  SliceIndexData D;
  std::string Error;
  ASSERT_TRUE(SliceIndexStore::load(IndexDir, D, Error)) << Error;

  // A "future" file with perfectly valid CRCs is still rejected.
  {
    std::string Future =
        SliceIndexStore::encode(D, SliceIndexStore::FormatVersion + 1);
    SliceIndexData Out;
    std::string Why;
    EXPECT_FALSE(SliceIndexStore::decode(Future, Out, Why));
    EXPECT_NE(Why.find("version"), std::string::npos) << Why;
  }

  // Wrong expected fingerprint: the pinball changed since the write.
  {
    SliceSession Fresh(Pb, SliceSessionOptions());
    std::string Why;
    EXPECT_FALSE(Fresh.loadIndex(Tmp.str(), Fp + 1, Why));
    EXPECT_NE(Why.find("fingerprint"), std::string::npos) << Why;
  }

  // Same pinball, different prepare options: the index shape differs.
  {
    SliceSessionOptions O;
    O.MaxSave = 3;
    SliceSession Fresh(Pb, O);
    std::string Why;
    EXPECT_FALSE(Fresh.loadIndex(Tmp.str(), Fp, Why));
    EXPECT_NE(Why.find("options"), std::string::npos) << Why;
  }
}

TEST(SliceIndex, FsckReportsDamage) {
  TempDir Tmp("fsck");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  auto S = preparedAndSaved(Pb, Tmp.str(), Fp);
  std::string IndexDir = SliceIndexStore::indexDirFor(Tmp.str());

  SliceIndexStore::FsckReport R;
  std::string Error;
  ASSERT_TRUE(SliceIndexStore::fsck(IndexDir, R, Error)) << Error;
  EXPECT_EQ(R.Version, SliceIndexStore::FormatVersion);
  EXPECT_EQ(R.Fingerprint, Fp);
  EXPECT_EQ(R.Entries, S->globalTrace().size());
  EXPECT_EQ(R.Threads, S->traces().threads().size());
  EXPECT_GT(R.Bytes, 0u);

  flipByteReManifest(IndexDir, 300);
  EXPECT_FALSE(SliceIndexStore::fsck(IndexDir, R, Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(SliceIndexStore::fsck(
      SliceIndexStore::indexDirFor(Tmp.str() + "_nope"), R, Error));
  EXPECT_NE(Error.find("no slice index"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// The repository's durable tier
//===----------------------------------------------------------------------===//

TEST(SliceIndex, RepositoryWritesThenReloadsAcrossInstances) {
  TempDir Tmp("repo");
  Pinball Pb = figure5Pinball();
  uint64_t Fp = savePinball(Pb, Tmp.str());
  SliceSessionOptions O;
  std::string Error;

  // First daemon lifetime: a full prepare that persists the index.
  {
    SliceSessionRepository Repo(4);
    auto S = Repo.acquire(Fp, Tmp.str(), Pb, O, Error);
    ASSERT_NE(S, nullptr) << Error;
    EXPECT_FALSE(S->preparedFromIndex());
    EXPECT_EQ(Repo.indexWrites(), 1u);
    EXPECT_EQ(Repo.indexHits(), 0u);

    // A second acquire in the same lifetime is a plain memory hit: no
    // second write.
    ASSERT_NE(Repo.acquire(Fp, Tmp.str(), Pb, O, Error), nullptr);
    EXPECT_EQ(Repo.indexWrites(), 1u);
  }

  // Second lifetime: the in-memory cache is gone, the index is not.
  {
    SliceSessionRepository Repo(4);
    std::string Note;
    auto S = Repo.acquire(Fp, Tmp.str(), Pb, O, Error, &Note);
    ASSERT_NE(S, nullptr) << Error;
    EXPECT_TRUE(S->preparedFromIndex());
    EXPECT_TRUE(Note.empty()) << Note;
    EXPECT_EQ(Repo.indexHits(), 1u);
    EXPECT_EQ(Repo.indexWrites(), 0u); // a loaded index is not rewritten
    EXPECT_EQ(Repo.indexLoadFailures(), 0u);
  }

  // Third lifetime, damaged index: loud fallback, re-prepare, rewrite.
  flipByteReManifest(SliceIndexStore::indexDirFor(Tmp.str()), 150);
  {
    SliceSessionRepository Repo(4);
    std::string Note;
    auto S = Repo.acquire(Fp, Tmp.str(), Pb, O, Error, &Note);
    ASSERT_NE(S, nullptr) << Error;
    EXPECT_FALSE(S->preparedFromIndex());
    EXPECT_NE(Note.find("unusable"), std::string::npos) << Note;
    EXPECT_EQ(Repo.indexLoadFailures(), 1u);
    EXPECT_EQ(Repo.indexWrites(), 1u); // rewritten after the fallback
  }

  // Fourth lifetime: the rewrite healed it.
  {
    SliceSessionRepository Repo(4);
    auto S = Repo.acquire(Fp, Tmp.str(), Pb, O, Error);
    ASSERT_NE(S, nullptr) << Error;
    EXPECT_TRUE(S->preparedFromIndex());
  }
}

//===----------------------------------------------------------------------===//
// Debugger commands and the verb registry
//===----------------------------------------------------------------------===//

TEST(SliceIndex, DebuggerOmniscientCommandsAndPinballIndex) {
  TempDir Tmp("cli");
  Pinball Pb = figure5Pinball();
  savePinball(Pb, Tmp.str());
  const std::string Source = workloads::makeFigure5().SourceText;

  std::ostringstream OS;
  DebugSession S(OS);
  ASSERT_TRUE(S.loadProgramText(Source));

  // `pinball index <dir>` builds the index offline.
  CommandResult R = S.executeCommand("pinball index " + Tmp.str());
  EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
  EXPECT_NE(R.Text.find("slice index written to"), std::string::npos)
      << R.Text;

  R = S.executeCommand("pinball index verify " + Tmp.str());
  EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
  EXPECT_NE(R.Text.find("index OK: v1"), std::string::npos) << R.Text;

  // The omniscient commands answer once a pinball is loaded (and use the
  // index just written: "slicing ready" without a fresh prepare is not
  // observable here, but the counters path is covered above).
  ASSERT_EQ(S.executeCommand("pinball load " + Tmp.str()).Status,
            CommandStatus::Ok);
  R = S.executeCommand("lastwrite x");
  EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
  EXPECT_NE(R.Text.find("last write to x"), std::string::npos)
      << R.Text;

  R = S.executeCommand("valuesof x");
  EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
  EXPECT_NE(R.Text.find("writes"), std::string::npos) << R.Text;

  R = S.executeCommand("readersof 0");
  EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
  EXPECT_NE(R.Text.find("readers of pos 0"), std::string::npos) << R.Text;

  // Bad arguments fail loudly.
  EXPECT_EQ(S.executeCommand("lastwrite no_such_global").Status,
            CommandStatus::Error);
  EXPECT_EQ(S.executeCommand("readersof 9999999").Status,
            CommandStatus::Error);
  EXPECT_EQ(S.executeCommand("pinball index verify " + Tmp.str() + "_nope")
                .Status,
            CommandStatus::Error);
}

TEST(SliceIndex, CorruptIndexNeverChangesCommandOutput) {
  TempDir Tmp("cliout");
  Pinball Pb = figure5Pinball();
  savePinball(Pb, Tmp.str());
  const std::string Source = workloads::makeFigure5().SourceText;

  auto Transcript = [&](bool &SawWarning) {
    std::ostringstream OS;
    DebugSession S(OS);
    S.loadProgramText(Source);
    S.execute("pinball load " + Tmp.str());
    // The first slicing command prepares (or index-loads) the session; its
    // transcript legitimately differs across tiers (the loud fallback
    // warning), so keep it out of the compared body.
    CommandResult Prep = S.executeCommand("slice fail");
    EXPECT_EQ(Prep.Status, CommandStatus::Ok) << Prep.Text;
    SawWarning = Prep.Text.find("warning: on-disk slice index unusable") !=
                 std::string::npos;
    std::string Body;
    for (const char *Cmd :
         {"slice fail", "lastwrite x", "valuesof x 2"}) {
      CommandResult R = S.executeCommand(Cmd);
      EXPECT_EQ(R.Status, CommandStatus::Ok) << R.Text;
      Body += R.Text;
    }
    return Body;
  };

  bool Warned = false;
  std::string Cold = Transcript(Warned); // writes the index
  EXPECT_FALSE(Warned);
  std::string Warm = Transcript(Warned); // loads it
  EXPECT_FALSE(Warned);
  EXPECT_EQ(Cold, Warm);

  flipByteReManifest(SliceIndexStore::indexDirFor(Tmp.str()), 123);
  std::string Fallback = Transcript(Warned); // rejects it, re-prepares
  EXPECT_TRUE(Warned);
  EXPECT_EQ(Cold, Fallback);
}

} // namespace
