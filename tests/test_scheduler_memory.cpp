//===- tests/test_scheduler_memory.cpp - Memory & scheduler unit tests -------===//

#include "support/rng.h"
#include "test_util.h"
#include "vm/memory.h"

#include <gtest/gtest.h>

#include <set>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(Memory, UnwrittenWordsReadZero) {
  Memory M;
  EXPECT_EQ(M.load(0), 0);
  EXPECT_EQ(M.load(~0ULL), 0);
  EXPECT_EQ(M.footprint(), 0u);
}

TEST(Memory, StoreLoadRoundTrip) {
  Memory M;
  M.store(100, -42);
  M.store(0, 7);
  EXPECT_EQ(M.load(100), -42);
  EXPECT_EQ(M.load(0), 7);
  EXPECT_EQ(M.footprint(), 2u);
}

TEST(Memory, StoringZeroCanonicalizes) {
  Memory M;
  M.store(5, 9);
  M.store(5, 0);
  EXPECT_EQ(M.load(5), 0);
  EXPECT_EQ(M.footprint(), 0u) << "zero stores must not grow the footprint";
  // Equality of two memories must not depend on explicit zeros.
  Memory M2;
  EXPECT_TRUE(M.words() == M2.words());
}

TEST(Memory, OverwriteReplaces) {
  Memory M;
  M.store(8, 1);
  M.store(8, 2);
  EXPECT_EQ(M.load(8), 2);
  EXPECT_EQ(M.footprint(), 1u);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  bool AllEqual = true, AnyDiffer = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next(), VB = B.next(), VC = C.next();
    AllEqual &= VA == VB;
    AnyDiffer |= VA != VC;
  }
  EXPECT_TRUE(AllEqual);
  EXPECT_TRUE(AnyDiffer);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 200; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all values in a small range must appear";
}

TEST(Rng, BelowStaysBelow) {
  Rng R(9);
  for (int I = 0; I != 200; ++I)
    EXPECT_LT(R.below(7), 7u);
}

//===----------------------------------------------------------------------===//
// Schedulers (driven through real machines)
//===----------------------------------------------------------------------===//

/// A three-thread program where every thread increments its own counter; the
/// per-thread progress pattern reveals the scheduling policy.
Program makeThreeThreadProgram(unsigned Iters) {
  std::string N = std::to_string(Iters);
  return assembleOrDie(".data c0 0\n.data c1 0\n.data c2 0\n"
                       ".func main\n"
                       "  spawn r1, w1, r0\n"
                       "  spawn r2, w2, r0\n"
                       "  movi r3, " + N + "\n"
                       "m:\n  lda r4, @c0\n  addi r4, r4, 1\n  sta r4, @c0\n"
                       "  subi r3, r3, 1\n  bgt r3, r0, m\n"
                       "  join r1\n  join r2\n  halt\n.endfunc\n"
                       ".func w1\n"
                       "  movi r3, " + N + "\n"
                       "a:\n  lda r4, @c1\n  addi r4, r4, 1\n  sta r4, @c1\n"
                       "  subi r3, r3, 1\n  bgt r3, r0, a\n  ret\n.endfunc\n"
                       ".func w2\n"
                       "  movi r3, " + N + "\n"
                       "b:\n  lda r4, @c2\n  addi r4, r4, 1\n  sta r4, @c2\n"
                       "  subi r3, r3, 1\n  bgt r3, r0, b\n  ret\n.endfunc\n");
}

TEST(Schedulers, RoundRobinQuantumControlsSwitchRate) {
  Program P = makeThreeThreadProgram(50);
  auto SwitchesWithQuantum = [&](uint64_t Quantum) {
    RoundRobinScheduler Sched(Quantum);
    struct Count : Observer {
      uint32_t Last = ~0U;
      uint64_t Switches = 0;
      void onExec(const Machine &, const ExecRecord &R) override {
        if (Last != ~0U && R.Tid != Last)
          ++Switches;
        Last = R.Tid;
      }
    } C;
    Machine M(P);
    M.setScheduler(&Sched);
    M.addObserver(&C);
    EXPECT_EQ(M.run(), Machine::StopReason::Halted);
    return C.Switches;
  };
  EXPECT_GT(SwitchesWithQuantum(1), SwitchesWithQuantum(16));
}

TEST(Schedulers, RoundRobinIsFair) {
  Program P = makeThreeThreadProgram(40);
  RoundRobinScheduler Sched(2);
  Machine M(P);
  M.setScheduler(&Sched);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);
  // All three loops completed: counters all reach 40.
  for (const char *G : {"c0", "c1", "c2"})
    EXPECT_EQ(M.mem().load(P.findGlobal(G)->Addr), 40);
}

TEST(Schedulers, RandomSchedulerSwitchProbabilityMatters) {
  Program P = makeThreeThreadProgram(50);
  auto Switches = [&](uint64_t Num, uint64_t Den) {
    RandomScheduler Sched(5, Num, Den);
    struct Count : Observer {
      uint32_t Last = ~0U;
      uint64_t Switches = 0;
      void onExec(const Machine &, const ExecRecord &R) override {
        if (Last != ~0U && R.Tid != Last)
          ++Switches;
        Last = R.Tid;
      }
    } C;
    Machine M(P);
    M.setScheduler(&Sched);
    M.addObserver(&C);
    EXPECT_EQ(M.run(), Machine::StopReason::Halted);
    return C.Switches;
  };
  EXPECT_GT(Switches(1, 2), Switches(1, 50));
}

TEST(Schedulers, PrioritySchedulerStarvesLowPriorityUntilBlocked) {
  Program P = makeThreeThreadProgram(10);
  PriorityScheduler Sched;
  Sched.setPriority(0, 5); // main first
  Machine M(P);
  M.setScheduler(&Sched);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);
  // Main runs its whole loop before joining; then workers run. Final state
  // still completes everything.
  EXPECT_EQ(M.mem().load(P.findGlobal("c0")->Addr), 10);
  EXPECT_EQ(M.mem().load(P.findGlobal("c1")->Addr), 10);
}

TEST(Schedulers, PriorityTieBreaksByLowestTid) {
  Program P = makeThreeThreadProgram(5);
  PriorityScheduler Sched; // all priorities equal (0)
  struct First : Observer {
    std::vector<uint32_t> Order;
    void onExec(const Machine &, const ExecRecord &R) override {
      Order.push_back(R.Tid);
    }
  } F;
  Machine M(P);
  M.setScheduler(&Sched);
  M.addObserver(&F);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);
  // With equal priorities the lowest tid runs until it blocks (join), so
  // the first executed tid is always 0.
  EXPECT_EQ(F.Order.front(), 0u);
}

} // namespace
