//===- tests/test_durability.cpp - Durable session tests ----------------------===//
//
// The durability layer end-to-end: the CRC32C-framed journal (torn tails,
// damaged records, fault-injected appends, atomic compaction rewrites),
// crash recovery (restart a journaled server and get byte-identical
// sessions back), snapshot compaction, drain/import migration, admission
// control with the client's retry-after backoff, and the wedged-session
// quarantine. These run alongside test_server.cpp under the tsan preset.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "replay/repository.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/transport.h"
#include "support/fault_injector.h"
#include "support/journal.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A scratch directory removed on destruction.
struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_durability_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
};

/// Disarms the global fault injector when a test exits, pass or fail.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::global().reset(); }
};

/// Runs \p Setup then \p Probes in a plain single-threaded DebugSession and
/// returns only the probe output — the reference a recovered/imported
/// session must match byte for byte.
std::string localProbes(const std::string &AsmText,
                        const std::vector<std::string> &Setup,
                        const std::vector<std::string> &Probes) {
  std::ostringstream OS;
  DebugSession S(OS);
  S.loadProgramText(AsmText);
  for (const std::string &C : Setup)
    S.execute(C);
  std::string Out;
  for (const std::string &C : Probes)
    Out += S.executeCommand(C).Text;
  return Out;
}

/// Runs \p Probes over an already-attached remote session.
std::string remoteProbes(ProtocolClient &Client, uint64_t Sid,
                         const std::vector<std::string> &Probes) {
  std::string Out;
  for (const std::string &C : Probes) {
    ClientResult<> R = Client.cmd(Sid, C);
    if (!R.ok()) {
      ADD_FAILURE() << "probe '" << C << "' failed: " << R.errorText();
      break;
    }
    Out += R.value();
  }
  return Out;
}

/// Opens a session on a fresh connection to \p Srv, loads Figure 5 and runs
/// \p Setup, then drops the connection without closing the session (the
/// simulated crash leaves the journal behind). \returns the session id.
uint64_t runFigure5Session(DebugServer &Srv,
                           const std::vector<std::string> &Setup) {
  Program P = workloads::makeFigure5();
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  uint64_t Sid = 0;
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    EXPECT_TRUE(Opened.ok()) << Opened.errorText();
    Sid = Opened.value();
    ClientResult<> Loaded = Client.load(Sid, P.SourceText);
    EXPECT_TRUE(Loaded.ok()) << Loaded.errorText();
    for (const std::string &C : Setup) {
      ClientResult<> R = Client.cmd(Sid, C);
      EXPECT_TRUE(R.ok()) << C << ": " << R.errorText();
    }
  }
  ClientEnd->close();
  ServerThread.join();
  return Sid;
}

/// Attaches to session \p Sid on \p Srv and returns the probe output.
std::string probeRecovered(DebugServer &Srv, uint64_t Sid,
                           const std::vector<std::string> &Probes) {
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  std::string Out;
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<> Attached = Client.request("attach " + std::to_string(Sid));
    EXPECT_TRUE(Attached.ok()) << Attached.errorText();
    Out = remoteProbes(Client, Sid, Probes);
  }
  ClientEnd->close();
  ServerThread.join();
  return Out;
}

/// Records the journal at \p Path (must exist and parse cleanly).
std::vector<JournalRecord> mustRead(const fs::path &Path,
                                    bool *TornOut = nullptr) {
  std::vector<JournalRecord> Recs;
  bool Torn = false;
  uint64_t Clean = 0;
  std::string Error;
  EXPECT_TRUE(readJournal(Path.string(), Recs, Torn, Clean, Error)) << Error;
  if (TornOut)
    *TornOut = Torn;
  return Recs;
}

//===----------------------------------------------------------------------===//
// The journal file format
//===----------------------------------------------------------------------===//

TEST(Durability, JournalWriterReaderRoundTrip) {
  TempDir Tmp("roundtrip");
  fs::path Path = Tmp.Dir / "s.journal";
  std::string Error;
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
    ASSERT_TRUE(W.append({JournalRecord::Kind::Load, "mov r0, 1\n"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "record failure"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Snap, ""}, Error));
    EXPECT_EQ(W.sizeBytes(), fs::file_size(Path));
  }
  bool Torn = true;
  std::vector<JournalRecord> Recs = mustRead(Path, &Torn);
  EXPECT_FALSE(Torn);
  ASSERT_EQ(Recs.size(), 3u);
  EXPECT_EQ(Recs[0].K, JournalRecord::Kind::Load);
  EXPECT_EQ(Recs[0].Payload, "mov r0, 1\n");
  EXPECT_EQ(Recs[1].K, JournalRecord::Kind::Cmd);
  EXPECT_EQ(Recs[1].Payload, "record failure");
  EXPECT_EQ(Recs[2].K, JournalRecord::Kind::Snap);
  EXPECT_EQ(Recs[2].Payload, "");

  // Re-opening appends after the existing records.
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::EachRecord, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "replay"}, Error));
  }
  Recs = mustRead(Path);
  ASSERT_EQ(Recs.size(), 4u);
  EXPECT_EQ(Recs[3].Payload, "replay");
}

TEST(Durability, JournalTornTailToleratedAndTruncatedOnReopen) {
  TempDir Tmp("torn");
  fs::path Path = Tmp.Dir / "s.journal";
  std::string Error;
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "one"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "two"}, Error));
  }
  // Simulate a kill -9 mid-append: a record header with no payload behind it.
  {
    std::ofstream OS(Path, std::ios::app | std::ios::binary);
    OS << "r cmd 40 0badc0de\npart";
  }
  std::vector<JournalRecord> Recs;
  bool Torn = false;
  uint64_t Clean = 0;
  ASSERT_TRUE(readJournal(Path.string(), Recs, Torn, Clean, Error)) << Error;
  EXPECT_TRUE(Torn);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_LT(Clean, fs::file_size(Path));

  // Re-opening for append truncates the torn tail before writing.
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
    EXPECT_EQ(fs::file_size(Path), Clean);
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "three"}, Error));
  }
  Recs = mustRead(Path, &Torn);
  EXPECT_FALSE(Torn);
  ASSERT_EQ(Recs.size(), 3u);
  EXPECT_EQ(Recs[2].Payload, "three");
}

TEST(Durability, JournalChecksumDamageStopsTheScan) {
  TempDir Tmp("crc");
  fs::path Path = Tmp.Dir / "s.journal";
  std::string Error;
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "alpha"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "beta"}, Error));
  }
  // Flip one payload byte of the second record in place.
  std::string Bytes;
  {
    std::ifstream IS(Path, std::ios::binary);
    std::ostringstream OS;
    OS << IS.rdbuf();
    Bytes = OS.str();
  }
  size_t At = Bytes.find("beta");
  ASSERT_NE(At, std::string::npos);
  Bytes[At] = 'x';
  {
    std::ofstream OS(Path, std::ios::trunc | std::ios::binary);
    OS << Bytes;
  }
  std::vector<JournalRecord> Recs;
  bool Torn = false;
  uint64_t Clean = 0;
  ASSERT_TRUE(readJournal(Path.string(), Recs, Torn, Clean, Error)) << Error;
  EXPECT_TRUE(Torn);
  ASSERT_EQ(Recs.size(), 1u);
  EXPECT_EQ(Recs[0].Payload, "alpha");
}

TEST(Durability, JournalRejectsNonJournalFiles) {
  TempDir Tmp("notajournal");
  fs::path Path = Tmp.Dir / "readme.txt";
  {
    std::ofstream OS(Path);
    OS << "this is not a journal\n";
  }
  std::vector<JournalRecord> Recs;
  bool Torn = false;
  uint64_t Clean = 0;
  std::string Error;
  EXPECT_FALSE(readJournal(Path.string(), Recs, Torn, Clean, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(
      readJournal((Tmp.Dir / "missing.journal").string(), Recs, Torn, Clean,
                  Error));
}

TEST(Durability, JournalFaultInjectedAppends) {
  InjectorGuard Guard;
  TempDir Tmp("faulty");
  fs::path Path = Tmp.Dir / "s.journal";
  std::string Error;
  JournalWriter W;
  ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
  ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "clean"}, Error));

  // ENOSPC: the append fails and writes nothing.
  FaultInjector::global().arm("journal.append", FaultKind::DiskFull, 1);
  EXPECT_FALSE(W.append({JournalRecord::Kind::Cmd, "lost"}, Error));
  FaultInjector::global().reset();
  EXPECT_EQ(mustRead(Path).size(), 1u);

  // Short write: the append fails AND leaves a torn tail behind.
  FaultInjector::global().arm("journal.append", FaultKind::ShortWrite, 1);
  EXPECT_FALSE(W.append({JournalRecord::Kind::Cmd, "half-written"}, Error));
  FaultInjector::global().reset();
  W.close();
  bool Torn = false;
  EXPECT_EQ(mustRead(Path, &Torn).size(), 1u);
  EXPECT_TRUE(Torn);

  // Re-opening heals the tail; the journal keeps growing cleanly.
  ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
  ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "after-heal"}, Error));
  std::vector<JournalRecord> Recs = mustRead(Path, &Torn);
  EXPECT_FALSE(Torn);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_EQ(Recs[1].Payload, "after-heal");
}

TEST(Durability, CompactionRewriteSurvivesSimulatedCrash) {
  InjectorGuard Guard;
  TempDir Tmp("rewrite");
  fs::path Path = Tmp.Dir / "s.journal";
  std::string Error;
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(Path.string(), JournalFsync::None, Error)) << Error;
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "a"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "b"}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "c"}, Error));
  }
  // A crash between temp-file write and rename must leave the old journal.
  FaultInjector::global().arm("journal.crash", FaultKind::Crash, 1);
  std::vector<JournalRecord> Compacted = {{JournalRecord::Kind::Snap, ""},
                                          {JournalRecord::Kind::Cmd, "replay"}};
  EXPECT_FALSE(rewriteJournal(Path.string(), Compacted, Error));
  FaultInjector::global().reset();
  EXPECT_EQ(mustRead(Path).size(), 3u);

  // Without the fault the rewrite replaces the journal atomically.
  ASSERT_TRUE(rewriteJournal(Path.string(), Compacted, Error)) << Error;
  std::vector<JournalRecord> Recs = mustRead(Path);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_EQ(Recs[0].K, JournalRecord::Kind::Snap);
  EXPECT_EQ(Recs[1].Payload, "replay");
}

TEST(Durability, MutatingCommandClassification) {
  EXPECT_TRUE(isMutatingCommand("record failure"));
  EXPECT_TRUE(isMutatingCommand("replay"));
  EXPECT_TRUE(isMutatingCommand("stepi 5"));
  EXPECT_TRUE(isMutatingCommand("break 4"));
  EXPECT_FALSE(isMutatingCommand("where"));
  EXPECT_FALSE(isMutatingCommand("backtrace"));
  EXPECT_FALSE(isMutatingCommand("print X"));
  EXPECT_FALSE(isMutatingCommand("replay-position"));
  EXPECT_FALSE(isMutatingCommand("fault list"));
  EXPECT_FALSE(isMutatingCommand("output"));
}

//===----------------------------------------------------------------------===//
// Crash recovery
//===----------------------------------------------------------------------===//

const std::vector<std::string> RecoverySetup = {"record failure", "replay",
                                                "reverse-stepi 5"};
const std::vector<std::string> RecoveryProbes = {"where", "replay-position",
                                                 "backtrace", "output"};

TEST(Durability, ServerRecoversSessionsByteIdentical) {
  TempDir Tmp("recover");
  Program P = workloads::makeFigure5();
  const std::string Reference =
      localProbes(P.SourceText, RecoverySetup, RecoveryProbes);
  ASSERT_FALSE(Reference.empty());

  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, RecoverySetup);
    EXPECT_GE(Srv.stats().SessionsJournaled.load(), 1u);
    EXPECT_GT(Srv.stats().JournalBytes.load(), 0);
    // Simulated kill -9: the server dies here with the journal on disk.
  }
  ASSERT_TRUE(fs::exists(Tmp.Dir / ("session-" + std::to_string(Sid) +
                                    ".journal")));
  {
    DebugServer Srv(Cfg);
    EXPECT_EQ(Srv.sessions().activeCount(), 1u);
    EXPECT_EQ(Srv.stats().SessionsRecovered.load(), 1u);
    EXPECT_EQ(probeRecovered(Srv, Sid, RecoveryProbes), Reference);
  }
}

TEST(Durability, RepeatedRecoveryIsExactlyOnce) {
  TempDir Tmp("rerecover");
  Program P = workloads::makeFigure5();
  const std::string Reference =
      localProbes(P.SourceText, RecoverySetup, RecoveryProbes);

  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, RecoverySetup);
  }
  fs::path Journal = Tmp.Dir / ("session-" + std::to_string(Sid) + ".journal");
  const size_t RecordCount = mustRead(Journal).size();
  // Three crash/restart cycles: the state never drifts and recovery never
  // re-journals what it replays (each record applies exactly once).
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    DebugServer Srv(Cfg);
    ASSERT_EQ(Srv.sessions().activeCount(), 1u) << "cycle " << Cycle;
    EXPECT_EQ(probeRecovered(Srv, Sid, RecoveryProbes), Reference)
        << "cycle " << Cycle;
  }
  EXPECT_EQ(mustRead(Journal).size(), RecordCount);
}

TEST(Durability, RetransmitAfterRestartReExecutesSafely) {
  // The duplicate-response cache is per-connection, in memory only: it does
  // NOT survive a restart (docs/SERVER.md). What makes that safe is journal
  // replay idempotence — recovery applies each journaled record exactly
  // once, so a client that reconnects and re-issues a command gets exactly
  // one additional application, never a double-replayed history.
  TempDir Tmp("dedup");
  Program P = workloads::makeFigure5();
  const std::vector<std::string> Setup = {"record failure", "replay",
                                          "reverse-stepi 1"};
  const std::vector<std::string> Probes = {"replay-position", "where"};
  const std::string AfterOnce = localProbes(P.SourceText, Setup, Probes);
  std::vector<std::string> SetupTwice = Setup;
  SetupTwice.push_back("reverse-stepi 1");
  const std::string AfterTwice =
      localProbes(P.SourceText, SetupTwice, Probes);
  ASSERT_NE(AfterOnce, AfterTwice);

  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, Setup);
  }
  DebugServer Srv(Cfg);
  // Recovery applied "stepi 1" exactly once...
  EXPECT_EQ(probeRecovered(Srv, Sid, Probes), AfterOnce);
  // ...and a reconnecting client re-issuing it executes it again (the old
  // connection's dedup cache is gone), which is one more step, no more.
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<> R = Client.request("attach " + std::to_string(Sid));
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.cmd(Sid, "reverse-stepi 1");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_EQ(remoteProbes(Client, Sid, Probes), AfterTwice);
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Durability, SnapshotCompactionTruncatesJournal) {
  TempDir Tmp("compact");
  Program P = workloads::makeFigure5();
  // replay-seek recovery and reverse-stepi recovery take different
  // checkpoint paths, so probe only position-determined state here.
  const std::vector<std::string> Setup = {"record failure", "replay",
                                          "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};
  const std::string Reference = localProbes(P.SourceText, Setup, Probes);

  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  Cfg.SnapshotEvery = 4; // load + 3 commands trigger the first compaction
  Cfg.CompactMinBytes = 0; // no size floor: tiny test journals must compact
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, Setup);
    EXPECT_GE(Srv.stats().JournalCompactions.load(), 1u);
  }
  // The journal collapsed to load + snapshot-marker + replay + seek, and
  // the snapshot pinball sits next to it.
  fs::path Journal = Tmp.Dir / ("session-" + std::to_string(Sid) + ".journal");
  std::vector<JournalRecord> Recs = mustRead(Journal);
  ASSERT_EQ(Recs.size(), 4u);
  EXPECT_EQ(Recs[0].K, JournalRecord::Kind::Load);
  EXPECT_EQ(Recs[1].K, JournalRecord::Kind::Snap);
  EXPECT_EQ(Recs[2].Payload, "replay");
  EXPECT_EQ(Recs[3].Payload.rfind("replay-seek ", 0), 0u);
  EXPECT_TRUE(fs::exists(Tmp.Dir / ("session-" + std::to_string(Sid) +
                                    ".pinball")));

  // Recovery through the snapshot lands on the same state.
  DebugServer Srv(Cfg);
  ASSERT_EQ(Srv.sessions().activeCount(), 1u);
  EXPECT_EQ(probeRecovered(Srv, Sid, Probes), Reference);
}

TEST(Durability, DiskBackedSessionsCompactToAReference) {
  TempDir Tmp("refcompact");
  Program P = workloads::makeFigure5();
  // A pinball on disk, the way a user would hand one to the server.
  fs::path PbDir = Tmp.Dir / "source-pinball";
  {
    std::ostringstream Sink;
    DebugSession S(Sink);
    ASSERT_TRUE(S.loadProgramText(P.SourceText));
    ASSERT_TRUE(S.execute("record failure"));
    ASSERT_TRUE(S.execute("pinball save " + PbDir.string()));
  }
  const std::vector<std::string> Setup = {"pinball load " + PbDir.string(),
                                          "replay", "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};
  const std::string Reference = localProbes(P.SourceText, Setup, Probes);

  ServerConfig Cfg;
  Cfg.JournalDir = (Tmp.Dir / "journals").string();
  Cfg.SnapshotEvery = 4;
  Cfg.CompactMinBytes = 0;
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, Setup);
    EXPECT_GE(Srv.stats().JournalCompactions.load(), 1u);
  }
  // The compacted journal references the still-intact source pinball
  // instead of copying it: a `ref` record carrying the expected directory
  // fingerprint (re-verified at recovery) and its path; no snapshot dir.
  fs::path Journal =
      fs::path(Cfg.JournalDir) / ("session-" + std::to_string(Sid) + ".journal");
  std::vector<JournalRecord> Recs = mustRead(Journal);
  ASSERT_EQ(Recs.size(), 4u);
  EXPECT_EQ(Recs[0].K, JournalRecord::Kind::Load);
  EXPECT_EQ(Recs[1].K, JournalRecord::Kind::Ref);
  EXPECT_EQ(Recs[1].Payload,
            std::to_string(PinballRepository::dirFingerprint(PbDir.string())) +
                " " + PbDir.string());
  EXPECT_EQ(Recs[2].Payload, "replay");
  EXPECT_EQ(Recs[3].Payload.rfind("replay-seek ", 0), 0u);
  EXPECT_FALSE(fs::exists(fs::path(Cfg.JournalDir) /
                          ("session-" + std::to_string(Sid) + ".pinball")));

  // Recovery re-loads the referenced pinball and lands on the same state.
  DebugServer Srv(Cfg);
  ASSERT_EQ(Srv.sessions().activeCount(), 1u);
  EXPECT_EQ(probeRecovered(Srv, Sid, Probes), Reference);
}

TEST(Durability, ChangedReferencePinballFailsRecoveryLoudly) {
  TempDir Tmp("refdrift");
  Program P = workloads::makeFigure5();
  fs::path PbDir = Tmp.Dir / "source-pinball";
  {
    std::ostringstream Sink;
    DebugSession S(Sink);
    ASSERT_TRUE(S.loadProgramText(P.SourceText));
    ASSERT_TRUE(S.execute("record failure"));
    ASSERT_TRUE(S.execute("pinball save " + PbDir.string()));
  }
  ServerConfig Cfg;
  Cfg.JournalDir = (Tmp.Dir / "journals").string();
  Cfg.SnapshotEvery = 4;
  Cfg.CompactMinBytes = 0;
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, {"pinball load " + PbDir.string(), "replay",
                                  "reverse-stepi 2"});
    EXPECT_GE(Srv.stats().JournalCompactions.load(), 1u);
  }
  // The referenced pinball changes under the compacted journal's feet. A
  // recovery that re-loaded it anyway would rebuild a silently wrong
  // session; the `ref` record's fingerprint makes it fail loudly instead.
  fs::remove_all(PbDir);
  fs::path Journal = fs::path(Cfg.JournalDir) /
                     ("session-" + std::to_string(Sid) + ".journal");
  {
    DebugServer Srv(Cfg);
    EXPECT_EQ(Srv.sessions().activeCount(), 0u);
    EXPECT_EQ(Srv.stats().SessionsRecovered.load(), 0u);
    // The casualty is reported with its reason, not dropped silently.
    ASSERT_EQ(Srv.sessions().recoveryCasualties().size(), 1u);
    EXPECT_NE(Srv.sessions().recoveryCasualties()[0].find("fingerprint"),
              std::string::npos);
    // ...and the id is burnt, never recycled onto the dead files.
    uint64_t FreshId = Srv.sessions().create();
    EXPECT_GT(FreshId, Sid);
    Srv.sessions().close(FreshId);
  }
  // The unrecoverable journal was retired aside, not left to be fully
  // re-executed (and re-failed) by every future restart.
  EXPECT_FALSE(fs::exists(Journal));
  EXPECT_TRUE(fs::exists(Journal.string() + ".dead"));
  DebugServer Again(Cfg);
  EXPECT_EQ(Again.sessions().activeCount(), 0u);
}

TEST(Durability, JournalEndingTheSessionIsRetiredOnRecovery) {
  // A crash between appending `quit` and dropDurableState leaves a journal
  // whose replay ends the session: unrecoverable, and retired as such.
  TempDir Tmp("deadquit");
  Program P = workloads::makeFigure5();
  fs::path Journal = Tmp.Dir / "session-7.journal";
  {
    JournalWriter W;
    std::string Error;
    ASSERT_TRUE(W.open(Journal.string(), JournalFsync::None, Error)) << Error;
    ASSERT_TRUE(W.append({JournalRecord::Kind::Load, P.SourceText}, Error));
    ASSERT_TRUE(W.append({JournalRecord::Kind::Cmd, "quit"}, Error));
  }
  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  {
    DebugServer Srv(Cfg);
    EXPECT_EQ(Srv.sessions().activeCount(), 0u);
    EXPECT_FALSE(fs::exists(Journal));
    EXPECT_TRUE(fs::exists(Journal.string() + ".dead"));
    ASSERT_EQ(Srv.sessions().recoveryCasualties().size(), 1u);
    EXPECT_NE(Srv.sessions().recoveryCasualties()[0].find("ends the session"),
              std::string::npos);
    EXPECT_GT(Srv.sessions().create(), 7u);
  }
}

TEST(Durability, CompactionRespectsTheSizeFloor) {
  TempDir Tmp("floor");
  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  Cfg.SnapshotEvery = 4; // count threshold reached...
  // ...but the default CompactMinBytes floor stands: a journal this small
  // recovers in negligible time, so rewriting it buys nothing.
  uint64_t Sid = 0;
  {
    DebugServer Srv(Cfg);
    Sid = runFigure5Session(Srv, RecoverySetup);
    EXPECT_EQ(Srv.stats().JournalCompactions.load(), 0u);
  }
  fs::path Journal = Tmp.Dir / ("session-" + std::to_string(Sid) + ".journal");
  std::vector<JournalRecord> Recs = mustRead(Journal);
  ASSERT_EQ(Recs.size(), 4u); // the raw history, not the compacted form
  EXPECT_EQ(Recs[1].K, JournalRecord::Kind::Cmd);
  EXPECT_EQ(Recs[1].Payload, "record failure");

  DebugServer Srv(Cfg);
  EXPECT_EQ(probeRecovered(Srv, Sid, RecoveryProbes),
            localProbes(workloads::makeFigure5().SourceText, RecoverySetup,
                        RecoveryProbes));
}

TEST(Durability, ClosingASessionDeletesItsDurableState) {
  TempDir Tmp("close");
  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  DebugServer Srv(Cfg);
  Program P = workloads::makeFigure5();
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid, P.SourceText);
    ASSERT_TRUE(R.ok()) << R.errorText();
    fs::path Journal =
        Tmp.Dir / ("session-" + std::to_string(Sid) + ".journal");
    EXPECT_TRUE(fs::exists(Journal));
    // Closing is a durability event, not a crash: nothing to recover.
    R = Client.request("close " + std::to_string(Sid));
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_FALSE(fs::exists(Journal));
  }
  ClientEnd->close();
  ServerThread.join();
  DebugServer Fresh(Cfg);
  EXPECT_EQ(Fresh.sessions().activeCount(), 0u);
}

TEST(Durability, JournalAppendFailureFailsTheCommandFirst) {
  InjectorGuard Guard;
  TempDir Tmp("wal");
  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  DebugServer Srv(Cfg);
  Program P = workloads::makeFigure5();
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid, P.SourceText);
    ASSERT_TRUE(R.ok()) << R.errorText();
    // Strict write-ahead: if the append cannot land, the command does not
    // run at all.
    FaultInjector::global().arm("journal.append", FaultKind::DiskFull, 1);
    R = Client.cmd(Sid, "record failure");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("error: journal:"), std::string::npos)
        << R.value();
    FaultInjector::global().reset();
    // The writer healed; the same command now journals and runs.
    R = Client.cmd(Sid, "record failure");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("recorded region pinball"), std::string::npos)
        << R.value();
  }
  ClientEnd->close();
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// Drain and migration
//===----------------------------------------------------------------------===//

TEST(Durability, DrainExportsBundlesAndImportRestoresThem) {
  TempDir JDirA("drain_a"), JDirB("drain_b"), Bundles("drain_bundles");
  Program P = workloads::makeFigure5();
  const std::string Reference =
      localProbes(P.SourceText, RecoverySetup, RecoveryProbes);

  ServerConfig CfgA;
  CfgA.JournalDir = JDirA.Dir.string();
  DebugServer SrvA(CfgA);
  uint64_t Sid = runFigure5Session(SrvA, RecoverySetup);

  // Drain: the report names the exported bundle, and the server refuses
  // new sessions from then on with the permanent `draining` error.
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { SrvA.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<> Drained = Client.drain(Bundles.Dir.string());
    ASSERT_TRUE(Drained.ok()) << Drained.errorText();
    const std::string &Report = Drained.value();
    EXPECT_NE(Report.find("exported session " + std::to_string(Sid)),
              std::string::npos)
        << Report;
    EXPECT_NE(Report.find("drained 1 bundles"), std::string::npos) << Report;
    ClientResult<uint64_t> Refused = Client.open();
    EXPECT_FALSE(Refused.ok());
    EXPECT_EQ(Refused.code(), static_cast<unsigned>(WireError::Draining));
    EXPECT_EQ(Refused.errClass(), ErrClass::Permanent);
    ClientResult<> RefusedCmd = Client.cmd(Sid, "where");
    EXPECT_FALSE(RefusedCmd.ok());
    EXPECT_EQ(RefusedCmd.code(),
              static_cast<unsigned>(WireError::Draining));
  }
  ClientEnd->close();
  ServerThread.join();

  fs::path Bundle = Bundles.Dir / ("session-" + std::to_string(Sid));
  ASSERT_TRUE(fs::exists(Bundle / "journal"));

  // Import into a different server (its own journal dir): the migrated
  // session replays to the same bytes.
  ServerConfig CfgB;
  CfgB.JournalDir = JDirB.Dir.string();
  DebugServer SrvB(CfgB);
  auto [ClientEnd2, ServerEnd2] = makePipePair();
  std::thread ServerThread2([&, T = ServerEnd2.get()] { SrvB.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd2);
    ClientResult<uint64_t> Imported = Client.importBundle(Bundle.string());
    ASSERT_TRUE(Imported.ok()) << Imported.errorText();
    uint64_t NewSid = Imported.value();
    ClientResult<> Attached =
        Client.request("attach " + std::to_string(NewSid));
    ASSERT_TRUE(Attached.ok()) << Attached.errorText();
    EXPECT_EQ(remoteProbes(Client, NewSid, RecoveryProbes), Reference);
  }
  ClientEnd2->close();
  ServerThread2.join();
}

TEST(Durability, BundlesCarryTheirSnapshotPinball) {
  TempDir JDir("bsnap_j"), Bundles("bsnap_b");
  Program P = workloads::makeFigure5();
  const std::vector<std::string> Setup = {"record failure", "replay",
                                          "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};
  const std::string Reference = localProbes(P.SourceText, Setup, Probes);

  ServerConfig Cfg;
  Cfg.JournalDir = JDir.Dir.string();
  Cfg.SnapshotEvery = 4;
  Cfg.CompactMinBytes = 0;
  DebugServer SrvA(Cfg);
  uint64_t Sid = runFigure5Session(SrvA, Setup);
  ASSERT_GE(SrvA.stats().JournalCompactions.load(), 1u);
  fs::path Bundle = Bundles.Dir / "bundle";
  std::string Error;
  ASSERT_TRUE(SrvA.sessions().exportBundle(Sid, Bundle.string(), Error))
      << Error;
  EXPECT_TRUE(fs::exists(Bundle / "journal"));
  EXPECT_TRUE(fs::exists(Bundle / "pinball"));

  // A memory-only server (no journal dir) can still import it.
  DebugServer SrvB;
  uint64_t NewSid = 0;
  ASSERT_TRUE(SrvB.sessions().importBundle(Bundle.string(), NewSid, Error))
      << Error;
  EXPECT_EQ(probeRecovered(SrvB, NewSid, Probes), Reference);
}

TEST(Durability, BundlesMaterializeReferencedPinballs) {
  // A ref-compacted journal points at a directory on *this* machine; the
  // exported bundle must carry the pinball bytes themselves, or migration
  // to another host (or past a deletion) silently breaks.
  TempDir Tmp("refbundle");
  Program P = workloads::makeFigure5();
  fs::path PbDir = Tmp.Dir / "source-pinball";
  {
    std::ostringstream Sink;
    DebugSession S(Sink);
    ASSERT_TRUE(S.loadProgramText(P.SourceText));
    ASSERT_TRUE(S.execute("record failure"));
    ASSERT_TRUE(S.execute("pinball save " + PbDir.string()));
  }
  const std::vector<std::string> Setup = {"pinball load " + PbDir.string(),
                                          "replay", "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};
  const std::string Reference = localProbes(P.SourceText, Setup, Probes);

  ServerConfig Cfg;
  Cfg.JournalDir = (Tmp.Dir / "journals").string();
  Cfg.SnapshotEvery = 4;
  Cfg.CompactMinBytes = 0;
  DebugServer SrvA(Cfg);
  uint64_t Sid = runFigure5Session(SrvA, Setup);
  ASSERT_GE(SrvA.stats().JournalCompactions.load(), 1u);

  fs::path Bundle = Tmp.Dir / "bundle";
  std::string Error;
  ASSERT_TRUE(SrvA.sessions().exportBundle(Sid, Bundle.string(), Error))
      << Error;
  EXPECT_TRUE(fs::exists(Bundle / "pinball"));
  std::vector<JournalRecord> Recs = mustRead(Bundle / "journal");
  ASSERT_GE(Recs.size(), 2u);
  EXPECT_EQ(Recs[1].K, JournalRecord::Kind::Snap);

  // The source pinball dies; the bundle still imports byte-identically.
  fs::remove_all(PbDir);
  DebugServer SrvB;
  uint64_t NewSid = 0;
  ASSERT_TRUE(SrvB.sessions().importBundle(Bundle.string(), NewSid, Error))
      << Error;
  EXPECT_EQ(probeRecovered(SrvB, NewSid, Probes), Reference);

  // A fresh export of the original session now fails loudly (the
  // reference is gone) instead of writing a bundle with no pinball.
  EXPECT_FALSE(
      SrvA.sessions().exportBundle(Sid, (Tmp.Dir / "bundle2").string(), Error));
  EXPECT_NE(Error.find("pinball"), std::string::npos) << Error;
}

TEST(Durability, MemoryOnlyServerReexportsImportedSnapshot) {
  // Chained migration: a server without --journal-dir imports a compacted
  // bundle, then itself drains. The re-export must resolve the snapshot
  // from the imported bundle, not from a journal dir it never had.
  TempDir JDir("chain_j"), Bundles("chain_b");
  Program P = workloads::makeFigure5();
  const std::vector<std::string> Setup = {"record failure", "replay",
                                          "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};
  const std::string Reference = localProbes(P.SourceText, Setup, Probes);

  ServerConfig Cfg;
  Cfg.JournalDir = JDir.Dir.string();
  Cfg.SnapshotEvery = 4;
  Cfg.CompactMinBytes = 0;
  DebugServer SrvA(Cfg);
  uint64_t Sid = runFigure5Session(SrvA, Setup);
  ASSERT_GE(SrvA.stats().JournalCompactions.load(), 1u);
  fs::path BundleA = Bundles.Dir / "hop1";
  std::string Error;
  ASSERT_TRUE(SrvA.sessions().exportBundle(Sid, BundleA.string(), Error))
      << Error;

  DebugServer SrvB; // no JournalDir
  uint64_t SidB = 0;
  ASSERT_TRUE(SrvB.sessions().importBundle(BundleA.string(), SidB, Error))
      << Error;
  fs::path BundleB = Bundles.Dir / "hop2";
  ASSERT_TRUE(SrvB.sessions().exportBundle(SidB, BundleB.string(), Error))
      << Error;
  EXPECT_TRUE(fs::exists(BundleB / "pinball"));

  DebugServer SrvC; // second hop lands intact
  uint64_t SidC = 0;
  ASSERT_TRUE(SrvC.sessions().importBundle(BundleB.string(), SidC, Error))
      << Error;
  EXPECT_EQ(probeRecovered(SrvC, SidC, Probes), Reference);
}

TEST(Durability, DrainWorksWithoutJournaling) {
  // Drain/export must not require durability: in-memory history is enough.
  TempDir Bundles("mem_bundles");
  Program P = workloads::makeFigure5();
  const std::string Reference =
      localProbes(P.SourceText, RecoverySetup, RecoveryProbes);
  DebugServer SrvA; // no JournalDir
  uint64_t Sid = runFigure5Session(SrvA, RecoverySetup);
  std::string Report = SrvA.drain(Bundles.Dir.string());
  EXPECT_NE(Report.find("drained 1 bundles"), std::string::npos) << Report;
  DebugServer SrvB;
  uint64_t NewSid = 0;
  std::string Error;
  ASSERT_TRUE(SrvB.sessions().importBundle(
      (Bundles.Dir / ("session-" + std::to_string(Sid))).string(), NewSid,
      Error))
      << Error;
  EXPECT_EQ(probeRecovered(SrvB, NewSid, RecoveryProbes), Reference);
}

//===----------------------------------------------------------------------===//
// Admission control and quarantine
//===----------------------------------------------------------------------===//

TEST(Durability, AdmissionControlShedsAndRetryAfterRecovers) {
  InjectorGuard Guard;
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.AdmissionMaxQueue = 1;
  DebugServer Srv(Cfg);

  auto [C1, S1] = makePipePair();
  auto [C2, S2] = makePipePair();
  std::thread SrvT1([&, T = S1.get()] { Srv.serve(*T); });
  std::thread SrvT2([&, T = S2.get()] { Srv.serve(*T); });

  ProtocolClient Client1(*C1);
  ProtocolClient Client2(*C2);
  ClientResult<uint64_t> Opened1 = Client1.open();
  ASSERT_TRUE(Opened1.ok()) << Opened1.errorText();
  uint64_t Sid1 = Opened1.value();
  ClientResult<uint64_t> Opened2 = Client2.open();
  ASSERT_TRUE(Opened2.ok()) << Opened2.errorText();
  uint64_t Sid2 = Opened2.value();

  // Wedge the one admission slot with a deliberately slow command.
  FaultInjector::global().arm("session.execute", FaultKind::Latency, 1, 0,
                              600);
  std::thread Slow([&] {
    ClientResult<> R = Client1.cmd(Sid1, "where");
    EXPECT_TRUE(R.ok()) << R.errorText();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // A zero-retry client sees the transient overload error with the
  // server's backoff hint in it.
  RetryPolicy NoRetry;
  NoRetry.MaxRetries = 0;
  Client2.setRetryPolicy(NoRetry);
  ClientResult<> Shed = Client2.cmd(Sid2, "where");
  EXPECT_FALSE(Shed.ok());
  EXPECT_EQ(Shed.code(), static_cast<unsigned>(WireError::Overloaded));
  EXPECT_TRUE(Shed.transient());
  // The typed result carries the parsed retry-after hint directly.
  EXPECT_GT(Shed.retryAfterMs(), 0u) << Shed.errorText();

  // With retries enabled the client honors retry-after-ms and eventually
  // gets through once the slot frees up.
  FaultInjector::global().reset();
  RetryPolicy Retry;
  Retry.MaxRetries = 50;
  Retry.InitialBackoffMs = 10;
  Client2.setRetryPolicy(Retry);
  ClientResult<> R = Client2.cmd(Sid2, "where");
  ASSERT_TRUE(R.ok()) << R.errorText();
  Slow.join();
  EXPECT_GE(Srv.stats().AdmissionRejected.load(), 1u);

  ClientResult<> Stats = Client1.stats();
  ASSERT_TRUE(Stats.ok()) << Stats.errorText();
  EXPECT_NE(Stats.value().find("admission.rejected"), std::string::npos)
      << Stats.value();

  C1->close();
  C2->close();
  SrvT1.join();
  SrvT2.join();
}

TEST(Durability, DeadlineOverrunQuarantinesTheSession) {
  InjectorGuard Guard;
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.CmdDeadline = std::chrono::milliseconds(100);
  DebugServer Srv(Cfg);

  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();

    // One command overruns its deadline...
    FaultInjector::global().arm("session.execute", FaultKind::Latency, 1, 0,
                                800);
    ClientResult<> Overrun = Client.cmd(Sid, "where");
    EXPECT_FALSE(Overrun.ok());
    EXPECT_EQ(Overrun.code(), static_cast<unsigned>(WireError::Timeout));
    FaultInjector::global().reset();

    // ...so the session is quarantined: new verbs are refused instead of
    // queueing behind the wedged command's mutex.
    EXPECT_TRUE(Srv.sessions().isQuarantined(Sid));
    ClientResult<> Refused = Client.cmd(Sid, "where");
    EXPECT_FALSE(Refused.ok());
    EXPECT_EQ(Refused.code(),
              static_cast<unsigned>(WireError::SessionFailed));
    EXPECT_NE(Refused.error().Message.find("quarantined"), std::string::npos)
        << Refused.errorText();

    // Once the overdue command finally completes the quarantine lifts.
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    bool Recovered = false;
    std::string LastError;
    while (std::chrono::steady_clock::now() < Deadline) {
      ClientResult<> Probe = Client.cmd(Sid, "where");
      if (Probe.ok()) {
        Recovered = true;
        break;
      }
      LastError = Probe.errorText();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(Recovered) << LastError;
    EXPECT_GE(Srv.stats().SessionsQuarantined.load(), 1u);
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Durability, QuarantineCountsOverlappingOverruns) {
  // Two commands on one session both overran their deadlines: the first
  // settling must NOT lift the quarantine while the second is still wedged
  // on the session mutex — quarantine is a count, not a flag.
  DebugServer Srv;
  SessionManager &Mgr = Srv.sessions();
  uint64_t Sid = Mgr.create();
  Mgr.quarantine(Sid);
  Mgr.quarantine(Sid);
  EXPECT_TRUE(Mgr.isQuarantined(Sid));
  Mgr.unquarantine(Sid);
  EXPECT_TRUE(Mgr.isQuarantined(Sid)); // one overdue command still out
  Mgr.unquarantine(Sid);
  EXPECT_FALSE(Mgr.isQuarantined(Sid));
  Mgr.unquarantine(Sid); // unpaired extra: clamped, no wraparound
  EXPECT_FALSE(Mgr.isQuarantined(Sid));
  // The metric counts sessions entering quarantine, not every overrun.
  EXPECT_EQ(Srv.stats().SessionsQuarantined.load(), 1u);
}

TEST(Durability, QuitRacingAVerbLeavesNoDurableState) {
  // A verb that grabbed the session just before `quit` tore it down must
  // not journal into (and resurrect) the deleted durable state. Under TSan
  // this also exercises the journalAppend-vs-dropDurableState race.
  TempDir Tmp("quitrace");
  Program P = workloads::makeFigure5();
  ServerConfig Cfg;
  Cfg.JournalDir = Tmp.Dir.string();
  for (int Round = 0; Round < 8; ++Round) {
    DebugServer Srv(Cfg);
    SessionManager &Mgr = Srv.sessions();
    uint64_t Sid = Mgr.create();
    std::string Out;
    bool LoadOk = false;
    ASSERT_EQ(Mgr.loadProgram(Sid, P.SourceText, Out, LoadOk),
              SessionManager::ExecStatus::Ok);
    ASSERT_TRUE(LoadOk) << Out;
    std::thread Racer([&] {
      std::string ROut;
      while (Mgr.execute(Sid, "record failure", ROut) !=
             SessionManager::ExecStatus::NoSuchSession)
        ;
    });
    std::string QOut;
    EXPECT_EQ(Mgr.execute(Sid, "quit", QOut),
              SessionManager::ExecStatus::Ended);
    Racer.join();
    EXPECT_FALSE(fs::exists(
        Tmp.Dir / ("session-" + std::to_string(Sid) + ".journal")))
        << "round " << Round << ": quit resurrected the journal";
  }
  DebugServer Fresh(Cfg);
  EXPECT_EQ(Fresh.sessions().activeCount(), 0u);
}

//===----------------------------------------------------------------------===//
// The fault-site catalog surfaces
//===----------------------------------------------------------------------===//

TEST(Durability, FaultListCommandAndFaultsVerb) {
  InjectorGuard Guard;
  // The in-session command (works before any program is loaded).
  {
    std::ostringstream OS;
    DebugSession S(OS);
    EXPECT_TRUE(S.execute("fault list"));
    std::string Catalog = OS.str();
    EXPECT_NE(Catalog.find("journal.append"), std::string::npos) << Catalog;
    EXPECT_NE(Catalog.find("session.execute"), std::string::npos) << Catalog;
    OS.str("");
    S.execute("fault arm");
    EXPECT_NE(OS.str().find("usage: fault list"), std::string::npos);
  }
  // The server verb reports the same catalog, including armed state.
  FaultInjector::global().arm("journal.append", FaultKind::DiskFull, 7);
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, T = ServerEnd.get()] { Srv.serve(*T); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<> Faults = Client.faults();
    ASSERT_TRUE(Faults.ok()) << Faults.errorText();
    EXPECT_NE(Faults.value().find("journal.append"), std::string::npos)
        << Faults.value();
    EXPECT_NE(Faults.value().find("diskfull"), std::string::npos)
        << Faults.value();
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Durability, ArmFromSpecRejectsUnknownSites) {
  InjectorGuard Guard;
  std::string Error;
  EXPECT_FALSE(
      FaultInjector::global().armFromSpec("no.such.site:diskfull:1", Error));
  EXPECT_NE(Error.find("no.such.site"), std::string::npos) << Error;
  EXPECT_TRUE(
      FaultInjector::global().armFromSpec("journal.append:diskfull:4", Error))
      << Error;
}

} // namespace
