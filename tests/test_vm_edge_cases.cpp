//===- tests/test_vm_edge_cases.cpp - Interpreter corner cases ---------------===//

#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

TEST(VmEdge, ArithmeticWrapsWithoutUb) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 0x7fffffffffffffff\n"
                            "  addi r2, r1, 1\n"   // wraps to INT64_MIN
                            "  muli r3, r1, 2\n"   // wraps
                            "  neg r4, r2\n"       // -INT64_MIN wraps
                            "  syswrite r2\n"
                            "  halt\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], INT64_MIN);
}

TEST(VmEdge, ShiftAmountsMaskTo63) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"
                            "  movi r2, 64\n"
                            "  shl r3, r1, r2\n"  // 64 & 63 == 0: identity
                            "  movi r2, 65\n"
                            "  shl r4, r1, r2\n"  // 65 & 63 == 1: doubles
                            "  syswrite r3\n  syswrite r4\n"
                            "  halt\n.endfunc\n");
  std::vector<int64_t> Out;
  runProgram(P, &Out);
  EXPECT_EQ(Out[0], 1);
  EXPECT_EQ(Out[1], 2);
}

TEST(VmEdge, SelfLockIsRecursiveNoop) {
  Program P = assembleOrDie(".data m 0\n"
                            ".func main\n"
                            "  lea r1, @m\n"
                            "  lock r1\n"
                            "  lock r1\n"  // re-acquire own mutex: proceeds
                            "  unlock r1\n"
                            "  halt\n.endfunc\n");
  EXPECT_EQ(runProgram(P), Machine::StopReason::Halted);
}

TEST(VmEdge, UnlockingUnownedMutexIsIgnored) {
  Program P = assembleOrDie(".data m 0\n"
                            ".func main\n"
                            "  lea r1, @m\n"
                            "  unlock r1\n" // never locked: no-op
                            "  halt\n.endfunc\n");
  EXPECT_EQ(runProgram(P), Machine::StopReason::Halted);
}

TEST(VmEdge, JoinSelfDoesNotDeadlock) {
  // join of an invalid/self tid proceeds immediately (documented
  // tolerance; a real pthread_join(self) would error).
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 0\n"
                            "  join r1\n"
                            "  halt\n.endfunc\n");
  EXPECT_EQ(runProgram(P), Machine::StopReason::Halted);
}

TEST(VmEdge, JoinUnknownTidProceeds) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 99\n"
                            "  join r1\n"
                            "  halt\n.endfunc\n");
  EXPECT_EQ(runProgram(P), Machine::StopReason::Halted);
}

TEST(VmEdge, HaltStopsAllThreads) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, spin, r0\n"
                            "  halt\n.endfunc\n"
                            ".func spin\n"
                            "s:\n  jmp s\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  EXPECT_EQ(M.run(1000), Machine::StopReason::Halted);
  EXPECT_LT(M.globalCount(), 1000u);
}

TEST(VmEdge, AssertInWorkerThreadReportsWorkerTid) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, bad, r0\n"
                            "  join r1\n"
                            "  halt\n.endfunc\n"
                            ".func bad\n"
                            "  assert r0\n"
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  EXPECT_EQ(M.run(), Machine::StopReason::AssertFailed);
  EXPECT_EQ(M.failedTid(), 1u);
  EXPECT_EQ(M.failedPc(), P.entryOf("bad"));
}

TEST(VmEdge, AtomicAddWithOffset) {
  Program P = assembleOrDie(".array v 4 10 20 30 40\n"
                            ".func main\n"
                            "  lea r1, @v\n"
                            "  movi r2, 5\n"
                            "  atomicadd r3, [r1+2], r2\n"
                            "  lda r4, @v+2\n"
                            "  syswrite r3\n  syswrite r4\n"
                            "  halt\n.endfunc\n");
  std::vector<int64_t> Out;
  runProgram(P, &Out);
  EXPECT_EQ(Out[0], 30); // old value returned
  EXPECT_EQ(Out[1], 35); // memory updated
}

TEST(VmEdge, DeepCallChainKeepsStacksConsistent) {
  // 50-deep recursion: the shadow call stack and the memory stack agree.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 50\n"
                            "  call down\n"
                            "  syswrite r2\n"
                            "  halt\n.endfunc\n"
                            ".func down\n"
                            "  ble r1, r0, base\n"
                            "  subi r1, r1, 1\n"
                            "  call down\n"
                            "  addi r2, r2, 1\n"
                            "  ret\n"
                            "base:\n"
                            "  movi r2, 0\n"
                            "  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  EXPECT_EQ(runProgram(P, &Out), Machine::StopReason::Halted);
  EXPECT_EQ(Out[0], 50);
}

TEST(VmEdge, ObserverRemovalStopsCallbacks) {
  Program P = assembleOrDie(".func main\n  nop\n  nop\n  nop\n  nop\n"
                            "  halt\n.endfunc\n");
  struct Count : Observer {
    uint64_t N = 0;
    void onExec(const Machine &, const ExecRecord &) override { ++N; }
  } C;
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  M.addObserver(&C);
  M.run(2);
  M.removeObserver(&C);
  M.run();
  EXPECT_EQ(C.N, 2u);
}

TEST(VmEdge, StopRequestFromObserverIsPrecise) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1\n  sta r1, @g\n"  // pcs 0,1
                            "  movi r2, 2\n  sta r2, @g\n"  // pcs 2,3
                            "  halt\n.endfunc\n");
  struct StopAt : Observer {
    Machine *M = nullptr;
    void onPreExec(const Machine &, uint32_t, uint64_t Pc) override {
      if (Pc == 2)
        M->requestStop();
    }
  } S;
  RoundRobinScheduler Sched(1);
  Machine M(P);
  S.M = &M;
  M.setScheduler(&Sched);
  M.addObserver(&S);
  EXPECT_EQ(M.run(), Machine::StopReason::StopRequested);
  // Stopped *before* pc 2: g holds the first store's value and the thread
  // is poised at pc 2.
  EXPECT_EQ(M.mem().load(P.findGlobal("g")->Addr), 1);
  EXPECT_EQ(M.thread(0).Pc, 2u);
  // Detaching the stopper and resuming finishes the program.
  M.removeObserver(&S);
  EXPECT_EQ(M.run(), Machine::StopReason::Halted);
  EXPECT_EQ(M.mem().load(P.findGlobal("g")->Addr), 2);
}

TEST(VmEdge, OutputAccumulatesAcrossThreads) {
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n"
                            "  join r1\n"
                            "  movi r2, 2\n  syswrite r2\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  movi r2, 1\n  syswrite r2\n  ret\n.endfunc\n");
  std::vector<int64_t> Out;
  runProgram(P, &Out);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 1);
  EXPECT_EQ(Out[1], 2);
}

} // namespace
