//===- tests/test_properties.cpp - Random-program property sweeps ------------===//
//
// Property-based tests: every invariant below must hold for arbitrary
// generated programs under arbitrary scheduler seeds.
//
//===----------------------------------------------------------------------===//

#include "replay/logger.h"
#include "replay/relogger.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "test_util.h"
#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

constexpr uint64_t StepBudget = 400'000;

struct Case {
  uint64_t ProgramSeed;
  uint64_t SchedulerSeed;
};

class PropertyTest : public ::testing::TestWithParam<Case> {
protected:
  Program P;
  /// Bounded shapes: call-DAG depth multiplies loop costs, so keep the
  /// generated programs at tens-of-thousands of instructions — large
  /// enough to be interesting, small enough that tracing-based properties
  /// stay fast.
  static GeneratorOptions boundedOptions() {
    GeneratorOptions Opts;
    Opts.NumFunctions = 3;
    Opts.MaxBodyLen = 10;
    Opts.MaxThreads = 2;
    return Opts;
  }
  void SetUp() override {
    P = generateRandomProgram(GetParam().ProgramSeed, boundedOptions());
  }
  std::unique_ptr<RandomScheduler> sched() {
    return std::make_unique<RandomScheduler>(GetParam().SchedulerSeed, 1, 3);
  }
  std::unique_ptr<DefaultSyscalls> world() {
    auto W = std::make_unique<DefaultSyscalls>(GetParam().SchedulerSeed + 7);
    W->setInput({1, -2, 3, 5, 8});
    return W;
  }
};

/// Generated programs terminate (bounded loops, DAG calls, one mutex).
TEST_P(PropertyTest, GeneratedProgramTerminates) {
  auto S = sched();
  auto W = world();
  Machine M(P);
  M.setScheduler(S.get());
  M.setSyscalls(W.get());
  Machine::StopReason Reason = M.run(StepBudget);
  EXPECT_TRUE(Reason == Machine::StopReason::Halted ||
              Reason == Machine::StopReason::AssertFailed)
      << stopReasonName(Reason);
}

/// Logging then replaying reproduces the exact instruction/value stream.
TEST_P(PropertyTest, ReplayReproducesExecution) {
  uint64_t OriginalHash, OriginalCount;
  {
    auto S = sched();
    auto W = world();
    Machine M(P);
    M.setScheduler(S.get());
    M.setSyscalls(W.get());
    TraceHashObserver H;
    M.addObserver(&H);
    M.run(StepBudget);
    OriginalHash = H.hash();
    OriginalCount = H.count();
  }
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  TraceHashObserver H;
  Rep.machine().addObserver(&H);
  Rep.run();
  EXPECT_EQ(H.hash(), OriginalHash);
  EXPECT_EQ(H.count(), OriginalCount);
}

/// Replaying twice produces identical final states.
TEST_P(PropertyTest, ReplayIsIdempotent) {
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  MachineState States[2];
  for (int I = 0; I != 2; ++I) {
    Replayer Rep(Log.Pb);
    ASSERT_TRUE(Rep.valid());
    Rep.run();
    States[I] = Rep.machine().snapshot();
  }
  EXPECT_TRUE(States[0] == States[1]);
}

/// Mid-region snapshots restore exactly.
TEST_P(PropertyTest, SnapshotRoundTripsMidExecution) {
  auto S = sched();
  auto W = world();
  Machine M(P);
  M.setScheduler(S.get());
  M.setSyscalls(W.get());
  M.run(50);
  MachineState Snap = M.snapshot();
  Machine M2(P);
  M2.restore(Snap);
  EXPECT_TRUE(M2.snapshot() == Snap);
}

/// Slices are closed under their recorded dependence edges, and every
/// member lies at or before the criterion.
TEST_P(PropertyTest, SlicesAreClosedAndBackward) {
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  if (Log.Pb.instructionCount() == 0)
    GTEST_SKIP() << "empty region";
  SliceSession Session(Log.Pb);
  std::string Error;
  ASSERT_TRUE(Session.prepare(Error)) << Error;
  auto Criteria = Session.lastLoadCriteria(3);
  for (const SliceCriterion &C : Criteria) {
    auto Sl = Session.computeSlice(C);
    ASSERT_TRUE(Sl.has_value());
    for (const DepEdge &E : Sl->Edges) {
      EXPECT_TRUE(Sl->contains(E.FromPos));
      EXPECT_TRUE(Sl->contains(E.ToPos));
      EXPECT_LT(E.ToPos, E.FromPos);
    }
    for (uint32_t Pos : Sl->Positions)
      EXPECT_LE(Pos, Sl->CriterionPos);
  }
}

/// The LP traversal result does not depend on the block size.
TEST_P(PropertyTest, LpBlockSizeInvariance) {
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  if (Log.Pb.instructionCount() == 0)
    GTEST_SKIP() << "empty region";
  std::vector<uint32_t> Baseline;
  for (size_t BS : {size_t(3), size_t(64), size_t(1) << 20}) {
    SliceSessionOptions Opts;
    Opts.BlockSize = BS;
    SliceSession Session(Log.Pb, Opts);
    std::string Error;
    ASSERT_TRUE(Session.prepare(Error)) << Error;
    auto Criteria = Session.lastLoadCriteria(1);
    if (Criteria.empty())
      GTEST_SKIP() << "no loads";
    auto Sl = Session.computeSlice(Criteria[0]);
    ASSERT_TRUE(Sl.has_value());
    if (Baseline.empty())
      Baseline = Sl->Positions;
    else
      EXPECT_EQ(Sl->Positions, Baseline) << "block size " << BS;
  }
}

/// The clustered topological merge honors every happens-before edge.
TEST_P(PropertyTest, GlobalTraceIsAValidTopologicalOrder) {
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  if (Log.Pb.instructionCount() == 0)
    GTEST_SKIP() << "empty region";
  SliceSession Session(Log.Pb);
  std::string Error;
  ASSERT_TRUE(Session.prepare(Error)) << Error;
  const TraceSet &TS = Session.traces();
  const GlobalTrace &GT = Session.globalTrace();
  // Program order.
  for (const ThreadTrace &T : TS.threads())
    for (size_t I = 1; I < T.Entries.size(); ++I)
      EXPECT_LT(GT.posOf(T.Tid, static_cast<uint32_t>(I - 1)),
                GT.posOf(T.Tid, static_cast<uint32_t>(I)));
  // Shared-memory access order.
  for (const OrderEdge &E : TS.orderEdges()) {
    if (E.FromIdx >= TS.threads()[E.FromTid].Entries.size() ||
        E.ToIdx >= TS.threads()[E.ToTid].Entries.size())
      continue;
    EXPECT_LT(GT.posOf(E.FromTid, E.FromIdx), GT.posOf(E.ToTid, E.ToIdx));
  }
}

/// Slicing over the merged order and slicing over the true recorded order
/// find the same data dependences (the merge preserves last-writers).
TEST_P(PropertyTest, MergedOrderPreservesSlices) {
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  if (Log.Pb.instructionCount() == 0)
    GTEST_SKIP() << "empty region";
  if (Log.Pb.instructionCount() > 50'000)
    GTEST_SKIP() << "trace too large for the quadratic oracle";
  SliceSession Session(Log.Pb);
  std::string Error;
  ASSERT_TRUE(Session.prepare(Error)) << Error;
  auto Criteria = Session.lastLoadCriteria(2);
  const TraceSet &TS = Session.traces();
  const GlobalTrace &GT = Session.globalTrace();

  // Last writer of each location per *recorded* (true) order position.
  // Maps (tid, local) -> recorded position.
  std::map<std::pair<uint32_t, uint32_t>, size_t> RecordedPos;
  const auto &TrueOrder = TS.recordedOrder();
  for (size_t I = 0; I != TrueOrder.size(); ++I)
    RecordedPos[{TrueOrder[I].Tid, TrueOrder[I].LocalIdx}] = I;
  auto LastWriterBefore = [&](Location Loc, size_t RecPos) -> int64_t {
    for (size_t I = RecPos; I-- > 0;) {
      const GlobalRef &R = TrueOrder[I];
      const TraceEntry &E = TS.threads()[R.Tid].Entries[R.LocalIdx];
      for (const auto &D : E.Defs)
        if (D.Loc == Loc)
          return static_cast<int64_t>(I);
    }
    return -1;
  };

  for (const SliceCriterion &C : Criteria) {
    auto Sl = Session.computeSlice(C);
    ASSERT_TRUE(Sl.has_value());
    std::set<std::pair<uint32_t, uint32_t>> Members;
    for (uint32_t Pos : Sl->Positions)
      Members.insert({GT.ref(Pos).Tid, GT.ref(Pos).LocalIdx});
    // For every memory use of every slice member, the true-order last
    // writer (when inside the region) must itself be a slice member —
    // i.e. the merged order resolved the same producer.
    size_t CheckedMembers = 0;
    for (uint32_t Pos : Sl->Positions) {
      if (++CheckedMembers > 300)
        break; // the oracle is O(n) per use; sample the members
      const GlobalRef &R = GT.ref(Pos);
      const TraceEntry &E = GT.entry(Pos);
      size_t RecPos = RecordedPos.at({R.Tid, R.LocalIdx});
      for (const auto &U : E.Uses) {
        if (isRegLoc(U.Loc))
          continue;
        int64_t W = LastWriterBefore(U.Loc, RecPos);
        if (W < 0)
          continue; // defined before the region
        const GlobalRef &Writer = TrueOrder[static_cast<size_t>(W)];
        EXPECT_TRUE(Members.count({Writer.Tid, Writer.LocalIdx}))
            << "true last writer of " << locName(U.Loc) << " missing";
      }
    }
  }
}

/// Excluding a random chunk and injecting its side effects leaves the final
/// state unchanged — for a *single-threaded* program, where the injection
/// point is always the very next executed instruction. (With concurrency
/// this only holds for dependence-closed exclusions, which the slice-based
/// tests cover: an arbitrary chunk's effects could be read by another
/// thread before the injection lands.)
TEST_P(PropertyTest, RandomExclusionPreservesIncludedValues) {
  GeneratorOptions Opts = boundedOptions();
  Opts.MaxThreads = 0;
  Program P = generateRandomProgram(GetParam().ProgramSeed, Opts);
  auto S = sched();
  auto W = world();
  LogResult Log = Logger::logWholeProgram(P, *S, W.get());
  uint64_t Total = Log.Pb.instructionCount();
  if (Total < 20)
    GTEST_SKIP() << "region too small";

  // Choose a chunk of thread 0 to exclude, avoiding Spawn instructions.
  Replayer Scan(Log.Pb);
  ASSERT_TRUE(Scan.valid());
  struct Collect : Observer {
    std::vector<std::pair<uint64_t, Opcode>> MainOps;
    void onExec(const Machine &, const ExecRecord &R) override {
      if (R.Tid == 0)
        MainOps.emplace_back(R.PerThreadIndex, R.Inst->Op);
    }
  } Ops;
  Scan.machine().addObserver(&Ops);
  Scan.run();
  if (Ops.MainOps.size() < 10)
    GTEST_SKIP() << "main thread too short";

  Rng Rand(GetParam().ProgramSeed * 31 + GetParam().SchedulerSeed);
  // Try a few random chunks until one avoids Spawn.
  for (int Attempt = 0; Attempt != 8; ++Attempt) {
    size_t Lo = Rand.below(Ops.MainOps.size() - 4);
    size_t Hi = Lo + 1 + Rand.below(4);
    bool HasSpawn = false;
    for (size_t I = Lo; I != Hi; ++I)
      if (Ops.MainOps[I].second == Opcode::Spawn)
        HasSpawn = true;
    if (HasSpawn)
      continue;

    ExclusionRegion Excl;
    Excl.Tid = 0;
    Excl.BeginIndex = Ops.MainOps[Lo].first;
    Excl.EndIndex = Ops.MainOps[Hi - 1].first + 1;
    Pinball Slice;
    std::string Error;
    ASSERT_TRUE(Relogger::relog(Log.Pb, {Excl}, Slice, Error)) << Error;

    // Final memory must agree between full replay and excluded replay.
    Replayer Full(Log.Pb), Part(Slice);
    ASSERT_TRUE(Full.valid() && Part.valid());
    Full.run();
    Part.run();
    EXPECT_EQ(Part.machine().mem().words(), Full.machine().mem().words())
        << "exclusion [" << Excl.BeginIndex << "," << Excl.EndIndex << ")";
    return;
  }
  GTEST_SKIP() << "no spawn-free chunk found";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertyTest,
    ::testing::Values(Case{1, 1}, Case{1, 2}, Case{2, 1}, Case{3, 7},
                      Case{4, 3}, Case{5, 5}, Case{6, 11}, Case{7, 2},
                      Case{8, 9}, Case{9, 4}, Case{10, 13}, Case{11, 1},
                      Case{12, 6}, Case{13, 8}, Case{14, 10}, Case{15, 15}));

} // namespace
