//===- tests/test_flight_recorder.cpp - Always-on flight recorder tests -----===//
//
// The epoch-ring in-situ recorder: partial-epoch dumps, eviction + delta
// materialization correctness (the acceptance test: a dump taken after GC
// replays bit-identically to a conventional pinball of the same window),
// memory-budget bounds, debugger attach/dump reuse, live mid-run attach,
// the rattach/rstatus/rdump server verbs, and Maple auto-dump. All tests
// carry the Flight prefix so the tsan CTest preset picks them up.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "maple/maple.h"
#include "replay/flight_recorder.h"
#include "replay/logger.h"
#include "replay/replayer.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "test_util.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
using namespace drdebug::testutil;
namespace fs = std::filesystem;

namespace {

/// A scratch directory removed on destruction.
struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_flight_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
};

/// Two threads hammering a shared buffer with sysrand-derived indices:
/// every instruction matters for replay (schedule + syscall values), and
/// the run is long enough to roll through many small epochs.
const char *multiThreadedSource() {
  return ".data g 0\n"
         ".array buf 64\n"
         ".func main\n"
         "  movi r1, 120\n"
         "  spawn r9, worker, r1\n"
         "loop:\n"
         "  lda r2, @g\n"
         "  addi r2, r2, 1\n"
         "  sta r2, @g\n"
         "  sysrand r3\n"
         "  andi r3, r3, 63\n"
         "  lea r4, @buf\n"
         "  add r4, r4, r3\n"
         "  st r2, [r4]\n"
         "  subi r1, r1, 1\n"
         "  bgt r1, r0, loop\n"
         "  join r9\n"
         "  halt\n"
         ".endfunc\n"
         ".func worker\n"
         "  addi r1, r0, 0\n" // r0 carries the spawn argument
         "  movi r5, 0\n"
         "wl:\n"
         "  sysrand r3\n"
         "  andi r3, r3, 63\n"
         "  lea r4, @buf\n"
         "  add r4, r4, r3\n"
         "  ld r6, [r4]\n"
         "  addi r6, r6, 1\n"
         "  st r6, [r4]\n"
         "  subi r1, r1, 1\n"
         "  bgt r1, r5, wl\n"
         "  ret\n"
         ".endfunc\n";
}

/// Single-threaded variant (deterministic ordering, still syscall-heavy).
Program makeSingleThreaded(int64_t Iters) {
  std::ostringstream OS;
  OS << ".data g 0\n.array buf 64\n.func main\n  movi r1, " << Iters
     << "\nloop:\n  lda r2, @g\n  addi r2, r2, 1\n  sta r2, @g\n"
        "  sysrand r3\n  andi r3, r3, 63\n  lea r4, @buf\n"
        "  add r4, r4, r3\n  st r2, [r4]\n  subi r1, r1, 1\n"
        "  bgt r1, r0, loop\n  halt\n.endfunc\n";
  return assembleOrDie(OS.str());
}

//===----------------------------------------------------------------------===//
// Core recorder semantics
//===----------------------------------------------------------------------===//

// A dump taken before the first epoch rotation: the whole execution lives
// in one partial epoch and replays to the exact end state.
TEST(Flight, SinglePartialEpochDump) {
  Program P = makeSingleThreaded(40);
  RoundRobinScheduler Sched(1);
  DefaultSyscalls World(7);
  Machine M(P);
  M.setScheduler(&Sched);
  M.setSyscalls(&World);

  FlightOptions FO;
  FO.EpochInstrs = 1 << 20; // never rotates
  FlightRecorder Rec(M, FO);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);

  FlightStatus St = Rec.status();
  EXPECT_EQ(St.WindowStart, 0u);
  EXPECT_EQ(St.WindowEnd, M.globalCount());
  EXPECT_EQ(St.EpochsRetained, 1u);
  EXPECT_EQ(St.EpochsEvicted, 0u);
  EXPECT_FALSE(St.FailureSeen);

  Pinball Pb;
  std::string Error;
  ASSERT_TRUE(Rec.dump(Pb, Error)) << Error;
  EXPECT_EQ(Pb.instructionCount(), M.globalCount());
  EXPECT_EQ(Pb.Meta.at("flight"), "1");
  EXPECT_EQ(Pb.Meta.at("flight_window_start"), "0");

  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  Rep.run();
  EXPECT_TRUE(Rep.done());
  EXPECT_FALSE(Rep.divergence()) << Rep.divergence().Detail;
  EXPECT_TRUE(Rep.machine().snapshot() == M.snapshot());
}

// The acceptance test: force heavy eviction (delta checkpoints must be
// materialized into anchors as the window slides), then prove the dumped
// suffix window replays bit-identically — same registers, memory, output —
// to both the live machine and a conventional whole-program pinball of the
// same execution, divergence-free.
TEST(Flight, DumpAfterEvictionBitIdentical) {
  Program P = assembleOrDie(multiThreadedSource());
  const uint64_t Seed = 11;

  // Live run under the recorder, with epochs small enough that most of the
  // execution is evicted (and AnchorEvery > 1 so deltas are exercised).
  RandomScheduler Sched(Seed, 1, 4);
  DefaultSyscalls World(Seed);
  Machine Live(P);
  Live.setScheduler(&Sched);
  Live.setSyscalls(&World);
  FlightOptions FO;
  FO.EpochInstrs = 64;
  FO.MaxEpochs = 3;
  FO.AnchorEvery = 4;
  FlightRecorder Rec(Live, FO);
  ASSERT_EQ(Live.run(), Machine::StopReason::Halted);

  FlightStatus St = Rec.status();
  ASSERT_GT(St.EpochsEvicted, 0u) << "workload too short to force GC";
  EXPECT_LE(St.EpochsRetained, FO.MaxEpochs);
  EXPECT_EQ(St.WindowEnd, Live.globalCount());
  EXPECT_GT(St.WindowStart, 0u);

  Pinball FlightPb;
  std::string Error;
  ASSERT_TRUE(Rec.dump(FlightPb, Error)) << Error;
  EXPECT_EQ(FlightPb.instructionCount(), St.WindowEnd - St.WindowStart);

  // The same execution recorded conventionally (identical seeds).
  RandomScheduler Sched2(Seed, 1, 4);
  DefaultSyscalls World2(Seed);
  LogResult Log = Logger::logWholeProgram(P, Sched2, &World2);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted);
  ASSERT_GT(Log.Pb.instructionCount(), FlightPb.instructionCount());

  // Both pinballs replay divergence-free to the same endpoint.
  Replayer FlightRep(FlightPb);
  ASSERT_TRUE(FlightRep.valid()) << FlightRep.error();
  FlightRep.run();
  EXPECT_TRUE(FlightRep.done());
  EXPECT_FALSE(FlightRep.divergence()) << FlightRep.divergence().Detail;

  Replayer FullRep(Log.Pb);
  ASSERT_TRUE(FullRep.valid()) << FullRep.error();
  FullRep.run();
  EXPECT_TRUE(FullRep.done());
  EXPECT_FALSE(FullRep.divergence()) << FullRep.divergence().Detail;

  MachineState LiveEnd = Live.snapshot();
  EXPECT_TRUE(FlightRep.machine().snapshot() == LiveEnd);
  EXPECT_TRUE(FullRep.machine().snapshot() == FlightRep.machine().snapshot());
  EXPECT_EQ(FlightRep.machine().output(), Live.output());
}

// Dump taken *immediately* after the first eviction — the window's front
// has just been rewritten from a delta into a materialized anchor.
TEST(Flight, DumpImmediatelyAfterEviction) {
  Program P = assembleOrDie(multiThreadedSource());
  RandomScheduler Sched(5, 1, 4);
  DefaultSyscalls World(5);
  Machine M(P);
  M.setScheduler(&Sched);
  M.setSyscalls(&World);
  FlightOptions FO;
  FO.EpochInstrs = 32;
  FO.MaxEpochs = 2;
  FO.AnchorEvery = 3;
  FlightRecorder Rec(M, FO);

  // Single-step until the first epoch is garbage collected.
  while (Rec.status().EpochsEvicted == 0) {
    Machine::StopReason R = M.run(1);
    ASSERT_TRUE(R == Machine::StopReason::StepLimit ||
                R == Machine::StopReason::Halted);
    ASSERT_NE(R, Machine::StopReason::Halted)
        << "program ended before any eviction";
  }

  Pinball Pb;
  std::string Error;
  ASSERT_TRUE(Rec.dump(Pb, Error)) << Error;
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  Rep.run();
  EXPECT_TRUE(Rep.done());
  EXPECT_FALSE(Rep.divergence()) << Rep.divergence().Detail;
  EXPECT_TRUE(Rep.machine().snapshot() == M.snapshot());
}

// The memory budget is a hard bound: measure an unbounded run's peak, then
// re-run the identical execution under half that budget and check the
// recorder stayed under it (and still dumps a correct window).
TEST(Flight, MemoryBudgetBounds) {
  Program P = assembleOrDie(multiThreadedSource());
  const uint64_t Seed = 21;

  auto RunOnce = [&](size_t Budget, FlightStatus &St, Pinball *Pb,
                     MachineState *End) {
    RandomScheduler Sched(Seed, 1, 4);
    DefaultSyscalls World(Seed);
    Machine M(P);
    M.setScheduler(&Sched);
    M.setSyscalls(&World);
    FlightOptions FO;
    FO.EpochInstrs = 48;
    FO.MaxEpochs = 0; // only the budget evicts
    FO.AnchorEvery = 1;
    FO.MemoryBudgetBytes = Budget;
    FlightRecorder Rec(M, FO);
    ASSERT_EQ(M.run(), Machine::StopReason::Halted);
    St = Rec.status();
    if (Pb) {
      std::string Error;
      ASSERT_TRUE(Rec.dump(*Pb, Error)) << Error;
    }
    if (End)
      *End = M.snapshot();
  };

  FlightStatus Unbounded;
  RunOnce(0, Unbounded, nullptr, nullptr);
  ASSERT_EQ(Unbounded.EpochsEvicted, 0u);
  ASSERT_GT(Unbounded.PeakBytes, 0u);

  const size_t Budget = Unbounded.PeakBytes / 2;
  FlightStatus Bounded;
  Pinball Pb;
  MachineState End;
  RunOnce(Budget, Bounded, &Pb, &End);
  EXPECT_GT(Bounded.EpochsEvicted, 0u);
  EXPECT_LE(Bounded.PeakBytes, Budget);
  EXPECT_LE(Bounded.RingBytes + Bounded.CheckpointBytes, Budget);

  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  Rep.run();
  EXPECT_TRUE(Rep.done());
  EXPECT_FALSE(Rep.divergence()) << Rep.divergence().Detail;
  EXPECT_TRUE(Rep.machine().snapshot() == End);
}

// Rings written from several threads' machines at once (each thread owns
// its machine + recorder): the metrics handles are the only shared state,
// and they must be TSan-clean.
TEST(Flight, ConcurrentRings) {
  Program P = assembleOrDie(multiThreadedSource());
  std::vector<std::thread> Threads;
  std::vector<int> Ok(4, 0);
  for (int I = 0; I != 4; ++I)
    Threads.emplace_back([&, I] {
      RandomScheduler Sched(100 + I, 1, 4);
      DefaultSyscalls World(100 + I);
      Machine M(P);
      M.setScheduler(&Sched);
      M.setSyscalls(&World);
      FlightOptions FO;
      FO.EpochInstrs = 64;
      FO.MaxEpochs = 3;
      FlightRecorder Rec(M, FO);
      if (M.run() != Machine::StopReason::Halted)
        return;
      Pinball Pb;
      std::string Error;
      if (!Rec.dump(Pb, Error))
        return;
      Replayer Rep(Pb);
      if (!Rep.valid())
        return;
      Rep.run();
      if (Rep.done() && !Rep.divergence() &&
          Rep.machine().snapshot() == M.snapshot())
        Ok[I] = 1;
    });
  for (auto &T : Threads)
    T.join();
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Ok[I], 1) << "worker " << I;
}

//===----------------------------------------------------------------------===//
// Debugger surface
//===----------------------------------------------------------------------===//

// attach → dump → attach → dump: the recorder is recreated cleanly and the
// saved pinballs load and replay.
TEST(Flight, AttachDumpAttachReuse) {
  TempDir Scratch("reuse");
  std::ostringstream OS;
  DebugSession S(OS);
  ASSERT_TRUE(S.loadProgramText(multiThreadedSource()));

  std::string D1 = (Scratch.Dir / "one").string();
  std::string D2 = (Scratch.Dir / "two").string();
  EXPECT_EQ(S.executeCommand("record attach 5 64 4").Status,
            CommandStatus::Ok);
  EXPECT_EQ(S.executeCommand("record dump " + D1).Status, CommandStatus::Ok);
  EXPECT_EQ(S.executeCommand("record attach 6 64 4").Status,
            CommandStatus::Ok);
  EXPECT_EQ(S.executeCommand("record dump " + D2).Status, CommandStatus::Ok);

  std::string Text = OS.str();
  EXPECT_NE(Text.find("recording in flight mode"), std::string::npos) << Text;
  EXPECT_NE(Text.find("flight dump:"), std::string::npos) << Text;

  for (const std::string &D : {D1, D2}) {
    ASSERT_TRUE(fs::exists(fs::path(D) / "manifest.txt")) << D;
    Pinball Pb;
    std::string Error;
    ASSERT_TRUE(Pb.load(D, Error)) << Error;
    Replayer Rep(Pb);
    ASSERT_TRUE(Rep.valid()) << Rep.error();
    Rep.run();
    EXPECT_TRUE(Rep.done());
    EXPECT_FALSE(Rep.divergence()) << Rep.divergence().Detail;
  }
}

// Regression: 'slice replay' tears down the live machine, so a recorder
// attached to it must be detached first — otherwise a later 'record dump'
// (or the session destructor) touches the destroyed machine. Sequence from
// the report: record attach → record dump → slice fail → slice pinball →
// slice replay → record dump.
TEST(Flight, SliceReplayDetachesRecorder) {
  workloads::Figure5Lines Lines;
  Program P = workloads::makeFigure5(&Lines);
  std::ostringstream OS;
  DebugSession S(OS);
  ASSERT_TRUE(S.loadProgramText(P.SourceText));

  ASSERT_EQ(S.executeCommand("record attach").Status, CommandStatus::Ok);
  ASSERT_NE(OS.str().find("assertion FAILED"), std::string::npos) << OS.str();
  ASSERT_EQ(S.executeCommand("record dump").Status, CommandStatus::Ok);
  ASSERT_EQ(S.executeCommand("slice fail").Status, CommandStatus::Ok);
  ASSERT_EQ(S.executeCommand("slice pinball").Status, CommandStatus::Ok);
  ASSERT_EQ(S.executeCommand("slice replay").Status, CommandStatus::Ok);

  // The recorder rode on the torn-down live machine; it must be gone now
  // rather than dangling (use-after-free under sanitizers before the fix).
  size_t Before = OS.str().size();
  EXPECT_EQ(S.executeCommand("record status").Status, CommandStatus::Error);
  EXPECT_EQ(S.executeCommand("record dump").Status, CommandStatus::Error);
  EXPECT_NE(OS.str().find("no flight recorder", Before), std::string::npos)
      << OS.str().substr(Before);

  // The slice replay itself still works after the detach.
  EXPECT_EQ(S.executeCommand("slice step").Status, CommandStatus::Ok);
}

// Live attach mid-run: break, run to the breakpoint, attach there, continue
// into the failure, dump — the pinball replays straight to the assert.
TEST(Flight, LiveAttachMidRun) {
  workloads::Figure5Lines Lines;
  Program P = workloads::makeFigure5(&Lines);
  std::ostringstream OS;
  DebugSession S(OS);
  ASSERT_TRUE(S.loadProgramText(P.SourceText));

  ASSERT_EQ(S.executeCommand("break main+3").Status, CommandStatus::Ok);
  ASSERT_EQ(S.executeCommand("run 1").Status, CommandStatus::Ok);
  ASSERT_NE(OS.str().find("breakpoint"), std::string::npos) << OS.str();

  CommandResult Attach = S.executeCommand("record attach");
  EXPECT_EQ(Attach.Status, CommandStatus::Ok);
  EXPECT_NE(OS.str().find("flight recorder attached at instruction"),
            std::string::npos)
      << OS.str();

  // replay-position reports the live recorder while nothing is replaying.
  S.executeCommand("replay-position");
  EXPECT_NE(OS.str().find("flight recorder: window"), std::string::npos)
      << OS.str();

  ASSERT_EQ(S.executeCommand("continue").Status, CommandStatus::Ok);
  ASSERT_NE(OS.str().find("assertion FAILED"), std::string::npos) << OS.str();

  EXPECT_EQ(S.executeCommand("record status").Status, CommandStatus::Ok);
  EXPECT_NE(OS.str().find("failure captured: yes"), std::string::npos)
      << OS.str();

  EXPECT_EQ(S.executeCommand("record dump").Status, CommandStatus::Ok);
  // Drop the breakpoint: the dumped window starts right at it, and replay
  // would otherwise stop there instead of running into the assert.
  EXPECT_EQ(S.executeCommand("delete 1").Status, CommandStatus::Ok);
  size_t Before = OS.str().size();
  EXPECT_EQ(S.executeCommand("replay").Status, CommandStatus::Ok);
  std::string ReplayOut = OS.str().substr(Before);
  EXPECT_NE(ReplayOut.find("assertion FAILED"), std::string::npos)
      << ReplayOut;
}

//===----------------------------------------------------------------------===//
// Server surface
//===----------------------------------------------------------------------===//

TEST(Flight, ServerVerbs) {
  TempDir Scratch("server");
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    std::string Error;
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid, multiThreadedSource());
    ASSERT_TRUE(R.ok()) << R.errorText();

    R = Client.recordAttach(Sid, /*Seed=*/3);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("recording in flight mode"), std::string::npos)
        << R.value();

    R = Client.recordStatus(Sid);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("flight recorder: window"), std::string::npos)
        << R.value();

    std::string Dir = (Scratch.Dir / "dump").string();
    R = Client.recordDump(Sid, Dir);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("flight dump:"), std::string::npos) << R.value();
    EXPECT_TRUE(fs::exists(fs::path(Dir) / "manifest.txt"));

    // The dumped pinball is a normal pinball: load + replay on our side.
    Pinball Pb;
    ASSERT_TRUE(Pb.load(Dir, Error)) << Error;
    Replayer Rep(Pb);
    ASSERT_TRUE(Rep.valid()) << Rep.error();
    Rep.run();
    EXPECT_TRUE(Rep.done());
    EXPECT_FALSE(Rep.divergence()) << Rep.divergence().Detail;

    // stats reports the flight.* block and the per-verb counters.
    R = Client.stats();
    ASSERT_TRUE(R.ok()) << R.errorText();
    const std::string &Out = R.value();
    EXPECT_NE(Out.find("flight.epochs_retained"), std::string::npos) << Out;
    EXPECT_NE(Out.find("flight.dumps"), std::string::npos) << Out;
    EXPECT_NE(Out.find("verb.rattach.count 1"), std::string::npos) << Out;
    EXPECT_NE(Out.find("verb.rstatus.count 1"), std::string::npos) << Out;
    EXPECT_NE(Out.find("verb.rdump.count 1"), std::string::npos) << Out;
  }
  ClientEnd->close();
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// Maple auto-dump
//===----------------------------------------------------------------------===//

// Classic mode: the exposing pinball is auto-saved the instant the bug is
// exposed, and the saved copy replays to the failure.
TEST(Flight, MapleAutoDumpClassic) {
  TempDir Scratch("maple");
  Program P = workloads::makeFigure5();
  MapleOptions Opts;
  Opts.ProfileRuns = 12;
  Opts.Seed = 1;
  Opts.AutoDumpDir = (Scratch.Dir / "exposed").string();
  MapleResult Result = mapleExposeAndRecord(P, Opts);
  ASSERT_TRUE(Result.Exposed) << Result.AutoDumpError;
  ASSERT_EQ(Result.AutoDumpPath, Opts.AutoDumpDir) << Result.AutoDumpError;

  Pinball Pb;
  std::string Error;
  ASSERT_TRUE(Pb.load(Result.AutoDumpPath, Error)) << Error;
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
}

// Flight mode: profiling runs under the recorder, and the exposure is
// dumped in situ — no re-run — yet still replays to the assert.
TEST(Flight, MapleAutoDumpInFlight) {
  TempDir Scratch("maplef");
  Program P = workloads::makeFigure5();
  MapleOptions Opts;
  Opts.ProfileRuns = 12;
  Opts.Seed = 1;
  Opts.FlightEpochInstrs = 16;
  Opts.FlightMaxEpochs = 4;
  Opts.AutoDumpDir = (Scratch.Dir / "exposed").string();
  MapleResult Result = mapleExposeAndRecord(P, Opts);
  ASSERT_TRUE(Result.Exposed) << Result.AutoDumpError;
  EXPECT_TRUE(Result.ExposedDuringProfiling);
  EXPECT_EQ(Result.Pb.Meta.at("flight"), "1");
  EXPECT_EQ(Result.AutoDumpPath, Opts.AutoDumpDir) << Result.AutoDumpError;

  Replayer Rep(Result.Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
  EXPECT_FALSE(divergenceIsFatal(Rep.divergence().Kind))
      << Rep.divergence().Detail;
}

} // namespace
