//===- tests/test_control_dep.cpp - CFG & control-dependence tests -----------===//

#include "analysis/cfg.h"
#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/control_dep.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

/// Records the full program run into traces (whole-program "region").
TraceSet recordTraces(const Program &P, std::unique_ptr<Program> &Keep,
                      std::vector<int64_t> Input = {}) {
  RoundRobinScheduler Sched(1);
  DefaultSyscalls World(7);
  World.setInput(std::move(Input));
  LogResult Log = Logger::logWholeProgram(P, Sched, &World);
  Replayer Rep(Log.Pb);
  EXPECT_TRUE(Rep.valid());
  Keep = std::make_unique<Program>(Rep.program());
  TraceSet Traces(*Keep);
  Rep.machine().addObserver(&Traces);
  Rep.run();
  return Traces;
}

/// Finds the local index of the Nth entry at \p Pc in thread \p Tid.
int findEntry(const TraceSet &TS, uint32_t Tid, uint64_t Pc, unsigned Nth = 1) {
  const auto &Entries = TS.threads().at(Tid).Entries;
  unsigned Seen = 0;
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Pc == Pc && ++Seen == Nth)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(Cfg, BranchSuccessors) {
  Program P = assembleOrDie(".func main\n"
                            "  beq r1, r2, done\n" // 0
                            "  nop\n"              // 1
                            "done:\n"
                            "  halt\n"             // 2
                            ".endfunc\n");
  CfgSet Cfgs(P);
  Cfg &C = Cfgs.cfgAt(0);
  EXPECT_EQ(C.succCountAt(0), 2u); // target + fallthrough
  EXPECT_EQ(C.succCountAt(1), 1u);
  EXPECT_EQ(C.succCountAt(2), 0u); // halt: exit
}

TEST(Cfg, CallFallsThrough) {
  Program P = assembleOrDie(".func main\n  call f\n  halt\n.endfunc\n"
                            ".func f\n  ret\n.endfunc\n");
  CfgSet Cfgs(P);
  EXPECT_EQ(Cfgs.cfgAt(0).succCountAt(0), 1u); // call -> next
  EXPECT_EQ(Cfgs.cfgAt(2).succCountAt(2), 0u); // ret -> exit
}

TEST(Cfg, IndirectJumpStartsUnrefined) {
  Program P = assembleOrDie(".func main\n"
                            "  lea r1, t\n"
                            "  ijmp r1\n" // 1
                            "t:\n  halt\n"
                            ".endfunc\n");
  CfgSet Cfgs(P);
  Cfg &C = Cfgs.cfgAt(1);
  EXPECT_EQ(C.succCountAt(1), 0u);
  EXPECT_TRUE(C.addIndirectEdge(1, 2));
  EXPECT_EQ(C.succCountAt(1), 1u);
  EXPECT_FALSE(C.addIndirectEdge(1, 2)) << "duplicate edge must be a no-op";
}

TEST(Cfg, RefinementRecomputesPostDoms) {
  Program P = assembleOrDie(".func main\n"
                            "  lea r1, a\n"  // 0
                            "  ijmp r1\n"    // 1
                            "a:\n  nop\n"    // 2
                            "b:\n  halt\n"   // 3
                            ".endfunc\n");
  CfgSet Cfgs(P);
  Cfg &C = Cfgs.cfgAt(1);
  EXPECT_EQ(C.ipdomPc(1), Cfg::NoPc); // unrefined ijmp exits
  unsigned Before = C.recomputeCount();
  C.addIndirectEdge(1, 2);
  C.addIndirectEdge(1, 3);
  EXPECT_EQ(C.ipdomPc(1), 3u); // both paths rejoin at 'b'
  EXPECT_GT(C.recomputeCount(), Before);
}

TEST(Cfg, IpdomOfStraightLine) {
  Program P = assembleOrDie(".func main\n  nop\n  nop\n  halt\n.endfunc\n");
  CfgSet Cfgs(P);
  EXPECT_EQ(Cfgs.ipdomPc(0), 1u);
  EXPECT_EQ(Cfgs.ipdomPc(1), 2u);
  EXPECT_EQ(Cfgs.ipdomPc(2), Cfg::NoPc);
}

//===----------------------------------------------------------------------===//
// Dynamic control dependences
//===----------------------------------------------------------------------===//

TEST(ControlDep, IfThenElse) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"       // 0
                            "  beq r1, r0, els\n"  // 1 (not taken)
                            "  movi r2, 10\n"      // 2: dep on 1
                            "  jmp join\n"         // 3: dep on 1
                            "els:\n  movi r2, 20\n"// 4
                            "join:\n  syswrite r2\n" // 5: NOT dep on 1
                            "  halt\n"             // 6
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);

  const auto &E = TS.threads()[0].Entries;
  int Branch = findEntry(TS, 0, 1);
  EXPECT_EQ(E[findEntry(TS, 0, 0)].CtrlDep, -1);
  EXPECT_EQ(E[findEntry(TS, 0, 2)].CtrlDep, Branch);
  EXPECT_EQ(E[findEntry(TS, 0, 3)].CtrlDep, Branch);
  EXPECT_EQ(E[findEntry(TS, 0, 5)].CtrlDep, -1) << "join point is free";
  EXPECT_EQ(E[findEntry(TS, 0, 6)].CtrlDep, -1);
}

TEST(ControlDep, LoopIterationsDependOnBackEdgeBranch) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 3\n"          // 0
                            "loop:\n"
                            "  subi r1, r1, 1\n"      // 1
                            "  bgt r1, r0, loop\n"    // 2
                            "  halt\n"                // 3
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);

  const auto &E = TS.threads()[0].Entries;
  // Trace: movi(0), subi(1), bgt(2), subi(1), bgt(2), subi(1), bgt(2), halt.
  // The 2nd and 3rd subi depend on the previous bgt; the 1st does not.
  EXPECT_EQ(E[1].CtrlDep, -1);
  EXPECT_EQ(E[3].CtrlDep, 2);
  EXPECT_EQ(E[5].CtrlDep, 4);
  // The loop exit (halt) is the branch's post-dominator: not dependent.
  EXPECT_EQ(E[7].CtrlDep, -1);
}

TEST(ControlDep, NestedBranches) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"        // 0
                            "  beq r1, r0, out\n"   // 1
                            "  movi r2, 1\n"        // 2 dep 1
                            "  beq r2, r0, out\n"   // 3 dep 1
                            "  movi r3, 5\n"        // 4 dep 3
                            "out:\n  halt\n"        // 5
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);
  const auto &E = TS.threads()[0].Entries;
  EXPECT_EQ(E[2].CtrlDep, 1);
  EXPECT_EQ(E[3].CtrlDep, 1);
  EXPECT_EQ(E[4].CtrlDep, 3);
  EXPECT_EQ(E[5].CtrlDep, -1);
}

TEST(ControlDep, CalleeDependsOnCallSite) {
  // Paper Figure 8 shape: everything Q executes is control-dependent on the
  // call, transitively on the predicate guarding it.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"        // 0
                            "  beq r1, r0, skip\n"  // 1
                            "  call q\n"            // 2 dep 1
                            "skip:\n  halt\n"       // 3
                            ".endfunc\n"
                            ".func q\n"
                            "  movi r2, 7\n"        // 4
                            "  ret\n"               // 5
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);
  const auto &E = TS.threads()[0].Entries;
  int CallIdx = findEntry(TS, 0, 2);
  int BranchIdx = findEntry(TS, 0, 1);
  EXPECT_EQ(E[CallIdx].CtrlDep, BranchIdx);
  EXPECT_EQ(E[findEntry(TS, 0, 4)].CtrlDep, CallIdx);
  EXPECT_EQ(E[findEntry(TS, 0, 5)].CtrlDep, CallIdx);
  // After the return, main is free again.
  EXPECT_EQ(E[findEntry(TS, 0, 3)].CtrlDep, -1);
}

TEST(ControlDep, RecursionKeepsFramesSeparate) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 3\n"
                            "  call f\n"
                            "  halt\n.endfunc\n"
                            ".func f\n"             // 3..7
                            "  ble r1, r0, done\n"  // 3
                            "  subi r1, r1, 1\n"    // 4
                            "  call f\n"            // 5
                            "done:\n"
                            "  ret\n"               // 6
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);
  const auto &E = TS.threads()[0].Entries;
  // Each recursive call's body depends on its own frame's branch/call, and
  // every ret eventually unwinds without corrupting outer frames: the halt
  // must be frame-0 free.
  int HaltIdx = findEntry(TS, 0, 2);
  ASSERT_GE(HaltIdx, 0);
  EXPECT_EQ(E[HaltIdx].CtrlDep, -1);
  // The first ble (frame 1) depends on the call at trace idx 1.
  EXPECT_EQ(E[2].CtrlDep, 1);
}

/// Paper Figure 7: without CFG refinement the case body of a jump-table
/// switch has no control dependence on the indirect jump (missing edges);
/// with refinement it does.
TEST(ControlDep, IndirectJumpRefinementRestoresDependence) {
  // Two loop iterations take different cases so refinement observes both
  // jump targets (one observed target alone does not make the indirect
  // jump a branch in either the unrefined or the refined CFG).
  Program P = assembleOrDie(".array jtab 2\n"
                            ".func main\n"
                            "  lea r1, case0\n  sta r1, @jtab\n"   // 0,1
                            "  lea r1, case1\n  sta r1, @jtab+1\n" // 2,3
                            "  movi r9, 2\n"                       // 4
                            "loop:\n"
                            "  sysread r2\n"                       // 5
                            "  lea r3, @jtab\n"                    // 6
                            "  add r3, r3, r2\n"                   // 7
                            "  ld r4, [r3]\n"                      // 8
                            "  ijmp r4\n"                          // 9
                            "case0:\n  movi r5, 100\n  jmp out\n"  // 10,11
                            "case1:\n  movi r5, 101\n"             // 12
                            "out:\n  syswrite r5\n"                // 13
                            "  subi r9, r9, 1\n"                   // 14
                            "  bgt r9, r0, loop\n"                 // 15
                            "  halt\n"                             // 16
                            ".endfunc\n");
  auto Run = [&](bool Refine) {
    std::unique_ptr<Program> Keep;
    TraceSet TS = recordTraces(P, Keep, {0, 1}); // case0 then case1
    CfgSet Cfgs(*Keep);
    computeAllControlDeps(TS, Cfgs, Refine);
    const auto &E = TS.threads()[0].Entries;
    int CaseBody = findEntry(TS, 0, 10); // movi r5, 100 (first iteration)
    int Switch = findEntry(TS, 0, 9);
    EXPECT_GE(CaseBody, 0);
    return std::make_pair(E[CaseBody].CtrlDep, Switch);
  };
  auto [UnrefinedDep, SwitchU] = Run(false);
  (void)SwitchU;
  EXPECT_EQ(UnrefinedDep, -1) << "unrefined CFG misses the dependence";
  auto [RefinedDep, Switch] = Run(true);
  EXPECT_EQ(RefinedDep, Switch) << "refined CFG restores 6_1 -> 4_1";
}

TEST(ControlDep, IJmpWithSingleObservedTargetIsNotABranch) {
  Program P = assembleOrDie(".func main\n"
                            "  lea r1, t\n" // 0
                            "  ijmp r1\n"   // 1
                            "t:\n  nop\n"   // 2
                            "  halt\n"      // 3
                            ".endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  CfgSet Cfgs(*Keep);
  computeAllControlDeps(TS, Cfgs);
  const auto &E = TS.threads()[0].Entries;
  EXPECT_EQ(E[findEntry(TS, 0, 2)].CtrlDep, -1);
}

TEST(ControlDep, TraceSetCollectsIndirectTargets) {
  Program P = assembleOrDie(".func main\n"
                            "  lea r1, t\n"
                            "  ijmp r1\n"
                            "t:\n  lea r2, &f\n"
                            "  icall r2\n"
                            "  halt\n.endfunc\n"
                            ".func f\n  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  EXPECT_EQ(TS.indirectTargets().count({1, 2}), 1u);
  EXPECT_EQ(TS.indirectTargets().count({3, P.entryOf("f")}), 1u);
}

} // namespace
