//===- tests/test_forward.cpp - Forward dynamic slicing tests -----------------===//

#include "debugger/session.h"
#include "replay/logger.h"
#include "slicing/forward.h"
#include "slicing/slicer.h"
#include "test_util.h"
#include "workloads/figure5.h"
#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

Pinball recordWhole(const Program &P, uint64_t Seed = 1) {
  RandomScheduler Sched(Seed, 1, 3);
  return Logger::logWholeProgram(P, Sched).Pb;
}

/// Prepared session without save/restore pruning (the duality property
/// requires forward and backward to use identical dependence edges).
std::unique_ptr<SliceSession> prepared(const Pinball &Pb) {
  SliceSessionOptions Opts;
  Opts.PruneSaveRestore = false;
  auto S = std::make_unique<SliceSession>(Pb, Opts);
  std::string Error;
  EXPECT_TRUE(S->prepare(Error)) << Error;
  return S;
}

TEST(ForwardSlice, DataChainPropagates) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 5\n"   // pos 0: start
                            "  addi r2, r1, 1\n" // uses r1 -> in
                            "  sta r2, @g\n"     // uses r2 -> in
                            "  lda r3, @g\n"     // uses g -> in
                            "  movi r4, 9\n"     // independent -> out
                            "  syswrite r3\n"    // uses r3 -> in
                            "  halt\n.endfunc\n");
  auto S = prepared(recordWhole(P));
  Slice Fwd = S->computeForwardSliceAt(0);
  EXPECT_EQ(Fwd.dynamicSize(), 5u);
  EXPECT_TRUE(Fwd.contains(0));
  EXPECT_TRUE(Fwd.contains(1));
  EXPECT_TRUE(Fwd.contains(2));
  EXPECT_TRUE(Fwd.contains(3));
  EXPECT_FALSE(Fwd.contains(4));
  EXPECT_TRUE(Fwd.contains(5));
}

TEST(ForwardSlice, RedefinitionKillsTaint) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 5\n"  // pos 0: start
                            "  movi r1, 7\n"  // pos 1: kills r1's taint
                            "  addi r2, r1, 1\n" // uses the NEW r1 -> out
                            "  syswrite r2\n"    // -> out
                            "  halt\n.endfunc\n");
  auto S = prepared(recordWhole(P));
  Slice Fwd = S->computeForwardSliceAt(0);
  EXPECT_EQ(Fwd.dynamicSize(), 1u) << "only the start itself";
}

TEST(ForwardSlice, ControlDependentsJoin) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"       // pos 0: start
                            "  beq r1, r0, skip\n" // pos 1: uses r1 -> in
                            "  movi r2, 7\n"       // pos 2: CD on branch -> in
                            "skip:\n"
                            "  halt\n"             // join: not CD -> out
                            ".endfunc\n");
  auto S = prepared(recordWhole(P));
  Slice Fwd = S->computeForwardSliceAt(0);
  EXPECT_TRUE(Fwd.contains(1));
  EXPECT_TRUE(Fwd.contains(2));
  EXPECT_EQ(Fwd.dynamicSize(), 3u);
  // The control edge is recorded for navigation.
  bool SawControl = false;
  for (const DepEdge &E : Fwd.Edges)
    if (E.IsControl)
      SawControl = true;
  EXPECT_TRUE(SawControl);
}

TEST(ForwardSlice, CrossThreadPropagation) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  RoundRobinScheduler Sched(3);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  auto S = prepared(Log.Pb);

  // Forward slice of T1's racy write to x: must reach T2's k update and
  // the failing assert.
  const GlobalTrace &GT = S->globalTrace();
  uint32_t WritePos = ~0U;
  for (uint32_t Pos = 0; Pos != GT.size(); ++Pos)
    if (GT.entry(Pos).Line == Lines.RacyWriteLine)
      WritePos = Pos;
  ASSERT_NE(WritePos, ~0U);
  Slice Fwd = S->computeForwardSliceAt(WritePos);
  auto FwdLines = Fwd.sourceLines(GT);
  EXPECT_TRUE(FwdLines.count(Lines.KUpdateLine))
      << "the poisoned k update is influenced by the racy write";
  EXPECT_TRUE(FwdLines.count(Lines.AssertLine));
}

/// Duality: x is in the backward slice of y iff y is in the forward slice
/// of x (both sides computed over identical dependence edges).
class DualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualityTest, BackwardAndForwardAgree) {
  Program P = generateRandomProgram(GetParam());
  auto S = prepared(recordWhole(P, GetParam() + 3));
  const GlobalTrace &GT = S->globalTrace();
  if (GT.size() < 10)
    GTEST_SKIP() << "trivial trace";

  auto Criteria = S->lastLoadCriteria(1);
  if (Criteria.empty())
    GTEST_SKIP() << "no loads";
  auto Back = S->computeSlice(Criteria[0]);
  ASSERT_TRUE(Back.has_value());
  uint32_t Y = Back->CriterionPos;

  // Forward direction: for a sample of backward-slice members x, y must be
  // in fwd(x).
  size_t Checked = 0;
  for (uint32_t X : Back->Positions) {
    if (X == Y || Checked >= 6)
      break;
    ++Checked;
    Slice Fwd = S->computeForwardSliceAt(X);
    EXPECT_TRUE(Fwd.contains(Y))
        << "pos " << X << " is in bwd(" << Y << ") but " << Y
        << " not in fwd(" << X << ")";
  }
  // Converse: sample non-members; y must not be in their forward slices.
  size_t Misses = 0;
  for (uint32_t X = 0; X < Y && Misses < 6; ++X) {
    if (Back->contains(X))
      continue;
    ++Misses;
    Slice Fwd = S->computeForwardSliceAt(X);
    EXPECT_FALSE(Fwd.contains(Y))
        << "pos " << X << " not in bwd(" << Y << ") but " << Y
        << " in fwd(" << X << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, DualityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(ForwardSlice, DebuggerCommand) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  std::ostringstream Out;
  DebugSession S(Out);
  S.loadProgramText(P.SourceText);
  S.execute("record failure");
  Out.str("");
  // Forward slice of the racy write: main thread, its pc.
  uint64_t RacyPc = ~0ULL;
  for (uint64_t Pc = 0; Pc != P.size(); ++Pc)
    if (P.inst(Pc).Line == Lines.RacyWriteLine)
      RacyPc = Pc;
  S.execute("slice forward 0 " + std::to_string(RacyPc));
  std::string Text = Out.str();
  EXPECT_NE(Text.find("forward slice:"), std::string::npos) << Text;
  EXPECT_NE(Text.find(" " + std::to_string(Lines.AssertLine)),
            std::string::npos)
      << Text;
}

} // namespace
