//===- tests/test_slicer.cpp - End-to-end dynamic slicing tests --------------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

Pinball recordWhole(const Program &P, Scheduler &&Sched) {
  LogResult Log = Logger::logWholeProgram(P, Sched, nullptr);
  return Log.Pb;
}

Pinball recordToFailure(const Program &P, Scheduler &&Sched) {
  LogResult Log = Logger::logWholeProgram(P, Sched, nullptr);
  EXPECT_TRUE(Log.FailureCaptured);
  return Log.Pb;
}

/// Source lines present in a slice.
std::set<uint32_t> sliceLines(const SliceSession &S, const Slice &Sl) {
  return Sl.sourceLines(S.globalTrace());
}

//===----------------------------------------------------------------------===//
// Basic data-dependence slicing
//===----------------------------------------------------------------------===//

TEST(Slicer, StraightLineDataChain) {
  // r3 = (r1 + r2); unrelated r9 computations must not appear.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 2\n"  // line 2: in slice
                            "  movi r2, 3\n"  // line 3: in slice
                            "  movi r9, 99\n" // line 4: NOT in slice
                            "  addi r9, r9, 1\n" // line 5: NOT in slice
                            "  add r3, r1, r2\n" // line 6: in slice
                            "  syswrite r3\n" // line 7: criterion
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;

  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5; // syswrite
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl.has_value());
  auto Lines = sliceLines(S, *Sl);
  EXPECT_TRUE(Lines.count(2));
  EXPECT_TRUE(Lines.count(3));
  EXPECT_TRUE(Lines.count(6));
  EXPECT_TRUE(Lines.count(7));
  EXPECT_FALSE(Lines.count(4));
  EXPECT_FALSE(Lines.count(5));
  EXPECT_EQ(Sl->dynamicSize(), 4u);
}

TEST(Slicer, MemoryDataDependences) {
  Program P = assembleOrDie(".data g 0\n.data h 0\n"
                            ".func main\n"
                            "  movi r1, 5\n"   // line 4
                            "  sta r1, @g\n"   // line 5
                            "  movi r2, 6\n"   // line 6 (dead for slice)
                            "  sta r2, @h\n"   // line 7 (dead for slice)
                            "  lda r3, @g\n"   // line 8
                            "  syswrite r3\n"  // line 9: criterion
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5;
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = sliceLines(S, *Sl);
  EXPECT_TRUE(Lines.count(4));
  EXPECT_TRUE(Lines.count(5));
  EXPECT_TRUE(Lines.count(8));
  EXPECT_FALSE(Lines.count(6));
  EXPECT_FALSE(Lines.count(7));
}

TEST(Slicer, LastWriterWins) {
  // Two stores to g; only the later one is in the slice.
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1\n"  // line 3: feeds dead store
                            "  sta r1, @g\n"  // line 4: dead store
                            "  movi r2, 2\n"  // line 5
                            "  sta r2, @g\n"  // line 6: last writer
                            "  lda r3, @g\n"  // line 7
                            "  syswrite r3\n" // line 8
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5;
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = sliceLines(S, *Sl);
  EXPECT_FALSE(Lines.count(3));
  EXPECT_FALSE(Lines.count(4));
  EXPECT_TRUE(Lines.count(5));
  EXPECT_TRUE(Lines.count(6));
}

TEST(Slicer, ControlDependencePullsInBranchAndItsOperands) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 1\n"        // line 2
                            "  beq r1, r0, els\n"   // line 3
                            "  movi r2, 10\n"       // line 4 (taken path)
                            "  jmp join\n"
                            "els:\n"
                            "  movi r2, 20\n"
                            "join:\n"
                            "  syswrite r2\n"       // line 8: criterion
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5; // syswrite
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = sliceLines(S, *Sl);
  // r2's def (line 4) is control-dependent on the branch (line 3), whose
  // operand r1 was defined at line 2: all in the slice.
  EXPECT_TRUE(Lines.count(2));
  EXPECT_TRUE(Lines.count(3));
  EXPECT_TRUE(Lines.count(4));
}

TEST(Slicer, SpecificLocationCriterion) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 5\n"  // line 3: feeds g
                            "  sta r1, @g\n"  // line 4
                            "  movi r2, 9\n"  // line 5: feeds r2 only
                            "  syswrite r2\n" // line 6: criterion stmt
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  uint64_t G = S.program().findGlobal("g")->Addr;

  // Slice for *memory location g* at the syswrite: picks up lines 3-4 and
  // not r2's def.
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 3; // syswrite
  C.Locs = {memLoc(G)};
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = sliceLines(S, *Sl);
  EXPECT_TRUE(Lines.count(3));
  EXPECT_TRUE(Lines.count(4));
  EXPECT_FALSE(Lines.count(5));
}

TEST(Slicer, CriterionInstanceSelectsIteration) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 3\n"
                            "loop:\n"
                            "  lda r2, @g\n"
                            "  add r2, r2, r1\n"
                            "  sta r2, @g\n"    // pc 3
                            "  subi r1, r1, 1\n"
                            "  bgt r1, r0, loop\n"
                            "  halt\n.endfunc\n");
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)));
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 3; // sta
  C.Instance = 1;
  auto First = S.computeSlice(C);
  C.Instance = 3;
  auto Third = S.computeSlice(C);
  ASSERT_TRUE(First && Third);
  // The third iteration's store transitively depends on more work.
  EXPECT_GT(Third->dynamicSize(), First->dynamicSize());
  C.Instance = 4;
  EXPECT_FALSE(S.computeSlice(C).has_value()) << "only 3 iterations exist";
}

//===----------------------------------------------------------------------===//
// Multi-threaded slicing (paper §3, Figure 5)
//===----------------------------------------------------------------------===//

/// The paper's Figure 5 scenario: T2 executes what the programmer assumes
/// is an atomic region (lines 10-13 analog); T1 races and modifies x in the
/// middle; T2's assert on k fails. Flag-based handshakes make the racy
/// interleaving deterministic so the test is stable under any scheduler.
struct Figure5 {
  Program P;
  uint32_t AssertLine, RacyWriteLine, YDefLine, KInitLine, KUpdateLine,
      UnrelatedLine;

  Figure5() {
    std::string Src =
        ".data x 1\n.data y 0\n.data f1 0\n.data f2 0\n.data junk 0\n"
        ".func main\n"              // T1 after spawn
        "  spawn r9, t2, r0\n"      // line 7
        "w1:\n"
        "  lda r1, @f1\n"           // line 9: wait for T2's first half
        "  beq r1, r0, w1\n"        // line 10
        "  movi r2, 2\n"            // line 11: y = 2        (YDef)
        "  sta r2, @y\n"            // line 12
        "  lda r3, @y\n"            // line 13
        "  muli r3, r3, 3\n"        // line 14: x = y * 3    (racy write)
        "  sta r3, @x\n"            // line 15  <- RACY WRITE to x
        "  movi r4, 77\n"           // line 16: unrelated
        "  sta r4, @junk\n"         // line 17: unrelated
        "  movi r5, 1\n"            // line 18
        "  sta r5, @f2\n"           // line 19: release T2's second half
        "  join r9\n"               // line 20
        "  halt\n"                  // line 21
        ".endfunc\n"
        ".func t2\n"
        "  movi r1, 1\n"            // line 24: k = 1        (KInit)
        "  movi r2, 1\n"            // line 25
        "  sta r2, @f1\n"           // line 26: release T1
        "w2:\n"
        "  lda r3, @f2\n"           // line 28: wait for T1's write
        "  beq r3, r0, w2\n"        // line 29
        "  lda r4, @x\n"            // line 30: read x (sees T1's write!)
        "  add r1, r1, r4\n"        // line 31: k = k + x    (KUpdate)
        "  movi r5, 2\n"            // line 32: expected = 1 + initial x
        "  sub r6, r1, r5\n"        // line 33
        "  movi r7, 1\n"            // line 34
        "  beq r6, r0, okk\n"       // line 35
        "  movi r7, 0\n"            // line 36
        "okk:\n"
        "  assert r7\n"             // line 38  <- FAILS
        "  ret\n"
        ".endfunc\n";
    P = assembleOrDie(Src);
    AssertLine = 38;
    RacyWriteLine = 15;
    YDefLine = 11;
    KInitLine = 24;
    KUpdateLine = 31;
    UnrelatedLine = 17;
  }
};

TEST(Slicer, Figure5SliceFindsRacyWriteRootCause) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(3));

  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;

  auto C = S.failureCriterion();
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Tid, 1u);
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl);

  auto Lines = sliceLines(S, *Sl);
  // The slice crosses threads: the failing assert depends on k (T2) and on
  // the racy write to x in T1, which depends on y's definition.
  EXPECT_TRUE(Lines.count(F.AssertLine));
  EXPECT_TRUE(Lines.count(F.KUpdateLine));
  EXPECT_TRUE(Lines.count(F.KInitLine));
  EXPECT_TRUE(Lines.count(F.RacyWriteLine)) << "root cause missing";
  EXPECT_TRUE(Lines.count(F.YDefLine));
  // Unrelated work stays out.
  EXPECT_FALSE(Lines.count(F.UnrelatedLine));
}

TEST(Slicer, Figure5SlicePinballReplaysToFailure) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(3));
  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl);

  Pinball SlicePb;
  ASSERT_TRUE(S.makeSlicePinball(*Sl, SlicePb, Error)) << Error;
  EXPECT_LT(SlicePb.instructionCount(), Pb.instructionCount());

  // Replaying the execution slice still reproduces the assertion failure.
  Replayer Rep(SlicePb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
}

//===----------------------------------------------------------------------===//
// Slice properties
//===----------------------------------------------------------------------===//

/// Closure: every data/control dependence of a slice member resolves to a
/// slice member (or to before the region/bypassed save-restore pair).
TEST(Slicer, SliceIsClosedUnderDependences) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(2));
  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl);

  const GlobalTrace &GT = S.globalTrace();
  for (const DepEdge &E : Sl->Edges) {
    EXPECT_TRUE(Sl->contains(E.FromPos));
    EXPECT_TRUE(Sl->contains(E.ToPos));
    EXPECT_LT(E.ToPos, E.FromPos) << "dependences point backwards";
  }
  // Control deps of members are members.
  for (uint32_t Pos : Sl->Positions) {
    const TraceEntry &E = GT.entry(Pos);
    if (E.CtrlDep < 0)
      continue;
    uint32_t CdPos = static_cast<uint32_t>(
        GT.posOf(GT.ref(Pos).Tid, static_cast<uint32_t>(E.CtrlDep)));
    EXPECT_TRUE(Sl->contains(CdPos));
  }
}

/// LP block size must not change the slice.
class BlockSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockSizeTest, SliceInvariantUnderBlockSize) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(2));

  auto Compute = [&](size_t BS) {
    SliceSessionOptions Opts;
    Opts.BlockSize = BS;
    SliceSession S(Pb, Opts);
    std::string Error;
    EXPECT_TRUE(S.prepare(Error)) << Error;
    auto C = S.failureCriterion();
    EXPECT_TRUE(C.has_value());
    auto Sl = S.computeSlice(*C);
    EXPECT_TRUE(Sl.has_value());
    return Sl->Positions;
  };
  EXPECT_EQ(Compute(GetParam()), Compute(1 << 20));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeTest,
                         ::testing::Values(1, 2, 7, 16, 64, 1024));

TEST(Slicer, LpSkipsBlocks) {
  // A long prefix of unrelated work followed by a short dependent tail: LP
  // must skip prefix blocks wholesale.
  std::ostringstream Src;
  Src << ".data g 0\n.func main\n  movi r4, 123\n";
  for (int I = 0; I != 3000; ++I)
    Src << "  addi r9, r9, 1\n";
  Src << "  sta r4, @g\n  lda r5, @g\n  syswrite r5\n  halt\n.endfunc\n";
  Program P = assembleOrDie(Src.str());
  SliceSessionOptions Opts;
  Opts.BlockSize = 256;
  SliceSession S(recordWhole(P, RoundRobinScheduler(1)), Opts);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 3003; // syswrite
  auto Sl = S.computeSlice(C);
  ASSERT_TRUE(Sl);
  EXPECT_GT(S.blocksSkipped(), 5u);
  // Slice: movi r4, sta, lda, syswrite.
  EXPECT_EQ(Sl->dynamicSize(), 4u);
}

TEST(Slicer, LastLoadCriteriaFindsLoads) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(2));
  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto Criteria = S.lastLoadCriteria(5);
  ASSERT_EQ(Criteria.size(), 5u);
  for (const SliceCriterion &C : Criteria) {
    auto Sl = S.computeSlice(C);
    EXPECT_TRUE(Sl.has_value());
    EXPECT_GE(Sl->dynamicSize(), 1u);
  }
}

TEST(Slicer, SliceFileRoundTrips) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(2));
  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl);

  std::stringstream SS;
  Sl->save(SS, S.globalTrace());
  std::vector<Slice::SavedEntry> Loaded;
  ASSERT_TRUE(Slice::load(SS, Loaded, Error)) << Error;
  ASSERT_EQ(Loaded.size(), Sl->dynamicSize());
  // Entries re-anchor: each saved entry matches the trace.
  const GlobalTrace &GT = S.globalTrace();
  for (size_t I = 0; I != Loaded.size(); ++I) {
    uint32_t Pos = Sl->Positions[I];
    EXPECT_EQ(Loaded[I].Tid, GT.ref(Pos).Tid);
    EXPECT_EQ(Loaded[I].Pc, GT.entry(Pos).Pc);
  }
}

/// Def values observed at included instructions during slice-pinball replay
/// equal those of the full region replay (execution-slice correctness).
TEST(Slicer, SliceReplayValuesMatchFullReplay) {
  Figure5 F;
  Pinball Pb = recordToFailure(F.P, RoundRobinScheduler(3));
  SliceSession S(Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl);
  Pinball SlicePb;
  ASSERT_TRUE(S.makeSlicePinball(*Sl, SlicePb, Error)) << Error;

  // Per-thread instruction counters shift when instructions are skipped, so
  // match by sequence: the sliced replay's per-thread (pc, def values)
  // stream must equal the full replay's stream filtered to the included
  // (non-excluded) per-thread indices.
  auto Regions = S.exclusionRegions(*Sl);
  auto IsExcluded = [&](uint32_t Tid, uint64_t Idx) {
    for (const ExclusionRegion &R : Regions)
      if (R.Tid == Tid && Idx >= R.BeginIndex && Idx < R.EndIndex)
        return true;
    return false;
  };
  struct Step {
    uint64_t Pc;
    uint64_t PerThreadIndex;
    std::vector<int64_t> DefValues;
    bool operator==(const Step &O) const {
      return Pc == O.Pc && DefValues == O.DefValues;
    }
  };
  struct Collect : Observer {
    std::map<uint32_t, std::vector<Step>> Seq;
    void onExec(const Machine &, const ExecRecord &R) override {
      Step St;
      St.Pc = R.Pc;
      St.PerThreadIndex = R.PerThreadIndex;
      for (const auto &D : R.Defs)
        St.DefValues.push_back(D.Value);
      Seq[R.Tid].push_back(std::move(St));
    }
  };
  Collect Full, Sliced;
  {
    Replayer Rep(Pb);
    ASSERT_TRUE(Rep.valid());
    Rep.machine().addObserver(&Full);
    Rep.run();
  }
  {
    Replayer Rep(SlicePb);
    ASSERT_TRUE(Rep.valid());
    Rep.machine().addObserver(&Sliced);
    Rep.run();
  }
  ASSERT_FALSE(Sliced.Seq.empty());
  for (auto &[Tid, FullSeq] : Full.Seq) {
    std::vector<Step> Expected;
    for (const Step &St : FullSeq)
      if (!IsExcluded(Tid, St.PerThreadIndex))
        Expected.push_back(St);
    auto It = Sliced.Seq.find(Tid);
    if (Expected.empty()) {
      EXPECT_TRUE(It == Sliced.Seq.end() || It->second.empty());
      continue;
    }
    ASSERT_NE(It, Sliced.Seq.end()) << "tid " << Tid;
    const std::vector<Step> &Got = It->second;
    ASSERT_EQ(Got.size(), Expected.size()) << "tid " << Tid;
    for (size_t I = 0; I != Expected.size(); ++I)
      EXPECT_TRUE(Got[I] == Expected[I])
          << "tid " << Tid << " step " << I << " pc " << Expected[I].Pc
          << " vs " << Got[I].Pc;
  }
}

} // namespace
