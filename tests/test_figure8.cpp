//===- tests/test_figure8.cpp - Paper Figure 8 fidelity test ------------------===//
//
// Reproduces the paper's §5.2 running example exactly: function Q saves and
// restores a register the caller keeps live; the slice for w (computed from
// a value that flowed through the save/restore pair) wrongly includes the
// character read (3_1) and the guarding predicate (5_1) when pruning is
// off, and excludes them when save/restore pairs are bypassed.
//
//   1 P(FILE* fin, int d) {        MiniVM analog:
//   3   char c = fgetc(fin);         sysread r6        (line CLine)
//   4   int e = d + 1;               addi r1, r5, 1    (line ELine)
//   5   if (c == 't')                beq/bne guard     (line GuardLine)
//   6     Q();                       call q            (line CallLine)
//   7   w = e;                       mov r2, r1        (line WLine)
//       ...                          syswrite r2       (criterion)
//   Q: saves r1, clobbers it, restores r1.
//
//===----------------------------------------------------------------------===//

#include "replay/logger.h"
#include "slicing/slicer.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

struct Figure8 {
  Program P;
  // Source lines of the interesting statements.
  static constexpr uint32_t CLine = 3;     // c = fgetc(fin)
  static constexpr uint32_t ELine = 4;     // e = d + 1
  static constexpr uint32_t GuardLine = 5; // if (c == 't')
  static constexpr uint32_t CallLine = 6;  // Q()
  static constexpr uint32_t WLine = 8;     // w = e (line 7 is the label)
  static constexpr uint64_t CriterionPc = 6; // syswrite w

  Figure8() {
    P = assembleOrDie(
        ".func main\n"          // line 1
        "  movi r5, 41\n"       // line 2:  d = 41
        "  sysread r6\n"        // line 3:  c = fgetc(fin)
        "  addi r1, r5, 1\n"    // line 4:  e = d + 1   (kept in r1)
        "  bne r6, r7, skipq\n" // line 5:  if (c == 't'): r7 == 0 == 't'
        "  call q\n"            // line 6:  Q()
        "skipq:\n"
        "  mov r2, r1\n"        // line 7:  w = e  <- r1 flowed through Q's
        "  syswrite r2\n"       // line 8:  save/restore when Q ran
        "  halt\n"              // line 9
        ".endfunc\n"            // line 10
        ".func q\n"             // line 11
        "  push r1\n"           // line 12: save eax-analog
        "  movi r1, 999\n"      // line 13: Q clobbers it
        "  muli r1, r1, 3\n"    // line 14
        "  pop r1\n"            // line 15: restore
        "  ret\n"               // line 16
        ".endfunc\n");
  }

  /// Runs with input 0 (so the guard takes the Q path) and slices at the
  /// syswrite of w.
  std::set<uint32_t> sliceLines(bool Prune) {
    RoundRobinScheduler Sched(1);
    DefaultSyscalls World(1);
    World.setInput({0}); // c == 't': call Q
    LogResult Log = Logger::logWholeProgram(P, Sched, &World);
    EXPECT_EQ(Log.Reason, Machine::StopReason::Halted);
    SliceSessionOptions Opts;
    Opts.PruneSaveRestore = Prune;
    SliceSession S(Log.Pb, Opts);
    std::string Error;
    EXPECT_TRUE(S.prepare(Error)) << Error;
    SliceCriterion C;
    C.Tid = 0;
    C.Pc = CriterionPc; // syswrite r2
    auto Sl = S.computeSlice(C);
    EXPECT_TRUE(Sl.has_value());
    return Sl->sourceLines(S.globalTrace());
  }
};

TEST(Figure8, ImpreciseSlicePullsInGuardAndCharRead) {
  Figure8 F;
  auto Lines = F.sliceLines(/*Prune=*/false);
  // The spurious chain: w <- restore <- save <- e's def, and because Q's
  // body is control-dependent on the call and the guard, 5_1 and 3_1 are
  // wrongly included (third column of the paper's figure).
  EXPECT_TRUE(Lines.count(Figure8::WLine));
  EXPECT_TRUE(Lines.count(Figure8::ELine));
  EXPECT_TRUE(Lines.count(Figure8::GuardLine)) << "spurious 5_1 missing";
  EXPECT_TRUE(Lines.count(Figure8::CLine)) << "spurious 3_1 missing";
  EXPECT_TRUE(Lines.count(Figure8::CallLine));
  EXPECT_TRUE(Lines.count(13)) << "the save itself";
  EXPECT_TRUE(Lines.count(16)) << "the restore itself";
}

TEST(Figure8, RefinedSliceExcludesSpuriousDependences) {
  Figure8 F;
  auto Lines = F.sliceLines(/*Prune=*/true);
  // Fourth column of the figure: w and e (and d) only.
  EXPECT_TRUE(Lines.count(Figure8::WLine));
  EXPECT_TRUE(Lines.count(Figure8::ELine));
  EXPECT_TRUE(Lines.count(2)) << "d's definition feeds e";
  EXPECT_FALSE(Lines.count(Figure8::GuardLine)) << "5_1 must be pruned";
  EXPECT_FALSE(Lines.count(Figure8::CLine)) << "3_1 must be pruned";
  EXPECT_FALSE(Lines.count(Figure8::CallLine));
  EXPECT_FALSE(Lines.count(13));
  EXPECT_FALSE(Lines.count(16));
}

TEST(Figure8, NoQPathIsIdenticalUnderBothModes) {
  Figure8 F;
  // Input 1: guard not taken, Q never runs, no save/restore pair exists —
  // pruning must be a no-op.
  auto Run = [&](bool Prune) {
    RoundRobinScheduler Sched(1);
    DefaultSyscalls World(1);
    World.setInput({1});
    LogResult Log = Logger::logWholeProgram(F.P, Sched, &World);
    SliceSessionOptions Opts;
    Opts.PruneSaveRestore = Prune;
    SliceSession S(Log.Pb, Opts);
    std::string Error;
    EXPECT_TRUE(S.prepare(Error)) << Error;
    SliceCriterion C;
    C.Tid = 0;
    C.Pc = Figure8::CriterionPc;
    auto Sl = S.computeSlice(C);
    EXPECT_TRUE(Sl.has_value());
    return Sl->Positions;
  };
  EXPECT_EQ(Run(false), Run(true));
}

} // namespace
