//===- tests/test_global_trace.cpp - Global-trace construction tests ---------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/global_trace.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

/// Records traces for a whole run under the given scheduler.
struct Recorded {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<TraceSet> Traces;
  GlobalTrace GT;

  Recorded(const Program &P, Scheduler &&Sched) {
    LogResult Log = Logger::logWholeProgram(P, Sched, nullptr);
    Replayer Rep(Log.Pb);
    EXPECT_TRUE(Rep.valid());
    Prog = std::make_unique<Program>(Rep.program());
    Traces = std::make_unique<TraceSet>(*Prog);
    Rep.machine().addObserver(Traces.get());
    Rep.run();
    GT.build(*Traces);
  }
};

Program makeSharingProgram() {
  return assembleOrDie(".data x 0\n.data y 0\n"
                       ".func main\n"
                       "  spawn r1, w, r0\n"
                       "  movi r2, 20\n"
                       "m:\n  lda r3, @x\n  addi r3, r3, 1\n  sta r3, @x\n"
                       "  subi r2, r2, 1\n  bgt r2, r0, m\n"
                       "  join r1\n  halt\n.endfunc\n"
                       ".func w\n"
                       "  movi r2, 20\n"
                       "w1:\n  lda r3, @x\n  addi r3, r3, 2\n  sta r3, @x\n"
                       "  lda r4, @y\n  addi r4, r4, 1\n  sta r4, @y\n"
                       "  subi r2, r2, 1\n  bgt r2, r0, w1\n"
                       "  ret\n.endfunc\n");
}

TEST(GlobalTrace, CoversEveryEntryExactlyOnce) {
  Recorded R(makeSharingProgram(), RandomScheduler(3, 1, 2));
  size_t Total = 0;
  for (const ThreadTrace &T : R.Traces->threads())
    Total += T.Entries.size();
  EXPECT_EQ(R.GT.size(), Total);
  // posOf is the inverse of ref().
  for (size_t Pos = 0; Pos != R.GT.size(); ++Pos) {
    const GlobalRef &Ref = R.GT.ref(Pos);
    EXPECT_EQ(R.GT.posOf(Ref.Tid, Ref.LocalIdx), Pos);
  }
}

TEST(GlobalTrace, HonorsProgramOrder) {
  Recorded R(makeSharingProgram(), RandomScheduler(5, 1, 2));
  for (const ThreadTrace &T : R.Traces->threads())
    for (size_t I = 1; I < T.Entries.size(); ++I)
      EXPECT_LT(R.GT.posOf(T.Tid, static_cast<uint32_t>(I - 1)),
                R.GT.posOf(T.Tid, static_cast<uint32_t>(I)));
}

TEST(GlobalTrace, HonorsConflictEdges) {
  Recorded R(makeSharingProgram(), RandomScheduler(7, 1, 2));
  for (const OrderEdge &E : R.Traces->orderEdges()) {
    if (E.FromIdx >= R.Traces->threads()[E.FromTid].Entries.size() ||
        E.ToIdx >= R.Traces->threads()[E.ToTid].Entries.size())
      continue;
    EXPECT_LT(R.GT.posOf(E.FromTid, E.FromIdx), R.GT.posOf(E.ToTid, E.ToIdx));
  }
}

TEST(GlobalTrace, SpawnEdgeOrdersChildAfterParent) {
  Recorded R(makeSharingProgram(), RandomScheduler(9, 1, 2));
  // The child's first entry comes after the parent's spawn.
  const auto &Main = R.Traces->threads()[0];
  uint32_t SpawnIdx = ~0U;
  for (uint32_t I = 0; I != Main.Entries.size(); ++I)
    if (Main.Entries[I].Op == Opcode::Spawn)
      SpawnIdx = I;
  ASSERT_NE(SpawnIdx, ~0U);
  ASSERT_GE(R.Traces->threads().size(), 2u);
  ASSERT_FALSE(R.Traces->threads()[1].Entries.empty());
  EXPECT_LT(R.GT.posOf(0, SpawnIdx), R.GT.posOf(1, 0));
}

/// Clustering: with a heavily interleaved recording, the merged order must
/// have at most as many thread switches as the recording itself (it only
/// reorders within the happens-before slack, always preferring to stay).
TEST(GlobalTrace, ClusteringReducesThreadSwitches) {
  Recorded R(makeSharingProgram(), RoundRobinScheduler(1));
  uint64_t RecordedSwitches = 0;
  const auto &True = R.Traces->recordedOrder();
  for (size_t I = 1; I < True.size(); ++I)
    if (True[I].Tid != True[I - 1].Tid)
      ++RecordedSwitches;
  EXPECT_LE(R.GT.threadSwitches(), RecordedSwitches);
  // With quantum-1 alternation and only occasional true conflicts, the
  // merge should cluster substantially.
  EXPECT_LT(R.GT.threadSwitches(), RecordedSwitches / 2)
      << "merged " << R.GT.threadSwitches() << " vs recorded "
      << RecordedSwitches;
}

TEST(GlobalTrace, IndependentThreadsFullyCluster) {
  // No shared data at all: the merge may emit each thread as one block
  // (switch count = #threads - 1, plus the spawn/join constraints).
  Program P = assembleOrDie(".func main\n"
                            "  spawn r1, w, r0\n"
                            "  movi r2, 10\n"
                            "m:\n  addi r3, r3, 1\n  subi r2, r2, 1\n"
                            "  bgt r2, r0, m\n"
                            "  join r1\n  halt\n.endfunc\n"
                            ".func w\n"
                            "  movi r2, 10\n"
                            "w1:\n  addi r3, r3, 3\n  subi r2, r2, 1\n"
                            "  bgt r2, r0, w1\n  ret\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  EXPECT_LE(R.GT.threadSwitches(), 2u);
}

TEST(GlobalTrace, SingleThreadIsIdentity) {
  Program P = assembleOrDie(".func main\n  movi r1, 3\n  addi r1, r1, 1\n"
                            "  halt\n.endfunc\n");
  Recorded R(P, RoundRobinScheduler(1));
  ASSERT_EQ(R.GT.size(), 3u);
  for (uint32_t I = 0; I != 3; ++I) {
    EXPECT_EQ(R.GT.ref(I).Tid, 0u);
    EXPECT_EQ(R.GT.ref(I).LocalIdx, I);
  }
  EXPECT_EQ(R.GT.threadSwitches(), 0u);
}

TEST(GlobalTrace, EntriesAccessibleThroughPositions) {
  Recorded R(makeSharingProgram(), RandomScheduler(2, 1, 2));
  for (size_t Pos = 0; Pos != R.GT.size(); ++Pos) {
    const TraceEntry &E = R.GT.entry(Pos);
    const GlobalRef &Ref = R.GT.ref(Pos);
    EXPECT_EQ(&E,
              &R.Traces->threads()[Ref.Tid].Entries[Ref.LocalIdx]);
  }
}

} // namespace
