//===- tests/test_exclusion.cpp - Exclusion-region builder tests -------------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "test_util.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

struct PreparedSession {
  Pinball Pb;
  std::unique_ptr<SliceSession> S;

  explicit PreparedSession(const Program &P, uint64_t Seed = 1) {
    RandomScheduler Sched(Seed, 1, 3);
    Pb = Logger::logWholeProgram(P, Sched).Pb;
    S = std::make_unique<SliceSession>(Pb);
    std::string Error;
    EXPECT_TRUE(S->prepare(Error)) << Error;
  }
};

TEST(ExclusionBuilder, RegionsAreMaximalGaps) {
  // Straight-line: slice keeps the data chain of the final store only.
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1\n"   // 0: in slice
                            "  movi r9, 2\n"   // 1: gap
                            "  movi r8, 3\n"   // 2: gap
                            "  addi r1, r1, 4\n" // 3: in slice
                            "  movi r7, 5\n"   // 4: gap
                            "  sta r1, @g\n"   // 5: in slice (criterion)
                            "  halt\n.endfunc\n"); // 6: trailing gap
  PreparedSession PS(P);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5;
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  ASSERT_EQ(Sl->dynamicSize(), 3u);

  auto Regions = PS.S->exclusionRegions(*Sl);
  // Gaps: [1,3), [4,5), [6, end).
  ASSERT_EQ(Regions.size(), 3u);
  EXPECT_EQ(Regions[0].BeginIndex, 1u);
  EXPECT_EQ(Regions[0].EndIndex, 3u);
  EXPECT_EQ(Regions[1].BeginIndex, 4u);
  EXPECT_EQ(Regions[1].EndIndex, 5u);
  EXPECT_EQ(Regions[2].BeginIndex, 6u);
  EXPECT_EQ(Regions[2].EndIndex, ~0ULL);
}

TEST(ExclusionBuilder, PcInstanceAnnotations) {
  // A loop so instance numbers exceed 1.
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 3\n"
                            "l:\n"
                            "  movi r9, 7\n"      // pc 1: never in slice
                            "  subi r1, r1, 1\n"  // pc 2
                            "  bgt r1, r0, l\n"   // pc 3
                            "  sta r1, @g\n"      // pc 4: criterion
                            "  halt\n.endfunc\n");
  PreparedSession PS(P);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 4;
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Regions = PS.S->exclusionRegions(*Sl);
  ASSERT_FALSE(Regions.empty());
  // Each excluded occurrence of pc 1 is annotated with its 1-based
  // instance; the first region starting at pc 1 must carry instance 1, and
  // instances never exceed the loop count.
  bool SawPc1 = false;
  for (const ExclusionRegion &R : Regions) {
    if (R.StartPc == 1) {
      SawPc1 = true;
      EXPECT_GE(R.StartInstance, 1u);
      EXPECT_LE(R.StartInstance, 3u);
    }
  }
  EXPECT_TRUE(SawPc1);
}

TEST(ExclusionBuilder, SpawnsAreNeverExcluded) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  PreparedSession PS(P, 3);
  auto C = PS.S->failureCriterion();
  ASSERT_TRUE(C.has_value());
  auto Sl = PS.S->computeSlice(*C);
  ASSERT_TRUE(Sl);
  auto Regions = PS.S->exclusionRegions(*Sl);
  // No exclusion region may cover the spawn instruction (per-thread index
  // 0 of the main thread is the spawn in Figure 5).
  const TraceSet &TS = PS.S->traces();
  for (size_t Idx = 0; Idx != TS.threads()[0].Entries.size(); ++Idx) {
    if (TS.threads()[0].Entries[Idx].Op != Opcode::Spawn)
      continue;
    uint64_t Abs = TS.threads()[0].StartIndex + Idx;
    for (const ExclusionRegion &R : Regions)
      if (R.Tid == 0)
        EXPECT_FALSE(Abs >= R.BeginIndex && Abs < R.EndIndex)
            << "spawn at abs index " << Abs << " is excluded";
  }
}

TEST(ExclusionBuilder, IncludedCountMatchesSlicePinball) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  PreparedSession PS(P, 2);
  auto C = PS.S->failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = PS.S->computeSlice(*C);
  ASSERT_TRUE(Sl);
  uint64_t Predicted = includedInstructionCount(PS.S->globalTrace(), *Sl);
  Pinball SlicePb;
  std::string Error;
  ASSERT_TRUE(PS.S->makeSlicePinball(*Sl, SlicePb, Error)) << Error;
  EXPECT_EQ(SlicePb.instructionCount(), Predicted);
}

TEST(ExclusionBuilder, EmptySliceExcludesWholeThreads) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 1\n" // 0: criterion (only member)
                            "  movi r2, 2\n"
                            "  movi r3, 3\n"
                            "  halt\n.endfunc\n");
  PreparedSession PS(P);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 0;
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  EXPECT_EQ(Sl->dynamicSize(), 1u);
  auto Regions = PS.S->exclusionRegions(*Sl);
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(Regions[0].BeginIndex, 1u);
  EXPECT_EQ(Regions[0].EndIndex, ~0ULL);
}

TEST(ExclusionBuilder, SpecialSliceFileListsRegions) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  PreparedSession PS(P, 2);
  auto C = PS.S->failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = PS.S->computeSlice(*C);
  ASSERT_TRUE(Sl);
  auto Regions = PS.S->exclusionRegions(*Sl);
  std::ostringstream OS;
  saveSpecialSliceFile(OS, PS.S->globalTrace(), *Sl, Regions);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("slice "), std::string::npos);
  EXPECT_NE(Text.find("exclusions " + std::to_string(Regions.size())),
            std::string::npos);
  // The paper's [startPc:instance:tid, ...) notation appears.
  EXPECT_NE(Text.find(":"), std::string::npos);
  EXPECT_NE(Text.find("["), std::string::npos);
}

/// Round-trip: the normal slice file written by the special file parses
/// back with the right entry count.
TEST(ExclusionBuilder, SliceFileWithinSpecialFileParses) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  PreparedSession PS(P, 2);
  auto C = PS.S->failureCriterion();
  ASSERT_TRUE(C);
  auto Sl = PS.S->computeSlice(*C);
  ASSERT_TRUE(Sl);
  std::stringstream SS;
  saveSpecialSliceFile(SS, PS.S->globalTrace(), *Sl,
                       PS.S->exclusionRegions(*Sl));
  std::vector<Slice::SavedEntry> Entries;
  std::string Error;
  ASSERT_TRUE(Slice::load(SS, Entries, Error)) << Error;
  EXPECT_EQ(Entries.size(), Sl->dynamicSize());
}

} // namespace
