//===- tests/test_assembler.cpp - Assembler unit tests ----------------------===//

#include "arch/assembler.h"
#include "arch/disasm.h"

#include <gtest/gtest.h>

using namespace drdebug;

namespace {

Program mustAssemble(const std::string &Text) {
  Program P;
  std::string Error;
  bool Ok = assemble(Text, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

std::string mustFail(const std::string &Text) {
  Program P;
  std::string Error;
  bool Ok = assemble(Text, P, Error);
  EXPECT_FALSE(Ok) << "assembly unexpectedly succeeded";
  return Error;
}

TEST(Assembler, MinimalProgram) {
  Program P = mustAssemble(".func main\n  halt\n.endfunc\n");
  ASSERT_EQ(P.Funcs.size(), 1u);
  EXPECT_EQ(P.Funcs[0].Name, "main");
  ASSERT_EQ(P.Instrs.size(), 1u);
  EXPECT_EQ(P.Instrs[0].Op, Opcode::Halt);
  EXPECT_EQ(P.entryOf("main"), 0u);
}

TEST(Assembler, SourceTextRetained) {
  std::string Src = ".func main\n  halt\n.endfunc\n";
  Program P = mustAssemble(Src);
  EXPECT_EQ(P.SourceText, Src);
}

TEST(Assembler, RegistersAndAliases) {
  Program P = mustAssemble(".func main\n"
                           "  mov r1, r2\n"
                           "  mov sp, fp\n"
                           "  mov r15, r14\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[1].Rd, RegSp);
  EXPECT_EQ(P.Instrs[1].Ra, RegFp);
  EXPECT_EQ(P.Instrs[2].Rd, 15);
  EXPECT_EQ(P.Instrs[2].Ra, 14);
}

TEST(Assembler, ImmediateForms) {
  Program P = mustAssemble(".func main\n"
                           "  movi r1, -42\n"
                           "  movi r2, 0x10\n"
                           "  addi r3, r1, 7\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, -42);
  EXPECT_EQ(P.Instrs[1].Imm, 0x10);
  EXPECT_EQ(P.Instrs[2].Imm, 7);
}

TEST(Assembler, MemoryOperands) {
  Program P = mustAssemble(".func main\n"
                           "  ld r1, [r2]\n"
                           "  ld r1, [r2+8]\n"
                           "  st r1, [r2-3]\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, 0);
  EXPECT_EQ(P.Instrs[1].Imm, 8);
  EXPECT_EQ(P.Instrs[1].Ra, 2);
  EXPECT_EQ(P.Instrs[2].Imm, -3);
}

TEST(Assembler, GlobalsGetSequentialAddresses) {
  Program P = mustAssemble(".data a 5\n"
                           ".array buf 4\n"
                           ".data b -1\n"
                           ".func main\n  halt\n.endfunc\n");
  const GlobalVar *A = P.findGlobal("a");
  const GlobalVar *Buf = P.findGlobal("buf");
  const GlobalVar *B = P.findGlobal("b");
  ASSERT_TRUE(A && Buf && B);
  EXPECT_EQ(A->Addr, layout::GlobalBase);
  EXPECT_EQ(Buf->Addr, layout::GlobalBase + 1);
  EXPECT_EQ(Buf->Size, 4u);
  EXPECT_EQ(B->Addr, layout::GlobalBase + 5);
  ASSERT_EQ(A->Init.size(), 1u);
  EXPECT_EQ(A->Init[0], 5);
}

TEST(Assembler, ArrayInitializers) {
  Program P = mustAssemble(".array tab 3 10 20 30\n"
                           ".func main\n  halt\n.endfunc\n");
  const GlobalVar *Tab = P.findGlobal("tab");
  ASSERT_TRUE(Tab);
  ASSERT_EQ(Tab->Init.size(), 3u);
  EXPECT_EQ(Tab->Init[2], 30);
}

TEST(Assembler, GlobalReferencesResolve) {
  Program P = mustAssemble(".data x 1\n"
                           ".array v 8\n"
                           ".func main\n"
                           "  lea r1, @x\n"
                           "  lea r2, @v+3\n"
                           "  lda r3, @x\n"
                           "  sta r3, @v+1\n"
                           "  halt\n.endfunc\n");
  uint64_t XAddr = P.findGlobal("x")->Addr;
  uint64_t VAddr = P.findGlobal("v")->Addr;
  EXPECT_EQ(P.Instrs[0].Imm, static_cast<int64_t>(XAddr));
  EXPECT_EQ(P.Instrs[1].Imm, static_cast<int64_t>(VAddr + 3));
  EXPECT_EQ(P.Instrs[2].Imm, static_cast<int64_t>(XAddr));
  EXPECT_EQ(P.Instrs[3].Imm, static_cast<int64_t>(VAddr + 1));
}

TEST(Assembler, LabelsAndBranches) {
  Program P = mustAssemble(".func main\n"
                           "  movi r1, 3\n"
                           "loop:\n"
                           "  subi r1, r1, 1\n"
                           "  bne r1, r0, loop\n"
                           "  jmp done\n"
                           "done:\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[2].Imm, 1); // loop label
  EXPECT_EQ(P.Instrs[3].Imm, 4); // done label
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  Program P = mustAssemble(".func main\n"
                           "top: movi r1, 1\n"
                           "  jmp top\n"
                           ".endfunc\n");
  EXPECT_EQ(P.Instrs[1].Imm, 0);
}

TEST(Assembler, FunctionReferences) {
  Program P = mustAssemble(".func main\n"
                           "  call helper\n"
                           "  lea r1, &helper\n"
                           "  spawn r2, helper, r3\n"
                           "  halt\n.endfunc\n"
                           ".func helper\n  ret\n.endfunc\n");
  uint64_t Entry = P.entryOf("helper");
  EXPECT_EQ(P.Instrs[0].Imm, static_cast<int64_t>(Entry));
  EXPECT_EQ(P.Instrs[1].Imm, static_cast<int64_t>(Entry));
  EXPECT_EQ(P.Instrs[2].Imm, static_cast<int64_t>(Entry));
  EXPECT_EQ(P.Instrs[2].Rd, 2);
  EXPECT_EQ(P.Instrs[2].Ra, 3);
}

TEST(Assembler, ForwardReferences) {
  Program P = mustAssemble(".func main\n"
                           "  jmp fwd\n"
                           "  nop\n"
                           "fwd:\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(P.Instrs[0].Imm, 2);
}

TEST(Assembler, CommentsAndBlankLines) {
  Program P = mustAssemble("; leading comment\n"
                           "\n"
                           ".func main  ; trailing\n"
                           "  nop # hash comment\n"
                           "  halt\n"
                           ".endfunc\n");
  EXPECT_EQ(P.Instrs.size(), 2u);
}

TEST(Assembler, LineNumbersRecorded) {
  Program P = mustAssemble(".func main\n" // line 1
                           "  nop\n"      // line 2
                           "  halt\n"     // line 3
                           ".endfunc\n");
  EXPECT_EQ(P.Instrs[0].Line, 2u);
  EXPECT_EQ(P.Instrs[1].Line, 3u);
}

TEST(Assembler, FunctionLookupHelpers) {
  Program P = mustAssemble(".func main\n  nop\n  halt\n.endfunc\n"
                           ".func f\n  ret\n.endfunc\n");
  const Function *F = P.functionAt(2);
  ASSERT_TRUE(F);
  EXPECT_EQ(F->Name, "f");
  EXPECT_EQ(P.functionAt(99), nullptr);
  EXPECT_LT(P.findFunction("f"), 2);
  EXPECT_EQ(P.findFunction("nope"), -1);
}

// --- Error cases ---------------------------------------------------------

TEST(AssemblerErrors, UnknownInstruction) {
  std::string E = mustFail(".func main\n  frobnicate r1\n.endfunc\n");
  EXPECT_NE(E.find("line 2"), std::string::npos) << E;
  EXPECT_NE(E.find("unknown instruction"), std::string::npos) << E;
}

TEST(AssemblerErrors, BadRegister) {
  mustFail(".func main\n  mov r99, r1\n  halt\n.endfunc\n");
  mustFail(".func main\n  mov rx, r1\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, WrongOperandCount) {
  std::string E = mustFail(".func main\n  add r1, r2\n  halt\n.endfunc\n");
  EXPECT_NE(E.find("expects 3"), std::string::npos) << E;
}

TEST(AssemblerErrors, UnknownLabel) {
  std::string E = mustFail(".func main\n  jmp nowhere\n.endfunc\n");
  EXPECT_NE(E.find("unknown label"), std::string::npos) << E;
}

TEST(AssemblerErrors, UnknownGlobal) {
  mustFail(".func main\n  lea r1, @ghost\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, DuplicateLabel) {
  mustFail(".func main\na:\n  nop\na:\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, DuplicateGlobal) {
  mustFail(".data x 1\n.data x 2\n.func main\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, NoMain) {
  std::string E = mustFail(".func f\n  ret\n.endfunc\n");
  EXPECT_NE(E.find("main"), std::string::npos) << E;
}

TEST(AssemblerErrors, InstructionOutsideFunction) {
  mustFail("  nop\n.func main\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, MissingEndfunc) {
  mustFail(".func main\n  halt\n");
}

TEST(AssemblerErrors, EmptyFunction) {
  mustFail(".func main\n.endfunc\n");
}

TEST(AssemblerErrors, NestedFunc) {
  mustFail(".func main\n.func inner\n  halt\n.endfunc\n.endfunc\n");
}

TEST(AssemblerErrors, TooManyArrayInitializers) {
  mustFail(".array t 2 1 2 3\n.func main\n  halt\n.endfunc\n");
}

TEST(AssemblerErrors, BadMemoryOperand) {
  mustFail(".func main\n  ld r1, r2\n  halt\n.endfunc\n");
}

// --- Disassembler --------------------------------------------------------

TEST(Disasm, RendersCoreForms) {
  Program P = mustAssemble(".data g 0\n"
                           ".func main\n"
                           "  add r1, r2, r3\n"
                           "  movi r4, -7\n"
                           "  ld r5, [r6+2]\n"
                           "  push sp\n"
                           "  halt\n.endfunc\n");
  EXPECT_EQ(disassemble(P.Instrs[0]), "add r1, r2, r3");
  EXPECT_EQ(disassemble(P.Instrs[1]), "movi r4, -7");
  EXPECT_EQ(disassemble(P.Instrs[2]), "ld r5, [r6+2]");
  EXPECT_EQ(disassemble(P.Instrs[3]), "push sp");
  EXPECT_EQ(disassemble(P.Instrs[4]), "halt");
}

TEST(Disasm, DisassembleAtIncludesFunction) {
  Program P = mustAssemble(".func main\n  nop\n  halt\n.endfunc\n");
  std::string S = disassembleAt(P, 1);
  EXPECT_NE(S.find("<main+1>"), std::string::npos) << S;
  EXPECT_NE(S.find("halt"), std::string::npos) << S;
}

/// Property: every instruction in a representative program disassembles and
/// the mnemonic matches its opcode table name.
TEST(Disasm, MnemonicMatchesOpcode) {
  Program P = mustAssemble(".data g 1\n"
                           ".func main\n"
                           "  movi r1, 1\n  mov r2, r1\n  lea r3, @g\n"
                           "  add r4, r1, r2\n  subi r5, r4, 1\n"
                           "  neg r6, r5\n  not r7, r6\n"
                           "  ld r8, [r3]\n  st r8, [r3+1]\n"
                           "  lda r9, @g\n  sta r9, @g\n"
                           "  push r1\n  pop r2\n"
                           "  atomicadd r10, [r3], r1\n"
                           "  sysread r11\n  sysrand r11\n  systime r11\n"
                           "  movi r12, 4\n  sysalloc r11, r12\n"
                           "  syswrite r1\n  assert r1\n"
                           "  halt\n.endfunc\n");
  for (const Instruction &I : P.Instrs) {
    std::string S = disassemble(I);
    EXPECT_EQ(S.substr(0, S.find_first_of(" ")), opcodeName(I.Op));
  }
}

} // namespace
