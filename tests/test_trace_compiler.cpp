//===- tests/test_trace_compiler.cpp - Compiled replay identity tests --------===//
//
// The trace compiler's contract is absolute: with or without compiled
// traces, a replay of the same pinball produces bit-identical machine
// state, output, schedule position, and divergence verdict — at the end
// and at every instruction boundary in between (observer-exact
// deoptimization, docs/COMPILE.md). These tests are differential: every
// property is checked interpreter-vs-compiled, never against golden data.
//
//===----------------------------------------------------------------------===//

#include "replay/checkpoints.h"
#include "replay/flight_recorder.h"
#include "replay/logger.h"
#include "replay/replayer.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "test_util.h"
#include "vm/trace_cache.h"
#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <thread>
#include <vector>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

constexpr uint64_t StepBudget = 400'000;

ReplayOptions interpOnly() {
  ReplayOptions O;
  O.CompileTraces = false;
  return O;
}

/// HotThreshold 1 compiles every entry pc on first sight — maximum trace
/// coverage, so the differential sweep exercises every handler.
ReplayOptions compileEager() {
  ReplayOptions O;
  O.CompileTraces = true;
  O.HotThreshold = 1;
  return O;
}

GeneratorOptions fuzzShape() {
  GeneratorOptions Opts;
  Opts.NumFunctions = 3;
  Opts.MaxBodyLen = 10;
  Opts.MaxThreads = 2;
  return Opts;
}

/// Records a whole-program pinball for generated program \p ProgramSeed
/// under scheduler seed \p SchedSeed.
Pinball recordPinball(uint64_t ProgramSeed, uint64_t SchedSeed,
                      Machine::StopReason *Reason = nullptr) {
  Program P = generateRandomProgram(ProgramSeed, fuzzShape());
  RandomScheduler Sched(SchedSeed, 1, 3);
  DefaultSyscalls World(SchedSeed + 7);
  World.setInput({1, -2, 3, 5, 8});
  LogResult Log = Logger::logWholeProgram(P, Sched, &World);
  if (Reason)
    *Reason = Log.Reason;
  return Log.Pb;
}

/// Everything a replay can observe about itself, for exact comparison.
struct ReplayOutcome {
  Machine::StopReason Reason;
  MachineState End;
  std::vector<int64_t> Output;
  uint64_t Replayed;
  DivergenceKind Divergence;
  ReplayCursor Cursor;
};

ReplayOutcome replayAll(const Pinball &Pb, const ReplayOptions &Opts) {
  Replayer Rep(Pb, Opts);
  EXPECT_TRUE(Rep.valid()) << Rep.error();
  ReplayOutcome R;
  R.Reason = Rep.run(StepBudget);
  R.End = Rep.machine().snapshot();
  R.Output = Rep.machine().output();
  R.Replayed = Rep.replayedInstructions();
  R.Divergence = Rep.divergence().Kind;
  R.Cursor = Rep.cursor();
  return R;
}

void expectSameOutcome(const ReplayOutcome &A, const ReplayOutcome &B,
                       const std::string &What) {
  EXPECT_EQ(A.Reason, B.Reason) << What;
  EXPECT_TRUE(A.End == B.End) << What << ": end states differ";
  EXPECT_EQ(A.Output, B.Output) << What;
  EXPECT_EQ(A.Replayed, B.Replayed) << What;
  EXPECT_EQ(A.Divergence, B.Divergence) << What;
  EXPECT_EQ(A.Cursor.EventIndex, B.Cursor.EventIndex) << What;
  EXPECT_EQ(A.Cursor.WithinEvent, B.Cursor.WithinEvent) << What;
  EXPECT_EQ(A.Cursor.SyscallCursors, B.Cursor.SyscallCursors) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential fuzz: whole-replay identity over generated programs
//===----------------------------------------------------------------------===//

TEST(TraceCompiler, DifferentialFuzzWholeReplay) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  uint64_t CompiledTotal = 0;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Pinball Pb = recordPinball(Seed, Seed * 31 + 5);
    ReplayOutcome Interp = replayAll(Pb, interpOnly());

    Replayer Rep(Pb, compileEager());
    ASSERT_TRUE(Rep.valid()) << Rep.error();
    ReplayOutcome Compiled;
    Compiled.Reason = Rep.run(StepBudget);
    Compiled.End = Rep.machine().snapshot();
    Compiled.Output = Rep.machine().output();
    Compiled.Replayed = Rep.replayedInstructions();
    Compiled.Divergence = Rep.divergence().Kind;
    Compiled.Cursor = Rep.cursor();
    expectSameOutcome(Interp, Compiled, "seed " + std::to_string(Seed));
    CompiledTotal += Rep.compiledInstructions();
  }
  // The sweep as a whole must actually exercise compiled code, or the
  // identity above is vacuous.
  EXPECT_GT(CompiledTotal, 0u);
}

/// The default options (HotThreshold 8) must agree with the interpreter
/// too: mixed cold/hot execution crosses the interpreter/trace boundary in
/// both directions constantly.
TEST(TraceCompiler, DifferentialFuzzDefaultThreshold) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  for (uint64_t Seed = 20; Seed <= 26; ++Seed) {
    Pinball Pb = recordPinball(Seed, Seed * 17 + 3);
    ReplayOutcome Interp = replayAll(Pb, interpOnly());
    ReplayOutcome Compiled = replayAll(Pb, ReplayOptions());
    expectSameOutcome(Interp, Compiled, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// Forced deopt at every instruction boundary
//===----------------------------------------------------------------------===//

/// replayChunk(1) gives the executor a budget of one instruction, forcing
/// a mid-trace side exit at literally every boundary inside every trace.
/// Lockstep with an interpreted replay, the full machine state must match
/// after each instruction — the strongest form of the deopt contract.
TEST(TraceCompiler, DeoptAtEveryBoundaryIsExact) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  for (uint64_t Seed : {3u, 7u}) {
    Pinball Pb = recordPinball(Seed, Seed + 11);
    Replayer Interp(Pb, interpOnly());
    Replayer Compiled(Pb, compileEager());
    ASSERT_TRUE(Interp.valid() && Compiled.valid());
    uint64_t Steps = 0;
    for (; Steps < StepBudget; ++Steps) {
      uint64_t I = Interp.replayChunk(1);
      uint64_t C = Compiled.replayChunk(1);
      ASSERT_EQ(I, C) << "step " << Steps;
      if (I == 0)
        break;
      // Compare snapshots sparsely at first (they are expensive), then
      // densely near the start where traces are still being compiled.
      if (Steps < 256 || Steps % 97 == 0)
        ASSERT_TRUE(Interp.machine().snapshot() ==
                    Compiled.machine().snapshot())
            << "state diverged at step " << Steps;
    }
    EXPECT_TRUE(Interp.machine().snapshot() == Compiled.machine().snapshot());
    EXPECT_EQ(Interp.replayedInstructions(), Compiled.replayedInstructions());
    // Budget 1 makes every multi-op trace exit mid-trace.
    if (Compiled.compiledInstructions() > 0)
      EXPECT_GT(Compiled.deopts(), 0u);
  }
}

/// Random chunk sizes stress every interleaving of trace entry, chaining,
/// budget exit and interpreter fallback; state must match at every sync
/// point.
TEST(TraceCompiler, RandomChunkSizesAgree) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  std::mt19937_64 Rng(99);
  for (uint64_t Seed : {5u, 9u}) {
    Pinball Pb = recordPinball(Seed, Seed * 13 + 1);
    Replayer Interp(Pb, interpOnly());
    Replayer Compiled(Pb, compileEager());
    ASSERT_TRUE(Interp.valid() && Compiled.valid());
    for (;;) {
      uint64_t Chunk = 1 + Rng() % 61;
      uint64_t I = Interp.replayChunk(Chunk);
      uint64_t C = Compiled.replayChunk(Chunk);
      ASSERT_EQ(I, C);
      ASSERT_TRUE(Interp.machine().snapshot() == Compiled.machine().snapshot())
          << "state diverged at instruction " << Interp.replayedInstructions();
      if (I < Chunk)
        break;
    }
    EXPECT_EQ(Interp.done(), Compiled.done());
  }
}

//===----------------------------------------------------------------------===//
// Observer attach mid-replay
//===----------------------------------------------------------------------===//

/// Attaching an observer halfway through a compiled replay must (a) stop
/// all trace execution from that point, and (b) deliver exactly the
/// callback stream an interpreted replay with the same observer delivers.
TEST(TraceCompiler, ObserverAttachMidReplayIsExact) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Pinball Pb = recordPinball(4, 21);
  uint64_t Total = Pb.instructionCount();
  ASSERT_GT(Total, 10u);
  uint64_t Half = Total / 2;

  auto RunWithAttach = [&](const ReplayOptions &Opts, uint64_t *CompiledAfter) {
    Replayer Rep(Pb, Opts);
    EXPECT_TRUE(Rep.valid()) << Rep.error();
    EXPECT_EQ(Rep.replayChunk(Half), Half);
    TraceHashObserver H;
    Rep.machine().addObserver(&H);
    uint64_t CompiledAtAttach = Rep.compiledInstructions();
    Rep.run(StepBudget);
    if (CompiledAfter)
      *CompiledAfter = Rep.compiledInstructions() - CompiledAtAttach;
    ReplayOutcome R;
    R.Reason = Machine::StopReason::Halted;
    R.End = Rep.machine().snapshot();
    R.Output = Rep.machine().output();
    R.Replayed = Rep.replayedInstructions();
    R.Divergence = Rep.divergence().Kind;
    R.Cursor = Rep.cursor();
    return std::make_pair(R, std::make_pair(H.hash(), H.count()));
  };

  auto [InterpOut, InterpHash] = RunWithAttach(interpOnly(), nullptr);
  uint64_t CompiledWhileObserved = ~0ULL;
  auto [CompOut, CompHash] = RunWithAttach(compileEager(),
                                           &CompiledWhileObserved);
  expectSameOutcome(InterpOut, CompOut, "observer attach");
  EXPECT_EQ(InterpHash, CompHash) << "observer callback streams differ";
  // The deopt contract: not one instruction ran compiled while observed.
  EXPECT_EQ(CompiledWhileObserved, 0u);
}

/// Detaching the observer re-enables trace execution.
TEST(TraceCompiler, ObserverDetachReenablesTraces) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Pinball Pb = recordPinball(6, 33);
  uint64_t Total = Pb.instructionCount();
  ASSERT_GT(Total, 30u);

  Replayer Rep(Pb, compileEager());
  ASSERT_TRUE(Rep.valid());
  TraceHashObserver H;
  Rep.machine().addObserver(&H);
  EXPECT_EQ(Rep.replayChunk(Total / 3), Total / 3);
  EXPECT_EQ(Rep.compiledInstructions(), 0u);
  Rep.machine().removeObserver(&H);
  Rep.run(StepBudget);
  EXPECT_GT(Rep.compiledInstructions(), 0u);

  ReplayOutcome Interp = replayAll(Pb, interpOnly());
  EXPECT_TRUE(Interp.End == Rep.machine().snapshot());
  EXPECT_EQ(Interp.Output, Rep.machine().output());
}

//===----------------------------------------------------------------------===//
// Arithmetic edge semantics (docs/FORMATS.md)
//===----------------------------------------------------------------------===//

TEST(TraceCompiler, DivModEdgeSemanticsAgree) {
  // Every documented edge: div/mod by zero (result 0, counted), INT64_MIN
  // divided by -1 (two's-complement wrap), mod by -1 (always 0).
  Program P = assembleOrDie(
      ".func main\n"
      "  movi r1, 7\n  movi r2, 0\n"
      "  div r3, r1, r2\n  syswrite r3\n"  // 7/0 = 0
      "  mod r4, r1, r2\n  syswrite r4\n"  // 7%0 = 0
      "  movi r5, -9223372036854775808\n  movi r6, -1\n"
      "  div r7, r5, r6\n  syswrite r7\n"  // INT64_MIN/-1 wraps to itself
      "  mod r8, r5, r6\n  syswrite r8\n"  // INT64_MIN%-1 = 0
      "  divi r9, r1, 0\n  syswrite r9\n"
      "  modi r10, r1, 0\n  syswrite r10\n"
      "  neg r11, r5\n  syswrite r11\n"    // -INT64_MIN wraps to itself
      "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted);

  namespace mn = drdebug::metricnames;
  metrics::Counter &DivZero =
      metrics::MetricsRegistry::global().counter(mn::VmDivByZero);
  ReplayOutcome Interp = replayAll(Log.Pb, interpOnly());
  uint64_t AfterInterp = DivZero.value();
  std::vector<int64_t> Want = {0, 0, INT64_MIN, 0, 0, 0, INT64_MIN};
  EXPECT_EQ(Interp.Output, Want);

  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  ReplayOutcome Compiled = replayAll(Log.Pb, compileEager());
  expectSameOutcome(Interp, Compiled, "div/mod edges");
  // Both engines count the same four divide/mod-by-zero events per replay.
  EXPECT_EQ(DivZero.value() - AfterInterp, 4u);
}

//===----------------------------------------------------------------------===//
// Trace-cache sharing
//===----------------------------------------------------------------------===//

TEST(TraceCompiler, CacheSharedAcrossReplayersOfSameCode) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Pinball Pb = recordPinball(8, 44);
  Replayer A(Pb, compileEager());
  Replayer B(Pb, compileEager());
  ASSERT_TRUE(A.valid() && B.valid());
  // Same decoded code stream → the process-wide registry hands out the
  // same cache, so B warms up on A's traces.
  EXPECT_EQ(A.traceCache(), B.traceCache());
  A.run(StepBudget);
  size_t AfterA = A.traceCache()->compiledCount();
  B.run(StepBudget);
  EXPECT_TRUE(A.machine().snapshot() == B.machine().snapshot());
  // B compiled nothing new (everything was already published), or at most
  // entries A never reached — never fewer than A left behind.
  EXPECT_GE(B.traceCache()->compiledCount(), AfterA);
}

TEST(TraceCompiler, ConcurrentReplaysShareOneCache) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  // Parallel slice-prepare replays hammer one cache: N threads replay the
  // same pinball concurrently with eager compilation. Covered by the tsan
  // preset (scripts/verify.sh --sanitize).
  Pinball Pb = recordPinball(10, 55);
  ReplayOutcome Reference = replayAll(Pb, interpOnly());
  constexpr int N = 8;
  std::vector<std::unique_ptr<ReplayOutcome>> Results(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Replayer Rep(Pb, compileEager());
      if (!Rep.valid())
        return;
      auto R = std::make_unique<ReplayOutcome>();
      R->Reason = Rep.run(StepBudget);
      R->End = Rep.machine().snapshot();
      R->Output = Rep.machine().output();
      R->Replayed = Rep.replayedInstructions();
      R->Divergence = Rep.divergence().Kind;
      R->Cursor = Rep.cursor();
      Results[I] = std::move(R);
    });
  for (auto &T : Threads)
    T.join();
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Results[I], nullptr) << "replayer " << I << " was invalid";
    expectSameOutcome(Reference, *Results[I],
                      "concurrent replay " + std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// Checkpointed (reverse) replay over compiled traces
//===----------------------------------------------------------------------===//

TEST(TraceCompiler, CheckpointedSeeksMatchInterpreted) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Pinball Pb = recordPinball(11, 66);
  uint64_t Total = Pb.instructionCount();
  ASSERT_GT(Total, 100u);

  CheckpointOptions Interp;
  Interp.Interval = 64;
  Interp.Replay.CompileTraces = false;
  CheckpointOptions Comp;
  Comp.Interval = 64;
  Comp.Replay = compileEager();

  CheckpointedReplay A(Pb, Interp);
  CheckpointedReplay B(Pb, Comp);
  ASSERT_TRUE(A.valid() && B.valid());
  EXPECT_EQ(A.runForward(StepBudget), B.runForward(StepBudget));
  EXPECT_TRUE(A.machine().snapshot() == B.machine().snapshot());
  // Batched forward motion must leave the same checkpoint set behind.
  EXPECT_EQ(A.checkpointCount(), B.checkpointCount());

  // Seeks (backward = restore + compiled catch-up replay) land on
  // identical states at arbitrary positions.
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 12; ++I) {
    uint64_t Target = Rng() % (Total + 1);
    ASSERT_TRUE(A.seek(Target)) << A.lastError();
    ASSERT_TRUE(B.seek(Target)) << B.lastError();
    ASSERT_EQ(A.position(), B.position());
    ASSERT_TRUE(A.machine().snapshot() == B.machine().snapshot())
        << "seek to " << Target << " diverged";
  }
}

TEST(TraceCompiler, ReverseFindMatchesInterpreted) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Pinball Pb = recordPinball(13, 77);
  CheckpointOptions Interp;
  Interp.Interval = 128;
  Interp.Replay.CompileTraces = false;
  CheckpointOptions Comp;
  Comp.Interval = 128;
  Comp.Replay = compileEager();

  CheckpointedReplay A(Pb, Interp);
  CheckpointedReplay B(Pb, Comp);
  ASSERT_TRUE(A.valid() && B.valid());
  A.runForward(StepBudget);
  B.runForward(StepBudget);
  // Find the last point where thread 0 sat at an even pc with output
  // already emitted — an arbitrary but deterministic predicate. scanBackward
  // visits every position per segment, so its per-step path and the batched
  // seek path cross-check each other here.
  auto Pred = [](Machine &M) {
    return !M.output().empty() && M.thread(0).Pc % 2 == 0;
  };
  uint64_t HitA = A.reverseFind(Pred);
  uint64_t HitB = B.reverseFind(Pred);
  EXPECT_EQ(HitA, HitB);
  if (HitA != CheckpointedReplay::NotFound)
    EXPECT_TRUE(A.machine().snapshot() == B.machine().snapshot());
}

//===----------------------------------------------------------------------===//
// Flight-recorder interplay
//===----------------------------------------------------------------------===//

/// A pinball dumped by the always-on flight recorder replays identically
/// under both engines (the recorder's dumps are ordinary pinballs, but the
/// path start-state + partial epochs is worth pinning down).
TEST(TraceCompiler, FlightRecorderDumpReplaysCompiled) {
  if (!TraceExecutor::available())
    GTEST_SKIP() << "no computed-goto support on this compiler";
  Program P = generateRandomProgram(14, fuzzShape());
  RandomScheduler Sched(88, 1, 3);
  Machine M(P);
  M.setScheduler(&Sched);
  FlightOptions FO;
  FO.EpochInstrs = 256;
  FO.MaxEpochs = 8;
  FlightRecorder Rec(M, FO);
  M.run(StepBudget);
  Pinball Pb;
  std::string Error;
  ASSERT_TRUE(Rec.dump(Pb, Error)) << Error;

  ReplayOutcome Interp = replayAll(Pb, interpOnly());
  ReplayOutcome Compiled = replayAll(Pb, compileEager());
  expectSameOutcome(Interp, Compiled, "flight dump");
}

//===----------------------------------------------------------------------===//
// Compiler-level invariants
//===----------------------------------------------------------------------===//

TEST(TraceCompiler, SuperblockShapeInvariants) {
  Program P = generateRandomProgram(2, fuzzShape());
  DecodedProgram DP(P);
  TraceCache::Options O;
  for (uint64_t Pc = 0; Pc < DP.size(); ++Pc) {
    CompiledTrace Tr = TraceCompiler::compile(DP, Pc, O.MaxTraceInstrs);
    ASSERT_FALSE(Tr.Ops.empty());
    EXPECT_LE(Tr.NumInstrs, O.MaxTraceInstrs);
    const TraceOp &Last = Tr.Ops.back();
    // A trace ends in exactly one of: an explicit chain point carrying the
    // successor pc, or a terminator whose successor is data-dependent.
    bool EndsWithChain = Last.Code == XEndChain;
    bool EndsWithTerminator =
        (Last.Code >= XBeq && Last.Code <= XBge) || Last.Code == XIJmp ||
        Last.Code == XICall || Last.Code == XRet || Last.Code == XHalt;
    EXPECT_TRUE(EndsWithChain || EndsWithTerminator) << "entry pc " << Pc;
    // No interior op may be a terminator or chain point.
    for (size_t I = 0; I + 1 < Tr.Ops.size(); ++I) {
      EXPECT_NE(Tr.Ops[I].Code, XEndChain);
      EXPECT_FALSE(Tr.Ops[I].Code >= XBeq && Tr.Ops[I].Code <= XBge);
    }
  }
}

TEST(TraceCompiler, FingerprintIgnoresLinesMatchesCode) {
  // Two assemblies of the same source share a fingerprint and sameCode;
  // a one-instruction change breaks both.
  std::string Src = generateRandomSource(15, fuzzShape());
  Program A = assembleOrDie(Src);
  Program B = assembleOrDie(Src);
  DecodedProgram DA(A), DB(B);
  EXPECT_EQ(DA.fingerprint(), DB.fingerprint());
  EXPECT_TRUE(DA.sameCode(DB));

  Program C = assembleOrDie(".func main\n  movi r1, 1\n  halt\n.endfunc\n");
  DecodedProgram DC(C);
  EXPECT_FALSE(DA.sameCode(DC));
}

TEST(TraceCompiler, DisabledOptionNeverCompiles) {
  Pinball Pb = recordPinball(16, 99);
  Replayer Rep(Pb, interpOnly());
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.traceCache(), nullptr);
  Rep.run(StepBudget);
  EXPECT_EQ(Rep.compiledInstructions(), 0u);
  EXPECT_EQ(Rep.interpretedInstructions(), Rep.replayedInstructions());
}
