//===- tests/test_maple_more.cpp - Additional Maple-analog coverage -----------===//

#include "maple/active_scheduler.h"
#include "maple/maple.h"
#include "maple/profiler.h"
#include "replay/replayer.h"
#include "test_util.h"
#include "workloads/racebugs.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

TEST(ProfilerMore, ClassifiesAllThreeKinds) {
  // Deterministic cross-thread sequence on x:
  //   W_main (pc 2) -> R_t2 (pc 13) -> W_main (pc 8) -> W_t2 (pc 19)
  // giving observed iRoots of all three kinds.
  Program P = assembleOrDie(".data x 0\n.data f 0\n"
                            ".func main\n"
                            "  spawn r9, t2, r0\n" // 0
                            "  movi r1, 1\n"       // 1
                            "  sta r1, @x\n"       // 2: W_main #1
                            "  sta r1, @f\n"       // 3: f=1, release t2 read
                            "w:\n"
                            "  lda r2, @f\n"       // 4
                            "  movi r3, 2\n"       // 5
                            "  bne r2, r3, w\n"    // 6: wait f==2
                            "  movi r4, 5\n"       // 7
                            "  sta r4, @x\n"       // 8: W_main #2 (after R_t2)
                            "  movi r5, 3\n"       // 9
                            "  sta r5, @f\n"       // 10: f=3, release t2 write
                            "  join r9\n  halt\n.endfunc\n"
                            ".func t2\n"
                            "s1:\n"
                            "  lda r1, @f\n  movi r2, 1\n"
                            "  bne r1, r2, s1\n"
                            "  lda r3, @x\n"       // 16: R_t2 (after W_main #1)
                            "  movi r4, 2\n  sta r4, @f\n"
                            "s2:\n"
                            "  lda r5, @f\n  movi r6, 3\n"
                            "  bne r5, r6, s2\n"
                            "  movi r7, 9\n"
                            "  sta r7, @x\n"       // 23: W_t2 (after W_main #2)
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(2);
  Machine M(P);
  M.setScheduler(&Sched);
  IRootProfiler Prof;
  M.addObserver(&Prof);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);

  // Find the actual pcs of the x accesses instead of hard-coding them.
  uint64_t XAddr = P.findGlobal("x")->Addr;
  std::vector<std::pair<uint64_t, bool>> XAccessPcs; // (pc, isWrite)
  for (uint64_t Pc = 0; Pc != P.size(); ++Pc) {
    const Instruction &I = P.inst(Pc);
    if ((I.Op == Opcode::LdA || I.Op == Opcode::StA) &&
        I.Imm == static_cast<int64_t>(XAddr))
      XAccessPcs.emplace_back(Pc, I.Op == Opcode::StA);
  }
  ASSERT_EQ(XAccessPcs.size(), 4u);
  uint64_t WMain1 = XAccessPcs[0].first;
  uint64_t WMain2 = XAccessPcs[1].first;
  uint64_t RT2 = XAccessPcs[2].first;
  uint64_t WT2 = XAccessPcs[3].first;

  auto Has = [&](uint64_t A, uint64_t B, IRoot::Kind K) {
    IRoot R;
    R.PcA = A;
    R.PcB = B;
    R.K = K;
    return Prof.observed().count(R) == 1;
  };
  EXPECT_TRUE(Has(WMain1, RT2, IRoot::Kind::WriteRead));
  EXPECT_TRUE(Has(RT2, WMain2, IRoot::Kind::ReadWrite));
  EXPECT_TRUE(Has(WMain2, WT2, IRoot::Kind::WriteWrite));
}

TEST(ProfilerMore, ObservationsAccumulateAcrossRuns) {
  Program P = assembleOrDie(".data x 0\n"
                            ".func main\n"
                            "  spawn r1, w, r0\n"
                            "  movi r2, 1\n  sta r2, @x\n"
                            "  join r1\n  halt\n.endfunc\n"
                            ".func w\n  lda r1, @x\n  ret\n.endfunc\n");
  IRootProfiler Prof;
  size_t AfterFirst = 0;
  for (int Run = 0; Run != 4; ++Run) {
    Prof.resetRunState();
    RandomScheduler Sched(Run + 1, 1, 2);
    Machine M(P);
    M.setScheduler(&Sched);
    M.addObserver(&Prof);
    M.run();
    if (Run == 0)
      AfterFirst = Prof.observed().size();
  }
  // Different interleavings can only add observations, never remove.
  EXPECT_GE(Prof.observed().size(), AfterFirst);
}

TEST(ProfilerMore, PredictionsExcludeAlreadyObserved) {
  IRootProfiler Prof;
  // Drive both orders of the same conflict: after observing A->B and B->A,
  // no candidate remains for that pair.
  Program P = assembleOrDie(".data x 0\n.data f 0\n"
                            ".func main\n"
                            "  spawn r9, t2, r0\n"
                            "  movi r1, 1\n  sta r1, @x\n" // W at pc 2
                            "  sta r1, @f\n"
                            "w:\n  lda r2, @f\n  movi r3, 2\n"
                            "  bne r2, r3, w\n"
                            "  sta r1, @x\n"               // W again at pc 7
                            "  join r9\n  halt\n.endfunc\n"
                            ".func t2\n"
                            "s:\n  lda r1, @f\n  beq r1, r0, s\n"
                            "  movi r2, 3\n  sta r2, @x\n" // W_t2
                            "  movi r3, 2\n  sta r3, @f\n"
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(2);
  Machine M(P);
  M.setScheduler(&Sched);
  M.addObserver(&Prof);
  M.run();
  for (const IRoot &Candidate : Prof.predictCandidates())
    EXPECT_EQ(Prof.observed().count(Candidate), 0u)
        << "predicted an already-observed iRoot: " << Candidate.str();
}

TEST(ActiveSchedulerMore, GivesUpWhenOnlyDelayedThreadsRemain) {
  // Candidate whose PcA never executes: the delayed thread must still
  // finish (periodic release + only-PcB fallback), no livelock.
  Program P = assembleOrDie(".data x 0\n"
                            ".func main\n"
                            "  spawn r1, w, r0\n"
                            "  join r1\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  lda r1, @x\n" // pc 4: PcB
                            "  ret\n.endfunc\n");
  IRoot Candidate;
  Candidate.PcA = 999; // never executed
  Candidate.PcB = 4;
  ActiveScheduler Sched(Candidate, 3);
  Machine M(P);
  M.setScheduler(&Sched);
  EXPECT_EQ(M.run(100000), Machine::StopReason::Halted);
  EXPECT_FALSE(Sched.forcedOrder());
}

TEST(ActiveSchedulerMore, PeriodicReleaseKeepsDependentProgress) {
  // PcA is *causally after* the delayed PcB thread's work (the pbzip2
  // shape): without periodic release this would livelock.
  RaceBugScale Scale;
  Scale.PreWork = 20;
  Scale.Items = 4;
  Program P = makePbzip2Analog(Scale);
  // Find the compressor's mutvalid load (PcB) and main's destroy (PcA).
  uint64_t LoadPc = ~0ULL, StorePc = ~0ULL;
  const GlobalVar *MutValid = P.findGlobal("mutvalid");
  for (uint64_t Pc = 0; Pc != P.size(); ++Pc) {
    const Instruction &I = P.inst(Pc);
    if (I.Op == Opcode::LdA && I.Imm == (int64_t)MutValid->Addr)
      LoadPc = Pc;
    if (I.Op == Opcode::StA && I.Imm == (int64_t)MutValid->Addr)
      StorePc = Pc;
  }
  ASSERT_NE(LoadPc, ~0ULL);
  ASSERT_NE(StorePc, ~0ULL);
  IRoot Candidate;
  Candidate.PcA = StorePc;
  Candidate.PcB = LoadPc;
  Candidate.K = IRoot::Kind::WriteRead;
  ActiveScheduler Sched(Candidate, 11);
  Machine M(P);
  M.setScheduler(&Sched);
  Machine::StopReason Reason = M.run(3'000'000);
  EXPECT_EQ(Reason, Machine::StopReason::AssertFailed)
      << "forcing destroy-before-use must expose the pbzip2 bug, got "
      << stopReasonName(Reason);
}

TEST(MapleMore, ExposesAgetLostUpdate) {
  RaceBugScale Scale;
  Scale.PreWork = 20;
  Scale.Items = 4;
  Program P = makeAgetAnalog(Scale);
  MapleOptions Opts;
  Opts.ProfileRuns = 3;
  Opts.MaxAttempts = 128;
  Opts.Seed = 2;
  MapleResult Result = mapleExposeAndRecord(P, Opts);
  ASSERT_TRUE(Result.Exposed);
  Replayer Rep(Result.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
}

TEST(MapleMore, CandidateListIsDeterministic) {
  Program P = makeAgetAnalog();
  auto Observe = [&] {
    IRootProfiler Prof;
    for (int Run = 0; Run != 2; ++Run) {
      Prof.resetRunState();
      RandomScheduler Sched(Run + 5, 1, 3);
      Machine M(P);
      M.setScheduler(&Sched);
      M.addObserver(&Prof);
      M.run(2'000'000);
    }
    return Prof.predictCandidates();
  };
  auto A = Observe();
  auto B = Observe();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I], B[I]);
}

} // namespace
