//===- tests/test_watchpoints.cpp - Watchpoint tests --------------------------===//

#include "debugger/session.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace drdebug;
using namespace drdebug::workloads;

namespace {

struct Fixture {
  std::ostringstream Out;
  DebugSession S{Out};
  std::string take() {
    std::string Text = Out.str();
    Out.str("");
    return Text;
  }
};

const char *CounterProg = ".data g 0\n"
                          ".func main\n"
                          "  movi r1, 3\n"
                          "l:\n"
                          "  lda r2, @g\n"
                          "  addi r2, r2, 10\n"
                          "  sta r2, @g\n"   // writes 10, 20, 30
                          "  subi r1, r1, 1\n"
                          "  bgt r1, r0, l\n"
                          "  halt\n.endfunc\n";

TEST(Watchpoints, StopOnEachWrite) {
  Fixture F;
  F.S.loadProgramText(CounterProg);
  F.S.execute("watch g");
  std::string Text = F.take();
  EXPECT_NE(Text.find("watchpoint 1 on g"), std::string::npos) << Text;

  F.S.execute("run");
  Text = F.take();
  EXPECT_NE(Text.find("watchpoint 1 (g): new value 10"), std::string::npos)
      << Text;
  F.S.execute("continue");
  Text = F.take();
  EXPECT_NE(Text.find("new value 20"), std::string::npos) << Text;
  F.S.execute("continue");
  EXPECT_NE(F.take().find("new value 30"), std::string::npos);
  F.S.execute("continue");
  EXPECT_NE(F.take().find("program exited"), std::string::npos);
}

TEST(Watchpoints, UnknownGlobalRejected) {
  Fixture F;
  F.S.loadProgramText(CounterProg);
  F.S.execute("watch nope");
  EXPECT_NE(F.take().find("unknown global"), std::string::npos);
}

TEST(Watchpoints, UnwatchRemoves) {
  Fixture F;
  F.S.loadProgramText(CounterProg);
  F.S.execute("watch g");
  F.S.execute("unwatch 1");
  F.take();
  F.S.execute("info watchpoints");
  EXPECT_NE(F.take().find("no watchpoints"), std::string::npos);
  F.S.execute("run");
  EXPECT_NE(F.take().find("program exited"), std::string::npos);
}

TEST(Watchpoints, InfoListsWatchpoints) {
  Fixture F;
  F.S.loadProgramText(CounterProg);
  F.S.execute("watch g");
  F.take();
  F.S.execute("info watchpoints");
  EXPECT_NE(F.take().find("1: g (address"), std::string::npos);
}

/// The paper's use case: during replay of the Figure 5 race, watching x
/// stops exactly at the racy write in the other thread.
TEST(Watchpoints, CatchRacyWriteDuringReplay) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  Fixture F;
  F.S.loadProgramText(P.SourceText);
  F.S.execute("record failure");
  F.S.execute("watch x");
  F.take();
  F.S.execute("replay");
  std::string Text = F.take();
  EXPECT_NE(Text.find("watchpoint 1 (x): new value 6"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("line " + std::to_string(Lines.RacyWriteLine)),
            std::string::npos)
      << Text;
  // And the stop is deterministic: replay again, same stop.
  F.S.execute("replay");
  Text = F.take();
  EXPECT_NE(Text.find("watchpoint 1 (x): new value 6"), std::string::npos);
  // Continuing reaches the failure.
  F.S.execute("continue");
  EXPECT_NE(F.take().find("assertion FAILED"), std::string::npos);
}

TEST(Watchpoints, RegisterWritesDoNotTrigger) {
  Fixture F;
  F.S.loadProgramText(".data g 77\n"
                      ".func main\n"
                      "  lda r1, @g\n" // reads g, writes a register
                      "  addi r1, r1, 1\n"
                      "  halt\n.endfunc\n");
  F.S.execute("watch g");
  F.take();
  F.S.execute("run");
  EXPECT_NE(F.take().find("program exited"), std::string::npos)
      << "reads/register writes must not trigger a memory watchpoint";
}

} // namespace
