//===- tests/test_save_restore.cpp - Save/restore pair detection tests ------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/save_restore.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

TraceSet recordTraces(const Program &P, std::unique_ptr<Program> &Keep) {
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched, nullptr);
  Replayer Rep(Log.Pb);
  EXPECT_TRUE(Rep.valid());
  Keep = std::make_unique<Program>(Rep.program());
  TraceSet Traces(*Keep);
  Rep.machine().addObserver(&Traces);
  Rep.run();
  return Traces;
}

/// Classic callee-save prologue/epilogue.
Program makeCalleeSaveProgram() {
  return assembleOrDie(".func main\n"
                       "  movi r1, 7\n"
                       "  movi r2, 9\n"
                       "  call q\n"
                       "  add r4, r1, r2\n"
                       "  syswrite r4\n"
                       "  halt\n.endfunc\n"
                       ".func q\n"  // entry at pc 6
                       "  push r1\n" // 6: save r1
                       "  push r2\n" // 7: save r2
                       "  movi r1, 100\n"
                       "  movi r2, 200\n"
                       "  add r3, r1, r2\n"
                       "  pop r2\n"  // 11: restore r2
                       "  pop r1\n"  // 12: restore r1
                       "  ret\n.endfunc\n");
}

TEST(SaveRestore, StaticCandidates) {
  Program P = makeCalleeSaveProgram();
  SaveRestoreAnalysis SR(P, 10);
  uint64_t QEntry = P.entryOf("q");
  EXPECT_EQ(SR.saveCandidates().count(QEntry), 1u);
  EXPECT_EQ(SR.saveCandidates().count(QEntry + 1), 1u);
  EXPECT_EQ(SR.saveCandidates().count(QEntry + 2), 0u) << "movi is no save";
  EXPECT_EQ(SR.restoreCandidates().count(QEntry + 5), 1u);
  EXPECT_EQ(SR.restoreCandidates().count(QEntry + 6), 1u);
  // main has no push prologue.
  EXPECT_EQ(SR.saveCandidates().count(P.entryOf("main")), 0u);
}

TEST(SaveRestore, MaxSaveCapsCandidates) {
  Program P = makeCalleeSaveProgram();
  SaveRestoreAnalysis SR(P, 1);
  uint64_t QEntry = P.entryOf("q");
  EXPECT_EQ(SR.saveCandidates().count(QEntry), 1u);
  EXPECT_EQ(SR.saveCandidates().count(QEntry + 1), 0u) << "capped at 1";
}

TEST(SaveRestore, VerifiesMatchingPairs) {
  Program P = makeCalleeSaveProgram();
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());

  ASSERT_EQ(SR.pairs().size(), 2u);
  // Pairs are (push r1, pop r1) and (push r2, pop r2) in the same frame.
  for (const SaveRestorePair &Pair : SR.pairs()) {
    const auto &E = TS.threads()[0].Entries;
    EXPECT_EQ(E[Pair.SaveIdx].Op, Opcode::Push);
    EXPECT_EQ(E[Pair.RestoreIdx].Op, Opcode::Pop);
    EXPECT_TRUE(SR.isVerifiedRestore(0, Pair.RestoreIdx));
    EXPECT_EQ(SR.saveOf(0, Pair.RestoreIdx), Pair.SaveIdx);
  }
  EXPECT_NE(SR.pairs()[0].Reg, SR.pairs()[1].Reg);
}

TEST(SaveRestore, ValueMismatchRejectsPair) {
  // The "restore" pops a different value (the function pushes, overwrites
  // the slot via sp-relative store, then pops): must NOT verify.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 7\n"
                            "  call q\n"
                            "  syswrite r1\n"
                            "  halt\n.endfunc\n"
                            ".func q\n"
                            "  push r1\n"     // candidate save
                            "  movi r2, 55\n"
                            "  st r2, [sp]\n" // clobber the saved slot
                            "  pop r1\n"      // candidate restore: value 55
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  EXPECT_TRUE(SR.pairs().empty());
}

TEST(SaveRestore, RegisterMismatchRejectsPair) {
  // Pushes r1 but pops into r3: a data move, not a save/restore.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 7\n"
                            "  call q\n"
                            "  syswrite r3\n"
                            "  halt\n.endfunc\n"
                            ".func q\n"
                            "  push r1\n"
                            "  pop r3\n"
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  EXPECT_TRUE(SR.pairs().empty());
}

TEST(SaveRestore, CrossFrameNeverPairs) {
  // The push happens in the caller, the pop in the callee: same register,
  // same value, but different activations — must not pair.
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 7\n"
                            "  call outer\n"
                            "  halt\n.endfunc\n"
                            ".func outer\n"
                            "  push r1\n"
                            "  call inner\n"
                            "  pop r1\n"
                            "  ret\n.endfunc\n"
                            ".func inner\n"
                            "  pop r1\n"  // pops outer's saved slot!
                            "  push r1\n" // and pushes it back
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  // inner's pop reads outer's save slot with the same value/register but in
  // a different frame; outer's own pop now pops what inner pushed. The only
  // legitimate pair is outer's push with outer's pop (same value round-
  // tripped through inner), which the frame rule still accepts; inner's pop
  // must not pair with outer's push.
  for (const SaveRestorePair &Pair : SR.pairs()) {
    const auto &E = TS.threads()[0].Entries;
    // Save and restore must be in the same function activation: the save's
    // pc and restore's pc belong to the same function here.
    const Function *FSave = Keep->functionAt(E[Pair.SaveIdx].Pc);
    const Function *FRestore = Keep->functionAt(E[Pair.RestoreIdx].Pc);
    EXPECT_EQ(FSave, FRestore);
  }
}

TEST(SaveRestore, RecursionPairsPerActivation) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 3\n"
                            "  call f\n"
                            "  halt\n.endfunc\n"
                            ".func f\n"
                            "  push r1\n"
                            "  ble r1, r0, base\n"
                            "  subi r1, r1, 1\n"
                            "  call f\n"
                            "base:\n"
                            "  pop r1\n"
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  // 4 activations (r1 = 3,2,1,0), each with its own verified pair.
  EXPECT_EQ(SR.pairs().size(), 4u);
}

TEST(SaveRestore, StSpLdSpShapesAlsoQualify) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 7\n"
                            "  call q\n"
                            "  syswrite r1\n  halt\n.endfunc\n"
                            ".func q\n"
                            "  subi sp, sp, 1\n" // frame alloc is NOT a save
                            "  st r1, [sp]\n"    // save via store
                            "  movi r1, 9\n"
                            "  ld r1, [sp]\n"    // restore via load
                            "  addi sp, sp, 1\n"
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  // The subi-sp prologue stops the save scan at function entry... the save
  // candidate window only covers a leading run of push-type instructions,
  // so `st r1,[sp]` at position 2 is not a candidate and nothing pairs.
  // This documents the (conservative) candidate rule.
  EXPECT_TRUE(SR.pairs().empty());
}

TEST(SaveRestore, MultithreadedPairsCarryTid) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 5\n"
                            "  spawn r2, w, r1\n"
                            "  call q\n"
                            "  join r2\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  mov r1, r0\n"
                            "  call q\n"
                            "  ret\n.endfunc\n"
                            ".func q\n"
                            "  push r1\n"
                            "  movi r1, 1\n"
                            "  pop r1\n"
                            "  ret\n.endfunc\n");
  std::unique_ptr<Program> Keep;
  TraceSet TS = recordTraces(P, Keep);
  SaveRestoreAnalysis SR(*Keep, 10);
  SR.run(TS.threads());
  ASSERT_EQ(SR.pairs().size(), 2u);
  EXPECT_NE(SR.pairs()[0].Tid, SR.pairs()[1].Tid);
}

} // namespace
