//===- tests/test_pinball.cpp - Pinball serialization tests -----------------===//

#include "replay/pinball.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

class PinballTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("drdebug_pinball_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }
  std::filesystem::path Dir;
};

Pinball makeSamplePinball() {
  Program P = assembleOrDie(".data g 3\n.func main\n  nop\n  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  M.run(1);

  Pinball Pb;
  Pb.ProgramText = P.SourceText;
  Pb.StartState = M.snapshot();
  Pb.appendStep(0);
  Pb.appendStep(0);
  Pb.appendStep(1);
  Pb.appendInject(0);
  Pb.appendStep(0);
  Pb.Syscalls.push_back({0, Opcode::SysRead, 42});
  Pb.Syscalls.push_back({1, Opcode::SysRand, -5});
  Injection Inj;
  Inj.Id = 0;
  Inj.Tid = 1;
  Inj.ResumePc = 7;
  Inj.MemWrites = {{100, 1}, {200, -2}};
  Inj.RegWrites = {{3, 9}};
  Pb.Injections.push_back(Inj);
  Pb.Meta["kind"] = "slice";
  Pb.Meta["note"] = "sample";
  return Pb;
}

TEST_F(PinballTest, StepCoalescing) {
  Pinball Pb;
  Pb.appendStep(0);
  Pb.appendStep(0);
  Pb.appendStep(1);
  Pb.appendStep(0);
  ASSERT_EQ(Pb.Schedule.size(), 3u);
  EXPECT_EQ(Pb.Schedule[0].Count, 2u);
  EXPECT_EQ(Pb.instructionCount(), 4u);
}

TEST_F(PinballTest, InjectBreaksCoalescing) {
  Pinball Pb;
  Pb.appendStep(0);
  Pb.appendInject(5);
  Pb.appendStep(0);
  ASSERT_EQ(Pb.Schedule.size(), 3u);
  EXPECT_EQ(Pb.Schedule[1].K, ScheduleEvent::Kind::Inject);
  EXPECT_EQ(Pb.Schedule[1].InjectId, 5u);
}

TEST_F(PinballTest, SaveLoadRoundTrip) {
  Pinball Pb = makeSamplePinball();
  std::string Error;
  ASSERT_TRUE(Pb.save(Dir.string(), Error)) << Error;

  Pinball Loaded;
  ASSERT_TRUE(Loaded.load(Dir.string(), Error)) << Error;

  EXPECT_EQ(Loaded.ProgramText, Pb.ProgramText);
  EXPECT_TRUE(Loaded.StartState == Pb.StartState);
  ASSERT_EQ(Loaded.Schedule.size(), Pb.Schedule.size());
  for (size_t I = 0; I != Pb.Schedule.size(); ++I) {
    EXPECT_EQ(Loaded.Schedule[I].K, Pb.Schedule[I].K);
    EXPECT_EQ(Loaded.Schedule[I].Tid, Pb.Schedule[I].Tid);
    EXPECT_EQ(Loaded.Schedule[I].Count, Pb.Schedule[I].Count);
  }
  ASSERT_EQ(Loaded.Syscalls.size(), 2u);
  EXPECT_EQ(Loaded.Syscalls[0].Value, 42);
  EXPECT_EQ(Loaded.Syscalls[1].Op, Opcode::SysRand);
  ASSERT_EQ(Loaded.Injections.size(), 1u);
  EXPECT_EQ(Loaded.Injections[0].ResumePc, 7u);
  ASSERT_EQ(Loaded.Injections[0].MemWrites.size(), 2u);
  EXPECT_EQ(Loaded.Injections[0].MemWrites[1].second, -2);
  ASSERT_EQ(Loaded.Injections[0].RegWrites.size(), 1u);
  EXPECT_EQ(Loaded.Injections[0].RegWrites[0].first, 3u);
  EXPECT_EQ(Loaded.Meta.at("kind"), "slice");
  EXPECT_EQ(Loaded.Meta.at("note"), "sample");
}

TEST_F(PinballTest, DiskSizeIsPositiveAfterSave) {
  Pinball Pb = makeSamplePinball();
  std::string Error;
  ASSERT_TRUE(Pb.save(Dir.string(), Error)) << Error;
  EXPECT_GT(Pinball::diskSizeBytes(Dir.string()), 0u);
}

TEST_F(PinballTest, LoadFromMissingDirectoryFails) {
  Pinball Pb;
  std::string Error;
  EXPECT_FALSE(Pb.load((Dir / "nope").string(), Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(PinballTest, NoResumeSentinelSurvivesRoundTrip) {
  Pinball Pb = makeSamplePinball();
  Pb.Injections[0].ResumePc = Injection::NoResume;
  std::string Error;
  ASSERT_TRUE(Pb.save(Dir.string(), Error)) << Error;
  Pinball Loaded;
  ASSERT_TRUE(Loaded.load(Dir.string(), Error)) << Error;
  EXPECT_EQ(Loaded.Injections[0].ResumePc, Injection::NoResume);
}

} // namespace
