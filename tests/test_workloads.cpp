//===- tests/test_workloads.cpp - Workload construction tests ----------------===//

#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "test_util.h"
#include "workloads/figure5.h"
#include "workloads/parsec.h"
#include "workloads/racebugs.h"
#include "workloads/specomp.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

TEST(Workloads, Figure5AlwaysFails) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    Program P = makeFigure5(nullptr);
    RandomScheduler Sched(Seed, 1, 3);
    Machine M(P);
    M.setScheduler(&Sched);
    EXPECT_EQ(M.run(1'000'000), Machine::StopReason::AssertFailed);
  }
}

//===----------------------------------------------------------------------===//
// Race bugs (Table 1)
//===----------------------------------------------------------------------===//

TEST(RaceBugs, SuiteHasTableOneEntries) {
  auto Suite = makeRaceBugSuite();
  ASSERT_EQ(Suite.size(), 3u);
  EXPECT_EQ(Suite[0].Name, "pbzip2");
  EXPECT_EQ(Suite[1].Name, "Aget");
  EXPECT_EQ(Suite[2].Name, "mozilla");
  for (const RaceBug &Bug : Suite)
    EXPECT_FALSE(Bug.Description.empty());
}

class RaceBugTest : public ::testing::TestWithParam<int> {};

TEST_P(RaceBugTest, IsScheduleDependentAndSliceable) {
  RaceBugScale Scale;
  Scale.PreWork = 60;
  auto Suite = makeRaceBugSuite(Scale);
  const RaceBug &Bug = Suite[static_cast<size_t>(GetParam())];

  // Schedule-dependent: some seed fails...
  auto Failing = findFailingSeed(Bug.Prog, 300, 2'000'000);
  ASSERT_TRUE(Failing.has_value()) << Bug.Name << " never failed";
  // ...and some seed passes (for the two narrow races at least; the
  // mozilla analog crashes on most schedules, like the original).
  bool SomePassed = false;
  for (uint64_t Seed = 1; Seed <= 50 && !SomePassed; ++Seed) {
    RandomScheduler Sched(Seed, 1, 3);
    Machine M(Bug.Prog);
    M.setScheduler(&Sched);
    if (M.run(2'000'000) == Machine::StopReason::Halted)
      SomePassed = true;
  }
  if (Bug.Name != "mozilla")
    EXPECT_TRUE(SomePassed) << Bug.Name << " failed on every seed";

  // Record the failing run, replay it, and slice at the failure: the root
  // cause must appear in the slice in a *different thread* than the
  // symptom (they are all cross-thread races).
  RandomScheduler Sched(*Failing, 1, 3);
  LogResult Log = Logger::logWholeProgram(Bug.Prog, Sched);
  ASSERT_TRUE(Log.FailureCaptured);

  SliceSession S(Log.Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C.has_value());
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl.has_value());
  bool CrossThread = false;
  for (uint32_t Pos : Sl->Positions)
    if (S.globalTrace().ref(Pos).Tid != C->Tid)
      CrossThread = true;
  EXPECT_TRUE(CrossThread) << Bug.Name << ": slice never left the "
                              "failing thread";
}

INSTANTIATE_TEST_SUITE_P(AllBugs, RaceBugTest, ::testing::Values(0, 1, 2));

TEST(RaceBugs, ScaleControlsExecutionLength) {
  RaceBugScale Small, Large;
  Small.PreWork = 10;
  Large.PreWork = 1000;
  auto CountInstrs = [](const Program &P) {
    RoundRobinScheduler Sched(4);
    Machine M(P);
    M.setScheduler(&Sched);
    M.run(10'000'000);
    return M.globalCount();
  };
  EXPECT_GT(CountInstrs(makeAgetAnalog(Large)),
            2 * CountInstrs(makeAgetAnalog(Small)));
}

//===----------------------------------------------------------------------===//
// PARSEC analogs
//===----------------------------------------------------------------------===//

class ParsecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParsecTest, RunsLogsAndReplays) {
  ParsecParams Params;
  Params.Threads = 4;
  Params.Iters = 300;
  Program P = makeParsecAnalog(GetParam(), Params);

  // Runs to completion with 4 threads.
  RandomScheduler Sched(11, 1, 3);
  Machine M(P);
  M.setScheduler(&Sched);
  ASSERT_EQ(M.run(10'000'000), Machine::StopReason::Halted) << GetParam();
  EXPECT_EQ(M.numThreads(), 4u);
  // All threads did comparable kernel work.
  for (uint32_t T = 0; T != 4; ++T)
    EXPECT_GT(M.thread(T).ExecCount, Params.Iters * 2) << GetParam();

  // Region logging + replay: the Figure 11/12 path.
  RandomScheduler Sched2(11, 1, 3);
  RegionSpec Spec;
  Spec.SkipMainInstrs = 100;
  Spec.LengthMainInstrs = 500;
  LogResult Log = Logger::logRegion(P, Sched2, nullptr, Spec);
  EXPECT_EQ(Log.MainThreadInstrs, 500u);
  EXPECT_GT(Log.TotalInstrs, Log.MainThreadInstrs)
      << "other threads must be active in the region";
  Replayer Rep(Log.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(Rep.replayedInstructions(), Log.TotalInstrs);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ParsecTest,
                         ::testing::ValuesIn(parsecNames()));

TEST(Parsec, EightBenchmarks) {
  EXPECT_EQ(parsecNames().size(), 8u);
}

TEST(Parsec, ForLengthSizesTheMainThread) {
  Program P = makeParsecAnalogForLength("blackscholes", 5000, 2);
  RoundRobinScheduler Sched(2);
  RegionSpec Spec;
  Spec.LengthMainInstrs = 5000;
  LogResult Log = Logger::logRegion(P, Sched, nullptr, Spec);
  EXPECT_EQ(Log.MainThreadInstrs, 5000u);
}

//===----------------------------------------------------------------------===//
// SPEC OMP analogs
//===----------------------------------------------------------------------===//

class SpecOmpTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SpecOmpTest, PruningShrinksSlices) {
  Program P = makeSpecOmpAnalog(GetParam(), /*Threads=*/2, /*Iters=*/60);
  RoundRobinScheduler Sched(3);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted) << GetParam();

  auto SliceSizeWithPruning = [&](bool Prune) {
    SliceSessionOptions Opts;
    Opts.PruneSaveRestore = Prune;
    SliceSession S(Log.Pb, Opts);
    std::string Error;
    EXPECT_TRUE(S.prepare(Error)) << Error;
    // Criterion: the program's final output (the accumulated checksum).
    auto C = S.lastLoadCriteria(1);
    EXPECT_EQ(C.size(), 1u);
    auto Sl = S.computeSlice(C[0]);
    EXPECT_TRUE(Sl.has_value());
    return Sl->dynamicSize();
  };
  size_t Unpruned = SliceSizeWithPruning(false);
  size_t Pruned = SliceSizeWithPruning(true);
  EXPECT_LT(Pruned, Unpruned)
      << GetParam() << ": save/restore pruning had no effect";
  double Reduction = 100.0 * (Unpruned - Pruned) / Unpruned;
  EXPECT_GT(Reduction, 0.5) << GetParam();
  EXPECT_LT(Reduction, 60.0) << GetParam() << ": implausibly large reduction";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SpecOmpTest,
                         ::testing::ValuesIn(specOmpNames()));

TEST(SpecOmp, FiveBenchmarks) {
  EXPECT_EQ(specOmpNames().size(), 5u);
}

TEST(SpecOmp, VerifiedPairsExist) {
  Program P = makeSpecOmpAnalog("ammp", 1, 30);
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  SliceSession S(Log.Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  EXPECT_GT(S.saveRestore().pairs().size(), 10u)
      << "call-dense kernel must produce many verified pairs";
}

} // namespace
