//===- tests/test_slicer_more.cpp - Additional slicing coverage ---------------===//

#include "replay/logger.h"
#include "slicing/slicer.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

struct Prepared {
  std::unique_ptr<SliceSession> S;
  explicit Prepared(const Program &P, uint64_t Seed = 1,
                    std::vector<int64_t> Input = {}) {
    RandomScheduler Sched(Seed, 1, 3);
    DefaultSyscalls World(Seed);
    World.setInput(std::move(Input));
    LogResult Log = Logger::logWholeProgram(P, Sched, &World);
    S = std::make_unique<SliceSession>(Log.Pb);
    std::string Error;
    EXPECT_TRUE(S->prepare(Error)) << Error;
  }
};

TEST(SlicerMore, RegisterLocationCriterion) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 5\n"  // line 2: feeds r1
                            "  movi r2, 6\n"  // line 3: feeds r2
                            "  add r3, r1, r2\n" // line 4: criterion stmt
                            "  halt\n.endfunc\n");
  Prepared PS(P);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 2;
  C.Locs = {regLoc(0, 1)}; // slice only on r1's value at the add
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = Sl->sourceLines(PS.S->globalTrace());
  EXPECT_TRUE(Lines.count(2));
  EXPECT_FALSE(Lines.count(3)) << "r2's def must stay out";
}

TEST(SlicerMore, AtomicAddChainsAcrossThreads) {
  Program P = assembleOrDie(".data c 0\n"
                            ".func main\n"
                            "  spawn r1, w, r0\n"
                            "  lea r2, @c\n"
                            "  movi r3, 10\n"
                            "  atomicadd r4, [r2], r3\n" // pc 3
                            "  join r1\n"
                            "  lda r5, @c\n"  // pc 5: criterion
                            "  syswrite r5\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  lea r2, @c\n"
                            "  movi r3, 100\n"
                            "  atomicadd r4, [r2], r3\n" // pc 10
                            "  ret\n.endfunc\n");
  Prepared PS(P, 5);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 5;
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  // Both atomic adds feed the final value (each reads the other's effect
  // or the initial zero) — both must be in the slice.
  bool SawMain = false, SawWorker = false;
  for (uint32_t Pos : Sl->Positions) {
    const TraceEntry &E = PS.S->globalTrace().entry(Pos);
    if (E.Op != Opcode::AtomicAdd)
      continue;
    if (PS.S->globalTrace().ref(Pos).Tid == 0)
      SawMain = true;
    else
      SawWorker = true;
  }
  EXPECT_TRUE(SawMain);
  EXPECT_TRUE(SawWorker);
}

TEST(SlicerMore, SyscallValuesAreSliceSources) {
  Program P = assembleOrDie(".func main\n"
                            "  sysread r1\n"     // line 2: source
                            "  addi r2, r1, 1\n" // line 3
                            "  syswrite r2\n"    // line 4: criterion
                            "  halt\n.endfunc\n");
  Prepared PS(P, 1, {41});
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 2;
  auto Sl = PS.S->computeSlice(C);
  ASSERT_TRUE(Sl);
  auto Lines = Sl->sourceLines(PS.S->globalTrace());
  EXPECT_TRUE(Lines.count(2)) << "the sysread is the value's origin";
  EXPECT_EQ(Sl->dynamicSize(), 3u);
}

TEST(SlicerMore, ThreeThreadChain) {
  // T1 -> T2 -> main: the slice follows values through two spawned threads.
  Program P = assembleOrDie(
      ".data a 0\n.data b 0\n.data f1 0\n.data f2 0\n"
      ".func main\n"
      "  spawn r1, t1, r0\n"
      "  spawn r2, t2, r0\n"
      "  join r1\n  join r2\n"
      "  lda r3, @b\n"      // criterion: b == (a's producer value + 1)
      "  syswrite r3\n"
      "  halt\n.endfunc\n"
      ".func t1\n"
      "  movi r1, 7\n"      // origin value
      "  sta r1, @a\n"
      "  movi r2, 1\n  sta r2, @f1\n"
      "  ret\n.endfunc\n"
      ".func t2\n"
      "s:\n  lda r1, @f1\n  beq r1, r0, s\n"
      "  lda r2, @a\n"      // reads t1's value
      "  addi r2, r2, 1\n"
      "  sta r2, @b\n"
      "  ret\n.endfunc\n");
  Prepared PS(P, 3);
  auto Criteria = PS.S->lastLoadCriteria(1); // the lda @b in main
  ASSERT_EQ(Criteria.size(), 1u);
  auto Sl = PS.S->computeSlice(Criteria[0]);
  ASSERT_TRUE(Sl);
  std::set<uint32_t> Tids;
  for (uint32_t Pos : Sl->Positions)
    Tids.insert(PS.S->globalTrace().ref(Pos).Tid);
  EXPECT_EQ(Tids.size(), 3u) << "slice must span all three threads";
}

TEST(SlicerMore, RepeatedQueriesAreIdentical) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  movi r1, 3\n"
                            "l:\n  lda r2, @g\n  add r2, r2, r1\n"
                            "  sta r2, @g\n  subi r1, r1, 1\n"
                            "  bgt r1, r0, l\n"
                            "  halt\n.endfunc\n");
  Prepared PS(P);
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 3;
  C.Instance = 3;
  auto A = PS.S->computeSlice(C);
  auto B = PS.S->computeSlice(C);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Positions, B->Positions);
  EXPECT_EQ(A->Edges.size(), B->Edges.size());
}

TEST(SlicerMore, DisjointCriteriaGiveDisjointChains) {
  Program P = assembleOrDie(".data x 0\n.data y 0\n"
                            ".func main\n"
                            "  movi r1, 1\n  sta r1, @x\n" // chain X
                            "  movi r2, 2\n  sta r2, @y\n" // chain Y
                            "  lda r3, @x\n"  // pc 4
                            "  lda r4, @y\n"  // pc 5
                            "  halt\n.endfunc\n");
  Prepared PS(P);
  SliceCriterion CX, CY;
  CX.Tid = CY.Tid = 0;
  CX.Pc = 4;
  CY.Pc = 5;
  auto SX = PS.S->computeSlice(CX);
  auto SY = PS.S->computeSlice(CY);
  ASSERT_TRUE(SX && SY);
  for (uint32_t Pos : SX->Positions)
    if (Pos != SX->CriterionPos)
      EXPECT_FALSE(SY->contains(Pos))
          << "independent chains must not overlap";
}

TEST(SlicerMore, ForwardSliceOfSyscallCoversConsumers) {
  Program P = assembleOrDie(".data g 0\n"
                            ".func main\n"
                            "  sysread r1\n"      // pos 0
                            "  sta r1, @g\n"      // uses it
                            "  lda r2, @g\n"      // transitively
                            "  addi r2, r2, 1\n"
                            "  syswrite r2\n"
                            "  movi r9, 5\n"      // unrelated
                            "  halt\n.endfunc\n");
  Prepared PS(P, 1, {9});
  Slice Fwd = PS.S->computeForwardSliceAt(0);
  EXPECT_EQ(Fwd.dynamicSize(), 5u);
}

TEST(SlicerMore, CriterionPositionResolvesInstances) {
  Program P = assembleOrDie(".func main\n"
                            "  movi r1, 3\n"
                            "l:\n  subi r1, r1, 1\n" // pc 1, runs 3x
                            "  bgt r1, r0, l\n"
                            "  halt\n.endfunc\n");
  Prepared PS(P);
  for (uint64_t Inst = 1; Inst <= 3; ++Inst) {
    SliceCriterion C;
    C.Tid = 0;
    C.Pc = 1;
    C.Instance = Inst;
    auto Pos = PS.S->criterionPosition(C);
    ASSERT_TRUE(Pos.has_value()) << "instance " << Inst;
    EXPECT_EQ(PS.S->globalTrace().entry(*Pos).Pc, 1u);
  }
  SliceCriterion C;
  C.Tid = 0;
  C.Pc = 1;
  C.Instance = 4;
  EXPECT_FALSE(PS.S->criterionPosition(C).has_value());
  C.Tid = 9;
  EXPECT_FALSE(PS.S->criterionPosition(C).has_value());
}

} // namespace
