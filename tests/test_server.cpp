//===- tests/test_server.cpp - drdebugd server tests --------------------------===//
//
// The remote debug-session server end-to-end: frame codec, error paths,
// concurrent sessions over the pipe transport (byte-for-byte identical to
// single-session runs), idle eviction, the shared pinball cache, and a TCP
// smoke test. These are the tests the `tsan` CTest preset builds under
// ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "replay/logger.h"
#include "replay/repository.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/transport.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A scratch directory removed on destruction.
struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_server_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
};

/// Runs \p Cmds in a plain single-threaded DebugSession (the reference the
/// server must match byte for byte).
std::string localTranscript(const std::string &AsmText,
                            const std::vector<std::string> &Cmds) {
  std::ostringstream OS;
  DebugSession S(OS);
  S.loadProgramText(AsmText);
  for (const std::string &C : Cmds)
    if (!S.execute(C))
      break;
  return OS.str();
}

/// Drives one remote session over \p T: open, load \p AsmText, run \p Cmds,
/// returning the concatenated output (load message + per-command output).
std::string remoteTranscript(Transport &T, const std::string &AsmText,
                             const std::vector<std::string> &Cmds) {
  ProtocolClient Client(T);
  std::string Out;
  ClientResult<uint64_t> Opened = Client.open();
  EXPECT_TRUE(Opened.ok()) << Opened.errorText();
  uint64_t Sid = Opened.value();
  ClientResult<> Loaded = Client.load(Sid, AsmText);
  EXPECT_TRUE(Loaded.ok()) << Loaded.errorText();
  Out += Loaded.value();
  for (const std::string &C : Cmds) {
    ClientResult<> R = Client.cmd(Sid, C);
    if (!R.ok()) {
      ADD_FAILURE() << "cmd '" << C << "' failed: " << R.errorText();
      break;
    }
    Out += R.value();
    std::string Word = C.substr(0, C.find(' '));
    if (Word == "quit" || Word == "q")
      break;
  }
  return Out;
}

/// The Figure 5 cyclic-debugging script the acceptance criteria name.
const std::vector<std::string> Figure5Script = {
    "record failure", "replay",       "slice fail", "slice pinball",
    "slice replay",   "slice step",   "slice step", "where",
    "quit",
};

/// Saves a recorded Figure 5 failure pinball into \p Dir.
void saveFigure5Pinball(const fs::path &Dir) {
  Program P = workloads::makeFigure5();
  RandomScheduler Sched(1, 1, 4);
  DefaultSyscalls World(1);
  LogResult Log = Logger::logRegion(P, Sched, &World, RegionSpec{});
  std::string Error;
  ASSERT_TRUE(Log.Pb.save(Dir.string(), Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Protocol codec
//===----------------------------------------------------------------------===//

TEST(Protocol, EscapeRoundTrip) {
  std::string Nasty = "a$b#c%d\nnewline %24 literal\n";
  std::string Esc = escapeText(Nasty);
  EXPECT_EQ(Esc.find('$'), std::string::npos);
  EXPECT_EQ(Esc.find('#'), std::string::npos);
  EXPECT_EQ(unescapeText(Esc), Nasty);
}

TEST(Protocol, FrameRoundTripBytewise) {
  std::string Body = "7 cmd 3 print k";
  std::string Frame = encodeFrame(Body);
  FrameBuffer FB;
  std::string Got;
  // Deliver one byte at a time: must yield exactly one frame at the end.
  for (size_t I = 0; I != Frame.size(); ++I) {
    FB.append(&Frame[I], 1);
    FrameBuffer::Poll P = FB.poll(Got);
    if (I + 1 < Frame.size())
      EXPECT_EQ(P, FrameBuffer::Poll::None);
    else
      EXPECT_EQ(P, FrameBuffer::Poll::Frame);
  }
  EXPECT_EQ(Got, Body);
}

TEST(Protocol, MalformedGarbageAndBadChecksum) {
  FrameBuffer FB;
  std::string Body;
  FB.append("noise before any frame");
  EXPECT_EQ(FB.poll(Body), FrameBuffer::Poll::Malformed);
  EXPECT_EQ(FB.poll(Body), FrameBuffer::Poll::None);

  FB.append("$1 hello#00"); // wrong checksum
  EXPECT_EQ(FB.poll(Body), FrameBuffer::Poll::BadChecksum);

  // The decoder resyncs: a valid frame after garbage still parses.
  FB.append("junk" + encodeFrame("2 hello"));
  EXPECT_EQ(FB.poll(Body), FrameBuffer::Poll::Malformed);
  EXPECT_EQ(FB.poll(Body), FrameBuffer::Poll::Frame);
  EXPECT_EQ(Body, "2 hello");
}

TEST(Protocol, ResponseBodyParse) {
  uint64_t Seq = 0;
  unsigned Code = 0;
  std::string Payload;
  ASSERT_TRUE(parseResponseBody(okBody(5, "line one\nline $ two"), Seq, Code,
                                Payload));
  EXPECT_EQ(Seq, 5u);
  EXPECT_EQ(Code, 0u);
  EXPECT_EQ(Payload, "line one\nline $ two");
  ASSERT_TRUE(parseResponseBody(
      errBody(9, WireError::NoSuchSession, "no such session"), Seq, Code,
      Payload));
  EXPECT_EQ(Seq, 9u);
  EXPECT_EQ(Code, 5u);
  EXPECT_EQ(Payload, "no such session");
}

//===----------------------------------------------------------------------===//
// Server over the pipe transport
//===----------------------------------------------------------------------===//

TEST(Server, HelloStatsAndErrorPaths) {
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });

  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<HelloInfo> Hello = Client.hello();
    ASSERT_TRUE(Hello.ok()) << Hello.errorText();
    EXPECT_EQ(Hello.value().Server, "drdebugd");
    EXPECT_EQ(Hello.value().Proto, ProtocolVersion);
    EXPECT_NE(Hello.value().Banner.find("proto 5"), std::string::npos)
        << Hello.value().Banner;
    // v4 capability negotiation: the banner carries the verb list.
    EXPECT_TRUE(Hello.value().supports("cmd"));
    EXPECT_TRUE(Hello.value().supports("drain"));
    EXPECT_FALSE(Hello.value().supports("frobnicate"));

    // Unknown verb.
    ClientResult<> Bad = Client.request("frobnicate 1 2");
    EXPECT_FALSE(Bad.ok());
    EXPECT_EQ(Bad.code(), static_cast<unsigned>(WireError::UnknownVerb));
    EXPECT_EQ(Bad.errClass(), ErrClass::Permanent);

    // Command against a session that never existed.
    ClientResult<> NoSession = Client.cmd(424242, "where");
    EXPECT_FALSE(NoSession.ok());
    EXPECT_EQ(NoSession.code(),
              static_cast<unsigned>(WireError::NoSuchSession));

    // Malformed bytes: the server answers with an err frame (seq 0) and
    // keeps serving.
    ASSERT_TRUE(ClientEnd->send("garbage off the wire"));
    ASSERT_TRUE(ClientEnd->send(encodeFrame("zz not-a-seq")));
    EXPECT_TRUE(Client.hello().ok());

    ClientResult<> Stats = Client.stats();
    ASSERT_TRUE(Stats.ok()) << Stats.errorText();
    const std::string &Payload = Stats.value();
    EXPECT_NE(Payload.find("frames.malformed 1"), std::string::npos)
        << Payload;
    EXPECT_NE(Payload.find("errors.returned"), std::string::npos);
    // Per-verb counters: two hellos and one (failed) cmd so far; unknown
    // verbs and malformed frames are not attributed to any verb.
    EXPECT_NE(Payload.find("verb.hello.count 2"), std::string::npos)
        << Payload;
    EXPECT_NE(Payload.find("verb.cmd.count 1"), std::string::npos) << Payload;
    EXPECT_NE(Payload.find("verb.hello.us.p50"), std::string::npos);
  }
  ClientEnd->close();
  ServerThread.join();
  EXPECT_GE(Srv.stats().FramesMalformed.load(), 1u);
}

TEST(Server, ReverseExecutionVerbs) {
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid,
                                   ".data g 0\n.func main\n  movi r1, 10\n"
                                   "l:\n  lda r2, @g\n  addi r2, r2, 1\n"
                                   "  sta r2, @g\n  subi r1, r1, 1\n"
                                   "  bgt r1, r0, l\n  halt\n.endfunc\n");
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.cmd(Sid, "record region 0 40");
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.cmd(Sid, "replay");
    ASSERT_TRUE(R.ok()) << R.errorText();

    // rstep: one backward step of n instructions.
    R = Client.reverseStep(Sid, 3);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("stepped backwards to position"),
              std::string::npos)
        << R.value();
    // rpos: the honest replay clock.
    R = Client.replayPosition(Sid);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("replay position: "), std::string::npos)
        << R.value();
    EXPECT_NE(R.value().find(" recorded instructions"), std::string::npos)
        << R.value();
    // rwatch: back to the last write of g.
    R = Client.reverseWatch(Sid, "g");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("reverse-watch: g last changed"),
              std::string::npos)
        << R.value();
    // rcont without breakpoints rewinds to the region start...
    R = Client.reverseContinue(Sid);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("reached the beginning of the recording"),
              std::string::npos)
        << R.value();
    // ...after which rnext has nowhere earlier to go.
    R = Client.reverseNext(Sid);
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("does not run earlier"), std::string::npos)
        << R.value();

    // The per-verb counters picked the new names up.
    R = Client.stats();
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("verb.rstep.count 1"), std::string::npos)
        << R.value();
    EXPECT_NE(R.value().find("verb.rcont.count 1"), std::string::npos)
        << R.value();
    EXPECT_NE(R.value().find("verb.rpos.count 1"), std::string::npos)
        << R.value();
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Server, TwoClientsConcurrentFigure5ByteForByte) {
  Program P = workloads::makeFigure5();
  const std::string Reference = localTranscript(P.SourceText, Figure5Script);
  ASSERT_NE(Reference.find("assertion FAILED"), std::string::npos);
  ASSERT_NE(Reference.find("slice:"), std::string::npos);

  DebugServer Srv;
  auto [C1, S1] = makePipePair();
  auto [C2, S2] = makePipePair();
  std::thread Srv1([&, T = S1.get()] { Srv.serve(*T); });
  std::thread Srv2([&, T = S2.get()] { Srv.serve(*T); });

  std::string Out1, Out2;
  std::thread Cl1([&, T = C1.get()] {
    Out1 = remoteTranscript(*T, P.SourceText, Figure5Script);
    T->close();
  });
  std::thread Cl2([&, T = C2.get()] {
    Out2 = remoteTranscript(*T, P.SourceText, Figure5Script);
    T->close();
  });
  Cl1.join();
  Cl2.join();
  Srv1.join();
  Srv2.join();

  // Both concurrent sessions must match the single-session run exactly.
  EXPECT_EQ(Out1, Reference);
  EXPECT_EQ(Out2, Reference);
  EXPECT_GE(Srv.stats().SessionsCreated.load(), 2u);
  EXPECT_GE(Srv.stats().CommandsServed.load(), 2 * Figure5Script.size());
}

TEST(Server, SharedPinballRepositoryAcrossSessions) {
  TempDir Tmp("repo_shared");
  fs::path PinballDir = Tmp.Dir / "fig5_pinball";
  saveFigure5Pinball(PinballDir);

  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    Program P = workloads::makeFigure5();
    // Two sessions load the same recording: the second is served from the
    // shared repository without re-reading the directory.
    for (int I = 0; I != 2; ++I) {
      ClientResult<uint64_t> Opened = Client.open();
      ASSERT_TRUE(Opened.ok()) << Opened.errorText();
      uint64_t Sid = Opened.value();
      ClientResult<> R = Client.load(Sid, P.SourceText);
      ASSERT_TRUE(R.ok()) << R.errorText();
      R = Client.cmd(Sid, "pinball load " + PinballDir.string());
      ASSERT_TRUE(R.ok()) << R.errorText();
      EXPECT_NE(R.value().find("pinball loaded from"), std::string::npos)
          << R.value();
      R = Client.cmd(Sid, "replay");
      ASSERT_TRUE(R.ok()) << R.errorText();
      EXPECT_NE(R.value().find("assertion FAILED"), std::string::npos)
          << R.value();
    }
    ClientResult<> Stats = Client.stats();
    ASSERT_TRUE(Stats.ok()) << Stats.errorText();
    EXPECT_NE(Stats.value().find("pinballs.cache_hits 1"), std::string::npos)
        << Stats.value();
    EXPECT_NE(Stats.value().find("pinballs.cache_misses 1"),
              std::string::npos)
        << Stats.value();
  }
  ClientEnd->close();
  ServerThread.join();
  EXPECT_EQ(Srv.repository().hits(), 1u);
  EXPECT_EQ(Srv.repository().misses(), 1u);
}

TEST(Server, EvictionOnIdleTimeout) {
  ServerConfig Cfg;
  Cfg.IdleTimeout = std::chrono::milliseconds(40);
  DebugServer Srv(Cfg);
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    EXPECT_EQ(Srv.sessions().activeCount(), 1u);

    // Not yet idle: the sweep must keep it.
    ClientResult<> R = Client.request("evict");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_EQ(R.value(), "evicted 0");

    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    R = Client.request("evict");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_EQ(R.value(), "evicted 1");
    EXPECT_EQ(Srv.sessions().activeCount(), 0u);

    // The evicted session id is gone.
    ClientResult<> Gone = Client.cmd(Sid, "where");
    EXPECT_FALSE(Gone.ok());
    EXPECT_EQ(Gone.code(), static_cast<unsigned>(WireError::NoSuchSession));
    R = Client.stats();
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("sessions.evicted 1"), std::string::npos)
        << R.value();
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Server, JanitorThreadEvicts) {
  ServerConfig Cfg;
  Cfg.IdleTimeout = std::chrono::milliseconds(30);
  Cfg.JanitorPeriod = std::chrono::milliseconds(10);
  DebugServer Srv(Cfg);
  uint64_t Sid = Srv.sessions().create();
  ASSERT_TRUE(Srv.sessions().exists(Sid));
  for (int I = 0; I != 100 && Srv.sessions().activeCount() != 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Srv.sessions().activeCount(), 0u);
  EXPECT_EQ(Srv.stats().SessionsEvicted.load(), 1u);
}

TEST(Server, AttachDetachLifecycle) {
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();

    // A second attach must be refused while the session is held.
    ClientResult<> Held = Client.request("attach " + std::to_string(Sid));
    EXPECT_FALSE(Held.ok());
    EXPECT_EQ(Held.code(), static_cast<unsigned>(WireError::SessionFailed));

    ClientResult<> R = Client.request("detach " + std::to_string(Sid));
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.request("attach " + std::to_string(Sid));
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_EQ(R.value(), "sid " + std::to_string(Sid));

    R = Client.request("close " + std::to_string(Sid));
    ASSERT_TRUE(R.ok()) << R.errorText();
    ClientResult<> Gone = Client.request("attach " + std::to_string(Sid));
    EXPECT_FALSE(Gone.ok());
    EXPECT_EQ(Gone.code(), static_cast<unsigned>(WireError::NoSuchSession));
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST(Server, DisconnectAutoDetaches) {
  DebugServer Srv;
  uint64_t Sid = 0;
  {
    auto [ClientEnd, ServerEnd] = makePipePair();
    std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    Sid = Opened.value();
    ClientEnd->close(); // vanish without detaching
    ServerThread.join();
  }
  // A new connection can attach: the server released the dead client's hold.
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<> R = Client.request("attach " + std::to_string(Sid));
    EXPECT_TRUE(R.ok()) << R.errorText();
  }
  ClientEnd->close();
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// PinballRepository
//===----------------------------------------------------------------------===//

TEST(Repository, SecondLoadIsServedFromCache) {
  TempDir Tmp("repo_cache");
  fs::path Dir = Tmp.Dir / "pb";
  saveFigure5Pinball(Dir);

  PinballRepository Repo;
  std::string Error;
  std::shared_ptr<const Pinball> First = Repo.load(Dir.string(), Error);
  ASSERT_NE(First, nullptr) << Error;
  std::shared_ptr<const Pinball> Second = Repo.load(Dir.string(), Error);
  ASSERT_NE(Second, nullptr) << Error;
  // Same parsed object: the directory was read exactly once.
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_EQ(Repo.hits(), 1u);
  EXPECT_EQ(Repo.misses(), 1u);
  EXPECT_EQ(Repo.cachedCount(), 1u);
}

TEST(Repository, ModifiedDirectoryInvalidatesEntry) {
  TempDir Tmp("repo_inval");
  fs::path Dir = Tmp.Dir / "pb";
  saveFigure5Pinball(Dir);

  PinballRepository Repo;
  std::string Error;
  std::shared_ptr<const Pinball> First = Repo.load(Dir.string(), Error);
  ASSERT_NE(First, nullptr) << Error;
  {
    // A proper re-save (the re-recorded-pinball scenario): raw in-place
    // edits are exactly what manifest verification exists to reject.
    Pinball Pb;
    ASSERT_TRUE(Pb.load(Dir.string(), Error)) << Error;
    Pb.Meta["touched"] = "1";
    ASSERT_TRUE(Pb.save(Dir.string(), Error)) << Error;
  }
  std::shared_ptr<const Pinball> Second = Repo.load(Dir.string(), Error);
  ASSERT_NE(Second, nullptr) << Error;
  EXPECT_NE(First.get(), Second.get());
  EXPECT_EQ(Repo.hits(), 0u);
  EXPECT_EQ(Repo.misses(), 2u);
  EXPECT_EQ(Second->Meta.count("touched"), 1u);
}

TEST(Repository, MissingDirectoryReportsError) {
  PinballRepository Repo;
  std::string Error;
  EXPECT_EQ(Repo.load("/nonexistent/drdebug_pinball", Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Repo.misses(), 1u);
}

//===----------------------------------------------------------------------===//
// TCP transport
//===----------------------------------------------------------------------===//

TEST(Transport, TcpEndToEnd) {
  TcpListener Listener;
  std::string Error;
  ASSERT_TRUE(Listener.listen(0, Error)) << Error;
  ASSERT_NE(Listener.port(), 0);

  DebugServer Srv;
  std::string Payload;
  std::thread ClientThread([&] {
    std::string Err;
    std::unique_ptr<Transport> Conn =
        tcpConnect("127.0.0.1", Listener.port(), Err);
    ASSERT_NE(Conn, nullptr) << Err;
    ProtocolClient Client(*Conn);
    ClientResult<HelloInfo> Hello = Client.hello();
    ASSERT_TRUE(Hello.ok()) << Hello.errorText();
    Payload = Hello.value().Banner;
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R =
        Client.load(Sid, ".func main\n  movi r1, 41\n  addi r1, r1, "
                         "1\n  syswrite r1\n  halt\n.endfunc\n");
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.cmd(Sid, "run");
    ASSERT_TRUE(R.ok()) << R.errorText();
    R = Client.cmd(Sid, "output");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("output: 42"), std::string::npos) << R.value();
    Conn->close();
  });

  std::unique_ptr<Transport> ServerSide = Listener.accept();
  ASSERT_NE(ServerSide, nullptr);
  Srv.serve(*ServerSide);
  ClientThread.join();
  Listener.close();
  EXPECT_NE(Payload.find("drdebugd"), std::string::npos);
}

} // namespace
