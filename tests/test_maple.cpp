//===- tests/test_maple.cpp - Maple-analog tests ------------------------------===//

#include "maple/active_scheduler.h"
#include "maple/maple.h"
#include "maple/profiler.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

TEST(IRoot, FlippedReversesOrderAndKind) {
  IRoot R;
  R.PcA = 10;
  R.PcB = 20;
  R.K = IRoot::Kind::WriteRead;
  IRoot F = R.flipped();
  EXPECT_EQ(F.PcA, 20u);
  EXPECT_EQ(F.PcB, 10u);
  EXPECT_EQ(F.K, IRoot::Kind::ReadWrite);
  EXPECT_EQ(F.flipped(), R);
  IRoot W;
  W.K = IRoot::Kind::WriteWrite;
  EXPECT_EQ(W.flipped().K, IRoot::Kind::WriteWrite);
}

TEST(IRoot, StringForm) {
  IRoot R;
  R.PcA = 3;
  R.PcB = 9;
  R.K = IRoot::Kind::WriteWrite;
  EXPECT_EQ(R.str(), "W->W 3 -> 9");
}

/// Two threads conflicting on one global; the profiler must observe the
/// cross-thread dependency and predict its reversal.
TEST(Profiler, ObservesConflictsAndPredictsFlips) {
  Program P = assembleOrDie(".data x 0\n"
                            ".func main\n"
                            "  spawn r1, w, r0\n"
                            "  movi r2, 5\n"
                            "  sta r2, @x\n"  // pc 2: write by tid 0
                            "  join r1\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "  lda r1, @x\n"  // pc 5: read by tid 1
                            "  ret\n.endfunc\n");
  // Schedule so main's write precedes the worker's read.
  PriorityScheduler Sched;
  Sched.setPriority(0, 10);
  Machine M(P);
  M.setScheduler(&Sched);
  IRootProfiler Prof;
  M.addObserver(&Prof);
  ASSERT_EQ(M.run(), Machine::StopReason::Halted);

  IRoot Expected;
  Expected.PcA = 2;
  Expected.PcB = 5;
  Expected.K = IRoot::Kind::WriteRead;
  EXPECT_EQ(Prof.observed().count(Expected), 1u);

  auto Candidates = Prof.predictCandidates();
  bool FoundFlip = false;
  for (const IRoot &C : Candidates)
    if (C == Expected.flipped())
      FoundFlip = true;
  EXPECT_TRUE(FoundFlip);
}

TEST(Profiler, SameThreadAccessesAreNotIRoots) {
  Program P = assembleOrDie(".data x 0\n"
                            ".func main\n"
                            "  movi r1, 1\n  sta r1, @x\n  lda r2, @x\n"
                            "  halt\n.endfunc\n");
  RoundRobinScheduler Sched(1);
  Machine M(P);
  M.setScheduler(&Sched);
  IRootProfiler Prof;
  M.addObserver(&Prof);
  M.run();
  EXPECT_TRUE(Prof.observed().empty());
}

/// A program where the bug only manifests under the order "reader before
/// writer": the natural (seeded) schedules run writer first; the active
/// scheduler must force the reversal.
struct OrderBug {
  Program P;
  uint64_t WritePc = 0, ReadPc = 0;

  OrderBug() {
    // main writes ready=1 quickly; the checker thread reads 'ready' and
    // asserts it is still 0 (i.e. the bug fires only if the checker's read
    // happens *after* main's write... inverted so that the natural order
    // hides the bug).
    P = assembleOrDie(".data ready 0\n"
                      ".func main\n"
                      "  spawn r1, checker, r0\n" // 0
                      "  movi r2, 1\n"            // 1
                      "  sta r2, @ready\n"        // 2  (the write)
                      "  join r1\n"               // 3
                      "  halt\n"                  // 4
                      ".endfunc\n"
                      ".func checker\n"
                      "  lda r1, @ready\n"        // 5  (the read)
                      "  movi r2, 1\n"            // 6
                      "  beq r1, r0, cok\n"       // 7
                      "  movi r2, 0\n"            // 8
                      "cok:\n"
                      "  assert r2\n"             // 9: fails iff read saw 1
                      "  ret\n"                   // 10
                      ".endfunc\n");
    WritePc = 2;
    ReadPc = 5;
  }
};

TEST(ActiveScheduler, ForcesTargetOrder) {
  OrderBug B;
  // Candidate: write (pc 2) happens before read (pc 5).
  IRoot Candidate;
  Candidate.PcA = B.WritePc;
  Candidate.PcB = B.ReadPc;
  Candidate.K = IRoot::Kind::WriteRead;

  ActiveScheduler Sched(Candidate, /*Seed=*/7);
  Machine M(B.P);
  M.setScheduler(&Sched);
  Machine::StopReason Reason = M.run(100000);
  EXPECT_EQ(Reason, Machine::StopReason::AssertFailed)
      << "forced W->R order must trip the assert";
  EXPECT_TRUE(Sched.forcedOrder());
}

TEST(Maple, ExposesAndRecordsOrderBug) {
  OrderBug B;
  MapleOptions Opts;
  Opts.ProfileRuns = 2;
  Opts.Seed = 3;
  MapleResult Result = mapleExposeAndRecord(B.P, Opts);
  ASSERT_TRUE(Result.Exposed);
  EXPECT_GT(Result.ObservedIRoots, 0u);

  // The recorded pinball replays straight to the failure: the DrDebug
  // integration point.
  Replayer Rep(Result.Pb);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);

  // And it is sliceable like any pinball.
  SliceSession S(Result.Pb);
  std::string Error;
  ASSERT_TRUE(S.prepare(Error)) << Error;
  auto C = S.failureCriterion();
  ASSERT_TRUE(C.has_value());
  auto Sl = S.computeSlice(*C);
  ASSERT_TRUE(Sl.has_value());
  // The slice reaches the racing write in the other thread.
  bool FoundWrite = false;
  for (uint32_t Pos : Sl->Positions)
    if (S.globalTrace().entry(Pos).Pc == B.WritePc)
      FoundWrite = true;
  EXPECT_TRUE(FoundWrite);
}

TEST(Maple, ReportsWhenNothingToExpose) {
  Program P = assembleOrDie(".data x 0\n"
                            ".func main\n"
                            "  movi r1, 1\n  sta r1, @x\n  halt\n.endfunc\n");
  MapleOptions Opts;
  Opts.ProfileRuns = 2;
  MapleResult Result = mapleExposeAndRecord(P, Opts);
  EXPECT_FALSE(Result.Exposed);
  EXPECT_EQ(Result.PredictedCandidates, 0u);
}

TEST(Maple, BugFoundDuringProfilingIsStillRecorded) {
  // A bug every schedule hits: profiling run 1 already fails.
  Program P = assembleOrDie(".func main\n  assert r0\n  halt\n.endfunc\n");
  MapleResult Result = mapleExposeAndRecord(P);
  ASSERT_TRUE(Result.Exposed);
  EXPECT_TRUE(Result.ExposedDuringProfiling);
  Replayer Rep(Result.Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::AssertFailed);
}

} // namespace
