//===- tests/test_debugger.cpp - DrDebug session tests -----------------------===//

#include "debugger/session.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

using namespace drdebug;
using namespace drdebug::workloads;

namespace {

/// A session bound to a string stream so output is assertable.
struct Fixture {
  std::ostringstream Out;
  DebugSession S{Out};

  std::string take() {
    std::string Text = Out.str();
    Out.str("");
    return Text;
  }
};

const char *SimpleProg = ".data g 0\n"
                         ".func main\n"
                         "  movi r1, 5\n"  // pc 0, line 3
                         "  addi r1, r1, 2\n"
                         "  sta r1, @g\n"
                         "  lda r2, @g\n"
                         "  syswrite r2\n"
                         "  halt\n.endfunc\n";

TEST(Debugger, LoadReportsProgramShape) {
  Fixture F;
  ASSERT_TRUE(F.S.loadProgramText(SimpleProg));
  EXPECT_NE(F.take().find("1 functions, 6 instructions"), std::string::npos);
}

TEST(Debugger, LoadRejectsBadProgram) {
  Fixture F;
  EXPECT_FALSE(F.S.loadProgramText(".func main\n  bogus\n.endfunc\n"));
  EXPECT_NE(F.take().find("error"), std::string::npos);
}

TEST(Debugger, CommandsRequireProgram) {
  Fixture F;
  F.S.execute("run");
  EXPECT_NE(F.take().find("no program loaded"), std::string::npos);
}

TEST(Debugger, RunToCompletion) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("run");
  std::string Text = F.take();
  EXPECT_NE(Text.find("program exited"), std::string::npos);
  F.S.execute("output");
  EXPECT_NE(F.take().find("output: 7"), std::string::npos);
}

TEST(Debugger, BreakpointByFunctionOffset) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("break main+2");
  EXPECT_NE(F.take().find("breakpoint 1 at 2"), std::string::npos);
  F.S.execute("run");
  std::string Text = F.take();
  EXPECT_NE(Text.find("breakpoint 1 hit"), std::string::npos);
  // Poised *before* the store: g is still 0.
  F.S.execute("print g");
  EXPECT_NE(F.take().find("g = 0"), std::string::npos);
  F.S.execute("continue");
  EXPECT_NE(F.take().find("program exited"), std::string::npos);
  F.S.execute("print g");
  EXPECT_NE(F.take().find("g = 7"), std::string::npos);
}

TEST(Debugger, InfoAndExamineCommands) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("break main+4");
  F.S.execute("run");
  F.take();
  F.S.execute("info threads");
  EXPECT_NE(F.take().find("tid 0 [runnable]"), std::string::npos);
  F.S.execute("info regs 0");
  EXPECT_NE(F.take().find("r1 = 7"), std::string::npos);
  F.S.execute("info breakpoints");
  EXPECT_NE(F.take().find("1: 4"), std::string::npos);
  Machine *M = F.S.currentMachine();
  ASSERT_TRUE(M);
  uint64_t G = 0x10000; // first global
  F.S.execute("x " + std::to_string(G));
  EXPECT_NE(F.take().find("= 7"), std::string::npos);
  F.S.execute("where");
  EXPECT_NE(F.take().find("tid 0"), std::string::npos);
  F.S.execute("list main");
  EXPECT_NE(F.take().find("halt"), std::string::npos);
}

TEST(Debugger, DeleteBreakpoint) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("break 2");
  F.S.execute("delete 1");
  F.take();
  F.S.execute("run");
  EXPECT_NE(F.take().find("program exited"), std::string::npos);
}

TEST(Debugger, StepiAdvancesOneInstruction) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("break main");
  F.S.execute("run");
  F.take();
  F.S.execute("stepi");
  std::string Text = F.take();
  EXPECT_NE(Text.find("stepped tid 0"), std::string::npos);
  F.S.execute("info regs 0");
  EXPECT_NE(F.take().find("r1 = 5"), std::string::npos);
}

TEST(Debugger, UnknownCommand) {
  Fixture F;
  F.S.loadProgramText(SimpleProg);
  F.S.execute("frobnicate");
  EXPECT_NE(F.take().find("unknown command"), std::string::npos);
}

TEST(Debugger, QuitEndsSession) {
  Fixture F;
  EXPECT_FALSE(F.S.execute("quit"));
}

//===----------------------------------------------------------------------===//
// The full cyclic-debugging workflow on the Figure 5 bug
//===----------------------------------------------------------------------===//

TEST(Debugger, RecordReplaySliceWorkflow) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  Fixture F;
  ASSERT_TRUE(F.S.loadProgramText(P.SourceText));
  F.take();

  // Record the failing execution.
  F.S.execute("record failure");
  std::string Text = F.take();
  EXPECT_NE(Text.find("failure captured"), std::string::npos);
  ASSERT_TRUE(F.S.regionPinball().has_value());

  // Replay: the failure reproduces deterministically.
  F.S.execute("replay");
  Text = F.take();
  EXPECT_NE(Text.find("assertion FAILED"), std::string::npos);
  EXPECT_NE(Text.find("line " + std::to_string(Lines.AssertLine)),
            std::string::npos);
  EXPECT_TRUE(F.S.inReplay());

  // Cyclic: replaying again shows the identical failure.
  F.S.execute("replay");
  Text = F.take();
  EXPECT_NE(Text.find("assertion FAILED"), std::string::npos);

  // Slice at the failure.
  F.S.execute("slice fail");
  Text = F.take();
  EXPECT_NE(Text.find("slice:"), std::string::npos);
  ASSERT_TRUE(F.S.currentSlice().has_value());
  // The slice's source lines include the racy write.
  EXPECT_NE(Text.find(" " + std::to_string(Lines.RacyWriteLine)),
            std::string::npos);

  // Browse.
  F.S.execute("slice list");
  Text = F.take();
  EXPECT_NE(Text.find("assert"), std::string::npos);
  F.S.execute("slice deps 0");
  F.take(); // first entry may have no deps; command must not crash

  // Exclusion regions + slice pinball.
  F.S.execute("slice regions");
  Text = F.take();
  EXPECT_NE(Text.find("exclusion regions"), std::string::npos);
  F.S.execute("slice pinball");
  Text = F.take();
  EXPECT_NE(Text.find("slice pinball:"), std::string::npos);

  // Execution-slice replay with statement stepping.
  F.S.execute("slice replay");
  F.take();
  EXPECT_TRUE(F.S.inSliceReplay());
  // Step through the whole slice; it must end with the failing assert.
  std::string Last;
  for (int Steps = 0; Steps < 10000; ++Steps) {
    F.S.execute("slice step");
    std::string StepText = F.take();
    if (StepText.find("assertion FAILED") != std::string::npos ||
        StepText.find("slice replay complete") != std::string::npos) {
      Last = StepText;
      break;
    }
    EXPECT_NE(StepText.find("slice step:"), std::string::npos) << StepText;
    Last = StepText;
  }
  EXPECT_NE(Last.find("assertion FAILED"), std::string::npos) << Last;
}

TEST(Debugger, SliceStepExaminesIntermediateState) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  Fixture F;
  ASSERT_TRUE(F.S.loadProgramText(P.SourceText));
  F.S.runScript({"record failure", "slice fail", "slice pinball",
                 "slice replay"});
  F.take();
  // Step a few statements, then examine registers mid-slice: the paper's
  // "examine the values of variables at each point".
  F.S.execute("slice step");
  F.S.execute("slice step");
  F.take();
  F.S.execute("info threads");
  std::string Text = F.take();
  EXPECT_NE(Text.find("tid 0"), std::string::npos);
}

TEST(Debugger, PinballSaveLoadAcrossSessions) {
  namespace fs = std::filesystem;
  auto Dir = fs::temp_directory_path() / "drdebug_dbg_pinball";
  fs::remove_all(Dir);

  Program P = makeFigure5(nullptr);
  {
    Fixture F;
    F.S.loadProgramText(P.SourceText);
    F.S.execute("record failure");
    F.S.execute("pinball save " + Dir.string());
    EXPECT_NE(F.take().find("pinball saved"), std::string::npos);
  }
  {
    // A brand-new session (another developer's machine, per the paper's
    // portability claim) replays the same bug.
    Fixture F;
    F.S.loadProgramText(P.SourceText);
    F.S.execute("pinball load " + Dir.string());
    EXPECT_NE(F.take().find("pinball loaded"), std::string::npos);
    F.S.execute("replay");
    EXPECT_NE(F.take().find("assertion FAILED"), std::string::npos);
  }
  fs::remove_all(Dir);
}

TEST(Debugger, BreakpointDuringReplay) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  Fixture F;
  F.S.loadProgramText(P.SourceText);
  F.S.execute("record failure");
  F.take();
  // Find the racy write's pc: line 15 is "sta r3, @x" in main.
  uint64_t RacyPc = ~0ULL;
  for (uint64_t Pc = 0; Pc != P.size(); ++Pc)
    if (P.inst(Pc).Line == Lines.RacyWriteLine)
      RacyPc = Pc;
  ASSERT_NE(RacyPc, ~0ULL);
  F.S.execute("break " + std::to_string(RacyPc));
  F.take();
  F.S.execute("replay");
  std::string Text = F.take();
  EXPECT_NE(Text.find("breakpoint 1 hit"), std::string::npos);
  // x still has its original value (the write has not executed).
  F.S.execute("print x");
  EXPECT_NE(F.take().find("x = 1"), std::string::npos);
  F.S.execute("continue");
  EXPECT_NE(F.take().find("assertion FAILED"), std::string::npos);
  F.S.execute("print x");
  EXPECT_NE(F.take().find("x = 6"), std::string::npos);
}

} // namespace
