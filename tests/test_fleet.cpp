//===- tests/test_fleet.cpp - Verb registry + gateway tier tests --------------===//
//
// The fleet layer (docs/FLEET.md): the declarative verb registry that
// drives server dispatch, client capabilities, and the generated docs
// tables; the typed ClientResult API; and the drdebug-gw gateway —
// rendezvous placement determinism, byte-identical pass-through,
// capability gating at the edge, fan-out aggregation, and backend-death
// failover with journal recovery and zero session loss.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "fleet/gateway.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/transport.h"
#include "server/verbs.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A scratch directory removed on destruction.
struct TempDir {
  fs::path Dir;
  explicit TempDir(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_fleet_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~TempDir() { fs::remove_all(Dir); }
};

/// Runs \p Cmds in a plain single-threaded DebugSession (the reference a
/// gateway-routed transcript must match byte for byte).
std::string localTranscript(const std::string &AsmText,
                            const std::vector<std::string> &Cmds) {
  std::ostringstream OS;
  DebugSession S(OS);
  S.loadProgramText(AsmText);
  for (const std::string &C : Cmds)
    if (!S.execute(C))
      break;
  return OS.str();
}

const std::vector<std::string> Figure5Script = {
    "record failure", "replay",     "slice fail", "slice pinball",
    "slice replay",   "slice step", "slice step", "where",
    "quit",
};

/// One in-process drdebugd a Gateway can dial: every Connect() spawns a
/// pipe pair plus a serve thread. kill() is a crash — transports die and
/// the server object is destroyed, leaving only journals (if any).
struct InProcBackend {
  std::string Name;
  ServerConfig Cfg;
  std::unique_ptr<DebugServer> Srv;
  std::atomic<bool> Dead{false};
  std::mutex Mu;
  std::vector<std::shared_ptr<Transport>> ServerEnds;
  std::vector<std::thread> Threads;

  InProcBackend(std::string Name, ServerConfig Cfg)
      : Name(std::move(Name)), Cfg(std::move(Cfg)) {
    Srv = std::make_unique<DebugServer>(this->Cfg);
  }
  ~InProcBackend() { kill(); }

  GatewayBackend descriptor() {
    GatewayBackend B;
    B.Name = Name;
    B.JournalDir = Cfg.JournalDir;
    B.Connect = [this]() -> std::unique_ptr<Transport> {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Dead.load(std::memory_order_acquire))
        return nullptr;
      auto [C, S] = makePipePair();
      std::shared_ptr<Transport> SE = std::move(S);
      ServerEnds.push_back(SE);
      Threads.emplace_back([this, SE] { Srv->serve(*SE); });
      return std::move(C);
    };
    return B;
  }

  void kill() {
    std::vector<std::thread> Joinable;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Dead.store(true, std::memory_order_release);
      for (const std::shared_ptr<Transport> &S : ServerEnds)
        S->close();
      Joinable.swap(Threads);
    }
    for (std::thread &T : Joinable)
      T.join();
    Srv.reset();
  }
};

/// A client connection to a Gateway over a pipe pair, with its serve
/// thread.
struct GwConn {
  std::unique_ptr<Transport> C;
  std::unique_ptr<Transport> S;
  std::thread T;
  ProtocolClient Client;

  static GwConn *make(Gateway &Gw) { return new GwConn(Gw); }
  explicit GwConn(Gateway &Gw)
      : GwConn(makePipePair(), Gw) {}
  ~GwConn() {
    C->close();
    T.join();
  }

private:
  GwConn(std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> P,
         Gateway &Gw)
      : C(std::move(P.first)), S(std::move(P.second)),
        T([&Gw, SE = S.get()] { Gw.serve(*SE); }), Client(*C) {}
};

ServerConfig backendConfig(const std::string &JournalDir = "") {
  ServerConfig Cfg;
  Cfg.JournalDir = JournalDir;
  Cfg.IdleTimeout = std::chrono::milliseconds(0); // no eviction in tests
  return Cfg;
}

//===----------------------------------------------------------------------===//
// The verb registry
//===----------------------------------------------------------------------===//

TEST(VerbRegistry, LookupAndTokenRoundTrip) {
  EXPECT_NE(findVerb("cmd"), nullptr);
  EXPECT_NE(findVerb("hello"), nullptr);
  EXPECT_EQ(findVerb("frobnicate"), nullptr);
  // The capability token round-trips through the parser.
  std::vector<std::string> Verbs = parseVerbList(verbListToken());
  EXPECT_EQ(Verbs.size(), verbRegistry().size());
  for (const VerbInfo &V : verbRegistry())
    EXPECT_NE(std::find(Verbs.begin(), Verbs.end(), V.Name), Verbs.end())
        << V.Name;
}

TEST(VerbRegistry, HelloPayloadCarriesProtoAndVerbs) {
  std::string P = helloPayload("drdebugd", "9.9.9");
  EXPECT_NE(P.find("drdebugd 9.9.9 proto " +
                   std::to_string(ProtocolVersion)),
            std::string::npos)
      << P;
  EXPECT_NE(P.find(" verbs "), std::string::npos) << P;
  EXPECT_NE(P.find("cmd"), std::string::npos) << P;
}

TEST(VerbRegistry, WireErrorTableMatchesProtocolHelpers) {
  for (const WireErrorInfo &E : wireErrorRegistry()) {
    EXPECT_EQ(wireErrorName(E.Code), std::string(E.Name));
    EXPECT_EQ(wireErrorIsTransient(E.Code), E.Transient);
  }
  EXPECT_EQ(findWireError(0), nullptr);
  EXPECT_EQ(findWireError(99), nullptr);
}

// Every registered verb must actually dispatch: a well-formed request may
// fail with a domain error, but never with err 3 unknown-verb — that
// would mean the registry and the dispatcher drifted apart.
TEST(VerbRegistry, EveryVerbDispatches) {
  DebugServer Srv;
  auto [C, S] = makePipePair();
  std::thread T([&, SE = S.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*C);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    std::string Sid = std::to_string(Opened.value());
    auto ArgsFor = [&](const std::string &V) -> std::string {
      if (V == "load")
        return Sid + " " + escapeText(".func main\n  halt\n.endfunc\n");
      if (V == "cmd")
        return Sid + " " + escapeText("where");
      if (V == "rwatch")
        return Sid + " g";
      if (V == "import")
        return escapeText("/nonexistent/drdebug_bundle");
      if (V == "attach" || V == "detach" || V == "close" || V == "rstep" ||
          V == "rcont" || V == "rnext" || V == "rpos" || V == "rattach" ||
          V == "rstatus" || V == "rdump")
        return Sid;
      return "";
    };
    for (const VerbInfo &V : verbRegistry()) {
      std::string Name = V.Name;
      if (Name == "open" || Name == "close" || Name == "drain" ||
          Name == "shutdown")
        continue; // lifecycle verbs exercised below, in order
      std::string Args = ArgsFor(Name);
      ClientResult<> R = Client.request(Args.empty() ? Name
                                                     : Name + " " + Args);
      EXPECT_NE(R.code(), static_cast<unsigned>(WireError::UnknownVerb))
          << Name << ": " << R.errorText();
    }
    EXPECT_NE(Client.request("close " + Sid).code(),
              static_cast<unsigned>(WireError::UnknownVerb));
    EXPECT_NE(Client.request("drain").code(),
              static_cast<unsigned>(WireError::UnknownVerb));
    EXPECT_NE(Client.request("shutdown").code(),
              static_cast<unsigned>(WireError::UnknownVerb));
  }
  C->close();
  T.join();
}

//===----------------------------------------------------------------------===//
// Docs drift: the generated SERVER.md tables
//===----------------------------------------------------------------------===//

std::string slurpDoc(const char *Name) {
  std::ifstream IS(std::string(DRDEBUG_DOCS_DIR) + "/" + Name);
  EXPECT_TRUE(IS.good()) << Name;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return Buf.str();
}

std::string betweenMarkers(const std::string &Doc, const std::string &Tag) {
  std::string Begin = "<!-- BEGIN GENERATED " + Tag;
  std::string End = "<!-- END GENERATED " + Tag;
  size_t B = Doc.find(Begin);
  size_t E = Doc.find(End);
  EXPECT_NE(B, std::string::npos) << Tag;
  EXPECT_NE(E, std::string::npos) << Tag;
  if (B == std::string::npos || E == std::string::npos)
    return "";
  B = Doc.find('\n', B);
  return Doc.substr(B + 1, E - B - 1);
}

std::string trimmed(std::string S) {
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  size_t B = S.find_first_not_of("\n ");
  return B == std::string::npos ? std::string() : S.substr(B);
}

TEST(VerbRegistry, ServerDocVerbTableMatchesRegistry) {
  std::string Doc = slurpDoc("SERVER.md");
  EXPECT_EQ(trimmed(betweenMarkers(Doc, "VERB TABLE")),
            trimmed(renderVerbTableMarkdown()))
      << "docs/SERVER.md verb table drifted — regenerate with "
         "`drdebugd --dump-verbs`";
}

TEST(VerbRegistry, ServerDocErrorTableMatchesRegistry) {
  std::string Doc = slurpDoc("SERVER.md");
  EXPECT_EQ(trimmed(betweenMarkers(Doc, "ERROR TABLE")),
            trimmed(renderErrorTableMarkdown()))
      << "docs/SERVER.md error table drifted — regenerate with "
         "`drdebugd --dump-verbs`";
}

//===----------------------------------------------------------------------===//
// ClientResult
//===----------------------------------------------------------------------===//

TEST(ClientResult, TransportDeathIsTransportClass) {
  auto [C, S] = makePipePair();
  S->close();
  ProtocolClient Client(*C);
  ClientResult<> R = Client.request("hello");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.errClass(), ErrClass::Transport);
  EXPECT_EQ(R.code(), 0u);
  EXPECT_FALSE(R.errorText().empty());
}

TEST(ClientResult, HelloInfoSupportsFallsBackToProtoFloor) {
  HelloInfo Old; // a pre-v4 server: proto only, no verb list
  Old.Proto = 3;
  EXPECT_TRUE(Old.supports("cmd"));
  EXPECT_TRUE(Old.supports("rstep"));
  EXPECT_TRUE(Old.supports("drain"));
  EXPECT_FALSE(Old.supports("help")); // v4 verb
  EXPECT_FALSE(Old.supports("frobnicate"));
  HelloInfo V1;
  V1.Proto = 1;
  EXPECT_TRUE(V1.supports("cmd"));
  EXPECT_FALSE(V1.supports("rstep")); // v2 verb
  // An advertised list wins over the floor.
  HelloInfo New;
  New.Proto = 4;
  New.Verbs = {"hello", "cmd"};
  EXPECT_TRUE(New.supports("cmd"));
  EXPECT_FALSE(New.supports("drain"));
}

//===----------------------------------------------------------------------===//
// Rendezvous placement
//===----------------------------------------------------------------------===//

TEST(Fleet, RendezvousWeightIsDeterministicAndSpreads) {
  const std::vector<std::string> Names = {"b0", "b1", "b2"};
  std::map<std::string, int> Count;
  for (uint64_t Sid = 1; Sid <= 300; ++Sid) {
    size_t Best = 0;
    uint64_t BestW = 0;
    for (size_t I = 0; I != Names.size(); ++I) {
      uint64_t W = rendezvousWeight(Sid, Names[I]);
      EXPECT_EQ(W, rendezvousWeight(Sid, Names[I]));
      if (I == 0 || W > BestW) {
        BestW = W;
        Best = I;
      }
    }
    ++Count[Names[Best]];
  }
  // Well-mixed: every backend owns a healthy share of 300 sessions.
  for (const auto &[Name, N] : Count)
    EXPECT_GT(N, 50) << Name;
}

TEST(Fleet, PlacementIsStableAcrossGatewayRestarts) {
  InProcBackend B0("b0", backendConfig()), B1("b1", backendConfig()),
      B2("b2", backendConfig());
  GatewayConfig Cfg;
  Cfg.Backends = {B0.descriptor(), B1.descriptor(), B2.descriptor()};
  std::vector<std::string> FirstRun;
  {
    Gateway Gw(Cfg);
    ASSERT_EQ(Gw.aliveCount(), 3u);
    for (uint64_t Sid = 1; Sid <= 32; ++Sid) {
      size_t I = Gw.placeSession(Sid);
      ASSERT_NE(I, Gateway::npos);
      FirstRun.push_back(Gw.backendName(I));
    }
  }
  // A rebuilt gateway (same backend names) places identically.
  Gateway Gw2(Cfg);
  for (uint64_t Sid = 1; Sid <= 32; ++Sid)
    EXPECT_EQ(Gw2.backendName(Gw2.placeSession(Sid)), FirstRun[Sid - 1])
        << "sid " << Sid;
}

//===----------------------------------------------------------------------===//
// Gateway: pass-through, edge gating, fan-out
//===----------------------------------------------------------------------===//

TEST(Fleet, GatewayTranscriptIsByteIdenticalToDirect) {
  Program P = workloads::makeFigure5();
  const std::string Reference = localTranscript(P.SourceText, Figure5Script);
  ASSERT_NE(Reference.find("assertion FAILED"), std::string::npos);

  InProcBackend B0("b0", backendConfig()), B1("b1", backendConfig()),
      B2("b2", backendConfig());
  GatewayConfig Cfg;
  Cfg.Backends = {B0.descriptor(), B1.descriptor(), B2.descriptor()};
  Gateway Gw(Cfg);

  // Two sessions back to back: different gateway sids may land on
  // different backends; both transcripts must match the local run.
  std::unique_ptr<GwConn> Conn(GwConn::make(Gw));
  for (int Round = 0; Round != 2; ++Round) {
    ClientResult<uint64_t> Opened = Conn->Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> Loaded = Conn->Client.load(Sid, P.SourceText);
    ASSERT_TRUE(Loaded.ok()) << Loaded.errorText();
    std::string Out = Loaded.value();
    for (const std::string &C : Figure5Script) {
      ClientResult<> R = Conn->Client.cmd(Sid, C);
      ASSERT_TRUE(R.ok()) << C << ": " << R.errorText();
      Out += R.value();
    }
    EXPECT_EQ(Out, Reference) << "round " << Round;
  }
  // `quit` dropped both mappings.
  EXPECT_EQ(Gw.sessionCount(), 0u);
  EXPECT_GT(Gw.counters().ForwardedVerbs, 2 * Figure5Script.size());
}

TEST(Fleet, HelloHelpAndUnknownVerbAtTheEdge) {
  InProcBackend B0("b0", backendConfig()), B1("b1", backendConfig());
  GatewayConfig Cfg;
  Cfg.Backends = {B0.descriptor(), B1.descriptor()};
  Gateway Gw(Cfg);
  std::unique_ptr<GwConn> Conn(GwConn::make(Gw));

  ClientResult<HelloInfo> Hello = Conn->Client.hello();
  ASSERT_TRUE(Hello.ok()) << Hello.errorText();
  EXPECT_EQ(Hello.value().Server, "drdebug-gw");
  EXPECT_EQ(Hello.value().Proto, ProtocolVersion);
  EXPECT_TRUE(Hello.value().supports("cmd"));
  EXPECT_TRUE(Hello.value().supports("drain"));

  ClientResult<> Help = Conn->Client.help();
  ASSERT_TRUE(Help.ok()) << Help.errorText();
  EXPECT_NE(Help.value().find("cmd"), std::string::npos);

  uint64_t Forwarded = Gw.counters().ForwardedVerbs;
  ClientResult<> Bad = Conn->Client.request("frobnicate 1 2");
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.code(), static_cast<unsigned>(WireError::UnknownVerb));
  // Rejected at the edge: nothing was forwarded for it.
  EXPECT_EQ(Gw.counters().ForwardedVerbs, Forwarded);
  EXPECT_GE(Gw.counters().EdgeRejects, 1u);
}

TEST(Fleet, FanOutAggregatesStatsMetricsAndEvict) {
  InProcBackend B0("b0", backendConfig()), B1("b1", backendConfig()),
      B2("b2", backendConfig());
  GatewayConfig Cfg;
  Cfg.Backends = {B0.descriptor(), B1.descriptor(), B2.descriptor()};
  Gateway Gw(Cfg);
  std::unique_ptr<GwConn> Conn(GwConn::make(Gw));

  ClientResult<> Stats = Conn->Client.stats();
  ASSERT_TRUE(Stats.ok()) << Stats.errorText();
  EXPECT_NE(Stats.value().find("gateway.backends 3"), std::string::npos)
      << Stats.value();
  EXPECT_NE(Stats.value().find("gateway.backends_alive 3"),
            std::string::npos);
  for (const char *Name : {"b0", "b1", "b2"})
    EXPECT_NE(Stats.value().find(std::string("== backend ") + Name + " =="),
              std::string::npos)
        << Stats.value();
  // Each backend's own report is embedded.
  EXPECT_NE(Stats.value().find("server.version"), std::string::npos);

  ClientResult<> Metrics = Conn->Client.metrics();
  ASSERT_TRUE(Metrics.ok()) << Metrics.errorText();
  EXPECT_NE(Metrics.value().find("# backend b1"), std::string::npos)
      << Metrics.value();

  ClientResult<> Evicted = Conn->Client.request("evict");
  ASSERT_TRUE(Evicted.ok()) << Evicted.errorText();
  EXPECT_EQ(Evicted.value(), "evicted 0");
}

//===----------------------------------------------------------------------===//
// Failover: backend death loses zero journaled sessions
//===----------------------------------------------------------------------===//

TEST(Fleet, BackendDeathReimportsJournaledSessionsByteIdentically) {
  TempDir J0("fo_j0"), J1("fo_j1"), J2("fo_j2"), FDir("fo_scratch");
  auto B0 = std::make_unique<InProcBackend>(
      "b0", backendConfig(J0.Dir.string()));
  auto B1 = std::make_unique<InProcBackend>(
      "b1", backendConfig(J1.Dir.string()));
  auto B2 = std::make_unique<InProcBackend>(
      "b2", backendConfig(J2.Dir.string()));
  InProcBackend *All[3] = {B0.get(), B1.get(), B2.get()};

  GatewayConfig Cfg;
  Cfg.Backends = {B0->descriptor(), B1->descriptor(), B2->descriptor()};
  Cfg.FailoverDir = FDir.Dir.string();
  Gateway Gw(Cfg);
  std::unique_ptr<GwConn> Conn(GwConn::make(Gw));

  Program P = workloads::makeFigure5();
  const std::vector<std::string> Setup = {"record failure", "replay",
                                          "reverse-stepi 2"};
  const std::vector<std::string> Probes = {"where", "output"};

  // A handful of sessions, mutating setup journaled on their backends.
  std::vector<uint64_t> Sids;
  std::map<uint64_t, std::string> PreKill;
  for (int I = 0; I != 4; ++I) {
    ClientResult<uint64_t> Opened = Conn->Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> Loaded = Conn->Client.load(Sid, P.SourceText);
    ASSERT_TRUE(Loaded.ok()) << Loaded.errorText();
    for (const std::string &C : Setup) {
      ClientResult<> R = Conn->Client.cmd(Sid, C);
      ASSERT_TRUE(R.ok()) << C << ": " << R.errorText();
    }
    // Read-only probes: not journaled, so the recovered session replays
    // to exactly this state.
    std::string Out;
    for (const std::string &C : Probes) {
      ClientResult<> R = Conn->Client.cmd(Sid, C);
      ASSERT_TRUE(R.ok()) << R.errorText();
      Out += R.value();
    }
    Sids.push_back(Sid);
    PreKill[Sid] = Out;
  }
  ASSERT_EQ(Gw.sessionCount(), 4u);

  // Kill the backend owning the first session — a crash, not a drain:
  // its transports die and the server object is destroyed. Only the
  // journal directory survives.
  size_t Victim = Gw.placeSession(Sids[0]);
  ASSERT_NE(Victim, Gateway::npos);
  size_t VictimSessions = 0;
  for (uint64_t Sid : Sids)
    VictimSessions += Gw.placeSession(Sid) == Victim ? 1 : 0;
  All[Victim]->kill();

  // Every session still answers through the gateway — same sids, same
  // bytes. The victim's sessions were recovered from its journals and
  // re-imported onto survivors on first touch.
  for (uint64_t Sid : Sids) {
    std::string Out;
    for (const std::string &C : Probes) {
      ClientResult<> R = Conn->Client.cmd(Sid, C);
      ASSERT_TRUE(R.ok()) << "sid " << Sid << ": " << R.errorText();
      Out += R.value();
    }
    EXPECT_EQ(Out, PreKill[Sid]) << "sid " << Sid;
  }
  EXPECT_FALSE(Gw.backendAlive(Victim));
  EXPECT_EQ(Gw.aliveCount(), 2u);
  Gateway::Counters C = Gw.counters();
  EXPECT_EQ(C.Failovers, 1u);
  EXPECT_EQ(C.SessionsLost, 0u);
  EXPECT_EQ(C.SessionsReimported, VictimSessions);
  EXPECT_EQ(Gw.sessionCount(), 4u);
}

TEST(Fleet, UnjournaledBackendDeathLosesItsSessionsOnly) {
  TempDir FDir("lossy_scratch");
  // No journal dirs: a crashed backend's sessions are honestly lost.
  auto B0 = std::make_unique<InProcBackend>("b0", backendConfig());
  auto B1 = std::make_unique<InProcBackend>("b1", backendConfig());
  InProcBackend *All[2] = {B0.get(), B1.get()};
  GatewayConfig Cfg;
  Cfg.Backends = {B0->descriptor(), B1->descriptor()};
  Cfg.FailoverDir = FDir.Dir.string();
  Gateway Gw(Cfg);
  std::unique_ptr<GwConn> Conn(GwConn::make(Gw));

  ClientResult<uint64_t> Opened = Conn->Client.open();
  ASSERT_TRUE(Opened.ok()) << Opened.errorText();
  uint64_t Sid = Opened.value();
  size_t Owner = Gw.placeSession(Sid);
  All[Owner]->kill();

  ClientResult<> R = Conn->Client.cmd(Sid, "where");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.code(), static_cast<unsigned>(WireError::NoSuchSession));
  EXPECT_EQ(Gw.counters().SessionsLost, 1u);
  EXPECT_EQ(Gw.sessionCount(), 0u);

  // The surviving backend still takes new sessions.
  ClientResult<uint64_t> Fresh = Conn->Client.open();
  EXPECT_TRUE(Fresh.ok()) << Fresh.errorText();
}

} // namespace
