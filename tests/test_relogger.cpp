//===- tests/test_relogger.cpp - Exclusion relogging tests -------------------===//

#include "replay/logger.h"
#include "replay/relogger.h"
#include "replay/replayer.h"
#include "test_util.h"

#include <gtest/gtest.h>

using namespace drdebug;
using namespace drdebug::testutil;

namespace {

/// Straight-line program with a clearly delimited middle section whose
/// results feed the tail.
Program makeSectionedProgram() {
  return assembleOrDie(".data a 0\n.data b 0\n.data c 0\n"
                       ".func main\n"
                       // prologue: indices 0..2
                       "  movi r1, 5\n"
                       "  sta r1, @a\n"
                       "  movi r2, 0\n"
                       // middle: indices 3..6 (candidate for exclusion)
                       "  lda r3, @a\n"
                       "  muli r3, r3, 10\n"
                       "  sta r3, @b\n"
                       "  movi r4, 111\n"
                       // tail: indices 7..
                       "  lda r5, @b\n"
                       "  addi r5, r5, 1\n"
                       "  sta r5, @c\n"
                       "  lda r6, @c\n"
                       "  syswrite r6\n"
                       "  syswrite r4\n"
                       "  halt\n.endfunc\n");
}

Pinball recordWhole(const Program &P) {
  RoundRobinScheduler Sched(1);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  EXPECT_EQ(Log.Reason, Machine::StopReason::Halted);
  return Log.Pb;
}

TEST(Relogger, ExcludedRegionSideEffectsAreInjected) {
  Program P = makeSectionedProgram();
  Pinball Region = recordWhole(P);

  // Exclude the middle (per-thread dynamic indices 3..6 inclusive -> [3,7)).
  ExclusionRegion Excl;
  Excl.Tid = 0;
  Excl.BeginIndex = 3;
  Excl.EndIndex = 7;
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {Excl}, Slice, Error)) << Error;

  EXPECT_EQ(Slice.Meta.at("kind"), "slice");
  EXPECT_EQ(Slice.instructionCount(), Region.instructionCount() - 4);
  ASSERT_EQ(Slice.Injections.size(), 1u);
  const Injection &Inj = Slice.Injections[0];
  EXPECT_EQ(Inj.Tid, 0u);
  EXPECT_EQ(Inj.ResumePc, 7u);
  // The excluded section wrote @b = 50.
  uint64_t B = P.findGlobal("b")->Addr;
  bool FoundB = false;
  for (auto &[Addr, Val] : Inj.MemWrites)
    if (Addr == B) {
      FoundB = true;
      EXPECT_EQ(Val, 50);
    }
  EXPECT_TRUE(FoundB);
  // The excluded section set r3 = 50 and r4 = 111.
  bool FoundR3 = false, FoundR4 = false;
  for (auto &[Reg, Val] : Inj.RegWrites) {
    if (Reg == 3) {
      FoundR3 = true;
      EXPECT_EQ(Val, 50);
    }
    if (Reg == 4) {
      FoundR4 = true;
      EXPECT_EQ(Val, 111);
    }
  }
  EXPECT_TRUE(FoundR3);
  EXPECT_TRUE(FoundR4);

  // Replaying the slice pinball skips the middle but the tail still sees
  // all its values.
  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid()) << Rep.error();
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  ASSERT_EQ(Rep.machine().output().size(), 2u);
  EXPECT_EQ(Rep.machine().output()[0], 51);
  EXPECT_EQ(Rep.machine().output()[1], 111);
}

TEST(Relogger, LeadingExclusionRedirectsInitialPc) {
  Program P = makeSectionedProgram();
  Pinball Region = recordWhole(P);

  ExclusionRegion Excl;
  Excl.Tid = 0;
  Excl.BeginIndex = 0;
  Excl.EndIndex = 7;
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {Excl}, Slice, Error)) << Error;

  // The schedule must start with the injection, then steps.
  ASSERT_FALSE(Slice.Schedule.empty());
  EXPECT_EQ(Slice.Schedule[0].K, ScheduleEvent::Kind::Inject);

  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(Rep.machine().output()[0], 51);
}

TEST(Relogger, TrailingExclusionHasNoResume) {
  Program P = makeSectionedProgram();
  Pinball Region = recordWhole(P);

  ExclusionRegion Excl;
  Excl.Tid = 0;
  Excl.BeginIndex = 7;
  Excl.EndIndex = ~0ULL;
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {Excl}, Slice, Error)) << Error;
  ASSERT_EQ(Slice.Injections.size(), 1u);
  EXPECT_EQ(Slice.Injections[0].ResumePc, Injection::NoResume);
  EXPECT_EQ(Slice.instructionCount(), 7u);

  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid());
  Rep.run();
  // Nothing was written: the writes happened in the excluded tail, but their
  // side effects were still injected, so memory agrees with the full run.
  uint64_t C = P.findGlobal("c")->Addr;
  EXPECT_EQ(Rep.machine().mem().load(C), 51);
  EXPECT_TRUE(Rep.machine().output().empty());
}

TEST(Relogger, ExcludedSyscallsStayOutOfSlicePinball) {
  Program P = assembleOrDie(".func main\n"
                            "  sysrand r1\n" // 0
                            "  sysrand r2\n" // 1 (excluded)
                            "  sysrand r3\n" // 2
                            "  add r4, r1, r3\n"
                            "  syswrite r4\n"
                            "  halt\n.endfunc\n");
  Pinball Region = recordWhole(P);
  ASSERT_EQ(Region.Syscalls.size(), 3u);

  ExclusionRegion Excl;
  Excl.Tid = 0;
  Excl.BeginIndex = 1;
  Excl.EndIndex = 2;
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {Excl}, Slice, Error)) << Error;
  ASSERT_EQ(Slice.Syscalls.size(), 2u);
  EXPECT_EQ(Slice.Syscalls[0].Value, Region.Syscalls[0].Value);
  EXPECT_EQ(Slice.Syscalls[1].Value, Region.Syscalls[2].Value);

  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid());
  Rep.run();
  ASSERT_EQ(Rep.machine().output().size(), 1u);
  EXPECT_EQ(Rep.machine().output()[0],
            Region.Syscalls[0].Value + Region.Syscalls[2].Value);
  // And r2 was injected with the excluded syscall's value anyway (register
  // side effect of the excluded region).
  EXPECT_EQ(Rep.machine().thread(0).Regs[2], Region.Syscalls[1].Value);
}

TEST(Relogger, MultipleRegionsOneThread) {
  Program P = makeSectionedProgram();
  Pinball Region = recordWhole(P);

  ExclusionRegion E1{0, 2, 3, 0, 0, 0, 0};  // movi r2
  ExclusionRegion E2{0, 6, 7, 0, 0, 0, 0};  // movi r4
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {E1, E2}, Slice, Error)) << Error;
  EXPECT_EQ(Slice.Injections.size(), 2u);
  EXPECT_EQ(Slice.instructionCount(), Region.instructionCount() - 2);

  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
  EXPECT_EQ(Rep.machine().output()[0], 51);
  EXPECT_EQ(Rep.machine().output()[1], 111);
}

/// Two threads; one thread's excluded region must not clobber the other
/// thread's later included write (boundary-value side-effect detection).
TEST(Relogger, InterleavedWritesUseBoundaryValues) {
  Program P = assembleOrDie(".data x 0\n.data sync 0\n"
                            ".func main\n"
                            "  spawn r1, w, r0\n"
                            "  movi r2, 1\n"
                            "  sta r2, @x\n"   // main idx 2 (excluded)
                            "  movi r3, 1\n"
                            "  sta r3, @sync\n" // idx 4: release worker
                            "wait:\n"
                            "  lda r4, @sync\n" // idx 5,8,... spin
                            "  movi r5, 2\n"
                            "  bne r4, r5, wait\n"
                            "  lda r6, @x\n"
                            "  syswrite r6\n"
                            "  join r1\n"
                            "  halt\n.endfunc\n"
                            ".func w\n"
                            "wspin:\n"
                            "  lda r1, @sync\n"
                            "  movi r2, 1\n"
                            "  bne r1, r2, wspin\n"
                            "  movi r3, 42\n"
                            "  sta r3, @x\n"   // overwrites main's store
                            "  movi r4, 2\n"
                            "  sta r4, @sync\n"
                            "  ret\n.endfunc\n");
  RoundRobinScheduler Sched(2);
  LogResult Log = Logger::logWholeProgram(P, Sched);
  ASSERT_EQ(Log.Reason, Machine::StopReason::Halted);
  ASSERT_EQ(Log.Pb.Schedule.empty(), false);
  // The full run prints 42.
  {
    Replayer Rep(Log.Pb);
    ASSERT_TRUE(Rep.valid());
    Rep.run();
    ASSERT_EQ(Rep.machine().output().size(), 1u);
    EXPECT_EQ(Rep.machine().output()[0], 42);
  }

  // Exclude the main thread's spin loop (a long stretch containing loads
  // only) — pick indices by scanning the recorded region replay.
  // Main thread: 0 spawn, 1 movi, 2 sta@x, 3 movi, 4 sta@sync, then the
  // spin loop (lda/movi/bne)* and finally lda @x, syswrite, join, halt.
  // Exclude main's own sta @x at index 2 and verify the injection does not
  // clobber the worker's 42: the injection fires at index 3 with the
  // boundary value of @x — which is 1 at that moment (worker hasn't run yet
  // under quantum-2 round robin? it may have; either way the boundary value
  // equals whatever the full run had there, so the final lda must see 42).
  ExclusionRegion Excl{0, 2, 3, 0, 0, 0, 0};
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Log.Pb, {Excl}, Slice, Error)) << Error;
  Replayer Rep(Slice);
  ASSERT_TRUE(Rep.valid());
  Rep.run();
  ASSERT_EQ(Rep.machine().output().size(), 1u);
  EXPECT_EQ(Rep.machine().output()[0], 42);
}

/// Property: excluding any single instruction (other than spawn/join/
/// syswrite/assert/halt) preserves the final memory state and output of a
/// deterministic straight-line program, because its side effects are
/// injected.
class ExcludeOneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExcludeOneTest, FinalStatePreserved) {
  Program P = makeSectionedProgram();
  Pinball Region = recordWhole(P);
  uint64_t Idx = GetParam();

  ExclusionRegion Excl{0, Idx, Idx + 1, 0, 0, 0, 0};
  Pinball Slice;
  std::string Error;
  ASSERT_TRUE(Relogger::relog(Region, {Excl}, Slice, Error)) << Error;

  Replayer Full(Region), Sliced(Slice);
  ASSERT_TRUE(Full.valid() && Sliced.valid());
  Full.run();
  Sliced.run();
  for (const char *Name : {"a", "b", "c"}) {
    uint64_t Addr = P.findGlobal(Name)->Addr;
    EXPECT_EQ(Sliced.machine().mem().load(Addr),
              Full.machine().mem().load(Addr))
        << "global " << Name << " excluding idx " << Idx;
  }
}

INSTANTIATE_TEST_SUITE_P(EachInstruction, ExcludeOneTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

} // namespace
