//===- tests/test_debugger_more.cpp - Additional debugger coverage ------------===//

#include "debugger/session.h"
#include "test_util.h"
#include "workloads/figure5.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace drdebug;
using namespace drdebug::testutil;
using namespace drdebug::workloads;

namespace {

struct Fixture {
  std::ostringstream Out;
  DebugSession S{Out};
  std::string take() {
    std::string Text = Out.str();
    Out.str("");
    return Text;
  }
};

TEST(DebuggerMore, SliceDepsShowsProducers) {
  Program P = makeFigure5(nullptr);
  Fixture F;
  F.S.loadProgramText(P.SourceText);
  F.S.runScript({"record failure", "slice fail"});
  F.take();
  // The last slice entry is the assert; its producers include a data dep.
  ASSERT_TRUE(F.S.currentSlice().has_value());
  size_t Last = F.S.currentSlice()->Positions.size() - 1;
  F.S.execute("slice deps " + std::to_string(Last));
  std::string Text = F.take();
  EXPECT_NE(Text.find("dependences of pos"), std::string::npos) << Text;
  EXPECT_NE(Text.find("data <- pos"), std::string::npos) << Text;
}

TEST(DebuggerMore, SliceForwardFromRacyWrite) {
  Figure5Lines Lines;
  Program P = makeFigure5(&Lines);
  Fixture F;
  F.S.loadProgramText(P.SourceText);
  F.S.execute("record failure");
  F.take();
  uint64_t RacyPc = ~0ULL;
  for (uint64_t Pc = 0; Pc != P.size(); ++Pc)
    if (P.inst(Pc).Line == Lines.RacyWriteLine)
      RacyPc = Pc;
  F.S.execute("slice forward 0 " + std::to_string(RacyPc));
  std::string Text = F.take();
  EXPECT_NE(Text.find("forward slice:"), std::string::npos) << Text;
  ASSERT_TRUE(F.S.currentSlice().has_value());
  EXPECT_GT(F.S.currentSlice()->dynamicSize(), 1u);
}

TEST(DebuggerMore, BacktraceShowsCallChain) {
  Fixture F;
  F.S.loadProgramText(".func main\n"
                      "  call outer\n"
                      "  halt\n.endfunc\n"
                      ".func outer\n"
                      "  call inner\n" // pc 2
                      "  ret\n.endfunc\n"
                      ".func inner\n"
                      "  nop\n"        // pc 4: break here
                      "  ret\n.endfunc\n");
  F.S.execute("break inner");
  F.S.execute("run");
  F.take();
  F.S.execute("backtrace 0");
  std::string Text = F.take();
  EXPECT_NE(Text.find("#0 4 <inner+0>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("#1 return to 3 <outer+1>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("#2 return to 1 <main+1>"), std::string::npos) << Text;
}

TEST(DebuggerMore, StepiExecutesExactCount) {
  Fixture F;
  F.S.loadProgramText(".func main\n"
                      "  movi r1, 1\n  movi r2, 2\n  movi r3, 3\n"
                      "  halt\n.endfunc\n");
  F.S.execute("break main");
  F.S.execute("run");
  F.take();
  F.S.execute("stepi 2");
  F.take();
  Machine *M = F.S.currentMachine();
  ASSERT_TRUE(M);
  EXPECT_EQ(M->thread(0).ExecCount, 2u);
  EXPECT_EQ(M->thread(0).Regs[2], 2);
  EXPECT_EQ(M->thread(0).Regs[3], 0);
}

TEST(DebuggerMore, RecordRegionCommand) {
  Fixture F;
  F.S.loadProgramText(".func main\n"
                      "  movi r1, 50\n"
                      "l:\n  subi r1, r1, 1\n  bgt r1, r0, l\n"
                      "  halt\n.endfunc\n");
  F.S.execute("record region 10 20");
  std::string Text = F.take();
  EXPECT_NE(Text.find("20 in main thread"), std::string::npos) << Text;
  ASSERT_TRUE(F.S.regionPinball().has_value());
  EXPECT_EQ(F.S.regionPinball()->StartState.Threads[0].ExecCount, 10u);
  F.S.execute("replay");
  EXPECT_NE(F.take().find("replay complete"), std::string::npos);
}

TEST(DebuggerMore, SliceCommandsRequireState) {
  Fixture F;
  F.S.loadProgramText(".func main\n  halt\n.endfunc\n");
  F.S.execute("slice fail");
  EXPECT_NE(F.take().find("no region pinball"), std::string::npos);
  F.S.execute("slice list");
  EXPECT_NE(F.take().find("no slice computed"), std::string::npos);
  F.S.execute("slice replay");
  EXPECT_NE(F.take().find("no slice pinball"), std::string::npos);
  F.S.execute("slice step");
  EXPECT_NE(F.take().find("not replaying a slice"), std::string::npos);
  F.S.execute("reverse-stepi");
  EXPECT_NE(F.take().find("needs an active replay"), std::string::npos);
}

TEST(DebuggerMore, SliceOnExplicitCriterion) {
  Fixture F;
  F.S.loadProgramText(".data g 0\n"
                      ".func main\n"
                      "  movi r1, 4\n"   // pc 0
                      "  addi r1, r1, 1\n"
                      "  sta r1, @g\n"   // pc 2
                      "  halt\n.endfunc\n");
  F.S.execute("record failure"); // runs to completion, no failure
  F.take();
  F.S.execute("slice 0 2");
  std::string Text = F.take();
  EXPECT_NE(Text.find("slice: 3 dynamic instructions"), std::string::npos)
      << Text;
}

TEST(DebuggerMore, SliceOnNeverExecutedPcFails) {
  Fixture F;
  F.S.loadProgramText(".func main\n"
                      "  jmp over\n"
                      "  nop\n" // pc 1: skipped
                      "over:\n"
                      "  halt\n.endfunc\n");
  F.S.execute("record failure");
  F.take();
  F.S.execute("slice 0 1");
  EXPECT_NE(F.take().find("never executed"), std::string::npos);
}

TEST(DebuggerMore, OutputDuringReplayMatchesLive) {
  Fixture F;
  F.S.loadProgramText(".func main\n"
                      "  sysrand r1\n  modi r1, r1, 100\n  syswrite r1\n"
                      "  halt\n.endfunc\n");
  F.S.execute("run 9");
  F.S.execute("output");
  std::string Live = F.take();
  F.S.execute("record failure 9");
  F.S.execute("replay");
  F.take();
  F.S.execute("output");
  std::string Replayed = F.take();
  // Both runs used seed 9, so the recorded value equals the live one.
  EXPECT_EQ(Live.substr(Live.find("output:")),
            Replayed.substr(Replayed.find("output:")));
}

} // namespace
