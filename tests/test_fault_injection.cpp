//===- tests/test_fault_injection.cpp - Robustness under injected faults ------===//
//
// The corruption matrix and fault-injection harness: every pinball file is
// damaged every way (bit flip, truncation, deletion) and the loader must
// name the culprit; saves survive injected crashes and full disks without
// leaving partial state; replay stops with a structured divergence report
// on every kind of recording drift; and the protocol client retries its way
// to a byte-identical transcript over a lossy transport.
//
//===----------------------------------------------------------------------===//

#include "replay/logger.h"
#include "replay/manifest.h"
#include "replay/replayer.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "support/fault_injector.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace drdebug;
using namespace drdebug::testutil;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string slurp(const fs::path &P) {
  std::ifstream IS(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return Buf.str();
}

void spit(const fs::path &P, const std::string &Content) {
  std::ofstream OS(P, std::ios::binary | std::ios::trunc);
  OS << Content;
}

/// Base fixture: a saved pinball in a scratch directory, and a pristine
/// FaultInjector before and after every test.
class FaultInjection : public ::testing::Test {
protected:
  fs::path Base, Dir;

  void SetUp() override {
    FaultInjector::global().reset();
    Base = fs::temp_directory_path() /
           ("drdebug_faults_" + std::to_string(::getpid()));
    fs::remove_all(Base);
    fs::create_directories(Base);
    Dir = Base / "pinball";
    Program P = assembleOrDie(".data g 0\n"
                              ".func main\n"
                              "  sysrand r1\n  sta r1, @g\n"
                              "  halt\n.endfunc\n");
    RoundRobinScheduler Sched(1);
    LogResult Log = Logger::logWholeProgram(P, Sched);
    std::string Error;
    ASSERT_TRUE(Log.Pb.save(Dir.string(), Error)) << Error;
  }
  void TearDown() override {
    FaultInjector::global().reset();
    fs::remove_all(Base);
  }

  bool load(Pinball &Pb, std::string &Error, bool Verify = true,
            PinballIntegrity *Info = nullptr) {
    PinballLoadOptions Opts;
    Opts.Verify = Verify;
    return Pb.load(Dir.string(), Error, Opts, Info);
  }
};

//===----------------------------------------------------------------------===//
// The corruption matrix
//===----------------------------------------------------------------------===//

TEST_F(FaultInjection, CorruptionMatrixNamesTheDamagedFile) {
  // Every payload file x {bit flip, truncate, delete}: the load must fail
  // and the diagnostic must name the file. Each case starts from a pristine
  // copy so damage never accumulates.
  fs::path Master = Base / "master";
  fs::copy(Dir, Master, fs::copy_options::recursive);

  enum class Damage { BitFlip, Truncate, Delete };
  for (const char *Name : Pinball::fileNames()) {
    for (Damage D : {Damage::BitFlip, Damage::Truncate, Damage::Delete}) {
      fs::remove_all(Dir);
      fs::copy(Master, Dir, fs::copy_options::recursive);
      std::string Content = slurp(Dir / Name);
      switch (D) {
      case Damage::BitFlip:
        if (Content.empty())
          continue; // nothing to flip (e.g. empty injections.txt)
        Content[Content.size() / 2] ^= 0x20;
        spit(Dir / Name, Content);
        break;
      case Damage::Truncate:
        if (Content.empty())
          continue;
        spit(Dir / Name, Content.substr(0, Content.size() / 2));
        break;
      case Damage::Delete:
        fs::remove(Dir / Name);
        break;
      }
      Pinball Pb;
      std::string Error;
      EXPECT_FALSE(load(Pb, Error))
          << Name << " damage " << static_cast<int>(D)
          << " was not detected";
      EXPECT_NE(Error.find(Name), std::string::npos)
          << "diagnostic does not name " << Name << ": " << Error;
    }
  }

  // The pristine copy still loads: no sticky state from the failures above.
  fs::remove_all(Dir);
  fs::copy(Master, Dir, fs::copy_options::recursive);
  Pinball Pb;
  std::string Error;
  PinballIntegrity Info;
  EXPECT_TRUE(load(Pb, Error, true, &Info)) << Error;
  EXPECT_TRUE(Info.ManifestPresent);
  EXPECT_EQ(Info.FormatVersion, PinballManifest::FormatVersion);
  EXPECT_TRUE(Info.Warning.empty());
}

TEST_F(FaultInjection, ManifestDeletionMeansLegacyPinball) {
  // A pinball without manifest.txt predates the manifest: it loads, with a
  // warning, and replays.
  fs::remove(Dir / PinballManifest::FileName);
  Pinball Pb;
  std::string Error;
  PinballIntegrity Info;
  ASSERT_TRUE(load(Pb, Error, true, &Info)) << Error;
  EXPECT_FALSE(Info.ManifestPresent);
  EXPECT_NE(Info.Warning.find("legacy"), std::string::npos) << Info.Warning;
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid());
  EXPECT_EQ(Rep.run(), Machine::StopReason::Halted);
}

TEST_F(FaultInjection, NewerFormatVersionIsRejected) {
  std::string Text = slurp(Dir / PinballManifest::FileName);
  size_t Pos = Text.find("drdebug-pinball ");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, std::string("drdebug-pinball 1").size(),
               "drdebug-pinball 99");
  spit(Dir / PinballManifest::FileName, Text);
  Pinball Pb;
  std::string Error;
  PinballIntegrity Info;
  EXPECT_FALSE(load(Pb, Error, true, &Info));
  EXPECT_TRUE(Info.IntegrityViolation);
  EXPECT_NE(Error.find("newer"), std::string::npos) << Error;
}

TEST_F(FaultInjection, NoVerifyIsAnEscapeHatch) {
  // A hand-edited syscall value breaks the checksum but not the parser.
  std::string Text = slurp(Dir / "syscalls.txt");
  size_t LastDigit = Text.find_last_of("0123456789");
  ASSERT_NE(LastDigit, std::string::npos);
  Text[LastDigit] = '0' + (Text[LastDigit] - '0' + 1) % 10;
  spit(Dir / "syscalls.txt", Text);

  Pinball Pb;
  std::string Error;
  EXPECT_FALSE(load(Pb, Error)) << "checksum should catch the edit";
  EXPECT_NE(Error.find("syscalls.txt"), std::string::npos) << Error;
  EXPECT_TRUE(load(Pb, Error, /*Verify=*/false)) << Error;
}

TEST_F(FaultInjection, ShortReadIsCaughtByTheManifest) {
  // The ShortRead probe halves the first file read off disk — an
  // interrupted transfer the size check must catch.
  FaultInjector::global().arm("pinball.read", FaultKind::ShortRead,
                              /*Period=*/1);
  Pinball Pb;
  std::string Error;
  EXPECT_FALSE(load(Pb, Error));
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
  EXPECT_GE(FaultInjector::global().firedCount("pinball.read"), 1u);

  FaultInjector::global().reset();
  EXPECT_TRUE(load(Pb, Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Crash-safe persistence
//===----------------------------------------------------------------------===//

TEST_F(FaultInjection, CrashDuringSaveLeavesOldPinballIntact) {
  Pinball Old;
  std::string Error;
  ASSERT_TRUE(load(Old, Error)) << Error;

  Pinball Updated = Old;
  Updated.Meta["tag"] = "updated";
  FaultInjector::global().arm("pinball.crash", FaultKind::Crash, 1);
  EXPECT_FALSE(Updated.save(Dir.string(), Error));
  EXPECT_NE(Error.find("crash"), std::string::npos) << Error;
  FaultInjector::global().reset();

  // The crash left the temp directory behind (as kill -9 would) and the
  // target untouched: it still verifies and carries the old metadata.
  fs::path Tmp = Dir;
  Tmp += ".tmp-" + std::to_string(static_cast<unsigned long>(::getpid()));
  EXPECT_TRUE(fs::exists(Tmp));
  Pinball Pb;
  ASSERT_TRUE(load(Pb, Error)) << Error;
  EXPECT_EQ(Pb.Meta.count("tag"), 0u);

  // The next save sweeps the stale temp dir and commits.
  ASSERT_TRUE(Updated.save(Dir.string(), Error)) << Error;
  EXPECT_FALSE(fs::exists(Tmp));
  ASSERT_TRUE(load(Pb, Error)) << Error;
  EXPECT_EQ(Pb.Meta["tag"], "updated");
}

TEST_F(FaultInjection, FailedSaveLeavesNoPartialDirectory) {
  for (FaultKind K : {FaultKind::DiskFull, FaultKind::ShortWrite}) {
    FaultInjector::global().reset();
    // Phase 2: the first two files write fine, the third fails — the
    // half-written temp dir must be cleaned up and the target never appear.
    FaultInjector::global().arm("pinball.write", K, /*Period=*/1000,
                                /*Phase=*/2);
    Pinball Pb;
    std::string Error;
    ASSERT_TRUE(load(Pb, Error)) << Error;
    fs::path Fresh = Base / ("fresh_" + std::string(faultKindName(K)));
    EXPECT_FALSE(Pb.save(Fresh.string(), Error));
    EXPECT_NE(Error.find("failed"), std::string::npos) << Error;
    EXPECT_FALSE(fs::exists(Fresh)) << "partial pinball left behind";
    fs::path Tmp = Fresh;
    Tmp += ".tmp-" + std::to_string(static_cast<unsigned long>(::getpid()));
    EXPECT_FALSE(fs::exists(Tmp)) << "temp directory left behind";
  }
}

//===----------------------------------------------------------------------===//
// Allocation bounds
//===----------------------------------------------------------------------===//

TEST_F(FaultInjection, CorruptedCountsNeverDriveAllocation) {
  // A damaged count field must be rejected by a bound check, not handed to
  // a vector resize. (Verify=false: this guards the parser itself.)
  spit(Dir / "injections.txt", "inject 0 0 0 184467440737095516\n");
  Pinball Pb;
  std::string Error;
  EXPECT_FALSE(load(Pb, Error, /*Verify=*/false));
  EXPECT_NE(Error.find("exceeds limit"), std::string::npos) << Error;

  spit(Dir / "state.txt", "threads 4294967295\n");
  EXPECT_FALSE(load(Pb, Error, /*Verify=*/false));
  EXPECT_NE(Error.find("exceeds limit"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Replay divergence detection
//===----------------------------------------------------------------------===//

class Divergence : public FaultInjection {
protected:
  /// Loads without verification (these tests hand-edit the recording),
  /// replays to the end, and returns the report.
  DivergenceReport replayEdited(Machine::StopReason Expect) {
    Pinball Pb;
    std::string Error;
    PinballLoadOptions Opts;
    Opts.Verify = false;
    EXPECT_TRUE(Pb.load(Dir.string(), Error, Opts)) << Error;
    Replayer Rep(Pb);
    EXPECT_TRUE(Rep.valid());
    EXPECT_EQ(Rep.run(), Expect);
    return Rep.divergence();
  }
};

TEST_F(Divergence, UnknownInjectionId) {
  std::string Sched = slurp(Dir / "schedule.txt");
  spit(Dir / "schedule.txt", "i 42\n" + Sched);
  DivergenceReport R = replayEdited(Machine::StopReason::StopRequested);
  EXPECT_EQ(R.Kind, DivergenceKind::UnknownInjection);
  EXPECT_NE(R.describe().find("42"), std::string::npos) << R.describe();
}

TEST_F(Divergence, ScheduleOutlivesTheProgram) {
  std::string Sched = slurp(Dir / "schedule.txt");
  spit(Dir / "schedule.txt", Sched + "s 0 5\n");
  DivergenceReport R = replayEdited(Machine::StopReason::StopRequested);
  EXPECT_EQ(R.Kind, DivergenceKind::ScheduleNotExhausted);
}

TEST_F(Divergence, SyscallKindMismatch) {
  // Rewrite the recorded syscall's opcode: replay then requests a
  // different kind than the recording holds.
  std::istringstream IS(slurp(Dir / "syscalls.txt"));
  uint32_t Tid;
  int Op;
  int64_t Value;
  ASSERT_TRUE(IS >> Tid >> Op >> Value);
  std::ostringstream OS;
  OS << Tid << " " << (Op + 1) << " " << Value << "\n";
  spit(Dir / "syscalls.txt", OS.str());
  DivergenceReport R = replayEdited(Machine::StopReason::StopRequested);
  EXPECT_EQ(R.Kind, DivergenceKind::SyscallKindMismatch);
  EXPECT_NE(R.describe().find("recorded"), std::string::npos)
      << R.describe();
}

TEST_F(Divergence, InstructionCountDrift) {
  std::string Meta = slurp(Dir / "meta.txt");
  size_t Pos = Meta.find("instrs=");
  ASSERT_NE(Pos, std::string::npos) << Meta;
  Meta.insert(Pos + std::string("instrs=").size(), "9");
  spit(Dir / "meta.txt", Meta);
  DivergenceReport R = replayEdited(Machine::StopReason::StopRequested);
  EXPECT_EQ(R.Kind, DivergenceKind::InstructionCountDrift);
}

TEST_F(Divergence, EndPcDrift) {
  std::string Meta = slurp(Dir / "meta.txt");
  size_t Pos = Meta.find("endpcs=0:");
  ASSERT_NE(Pos, std::string::npos) << Meta;
  Meta.insert(Pos + std::string("endpcs=0:").size(), "9");
  spit(Dir / "meta.txt", Meta);
  DivergenceReport R = replayEdited(Machine::StopReason::StopRequested);
  EXPECT_EQ(R.Kind, DivergenceKind::EndPcDrift);
  EXPECT_NE(R.describe().find("pc"), std::string::npos) << R.describe();
}

TEST_F(Divergence, RestoreClearsAndRediscoversTheReport) {
  // A fatal divergence found while seeking forward must be rediscovered
  // deterministically after restoring an earlier checkpoint.
  std::string Sched = slurp(Dir / "schedule.txt");
  spit(Dir / "schedule.txt", Sched + "s 7 1\n");
  Pinball Pb;
  std::string Error;
  PinballLoadOptions Opts;
  Opts.Verify = false;
  ASSERT_TRUE(Pb.load(Dir.string(), Error, Opts)) << Error;
  Replayer Rep(Pb);
  ASSERT_TRUE(Rep.valid());
  MachineState Start = Rep.machine().snapshot();
  ReplayCursor Cursor = Rep.cursor();
  EXPECT_EQ(Rep.run(), Machine::StopReason::StopRequested);
  EXPECT_EQ(Rep.divergence().Kind, DivergenceKind::ScheduleNotExhausted);
  Rep.restore(Start, Cursor);
  EXPECT_FALSE(Rep.divergence());
  EXPECT_EQ(Rep.run(), Machine::StopReason::StopRequested);
  EXPECT_EQ(Rep.divergence().Kind, DivergenceKind::ScheduleNotExhausted);
}

//===----------------------------------------------------------------------===//
// The server under faults
//===----------------------------------------------------------------------===//

/// A tiny deterministic program + script for transcript comparison.
const char *TinyAsm = ".data g 0\n"
                      ".func main\n"
                      "  movi r1, 6\n  muli r1, r1, 7\n  sta r1, @g\n"
                      "  lda r2, @g\n  syswrite r2\n  halt\n.endfunc\n";
const std::vector<std::string> TinyScript = {
    "run", "output", "print g", "info threads", "where",
};

/// Drives one session through \p Client; returns load + command output
/// concatenated.
std::string transcriptOver(ProtocolClient &Client) {
  std::string Out;
  ClientResult<uint64_t> Opened = Client.open();
  EXPECT_TRUE(Opened.ok()) << Opened.errorText();
  uint64_t Sid = Opened.value();
  ClientResult<> Loaded = Client.load(Sid, TinyAsm);
  EXPECT_TRUE(Loaded.ok()) << Loaded.errorText();
  Out += Loaded.value();
  for (const std::string &C : TinyScript) {
    ClientResult<> R = Client.cmd(Sid, C);
    EXPECT_TRUE(R.ok()) << "cmd '" << C << "': " << R.errorText();
    Out += R.value();
  }
  return Out;
}

TEST_F(FaultInjection, ClientRetriesToAByteIdenticalTranscript) {
  // Reference run: no faults.
  std::string Reference;
  {
    DebugServer Srv;
    auto [ClientEnd, ServerEnd] = makePipePair();
    std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
    ProtocolClient Client(*ClientEnd);
    Reference = transcriptOver(Client);
    ClientEnd->close();
    ServerThread.join();
  }
  ASSERT_NE(Reference.find("42"), std::string::npos) << Reference;

  // Faulty run: the server's responses cross a transport that drops every
  // third frame. The client times out, retransmits, and the server's
  // duplicate cache answers without re-executing — same bytes, exactly.
  FaultInjector::global().arm("srv.send", FaultKind::ShortWrite,
                              /*Period=*/3, /*Phase=*/1);
  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&Srv, SE = std::move(ServerEnd)]() mutable {
    std::unique_ptr<Transport> Faulty =
        makeFaultyTransport(std::move(SE), "srv");
    Srv.serve(*Faulty);
  });
  RetryPolicy Policy;
  Policy.MaxRetries = 6;
  Policy.RecvTimeoutMs = 200;
  Policy.InitialBackoffMs = 1;
  Policy.JitterSeed = 7;
  ProtocolClient Client(*ClientEnd, Policy);
  std::string FaultyRun = transcriptOver(Client);
  EXPECT_EQ(FaultyRun, Reference);
  EXPECT_GT(Client.retries(), 0u);
  EXPECT_GT(FaultInjector::global().firedCount("srv.send"), 0u);
  EXPECT_GT(Srv.stats().RetriesDeduped.load(), 0u);

  // The stats verb reports the retry and fault counters. Disarm first so
  // the stats response itself cannot be dropped; the keys are emitted even
  // at zero. (Same client: a fresh one would reuse low sequence numbers and
  // be answered from the duplicate cache.)
  FaultInjector::global().reset();
  ClientResult<> Stats = Client.stats();
  ASSERT_TRUE(Stats.ok()) << Stats.errorText();
  EXPECT_NE(Stats.value().find("retries.deduped"), std::string::npos)
      << Stats.value();
  EXPECT_NE(Stats.value().find("faults.injected.total"), std::string::npos)
      << Stats.value();
  ClientEnd->close();
  ServerThread.join();
}

TEST_F(FaultInjection, VerbDeadlineReturnsTimeoutErrorFrame) {
  // Arm the session-execute latency probe so the command takes ~200 ms,
  // then give the server a 40 ms deadline: the verb must come back as a
  // structured, transient deadline-timeout error while the job finishes in
  // the background and settles the watchdog gauge.
  ServerConfig Cfg;
  Cfg.CmdDeadline = std::chrono::milliseconds(40);
  DebugServer Srv(Cfg);
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid, TinyAsm);
    ASSERT_TRUE(R.ok()) << R.errorText();
    FaultInjector::global().arm("session.execute", FaultKind::Latency,
                                /*Period=*/1, /*Phase=*/0, /*Arg=*/200);
    ClientResult<> TimedOut = Client.cmd(Sid, "run");
    EXPECT_FALSE(TimedOut.ok());
    EXPECT_EQ(TimedOut.code(), static_cast<unsigned>(WireError::Timeout));
    EXPECT_TRUE(TimedOut.transient());
    EXPECT_NE(TimedOut.error().Message.find("deadline"), std::string::npos)
        << TimedOut.errorText();

    // Let the overdue job drain, then check the counters.
    FaultInjector::global().reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    R = Client.stats();
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("deadline.timeouts 1"), std::string::npos)
        << R.value();
    EXPECT_NE(R.value().find("watchdog.overdue 0"), std::string::npos)
        << R.value();
  }
  ClientEnd->close();
  ServerThread.join();
  EXPECT_EQ(Srv.stats().DeadlineTimeouts.load(), 1u);
  EXPECT_EQ(Srv.stats().OverdueJobs.load(), 0);
}

TEST_F(FaultInjection, ServerCountsIntegrityFailuresAndDivergences) {
  // A session that loads a corrupted pinball and replays a drifted one:
  // both incidents must land in the server's integrity.* stats.
  fs::path BadDir = Base / "bad";
  fs::copy(Dir, BadDir, fs::copy_options::recursive);
  std::string State = slurp(BadDir / "state.txt");
  State[State.size() / 2] ^= 0x01;
  spit(BadDir / "state.txt", State);

  fs::path DriftDir = Base / "drift";
  fs::copy(Dir, DriftDir, fs::copy_options::recursive);
  {
    // Make the drift survive manifest verification: re-point the manifest
    // at the edited schedule (the drift is in the *recording*, not the
    // files).
    std::string Sched = slurp(DriftDir / "schedule.txt") + "s 7 1\n";
    spit(DriftDir / "schedule.txt", Sched);
    std::string Text = slurp(DriftDir / PinballManifest::FileName);
    PinballManifest M;
    std::string Error;
    ASSERT_TRUE(M.parse(Text, Error)) << Error;
    M.add("schedule.txt", Sched);
    spit(DriftDir / PinballManifest::FileName, M.serialize());
  }

  DebugServer Srv;
  auto [ClientEnd, ServerEnd] = makePipePair();
  std::thread ServerThread([&, SE = ServerEnd.get()] { Srv.serve(*SE); });
  {
    ProtocolClient Client(*ClientEnd);
    ClientResult<uint64_t> Opened = Client.open();
    ASSERT_TRUE(Opened.ok()) << Opened.errorText();
    uint64_t Sid = Opened.value();
    ClientResult<> R = Client.load(Sid, TinyAsm);
    ASSERT_TRUE(R.ok()) << R.errorText();

    R = Client.cmd(Sid, "pinball load " + BadDir.string());
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("state.txt"), std::string::npos) << R.value();

    R = Client.cmd(Sid, "pinball load " + DriftDir.string());
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("pinball loaded"), std::string::npos)
        << R.value();
    R = Client.cmd(Sid, "replay");
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("replay divergence"), std::string::npos)
        << R.value();

    R = Client.stats();
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_NE(R.value().find("integrity.pinball_failures 1"),
              std::string::npos)
        << R.value();
    EXPECT_NE(R.value().find("integrity.divergences 1"), std::string::npos)
        << R.value();
  }
  ClientEnd->close();
  ServerThread.join();
}

TEST_F(FaultInjection, FaultSpecParsing) {
  FaultInjector &FI = FaultInjector::global();
  std::string Error;
  EXPECT_TRUE(FI.armFromSpec("server.send:bitflip:64,server.recv:shortread:"
                             "100:3,session.execute:latency:1:0:25",
                             Error))
      << Error;
  EXPECT_TRUE(FI.enabled());
  EXPECT_FALSE(FI.armFromSpec("nokind", Error));
  EXPECT_FALSE(FI.armFromSpec("server.send:frobnicate:1", Error));
  EXPECT_FALSE(FI.armFromSpec("server.send:bitflip:0", Error));
  // A typo'd site name used to arm a never-firing site silently; it is now
  // rejected against the probe-site catalog.
  EXPECT_FALSE(FI.armFromSpec("transporf.send:bitflip:64", Error));
  EXPECT_NE(Error.find("unknown fault site"), std::string::npos) << Error;
  EXPECT_TRUE(isKnownFaultSite("pinball.crash"));
  EXPECT_FALSE(isKnownFaultSite("pinball.crsh"));
  // The catalog report lists every known site and marks armed ones.
  std::string Report = FI.describe();
  EXPECT_NE(Report.find("journal.append"), std::string::npos);
  EXPECT_NE(Report.find("server.send [armed bitflip period 64"),
            std::string::npos)
      << Report;
  FI.reset();
  EXPECT_FALSE(FI.enabled());
}

TEST_F(FaultInjection, FaultInjectionIsDeterministic) {
  // Two identical probe sequences fire on exactly the same ordinals and
  // corrupt exactly the same bits.
  auto RunOnce = [&] {
    FaultInjector::global().reset(1);
    FaultInjector::global().arm("d.send", FaultKind::BitFlip, 3, 1);
    std::vector<std::string> Damaged;
    for (int I = 0; I != 12; ++I) {
      std::string Bytes = "payload-" + std::to_string(I);
      FaultInjector::global().maybeCorrupt("d.send", Bytes);
      Damaged.push_back(Bytes);
    }
    return Damaged;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
