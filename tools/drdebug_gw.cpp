//===- tools/drdebug_gw.cpp - The drdebugd fleet gateway ----------------------===//
//
// The sharded gateway tier: one wire-protocol endpoint in front of N
// drdebugd backends. Sessions are placed by rendezvous hashing, session
// ids stay stable across backend failover, and fan-out verbs (stats,
// metrics, drain, ...) aggregate the whole fleet. See docs/FLEET.md.
//
//   drdebug_gw --backend 127.0.0.1:7321 --backend 127.0.0.1:7322
//   drdebug_gw --backend 127.0.0.1:7321=/var/lib/drdebugd-1 \
//              --failover-dir /tmp/gw-failover
//
// A `=dir` suffix on --backend names the backend's --journal-dir (must be
// reachable from the gateway host): when that backend dies without
// draining, the gateway recovers the journals in-process and re-imports
// the sessions onto the survivors.
//
// Connect with: drdebug --connect 127.0.0.1:<port> — the gateway speaks
// the same protocol as drdebugd.
//
//===----------------------------------------------------------------------===//

#include "debugger/commands.h"
#include "fleet/gateway.h"
#include "server/verbs.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace drdebug;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: drdebug_gw --backend host:port[=journal-dir] "
               "[--backend ...] [--port N] [--pool N] "
               "[--failover-dir <dir>] [--retries N] "
               "[--retry-timeout-ms N] [--once] [--dump-verbs]\n");
  return 2;
}

volatile std::sig_atomic_t SignalStop = 0;
TcpListener *SignalListener = nullptr;

void onTermSignal(int) {
  SignalStop = 1;
  if (SignalListener)
    SignalListener->close();
}

/// Parses "host:port[=journal-dir]" into a GatewayBackend whose connector
/// dials the address fresh on every pooled connection.
bool parseBackend(const std::string &Spec, GatewayBackend &Out) {
  std::string Addr = Spec, Journal;
  size_t Eq = Spec.find('=');
  if (Eq != std::string::npos) {
    Addr = Spec.substr(0, Eq);
    Journal = Spec.substr(Eq + 1);
  }
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= Addr.size())
    return false;
  std::string Host = Addr.substr(0, Colon);
  long Port = std::strtol(Addr.c_str() + Colon + 1, nullptr, 10);
  if (Port <= 0 || Port > 65535)
    return false;
  Out.Name = Addr;
  Out.JournalDir = Journal;
  Out.Connect = [Host, Port]() -> std::unique_ptr<Transport> {
    std::string Error;
    return tcpConnect(Host, static_cast<uint16_t>(Port), Error);
  };
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint16_t Port = 7322;
  bool Once = false;
  GatewayConfig Cfg;
  for (int I = 1; I < Argc; ++I) {
    auto IntArg = [&](long &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtol(Argv[++I], nullptr, 10);
      return true;
    };
    long V = 0;
    if (std::strcmp(Argv[I], "--backend") == 0 && I + 1 < Argc) {
      GatewayBackend B;
      if (!parseBackend(Argv[++I], B)) {
        std::fprintf(stderr, "drdebug_gw: bad --backend spec '%s'\n", Argv[I]);
        return 2;
      }
      Cfg.Backends.push_back(std::move(B));
    } else if (std::strcmp(Argv[I], "--port") == 0 && IntArg(V)) {
      Port = static_cast<uint16_t>(V);
    } else if (std::strcmp(Argv[I], "--pool") == 0 && IntArg(V)) {
      Cfg.PoolPerBackend = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--failover-dir") == 0 && I + 1 < Argc) {
      Cfg.FailoverDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--retries") == 0 && IntArg(V)) {
      Cfg.Retry.MaxRetries = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--retry-timeout-ms") == 0 && IntArg(V)) {
      Cfg.Retry.RecvTimeoutMs = static_cast<uint64_t>(V);
    } else if (std::strcmp(Argv[I], "--once") == 0) {
      Once = true;
    } else if (std::strcmp(Argv[I], "--dump-verbs") == 0) {
      std::printf("%s\n%s", renderVerbTableMarkdown().c_str(),
                  renderErrorTableMarkdown().c_str());
      return 0;
    } else if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("drdebug_gw %s\n", DrDebugVersion);
      return 0;
    } else {
      return usage();
    }
  }
  if (Cfg.Backends.empty()) {
    std::fprintf(stderr, "drdebug_gw: at least one --backend is required\n");
    return 2;
  }

  Gateway Gw(Cfg);
  if (Gw.aliveCount() == 0)
    std::fprintf(stderr,
                 "drdebug_gw: warning: no backend answered hello "
                 "(serving anyway; placement will fail)\n");
  TcpListener Listener;
  std::string Error;
  if (!Listener.listen(Port, Error)) {
    std::fprintf(stderr, "drdebug_gw: %s\n", Error.c_str());
    return 1;
  }
  SignalListener = &Listener;
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);
  std::printf("drdebug_gw %s listening on 127.0.0.1:%u (%zu backends, "
              "%zu alive)\n",
              DrDebugVersion, Listener.port(), Gw.backendCount(),
              Gw.aliveCount());
  std::fflush(stdout);

  std::vector<std::thread> Connections;
  while (!Gw.shutdownRequested() && !SignalStop) {
    std::unique_ptr<Transport> Conn = Listener.accept();
    if (!Conn)
      break;
    if (Once) {
      Gw.serve(*Conn);
      break;
    }
    auto Shared = std::shared_ptr<Transport>(std::move(Conn));
    Connections.emplace_back([&Gw, &Listener, C = Shared] {
      Gw.serve(*C);
      if (Gw.shutdownRequested())
        Listener.close();
    });
  }
  Listener.close();
  for (std::thread &T : Connections)
    T.join();
  std::printf("drdebug_gw: bye\n");
  return 0;
}
