//===- tools/drdebug_chaos.cpp - kill -9 chaos harness for drdebugd -----------===//
//
// Proves the durability contract against a REAL drdebugd process, not an
// in-process server:
//
//   crash mode (default)   for each round: start drdebugd --journal-dir,
//                          run the Figure 5 cyclic-debugging setup, fire one
//                          more verb and kill -9 the daemon mid-verb, then
//                          restart it on the same journal dir and assert the
//                          recovered session's probe output is byte-identical
//                          to an uninterrupted reference (with or without
//                          the in-flight command, depending on whether its
//                          journal append survived the kill — both are
//                          legal outcomes, anything else is corruption).
//
//   --migrate              SIGTERM a daemon with sessions resident, assert
//                          the graceful drain exported bundles, import them
//                          into a second daemon and compare probe output.
//
//   --overload             hammer a daemon configured with a tiny admission
//                          queue and an injected per-command delay; assert
//                          verbs are shed with `err overloaded` AND that
//                          every client eventually succeeds via the
//                          retry-after backoff.
//
// Used by `scripts/verify.sh --chaos` (which runs all three under ASan).
// Exit code 0 = every assertion held.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "workloads/figure5.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace drdebug;
namespace fs = std::filesystem;

namespace {

#ifndef DRDEBUG_DAEMON_PATH
#define DRDEBUG_DAEMON_PATH "drdebugd"
#endif

/// The cyclic-debugging session every mode replays, and the read-only
/// probes whose bytes define "the same session".
const std::vector<std::string> Setup = {"record failure", "replay",
                                        "reverse-stepi 5"};
const std::string KillVerb = "reverse-stepi 1";
const std::vector<std::string> Probes = {"where", "replay-position",
                                         "backtrace", "output"};

int Failures = 0;

void check(bool Ok, const std::string &What) {
  if (Ok) {
    std::printf("  ok: %s\n", What.c_str());
  } else {
    std::printf("  FAIL: %s\n", What.c_str());
    ++Failures;
  }
}

/// Reference probe output from an uninterrupted in-process session running
/// \p Cmds — what the recovered/migrated remote session must reproduce.
std::string referenceProbes(const std::vector<std::string> &Cmds) {
  std::ostringstream OS;
  DebugSession S(OS);
  S.loadProgramText(workloads::makeFigure5().SourceText);
  for (const std::string &C : Cmds)
    S.execute(C);
  std::string Out;
  for (const std::string &C : Probes)
    Out += S.executeCommand(C).Text;
  return Out;
}

/// One forked drdebugd. Stdout is piped back so the harness can parse the
/// ephemeral port (and see the recovery/drain banners when debugging).
struct Daemon {
  pid_t Pid = -1;
  uint16_t Port = 0;
  int OutFd = -1;

  bool start(const std::string &DaemonPath, std::vector<std::string> Args) {
    int Pipe[2];
    if (::pipe(Pipe) != 0)
      return false;
    Pid = ::fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      ::dup2(Pipe[1], STDOUT_FILENO);
      ::close(Pipe[0]);
      ::close(Pipe[1]);
      Args.insert(Args.begin(), DaemonPath);
      Args.push_back("--port");
      Args.push_back("0");
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(DaemonPath.c_str(), Argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    ::close(Pipe[1]);
    OutFd = Pipe[0];
    // Scan the banner lines for "listening on 127.0.0.1:<port>".
    std::string Buf;
    char C;
    while (Port == 0 && ::read(OutFd, &C, 1) == 1) {
      if (C != '\n') {
        Buf += C;
        continue;
      }
      size_t At = Buf.find("listening on 127.0.0.1:");
      if (At != std::string::npos)
        Port = static_cast<uint16_t>(
            std::strtoul(Buf.c_str() + At + std::strlen("listening on "
                                                        "127.0.0.1:"),
                         nullptr, 10));
      Buf.clear();
    }
    return Port != 0;
  }

  /// Drains remaining stdout (so the child never blocks on a full pipe)
  /// and returns it.
  std::string reapOutput() {
    std::string Out;
    char Buf[512];
    ssize_t N;
    while ((N = ::read(OutFd, Buf, sizeof(Buf))) > 0)
      Out.append(Buf, static_cast<size_t>(N));
    ::close(OutFd);
    OutFd = -1;
    return Out;
  }

  void kill9() {
    ::kill(Pid, SIGKILL);
    wait();
  }

  void sigterm() { ::kill(Pid, SIGTERM); }

  void wait() {
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    if (OutFd >= 0)
      reapOutput();
    Pid = -1;
  }
};

std::unique_ptr<Transport> connectTo(const Daemon &D) {
  std::string Error;
  for (int Try = 0; Try < 50; ++Try) {
    if (auto T = tcpConnect("127.0.0.1", D.Port, Error))
      return T;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("  FAIL: cannot connect to daemon: %s\n", Error.c_str());
  ++Failures;
  return nullptr;
}

/// Opens a session, loads Figure 5 and runs Setup over \p T. \returns the
/// session id (0 on failure).
uint64_t driveSetup(Transport &T) {
  ProtocolClient Client(T);
  ClientResult<uint64_t> Opened = Client.open();
  if (!Opened.ok()) {
    std::printf("  FAIL: setup: %s\n", Opened.errorText().c_str());
    ++Failures;
    return 0;
  }
  uint64_t Sid = Opened.value();
  if (ClientResult<> R = Client.load(Sid, workloads::makeFigure5().SourceText);
      !R.ok()) {
    std::printf("  FAIL: setup: %s\n", R.errorText().c_str());
    ++Failures;
    return 0;
  }
  for (const std::string &C : Setup)
    if (ClientResult<> R = Client.cmd(Sid, C); !R.ok()) {
      std::printf("  FAIL: setup cmd '%s': %s\n", C.c_str(),
                  R.errorText().c_str());
      ++Failures;
      return 0;
    }
  return Sid;
}

std::string attachAndProbe(Transport &T, uint64_t Sid) {
  ProtocolClient Client(T);
  if (ClientResult<> R = Client.request("attach " + std::to_string(Sid));
      !R.ok()) {
    std::printf("  FAIL: attach %llu: %s\n",
                static_cast<unsigned long long>(Sid),
                R.errorText().c_str());
    ++Failures;
    return "";
  }
  std::string Out;
  for (const std::string &C : Probes) {
    ClientResult<> R = Client.cmd(Sid, C);
    if (!R.ok()) {
      std::printf("  FAIL: probe '%s': %s\n", C.c_str(),
                  R.errorText().c_str());
      ++Failures;
      return "";
    }
    Out += R.value();
  }
  return Out;
}

/// A scratch dir under TMPDIR, removed on destruction unless --keep.
struct Scratch {
  fs::path Dir;
  static bool Keep;
  explicit Scratch(const char *Tag) {
    Dir = fs::temp_directory_path() /
          (std::string("drdebug_chaos_") + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~Scratch() {
    if (!Keep)
      fs::remove_all(Dir);
  }
};
bool Scratch::Keep = false;

//===----------------------------------------------------------------------===//
// crash mode: kill -9 mid-verb, restart, byte-identical recovery
//===----------------------------------------------------------------------===//

void runCrashRound(const std::string &DaemonPath, const fs::path &JournalDir,
                   int Round, const std::string &RefWithout,
                   const std::string &RefWith) {
  std::printf("round %d:\n", Round);
  fs::remove_all(JournalDir);
  fs::create_directories(JournalDir);

  Daemon D;
  check(D.start(DaemonPath, {"--journal-dir", JournalDir.string()}),
        "daemon started");
  uint64_t Sid = 0;
  {
    std::unique_ptr<Transport> T = connectTo(D);
    if (!T) {
      D.kill9();
      return;
    }
    Sid = driveSetup(*T);
    if (!Sid) {
      D.kill9();
      return;
    }
    // Fire one more mutating verb and kill the daemon while it is (maybe
    // still) journaling/executing it. The per-round delay sweeps the kill
    // across the verb's lifetime: some rounds die before the append, some
    // mid-append (a torn tail), some after execution.
    T->send(encodeFrame("9999 cmd " + std::to_string(Sid) + " " +
                        escapeText(KillVerb)));
    std::this_thread::sleep_for(std::chrono::microseconds(Round * 700));
  }
  D.kill9();

  Daemon D2;
  check(D2.start(DaemonPath, {"--journal-dir", JournalDir.string()}),
        "daemon restarted on the same journal dir");
  std::unique_ptr<Transport> T = connectTo(D2);
  if (!T) {
    D2.kill9();
    return;
  }
  std::string Got = attachAndProbe(*T, Sid);
  if (Got == RefWithout)
    check(true, "recovered byte-identical (in-flight verb not journaled)");
  else if (Got == RefWith)
    check(true, "recovered byte-identical (in-flight verb journaled)");
  else
    check(false, "recovered session matches neither legal pre-crash state");
  T->close();
  D2.kill9();
}

//===----------------------------------------------------------------------===//
// --migrate: SIGTERM drain -> bundles -> import into a successor
//===----------------------------------------------------------------------===//

void runMigrate(const std::string &DaemonPath) {
  std::printf("migrate:\n");
  Scratch JDirA("mig_a"), JDirB("mig_b"), Bundles("mig_bundles");
  const std::string Reference = referenceProbes(Setup);

  Daemon A;
  check(A.start(DaemonPath, {"--journal-dir", JDirA.Dir.string(),
                             "--drain-dir", Bundles.Dir.string()}),
        "daemon A started");
  uint64_t Sid = 0;
  {
    std::unique_ptr<Transport> T = connectTo(A);
    if (!T) {
      A.kill9();
      return;
    }
    Sid = driveSetup(*T);
    T->close();
  }
  A.sigterm();
  A.wait();
  fs::path Bundle = Bundles.Dir / ("session-" + std::to_string(Sid));
  check(fs::exists(Bundle / "journal"),
        "SIGTERM drain exported the session bundle");

  Daemon B;
  check(B.start(DaemonPath, {"--journal-dir", JDirB.Dir.string()}),
        "daemon B started");
  std::unique_ptr<Transport> T = connectTo(B);
  if (!T) {
    B.kill9();
    return;
  }
  ProtocolClient Client(*T);
  ClientResult<uint64_t> Imported = Client.importBundle(Bundle.string());
  check(Imported.ok(),
        "bundle imported into daemon B (" + Imported.errorText() + ")");
  uint64_t NewSid = Imported.ok() ? Imported.value() : 0;
  if (NewSid) {
    T->close();
    std::unique_ptr<Transport> T2 = connectTo(B);
    if (T2)
      check(attachAndProbe(*T2, NewSid) == Reference,
            "migrated session byte-identical to the original");
  }
  B.sigterm();
  B.wait();
}

//===----------------------------------------------------------------------===//
// --overload: admission control sheds, retry-after recovers
//===----------------------------------------------------------------------===//

void runOverload(const std::string &DaemonPath) {
  std::printf("overload:\n");
  Daemon D;
  // Two workers, one admission slot, 25 ms injected per command: most of
  // the 8 hammering clients must get shed at least once.
  check(D.start(DaemonPath,
                {"--workers", "2", "--admission-queue", "1", "--inject",
                 "session.execute:latency:1:0:25"}),
        "daemon started");
  constexpr unsigned Clients = 8, PerClient = 6;
  std::atomic<uint64_t> Succeeded{0}, Retried{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != Clients; ++I)
    Threads.emplace_back([&] {
      std::unique_ptr<Transport> T = connectTo(D);
      if (!T)
        return;
      RetryPolicy Policy;
      Policy.MaxRetries = 100;
      Policy.InitialBackoffMs = 5;
      ProtocolClient Client(*T, Policy);
      ClientResult<uint64_t> Opened = Client.open();
      if (!Opened.ok())
        return;
      uint64_t Sid = Opened.value();
      for (unsigned R = 0; R != PerClient; ++R)
        if (Client.cmd(Sid, "where").ok())
          Succeeded.fetch_add(1);
      Retried.fetch_add(Client.retries());
      T->close();
    });
  for (std::thread &Th : Threads)
    Th.join();
  check(Succeeded.load() == uint64_t(Clients) * PerClient,
        "every verb eventually succeeded (" +
            std::to_string(Succeeded.load()) + "/" +
            std::to_string(Clients * PerClient) + ")");
  check(Retried.load() > 0, "admission control shed at least one verb (" +
                                std::to_string(Retried.load()) +
                                " retransmissions)");
  D.sigterm();
  D.wait();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string DaemonPath = DRDEBUG_DAEMON_PATH;
  int Rounds = 8;
  bool Migrate = false, Overload = false, Crash = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--daemon") == 0 && I + 1 < Argc)
      DaemonPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--rounds") == 0 && I + 1 < Argc)
      Rounds = std::atoi(Argv[++I]);
    else if (std::strcmp(Argv[I], "--migrate") == 0)
      Migrate = true;
    else if (std::strcmp(Argv[I], "--overload") == 0)
      Overload = true;
    else if (std::strcmp(Argv[I], "--crash") == 0)
      Crash = true;
    else if (std::strcmp(Argv[I], "--keep") == 0)
      Scratch::Keep = true;
    else {
      std::fprintf(stderr,
                   "usage: drdebug_chaos [--daemon <drdebugd>] [--rounds N] "
                   "[--crash] [--migrate] [--overload] [--keep]\n");
      return 2;
    }
  }
  if (!Migrate && !Overload && !Crash)
    Crash = true; // default mode
  // SIGPIPE arrives when a killed daemon's socket is written to; ignore.
  ::signal(SIGPIPE, SIG_IGN);

  if (Crash) {
    Scratch JDir("crash");
    const std::string RefWithout = referenceProbes(Setup);
    std::vector<std::string> WithKill = Setup;
    WithKill.push_back(KillVerb);
    const std::string RefWith = referenceProbes(WithKill);
    for (int R = 0; R != Rounds; ++R)
      runCrashRound(DaemonPath, JDir.Dir / "journals", R, RefWithout,
                    RefWith);
  }
  if (Migrate)
    runMigrate(DaemonPath);
  if (Overload)
    runOverload(DaemonPath);

  if (Failures) {
    std::printf("drdebug_chaos: %d FAILURE(S)\n", Failures);
    return 1;
  }
  std::printf("drdebug_chaos: all checks passed\n");
  return 0;
}
