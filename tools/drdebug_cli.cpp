//===- tools/drdebug_cli.cpp - The DrDebug interactive debugger ---------------===//
//
// The shippable front end: an interactive (or scripted) DrDebug session,
// either in-process or against a remote drdebugd.
//
//   drdebug <program.asm>            interactive session on a program
//   drdebug <program.asm> -x cmds    run a command script, then exit
//   drdebug --demo                   load the paper's Figure 5 example
//   drdebug --demo --flight <dir>    run under the always-on flight recorder
//                                    and dump the retained window as a pinball
//   drdebug --connect host:port ...  drive a session on a drdebugd server
//   echo "record failure" | drdebug <program.asm>   pipe commands
//
// Commands: see 'help' inside the session or docs/DEBUGGER.md.
//
//===----------------------------------------------------------------------===//

#include "debugger/commands.h"
#include "debugger/session.h"
#include "server/client.h"
#include "server/transport.h"
#include "support/fault_injector.h"
#include "support/tracing.h"
#include "workloads/figure5.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace drdebug;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: drdebug <program.asm> [-x <script>] [--no-verify]\n"
               "       drdebug --demo [-x <script>]\n"
               "       drdebug [--demo|<program.asm>] --flight <dir>\n"
               "               [--flight-seed N] [--flight-epoch N] "
               "[--flight-epochs N]\n"
               "       drdebug --connect <host:port> [<program.asm>] "
               "[-x <script>]\n"
               "               [--retries N] [--retry-timeout-ms N] "
               "[--retry-backoff-ms N]\n"
               "       common: [--inject <site:kind:period[:phase[:arg]]>,...]"
               " [--trace-out <file>]\n");
  return 2;
}

/// Arms the process-wide tracer for --trace-out and writes the Chrome
/// trace on destruction, so every exit path of main produces the file.
class TraceOutGuard {
public:
  explicit TraceOutGuard(std::string Path) : Path(std::move(Path)) {
    if (!this->Path.empty())
      trace::Tracer::global().setEnabled(true);
  }
  ~TraceOutGuard() {
    if (Path.empty())
      return;
    std::string Error;
    if (!trace::Tracer::global().writeChromeJson(Path, Error))
      std::fprintf(stderr, "drdebug: %s\n", Error.c_str());
  }

private:
  std::string Path;
};

/// Reads a whole file; \returns false (with a message) when unreadable.
bool readFile(const std::string &Path, std::string &Text) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "drdebug: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  Text = Buf.str();
  return true;
}

/// Feeds command lines from \p In to \p Execute (which returns false on
/// "quit"). \returns true when input was exhausted without quitting.
template <typename ExecuteFn>
bool feedCommands(std::istream &In, bool Prompt, ExecuteFn Execute) {
  std::string Line;
  while (true) {
    if (Prompt)
      std::cout << "(drdebug) " << std::flush;
    if (!std::getline(In, Line))
      return true;
    if (!Execute(Line))
      return false;
  }
}

/// The --connect mode: drives a remote session over the wire protocol.
int runConnected(const std::string &HostPort, const std::string &ProgramPath,
                 const std::string &ScriptPath, const RetryPolicy &Policy,
                 bool Faulty) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == HostPort.size())
    return usage();
  std::string Host = HostPort.substr(0, Colon);
  int Port = std::atoi(HostPort.c_str() + Colon + 1);
  if (Port <= 0 || Port > 65535)
    return usage();

  std::string Error;
  std::unique_ptr<Transport> Conn =
      tcpConnect(Host, static_cast<uint16_t>(Port), Error);
  if (!Conn) {
    std::fprintf(stderr, "drdebug: %s\n", Error.c_str());
    return 1;
  }
  if (Faulty)
    Conn = makeFaultyTransport(std::move(Conn), "client");
  ProtocolClient Client(*Conn, Policy);
  ClientResult<HelloInfo> Hello = Client.hello();
  if (!Hello.ok()) {
    std::fprintf(stderr, "drdebug: handshake failed: %s\n",
                 Hello.errorText().c_str());
    return 1;
  }
  std::cerr << "connected: " << Hello.value().Banner << "\n";
  ClientResult<uint64_t> Opened = Client.open();
  if (!Opened.ok()) {
    std::fprintf(stderr, "drdebug: cannot open session: %s\n",
                 Opened.errorText().c_str());
    return 1;
  }
  uint64_t Sid = Opened.value();

  if (!ProgramPath.empty()) {
    std::string Text;
    if (!readFile(ProgramPath, Text))
      return 1;
    ClientResult<> Loaded = Client.load(Sid, Text);
    if (!Loaded.ok()) {
      // An assembly failure carries the session's message in the error.
      std::cout << Loaded.errorText() << "\n";
      return 1;
    }
    std::cout << Loaded.value();
  }

  auto Execute = [&](const std::string &Line) {
    ClientResult<> R = Client.cmd(Sid, Line);
    if (!R.ok()) {
      std::fprintf(stderr, "drdebug: %s\n", R.errorText().c_str());
      return false;
    }
    std::cout << R.value();
    std::string Cmd = Line.substr(0, Line.find(' '));
    return Cmd != "quit" && Cmd != "q";
  };

  if (!ScriptPath.empty()) {
    std::ifstream Script(ScriptPath);
    if (!Script) {
      std::fprintf(stderr, "drdebug: cannot read script %s\n",
                   ScriptPath.c_str());
      return 1;
    }
    feedCommands(Script, /*Prompt=*/false, Execute);
    return 0;
  }
  feedCommands(std::cin, /*Prompt=*/true, Execute);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProgramPath;
  std::string ScriptPath;
  std::string ConnectTo;
  std::string TraceOut;
  std::string FlightDir;
  uint64_t FlightSeed = 1;
  uint64_t FlightEpochInstrs = 2048;
  uint64_t FlightMaxEpochs = 8;
  bool Demo = false;
  bool Verify = true;
  bool Faulty = false;
  RetryPolicy Policy;
  for (int I = 1; I < Argc; ++I) {
    auto IntArg = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (std::strcmp(Argv[I], "--demo") == 0) {
      Demo = true;
    } else if (std::strcmp(Argv[I], "--connect") == 0 && I + 1 < Argc) {
      ConnectTo = Argv[++I];
    } else if (std::strcmp(Argv[I], "-x") == 0 && I + 1 < Argc) {
      ScriptPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--no-verify") == 0) {
      Verify = false;
    } else if (std::strcmp(Argv[I], "--flight") == 0 && I + 1 < Argc) {
      FlightDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--flight-seed") == 0 && IntArg(V)) {
      FlightSeed = V;
    } else if (std::strcmp(Argv[I], "--flight-epoch") == 0 && IntArg(V)) {
      FlightEpochInstrs = V;
    } else if (std::strcmp(Argv[I], "--flight-epochs") == 0 && IntArg(V)) {
      FlightMaxEpochs = V;
    } else if (std::strcmp(Argv[I], "--trace-out") == 0 && I + 1 < Argc) {
      TraceOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--retries") == 0 && IntArg(V)) {
      Policy.MaxRetries = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--retry-timeout-ms") == 0 && IntArg(V)) {
      Policy.RecvTimeoutMs = V;
    } else if (std::strcmp(Argv[I], "--retry-backoff-ms") == 0 && IntArg(V)) {
      Policy.InitialBackoffMs = V;
    } else if (std::strcmp(Argv[I], "--inject") == 0 && I + 1 < Argc) {
      std::string Error;
      if (!FaultInjector::global().armFromSpec(Argv[++I], Error)) {
        std::fprintf(stderr, "drdebug: bad --inject spec: %s\n",
                     Error.c_str());
        return 2;
      }
      Faulty = true;
    } else if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("drdebug %s\n", DrDebugVersion);
      return 0;
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      std::printf("%s", helpText().c_str());
      return 0;
    } else if (Argv[I][0] != '-' && ProgramPath.empty()) {
      ProgramPath = Argv[I];
    } else {
      return usage();
    }
  }

  TraceOutGuard Tracing(TraceOut);
  // --flight drives the session itself (attach/status/dump), so a command
  // script cannot also run; reject the combination instead of ignoring -x.
  if (!FlightDir.empty() && !ScriptPath.empty())
    return usage();
  if (!ConnectTo.empty()) {
    if (Demo || !FlightDir.empty())
      return usage();
    return runConnected(ConnectTo, ProgramPath, ScriptPath, Policy, Faulty);
  }
  if (!Demo && ProgramPath.empty())
    return usage();

  DebugSession Session(std::cout);
  Session.setPinballVerify(Verify);
  if (Demo) {
    workloads::Figure5Lines Lines;
    Program P = workloads::makeFigure5(&Lines);
    std::cout << "demo: the paper's Figure 5 atomicity violation (racy "
                 "write at line "
              << Lines.RacyWriteLine << ", failing assert at line "
              << Lines.AssertLine << ")\ntry: record failure; replay; "
                 "slice fail; slice pinball; slice replay; slice step\n";
    if (!Session.loadProgramText(P.SourceText))
      return 1;
  } else {
    std::string Text;
    if (!readFile(ProgramPath, Text))
      return 1;
    if (!Session.loadProgramText(Text))
      return 1;
  }

  // --flight: run the whole program under the always-on recorder, then
  // materialize the retained window into a pinball at <dir>.
  if (!FlightDir.empty()) {
    std::ostringstream Attach;
    Attach << "record attach " << FlightSeed << " " << FlightEpochInstrs << " "
           << FlightMaxEpochs;
    if (Session.executeCommand(Attach.str()).Status != CommandStatus::Ok)
      return 1;
    Session.executeCommand("record status");
    return Session.executeCommand("record dump " + FlightDir).Status ==
                   CommandStatus::Ok
               ? 0
               : 1;
  }

  auto Execute = [&](const std::string &Line) {
    return Session.executeCommand(Line).Status != CommandStatus::Exited;
  };
  if (!ScriptPath.empty()) {
    std::ifstream Script(ScriptPath);
    if (!Script) {
      std::fprintf(stderr, "drdebug: cannot read script %s\n",
                   ScriptPath.c_str());
      return 1;
    }
    feedCommands(Script, /*Prompt=*/false, Execute);
    return 0;
  }
  feedCommands(std::cin, /*Prompt=*/true, Execute);
  return 0;
}
