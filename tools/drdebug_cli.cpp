//===- tools/drdebug_cli.cpp - The DrDebug interactive debugger ---------------===//
//
// The shippable front end: an interactive (or scripted) DrDebug session.
//
//   drdebug <program.asm>            interactive session on a program
//   drdebug <program.asm> -x cmds    run a command script, then exit
//   drdebug --demo                   load the paper's Figure 5 example
//   echo "record failure" | drdebug <program.asm>   pipe commands
//
// Commands: see 'help' inside the session or docs/DEBUGGER.md.
//
//===----------------------------------------------------------------------===//

#include "debugger/session.h"
#include "workloads/figure5.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace drdebug;

namespace {

const char *HelpText = R"(DrDebug commands:
  load <file>                       load a MiniVM assembly program
  run [seed]                        run live under a seeded scheduler
  break <pc>|<func>[+off]           set a breakpoint
  delete <id> / info breakpoints    manage breakpoints
  watch <global> / unwatch <id>     stop when a global is written
  continue | c                      resume
  stepi [n] | si                    execute n instructions
  info threads|regs [tid]           examine thread state
  x <addr> [count]                  examine memory words
  print <global>                    print a global variable
  backtrace [tid] | bt              call stack
  where                             current statement of every live thread
  list <func>                       disassemble a function
  output                            program output so far
  record region <skip> <len> [seed] capture an execution-region pinball
  record failure [seed]             capture from start to assertion failure
  pinball save|load <dir>           persist / import the region pinball
  replay                            deterministic replay off the pinball
  reverse-stepi [n] | rsi           step backwards during replay
  replay-position | replay-seek <n> inspect / move the replay clock
  slice fail                        backwards slice at the failure point
  slice <tid> <pc> [instance]       backwards slice at any instruction
  slice forward <tid> <pc> [inst]   forward slice (what it influenced)
  slice list | slice deps <n>       browse the slice / navigate backwards
  slice save <file>                 write the (special) slice file
  slice report <file.html>          write the highlighted HTML report
  slice regions                     show the code-exclusion regions
  slice pinball [<dir>]             build the slice pinball (relogger)
  slice replay                      replay only the execution slice
  slice step                        step to the next slice statement
  help                              this text
  quit | q                          leave
)";

int usage() {
  std::fprintf(stderr,
               "usage: drdebug <program.asm> [-x <script>]\n"
               "       drdebug --demo [-x <script>]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProgramPath;
  std::string ScriptPath;
  bool Demo = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--demo") == 0) {
      Demo = true;
    } else if (std::strcmp(Argv[I], "-x") == 0 && I + 1 < Argc) {
      ScriptPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      std::printf("%s", HelpText);
      return 0;
    } else if (Argv[I][0] != '-' && ProgramPath.empty()) {
      ProgramPath = Argv[I];
    } else {
      return usage();
    }
  }
  if (!Demo && ProgramPath.empty())
    return usage();

  DebugSession Session(std::cout);
  if (Demo) {
    workloads::Figure5Lines Lines;
    Program P = workloads::makeFigure5(&Lines);
    std::cout << "demo: the paper's Figure 5 atomicity violation (racy "
                 "write at line "
              << Lines.RacyWriteLine << ", failing assert at line "
              << Lines.AssertLine << ")\ntry: record failure; replay; "
                 "slice fail; slice pinball; slice replay; slice step\n";
    if (!Session.loadProgramText(P.SourceText))
      return 1;
  } else {
    std::ifstream IS(ProgramPath);
    if (!IS) {
      std::fprintf(stderr, "drdebug: cannot read %s\n", ProgramPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    if (!Session.loadProgramText(Buf.str()))
      return 1;
  }

  auto Feed = [&](std::istream &In, bool Prompt) {
    std::string Line;
    while (true) {
      if (Prompt) {
        std::cout << "(drdebug) " << std::flush;
      }
      if (!std::getline(In, Line))
        return true; // input exhausted
      if (Line == "help") {
        std::cout << HelpText;
        continue;
      }
      if (!Session.execute(Line))
        return false; // quit
    }
  };

  if (!ScriptPath.empty()) {
    std::ifstream Script(ScriptPath);
    if (!Script) {
      std::fprintf(stderr, "drdebug: cannot read script %s\n",
                   ScriptPath.c_str());
      return 1;
    }
    if (!Feed(Script, /*Prompt=*/false))
      return 0;
    return 0;
  }
  Feed(std::cin, /*Prompt=*/true);
  return 0;
}
