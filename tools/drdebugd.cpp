//===- tools/drdebugd.cpp - The DrDebug remote debug server -------------------===//
//
// The resident debug server (the PinADX analog): hosts many concurrent
// DebugSessions behind the framed wire protocol, one worker pool, and a
// shared pinball repository.
//
//   drdebugd                          serve on 127.0.0.1:7321
//   drdebugd --port 0                 serve on an ephemeral port (printed)
//   drdebugd --workers 8 --idle-timeout-ms 60000
//   drdebugd --once                   exit after the first client disconnects
//
// Connect with: drdebug --connect 127.0.0.1:<port> [program.asm] [-x script]
//
//===----------------------------------------------------------------------===//

#include "debugger/commands.h"
#include "server/server.h"
#include "support/fault_injector.h"
#include "support/tracing.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace drdebug;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: drdebugd [--port N] [--workers N] "
               "[--idle-timeout-ms N] [--deadline-ms N] [--no-verify] "
               "[--inject <site:kind:period[:phase[:arg]]>,...] "
               "[--trace-out <file>] [--once]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  uint16_t Port = 7321;
  std::string TraceOut;
  bool Once = false;
  bool Faulty = false;
  ServerConfig Cfg;
  Cfg.CmdDeadline = std::chrono::milliseconds(30000);
  for (int I = 1; I < Argc; ++I) {
    auto IntArg = [&](long &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtol(Argv[++I], nullptr, 10);
      return true;
    };
    long V = 0;
    if (std::strcmp(Argv[I], "--port") == 0 && IntArg(V)) {
      Port = static_cast<uint16_t>(V);
    } else if (std::strcmp(Argv[I], "--workers") == 0 && IntArg(V)) {
      Cfg.Workers = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--idle-timeout-ms") == 0 && IntArg(V)) {
      Cfg.IdleTimeout = std::chrono::milliseconds(V);
    } else if (std::strcmp(Argv[I], "--deadline-ms") == 0 && IntArg(V)) {
      Cfg.CmdDeadline = std::chrono::milliseconds(V);
    } else if (std::strcmp(Argv[I], "--no-verify") == 0) {
      Cfg.VerifyPinballs = false;
    } else if (std::strcmp(Argv[I], "--inject") == 0 && I + 1 < Argc) {
      std::string Error;
      if (!FaultInjector::global().armFromSpec(Argv[++I], Error)) {
        std::fprintf(stderr, "drdebugd: bad --inject spec: %s\n",
                     Error.c_str());
        return 2;
      }
      Faulty = true;
    } else if (std::strcmp(Argv[I], "--trace-out") == 0 && I + 1 < Argc) {
      TraceOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--once") == 0) {
      Once = true;
    } else if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("drdebugd %s\n", DrDebugVersion);
      return 0;
    } else {
      return usage();
    }
  }
  if (Cfg.IdleTimeout.count() > 0)
    Cfg.JanitorPeriod = std::max<std::chrono::milliseconds>(
        std::chrono::milliseconds(100), Cfg.IdleTimeout / 2);
  if (!TraceOut.empty())
    trace::Tracer::global().setEnabled(true);

  DebugServer Server(Cfg);
  TcpListener Listener;
  std::string Error;
  if (!Listener.listen(Port, Error)) {
    std::fprintf(stderr, "drdebugd: %s\n", Error.c_str());
    return 1;
  }
  std::printf("drdebugd %s listening on 127.0.0.1:%u (%u workers, "
              "idle timeout %lld ms)\n",
              DrDebugVersion, Listener.port(), Cfg.Workers,
              static_cast<long long>(Cfg.IdleTimeout.count()));
  std::fflush(stdout);

  std::vector<std::thread> Connections;
  while (!Server.shutdownRequested()) {
    std::unique_ptr<Transport> Conn = Listener.accept();
    if (!Conn)
      break;
    if (Faulty)
      Conn = makeFaultyTransport(std::move(Conn), "server");
    if (Once) {
      Server.serve(*Conn);
      break;
    }
    Connections.emplace_back(
        [&Server, &Listener, C = std::shared_ptr<Transport>(std::move(Conn))] {
          Server.serve(*C);
          // A client asked for shutdown: unblock the accept loop.
          if (Server.shutdownRequested())
            Listener.close();
        });
  }
  Listener.close();
  for (std::thread &T : Connections)
    T.join();
  if (!TraceOut.empty()) {
    std::string TraceError;
    if (!trace::Tracer::global().writeChromeJson(TraceOut, TraceError))
      std::fprintf(stderr, "drdebugd: %s\n", TraceError.c_str());
    else
      std::printf("drdebugd: trace written to %s\n", TraceOut.c_str());
  }
  std::printf("drdebugd: bye\n");
  return 0;
}
