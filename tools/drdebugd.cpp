//===- tools/drdebugd.cpp - The DrDebug remote debug server -------------------===//
//
// The resident debug server (the PinADX analog): hosts many concurrent
// DebugSessions behind the framed wire protocol, one worker pool, and a
// shared pinball repository.
//
//   drdebugd                          serve on 127.0.0.1:7321
//   drdebugd --port 0                 serve on an ephemeral port (printed)
//   drdebugd --workers 8 --idle-timeout-ms 60000
//   drdebugd --journal-dir /var/lib/drdebugd   durable sessions: journal every
//                                     mutating command, recover on restart
//   drdebugd --drain-dir /tmp/bundles  where SIGTERM exports session bundles
//   drdebugd --once                   exit after the first client disconnects
//
// Shutdown contract (docs/SERVER.md): SIGTERM and SIGINT trigger a graceful
// drain — admissions stop, in-flight verbs finish under the drain deadline,
// sessions are exported as bundles (when --drain-dir is set), then the
// process exits. Journaled sessions additionally survive kill -9: the next
// start recovers them from their journals.
//
// Connect with: drdebug --connect 127.0.0.1:<port> [program.asm] [-x script]
//
//===----------------------------------------------------------------------===//

#include "debugger/commands.h"
#include "server/server.h"
#include "server/verbs.h"
#include "support/fault_injector.h"
#include "support/tracing.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

using namespace drdebug;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: drdebugd [--port N] [--workers N] "
               "[--idle-timeout-ms N] [--deadline-ms N] [--no-verify] "
               "[--journal-dir <dir>] [--journal-fsync] [--snapshot-every N] "
               "[--compact-min-bytes N] "
               "[--admission-queue N] [--drain-dir <dir>] "
               "[--drain-deadline-ms N] "
               "[--inject <site:kind:period[:phase[:arg]]>,...] "
               "[--trace-out <file>] [--once] [--dump-verbs]\n");
  return 2;
}

/// Set by the SIGTERM/SIGINT handler; the accept loop turns it into a
/// graceful drain.
volatile std::sig_atomic_t SignalDrain = 0;
/// The listener the handler closes to unblock accept(). TcpListener::close
/// only touches an atomic fd with ::close, which is async-signal-safe.
TcpListener *SignalListener = nullptr;

void onTermSignal(int) {
  SignalDrain = 1;
  if (SignalListener)
    SignalListener->close();
}

} // namespace

int main(int Argc, char **Argv) {
  uint16_t Port = 7321;
  std::string TraceOut;
  std::string DrainDir;
  bool Once = false;
  bool Faulty = false;
  ServerConfig Cfg;
  Cfg.CmdDeadline = std::chrono::milliseconds(30000);
  for (int I = 1; I < Argc; ++I) {
    auto IntArg = [&](long &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtol(Argv[++I], nullptr, 10);
      return true;
    };
    long V = 0;
    if (std::strcmp(Argv[I], "--port") == 0 && IntArg(V)) {
      Port = static_cast<uint16_t>(V);
    } else if (std::strcmp(Argv[I], "--workers") == 0 && IntArg(V)) {
      Cfg.Workers = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--idle-timeout-ms") == 0 && IntArg(V)) {
      Cfg.IdleTimeout = std::chrono::milliseconds(V);
    } else if (std::strcmp(Argv[I], "--deadline-ms") == 0 && IntArg(V)) {
      Cfg.CmdDeadline = std::chrono::milliseconds(V);
    } else if (std::strcmp(Argv[I], "--no-verify") == 0) {
      Cfg.VerifyPinballs = false;
    } else if (std::strcmp(Argv[I], "--journal-dir") == 0 && I + 1 < Argc) {
      Cfg.JournalDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--journal-fsync") == 0) {
      Cfg.JournalFsyncEach = true;
    } else if (std::strcmp(Argv[I], "--snapshot-every") == 0 && IntArg(V)) {
      Cfg.SnapshotEvery = static_cast<unsigned>(V);
    } else if (std::strcmp(Argv[I], "--compact-min-bytes") == 0 && IntArg(V)) {
      Cfg.CompactMinBytes = static_cast<uint64_t>(V);
    } else if (std::strcmp(Argv[I], "--admission-queue") == 0 && IntArg(V)) {
      Cfg.AdmissionMaxQueue = static_cast<size_t>(V);
    } else if (std::strcmp(Argv[I], "--drain-dir") == 0 && I + 1 < Argc) {
      DrainDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--drain-deadline-ms") == 0 && IntArg(V)) {
      Cfg.DrainDeadline = std::chrono::milliseconds(V);
    } else if (std::strcmp(Argv[I], "--inject") == 0 && I + 1 < Argc) {
      std::string Error;
      if (!FaultInjector::global().armFromSpec(Argv[++I], Error)) {
        std::fprintf(stderr, "drdebugd: bad --inject spec: %s\n",
                     Error.c_str());
        return 2;
      }
      Faulty = true;
    } else if (std::strcmp(Argv[I], "--trace-out") == 0 && I + 1 < Argc) {
      TraceOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--once") == 0) {
      Once = true;
    } else if (std::strcmp(Argv[I], "--dump-verbs") == 0) {
      // The docs/SERVER.md verb and error tables, rendered from the verb
      // registry — paste between the GENERATED markers to update the docs
      // (a drift test keeps them honest).
      std::printf("%s\n%s", renderVerbTableMarkdown().c_str(),
                  renderErrorTableMarkdown().c_str());
      return 0;
    } else if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("drdebugd %s\n", DrDebugVersion);
      return 0;
    } else {
      return usage();
    }
  }
  if (Cfg.IdleTimeout.count() > 0)
    Cfg.JanitorPeriod = std::max<std::chrono::milliseconds>(
        std::chrono::milliseconds(100), Cfg.IdleTimeout / 2);
  if (!TraceOut.empty())
    trace::Tracer::global().setEnabled(true);

  DebugServer Server(Cfg);
  if (!Cfg.JournalDir.empty() && Server.sessions().activeCount() > 0)
    std::printf("drdebugd: recovered %zu session(s) from %s\n",
                Server.sessions().activeCount(), Cfg.JournalDir.c_str());
  for (const std::string &Line : Server.sessions().recoveryCasualties())
    std::fprintf(stderr, "drdebugd: unrecoverable journal %s\n", Line.c_str());
  TcpListener Listener;
  std::string Error;
  if (!Listener.listen(Port, Error)) {
    std::fprintf(stderr, "drdebugd: %s\n", Error.c_str());
    return 1;
  }
  SignalListener = &Listener;
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);
  std::printf("drdebugd %s listening on 127.0.0.1:%u (%u workers, "
              "idle timeout %lld ms)\n",
              DrDebugVersion, Listener.port(), Cfg.Workers,
              static_cast<long long>(Cfg.IdleTimeout.count()));
  std::fflush(stdout);

  // Every live connection transport, so the drain path can close them and
  // unblock their serve() threads (which otherwise wait in recv forever).
  std::mutex ConnMu;
  std::vector<std::weak_ptr<Transport>> ConnTransports;
  std::vector<std::thread> Connections;
  while (!Server.shutdownRequested() && !SignalDrain) {
    std::unique_ptr<Transport> Conn = Listener.accept();
    if (!Conn)
      break;
    if (Faulty)
      Conn = makeFaultyTransport(std::move(Conn), "server");
    if (Once) {
      Server.serve(*Conn);
      break;
    }
    auto Shared = std::shared_ptr<Transport>(std::move(Conn));
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      ConnTransports.emplace_back(Shared);
    }
    Connections.emplace_back([&Server, &Listener, C = Shared] {
      Server.serve(*C);
      // A client asked for shutdown: unblock the accept loop.
      if (Server.shutdownRequested())
        Listener.close();
    });
  }
  Listener.close();
  if (SignalDrain) {
    std::string Report = Server.drain(DrainDir);
    std::printf("drdebugd: drain on signal\n%s\n", Report.c_str());
    std::fflush(stdout);
    // Unhook the remaining clients so their serve threads can exit.
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::weak_ptr<Transport> &W : ConnTransports)
      if (std::shared_ptr<Transport> C = W.lock())
        C->close();
  }
  for (std::thread &T : Connections)
    T.join();
  if (!TraceOut.empty()) {
    std::string TraceError;
    if (!trace::Tracer::global().writeChromeJson(TraceOut, TraceError))
      std::fprintf(stderr, "drdebugd: %s\n", TraceError.c_str());
    else
      std::printf("drdebugd: trace written to %s\n", TraceOut.c_str());
  }
  std::printf("drdebugd: bye\n");
  return 0;
}
