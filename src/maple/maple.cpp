//===- maple/maple.cpp - Coverage-driven bug exposure driver -----------------===//

#include "maple/maple.h"

#include "maple/active_scheduler.h"
#include "maple/profiler.h"
#include "replay/flight_recorder.h"

#include <memory>

using namespace drdebug;

namespace {

/// Saves the exposing pinball the instant the exposure happens, when the
/// caller asked for it.
void autoDump(const MapleOptions &Opts, MapleResult &Result) {
  if (!Result.Exposed || Opts.AutoDumpDir.empty())
    return;
  if (Result.Pb.save(Opts.AutoDumpDir, Result.AutoDumpError))
    Result.AutoDumpPath = Opts.AutoDumpDir;
}

} // namespace

MapleResult drdebug::mapleExposeAndRecord(const Program &Prog,
                                          const MapleOptions &Opts) {
  MapleResult Result;

  // Phase (i): profiling runs under random schedules.
  IRootProfiler Profiler;
  for (unsigned Run = 0; Run != Opts.ProfileRuns; ++Run) {
    uint64_t Seed = Opts.Seed + Run;
    Profiler.resetRunState();
    RandomScheduler Sched(Seed, 1, 3);
    DefaultSyscalls World(Seed);
    World.setInput(Opts.Input);
    Machine M(Prog);
    M.setScheduler(&Sched);
    M.setSyscalls(&World);
    M.addObserver(&Profiler);
    // Flight mode: the recorder rides along with profiling, so an exposure
    // is captured in situ and the re-run below becomes unnecessary.
    std::unique_ptr<FlightRecorder> Flight;
    if (Opts.FlightEpochInstrs > 0) {
      FlightOptions FO;
      FO.EpochInstrs = Opts.FlightEpochInstrs;
      FO.MaxEpochs = Opts.FlightMaxEpochs;
      FO.MemoryBudgetBytes = Opts.FlightBudgetBytes;
      Flight = std::make_unique<FlightRecorder>(M, FO);
    }
    Machine::StopReason Reason = M.run(Opts.MaxSteps);
    if (Reason == Machine::StopReason::AssertFailed) {
      if (Flight) {
        // Dump the retained window at the instant of exposure: the pinball
        // replays straight to the failing assert.
        std::string Error;
        Result.Exposed = Flight->dump(Result.Pb, Error);
        if (!Result.Exposed)
          Result.AutoDumpError = Error;
      }
      if (!Result.Exposed) {
        // The bug reproduced under plain profiling (or the flight dump
        // failed): re-run the same seed with the logger attached to capture
        // the pinball.
        RandomScheduler Sched2(Seed, 1, 3);
        DefaultSyscalls World2(Seed);
        World2.setInput(Opts.Input);
        LogResult Log = Logger::logWholeProgram(Prog, Sched2, &World2);
        Result.Exposed = Log.FailureCaptured;
        Result.Pb = std::move(Log.Pb);
      }
      Result.ExposedDuringProfiling = true;
      Result.ObservedIRoots = Profiler.observed().size();
      autoDump(Opts, Result);
      return Result;
    }
  }
  Result.ObservedIRoots = Profiler.observed().size();

  // Phase (ii): force predicted candidates under the active scheduler, with
  // the logger recording every attempt so an exposed bug is immediately a
  // replayable pinball.
  std::vector<IRoot> Candidates = Profiler.predictCandidates();
  Result.PredictedCandidates = Candidates.size();
  unsigned Attempts = 0;
  for (const IRoot &Candidate : Candidates) {
    if (Attempts >= Opts.MaxAttempts)
      break;
    ++Attempts;
    ActiveScheduler Sched(Candidate, Opts.Seed + 1000 + Attempts);
    DefaultSyscalls World(Opts.Seed);
    World.setInput(Opts.Input);
    RegionSpec Spec; // whole program, stop at failure
    Spec.MaxTotalInstrs = Opts.MaxSteps;
    LogResult Log = Logger::logRegion(Prog, Sched, &World, Spec);
    if (Log.FailureCaptured) {
      Result.Exposed = true;
      Result.ExposingCandidate = Candidate;
      Result.Pb = std::move(Log.Pb);
      break;
    }
  }
  Result.AttemptsUsed = Attempts;
  autoDump(Opts, Result);
  return Result;
}
