//===- maple/maple.cpp - Coverage-driven bug exposure driver -----------------===//

#include "maple/maple.h"

#include "maple/active_scheduler.h"
#include "maple/profiler.h"

using namespace drdebug;

MapleResult drdebug::mapleExposeAndRecord(const Program &Prog,
                                          const MapleOptions &Opts) {
  MapleResult Result;

  // Phase (i): profiling runs under random schedules.
  IRootProfiler Profiler;
  for (unsigned Run = 0; Run != Opts.ProfileRuns; ++Run) {
    uint64_t Seed = Opts.Seed + Run;
    Profiler.resetRunState();
    RandomScheduler Sched(Seed, 1, 3);
    DefaultSyscalls World(Seed);
    World.setInput(Opts.Input);
    Machine M(Prog);
    M.setScheduler(&Sched);
    M.setSyscalls(&World);
    M.addObserver(&Profiler);
    Machine::StopReason Reason = M.run(Opts.MaxSteps);
    if (Reason == Machine::StopReason::AssertFailed) {
      // The bug reproduced under plain profiling: re-run the same seed with
      // the logger attached to capture the pinball.
      RandomScheduler Sched2(Seed, 1, 3);
      DefaultSyscalls World2(Seed);
      World2.setInput(Opts.Input);
      LogResult Log = Logger::logWholeProgram(Prog, Sched2, &World2);
      Result.Exposed = Log.FailureCaptured;
      Result.ExposedDuringProfiling = true;
      Result.Pb = std::move(Log.Pb);
      Result.ObservedIRoots = Profiler.observed().size();
      return Result;
    }
  }
  Result.ObservedIRoots = Profiler.observed().size();

  // Phase (ii): force predicted candidates under the active scheduler, with
  // the logger recording every attempt so an exposed bug is immediately a
  // replayable pinball.
  std::vector<IRoot> Candidates = Profiler.predictCandidates();
  Result.PredictedCandidates = Candidates.size();
  unsigned Attempts = 0;
  for (const IRoot &Candidate : Candidates) {
    if (Attempts >= Opts.MaxAttempts)
      break;
    ++Attempts;
    ActiveScheduler Sched(Candidate, Opts.Seed + 1000 + Attempts);
    DefaultSyscalls World(Opts.Seed);
    World.setInput(Opts.Input);
    RegionSpec Spec; // whole program, stop at failure
    Spec.MaxTotalInstrs = Opts.MaxSteps;
    LogResult Log = Logger::logRegion(Prog, Sched, &World, Spec);
    if (Log.FailureCaptured) {
      Result.Exposed = true;
      Result.ExposingCandidate = Candidate;
      Result.Pb = std::move(Log.Pb);
      break;
    }
  }
  Result.AttemptsUsed = Attempts;
  return Result;
}
