//===- maple/active_scheduler.h - Forcing candidate iRoots ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maple's phase (ii): the active scheduler runs the program "on a single
/// processor and controls thread execution to enforce the dependencies
/// recorded by the profiler". Here the single processor is the MiniVM
/// interpreter, and control is exercised directly from the scheduler's
/// pickNext: while the candidate's first access (PcA) has not executed,
/// threads poised at PcB are delayed (scheduled only if nothing else can
/// run); once PcA executes, a thread poised at PcB is scheduled immediately,
/// enforcing the A -> B order. Because this is a Scheduler, it composes
/// directly with the Logger, which is exactly the paper's integration:
/// Maple's active scheduler optionally does PinPlay-style logging of the
/// buggy execution it exposes.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_MAPLE_ACTIVE_SCHEDULER_H
#define DRDEBUG_MAPLE_ACTIVE_SCHEDULER_H

#include "maple/iroot.h"
#include "support/rng.h"
#include "vm/scheduler.h"

namespace drdebug {

/// Schedules to force one candidate iRoot.
class ActiveScheduler : public Scheduler {
public:
  ActiveScheduler(const IRoot &Candidate, uint64_t Seed)
      : Candidate(Candidate), Rand(Seed) {}

  uint32_t pickNext(const Machine &M,
                    const std::vector<uint32_t> &Runnable) override;

  /// True once PcA has executed while a PcB-poised thread was being held
  /// back, and that thread was then released — i.e. the candidate order was
  /// actually enforced at least once.
  bool forcedOrder() const { return Forced; }

  /// How many scheduling decisions may favour non-PcB threads in a row
  /// before a delayed thread is briefly released (Maple's timeout analog;
  /// prevents livelock when PcA can only execute after PcB threads make
  /// progress).
  void setDelayPeriod(uint64_t Period) { DelayPeriod = Period; }

private:
  IRoot Candidate;
  Rng Rand;
  uint64_t DelayPeriod = 16;
  uint64_t DelayTicks = 0;
  bool ADone = false;
  bool Forced = false;
  bool DelayedSomeone = false;
  /// Last scheduled (tid, pc) so the next pickNext can detect that PcA or
  /// PcB just executed.
  bool HavePrev = false;
  uint32_t PrevTid = 0;
  uint64_t PrevPc = 0;
};

} // namespace drdebug

#endif // DRDEBUG_MAPLE_ACTIVE_SCHEDULER_H
