//===- maple/maple.h - Coverage-driven bug exposure driver ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Maple-analog driver (paper §6, "Integration with Maple"): profiling
/// runs observe iRoots and predict untested candidates; active-scheduling
/// runs try to force each candidate; when a forced interleaving trips an
/// assertion, the run — which was executing under the PinPlay-analog logger
/// all along — yields a pinball that DrDebug can replay and slice directly.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_MAPLE_MAPLE_H
#define DRDEBUG_MAPLE_MAPLE_H

#include "maple/iroot.h"
#include "replay/logger.h"

#include <vector>

namespace drdebug {

struct MapleOptions {
  unsigned ProfileRuns = 3;   ///< phase-(i) runs with random schedules
  unsigned MaxAttempts = 64;  ///< phase-(ii) candidate attempts
  uint64_t Seed = 1;
  uint64_t MaxSteps = 2'000'000; ///< per-run instruction budget
  std::vector<int64_t> Input;    ///< program input fed to every run

  /// >0 runs phase-(i) profiling with an always-on FlightRecorder of this
  /// epoch length attached: when the bug fires under plain profiling the
  /// failure window is dumped from the recorder *in situ* — no re-run with
  /// the logger needed. 0 keeps the classic re-run-under-logger behaviour.
  uint64_t FlightEpochInstrs = 0;
  size_t FlightMaxEpochs = 8;      ///< recorder epoch cap when flight is on
  size_t FlightBudgetBytes = 0;    ///< recorder memory budget (0 = unbounded)
  /// When non-empty, the exposing pinball is auto-saved here (crash-safe
  /// manifest save) the instant an exposure happens.
  std::string AutoDumpDir;
};

struct MapleResult {
  bool Exposed = false;          ///< a buggy execution was found
  bool ExposedDuringProfiling = false;
  IRoot ExposingCandidate;       ///< candidate that triggered it (if forced)
  Pinball Pb;                    ///< recorded buggy execution (if Exposed)
  unsigned AttemptsUsed = 0;
  size_t ObservedIRoots = 0;
  size_t PredictedCandidates = 0;
  /// Where the exposing pinball was auto-saved (empty if not requested or
  /// the save failed — see AutoDumpError).
  std::string AutoDumpPath;
  std::string AutoDumpError;
};

/// Runs both Maple phases on \p Prog and records the exposed buggy
/// execution as a replayable pinball.
MapleResult mapleExposeAndRecord(const Program &Prog,
                                 const MapleOptions &Opts = MapleOptions());

} // namespace drdebug

#endif // DRDEBUG_MAPLE_MAPLE_H
