//===- maple/active_scheduler.cpp - Forcing candidate iRoots -----------------===//

#include "maple/active_scheduler.h"

#include "vm/machine.h"

#include <cassert>

using namespace drdebug;

uint32_t ActiveScheduler::pickNext(const Machine &M,
                                   const std::vector<uint32_t> &Runnable) {
  assert(!Runnable.empty());

  // Detect that the previously scheduled step executed PcA.
  if (HavePrev && PrevPc == Candidate.PcA)
    ADone = true;

  // Partition runnable threads by whether they are poised at PcB.
  std::vector<uint32_t> AtB, Others;
  for (uint32_t Tid : Runnable) {
    if (M.thread(Tid).Pc == Candidate.PcB)
      AtB.push_back(Tid);
    else
      Others.push_back(Tid);
  }

  uint32_t Chosen;
  if (!ADone) {
    if (!Others.empty() && !AtB.empty()) {
      DelayedSomeone = true; // we are actively holding a PcB thread back
      // Periodically release one delayed thread for a single step so the
      // rest of the program keeps making progress (PcA may causally depend
      // on the delayed threads) — the Maple timeout analog.
      if (++DelayTicks % DelayPeriod == 0)
        Chosen = AtB[Rand.below(AtB.size())];
      else
        Chosen = Others[Rand.below(Others.size())];
    } else if (!Others.empty()) {
      Chosen = Others[Rand.below(Others.size())];
    } else {
      // Only PcB-poised threads can run: give up the delay for progress.
      Chosen = AtB[Rand.below(AtB.size())];
    }
  } else if (!AtB.empty()) {
    // A has executed: release a delayed PcB thread immediately.
    if (DelayedSomeone)
      Forced = true;
    Chosen = AtB.front();
  } else {
    Chosen = Runnable[Rand.below(Runnable.size())];
  }

  HavePrev = true;
  PrevTid = Chosen;
  PrevPc = M.thread(Chosen).Pc;
  return Chosen;
}
