//===- maple/profiler.cpp - iRoot profiling phase ----------------------------===//

#include "maple/profiler.h"

#include "vm/machine.h"

using namespace drdebug;

void IRootProfiler::onExec(const Machine &, const ExecRecord &R) {
  auto Note = [&](uint64_t Addr, bool IsWrite) {
    auto It = LastAccess.find(Addr);
    if (It != LastAccess.end()) {
      const Access &Prev = It->second;
      if (Prev.Tid != R.Tid && (Prev.IsWrite || IsWrite)) {
        IRoot Root;
        Root.PcA = Prev.Pc;
        Root.PcB = R.Pc;
        Root.K = Prev.IsWrite
                     ? (IsWrite ? IRoot::Kind::WriteWrite
                                : IRoot::Kind::WriteRead)
                     : IRoot::Kind::ReadWrite;
        Observed.insert(Root);
      }
    }
    LastAccess[Addr] = {R.Tid, R.Pc, IsWrite};
  };
  for (const auto &U : R.Uses)
    if (!isRegLoc(U.Loc))
      Note(locAddr(U.Loc), /*IsWrite=*/false);
  for (const auto &D : R.Defs)
    if (!isRegLoc(D.Loc))
      Note(locAddr(D.Loc), /*IsWrite=*/true);
}

std::vector<IRoot> IRootProfiler::predictCandidates() const {
  std::vector<IRoot> Result;
  for (const IRoot &Root : Observed) {
    IRoot Flip = Root.flipped();
    if (!Observed.count(Flip))
      Result.push_back(Flip);
  }
  return Result;
}
