//===- maple/iroot.cpp - Inter-thread dependency idioms ----------------------===//

#include "maple/iroot.h"

#include <sstream>

using namespace drdebug;

const char *drdebug::iRootKindName(IRoot::Kind K) {
  switch (K) {
  case IRoot::Kind::WriteRead: return "W->R";
  case IRoot::Kind::ReadWrite: return "R->W";
  case IRoot::Kind::WriteWrite: return "W->W";
  }
  return "?";
}

std::string IRoot::str() const {
  std::ostringstream OS;
  OS << iRootKindName(K) << " " << PcA << " -> " << PcB;
  return OS.str();
}
