//===- maple/profiler.h - iRoot profiling phase -----------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maple's phase (i): an Observer that, during profiling runs, records the
/// set of *observed* idiom-1 iRoots (adjacent conflicting cross-thread
/// accesses to the same location) and predicts *untested* candidates by
/// reversing observed orders. Candidates are what the active scheduler
/// later tries to force.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_MAPLE_PROFILER_H
#define DRDEBUG_MAPLE_PROFILER_H

#include "maple/iroot.h"
#include "vm/observer.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace drdebug {

/// Collects observed iRoots over one or more profiling runs (attach to each
/// run's machine; the observed set accumulates).
class IRootProfiler : public Observer {
public:
  void onExec(const Machine &M, const ExecRecord &R) override;

  /// Call between runs so stale last-access state does not leak across
  /// executions (the observed iRoot set is kept).
  void resetRunState() { LastAccess.clear(); }

  const std::set<IRoot> &observed() const { return Observed; }

  /// Predicted candidates: reversals of observed iRoots that were never
  /// themselves observed, in deterministic order.
  std::vector<IRoot> predictCandidates() const;

private:
  struct Access {
    uint32_t Tid;
    uint64_t Pc;
    bool IsWrite;
  };
  std::unordered_map<uint64_t, Access> LastAccess;
  std::set<IRoot> Observed;
};

} // namespace drdebug

#endif // DRDEBUG_MAPLE_PROFILER_H
