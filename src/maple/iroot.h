//===- maple/iroot.h - Inter-thread dependency idioms -----------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// iRoots, after the Maple tool the paper integrates with (§6): an idiom-1
/// iRoot is an ordered pair of static instructions (PcA then PcB) executed
/// by *different* threads, accessing the same shared memory location, at
/// least one of them writing. Maple's profiler records observed iRoots and
/// predicts untested ones; its active scheduler then forces a predicted
/// order to expose interleaving bugs.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_MAPLE_IROOT_H
#define DRDEBUG_MAPLE_IROOT_H

#include <cstdint>
#include <string>
#include <tuple>

namespace drdebug {

/// An idiom-1 inter-thread dependency: PcA (one thread) happens immediately
/// before the conflicting PcB (another thread).
struct IRoot {
  enum class Kind : uint8_t { WriteRead, ReadWrite, WriteWrite };

  uint64_t PcA = 0;
  uint64_t PcB = 0;
  Kind K = Kind::WriteRead;

  bool operator<(const IRoot &O) const {
    return std::tie(PcA, PcB, K) < std::tie(O.PcA, O.PcB, O.K);
  }
  bool operator==(const IRoot &O) const {
    return PcA == O.PcA && PcB == O.PcB && K == O.K;
  }

  /// The reversed-order iRoot (Maple's idiom-1 prediction: if A->B was
  /// observed, B->A is a candidate interleaving to test).
  IRoot flipped() const {
    IRoot F;
    F.PcA = PcB;
    F.PcB = PcA;
    switch (K) {
    case Kind::WriteRead:
      F.K = Kind::ReadWrite;
      break;
    case Kind::ReadWrite:
      F.K = Kind::WriteRead;
      break;
    case Kind::WriteWrite:
      F.K = Kind::WriteWrite;
      break;
    }
    return F;
  }

  std::string str() const;
};

const char *iRootKindName(IRoot::Kind K);

} // namespace drdebug

#endif // DRDEBUG_MAPLE_IROOT_H
