//===- arch/opcode.h - MiniVM instruction set ------------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM opcode set. MiniVM is the instrumentable target substrate that
/// stands in for "x86 binary under Pin" in this reproduction: a 64-bit,
/// word-addressed, register ISA with calls, indirect jumps, push/pop
/// (callee-save idioms), threads, mutexes and non-deterministic syscalls —
/// i.e. everything the paper's slicer and replay system have to cope with.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_ARCH_OPCODE_H
#define DRDEBUG_ARCH_OPCODE_H

#include <cstdint>
#include <string_view>

namespace drdebug {

/// Number of general-purpose registers. Register 15 is the stack pointer
/// ("sp" in assembly); register 14 is conventionally the frame pointer.
constexpr unsigned NumRegs = 16;
constexpr unsigned RegSp = 15;
constexpr unsigned RegFp = 14;

enum class Opcode : uint8_t {
  Nop,
  // Data movement.
  MovI, ///< rd = imm
  Mov,  ///< rd = ra
  Lea,  ///< rd = imm (address of a global, function, or label)
  // Three-register arithmetic: rd = ra OP rb.
  Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
  // Register-immediate arithmetic: rd = ra OP imm.
  AddI, SubI, MulI, DivI, ModI, AndI, OrI, XorI, ShlI, ShrI,
  // Unary: rd = OP ra.
  Neg, Not,
  // Memory.
  Ld,  ///< rd = mem[ra + imm]
  St,  ///< mem[ra + imm] = rd
  LdA, ///< rd = mem[imm]
  StA, ///< mem[imm] = rd
  Push, ///< mem[--sp] = rd
  Pop,  ///< rd = mem[sp++]
  // Control flow.
  Jmp,  ///< pc = imm
  IJmp, ///< pc = ra (indirect jump; target set unknown statically)
  Beq, Bne, Blt, Ble, Bgt, Bge, ///< if (ra CC rb) pc = imm
  Call,  ///< push return address; pc = imm
  ICall, ///< push return address; pc = ra
  Ret,   ///< pc = pop(); exits the thread if the sentinel is popped
  // Synchronization (addresses name mutexes; accesses are sequentially
  // consistent because the interpreter executes one instruction at a time).
  Lock,      ///< acquire mutex at address ra (blocks)
  Unlock,    ///< release mutex at address ra
  AtomicAdd, ///< rd = mem[ra]; mem[ra] += rb (atomically)
  // Threads.
  Spawn, ///< rd = tid of new thread entering function at imm with r0 = ra
  Join,  ///< block until thread with tid ra has exited
  // Non-deterministic syscalls (their results are what the logger records).
  SysRead,  ///< rd = next value from the machine's external input
  SysRand,  ///< rd = machine random value
  SysTime,  ///< rd = machine clock value
  SysAlloc, ///< rd = address of ra freshly allocated words
  SysWrite, ///< append rd to the machine's output
  // Failure detection.
  Assert, ///< if rd == 0: assertion failure (the bug "symptom")
  Halt,   ///< stop the whole machine
};

/// How an opcode's operands are written in assembly and which Instruction
/// fields they populate.
enum class OperandKind : uint8_t {
  None,    ///< op
  R,       ///< op rd
  RR,      ///< op rd, ra
  RRR,     ///< op rd, ra, rb
  RI,      ///< op rd, imm
  RRI,     ///< op rd, ra, imm
  RMem,    ///< op rd, [ra + imm]
  RAbs,    ///< op rd, @global | &func | label   (imm = resolved address)
  Label,   ///< op label                          (imm = code address)
  RRLabel, ///< op ra, rb, label
  RMemR,   ///< op rd, [ra], rb
  RLabelR, ///< op rd, func, ra
};

/// Static description of one opcode.
struct OpcodeInfo {
  std::string_view Name;
  OperandKind Operands;
  bool IsCondBranch; ///< conditional branch (source of control dependences)
  bool IsBranch;     ///< any instruction that can change pc non-sequentially
};

/// \returns the static description of \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// \returns the opcode named \p Name, or Nop with Found=false.
Opcode opcodeByName(std::string_view Name, bool &Found);

/// \returns the assembly mnemonic of \p Op.
inline std::string_view opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

/// \returns true if \p Op is a three-register or register-immediate ALU op.
bool isBinaryAlu(Opcode Op);

} // namespace drdebug

#endif // DRDEBUG_ARCH_OPCODE_H
