//===- arch/predecode.cpp - Pre-decoded instruction stream -------------------===//

#include "arch/predecode.h"

using namespace drdebug;

static uint32_t flagsFor(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::IJmp:
  case Opcode::ICall:
  case Opcode::Ret:
  case Opcode::Halt:
    return DecodedInst::FlagEndsBlock;
  case Opcode::Jmp:
  case Opcode::Call:
    return DecodedInst::FlagDirect;
  case Opcode::SysRead:
  case Opcode::SysRand:
  case Opcode::SysTime:
  case Opcode::SysAlloc:
    return DecodedInst::FlagSyscall;
  default:
    return 0;
  }
}

DecodedProgram::DecodedProgram(const Program &P) {
  Insts.reserve(P.Instrs.size());
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&H](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  for (const Instruction &I : P.Instrs) {
    DecodedInst D;
    D.Op = I.Op;
    D.Rd = I.Rd;
    D.Ra = I.Ra;
    D.Rb = I.Rb;
    D.Imm = I.Imm;
    D.Flags = flagsFor(I.Op);
    Mix(static_cast<uint64_t>(D.Op) | (uint64_t(D.Rd) << 8) |
        (uint64_t(D.Ra) << 16) | (uint64_t(D.Rb) << 24));
    Mix(static_cast<uint64_t>(D.Imm));
    Insts.push_back(D);
  }
  Fp = H;
}
