//===- arch/predecode.h - Pre-decoded instruction stream --------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, semantics-only view of an assembled program, decoded once so
/// the hot replay machinery never re-reads `Instruction` operand fields (or
/// pays `vector::at` bounds checks) per dispatch. `DecodedInst` drops the
/// source `Line` — two programs whose decoded streams compare equal execute
/// identically — which is what lets independently assembled copies of the
/// same program share one trace cache (see vm/trace_cache.h). The stream
/// carries a FNV-1a fingerprint over the semantic fields for cheap registry
/// bucketing; equality is always confirmed structurally, never by hash.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_ARCH_PREDECODE_H
#define DRDEBUG_ARCH_PREDECODE_H

#include "arch/program.h"

#include <cstdint>
#include <vector>

namespace drdebug {

/// One pre-decoded instruction: the semantic fields of `Instruction`,
/// densely packed (16 bytes vs 24), with superblock-formation flags
/// computed once at decode time.
struct DecodedInst {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  /// Or-combination of the Flag* bits below.
  uint32_t Flags = 0;
  int64_t Imm = 0;

  /// Instruction ends a superblock: its successor pc is data-dependent
  /// (conditional branch, indirect jump/call, ret) or it stops the machine.
  static constexpr uint32_t FlagEndsBlock = 1u << 0;
  /// Instruction consumes a recorded non-deterministic value.
  static constexpr uint32_t FlagSyscall = 1u << 1;
  /// Direct control transfer whose target is an immediate (Jmp/Call):
  /// translation can continue at the target inside the same superblock.
  static constexpr uint32_t FlagDirect = 1u << 2;

  bool operator==(const DecodedInst &O) const {
    return Op == O.Op && Rd == O.Rd && Ra == O.Ra && Rb == O.Rb &&
           Imm == O.Imm;
  }
};

/// The whole program, decoded once. Immutable after construction; safe to
/// share across threads.
class DecodedProgram {
public:
  explicit DecodedProgram(const Program &P);

  size_t size() const { return Insts.size(); }
  bool inRange(uint64_t Pc) const { return Pc < Insts.size(); }
  const DecodedInst &inst(uint64_t Pc) const { return Insts[Pc]; }

  /// FNV-1a over the semantic fields (bucketing key; not an identity).
  uint64_t fingerprint() const { return Fp; }

  /// Exact semantic equality: same instruction stream, ignoring source
  /// lines. Programs for which this holds execute identically from equal
  /// start states, so they may share compiled traces.
  bool sameCode(const DecodedProgram &O) const { return Insts == O.Insts; }

private:
  std::vector<DecodedInst> Insts;
  uint64_t Fp = 0;
};

} // namespace drdebug

#endif // DRDEBUG_ARCH_PREDECODE_H
