//===- arch/disasm.cpp - MiniVM disassembler --------------------------------===//

#include "arch/disasm.h"

#include <sstream>

using namespace drdebug;

namespace {

std::string regName(uint8_t R) {
  if (R == RegSp)
    return "sp";
  if (R == RegFp)
    return "fp";
  return "r" + std::to_string(static_cast<int>(R));
}

} // namespace

std::string drdebug::disassemble(const Instruction &Instr) {
  const OpcodeInfo &Info = opcodeInfo(Instr.Op);
  std::ostringstream OS;
  OS << Info.Name;
  auto Mem = [&] {
    OS << "[" << regName(Instr.Ra);
    if (Instr.Imm > 0)
      OS << "+" << Instr.Imm;
    else if (Instr.Imm < 0)
      OS << Instr.Imm;
    OS << "]";
  };
  switch (Info.Operands) {
  case OperandKind::None:
    break;
  case OperandKind::R:
    OS << " " << regName(Instr.Rd);
    break;
  case OperandKind::RR:
    OS << " " << regName(Instr.Rd) << ", " << regName(Instr.Ra);
    break;
  case OperandKind::RRR:
    OS << " " << regName(Instr.Rd) << ", " << regName(Instr.Ra) << ", "
       << regName(Instr.Rb);
    break;
  case OperandKind::RI:
    OS << " " << regName(Instr.Rd) << ", " << Instr.Imm;
    break;
  case OperandKind::RRI:
    OS << " " << regName(Instr.Rd) << ", " << regName(Instr.Ra) << ", "
       << Instr.Imm;
    break;
  case OperandKind::RMem:
    OS << " " << regName(Instr.Rd) << ", ";
    Mem();
    break;
  case OperandKind::RAbs:
    OS << " " << regName(Instr.Rd) << ", " << Instr.Imm;
    break;
  case OperandKind::Label:
    OS << " " << Instr.Imm;
    break;
  case OperandKind::RRLabel:
    OS << " " << regName(Instr.Ra) << ", " << regName(Instr.Rb) << ", "
       << Instr.Imm;
    break;
  case OperandKind::RMemR:
    OS << " " << regName(Instr.Rd) << ", ";
    Mem();
    OS << ", " << regName(Instr.Rb);
    break;
  case OperandKind::RLabelR:
    OS << " " << regName(Instr.Rd) << ", " << Instr.Imm << ", "
       << regName(Instr.Ra);
    break;
  }
  return OS.str();
}

std::string drdebug::disassembleAt(const Program &Prog, uint64_t Pc) {
  std::ostringstream OS;
  OS << Pc << " ";
  if (const Function *F = Prog.functionAt(Pc))
    OS << "<" << F->Name << "+" << (Pc - F->Begin) << ">";
  OS << ": " << disassemble(Prog.inst(Pc));
  return OS.str();
}
