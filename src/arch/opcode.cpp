//===- arch/opcode.cpp - MiniVM instruction set ---------------------------===//

#include "arch/opcode.h"

#include <cassert>
#include <map>

using namespace drdebug;

namespace {

// Indexed by the integral value of Opcode; keep in sync with the enum.
const OpcodeInfo Table[] = {
    {"nop", OperandKind::None, false, false},
    {"movi", OperandKind::RI, false, false},
    {"mov", OperandKind::RR, false, false},
    {"lea", OperandKind::RAbs, false, false},
    {"add", OperandKind::RRR, false, false},
    {"sub", OperandKind::RRR, false, false},
    {"mul", OperandKind::RRR, false, false},
    {"div", OperandKind::RRR, false, false},
    {"mod", OperandKind::RRR, false, false},
    {"and", OperandKind::RRR, false, false},
    {"or", OperandKind::RRR, false, false},
    {"xor", OperandKind::RRR, false, false},
    {"shl", OperandKind::RRR, false, false},
    {"shr", OperandKind::RRR, false, false},
    {"addi", OperandKind::RRI, false, false},
    {"subi", OperandKind::RRI, false, false},
    {"muli", OperandKind::RRI, false, false},
    {"divi", OperandKind::RRI, false, false},
    {"modi", OperandKind::RRI, false, false},
    {"andi", OperandKind::RRI, false, false},
    {"ori", OperandKind::RRI, false, false},
    {"xori", OperandKind::RRI, false, false},
    {"shli", OperandKind::RRI, false, false},
    {"shri", OperandKind::RRI, false, false},
    {"neg", OperandKind::RR, false, false},
    {"not", OperandKind::RR, false, false},
    {"ld", OperandKind::RMem, false, false},
    {"st", OperandKind::RMem, false, false},
    {"lda", OperandKind::RAbs, false, false},
    {"sta", OperandKind::RAbs, false, false},
    {"push", OperandKind::R, false, false},
    {"pop", OperandKind::R, false, false},
    {"jmp", OperandKind::Label, false, true},
    {"ijmp", OperandKind::R, false, true},
    {"beq", OperandKind::RRLabel, true, true},
    {"bne", OperandKind::RRLabel, true, true},
    {"blt", OperandKind::RRLabel, true, true},
    {"ble", OperandKind::RRLabel, true, true},
    {"bgt", OperandKind::RRLabel, true, true},
    {"bge", OperandKind::RRLabel, true, true},
    {"call", OperandKind::Label, false, true},
    {"icall", OperandKind::R, false, true},
    {"ret", OperandKind::None, false, true},
    {"lock", OperandKind::R, false, false},
    {"unlock", OperandKind::R, false, false},
    {"atomicadd", OperandKind::RMemR, false, false},
    {"spawn", OperandKind::RLabelR, false, false},
    {"join", OperandKind::R, false, false},
    {"sysread", OperandKind::R, false, false},
    {"sysrand", OperandKind::R, false, false},
    {"systime", OperandKind::R, false, false},
    {"sysalloc", OperandKind::RR, false, false},
    {"syswrite", OperandKind::R, false, false},
    {"assert", OperandKind::R, false, false},
    {"halt", OperandKind::None, false, false},
};

constexpr size_t TableSize = sizeof(Table) / sizeof(Table[0]);
static_assert(TableSize == static_cast<size_t>(Opcode::Halt) + 1,
              "opcode table out of sync with Opcode enum");

} // namespace

const OpcodeInfo &drdebug::opcodeInfo(Opcode Op) {
  auto Idx = static_cast<size_t>(Op);
  assert(Idx < TableSize && "invalid opcode");
  return Table[Idx];
}

Opcode drdebug::opcodeByName(std::string_view Name, bool &Found) {
  static const std::map<std::string_view, Opcode> ByName = [] {
    std::map<std::string_view, Opcode> M;
    for (size_t I = 0; I != TableSize; ++I)
      M.emplace(Table[I].Name, static_cast<Opcode>(I));
    return M;
  }();
  auto It = ByName.find(Name);
  Found = It != ByName.end();
  return Found ? It->second : Opcode::Nop;
}

bool drdebug::isBinaryAlu(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::ShrI;
}
