//===- arch/assembler.cpp - MiniVM two-pass assembler ----------------------===//

#include "arch/assembler.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace drdebug;

namespace {

/// A reference from instruction Index's Imm field to a yet-unresolved symbol.
struct Fixup {
  size_t Index;
  std::string Symbol; ///< may carry an "@name+K" form for globals
  uint32_t Line;
};

class Assembler {
public:
  Assembler(const std::string &Text, Program &Out) : Text(Text), Out(Out) {}

  bool run(std::string &Error);

private:
  bool parseLine(std::string Line);
  bool parseDirective(const std::string &Head, std::istringstream &Rest);
  bool parseInstruction(const std::string &Mnemonic, std::string Operands);
  bool parseReg(const std::string &Tok, uint8_t &Reg);
  bool parseImm(const std::string &Tok, int64_t &Val);
  /// Records Tok for later resolution into Instr.Imm (labels, @globals,
  /// &functions) or parses it immediately if it is a number.
  bool parseSymbolOrImm(const std::string &Tok, Instruction &Instr);
  bool resolveFixups(std::string &Error);
  bool fail(const std::string &Message);

  static std::vector<std::string> splitOperands(const std::string &S);

  const std::string &Text;
  Program &Out;
  std::map<std::string, uint64_t> Labels;
  std::vector<Fixup> Fixups;
  uint64_t NextGlobalAddr = layout::GlobalBase;
  uint32_t LineNo = 0;
  bool InFunction = false;
  std::string ErrorMessage;
};

bool Assembler::fail(const std::string &Message) {
  std::ostringstream OS;
  OS << "line " << LineNo << ": " << Message;
  ErrorMessage = OS.str();
  return false;
}

bool Assembler::run(std::string &Error) {
  Out = Program();
  Out.SourceText = Text;

  std::istringstream Stream(Text);
  std::string Line;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    if (!parseLine(std::move(Line))) {
      Error = ErrorMessage;
      return false;
    }
  }
  if (InFunction)
    return fail("missing .endfunc at end of input"), Error = ErrorMessage,
           false;
  if (Out.findFunction("main") < 0) {
    Error = "program has no 'main' function";
    return false;
  }
  if (!resolveFixups(Error))
    return false;
  return true;
}

std::vector<std::string> Assembler::splitOperands(const std::string &S) {
  std::vector<std::string> Toks;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      Toks.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(C)))
      Cur.push_back(C);
  }
  if (!Cur.empty())
    Toks.push_back(Cur);
  return Toks;
}

bool Assembler::parseReg(const std::string &Tok, uint8_t &Reg) {
  if (Tok == "sp") {
    Reg = RegSp;
    return true;
  }
  if (Tok == "fp") {
    Reg = RegFp;
    return true;
  }
  if (Tok.size() < 2 || Tok[0] != 'r')
    return fail("expected register, got '" + Tok + "'");
  char *End = nullptr;
  long N = std::strtol(Tok.c_str() + 1, &End, 10);
  if (*End != '\0' || N < 0 || N >= static_cast<long>(NumRegs))
    return fail("bad register '" + Tok + "'");
  Reg = static_cast<uint8_t>(N);
  return true;
}

bool Assembler::parseImm(const std::string &Tok, int64_t &Val) {
  if (Tok.empty())
    return fail("expected immediate");
  char *End = nullptr;
  Val = std::strtoll(Tok.c_str(), &End, 0);
  if (*End != '\0')
    return fail("bad immediate '" + Tok + "'");
  return true;
}

bool Assembler::parseSymbolOrImm(const std::string &Tok, Instruction &Instr) {
  if (Tok.empty())
    return fail("expected symbol or immediate");
  char First = Tok[0];
  if (First == '@' || First == '&' || std::isalpha(static_cast<unsigned char>(First)) ||
      First == '_' || First == '.') {
    Fixups.push_back({Out.Instrs.size(), Tok, LineNo});
    return true;
  }
  return parseImm(Tok, Instr.Imm);
}

bool Assembler::parseDirective(const std::string &Head,
                               std::istringstream &Rest) {
  if (Head == ".func") {
    if (InFunction)
      return fail(".func inside .func");
    std::string Name;
    Rest >> Name;
    if (Name.empty())
      return fail(".func needs a name");
    if (Out.findFunction(Name) >= 0 || Labels.count(Name) ||
        Out.findGlobal(Name))
      return fail("redefinition of '" + Name + "'");
    Function F;
    F.Name = Name;
    F.Begin = static_cast<uint32_t>(Out.Instrs.size());
    Out.Funcs.push_back(F);
    Labels[Name] = F.Begin;
    InFunction = true;
    return true;
  }
  if (Head == ".endfunc") {
    if (!InFunction)
      return fail(".endfunc outside .func");
    Out.Funcs.back().End = static_cast<uint32_t>(Out.Instrs.size());
    if (Out.Funcs.back().End == Out.Funcs.back().Begin)
      return fail("empty function '" + Out.Funcs.back().Name + "'");
    InFunction = false;
    return true;
  }
  if (Head == ".data" || Head == ".array") {
    if (InFunction)
      return fail(Head + " inside .func");
    std::string Name;
    Rest >> Name;
    if (Name.empty())
      return fail(Head + " needs a name");
    if (Out.findGlobal(Name) || Labels.count(Name))
      return fail("redefinition of '" + Name + "'");
    GlobalVar G;
    G.Name = Name;
    G.Addr = NextGlobalAddr;
    if (Head == ".data") {
      G.Size = 1;
      std::string Tok;
      if (Rest >> Tok) {
        int64_t V = 0;
        if (!parseImm(Tok, V))
          return false;
        G.Init.push_back(V);
      }
    } else {
      std::string SizeTok;
      if (!(Rest >> SizeTok))
        return fail(".array needs a size");
      int64_t Size = 0;
      if (!parseImm(SizeTok, Size))
        return false;
      if (Size <= 0)
        return fail(".array size must be positive");
      G.Size = static_cast<uint64_t>(Size);
      std::string Tok;
      while (Rest >> Tok) {
        int64_t V = 0;
        if (!parseImm(Tok, V))
          return false;
        G.Init.push_back(V);
      }
      if (G.Init.size() > G.Size)
        return fail(".array has more initializers than its size");
    }
    NextGlobalAddr += G.Size;
    Out.Globals.push_back(std::move(G));
    return true;
  }
  return fail("unknown directive '" + Head + "'");
}

bool Assembler::parseInstruction(const std::string &Mnemonic,
                                 std::string Operands) {
  bool Found = false;
  Opcode Op = opcodeByName(Mnemonic, Found);
  if (!Found)
    return fail("unknown instruction '" + Mnemonic + "'");

  Instruction Instr;
  Instr.Op = Op;
  Instr.Line = LineNo;
  std::vector<std::string> Toks = splitOperands(Operands);
  const OpcodeInfo &Info = opcodeInfo(Op);

  auto Expect = [&](size_t N) {
    if (Toks.size() == N)
      return true;
    std::ostringstream OS;
    OS << "'" << Mnemonic << "' expects " << N << " operand(s), got "
       << Toks.size();
    return fail(OS.str());
  };
  // Parses a "[ra]" or "[ra+imm]" or "[ra-imm]" token into Ra/Imm.
  auto ParseMem = [&](const std::string &Tok) {
    if (Tok.size() < 3 || Tok.front() != '[' || Tok.back() != ']')
      return fail("expected memory operand [reg+off], got '" + Tok + "'");
    std::string Body = Tok.substr(1, Tok.size() - 2);
    size_t Plus = Body.find_first_of("+-", 1);
    std::string RegTok = Plus == std::string::npos ? Body : Body.substr(0, Plus);
    if (!parseReg(RegTok, Instr.Ra))
      return false;
    if (Plus == std::string::npos)
      return true;
    return parseImm(Body.substr(Plus), Instr.Imm);
  };

  switch (Info.Operands) {
  case OperandKind::None:
    if (!Expect(0))
      return false;
    break;
  case OperandKind::R:
    if (!Expect(1) || !parseReg(Toks[0], Instr.Rd))
      return false;
    break;
  case OperandKind::RR:
    if (!Expect(2) || !parseReg(Toks[0], Instr.Rd) ||
        !parseReg(Toks[1], Instr.Ra))
      return false;
    break;
  case OperandKind::RRR:
    if (!Expect(3) || !parseReg(Toks[0], Instr.Rd) ||
        !parseReg(Toks[1], Instr.Ra) || !parseReg(Toks[2], Instr.Rb))
      return false;
    break;
  case OperandKind::RI:
    if (!Expect(2) || !parseReg(Toks[0], Instr.Rd) ||
        !parseImm(Toks[1], Instr.Imm))
      return false;
    break;
  case OperandKind::RRI:
    if (!Expect(3) || !parseReg(Toks[0], Instr.Rd) ||
        !parseReg(Toks[1], Instr.Ra) || !parseImm(Toks[2], Instr.Imm))
      return false;
    break;
  case OperandKind::RMem:
    if (!Expect(2) || !parseReg(Toks[0], Instr.Rd) || !ParseMem(Toks[1]))
      return false;
    break;
  case OperandKind::RAbs:
    if (!Expect(2) || !parseReg(Toks[0], Instr.Rd) ||
        !parseSymbolOrImm(Toks[1], Instr))
      return false;
    break;
  case OperandKind::Label:
    if (!Expect(1) || !parseSymbolOrImm(Toks[0], Instr))
      return false;
    break;
  case OperandKind::RRLabel:
    if (!Expect(3) || !parseReg(Toks[0], Instr.Ra) ||
        !parseReg(Toks[1], Instr.Rb) || !parseSymbolOrImm(Toks[2], Instr))
      return false;
    break;
  case OperandKind::RMemR:
    if (!Expect(3) || !parseReg(Toks[0], Instr.Rd) || !ParseMem(Toks[1]) ||
        !parseReg(Toks[2], Instr.Rb))
      return false;
    break;
  case OperandKind::RLabelR:
    if (!Expect(3) || !parseReg(Toks[0], Instr.Rd) ||
        !parseSymbolOrImm(Toks[1], Instr) || !parseReg(Toks[2], Instr.Ra))
      return false;
    break;
  }

  Out.Instrs.push_back(Instr);
  return true;
}

bool Assembler::parseLine(std::string Line) {
  // Strip comments.
  size_t Hash = Line.find_first_of(";#");
  if (Hash != std::string::npos)
    Line.resize(Hash);

  // Peel off any leading "label:" prefixes.
  for (;;) {
    size_t FirstNonWs = Line.find_first_not_of(" \t\r");
    if (FirstNonWs == std::string::npos)
      return true; // blank line
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      break;
    // Only treat it as a label if the prefix is a single identifier.
    std::string Name = Line.substr(FirstNonWs, Colon - FirstNonWs);
    bool IsIdent = !Name.empty();
    for (char C : Name)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
        IsIdent = false;
    if (!IsIdent)
      break;
    if (!InFunction)
      return fail("label '" + Name + "' outside .func");
    if (Labels.count(Name) || Out.findGlobal(Name))
      return fail("redefinition of label '" + Name + "'");
    Labels[Name] = Out.Instrs.size();
    Line = Line.substr(Colon + 1);
  }

  std::istringstream LineStream(Line);
  std::string Head;
  if (!(LineStream >> Head))
    return true;

  if (Head[0] == '.')
    return parseDirective(Head, LineStream);

  if (!InFunction)
    return fail("instruction outside .func");
  std::string Rest;
  std::getline(LineStream, Rest);
  return parseInstruction(Head, Rest);
}

bool Assembler::resolveFixups(std::string &Error) {
  for (const Fixup &F : Fixups) {
    LineNo = F.Line;
    const std::string &Sym = F.Symbol;
    int64_t Value = 0;
    if (Sym[0] == '@') {
      // Global reference, optionally with +K / -K offset.
      size_t Plus = Sym.find_first_of("+-", 1);
      std::string Name =
          Plus == std::string::npos ? Sym.substr(1) : Sym.substr(1, Plus - 1);
      const GlobalVar *G = Out.findGlobal(Name);
      if (!G) {
        fail("unknown global '" + Name + "'");
        Error = ErrorMessage;
        return false;
      }
      int64_t Off = 0;
      if (Plus != std::string::npos && !parseImm(Sym.substr(Plus), Off)) {
        Error = ErrorMessage;
        return false;
      }
      Value = static_cast<int64_t>(G->Addr) + Off;
    } else if (Sym[0] == '&') {
      std::string Name = Sym.substr(1);
      int Idx = Out.findFunction(Name);
      if (Idx < 0) {
        fail("unknown function '" + Name + "'");
        Error = ErrorMessage;
        return false;
      }
      Value = Out.Funcs[static_cast<size_t>(Idx)].Begin;
    } else {
      auto It = Labels.find(Sym);
      if (It == Labels.end()) {
        fail("unknown label '" + Sym + "'");
        Error = ErrorMessage;
        return false;
      }
      Value = static_cast<int64_t>(It->second);
    }
    Out.Instrs[F.Index].Imm = Value;
  }
  return true;
}

} // namespace

bool drdebug::assemble(const std::string &Text, Program &Out,
                       std::string &Error) {
  Assembler A(Text, Out);
  return A.run(Error);
}

Program drdebug::assembleOrDie(const std::string &Text) {
  Program P;
  std::string Error;
  if (!assemble(Text, P, Error)) {
    std::fprintf(stderr, "assembleOrDie: %s\n", Error.c_str());
    std::abort();
  }
  return P;
}
