//===- arch/assembler.h - MiniVM two-pass assembler -------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates MiniVM assembly text into a Program. Syntax overview:
///
/// \code
///   ; comment (also #)
///   .data counter 0            ; one word named "counter"
///   .array buf 16              ; 16 zero words
///   .array tab 3 5 9 2         ; 3 words with initial values
///   .func main
///     movi r1, 10
///   loop:
///     subi r1, r1, 1
///     bne  r1, r0, loop
///     lea  r2, @counter        ; address of a global
///     lea  r3, &worker         ; address of a function entry
///     st   r1, [r2]
///     halt
///   .endfunc
///   .func worker
///     ret
///   .endfunc
/// \endcode
///
/// Registers are r0..r15; "sp" aliases r15 and "fp" aliases r14. Labels are
/// program-wide and every function name doubles as a label at its entry.
/// Execution starts at "main".
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_ARCH_ASSEMBLER_H
#define DRDEBUG_ARCH_ASSEMBLER_H

#include "arch/program.h"

#include <string>

namespace drdebug {

/// Assembles \p Text into \p Out.
/// \returns true on success; on failure fills \p Error with a message of the
/// form "line N: ...". \p Out is unspecified on failure.
bool assemble(const std::string &Text, Program &Out, std::string &Error);

/// Convenience wrapper that asserts on assembly errors; intended for
/// programmatically generated (known-good) workload sources.
Program assembleOrDie(const std::string &Text);

} // namespace drdebug

#endif // DRDEBUG_ARCH_ASSEMBLER_H
