//===- arch/disasm.h - MiniVM disassembler ----------------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders instructions back to assembly-like text for debugger listings,
/// slice browsing, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_ARCH_DISASM_H
#define DRDEBUG_ARCH_DISASM_H

#include "arch/program.h"

#include <string>

namespace drdebug {

/// \returns a one-line textual rendering of \p Instr, e.g. "add r1, r2, r3".
std::string disassemble(const Instruction &Instr);

/// \returns "pc <func>+off: <text>" for the instruction at \p Pc of \p Prog.
std::string disassembleAt(const Program &Prog, uint64_t Pc);

} // namespace drdebug

#endif // DRDEBUG_ARCH_DISASM_H
