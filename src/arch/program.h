//===- arch/program.h - Assembled MiniVM programs ---------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory representation of an assembled MiniVM program: a flat vector of
/// instructions (code addresses are indices into it), function ranges, and
/// global data definitions. The original assembly text is retained so that
/// pinballs can embed the program and remain portable, mirroring how a
/// PinPlay pinball is usable on any machine with the same binary.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_ARCH_PROGRAM_H
#define DRDEBUG_ARCH_PROGRAM_H

#include "arch/opcode.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace drdebug {

/// One decoded MiniVM instruction. Field use depends on the opcode's
/// OperandKind (see arch/opcode.h).
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  int64_t Imm = 0;
  /// 1-based line in the assembly source; the "statement" identity used for
  /// source-level slice reporting (the analog of a C source line).
  uint32_t Line = 0;
};

/// A contiguous function [Begin, End) in the instruction vector.
struct Function {
  std::string Name;
  uint32_t Begin = 0;
  uint32_t End = 0;
};

/// A named global data object occupying Size words at Addr.
struct GlobalVar {
  std::string Name;
  uint64_t Addr = 0;
  uint64_t Size = 1;
  std::vector<int64_t> Init; ///< initial values; missing words are zero
};

/// Memory layout: word-addressed; these are word addresses.
namespace layout {
constexpr uint64_t GlobalBase = 0x10000;
constexpr uint64_t HeapBase = 0x100000;
constexpr uint64_t StackRegionBase = 0x1000000;
constexpr uint64_t StackSize = 0x10000;
/// \returns the initial (highest) stack address for thread \p Tid; the stack
/// grows towards lower addresses.
inline uint64_t stackTop(uint32_t Tid) {
  return StackRegionBase + (static_cast<uint64_t>(Tid) + 1) * StackSize;
}
/// Popping this sentinel return address terminates the thread.
constexpr int64_t ExitAddr = -1;
} // namespace layout

/// An assembled program.
class Program {
public:
  std::vector<Instruction> Instrs;
  std::vector<Function> Funcs;
  std::vector<GlobalVar> Globals;
  /// Original assembly text; embedded into pinballs for portability.
  std::string SourceText;

  /// \returns the index of the function named \p Name, or -1.
  int findFunction(const std::string &Name) const;

  /// \returns the function containing code address \p Pc, or nullptr.
  const Function *functionAt(uint64_t Pc) const;

  /// \returns the entry code address of function \p Name; asserts it exists.
  uint64_t entryOf(const std::string &Name) const;

  /// \returns the global named \p Name, or nullptr.
  const GlobalVar *findGlobal(const std::string &Name) const;

  /// \returns the instruction at \p Pc; asserts the address is valid.
  const Instruction &inst(uint64_t Pc) const {
    return Instrs.at(static_cast<size_t>(Pc));
  }

  size_t size() const { return Instrs.size(); }
};

} // namespace drdebug

#endif // DRDEBUG_ARCH_PROGRAM_H
