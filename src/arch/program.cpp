//===- arch/program.cpp - Assembled MiniVM programs ------------------------===//

#include "arch/program.h"

#include <cassert>

using namespace drdebug;

int Program::findFunction(const std::string &Name) const {
  for (size_t I = 0, E = Funcs.size(); I != E; ++I)
    if (Funcs[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const Function *Program::functionAt(uint64_t Pc) const {
  for (const Function &F : Funcs)
    if (Pc >= F.Begin && Pc < F.End)
      return &F;
  return nullptr;
}

uint64_t Program::entryOf(const std::string &Name) const {
  int Idx = findFunction(Name);
  assert(Idx >= 0 && "unknown function");
  return Funcs[static_cast<size_t>(Idx)].Begin;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}
