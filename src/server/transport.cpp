//===- server/transport.cpp - Byte transports for the server -----------------===//

#include "server/transport.h"

#include "support/fault_injector.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace drdebug;

RecvStatus Transport::recvTimed(std::string &Bytes, uint64_t TimeoutMs) {
  // Conservative default for transports without a native timed wait: block.
  (void)TimeoutMs;
  return recv(Bytes) ? RecvStatus::Data : RecvStatus::Closed;
}

//===----------------------------------------------------------------------===//
// In-process duplex pipe
//===----------------------------------------------------------------------===//

namespace {

/// One direction of a pipe: a byte queue with blocking reads.
struct ByteQueue {
  std::mutex Mu;
  std::condition_variable Cv;
  std::string Buf;
  bool Closed = false;

  bool write(const std::string &Bytes) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Closed)
      return false;
    Buf += Bytes;
    Cv.notify_all();
    return true;
  }

  bool read(std::string &Bytes) {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return !Buf.empty() || Closed; });
    if (Buf.empty())
      return false;
    Bytes += Buf;
    Buf.clear();
    return true;
  }

  RecvStatus readTimed(std::string &Bytes, uint64_t TimeoutMs) {
    std::unique_lock<std::mutex> Lock(Mu);
    if (!Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                     [&] { return !Buf.empty() || Closed; }))
      return RecvStatus::Timeout;
    if (Buf.empty())
      return RecvStatus::Closed;
    Bytes += Buf;
    Buf.clear();
    return RecvStatus::Data;
  }

  void close() {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
    Cv.notify_all();
  }
};

class PipeTransport : public Transport {
public:
  PipeTransport(std::shared_ptr<ByteQueue> In, std::shared_ptr<ByteQueue> Out)
      : In(std::move(In)), Out(std::move(Out)) {}
  ~PipeTransport() override { close(); }

  bool send(const std::string &Bytes) override { return Out->write(Bytes); }
  bool recv(std::string &Bytes) override { return In->read(Bytes); }
  RecvStatus recvTimed(std::string &Bytes, uint64_t TimeoutMs) override {
    if (TimeoutMs == 0)
      return Transport::recvTimed(Bytes, 0);
    return In->readTimed(Bytes, TimeoutMs);
  }
  void close() override {
    In->close();
    Out->close();
  }

private:
  std::shared_ptr<ByteQueue> In;
  std::shared_ptr<ByteQueue> Out;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
drdebug::makePipePair() {
  auto AtoB = std::make_shared<ByteQueue>();
  auto BtoA = std::make_shared<ByteQueue>();
  return {std::make_unique<PipeTransport>(BtoA, AtoB),
          std::make_unique<PipeTransport>(AtoB, BtoA)};
}

//===----------------------------------------------------------------------===//
// TCP
//===----------------------------------------------------------------------===//

namespace {

class TcpTransport : public Transport {
public:
  explicit TcpTransport(int Fd) : Fd(Fd) {}
  ~TcpTransport() override { close(); }

  bool send(const std::string &Bytes) override {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  bool recv(std::string &Bytes) override {
    char Buf[4096];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return false;
    Bytes.append(Buf, static_cast<size_t>(N));
    return true;
  }

  RecvStatus recvTimed(std::string &Bytes, uint64_t TimeoutMs) override {
    if (TimeoutMs == 0)
      return recv(Bytes) ? RecvStatus::Data : RecvStatus::Closed;
    pollfd Pfd{};
    Pfd.fd = Fd;
    Pfd.events = POLLIN;
    int Rc = ::poll(&Pfd, 1, static_cast<int>(TimeoutMs));
    if (Rc == 0)
      return RecvStatus::Timeout;
    if (Rc < 0)
      return RecvStatus::Closed;
    return recv(Bytes) ? RecvStatus::Data : RecvStatus::Closed;
  }

  void close() override {
    if (Fd >= 0) {
      ::shutdown(Fd, SHUT_RDWR);
      ::close(Fd);
      Fd = -1;
    }
  }

private:
  int Fd;
};

} // namespace

TcpListener::TcpListener() = default;
TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(uint16_t Port, std::string &Error) {
  int S = ::socket(AF_INET, SOCK_STREAM, 0);
  if (S < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Fd.store(S);
  int One = 1;
  ::setsockopt(S, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  if (::listen(S, 16) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    close();
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(S, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return true;
}

std::unique_ptr<Transport> TcpListener::accept() {
  int S = Fd.load();
  if (S < 0)
    return nullptr;
  int Client = ::accept(S, nullptr, nullptr);
  if (Client < 0)
    return nullptr;
  return std::make_unique<TcpTransport>(Client);
}

void TcpListener::close() {
  int S = Fd.exchange(-1);
  if (S >= 0) {
    ::shutdown(S, SHUT_RDWR);
    ::close(S);
  }
}

std::unique_ptr<Transport> drdebug::tcpConnect(const std::string &Host,
                                               uint16_t Port,
                                               std::string &Error) {
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int Rc = ::getaddrinfo(Host.c_str(), std::to_string(Port).c_str(), &Hints,
                         &Res);
  if (Rc != 0) {
    Error = std::string("resolve ") + Host + ": " + ::gai_strerror(Rc);
    return nullptr;
  }
  int Fd = -1;
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, AI->ai_addr, AI->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    Error = "cannot connect to " + Host + ":" + std::to_string(Port);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(Fd);
}

//===----------------------------------------------------------------------===//
// Fault-injecting decorator
//===----------------------------------------------------------------------===//

namespace {

/// Wraps another transport and damages traffic according to the process
/// FaultInjector — the deterministic stand-in for flaky networks and lossy
/// links that the retry/robustness tests and `bench --faults` run against.
class FaultyTransport : public Transport {
public:
  FaultyTransport(std::unique_ptr<Transport> Inner, std::string SitePrefix)
      : Inner(std::move(Inner)), SendSite(SitePrefix + ".send"),
        RecvSite(SitePrefix + ".recv"), LatencySite(SitePrefix + ".latency") {}

  bool send(const std::string &Bytes) override {
    FaultInjector &FI = FaultInjector::global();
    if (!FI.enabled())
      return Inner->send(Bytes);
    FI.maybeDelay(LatencySite);
    if (FI.shouldFail(SendSite, FaultKind::ShortWrite)) {
      // The whole payload vanishes (a dropped frame); the connection lives.
      return true;
    }
    std::string Damaged = Bytes;
    FI.maybeCorrupt(SendSite, Damaged);
    FI.maybeTruncate(SendSite, Damaged);
    return Inner->send(Damaged);
  }

  bool recv(std::string &Bytes) override {
    std::string Fresh;
    if (!Inner->recv(Fresh))
      return false;
    FaultInjector::global().maybeCorrupt(RecvSite, Fresh);
    Bytes += Fresh;
    return true;
  }

  RecvStatus recvTimed(std::string &Bytes, uint64_t TimeoutMs) override {
    std::string Fresh;
    RecvStatus S = Inner->recvTimed(Fresh, TimeoutMs);
    if (S == RecvStatus::Data) {
      FaultInjector::global().maybeCorrupt(RecvSite, Fresh);
      Bytes += Fresh;
    }
    return S;
  }

  void close() override { Inner->close(); }

private:
  std::unique_ptr<Transport> Inner;
  std::string SendSite, RecvSite, LatencySite;
};

} // namespace

std::unique_ptr<Transport>
drdebug::makeFaultyTransport(std::unique_ptr<Transport> Inner,
                             const std::string &SitePrefix) {
  return std::make_unique<FaultyTransport>(std::move(Inner), SitePrefix);
}
