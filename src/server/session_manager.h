//===- server/session_manager.h - Concurrent debug sessions -----*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the server's DebugSessions. Each session is identified by a
/// numeric id, returns per-command output through CommandResult (the
/// structured execute API), and is driven by at most one command at a time (a
/// per-session mutex serializes them); different sessions run freely in
/// parallel on the server's worker threads. Sessions idle longer than the
/// configured timeout are evicted; a session busy executing a command is
/// never evicted mid-command.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_SESSION_MANAGER_H
#define DRDEBUG_SERVER_SESSION_MANAGER_H

#include "debugger/session.h"
#include "server/stats.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace drdebug {

class PinballRepository;
class SliceSessionRepository;

class SessionManager {
public:
  using Clock = std::chrono::steady_clock;

  /// All sessions share \p Repo (the pinball cache) and \p SliceRepo (the
  /// prepared-slice-session cache), and report into \p Stats. \p SliceOpts
  /// is forwarded to every session (the server's PrepareThreads tuning).
  /// \p IdleTimeout of zero disables eviction.
  SessionManager(PinballRepository &Repo, SliceSessionRepository &SliceRepo,
                 ServerStats &Stats, std::chrono::milliseconds IdleTimeout,
                 SliceSessionOptions SliceOpts = SliceSessionOptions());

  /// Creates a new (attached) session. \returns its id.
  uint64_t create();

  /// Attaches to an existing detached session. \returns false when the id
  /// is unknown or the session is already attached.
  bool attach(uint64_t Id, std::string &Error);

  /// Detaches (the session stays resident and re-attachable).
  bool detach(uint64_t Id);

  /// Destroys a session. \returns false when the id is unknown.
  bool close(uint64_t Id);

  bool exists(uint64_t Id) const;
  size_t activeCount() const;
  std::chrono::milliseconds idleTimeout() const { return IdleTimeout; }

  enum class ExecStatus {
    Ok,            ///< command ran; output captured
    NoSuchSession, ///< id unknown (never existed, closed, or evicted)
    Ended,         ///< command was "quit": output captured, session gone
  };

  /// Runs one debugger command in session \p Id, capturing its output.
  ExecStatus execute(uint64_t Id, const std::string &Line,
                     std::string &Output);

  /// Loads program text into session \p Id. \p LoadOk reports assembly
  /// success; \p Output carries the session's message either way.
  ExecStatus loadProgram(uint64_t Id, const std::string &Text,
                         std::string &Output, bool &LoadOk);

  /// Evicts every session idle for at least the configured timeout.
  /// \returns the number evicted. No-op when the timeout is zero.
  size_t evictIdle();

private:
  struct ManagedSession;

  std::shared_ptr<ManagedSession> find(uint64_t Id) const;
  void remove(uint64_t Id);

  PinballRepository &Repo;
  SliceSessionRepository &SliceRepo;
  ServerStats &Stats;
  const std::chrono::milliseconds IdleTimeout;
  const SliceSessionOptions SliceOpts;

  mutable std::mutex Mu;
  std::map<uint64_t, std::shared_ptr<ManagedSession>> Sessions;
  uint64_t NextId = 1;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_SESSION_MANAGER_H
