//===- server/session_manager.h - Concurrent debug sessions -----*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the server's DebugSessions. Each session is identified by a
/// numeric id, returns per-command output through CommandResult (the
/// structured execute API), and is driven by at most one command at a time (a
/// per-session mutex serializes them); different sessions run freely in
/// parallel on the server's worker threads. Sessions idle longer than the
/// configured timeout are evicted; a session busy executing a command is
/// never evicted mid-command.
///
/// Durability: with a journal directory configured, every state-mutating
/// command is appended to a per-session CRC32C-framed write-ahead journal
/// *before* it executes (support/journal.h). Because replay is
/// deterministic, re-executing the journal rebuilds the session exactly, so
/// recover() brings every journaled session back after a crash — including
/// a kill -9 mid-append, whose torn tail the journal reader tolerates.
/// Journals compact periodically: once a session's whole state is
/// expressible as "load, snapshot pinball, replay, seek", the journal is
/// atomically rewritten to those four records. The same record stream
/// doubles as the migration format: exportBundle() writes it (plus the
/// snapshot pinball) into a portable directory, importBundle() replays one
/// into a fresh session on any server.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_SESSION_MANAGER_H
#define DRDEBUG_SERVER_SESSION_MANAGER_H

#include "debugger/session.h"
#include "server/stats.h"
#include "support/journal.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace drdebug {

class PinballRepository;
class SliceSessionRepository;

/// Where and how sessions journal. An empty JournalDir disables the whole
/// durability layer (sessions are memory-only, as before).
struct DurabilityOptions {
  std::string JournalDir;
  JournalFsync Fsync = JournalFsync::None;
  /// Journaled commands between compaction attempts (0 = never compact).
  unsigned SnapshotEvery = 64;
  /// Minimum journal size before compaction is worth the rewrite (0 = no
  /// floor). A journal below this recovers in negligible time anyway.
  uint64_t CompactMinBytes = 32 * 1024;
};

/// True when the first token of \p Line is a command that can change
/// session state (and must therefore be journaled). Conservative: anything
/// not on the read-only list counts as mutating.
bool isMutatingCommand(const std::string &Line);

class SessionManager {
public:
  using Clock = std::chrono::steady_clock;

  /// All sessions share \p Repo (the pinball cache) and \p SliceRepo (the
  /// prepared-slice-session cache), and report into \p Stats. \p SliceOpts
  /// is forwarded to every session (the server's PrepareThreads tuning).
  /// \p IdleTimeout of zero disables eviction.
  SessionManager(PinballRepository &Repo, SliceSessionRepository &SliceRepo,
                 ServerStats &Stats, std::chrono::milliseconds IdleTimeout,
                 SliceSessionOptions SliceOpts = SliceSessionOptions());

  /// Enables journaling (call before any session exists). Creates the
  /// journal directory if needed. \returns false when it cannot.
  bool configureDurability(const DurabilityOptions &O, std::string &Error);
  bool durabilityEnabled() const { return !Durability.JournalDir.empty(); }

  /// Rebuilds every session whose journal lives in the configured journal
  /// directory by re-executing its records (deterministic replay makes the
  /// result byte-identical to the pre-crash session). Recovered sessions
  /// come back detached, under their original ids. Journals that cannot be
  /// recovered (missing/changed snapshot source, or a history that ends the
  /// session) are renamed aside with a `.dead` suffix so later restarts do
  /// not re-execute them just to fail again. \returns how many recovered.
  size_t recover();

  /// One line per journal recover() retired, with the reason — the caller
  /// (drdebugd) surfaces these so a dead session never disappears silently.
  const std::vector<std::string> &recoveryCasualties() const {
    return RecoveryCasualties;
  }

  /// Creates a new (attached) session. \returns its id.
  uint64_t create();

  /// Attaches to an existing detached session. \returns false when the id
  /// is unknown or the session is already attached.
  bool attach(uint64_t Id, std::string &Error);

  /// Detaches (the session stays resident and re-attachable).
  bool detach(uint64_t Id);

  /// Destroys a session (and deletes its journal + snapshot: closing is a
  /// durability event, not a crash). \returns false when the id is unknown.
  bool close(uint64_t Id);

  bool exists(uint64_t Id) const;
  size_t activeCount() const;
  /// Every resident session id, ascending.
  std::vector<uint64_t> ids() const;
  std::chrono::milliseconds idleTimeout() const { return IdleTimeout; }

  enum class ExecStatus {
    Ok,            ///< command ran; output captured
    NoSuchSession, ///< id unknown (never existed, closed, or evicted)
    Ended,         ///< command was "quit": output captured, session gone
  };

  /// Runs one debugger command in session \p Id, capturing its output.
  /// Mutating commands are journaled first; if the append fails the command
  /// does NOT run (strict write-ahead) and Output carries the error.
  ExecStatus execute(uint64_t Id, const std::string &Line,
                     std::string &Output);

  /// Loads program text into session \p Id. \p LoadOk reports assembly
  /// success; \p Output carries the session's message either way.
  ExecStatus loadProgram(uint64_t Id, const std::string &Text,
                         std::string &Output, bool &LoadOk);

  /// Writes session \p Id as a portable bundle directory: `journal` (the
  /// record stream) plus `pinball/` when the history references a snapshot.
  /// By-reference (`ref`) records are materialized: the referenced pinball
  /// is fingerprint-verified, copied into the bundle, and the record is
  /// rewritten as `snap`, so a bundle is always self-contained and imports
  /// into any server (any machine) via importBundle().
  bool exportBundle(uint64_t Id, const std::string &Dir, std::string &Error);

  /// Replays the bundle at \p Dir into a fresh session (new id, detached).
  bool importBundle(const std::string &Dir, uint64_t &NewId,
                    std::string &Error);

  /// Quarantine bookkeeping: a session counts one quarantine per command
  /// that overran its deadline and may still be running, and stays
  /// quarantined until *every* overdue command has settled (two overlapping
  /// overruns need two unquarantine() calls — a boolean would lift the
  /// quarantine while the second command is still wedged on the session
  /// mutex). The server refuses new verbs for quarantined sessions instead
  /// of queueing behind the wedged command.
  void quarantine(uint64_t Id);
  void unquarantine(uint64_t Id);
  bool isQuarantined(uint64_t Id) const;

  /// Evicts every session idle for at least the configured timeout.
  /// \returns the number evicted. No-op when the timeout is zero.
  size_t evictIdle();

private:
  struct ManagedSession;

  std::shared_ptr<ManagedSession> find(uint64_t Id) const;
  void remove(uint64_t Id);
  std::string journalPath(uint64_t Id) const;
  std::string snapshotPath(uint64_t Id) const;
  /// Appends \p R to the session's history and journal (if open), updating
  /// the byte gauge. Caller holds CmdMu.
  bool journalAppend(ManagedSession &S, const JournalRecord &R,
                     std::string &Error);
  /// Compacts the journal to [load, snap, replay, seek] when due and the
  /// session state allows it. Caller holds CmdMu.
  void maybeCompact(ManagedSession &S);
  /// Re-executes \p Records against \p S (output discarded). \p SnapDir
  /// resolves `snap` records. \returns false when a record ends the session.
  bool applyRecords(ManagedSession &S,
                    const std::vector<JournalRecord> &Records,
                    const std::string &SnapDir, std::string &Error);
  /// Re-points the JournalBytes gauge at the session's current file size.
  void updateJournalGauge(ManagedSession &S);
  /// Deletes the session's on-disk journal + snapshot and zeroes its gauge
  /// contribution.
  void dropDurableState(ManagedSession &S);

  PinballRepository &Repo;
  SliceSessionRepository &SliceRepo;
  ServerStats &Stats;
  const std::chrono::milliseconds IdleTimeout;
  const SliceSessionOptions SliceOpts;
  DurabilityOptions Durability;

  mutable std::mutex Mu;
  std::map<uint64_t, std::shared_ptr<ManagedSession>> Sessions;
  uint64_t NextId = 1;
  std::vector<std::string> RecoveryCasualties; // written only by recover()
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_SESSION_MANAGER_H
