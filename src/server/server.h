//===- server/server.h - drdebugd: the remote debug server ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident debug server — the PinADX analog. Hosts many concurrent
/// DebugSessions behind the framed wire protocol (server/protocol.h):
/// debugger front ends connect over a Transport, open or attach sessions,
/// and drive every existing debugger command remotely. Commands execute on
/// a worker-thread pool (serialized per session by the SessionManager), all
/// sessions share one PinballRepository so a recording is parsed once no
/// matter how many users replay it, and an optional janitor thread evicts
/// idle sessions.
///
/// Verbs: hello, open, attach, detach, close, load, cmd, stats, evict,
/// shutdown — see docs/SERVER.md for the full wire grammar.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_SERVER_H
#define DRDEBUG_SERVER_SERVER_H

#include "replay/repository.h"
#include "server/session_manager.h"
#include "server/stats.h"
#include "server/transport.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <set>
#include <thread>
#include <vector>

namespace drdebug {

/// A fixed pool of worker threads executing string-producing tasks.
class WorkerPool {
public:
  explicit WorkerPool(unsigned N);
  ~WorkerPool();

  /// Enqueues \p Fn; the returned future yields its result.
  std::future<std::string> submit(std::function<std::string()> Fn);

private:
  void workerMain();

  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::packaged_task<std::string()>> Queue;
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

struct ServerConfig {
  unsigned Workers = 4;
  /// Sessions idle at least this long are evicted (0 disables eviction).
  std::chrono::milliseconds IdleTimeout{std::chrono::minutes(5)};
  /// Period of the background eviction sweep (0: sweep only on `evict`).
  std::chrono::milliseconds JanitorPeriod{0};
};

class DebugServer {
public:
  explicit DebugServer(ServerConfig Cfg = {});
  ~DebugServer();

  DebugServer(const DebugServer &) = delete;
  DebugServer &operator=(const DebugServer &) = delete;

  /// Serves one client connection until its peer disconnects (or asks for
  /// shutdown). Blocking; call from one thread per connection. Sessions
  /// the client attached and never detached are auto-detached on return.
  void serve(Transport &T);

  /// True once some client issued the `shutdown` verb.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// The `stats` verb payload ("key value" lines).
  std::string statsReport() const;

  SessionManager &sessions() { return Mgr; }
  PinballRepository &repository() { return Repo; }
  ServerStats &stats() { return Stats; }

private:
  /// Dispatches one request body; \returns the response body.
  std::string handleBody(const std::string &Body, std::set<uint64_t> &Attached);

  ServerConfig Cfg;
  PinballRepository Repo;
  ServerStats Stats;
  SessionManager Mgr;
  WorkerPool Pool;
  std::atomic<bool> Shutdown{false};

  std::mutex JanitorMu;
  std::condition_variable JanitorCv;
  bool JanitorStop = false;
  std::thread Janitor;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_SERVER_H
