//===- server/server.h - drdebugd: the remote debug server ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident debug server — the PinADX analog. Hosts many concurrent
/// DebugSessions behind the framed wire protocol (server/protocol.h):
/// debugger front ends connect over a Transport, open or attach sessions,
/// and drive every existing debugger command remotely. Commands execute on
/// a worker-thread pool (serialized per session by the SessionManager), all
/// sessions share one PinballRepository so a recording is parsed once no
/// matter how many users replay it, and an optional janitor thread evicts
/// idle sessions.
///
/// The verb set is declared once, in the verb registry (server/verbs.h);
/// dispatch, stats, and the docs/SERVER.md wire grammar all derive from it.
///
/// Every server owns a MetricsRegistry: ServerStats registers its handles
/// there, live values (active sessions, cache sizes) are exposed through
/// callback metrics, the `metrics` verb renders the registry (plus the
/// process-global one) as Prometheus text, and the legacy `stats` verb is
/// re-rendered from the same registry through an alias map.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_SERVER_H
#define DRDEBUG_SERVER_SERVER_H

#include "replay/repository.h"
#include "server/session_manager.h"
#include "server/stats.h"
#include "server/transport.h"
#include "slicing/slice_repository.h"
#include "support/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <set>
#include <thread>

namespace drdebug {

struct ServerConfig {
  unsigned Workers = 4;
  /// Sessions idle at least this long are evicted (0 disables eviction).
  std::chrono::milliseconds IdleTimeout{std::chrono::minutes(5)};
  /// Period of the background eviction sweep (0: sweep only on `evict`).
  std::chrono::milliseconds JanitorPeriod{0};
  /// Threads each SliceSession::prepare may use for its analysis pipeline.
  unsigned SlicePrepareThreads = 4;
  /// LRU capacity of the shared prepared-slice-session cache.
  size_t SliceCacheEntries = 8;
  /// Per-verb deadline for load/cmd (0 disables): a verb still running when
  /// it expires gets an `err deadline-timeout` response while the job
  /// finishes in the background under the watchdog gauge — and its session
  /// is quarantined until the overdue command completes.
  std::chrono::milliseconds CmdDeadline{0};
  /// Verify pinball manifests on load (the server-side --no-verify switch).
  bool VerifyPinballs = true;
  /// Per-session write-ahead journal directory (empty disables durability).
  /// At construction the server recovers every session journaled there.
  std::string JournalDir;
  /// fsync each journal append (survives OS crashes, not just kill -9).
  bool JournalFsyncEach = false;
  /// Journaled commands between journal compaction attempts (0: never).
  unsigned SnapshotEvery = 64;
  /// Journals smaller than this never compact: rewriting a journal that
  /// recovers in negligible time costs more than it saves (0: no floor).
  uint64_t CompactMinBytes = 32 * 1024;
  /// Admission control: maximum session verbs in flight or queued on the
  /// worker pool before new ones are shed with `err overloaded` (0: never).
  size_t AdmissionMaxQueue = 0;
  /// How long drain() waits for in-flight verbs before exporting bundles.
  std::chrono::milliseconds DrainDeadline{5000};
};

class DebugServer {
public:
  explicit DebugServer(ServerConfig Cfg = {});
  ~DebugServer();

  DebugServer(const DebugServer &) = delete;
  DebugServer &operator=(const DebugServer &) = delete;

  /// Serves one client connection until its peer disconnects (or asks for
  /// shutdown). Blocking; call from one thread per connection. Sessions
  /// the client attached and never detached are auto-detached on return.
  void serve(Transport &T);

  /// True once some client issued the `shutdown` verb.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// Graceful drain — the shutdown/migration primitive. Stops admitting
  /// session-mutating verbs (they get `err draining`), waits up to
  /// DrainDeadline for in-flight verbs, then exports every resident
  /// session as a portable bundle under \p BundleDir (skipped when empty).
  /// \returns the human-readable drain report the `drain` verb echoes.
  /// Idempotent; also run by drdebugd's SIGTERM handler.
  std::string drain(const std::string &BundleDir);

  /// True once a drain began: new sessions are refused.
  bool draining() const { return Draining.load(std::memory_order_acquire); }

  /// The `stats` verb payload ("key value" lines): the legacy keys,
  /// re-rendered from the metrics registry via the alias map.
  std::string statsReport() const;

  /// The `metrics` verb payload: Prometheus text exposition of this
  /// server's registry followed by the process-global one.
  std::string metricsReport() const;

  SessionManager &sessions() { return Mgr; }
  PinballRepository &repository() { return Repo; }
  SliceSessionRepository &sliceRepository() { return SliceRepo; }
  ServerStats &stats() { return Stats; }
  metrics::MetricsRegistry &registry() { return Registry; }

private:
  /// Dispatches one request body; \returns the response body. Also stamps
  /// the per-verb counters/latency histograms. \p Cacheable comes back
  /// false for responses that must NOT enter the dedup cache (overload
  /// rejections: a retransmit must re-try admission, not replay the shed).
  std::string handleBody(const std::string &Body, std::set<uint64_t> &Attached,
                         bool &Cacheable);
  std::string dispatchVerb(uint64_t Seq, const std::string &Verb,
                           std::istringstream &IS,
                           std::set<uint64_t> &Attached, bool &Cacheable);
  /// Runs one session command (a `load`/`cmd` body, or a reverse-execution
  /// verb translated to its debugger command line) on the worker pool with
  /// the per-verb deadline; the shared back half of every session verb.
  std::string runSessionJob(uint64_t Seq, const std::string &Verb,
                            uint64_t Sid, const std::string &Text, bool IsLoad,
                            std::set<uint64_t> &Attached, bool &Cacheable);

  ServerConfig Cfg;
  /// Declared before Stats/Mgr: the handles they hold point into it.
  metrics::MetricsRegistry Registry;
  PinballRepository Repo;
  SliceSessionRepository SliceRepo;
  ServerStats Stats;
  SessionManager Mgr;
  ThreadPool Pool;
  std::atomic<bool> Shutdown{false};
  std::atomic<bool> Draining{false};
  /// Session verbs currently queued or executing on the worker pool — the
  /// admission-control depth and the drain barrier.
  std::atomic<size_t> JobsInFlight{0};

  std::mutex JanitorMu;
  std::condition_variable JanitorCv;
  bool JanitorStop = false;
  std::thread Janitor;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_SERVER_H
