//===- server/verbs.cpp - The declarative protocol verb registry -------------===//

#include "server/verbs.h"

#include <algorithm>
#include <sstream>

using namespace drdebug;

namespace {

using VR = VerbRouting;
using VD = VerbDeadline;

// The one verb table. Adding a verb here is the whole registration story:
// dispatch admits it, stats registers its counters, the gateway routes it,
// hello advertises it, and help/--dump-verbs/docs render it. The drift
// tests fail if server.cpp forgets to actually implement it.
const std::vector<VerbInfo> Registry = {
    {"hello", "—", "`<server> <version> proto <n> verbs <v1,v2,...>`",
     /*Mutating=*/false, /*RefuseWhenDraining=*/false, VR::AnyBackend,
     VD::Inline, 1},
    {"help", "—", "the verb registry, one line per verb",
     false, false, VR::AnyBackend, VD::Inline, 4},
    {"open", "—", "`sid <id>` (creates a session, attached to this connection)",
     true, true, VR::AnyBackend, VD::Inline, 1},
    {"attach", "`<sid>`", "`sid <id>` (adopt a detached session)",
     true, true, VR::SessionRouted, VD::Inline, 1},
    {"detach", "`<sid>`", "— (session stays alive for later attach)",
     true, false, VR::SessionRouted, VD::Inline, 1},
    {"close", "`<sid>`", "— (destroys the session)",
     true, false, VR::SessionRouted, VD::Inline, 1},
    {"load", "`<sid> <escaped asm text>`", "the loader's output",
     true, true, VR::SessionRouted, VD::Command, 1},
    {"cmd", "`<sid> <escaped command line>`", "the command's output, verbatim",
     true, true, VR::SessionRouted, VD::Command, 1},
    {"rstep", "`<sid> [n]`",
     "reverse-step n instructions (`reverse-stepi`)",
     true, true, VR::SessionRouted, VD::Command, 2},
    {"rcont", "`<sid>`", "reverse-continue to the last break/watch hit",
     true, true, VR::SessionRouted, VD::Command, 2},
    {"rnext", "`<sid>`", "reverse-next: last position of the current thread",
     true, true, VR::SessionRouted, VD::Command, 2},
    {"rwatch", "`<sid> <global>`",
     "reverse-watch: last write that changed the global",
     true, true, VR::SessionRouted, VD::Command, 2},
    {"rpos", "`<sid>`", "replay clock position + checkpoint memory",
     false, true, VR::SessionRouted, VD::Command, 2},
    {"lastwrite", "`<sid> <loc> [pos]`",
     "omniscient query: the last write to a location (before a position), "
     "answered from the def-use index",
     true, true, VR::SessionRouted, VD::Command, 5},
    {"valuesof", "`<sid> <loc> [max]`",
     "omniscient query: every value a location held over the region",
     true, true, VR::SessionRouted, VD::Command, 5},
    {"readersof", "`<sid> <pos>`",
     "omniscient query: who read the values this trace entry defined",
     true, true, VR::SessionRouted, VD::Command, 5},
    {"rattach", "`<sid> [seed]`",
     "attach the always-on flight recorder (`record attach` — "
     "[FLIGHT.md](FLIGHT.md))",
     true, true, VR::SessionRouted, VD::Command, 3},
    {"rstatus", "`<sid>`",
     "the recorder's window, epochs and memory (`record status`)",
     true, true, VR::SessionRouted, VD::Command, 3},
    {"rdump", "`<sid> [escaped dir]`",
     "materialize the retained window as the session's region pinball "
     "(`record dump`)",
     true, true, VR::SessionRouted, VD::Command, 3},
    {"drain", "`[escaped dir]`",
     "stops admissions, exports every session as a bundle under `dir`, "
     "replies with the export report ([ROBUSTNESS.md](ROBUSTNESS.md))",
     true, false, VR::FanOut, VD::Operation, 3},
    {"import", "`<escaped bundle-dir>`",
     "`sid <id>` (restores a drained bundle as a fresh session)",
     true, true, VR::AnyBackend, VD::Operation, 3},
    {"faults", "—",
     "the `FaultInjector` site catalog with armed specs and fired counts",
     false, false, VR::FanOut, VD::Inline, 3},
    {"stats", "—", "`key value` lines (see below)",
     false, false, VR::FanOut, VD::Inline, 1},
    {"metrics", "—",
     "Prometheus text exposition ([docs/OBSERVABILITY.md](OBSERVABILITY.md))",
     false, false, VR::FanOut, VD::Inline, 1},
    {"evict", "—", "`evicted <n>` (runs one idle-eviction sweep now)",
     true, false, VR::FanOut, VD::Inline, 1},
    {"shutdown", "—",
     "`shutting down` (connection ends; daemon stops listening)",
     true, false, VR::FanOut, VD::Inline, 1},
};

// The error taxonomy. protocol.cpp's wireErrorName/wireErrorIsTransient
// are lookups into this table; the docs error table renders from it.
const std::vector<WireErrorInfo> Errors = {
    {WireError::Malformed, "malformed-frame", false,
     "garbage bytes, no parsable `<seq> <verb>`"},
    {WireError::BadChecksum, "bad-checksum", true,
     "frame arrived, checksum mismatch"},
    {WireError::UnknownVerb, "unknown-verb", false,
     "verb not in the table above"},
    {WireError::BadArguments, "bad-arguments", false,
     "verb recognized, arguments unusable"},
    {WireError::NoSuchSession, "no-such-session", false,
     "sid unknown (never existed, closed, or evicted)"},
    {WireError::SessionFailed, "session-failed", false,
     "session-level failure (load error, attach conflict)"},
    {WireError::Timeout, "deadline-timeout", true,
     "the verb ran past the per-verb deadline"},
    {WireError::Overloaded, "overloaded", true,
     "admission control shed the verb; the message carries a "
     "`retry-after-ms <n>` hint"},
    {WireError::Draining, "draining", false,
     "the server is draining (or drained): no new sessions or commands"},
};

} // namespace

const std::vector<VerbInfo> &drdebug::verbRegistry() { return Registry; }

const VerbInfo *drdebug::findVerb(const std::string &Name) {
  for (const VerbInfo &V : Registry)
    if (Name == V.Name)
      return &V;
  return nullptr;
}

const char *drdebug::verbRoutingName(VerbRouting R) {
  switch (R) {
  case VerbRouting::SessionRouted:
    return "session-routed";
  case VerbRouting::AnyBackend:
    return "any-backend";
  case VerbRouting::FanOut:
    return "fan-out";
  }
  return "unknown";
}

const char *drdebug::verbDeadlineName(VerbDeadline D) {
  switch (D) {
  case VerbDeadline::Inline:
    return "inline";
  case VerbDeadline::Command:
    return "command";
  case VerbDeadline::Operation:
    return "operation";
  }
  return "unknown";
}

std::string drdebug::verbListToken() {
  std::string Out;
  for (const VerbInfo &V : Registry) {
    if (!Out.empty())
      Out += ',';
    Out += V.Name;
  }
  return Out;
}

std::vector<std::string> drdebug::parseVerbList(const std::string &Token) {
  std::vector<std::string> Out;
  std::string Cur;
  std::istringstream IS(Token);
  while (std::getline(IS, Cur, ','))
    if (!Cur.empty())
      Out.push_back(Cur);
  return Out;
}

std::string drdebug::helloPayload(const std::string &ServerName,
                                  const std::string &Version) {
  return ServerName + " " + Version + " proto " +
         std::to_string(ProtocolVersion) + " verbs " + verbListToken();
}

std::string drdebug::renderHelpPayload() {
  std::ostringstream OS;
  OS << "verbs (proto " << ProtocolVersion << "):\n";
  for (const VerbInfo &V : Registry) {
    OS << "  " << V.Name;
    if (std::string(V.Args) != "—")
      OS << " " << V.Args;
    OS << "  [" << verbRoutingName(V.Routing) << ", "
       << (V.Mutating ? "mutating" : "read-only") << ", "
       << verbDeadlineName(V.Deadline) << " deadline, since proto v"
       << V.MinProtoVersion << "]\n";
  }
  return OS.str();
}

bool drdebug::isReadOnlyCommandWord(const std::string &Word) {
  // Everything that only *inspects* session state. `slice list`/`slice
  // deps` are read-only too, but journaling every slice command is
  // harmless (replay is deterministic) and keeps this a one-token lookup.
  static const char *const ReadOnly[] = {
      "help",  "info",  "x",    "print",  "p",      "backtrace",
      "bt",    "where", "list", "output", "replay-position",
      "fault"};
  return std::any_of(std::begin(ReadOnly), std::end(ReadOnly),
                     [&](const char *R) { return Word == R; });
}

const std::vector<WireErrorInfo> &drdebug::wireErrorRegistry() {
  return Errors;
}

const WireErrorInfo *drdebug::findWireError(unsigned Code) {
  for (const WireErrorInfo &E : Errors)
    if (static_cast<unsigned>(E.Code) == Code)
      return &E;
  return nullptr;
}

std::string drdebug::renderVerbTableMarkdown() {
  std::ostringstream OS;
  OS << "| verb | args | routing | mutating | reply payload |\n"
     << "|---|---|---|---|---|\n";
  for (const VerbInfo &V : Registry)
    OS << "| `" << V.Name << "` | " << V.Args << " | "
       << verbRoutingName(V.Routing) << " | " << (V.Mutating ? "yes" : "no")
       << " | " << V.Reply << " |\n";
  return OS.str();
}

std::string drdebug::renderErrorTableMarkdown() {
  std::ostringstream OS;
  OS << "| code | name | class | meaning |\n"
     << "|---|---|---|---|\n";
  for (const WireErrorInfo &E : Errors)
    OS << "| " << static_cast<unsigned>(E.Code) << " | `" << E.Name << "` | "
       << (E.Transient ? "transient" : "permanent") << " | " << E.Meaning
       << " |\n";
  return OS.str();
}
