//===- server/client.cpp - drdebugd protocol client --------------------------===//

#include "server/client.h"

#include <sstream>

using namespace drdebug;

bool ProtocolClient::request(const std::string &VerbAndArgs,
                             std::string &Payload, std::string &Error) {
  LastCode = 0;
  uint64_t Seq = NextSeq++;
  if (!T.send(encodeFrame(std::to_string(Seq) + " " + VerbAndArgs))) {
    Error = "transport closed";
    return false;
  }
  std::string Bytes, Body;
  for (;;) {
    FrameBuffer::Poll P = FB.poll(Body);
    if (P == FrameBuffer::Poll::None) {
      if (!T.recv(Bytes)) {
        Error = "transport closed";
        return false;
      }
      FB.append(Bytes);
      Bytes.clear();
      continue;
    }
    if (P != FrameBuffer::Poll::Frame)
      continue; // drop noise; keep waiting for our response
    uint64_t RespSeq = 0;
    unsigned Code = 0;
    std::string Text;
    if (!parseResponseBody(Body, RespSeq, Code, Text) || RespSeq != Seq)
      continue; // not a response to this request
    if (Code != 0) {
      LastCode = Code;
      Error = std::string(wireErrorName(static_cast<WireError>(Code))) +
              ": " + Text;
      return false;
    }
    Payload = std::move(Text);
    return true;
  }
}

bool ProtocolClient::open(uint64_t &Sid, std::string &Error) {
  std::string Payload;
  if (!request("open", Payload, Error))
    return false;
  std::istringstream IS(Payload);
  std::string Tag;
  if (!(IS >> Tag >> Sid) || Tag != "sid") {
    Error = "malformed open response '" + Payload + "'";
    return false;
  }
  return true;
}

bool ProtocolClient::load(uint64_t Sid, const std::string &ProgramText,
                          std::string &Output, std::string &Error) {
  return request("load " + std::to_string(Sid) + " " + escapeText(ProgramText),
                 Output, Error);
}
