//===- server/client.cpp - drdebugd protocol client --------------------------===//

#include "server/client.h"

#include "server/verbs.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

using namespace drdebug;

std::string ClientError::text() const {
  if (Class == ErrClass::None)
    return "";
  if (Class == ErrClass::Transport)
    return Message;
  return std::string(wireErrorName(static_cast<WireError>(Code))) + ": " +
         Message;
}

bool HelloInfo::supports(const std::string &Verb) const {
  if (!Verbs.empty())
    return std::find(Verbs.begin(), Verbs.end(), Verb) != Verbs.end();
  // Pre-v4 peers did not advertise a list; fall back to the registry's
  // capability floor for whatever protocol they do speak.
  const VerbInfo *VI = findVerb(Verb);
  return VI && VI->MinProtoVersion <= Proto;
}

namespace {

ClientError transportError(std::string Message) {
  ClientError E;
  E.Class = ErrClass::Transport;
  E.Message = std::move(Message);
  return E;
}

ClientError wireError(unsigned Code, bool Transient, std::string Message) {
  ClientError E;
  E.Class = Transient ? ErrClass::Transient : ErrClass::Permanent;
  E.Code = Code;
  E.RetryAfterMs = parseRetryAfterMs(Message);
  E.Message = std::move(Message);
  return E;
}

} // namespace

bool ProtocolClient::retransmit(const std::string &Frame, unsigned &Attempt) {
  if (Attempt >= Policy.MaxRetries)
    return false;
  ++Attempt;
  ++RetriesTotal;
  // Exponential backoff with deterministic jitter: 2^(n-1) * initial, plus
  // up to one initial-backoff of spread so retrying peers desynchronize.
  uint64_t BackoffMs = Policy.InitialBackoffMs << (Attempt - 1);
  BackoffMs += Jitter.below(Policy.InitialBackoffMs ? Policy.InitialBackoffMs
                                                    : 1);
  if (BackoffMs)
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
  return T.send(Frame);
}

ClientResult<> ProtocolClient::request(const std::string &VerbAndArgs) {
  uint64_t Seq = NextSeq++;
  const std::string Frame =
      encodeFrame(std::to_string(Seq) + " " + VerbAndArgs);
  if (!T.send(Frame))
    return transportError("transport closed");
  unsigned Attempt = 0;
  std::string Bytes, Body;
  for (;;) {
    FrameBuffer::Poll P = FB.poll(Body);
    if (P == FrameBuffer::Poll::None) {
      RecvStatus S = T.recvTimed(Bytes, Policy.RecvTimeoutMs);
      if (S == RecvStatus::Closed)
        return transportError("transport closed");
      if (S == RecvStatus::Timeout) {
        // The request or its response was lost in transit. Retransmitting
        // the same sequence number is safe: if the verb already executed,
        // the server's duplicate cache replays the stored response.
        if (!retransmit(Frame, Attempt))
          return transportError("timed out waiting for response (after " +
                                std::to_string(Attempt) +
                                " retransmission(s))");
        continue;
      }
      FB.append(Bytes);
      Bytes.clear();
      continue;
    }
    if (P != FrameBuffer::Poll::Frame) {
      // A frame arrived damaged — possibly our response. Retransmit while
      // budget remains; otherwise keep waiting (the timed recv, if
      // configured, bounds the wait).
      retransmit(Frame, Attempt);
      continue;
    }
    uint64_t RespSeq = 0;
    unsigned Code = 0;
    bool Transient = false;
    std::string Text;
    if (!parseResponseBody(Body, RespSeq, Code, Text, &Transient))
      continue; // not a response at all; keep waiting
    if (RespSeq == 0 && Code != 0) {
      // The server could not attribute a sequence number. Transient (a
      // checksum-damaged frame — possibly ours): retransmit, since no
      // response for our seq will come from that copy. Permanent (malformed
      // bytes of unknown origin): not attributable to this request, so keep
      // waiting — the timed recv, if configured, bounds the wait.
      if (Transient && !retransmit(Frame, Attempt))
        return wireError(Code, Transient, Text);
      continue;
    }
    if (RespSeq != Seq)
      continue; // stale response (e.g. to an earlier retransmission)
    if (Code == static_cast<unsigned>(WireError::Overloaded) &&
        Attempt < Policy.MaxRetries) {
      // Admission control shed us. The message carries the server's own
      // backoff hint; honor it instead of the exponential schedule, then
      // retransmit the same sequence number (the rejection was not cached,
      // so the retry re-runs admission).
      ++Attempt;
      ++RetriesTotal;
      uint64_t HintMs = parseRetryAfterMs(Text);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(HintMs ? HintMs : Policy.InitialBackoffMs));
      if (T.send(Frame))
        continue;
      return transportError("transport closed");
    }
    if (Code != 0)
      return wireError(Code, Transient, Text);
    return ClientResult<>(std::move(Text));
  }
}

ClientResult<HelloInfo> ProtocolClient::hello() {
  ClientResult<> R = request("hello");
  if (!R.ok())
    return R.error();
  HelloInfo H;
  H.Banner = R.value();
  std::istringstream IS(H.Banner);
  std::string Tag;
  if (!(IS >> H.Server >> H.Version)) {
    ClientError E;
    E.Class = ErrClass::Permanent;
    E.Message = "malformed hello payload '" + H.Banner + "'";
    return E;
  }
  while (IS >> Tag) {
    if (Tag == "proto")
      IS >> H.Proto;
    else if (Tag == "verbs") {
      std::string List;
      if (IS >> List)
        H.Verbs = parseVerbList(List);
    }
  }
  return H;
}

ClientResult<uint64_t> ProtocolClient::parseSid(ClientResult<> R,
                                                const char *WhatFor) {
  if (!R.ok())
    return R.error();
  std::istringstream IS(R.value());
  std::string Tag;
  uint64_t Sid = 0;
  if (!(IS >> Tag >> Sid) || Tag != "sid") {
    ClientError E;
    E.Class = ErrClass::Permanent;
    E.Message = std::string("malformed ") + WhatFor + " response '" +
                R.value() + "'";
    return E;
  }
  return Sid;
}

ClientResult<uint64_t> ProtocolClient::open() {
  return parseSid(request("open"), "open");
}

ClientResult<> ProtocolClient::load(uint64_t Sid,
                                    const std::string &ProgramText) {
  return request("load " + std::to_string(Sid) + " " +
                 escapeText(ProgramText));
}

ClientResult<uint64_t> ProtocolClient::importBundle(const std::string &Dir) {
  return parseSid(request("import " + escapeText(Dir)), "import");
}
