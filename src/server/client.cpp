//===- server/client.cpp - drdebugd protocol client --------------------------===//

#include "server/client.h"

#include <chrono>
#include <sstream>
#include <thread>

using namespace drdebug;

bool ProtocolClient::retransmit(const std::string &Frame, unsigned &Attempt) {
  if (Attempt >= Policy.MaxRetries)
    return false;
  ++Attempt;
  ++RetriesTotal;
  // Exponential backoff with deterministic jitter: 2^(n-1) * initial, plus
  // up to one initial-backoff of spread so retrying peers desynchronize.
  uint64_t BackoffMs = Policy.InitialBackoffMs << (Attempt - 1);
  BackoffMs += Jitter.below(Policy.InitialBackoffMs ? Policy.InitialBackoffMs
                                                    : 1);
  if (BackoffMs)
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
  return T.send(Frame);
}

bool ProtocolClient::request(const std::string &VerbAndArgs,
                             std::string &Payload, std::string &Error) {
  LastCode = 0;
  LastTransient = false;
  uint64_t Seq = NextSeq++;
  const std::string Frame =
      encodeFrame(std::to_string(Seq) + " " + VerbAndArgs);
  if (!T.send(Frame)) {
    Error = "transport closed";
    return false;
  }
  unsigned Attempt = 0;
  std::string Bytes, Body;
  for (;;) {
    FrameBuffer::Poll P = FB.poll(Body);
    if (P == FrameBuffer::Poll::None) {
      RecvStatus S = T.recvTimed(Bytes, Policy.RecvTimeoutMs);
      if (S == RecvStatus::Closed) {
        Error = "transport closed";
        return false;
      }
      if (S == RecvStatus::Timeout) {
        // The request or its response was lost in transit. Retransmitting
        // the same sequence number is safe: if the verb already executed,
        // the server's duplicate cache replays the stored response.
        if (!retransmit(Frame, Attempt)) {
          Error = "timed out waiting for response (after " +
                  std::to_string(Attempt) + " retransmission(s))";
          return false;
        }
        continue;
      }
      FB.append(Bytes);
      Bytes.clear();
      continue;
    }
    if (P != FrameBuffer::Poll::Frame) {
      // A frame arrived damaged — possibly our response. Retransmit while
      // budget remains; otherwise keep waiting (the timed recv, if
      // configured, bounds the wait).
      retransmit(Frame, Attempt);
      continue;
    }
    uint64_t RespSeq = 0;
    unsigned Code = 0;
    bool Transient = false;
    std::string Text;
    if (!parseResponseBody(Body, RespSeq, Code, Text, &Transient))
      continue; // not a response at all; keep waiting
    if (RespSeq == 0 && Code != 0) {
      // The server could not attribute a sequence number. Transient (a
      // checksum-damaged frame — possibly ours): retransmit, since no
      // response for our seq will come from that copy. Permanent (malformed
      // bytes of unknown origin): not attributable to this request, so keep
      // waiting — the timed recv, if configured, bounds the wait.
      if (Transient && !retransmit(Frame, Attempt)) {
        LastCode = Code;
        LastTransient = Transient;
        Error = std::string(wireErrorName(static_cast<WireError>(Code))) +
                ": " + Text;
        return false;
      }
      continue;
    }
    if (RespSeq != Seq)
      continue; // stale response (e.g. to an earlier retransmission)
    if (Code == static_cast<unsigned>(WireError::Overloaded) &&
        Attempt < Policy.MaxRetries) {
      // Admission control shed us. The message carries the server's own
      // backoff hint; honor it instead of the exponential schedule, then
      // retransmit the same sequence number (the rejection was not cached,
      // so the retry re-runs admission).
      ++Attempt;
      ++RetriesTotal;
      uint64_t HintMs = parseRetryAfterMs(Text);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(HintMs ? HintMs : Policy.InitialBackoffMs));
      if (T.send(Frame))
        continue;
      Error = "transport closed";
      return false;
    }
    if (Code != 0) {
      LastCode = Code;
      LastTransient = Transient;
      Error = std::string(wireErrorName(static_cast<WireError>(Code))) +
              ": " + Text;
      return false;
    }
    Payload = std::move(Text);
    return true;
  }
}

bool ProtocolClient::open(uint64_t &Sid, std::string &Error) {
  std::string Payload;
  if (!request("open", Payload, Error))
    return false;
  std::istringstream IS(Payload);
  std::string Tag;
  if (!(IS >> Tag >> Sid) || Tag != "sid") {
    Error = "malformed open response '" + Payload + "'";
    return false;
  }
  return true;
}

bool ProtocolClient::load(uint64_t Sid, const std::string &ProgramText,
                          std::string &Output, std::string &Error) {
  return request("load " + std::to_string(Sid) + " " + escapeText(ProgramText),
                 Output, Error);
}

bool ProtocolClient::importBundle(const std::string &Dir, uint64_t &Sid,
                                  std::string &Error) {
  std::string Payload;
  if (!request("import " + escapeText(Dir), Payload, Error))
    return false;
  std::istringstream IS(Payload);
  std::string Tag;
  if (!(IS >> Tag >> Sid) || Tag != "sid") {
    Error = "malformed import response '" + Payload + "'";
    return false;
  }
  return true;
}
