//===- server/protocol.h - drdebugd framed wire protocol --------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol spoken between drdebug front ends
/// and drdebugd (this repo's PinADX analog). GDB-RSP-flavoured text frames:
///
///   $<body>#<xx>
///
/// where <xx> is the two-digit lowercase-hex checksum (sum of the body
/// bytes mod 256). Free-text fields inside a body (program text, command
/// lines, command output) are percent-escaped so they can never contain the
/// frame delimiters or a newline (request/response bodies stay single-line):
/// '%' -> %25, '$' -> %24, '#' -> %23, '\n' -> %0a, '\r' -> %0d.
///
/// Request bodies:   <seq> <verb> [<args>...]
/// Response bodies:  <seq> ok [<escaped payload>]
///                   <seq> err <code> <message>
///
/// Verbs and error codes are documented in docs/SERVER.md.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_PROTOCOL_H
#define DRDEBUG_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>

namespace drdebug {

/// Wire protocol version, reported by the `hello` verb. Version 2 added the
/// transient/permanent class token in err responses and the Timeout code;
/// version 3 added the durability verbs (drain/import/faults) and the
/// Overloaded/Draining codes; version 4 added capability negotiation (the
/// `verbs <list>` token in the hello payload) and the `help` verb; version
/// 5 added the omniscient-query verbs (lastwrite/valuesof/readersof) over
/// the persistent def-use index.
inline constexpr unsigned ProtocolVersion = 5;

/// Protocol-level error codes (the <code> field of an err response). The
/// names, retry classes, and meanings are declared once, in the wire-error
/// registry (server/verbs.h, WireErrorInfo) — the functions below and the
/// docs/SERVER.md error table are lookups into / renderings of that table.
enum class WireError : unsigned {
  Malformed = 1,
  BadChecksum = 2,
  UnknownVerb = 3,
  BadArguments = 4,
  NoSuchSession = 5,
  SessionFailed = 6,
  Timeout = 7,
  Overloaded = 8,
  Draining = 9,
};

/// Short stable name for an error code ("malformed-frame", ...), from the
/// wire-error registry.
const char *wireErrorName(WireError E);

/// True for failures a client may safely retry (the fault was in transit or
/// scheduling, not in the request): BadChecksum, Timeout and Overloaded.
/// Everything else is permanent — retrying the same bytes yields the same
/// answer (a draining server never un-drains). From the wire-error
/// registry.
bool wireErrorIsTransient(WireError E);

/// Overloaded responses embed a server-chosen backoff hint in the message:
/// "... retry-after-ms <n>". \returns the hint, or 0 when \p Message does
/// not carry one.
uint64_t parseRetryAfterMs(const std::string &Message);

/// Percent-escapes '%', '$', '#', '\n', '\r' so \p Text can travel inside a
/// single-line frame body.
std::string escapeText(const std::string &Text);
/// Reverses escapeText (unknown escapes are kept verbatim).
std::string unescapeText(const std::string &Text);

/// Wraps \p Body into a checksummed frame.
std::string encodeFrame(const std::string &Body);

/// Builds the body of an ok response (escapes \p Payload).
std::string okBody(uint64_t Seq, const std::string &Payload);
/// Builds the body of an err response:
///   <seq> err <code> <transient|permanent> <message>
std::string errBody(uint64_t Seq, WireError E, const std::string &Message);

/// Parses a response body. \returns false when \p Body is not a response.
/// On an ok response, \p Payload holds the unescaped payload; on an err
/// response, \p Code is non-zero and \p Payload holds the message.
/// Accepts both the v2 form (with a transient/permanent class token) and
/// the v1 form without one; \p Transient (optional) receives the class
/// (derived from the code for v1 peers).
bool parseResponseBody(const std::string &Body, uint64_t &Seq, unsigned &Code,
                       std::string &Payload, bool *Transient = nullptr);

/// Incremental frame decoder: feed raw bytes, poll out complete frames.
class FrameBuffer {
public:
  enum class Poll {
    None,        ///< no complete frame buffered yet
    Frame,       ///< a valid frame was extracted into Body
    Malformed,   ///< unframed garbage or bad hex was dropped
    BadChecksum, ///< a well-framed body failed its checksum
  };

  /// Frames larger than this are rejected as malformed (sanity bound; the
  /// largest legitimate payloads are program texts and slice listings).
  static constexpr size_t MaxFrameBytes = 16u << 20;

  void append(const char *Bytes, size_t N) { Buf.append(Bytes, N); }
  void append(const std::string &Bytes) { Buf += Bytes; }

  /// Extracts the next frame body, if any. Call repeatedly until None.
  Poll poll(std::string &Body);

private:
  std::string Buf;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_PROTOCOL_H
