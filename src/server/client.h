//===- server/client.h - drdebugd protocol client ---------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: issues requests over a Transport
/// and matches up responses by sequence number. Used by `drdebug
/// --connect`, the gateway (drdebug-gw), the server tests, and the
/// benchmarks.
///
/// Every helper returns a typed ClientResult<T>: success carries the
/// parsed payload, failure carries the error class (transport vs
/// transient vs permanent wire error), the wire code, the server's
/// retry-after hint when one was sent, and the message. The old bool +
/// out-parameter shims are gone.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_CLIENT_H
#define DRDEBUG_SERVER_CLIENT_H

#include "server/protocol.h"
#include "server/transport.h"
#include "support/rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace drdebug {

/// How the client reacts to transient failures: lost or damaged frames and
/// server-side checksum rejections. Retransmissions reuse the original
/// sequence number, so the server's duplicate-response cache guarantees the
/// verb executes at most once no matter how many times it is resent.
struct RetryPolicy {
  /// Retransmissions allowed per request (0 restores fire-and-hang).
  unsigned MaxRetries = 4;
  /// How long to wait for a response before suspecting a lost frame.
  /// 0 waits forever — retries then trigger only on damaged frames and
  /// transient server errors, never on silence.
  uint64_t RecvTimeoutMs = 0;
  /// First backoff; doubles per retransmission, plus deterministic jitter.
  uint64_t InitialBackoffMs = 5;
  /// Seed for the jitter sequence (deterministic for tests).
  uint64_t JitterSeed = 1;
};

/// Why a request failed, coarsely: the axis retry logic branches on.
enum class ErrClass : unsigned char {
  None,      ///< not an error (the result is a success)
  Transport, ///< the connection died or the retry budget ran dry on silence
  Transient, ///< server err classified transient — a retry may succeed
  Permanent, ///< server err classified permanent — a retry will not
};

/// The failure half of a ClientResult.
struct ClientError {
  ErrClass Class = ErrClass::None;
  /// WireError code of the err response; 0 for transport failures.
  unsigned Code = 0;
  /// The server's backoff hint (err 8 carries one); 0 when absent.
  uint64_t RetryAfterMs = 0;
  std::string Message;

  /// Human-readable rendering: "<code-name>: <message>" for wire errors,
  /// the bare message for transport failures (matching what the old bool
  /// API put in its Error out-param).
  std::string text() const;
};

/// Typed outcome of one protocol request: either a parsed payload of type
/// \p T or a ClientError. \p T must be default-constructible.
template <typename T = std::string> class ClientResult {
public:
  ClientResult(T Value) : Val(std::move(Value)) {}
  ClientResult(ClientError E) : Err(std::move(E)) {}

  bool ok() const { return Err.Class == ErrClass::None; }
  explicit operator bool() const { return ok(); }

  const T &value() const { return Val; }
  T &value() { return Val; }

  const ClientError &error() const { return Err; }
  ErrClass errClass() const { return Err.Class; }
  /// WireError code (0 on success or transport failure).
  unsigned code() const { return Err.Code; }
  bool transient() const { return Err.Class == ErrClass::Transient; }
  uint64_t retryAfterMs() const { return Err.RetryAfterMs; }
  std::string errorText() const { return Err.text(); }

private:
  T Val{};
  ClientError Err;
};

/// What a v4 `hello` advertises: server identity plus the capability set
/// the gateway negotiates version mixes with.
struct HelloInfo {
  std::string Banner; ///< the raw payload
  std::string Server; ///< "drdebugd" / "drdebug-gw"
  std::string Version;
  unsigned Proto = 0;
  /// Supported verb names; empty for pre-v4 servers (which did not
  /// advertise one — derive support from Proto and the verb registry's
  /// MinProtoVersion instead).
  std::vector<std::string> Verbs;

  bool supports(const std::string &Verb) const;
};

class ProtocolClient {
public:
  explicit ProtocolClient(Transport &T) : T(T), Jitter(1) {}
  ProtocolClient(Transport &T, const RetryPolicy &P)
      : T(T), Policy(P), Jitter(P.JitterSeed) {}

  void setRetryPolicy(const RetryPolicy &P) {
    Policy = P;
    Jitter = Rng(P.JitterSeed);
  }
  const RetryPolicy &retryPolicy() const { return Policy; }

  /// Retransmissions performed so far (the retries.* client counter).
  uint64_t retries() const { return RetriesTotal; }

  /// Sends "<seq> <VerbAndArgs>" and waits for the matching response.
  ClientResult<> request(const std::string &VerbAndArgs);

  /// Handshake + capability discovery.
  ClientResult<HelloInfo> hello();
  /// The server's verb registry, one line per verb.
  ClientResult<> help() { return request("help"); }
  /// Opens a fresh session; the value is its id.
  ClientResult<uint64_t> open();
  /// Loads program text into session \p Sid. The value is the session's
  /// "loaded program: ..." message (load failures come back as
  /// session-failed errors carrying the assembler's message).
  ClientResult<> load(uint64_t Sid, const std::string &ProgramText);
  /// Runs one debugger command; the value is exactly what the command
  /// printed in-session.
  ClientResult<> cmd(uint64_t Sid, const std::string &Line) {
    return request("cmd " + std::to_string(Sid) + " " + escapeText(Line));
  }
  // Reverse-execution verbs (session must be replaying a pinball).
  /// Steps session \p Sid backwards \p N instructions.
  ClientResult<> reverseStep(uint64_t Sid, uint64_t N) {
    return request("rstep " + std::to_string(Sid) + " " + std::to_string(N));
  }
  /// Runs backwards to the last breakpoint/watchpoint hit.
  ClientResult<> reverseContinue(uint64_t Sid) {
    return request("rcont " + std::to_string(Sid));
  }
  /// Runs backwards to the current thread's previous instruction.
  ClientResult<> reverseNext(uint64_t Sid) {
    return request("rnext " + std::to_string(Sid));
  }
  /// Runs backwards to the last write of \p Global.
  ClientResult<> reverseWatch(uint64_t Sid, const std::string &Global) {
    return request("rwatch " + std::to_string(Sid) + " " + Global);
  }
  /// Reports the session's replay clock and checkpoint memory.
  ClientResult<> replayPosition(uint64_t Sid) {
    return request("rpos " + std::to_string(Sid));
  }
  // Omniscient-query verbs (answered from the def-use index; \p Loc is a
  // global name, `m[<addr>]`, a bare address, or `r<n>@t<tid>`).
  /// The last write to \p Loc, before position \p Before when given.
  ClientResult<> lastWrite(uint64_t Sid, const std::string &Loc) {
    return request("lastwrite " + std::to_string(Sid) + " " + Loc);
  }
  ClientResult<> lastWrite(uint64_t Sid, const std::string &Loc,
                           uint64_t Before) {
    return request("lastwrite " + std::to_string(Sid) + " " + Loc + " " +
                   std::to_string(Before));
  }
  /// Every value \p Loc held over the region (the last \p Max with the
  /// two-argument form).
  ClientResult<> valuesOf(uint64_t Sid, const std::string &Loc) {
    return request("valuesof " + std::to_string(Sid) + " " + Loc);
  }
  ClientResult<> valuesOf(uint64_t Sid, const std::string &Loc, uint64_t Max) {
    return request("valuesof " + std::to_string(Sid) + " " + Loc + " " +
                   std::to_string(Max));
  }
  /// The readers of every value the entry at \p Pos defined.
  ClientResult<> readersOf(uint64_t Sid, uint64_t Pos) {
    return request("readersof " + std::to_string(Sid) + " " +
                   std::to_string(Pos));
  }
  // Flight-recorder verbs (the always-on epoch-ring recorder).
  /// Attaches the flight recorder to session \p Sid (live machine, or a
  /// fresh seeded run when nothing is stopped mid-run).
  ClientResult<> recordAttach(uint64_t Sid) {
    return request("rattach " + std::to_string(Sid));
  }
  ClientResult<> recordAttach(uint64_t Sid, uint64_t Seed) {
    return request("rattach " + std::to_string(Sid) + " " +
                   std::to_string(Seed));
  }
  /// Reports the recorder's retained window, epochs and memory.
  ClientResult<> recordStatus(uint64_t Sid) {
    return request("rstatus " + std::to_string(Sid));
  }
  /// Materializes the retained window as the session's region pinball,
  /// optionally saving it to \p Dir on the server's filesystem.
  ClientResult<> recordDump(uint64_t Sid, const std::string &Dir) {
    return request("rdump " + std::to_string(Sid) +
                   (Dir.empty() ? "" : " " + escapeText(Dir)));
  }

  // Durability / operations verbs.
  /// Gracefully drains the server: admissions stop, in-flight verbs finish
  /// under the server's drain deadline, and (when \p BundleDir is
  /// non-empty) every resident session is exported as a portable bundle
  /// under it. The value is the server's drain report.
  ClientResult<> drain(const std::string &BundleDir) {
    return request(BundleDir.empty() ? "drain"
                                     : "drain " + escapeText(BundleDir));
  }
  /// Imports a session bundle exported by drain(); the value is the new
  /// (detached) session's id — attach() to drive it.
  ClientResult<uint64_t> importBundle(const std::string &Dir);
  /// The server's fault-injection site catalog and armed state.
  ClientResult<> faults() { return request("faults"); }

  ClientResult<> stats() { return request("stats"); }
  /// Prometheus text exposition of the server's metrics registry.
  ClientResult<> metrics() { return request("metrics"); }

private:
  /// Backs off (exponential + jitter) and retransmits \p Frame. \returns
  /// false when the retry budget is exhausted or the transport is closed.
  bool retransmit(const std::string &Frame, unsigned &Attempt);
  /// Parses a "sid <id>" payload (open/attach/import replies).
  static ClientResult<uint64_t> parseSid(ClientResult<> R,
                                         const char *WhatFor);

  Transport &T;
  FrameBuffer FB;
  RetryPolicy Policy;
  Rng Jitter;
  uint64_t NextSeq = 1;
  uint64_t RetriesTotal = 0;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_CLIENT_H
