//===- server/client.h - drdebugd protocol client ---------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: issues requests over a Transport
/// and matches up responses by sequence number. Used by `drdebug --connect`,
/// the server tests, and the throughput benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_CLIENT_H
#define DRDEBUG_SERVER_CLIENT_H

#include "server/protocol.h"
#include "server/transport.h"

#include <cstdint>
#include <string>

namespace drdebug {

class ProtocolClient {
public:
  explicit ProtocolClient(Transport &T) : T(T) {}

  /// Sends "<seq> <VerbAndArgs>" and waits for the matching response.
  /// \returns false on transport failure or an err response (\p Error then
  /// holds "<code-name>: <message>"). On success \p Payload is unescaped.
  bool request(const std::string &VerbAndArgs, std::string &Payload,
               std::string &Error);

  bool hello(std::string &Banner, std::string &Error) {
    return request("hello", Banner, Error);
  }
  /// Opens a fresh session; \p Sid receives its id.
  bool open(uint64_t &Sid, std::string &Error);
  /// Loads program text into session \p Sid. The session's "loaded
  /// program: ..." message (or assembly error) lands in \p Output.
  bool load(uint64_t Sid, const std::string &ProgramText, std::string &Output,
            std::string &Error);
  /// Runs one debugger command; \p Output is exactly what the command
  /// printed in-session.
  bool cmd(uint64_t Sid, const std::string &Line, std::string &Output,
           std::string &Error) {
    return request("cmd " + std::to_string(Sid) + " " + escapeText(Line),
                   Output, Error);
  }
  bool stats(std::string &Report, std::string &Error) {
    return request("stats", Report, Error);
  }

  /// Error code of the last err response (0 when none).
  unsigned lastErrorCode() const { return LastCode; }

private:
  Transport &T;
  FrameBuffer FB;
  uint64_t NextSeq = 1;
  unsigned LastCode = 0;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_CLIENT_H
