//===- server/client.h - drdebugd protocol client ---------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: issues requests over a Transport
/// and matches up responses by sequence number. Used by `drdebug --connect`,
/// the server tests, and the throughput benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_CLIENT_H
#define DRDEBUG_SERVER_CLIENT_H

#include "server/protocol.h"
#include "server/transport.h"
#include "support/rng.h"

#include <cstdint>
#include <string>

namespace drdebug {

/// How the client reacts to transient failures: lost or damaged frames and
/// server-side checksum rejections. Retransmissions reuse the original
/// sequence number, so the server's duplicate-response cache guarantees the
/// verb executes at most once no matter how many times it is resent.
struct RetryPolicy {
  /// Retransmissions allowed per request (0 restores fire-and-hang).
  unsigned MaxRetries = 4;
  /// How long to wait for a response before suspecting a lost frame.
  /// 0 waits forever — retries then trigger only on damaged frames and
  /// transient server errors, never on silence.
  uint64_t RecvTimeoutMs = 0;
  /// First backoff; doubles per retransmission, plus deterministic jitter.
  uint64_t InitialBackoffMs = 5;
  /// Seed for the jitter sequence (deterministic for tests).
  uint64_t JitterSeed = 1;
};

class ProtocolClient {
public:
  explicit ProtocolClient(Transport &T) : T(T), Jitter(1) {}
  ProtocolClient(Transport &T, const RetryPolicy &P)
      : T(T), Policy(P), Jitter(P.JitterSeed) {}

  void setRetryPolicy(const RetryPolicy &P) {
    Policy = P;
    Jitter = Rng(P.JitterSeed);
  }
  const RetryPolicy &retryPolicy() const { return Policy; }

  /// Retransmissions performed so far (the retries.* client counter).
  uint64_t retries() const { return RetriesTotal; }

  /// Sends "<seq> <VerbAndArgs>" and waits for the matching response.
  /// \returns false on transport failure or an err response (\p Error then
  /// holds "<code-name>: <message>"). On success \p Payload is unescaped.
  bool request(const std::string &VerbAndArgs, std::string &Payload,
               std::string &Error);

  bool hello(std::string &Banner, std::string &Error) {
    return request("hello", Banner, Error);
  }
  /// Opens a fresh session; \p Sid receives its id.
  bool open(uint64_t &Sid, std::string &Error);
  /// Loads program text into session \p Sid. The session's "loaded
  /// program: ..." message (or assembly error) lands in \p Output.
  bool load(uint64_t Sid, const std::string &ProgramText, std::string &Output,
            std::string &Error);
  /// Runs one debugger command; \p Output is exactly what the command
  /// printed in-session.
  bool cmd(uint64_t Sid, const std::string &Line, std::string &Output,
           std::string &Error) {
    return request("cmd " + std::to_string(Sid) + " " + escapeText(Line),
                   Output, Error);
  }
  // Reverse-execution verbs (session must be replaying a pinball).
  /// Steps session \p Sid backwards \p N instructions.
  bool reverseStep(uint64_t Sid, uint64_t N, std::string &Output,
                   std::string &Error) {
    return request("rstep " + std::to_string(Sid) + " " + std::to_string(N),
                   Output, Error);
  }
  /// Runs backwards to the last breakpoint/watchpoint hit.
  bool reverseContinue(uint64_t Sid, std::string &Output, std::string &Error) {
    return request("rcont " + std::to_string(Sid), Output, Error);
  }
  /// Runs backwards to the current thread's previous instruction.
  bool reverseNext(uint64_t Sid, std::string &Output, std::string &Error) {
    return request("rnext " + std::to_string(Sid), Output, Error);
  }
  /// Runs backwards to the last write of \p Global.
  bool reverseWatch(uint64_t Sid, const std::string &Global,
                    std::string &Output, std::string &Error) {
    return request("rwatch " + std::to_string(Sid) + " " + Global, Output,
                   Error);
  }
  /// Reports the session's replay clock and checkpoint memory.
  bool replayPosition(uint64_t Sid, std::string &Output, std::string &Error) {
    return request("rpos " + std::to_string(Sid), Output, Error);
  }
  // Flight-recorder verbs (the always-on epoch-ring recorder).
  /// Attaches the flight recorder to session \p Sid (live machine, or a
  /// fresh seeded run when nothing is stopped mid-run).
  bool recordAttach(uint64_t Sid, std::string &Output, std::string &Error) {
    return request("rattach " + std::to_string(Sid), Output, Error);
  }
  bool recordAttach(uint64_t Sid, uint64_t Seed, std::string &Output,
                    std::string &Error) {
    return request("rattach " + std::to_string(Sid) + " " +
                       std::to_string(Seed),
                   Output, Error);
  }
  /// Reports the recorder's retained window, epochs and memory.
  bool recordStatus(uint64_t Sid, std::string &Output, std::string &Error) {
    return request("rstatus " + std::to_string(Sid), Output, Error);
  }
  /// Materializes the retained window as the session's region pinball,
  /// optionally saving it to \p Dir on the server's filesystem.
  bool recordDump(uint64_t Sid, const std::string &Dir, std::string &Output,
                  std::string &Error) {
    return request("rdump " + std::to_string(Sid) +
                       (Dir.empty() ? "" : " " + escapeText(Dir)),
                   Output, Error);
  }

  // Durability / operations verbs.
  /// Gracefully drains the server: admissions stop, in-flight verbs finish
  /// under the server's drain deadline, and (when \p BundleDir is non-empty)
  /// every resident session is exported as a portable bundle under it.
  /// \p Report receives the server's drain report.
  bool drain(const std::string &BundleDir, std::string &Report,
             std::string &Error) {
    return request(BundleDir.empty() ? "drain"
                                     : "drain " + escapeText(BundleDir),
                   Report, Error);
  }
  /// Imports a session bundle exported by drain(); \p Sid gets the new
  /// (detached) session's id — attach() to drive it.
  bool importBundle(const std::string &Dir, uint64_t &Sid, std::string &Error);
  /// The server's fault-injection site catalog and armed state.
  bool faults(std::string &Catalog, std::string &Error) {
    return request("faults", Catalog, Error);
  }

  bool stats(std::string &Report, std::string &Error) {
    return request("stats", Report, Error);
  }
  /// Prometheus text exposition of the server's metrics registry.
  bool metrics(std::string &Exposition, std::string &Error) {
    return request("metrics", Exposition, Error);
  }

  /// Error code of the last err response (0 when none).
  unsigned lastErrorCode() const { return LastCode; }
  /// Whether the last err response was classified transient.
  bool lastErrorTransient() const { return LastTransient; }

private:
  /// Backs off (exponential + jitter) and retransmits \p Frame. \returns
  /// false when the retry budget is exhausted or the transport is closed.
  bool retransmit(const std::string &Frame, unsigned &Attempt);

  Transport &T;
  FrameBuffer FB;
  RetryPolicy Policy;
  Rng Jitter;
  uint64_t NextSeq = 1;
  unsigned LastCode = 0;
  bool LastTransient = false;
  uint64_t RetriesTotal = 0;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_CLIENT_H
