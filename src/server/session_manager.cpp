//===- server/session_manager.cpp - Concurrent debug sessions ----------------===//

#include "server/session_manager.h"

#include "replay/pinball.h"
#include "replay/repository.h"
#include "slicing/slice_repository.h"
#include "support/fault_injector.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

using namespace drdebug;

namespace fs = std::filesystem;

bool drdebug::isMutatingCommand(const std::string &Line) {
  std::istringstream IS(Line);
  std::string Cmd;
  if (!(IS >> Cmd))
    return false;
  // Everything that only *inspects* state. `slice list`/`slice deps` are
  // read-only too, but journaling every slice command is harmless (replay
  // is deterministic) and keeps the classifier a one-token lookup.
  static const char *const ReadOnly[] = {
      "help",  "info", "x",      "print",           "p",     "backtrace",
      "bt",    "where", "list",  "output",          "replay-position",
      "fault"};
  for (const char *R : ReadOnly)
    if (Cmd == R)
      return false;
  return true;
}

/// One resident session: the DebugSession and the mutex that serializes
/// commands against it. Output capture moved into the session itself
/// (CommandResult::Text), so the sink just discards; LastUsed is guarded
/// by CmdMu, Attached by the manager's Mu. History/Journal/SinceCompact
/// (the durability state) are guarded by CmdMu; Quarantined is atomic so
/// the server's watchdog can flip it without the (possibly wedged) CmdMu.
struct SessionManager::ManagedSession {
  ManagedSession(uint64_t Id, PinballRepository &Repo,
                 SliceSessionRepository &SliceRepo,
                 const SliceSessionOptions &SliceOpts, ServerStats &Stats)
      : Id(Id), Session([](const std::string &) {}) {
    Session.setPinballRepository(&Repo);
    Session.setSliceRepository(&SliceRepo);
    Session.setSliceOptions(SliceOpts);
    Session.setDivergenceCounter(&Stats.DivergencesDetected);
    LastUsed = Clock::now();
  }

  const uint64_t Id;
  std::mutex CmdMu;
  DebugSession Session;
  Clock::time_point LastUsed;
  bool Attached = true;

  // Durability state (CmdMu).
  /// In-memory mirror of the journal: the session's mutating history. Kept
  /// even without a journal directory so drain/export always works.
  std::vector<JournalRecord> History;
  std::unique_ptr<JournalWriter> Journal;
  /// Whether a snapshot pinball is on disk, and the regionGeneration() /
  /// regionFingerprint() it captured — an unchanged region skips the
  /// re-save at compaction.
  bool SnapSaved = false;
  uint64_t SnapSavedGen = 0;
  uint64_t SnapSavedFp = 0;
  /// Journaled commands since the last successful compaction.
  unsigned SinceCompact = 0;
  /// This session's current contribution to the JournalBytes gauge.
  uint64_t GaugeBytes = 0;
  /// Set by the server when a command overruns its deadline; cleared when
  /// the overdue command finally completes.
  std::atomic<bool> Quarantined{false};
};

SessionManager::SessionManager(PinballRepository &Repo,
                               SliceSessionRepository &SliceRepo,
                               ServerStats &Stats,
                               std::chrono::milliseconds IdleTimeout,
                               SliceSessionOptions SliceOpts)
    : Repo(Repo), SliceRepo(SliceRepo), Stats(Stats), IdleTimeout(IdleTimeout),
      SliceOpts(SliceOpts) {}

bool SessionManager::configureDurability(const DurabilityOptions &O,
                                         std::string &Error) {
  if (O.JournalDir.empty()) {
    Durability = O;
    return true;
  }
  std::error_code Ec;
  fs::create_directories(O.JournalDir, Ec);
  if (Ec) {
    Error = "cannot create journal directory " + O.JournalDir + ": " +
            Ec.message();
    return false;
  }
  Durability = O;
  return true;
}

std::string SessionManager::journalPath(uint64_t Id) const {
  return Durability.JournalDir + "/session-" + std::to_string(Id) + ".journal";
}

std::string SessionManager::snapshotPath(uint64_t Id) const {
  return Durability.JournalDir + "/session-" + std::to_string(Id) + ".pinball";
}

uint64_t SessionManager::create() {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Id = NextId++;
  auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                            Stats);
  if (durabilityEnabled()) {
    S->Journal = std::make_unique<JournalWriter>();
    std::string Err;
    if (S->Journal->open(journalPath(Id), Durability.Fsync, Err)) {
      Stats.SessionsJournaled.inc();
      updateJournalGauge(*S);
    } else {
      // journalAppend() retries the open on the first mutating command; if
      // the directory is still unwritable then, that command fails loudly.
      S->Journal.reset();
    }
  }
  Sessions.emplace(Id, std::move(S));
  Stats.SessionsCreated.inc();
  return Id;
}

size_t SessionManager::recover() {
  if (!durabilityEnabled())
    return 0;
  size_t Recovered = 0;
  std::error_code Ec;
  std::vector<std::pair<uint64_t, std::string>> Found;
  for (const auto &Ent : fs::directory_iterator(Durability.JournalDir, Ec)) {
    std::string Name = Ent.path().filename().string();
    if (Name.rfind("session-", 0) != 0)
      continue;
    const std::string Suffix = ".journal";
    if (Name.size() <= 8 + Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    char *End = nullptr;
    uint64_t Id = std::strtoull(Name.c_str() + 8, &End, 10);
    if (Id == 0 || End != Name.c_str() + Name.size() - Suffix.size())
      continue;
    Found.emplace_back(Id, Ent.path().string());
  }
  // Deterministic recovery order (directory iteration order is not).
  std::sort(Found.begin(), Found.end());
  for (const auto &[Id, Path] : Found) {
    std::vector<JournalRecord> Records;
    bool Torn = false;
    uint64_t Clean = 0;
    std::string Err;
    if (!readJournal(Path, Records, Torn, Clean, Err))
      continue; // not a journal after all; leave it alone
    auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                              Stats);
    S->Attached = false;
    if (!applyRecords(*S, Records, snapshotPath(Id), Err))
      continue; // snapshot gone or journal ends the session: unrecoverable
    S->Journal = std::make_unique<JournalWriter>();
    // Re-opening truncates the torn tail a kill -9 mid-append left behind.
    if (S->Journal->open(Path, Durability.Fsync, Err))
      Stats.SessionsJournaled.inc();
    else
      S->Journal.reset();
    S->History = std::move(Records);
    updateJournalGauge(*S);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      NextId = std::max(NextId, Id + 1);
      Sessions.emplace(Id, std::move(S));
    }
    Stats.SessionsRecovered.inc();
    ++Recovered;
  }
  return Recovered;
}

bool SessionManager::applyRecords(ManagedSession &S,
                                  const std::vector<JournalRecord> &Records,
                                  const std::string &SnapDir,
                                  std::string &Error) {
  for (const JournalRecord &R : Records) {
    CommandResult Res;
    switch (R.K) {
    case JournalRecord::Kind::Load:
      Res = S.Session.loadProgram(R.Payload);
      break;
    case JournalRecord::Kind::Cmd:
      Res = S.Session.executeCommand(R.Payload);
      break;
    case JournalRecord::Kind::Snap:
      Res = S.Session.executeCommand("pinball load " + SnapDir);
      if (Res.Status == CommandStatus::Error) {
        // A failed Cmd record merely re-fails the way it originally did
        // (deterministically); a failed snapshot load means the state is
        // genuinely unreconstructible.
        Error = "snapshot pinball: " + Res.Text;
        return false;
      }
      break;
    }
    if (Res.Status == CommandStatus::Exited) {
      Error = "journal ends the session";
      return false;
    }
  }
  return true;
}

void SessionManager::updateJournalGauge(ManagedSession &S) {
  uint64_t Now =
      S.Journal && S.Journal->isOpen() ? S.Journal->sizeBytes() : 0;
  if (Now >= S.GaugeBytes)
    Stats.JournalBytes.add(static_cast<int64_t>(Now - S.GaugeBytes));
  else
    Stats.JournalBytes.sub(static_cast<int64_t>(S.GaugeBytes - Now));
  S.GaugeBytes = Now;
}

void SessionManager::dropDurableState(ManagedSession &S) {
  if (S.Journal)
    S.Journal->close();
  S.Journal.reset();
  updateJournalGauge(S);
  if (!durabilityEnabled())
    return;
  std::error_code Ec;
  fs::remove(journalPath(S.Id), Ec);
  fs::remove_all(snapshotPath(S.Id), Ec);
}

bool SessionManager::journalAppend(ManagedSession &S, const JournalRecord &R,
                                   std::string &Error) {
  if (!durabilityEnabled()) {
    S.History.push_back(R);
    ++S.SinceCompact;
    return true;
  }
  if (!S.Journal)
    S.Journal = std::make_unique<JournalWriter>();
  if (!S.Journal->isOpen() &&
      !S.Journal->open(journalPath(S.Id), Durability.Fsync, Error))
    return false;
  if (!S.Journal->append(R, Error)) {
    // Heal whatever tail the failed append left (re-open truncates it) so
    // the next attempt lands after the last clean record. The command
    // itself must not run: write-ahead means no record, no execution.
    std::string Path = S.Journal->path();
    S.Journal->close();
    std::string ReopenErr;
    if (!S.Journal->open(Path, Durability.Fsync, ReopenErr))
      S.Journal->close();
    updateJournalGauge(S);
    return false;
  }
  S.History.push_back(R);
  ++S.SinceCompact;
  updateJournalGauge(S);
  return true;
}

void SessionManager::maybeCompact(ManagedSession &S) {
  if (!S.Journal || !S.Journal->isOpen() || Durability.SnapshotEvery == 0)
    return;
  if (S.SinceCompact < Durability.SnapshotEvery)
    return;
  if (S.Journal->sizeBytes() < Durability.CompactMinBytes)
    return; // too small for the rewrite to buy anything
  if (!S.Session.snapshotExpressible())
    return;
  std::string Err;
  std::vector<JournalRecord> Recs;
  Recs.push_back({JournalRecord::Kind::Load, S.Session.programText()});
  // A session whose region pinball came from `pinball load <dir>` — and
  // whose dir is still byte-identical (same fingerprint) — compacts to a
  // journal that simply re-loads it on recovery. Only in-memory recordings
  // (record region / record failure / flight dumps) need the snapshot
  // pinball copied next to the journal; copying a ~50KB pinball every
  // SnapshotEvery commands would otherwise dominate the journaling cost.
  const std::string &SrcDir = S.Session.regionSourceDir();
  uint64_t SrcFp = S.Session.regionFingerprint();
  if (!SrcDir.empty() && SrcFp != 0 &&
      PinballRepository::dirFingerprint(SrcDir) == SrcFp) {
    Recs.push_back({JournalRecord::Kind::Cmd, "pinball load " + SrcDir});
  } else {
    // The snapshot pinball only needs re-saving when the session's region
    // pinball actually changed since the last compaction. "Unchanged" is
    // either the same region generation (no reload at all) or the same
    // nonzero directory fingerprint (reloaded, but from the same bytes).
    bool SameSnap =
        S.SnapSaved && (S.SnapSavedGen == S.Session.regionGeneration() ||
                        (S.SnapSavedFp != 0 &&
                         S.SnapSavedFp == S.Session.regionFingerprint()));
    if (!SameSnap) {
      if (!S.Session.regionPinball()->save(snapshotPath(S.Id), Err))
        return; // keep the longer journal; nothing is lost
      S.SnapSaved = true;
      S.SnapSavedGen = S.Session.regionGeneration();
      S.SnapSavedFp = S.Session.regionFingerprint();
    }
    Recs.push_back({JournalRecord::Kind::Snap, ""});
  }
  Recs.push_back({JournalRecord::Kind::Cmd, "replay"});
  if (uint64_t Pos = S.Session.replayPosition())
    Recs.push_back(
        {JournalRecord::Kind::Cmd, "replay-seek " + std::to_string(Pos)});
  if (!S.Journal->rewrite(Recs, Err))
    return;
  S.History = std::move(Recs);
  S.SinceCompact = 0;
  Stats.JournalCompactions.inc();
  updateJournalGauge(S);
}

bool SessionManager::attach(uint64_t Id, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    Error = "no such session";
    return false;
  }
  if (It->second->Attached) {
    Error = "session is attached by another client";
    return false;
  }
  It->second->Attached = true;
  return true;
}

bool SessionManager::detach(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  It->second->Attached = false;
  return true;
}

bool SessionManager::close(uint64_t Id) {
  std::shared_ptr<ManagedSession> Doomed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Sessions.find(Id);
    if (It == Sessions.end())
      return false;
    Doomed = std::move(It->second);
    Sessions.erase(It);
  }
  // Let any in-flight command drain before destruction.
  std::lock_guard<std::mutex> CmdLock(Doomed->CmdMu);
  dropDurableState(*Doomed);
  Stats.SessionsClosed.inc();
  return true;
}

bool SessionManager::exists(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.count(Id) != 0;
}

size_t SessionManager::activeCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.size();
}

std::vector<uint64_t> SessionManager::ids() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<uint64_t> Ids;
  Ids.reserve(Sessions.size());
  for (const auto &[Id, S] : Sessions)
    Ids.push_back(Id);
  return Ids;
}

std::shared_ptr<SessionManager::ManagedSession>
SessionManager::find(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second;
}

void SessionManager::remove(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sessions.erase(Id);
}

void SessionManager::setQuarantined(uint64_t Id, bool On) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return;
  if (On && !S->Quarantined.exchange(true))
    Stats.SessionsQuarantined.inc();
  if (!On)
    S->Quarantined.store(false);
}

bool SessionManager::isQuarantined(uint64_t Id) const {
  std::shared_ptr<ManagedSession> S = find(Id);
  return S && S->Quarantined.load();
}

SessionManager::ExecStatus
SessionManager::execute(uint64_t Id, const std::string &Line,
                        std::string &Output) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  CommandStatus Status;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    // Deterministic slow-command hook: lets the deadline tests make a verb
    // overrun its budget without depending on machine speed.
    FaultInjector::global().maybeDelay("session.execute");
    if (isMutatingCommand(Line)) {
      std::string JErr;
      if (!journalAppend(*S, {JournalRecord::Kind::Cmd, Line}, JErr)) {
        Output = "error: journal: " + JErr + "\n";
        S->LastUsed = Clock::now();
        Stats.CommandsServed.inc();
        Stats.CommandsFailed.inc();
        return ExecStatus::Ok;
      }
    }
    CommandResult R = S->Session.executeCommand(Line);
    Status = R.Status;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
    if (Status != CommandStatus::Exited)
      maybeCompact(*S);
  }
  Stats.CommandsServed.inc();
  if (Status == CommandStatus::Error)
    Stats.CommandsFailed.inc();
  if (Status == CommandStatus::Exited) {
    remove(Id);
    dropDurableState(*S);
    Stats.SessionsClosed.inc();
    return ExecStatus::Ended;
  }
  return ExecStatus::Ok;
}

SessionManager::ExecStatus
SessionManager::loadProgram(uint64_t Id, const std::string &Text,
                            std::string &Output, bool &LoadOk) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    std::string JErr;
    if (!journalAppend(*S, {JournalRecord::Kind::Load, Text}, JErr)) {
      Output = "error: journal: " + JErr + "\n";
      LoadOk = false;
      S->LastUsed = Clock::now();
      Stats.CommandsServed.inc();
      Stats.CommandsFailed.inc();
      return ExecStatus::Ok;
    }
    CommandResult R = S->Session.loadProgram(Text);
    LoadOk = R.Status != CommandStatus::Error;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
  }
  Stats.CommandsServed.inc();
  if (!LoadOk)
    Stats.CommandsFailed.inc();
  return ExecStatus::Ok;
}

bool SessionManager::exportBundle(uint64_t Id, const std::string &Dir,
                                  std::string &Error) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S) {
    Error = "no such session";
    return false;
  }
  std::lock_guard<std::mutex> CmdLock(S->CmdMu);
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create bundle directory " + Dir + ": " + Ec.message();
    return false;
  }
  if (!rewriteJournal(Dir + "/journal", S->History, Error))
    return false;
  bool HasSnap =
      std::any_of(S->History.begin(), S->History.end(),
                  [](const JournalRecord &R) {
                    return R.K == JournalRecord::Kind::Snap;
                  });
  if (HasSnap) {
    Pinball P;
    std::string PErr;
    if (!P.load(snapshotPath(Id), PErr)) {
      Error = "snapshot pinball: " + PErr;
      return false;
    }
    if (!P.save(Dir + "/pinball", PErr)) {
      Error = "bundle pinball: " + PErr;
      return false;
    }
  }
  return true;
}

bool SessionManager::importBundle(const std::string &Dir, uint64_t &NewId,
                                  std::string &Error) {
  std::vector<JournalRecord> Records;
  bool Torn = false;
  uint64_t Clean = 0;
  if (!readJournal(Dir + "/journal", Records, Torn, Clean, Error))
    return false;
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Id = NextId++;
  }
  auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                            Stats);
  S->Attached = false;
  std::string BundleSnap = Dir + "/pinball";
  bool HasSnap =
      std::any_of(Records.begin(), Records.end(), [](const JournalRecord &R) {
        return R.K == JournalRecord::Kind::Snap;
      });
  if (durabilityEnabled() && HasSnap) {
    // The snapshot must live next to the new journal for future recovery.
    Pinball P;
    std::string PErr;
    if (!P.load(BundleSnap, PErr)) {
      Error = "bundle pinball: " + PErr;
      return false;
    }
    if (!P.save(snapshotPath(Id), PErr)) {
      Error = "snapshot pinball: " + PErr;
      return false;
    }
  }
  if (!applyRecords(*S, Records, BundleSnap, Error))
    return false;
  if (durabilityEnabled()) {
    if (!rewriteJournal(journalPath(Id), Records, Error))
      return false;
    S->Journal = std::make_unique<JournalWriter>();
    std::string JErr;
    if (S->Journal->open(journalPath(Id), Durability.Fsync, JErr))
      Stats.SessionsJournaled.inc();
    else
      S->Journal.reset();
  }
  S->History = std::move(Records);
  updateJournalGauge(*S);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Sessions.emplace(Id, std::move(S));
  }
  NewId = Id;
  return true;
}

size_t SessionManager::evictIdle() {
  if (IdleTimeout.count() == 0)
    return 0;
  Clock::time_point Now = Clock::now();
  std::vector<std::shared_ptr<ManagedSession>> Evicted;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      ManagedSession &S = *It->second;
      // A busy session is never evicted: LastUsed may only be read with
      // CmdMu held, and holding it proves no command is in flight.
      if (!S.CmdMu.try_lock()) {
        ++It;
        continue;
      }
      bool Idle = Now - S.LastUsed >= IdleTimeout;
      S.CmdMu.unlock();
      if (Idle) {
        Evicted.push_back(std::move(It->second));
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
  // Eviction is a close, not a crash: the durable state goes with it.
  for (const std::shared_ptr<ManagedSession> &S : Evicted)
    dropDurableState(*S);
  Stats.SessionsEvicted.inc(Evicted.size());
  return Evicted.size();
}
