//===- server/session_manager.cpp - Concurrent debug sessions ----------------===//

#include "server/session_manager.h"

#include "replay/pinball.h"
#include "replay/repository.h"
#include "server/verbs.h"
#include "slicing/slice_repository.h"
#include "support/fault_injector.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

using namespace drdebug;

namespace fs = std::filesystem;

namespace {

/// Ref-record payload codec: `<fingerprint> <pinball-dir>`. The directory
/// may contain spaces, so it is everything after the first separator.
std::string makeRefPayload(uint64_t Fp, const std::string &Dir) {
  return std::to_string(Fp) + " " + Dir;
}

bool parseRefPayload(const std::string &Payload, uint64_t &Fp,
                     std::string &Dir) {
  size_t Sep = Payload.find(' ');
  if (Sep == 0 || Sep == std::string::npos || Sep + 1 >= Payload.size())
    return false;
  char *End = nullptr;
  Fp = std::strtoull(Payload.c_str(), &End, 10);
  if (End != Payload.c_str() + Sep)
    return false;
  Dir = Payload.substr(Sep + 1);
  return true;
}

} // namespace

bool drdebug::isMutatingCommand(const std::string &Line) {
  std::istringstream IS(Line);
  std::string Cmd;
  if (!(IS >> Cmd))
    return false;
  // The read-only word list lives in the verb registry (server/verbs.cpp)
  // next to the verb-level mutating flags, so there is one place that
  // declares what can change session state.
  return !isReadOnlyCommandWord(Cmd);
}

/// One resident session: the DebugSession and the mutex that serializes
/// commands against it. Output capture moved into the session itself
/// (CommandResult::Text), so the sink just discards; LastUsed is guarded
/// by CmdMu, Attached by the manager's Mu. History/Journal/SinceCompact
/// (the durability state) are guarded by CmdMu; Quarantined is atomic so
/// the server's watchdog can bump it without the (possibly wedged) CmdMu.
struct SessionManager::ManagedSession {
  ManagedSession(uint64_t Id, PinballRepository &Repo,
                 SliceSessionRepository &SliceRepo,
                 const SliceSessionOptions &SliceOpts, ServerStats &Stats)
      : Id(Id), Session([](const std::string &) {}) {
    Session.setPinballRepository(&Repo);
    Session.setSliceRepository(&SliceRepo);
    Session.setSliceOptions(SliceOpts);
    Session.setDivergenceCounter(&Stats.DivergencesDetected);
    LastUsed = Clock::now();
  }

  const uint64_t Id;
  std::mutex CmdMu;
  DebugSession Session;
  Clock::time_point LastUsed;
  bool Attached = true;
  /// Set (under CmdMu) when the session is torn down — `quit`, close, or
  /// eviction. A concurrent verb that grabbed the shared_ptr before the
  /// map erase checks this after acquiring CmdMu and bails instead of
  /// journaling into (and thereby resurrecting) durable state that
  /// dropDurableState is deleting.
  bool Ended = false;

  // Durability state (CmdMu).
  /// In-memory mirror of the journal: the session's mutating history. Kept
  /// even without a journal directory so drain/export always works.
  std::vector<JournalRecord> History;
  std::unique_ptr<JournalWriter> Journal;
  /// Whether a snapshot pinball is on disk, and the regionGeneration() /
  /// regionFingerprint() it captured — an unchanged region skips the
  /// re-save at compaction.
  bool SnapSaved = false;
  uint64_t SnapSavedGen = 0;
  uint64_t SnapSavedFp = 0;
  /// Where this session's snapshot pinball lives, when its history carries
  /// a Snap record. Usually snapshotPath(Id), but an import into a server
  /// without durability remembers the bundle's own pinball here so a later
  /// drain/export can still resolve it.
  std::string SnapPath;
  /// Journaled commands since the last successful compaction.
  unsigned SinceCompact = 0;
  /// This session's current contribution to the JournalBytes gauge.
  uint64_t GaugeBytes = 0;
  /// Commands past their deadline that are still (possibly) running: one
  /// increment per overrun, one decrement per settle. A count, not a flag:
  /// two overlapping overruns must keep the session quarantined until the
  /// *second* one settles.
  std::atomic<unsigned> Quarantined{0};
};

SessionManager::SessionManager(PinballRepository &Repo,
                               SliceSessionRepository &SliceRepo,
                               ServerStats &Stats,
                               std::chrono::milliseconds IdleTimeout,
                               SliceSessionOptions SliceOpts)
    : Repo(Repo), SliceRepo(SliceRepo), Stats(Stats), IdleTimeout(IdleTimeout),
      SliceOpts(SliceOpts) {}

bool SessionManager::configureDurability(const DurabilityOptions &O,
                                         std::string &Error) {
  if (O.JournalDir.empty()) {
    Durability = O;
    return true;
  }
  std::error_code Ec;
  fs::create_directories(O.JournalDir, Ec);
  if (Ec) {
    Error = "cannot create journal directory " + O.JournalDir + ": " +
            Ec.message();
    return false;
  }
  Durability = O;
  return true;
}

std::string SessionManager::journalPath(uint64_t Id) const {
  return Durability.JournalDir + "/session-" + std::to_string(Id) + ".journal";
}

std::string SessionManager::snapshotPath(uint64_t Id) const {
  return Durability.JournalDir + "/session-" + std::to_string(Id) + ".pinball";
}

uint64_t SessionManager::create() {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Id = NextId++;
  auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                            Stats);
  if (durabilityEnabled()) {
    S->Journal = std::make_unique<JournalWriter>();
    std::string Err;
    if (S->Journal->open(journalPath(Id), Durability.Fsync, Err)) {
      Stats.SessionsJournaled.inc();
      updateJournalGauge(*S);
    } else {
      // journalAppend() retries the open on the first mutating command; if
      // the directory is still unwritable then, that command fails loudly.
      S->Journal.reset();
    }
  }
  Sessions.emplace(Id, std::move(S));
  Stats.SessionsCreated.inc();
  return Id;
}

size_t SessionManager::recover() {
  if (!durabilityEnabled())
    return 0;
  RecoveryCasualties.clear();
  size_t Recovered = 0;
  std::error_code Ec;
  std::vector<std::pair<uint64_t, std::string>> Found;
  for (const auto &Ent : fs::directory_iterator(Durability.JournalDir, Ec)) {
    std::string Name = Ent.path().filename().string();
    if (Name.rfind("session-", 0) != 0)
      continue;
    const std::string Suffix = ".journal";
    if (Name.size() <= 8 + Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    char *End = nullptr;
    uint64_t Id = std::strtoull(Name.c_str() + 8, &End, 10);
    if (Id == 0 || End != Name.c_str() + Name.size() - Suffix.size())
      continue;
    Found.emplace_back(Id, Ent.path().string());
  }
  // Deterministic recovery order (directory iteration order is not).
  std::sort(Found.begin(), Found.end());
  // An unrecoverable journal is renamed aside (with its snapshot), not left
  // in place: leaving it would make every future restart re-execute the
  // whole history just to fail the same way, forever. The `.dead` suffix
  // keeps the bytes for a postmortem while excluding them from the scan.
  auto Retire = [&](uint64_t Id, const std::string &Path,
                    const std::string &Why) {
    RecoveryCasualties.push_back(Path + ": " + Why + "; retired to " +
                                 fs::path(Path).filename().string() + ".dead");
    std::error_code RenEc;
    fs::remove_all(Path + ".dead", RenEc);
    fs::rename(Path, Path + ".dead", RenEc);
    if (RenEc)
      fs::remove(Path, RenEc); // rename failed (odd fs): drop it instead
    std::string Snap = snapshotPath(Id);
    if (fs::exists(Snap, RenEc)) {
      fs::remove_all(Snap + ".dead", RenEc);
      fs::rename(Snap, Snap + ".dead", RenEc);
      if (RenEc)
        fs::remove_all(Snap, RenEc);
    }
  };
  for (const auto &[Id, Path] : Found) {
    {
      // Even an unrecoverable id is burnt: a fresh session must never
      // collide with the retired files of a dead one.
      std::lock_guard<std::mutex> Lock(Mu);
      NextId = std::max(NextId, Id + 1);
    }
    std::vector<JournalRecord> Records;
    bool Torn = false;
    uint64_t Clean = 0;
    std::string Err;
    if (!readJournal(Path, Records, Torn, Clean, Err))
      continue; // not a journal after all; leave it alone
    auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                              Stats);
    S->Attached = false;
    if (!applyRecords(*S, Records, snapshotPath(Id), Err)) {
      // Snapshot gone, referenced pinball changed, or the journal ends the
      // session: unrecoverable now and on every future restart.
      Retire(Id, Path, Err.empty() ? "unrecoverable history" : Err);
      continue;
    }
    for (const JournalRecord &R : Records)
      if (R.K == JournalRecord::Kind::Snap)
        S->SnapPath = snapshotPath(Id);
    S->Journal = std::make_unique<JournalWriter>();
    // Re-opening truncates the torn tail a kill -9 mid-append left behind.
    if (S->Journal->open(Path, Durability.Fsync, Err))
      Stats.SessionsJournaled.inc();
    else
      S->Journal.reset();
    S->History = std::move(Records);
    updateJournalGauge(*S);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Sessions.emplace(Id, std::move(S));
    }
    Stats.SessionsRecovered.inc();
    ++Recovered;
  }
  return Recovered;
}

bool SessionManager::applyRecords(ManagedSession &S,
                                  const std::vector<JournalRecord> &Records,
                                  const std::string &SnapDir,
                                  std::string &Error) {
  for (const JournalRecord &R : Records) {
    CommandResult Res;
    switch (R.K) {
    case JournalRecord::Kind::Load:
      Res = S.Session.loadProgram(R.Payload);
      break;
    case JournalRecord::Kind::Cmd:
      Res = S.Session.executeCommand(R.Payload);
      break;
    case JournalRecord::Kind::Snap:
      Res = S.Session.executeCommand("pinball load " + SnapDir);
      if (Res.Status == CommandStatus::Error) {
        // A failed Cmd record merely re-fails the way it originally did
        // (deterministically); a failed snapshot load means the state is
        // genuinely unreconstructible.
        Error = "snapshot pinball: " + Res.Text;
        return false;
      }
      break;
    case JournalRecord::Kind::Ref: {
      uint64_t WantFp = 0;
      std::string Dir;
      if (!parseRefPayload(R.Payload, WantFp, Dir)) {
        Error = "malformed ref record";
        return false;
      }
      // The record was written only after the directory's fingerprint was
      // checked; a mismatch now means the pinball was deleted or modified
      // since compaction. Loading it anyway would rebuild a silently wrong
      // session, so fail recovery loudly instead.
      if (PinballRepository::dirFingerprint(Dir) != WantFp) {
        Error = "referenced pinball " + Dir +
                " is missing or changed since compaction (fingerprint "
                "mismatch)";
        return false;
      }
      Res = S.Session.executeCommand("pinball load " + Dir);
      if (Res.Status == CommandStatus::Error) {
        Error = "referenced pinball: " + Res.Text;
        return false;
      }
      break;
    }
    }
    if (Res.Status == CommandStatus::Exited) {
      Error = "journal ends the session";
      return false;
    }
  }
  return true;
}

void SessionManager::updateJournalGauge(ManagedSession &S) {
  uint64_t Now =
      S.Journal && S.Journal->isOpen() ? S.Journal->sizeBytes() : 0;
  if (Now >= S.GaugeBytes)
    Stats.JournalBytes.add(static_cast<int64_t>(Now - S.GaugeBytes));
  else
    Stats.JournalBytes.sub(static_cast<int64_t>(S.GaugeBytes - Now));
  S.GaugeBytes = Now;
}

void SessionManager::dropDurableState(ManagedSession &S) {
  if (S.Journal)
    S.Journal->close();
  S.Journal.reset();
  updateJournalGauge(S);
  if (!durabilityEnabled())
    return;
  std::error_code Ec;
  fs::remove(journalPath(S.Id), Ec);
  fs::remove_all(snapshotPath(S.Id), Ec);
}

bool SessionManager::journalAppend(ManagedSession &S, const JournalRecord &R,
                                   std::string &Error) {
  if (!durabilityEnabled()) {
    S.History.push_back(R);
    ++S.SinceCompact;
    return true;
  }
  if (!S.Journal)
    S.Journal = std::make_unique<JournalWriter>();
  if (!S.Journal->isOpen() &&
      !S.Journal->open(journalPath(S.Id), Durability.Fsync, Error))
    return false;
  if (!S.Journal->append(R, Error)) {
    // Heal whatever tail the failed append left (re-open truncates it) so
    // the next attempt lands after the last clean record. The command
    // itself must not run: write-ahead means no record, no execution.
    std::string Path = S.Journal->path();
    S.Journal->close();
    std::string ReopenErr;
    if (!S.Journal->open(Path, Durability.Fsync, ReopenErr))
      S.Journal->close();
    updateJournalGauge(S);
    return false;
  }
  S.History.push_back(R);
  ++S.SinceCompact;
  updateJournalGauge(S);
  return true;
}

void SessionManager::maybeCompact(ManagedSession &S) {
  if (!S.Journal || !S.Journal->isOpen() || Durability.SnapshotEvery == 0)
    return;
  if (S.SinceCompact < Durability.SnapshotEvery)
    return;
  if (S.Journal->sizeBytes() < Durability.CompactMinBytes)
    return; // too small for the rewrite to buy anything
  if (!S.Session.snapshotExpressible())
    return;
  std::string Err;
  std::vector<JournalRecord> Recs;
  Recs.push_back({JournalRecord::Kind::Load, S.Session.programText()});
  // A session whose region pinball came from `pinball load <dir>` — and
  // whose dir is still byte-identical (same fingerprint) — compacts to a
  // journal that re-loads it on recovery: a `ref` record carrying the
  // expected fingerprint (re-checked at recovery, which fails loudly on a
  // mismatch) and the absolutized directory (so recovery from a different
  // cwd resolves the same bytes). Only in-memory recordings (record region
  // / record failure / flight dumps) need the snapshot pinball copied next
  // to the journal; copying a ~50KB pinball every SnapshotEvery commands
  // would otherwise dominate the journaling cost.
  const std::string &SrcDir = S.Session.regionSourceDir();
  uint64_t SrcFp = S.Session.regionFingerprint();
  std::error_code AbsEc;
  fs::path AbsSrc = SrcDir.empty() ? fs::path()
                                   : fs::absolute(SrcDir, AbsEc)
                                         .lexically_normal();
  if (!SrcDir.empty() && !AbsEc && SrcFp != 0 &&
      PinballRepository::dirFingerprint(AbsSrc.string()) == SrcFp) {
    Recs.push_back(
        {JournalRecord::Kind::Ref, makeRefPayload(SrcFp, AbsSrc.string())});
  } else {
    // The snapshot pinball only needs re-saving when the session's region
    // pinball actually changed since the last compaction. "Unchanged" is
    // either the same region generation (no reload at all) or the same
    // nonzero directory fingerprint (reloaded, but from the same bytes).
    bool SameSnap =
        S.SnapSaved && (S.SnapSavedGen == S.Session.regionGeneration() ||
                        (S.SnapSavedFp != 0 &&
                         S.SnapSavedFp == S.Session.regionFingerprint()));
    if (!SameSnap) {
      if (!S.Session.regionPinball()->save(snapshotPath(S.Id), Err))
        return; // keep the longer journal; nothing is lost
      S.SnapSaved = true;
      S.SnapSavedGen = S.Session.regionGeneration();
      S.SnapSavedFp = S.Session.regionFingerprint();
      S.SnapPath = snapshotPath(S.Id);
    }
    Recs.push_back({JournalRecord::Kind::Snap, ""});
  }
  Recs.push_back({JournalRecord::Kind::Cmd, "replay"});
  if (uint64_t Pos = S.Session.replayPosition())
    Recs.push_back(
        {JournalRecord::Kind::Cmd, "replay-seek " + std::to_string(Pos)});
  if (!S.Journal->rewrite(Recs, Err))
    return;
  S.History = std::move(Recs);
  S.SinceCompact = 0;
  Stats.JournalCompactions.inc();
  updateJournalGauge(S);
}

bool SessionManager::attach(uint64_t Id, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    Error = "no such session";
    return false;
  }
  if (It->second->Attached) {
    Error = "session is attached by another client";
    return false;
  }
  It->second->Attached = true;
  return true;
}

bool SessionManager::detach(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  It->second->Attached = false;
  return true;
}

bool SessionManager::close(uint64_t Id) {
  std::shared_ptr<ManagedSession> Doomed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Sessions.find(Id);
    if (It == Sessions.end())
      return false;
    Doomed = std::move(It->second);
    Sessions.erase(It);
  }
  // Let any in-flight command drain before destruction.
  std::lock_guard<std::mutex> CmdLock(Doomed->CmdMu);
  Doomed->Ended = true;
  dropDurableState(*Doomed);
  Stats.SessionsClosed.inc();
  return true;
}

bool SessionManager::exists(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.count(Id) != 0;
}

size_t SessionManager::activeCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.size();
}

std::vector<uint64_t> SessionManager::ids() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<uint64_t> Ids;
  Ids.reserve(Sessions.size());
  for (const auto &[Id, S] : Sessions)
    Ids.push_back(Id);
  return Ids;
}

std::shared_ptr<SessionManager::ManagedSession>
SessionManager::find(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second;
}

void SessionManager::remove(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sessions.erase(Id);
}

void SessionManager::quarantine(uint64_t Id) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return;
  if (S->Quarantined.fetch_add(1, std::memory_order_acq_rel) == 0)
    Stats.SessionsQuarantined.inc();
}

void SessionManager::unquarantine(uint64_t Id) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return;
  // Defensive floor: quarantine()/unquarantine() calls are paired by the
  // server's settle-exactly-once protocol, so this CAS loop only guards
  // against a future unpaired caller wrapping the counter.
  unsigned Cur = S->Quarantined.load(std::memory_order_acquire);
  while (Cur != 0 && !S->Quarantined.compare_exchange_weak(
                         Cur, Cur - 1, std::memory_order_acq_rel))
    ;
}

bool SessionManager::isQuarantined(uint64_t Id) const {
  std::shared_ptr<ManagedSession> S = find(Id);
  return S && S->Quarantined.load(std::memory_order_acquire) != 0;
}

SessionManager::ExecStatus
SessionManager::execute(uint64_t Id, const std::string &Line,
                        std::string &Output) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  CommandStatus Status;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    // We may have grabbed the shared_ptr just before a quit/close/eviction
    // tore the session down; journaling now would resurrect its deleted
    // durable state as a phantom session.
    if (S->Ended)
      return ExecStatus::NoSuchSession;
    // Deterministic slow-command hook: lets the deadline tests make a verb
    // overrun its budget without depending on machine speed.
    FaultInjector::global().maybeDelay("session.execute");
    if (isMutatingCommand(Line)) {
      std::string JErr;
      if (!journalAppend(*S, {JournalRecord::Kind::Cmd, Line}, JErr)) {
        Output = "error: journal: " + JErr + "\n";
        S->LastUsed = Clock::now();
        Stats.CommandsServed.inc();
        Stats.CommandsFailed.inc();
        return ExecStatus::Ok;
      }
    }
    CommandResult R = S->Session.executeCommand(Line);
    Status = R.Status;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
    if (Status != CommandStatus::Exited) {
      maybeCompact(*S);
    } else {
      // Tear the durable state down while still holding CmdMu: a
      // concurrent verb on the same sid already past find() would
      // otherwise race its journalAppend against Journal->close() here.
      // Ended keeps it from re-creating the journal afterwards.
      S->Ended = true;
      dropDurableState(*S);
    }
  }
  Stats.CommandsServed.inc();
  if (Status == CommandStatus::Error)
    Stats.CommandsFailed.inc();
  if (Status == CommandStatus::Exited) {
    remove(Id);
    Stats.SessionsClosed.inc();
    return ExecStatus::Ended;
  }
  return ExecStatus::Ok;
}

SessionManager::ExecStatus
SessionManager::loadProgram(uint64_t Id, const std::string &Text,
                            std::string &Output, bool &LoadOk) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    if (S->Ended)
      return ExecStatus::NoSuchSession;
    std::string JErr;
    if (!journalAppend(*S, {JournalRecord::Kind::Load, Text}, JErr)) {
      Output = "error: journal: " + JErr + "\n";
      LoadOk = false;
      S->LastUsed = Clock::now();
      Stats.CommandsServed.inc();
      Stats.CommandsFailed.inc();
      return ExecStatus::Ok;
    }
    CommandResult R = S->Session.loadProgram(Text);
    LoadOk = R.Status != CommandStatus::Error;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
  }
  Stats.CommandsServed.inc();
  if (!LoadOk)
    Stats.CommandsFailed.inc();
  return ExecStatus::Ok;
}

bool SessionManager::exportBundle(uint64_t Id, const std::string &Dir,
                                  std::string &Error) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S) {
    Error = "no such session";
    return false;
  }
  std::lock_guard<std::mutex> CmdLock(S->CmdMu);
  if (S->Ended) {
    Error = "no such session";
    return false;
  }
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create bundle directory " + Dir + ": " + Ec.message();
    return false;
  }
  // Bundles are self-contained: a by-reference (`ref`) record would point
  // at a directory that does not exist on the machine the bundle migrates
  // to, so the referenced pinball is verified and materialized into the
  // bundle, and the record rewritten as `snap`.
  std::vector<JournalRecord> BundleRecs;
  BundleRecs.reserve(S->History.size());
  std::string SnapSrc;
  for (const JournalRecord &R : S->History) {
    if (R.K == JournalRecord::Kind::Ref) {
      uint64_t WantFp = 0;
      std::string RefDir;
      if (!parseRefPayload(R.Payload, WantFp, RefDir) ||
          PinballRepository::dirFingerprint(RefDir) != WantFp) {
        Error = "referenced pinball " + RefDir +
                " is missing or changed since compaction";
        return false;
      }
      SnapSrc = RefDir;
      BundleRecs.push_back({JournalRecord::Kind::Snap, ""});
      continue;
    }
    if (R.K == JournalRecord::Kind::Snap)
      SnapSrc = S->SnapPath.empty() ? snapshotPath(Id) : S->SnapPath;
    BundleRecs.push_back(R);
  }
  if (!rewriteJournal(Dir + "/journal", BundleRecs, Error))
    return false;
  if (!SnapSrc.empty()) {
    Pinball P;
    std::string PErr;
    if (!P.load(SnapSrc, PErr)) {
      Error = "snapshot pinball: " + PErr;
      return false;
    }
    if (!P.save(Dir + "/pinball", PErr)) {
      Error = "bundle pinball: " + PErr;
      return false;
    }
  }
  return true;
}

bool SessionManager::importBundle(const std::string &Dir, uint64_t &NewId,
                                  std::string &Error) {
  std::vector<JournalRecord> Records;
  bool Torn = false;
  uint64_t Clean = 0;
  if (!readJournal(Dir + "/journal", Records, Torn, Clean, Error))
    return false;
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Id = NextId++;
  }
  auto S = std::make_shared<ManagedSession>(Id, Repo, SliceRepo, SliceOpts,
                                            Stats);
  S->Attached = false;
  std::string BundleSnap = Dir + "/pinball";
  bool HasSnap =
      std::any_of(Records.begin(), Records.end(), [](const JournalRecord &R) {
        return R.K == JournalRecord::Kind::Snap;
      });
  if (durabilityEnabled() && HasSnap) {
    // The snapshot must live next to the new journal for future recovery.
    Pinball P;
    std::string PErr;
    if (!P.load(BundleSnap, PErr)) {
      Error = "bundle pinball: " + PErr;
      return false;
    }
    if (!P.save(snapshotPath(Id), PErr)) {
      Error = "snapshot pinball: " + PErr;
      return false;
    }
  }
  if (HasSnap)
    // Without durability the bundle's own pinball is the only copy; a
    // later drain/export resolves the snapshot through SnapPath, so
    // remember where it lives rather than assuming snapshotPath(Id).
    S->SnapPath = durabilityEnabled() ? snapshotPath(Id) : BundleSnap;
  if (!applyRecords(*S, Records, BundleSnap, Error))
    return false;
  if (durabilityEnabled()) {
    if (!rewriteJournal(journalPath(Id), Records, Error))
      return false;
    S->Journal = std::make_unique<JournalWriter>();
    std::string JErr;
    if (S->Journal->open(journalPath(Id), Durability.Fsync, JErr))
      Stats.SessionsJournaled.inc();
    else
      S->Journal.reset();
  }
  S->History = std::move(Records);
  updateJournalGauge(*S);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Sessions.emplace(Id, std::move(S));
  }
  NewId = Id;
  return true;
}

size_t SessionManager::evictIdle() {
  if (IdleTimeout.count() == 0)
    return 0;
  Clock::time_point Now = Clock::now();
  std::vector<std::shared_ptr<ManagedSession>> Evicted;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      ManagedSession &S = *It->second;
      // A busy session is never evicted: LastUsed may only be read with
      // CmdMu held, and holding it proves no command is in flight.
      if (!S.CmdMu.try_lock()) {
        ++It;
        continue;
      }
      bool Idle = Now - S.LastUsed >= IdleTimeout;
      S.CmdMu.unlock();
      if (Idle) {
        Evicted.push_back(std::move(It->second));
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
  // Eviction is a close, not a crash: the durable state goes with it.
  // Re-taking CmdMu (blocking is fine, Mu is released) closes the window
  // where a verb that grabbed the shared_ptr before the erase could
  // journal against the JournalWriter this drop is destroying.
  for (const std::shared_ptr<ManagedSession> &S : Evicted) {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    S->Ended = true;
    dropDurableState(*S);
  }
  Stats.SessionsEvicted.inc(Evicted.size());
  return Evicted.size();
}
