//===- server/session_manager.cpp - Concurrent debug sessions ----------------===//

#include "server/session_manager.h"

#include "replay/repository.h"
#include "slicing/slice_repository.h"
#include "support/fault_injector.h"

#include <vector>

using namespace drdebug;

/// One resident session: the DebugSession and the mutex that serializes
/// commands against it. Output capture moved into the session itself
/// (CommandResult::Text), so the sink just discards; LastUsed is guarded
/// by CmdMu, Attached by the manager's Mu.
struct SessionManager::ManagedSession {
  ManagedSession(uint64_t Id, PinballRepository &Repo,
                 SliceSessionRepository &SliceRepo,
                 const SliceSessionOptions &SliceOpts, ServerStats &Stats)
      : Id(Id), Session([](const std::string &) {}) {
    Session.setPinballRepository(&Repo);
    Session.setSliceRepository(&SliceRepo);
    Session.setSliceOptions(SliceOpts);
    Session.setDivergenceCounter(&Stats.DivergencesDetected);
    LastUsed = Clock::now();
  }

  const uint64_t Id;
  std::mutex CmdMu;
  DebugSession Session;
  Clock::time_point LastUsed;
  bool Attached = true;
};

SessionManager::SessionManager(PinballRepository &Repo,
                               SliceSessionRepository &SliceRepo,
                               ServerStats &Stats,
                               std::chrono::milliseconds IdleTimeout,
                               SliceSessionOptions SliceOpts)
    : Repo(Repo), SliceRepo(SliceRepo), Stats(Stats), IdleTimeout(IdleTimeout),
      SliceOpts(SliceOpts) {}

uint64_t SessionManager::create() {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Id = NextId++;
  Sessions.emplace(Id, std::make_shared<ManagedSession>(Id, Repo, SliceRepo,
                                                        SliceOpts, Stats));
  Stats.SessionsCreated.inc();
  return Id;
}

bool SessionManager::attach(uint64_t Id, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    Error = "no such session";
    return false;
  }
  if (It->second->Attached) {
    Error = "session is attached by another client";
    return false;
  }
  It->second->Attached = true;
  return true;
}

bool SessionManager::detach(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  It->second->Attached = false;
  return true;
}

bool SessionManager::close(uint64_t Id) {
  std::shared_ptr<ManagedSession> Doomed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Sessions.find(Id);
    if (It == Sessions.end())
      return false;
    Doomed = std::move(It->second);
    Sessions.erase(It);
  }
  // Let any in-flight command drain before destruction.
  std::lock_guard<std::mutex> CmdLock(Doomed->CmdMu);
  Stats.SessionsClosed.inc();
  return true;
}

bool SessionManager::exists(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.count(Id) != 0;
}

size_t SessionManager::activeCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sessions.size();
}

std::shared_ptr<SessionManager::ManagedSession>
SessionManager::find(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second;
}

void SessionManager::remove(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sessions.erase(Id);
}

SessionManager::ExecStatus
SessionManager::execute(uint64_t Id, const std::string &Line,
                        std::string &Output) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  CommandStatus Status;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    // Deterministic slow-command hook: lets the deadline tests make a verb
    // overrun its budget without depending on machine speed.
    FaultInjector::global().maybeDelay("session.execute");
    CommandResult R = S->Session.executeCommand(Line);
    Status = R.Status;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
  }
  Stats.CommandsServed.inc();
  if (Status == CommandStatus::Error)
    Stats.CommandsFailed.inc();
  if (Status == CommandStatus::Exited) {
    remove(Id);
    Stats.SessionsClosed.inc();
    return ExecStatus::Ended;
  }
  return ExecStatus::Ok;
}

SessionManager::ExecStatus
SessionManager::loadProgram(uint64_t Id, const std::string &Text,
                            std::string &Output, bool &LoadOk) {
  std::shared_ptr<ManagedSession> S = find(Id);
  if (!S)
    return ExecStatus::NoSuchSession;
  {
    std::lock_guard<std::mutex> CmdLock(S->CmdMu);
    CommandResult R = S->Session.loadProgram(Text);
    LoadOk = R.Status != CommandStatus::Error;
    Output = std::move(R.Text);
    S->LastUsed = Clock::now();
  }
  Stats.CommandsServed.inc();
  if (!LoadOk)
    Stats.CommandsFailed.inc();
  return ExecStatus::Ok;
}

size_t SessionManager::evictIdle() {
  if (IdleTimeout.count() == 0)
    return 0;
  Clock::time_point Now = Clock::now();
  std::vector<std::shared_ptr<ManagedSession>> Evicted;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      ManagedSession &S = *It->second;
      // A busy session is never evicted: LastUsed may only be read with
      // CmdMu held, and holding it proves no command is in flight.
      if (!S.CmdMu.try_lock()) {
        ++It;
        continue;
      }
      bool Idle = Now - S.LastUsed >= IdleTimeout;
      S.CmdMu.unlock();
      if (Idle) {
        Evicted.push_back(std::move(It->second));
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
  Stats.SessionsEvicted.inc(Evicted.size());
  return Evicted.size();
}
