//===- server/server.cpp - drdebugd: the remote debug server -----------------===//

#include "server/server.h"

#include "debugger/commands.h"
#include "server/protocol.h"
#include "server/verbs.h"
#include "support/fault_injector.h"
#include "support/stopwatch.h"
#include "support/tracing.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace drdebug;

namespace mn = drdebug::metricnames;

//===----------------------------------------------------------------------===//
// DebugServer
//===----------------------------------------------------------------------===//

namespace {

/// Session tunables derived from the server config.
SliceSessionOptions sliceOptionsFor(const ServerConfig &Cfg) {
  SliceSessionOptions SO;
  SO.PrepareThreads = Cfg.SlicePrepareThreads;
  return SO;
}

} // namespace

DebugServer::DebugServer(ServerConfig CfgIn)
    : Cfg(CfgIn), SliceRepo(Cfg.SliceCacheEntries), Stats(Registry),
      Mgr(Repo, SliceRepo, Stats, Cfg.IdleTimeout, sliceOptionsFor(Cfg)),
      Pool(Cfg.Workers) {
  Repo.setVerify(Cfg.VerifyPinballs);
  if (!Cfg.JournalDir.empty()) {
    DurabilityOptions DO;
    DO.JournalDir = Cfg.JournalDir;
    DO.Fsync =
        Cfg.JournalFsyncEach ? JournalFsync::EachRecord : JournalFsync::None;
    DO.SnapshotEvery = Cfg.SnapshotEvery;
    DO.CompactMinBytes = Cfg.CompactMinBytes;
    std::string DErr;
    if (Mgr.configureDurability(DO, DErr)) {
      // Crash recovery: whatever journals the previous incarnation left
      // behind become resident (detached) sessions again.
      trace::TraceSpan Span("server.recover", "server");
      Mgr.recover();
    }
  }
  // Values owned by the manager and the two caches are exposed as callback
  // metrics: one source of truth, sampled at scrape/stats time.
  using metrics::MetricType;
  Registry.registerCallback(
      mn::ServerSessionsActive, MetricType::CallbackGauge,
      [this] { return static_cast<int64_t>(Mgr.activeCount()); }, {},
      "Resident debug sessions");
  Registry.registerCallback(
      mn::ServerPinballsCached, MetricType::CallbackGauge,
      [this] { return static_cast<int64_t>(Repo.cachedCount()); }, {},
      "Pinballs resident in the shared repository");
  Registry.registerCallback(
      mn::ServerPinballCacheHits, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(Repo.hits()); }, {},
      "Pinball repository cache hits");
  Registry.registerCallback(
      mn::ServerPinballCacheMisses, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(Repo.misses()); }, {},
      "Pinball repository cache misses");
  Registry.registerCallback(
      mn::ServerPinballIntegrityFailures, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(Repo.integrityFailures()); }, {},
      "Pinball loads rejected by manifest verification");
  Registry.registerCallback(
      mn::ServerSlicesCached, MetricType::CallbackGauge,
      [this] { return static_cast<int64_t>(SliceRepo.cachedCount()); }, {},
      "Prepared slice sessions resident in the cache");
  Registry.registerCallback(
      mn::ServerSliceCacheHits, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.hits()); }, {},
      "Slice-session cache hits");
  Registry.registerCallback(
      mn::ServerSliceCacheMisses, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.misses()); }, {},
      "Slice-session cache misses");
  Registry.registerCallback(
      mn::ServerSliceCacheEvicted, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.evicted()); }, {},
      "Slice-session cache evictions");
  Registry.registerCallback(
      mn::ServerSliceIndexHits, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.indexHits()); }, {},
      "Slice sessions reconstructed from the on-disk index");
  Registry.registerCallback(
      mn::ServerSliceIndexWrites, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.indexWrites()); }, {},
      "On-disk slice indexes written after a full prepare");
  Registry.registerCallback(
      mn::ServerSliceIndexLoadFailures, MetricType::CallbackCounter,
      [this] { return static_cast<int64_t>(SliceRepo.indexLoadFailures()); },
      {}, "On-disk slice indexes rejected (fell back to a full prepare)");
  if (Cfg.JanitorPeriod.count() > 0) {
    Janitor = std::thread([this] {
      std::unique_lock<std::mutex> Lock(JanitorMu);
      while (!JanitorCv.wait_for(Lock, Cfg.JanitorPeriod,
                                 [this] { return JanitorStop; })) {
        Mgr.evictIdle();
        SliceRepo.evictIdle(Cfg.IdleTimeout);
      }
    });
  }
}

DebugServer::~DebugServer() {
  if (Janitor.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(JanitorMu);
      JanitorStop = true;
    }
    JanitorCv.notify_all();
    Janitor.join();
  }
}

void DebugServer::serve(Transport &T) {
  FrameBuffer FB;
  std::set<uint64_t> Attached;
  std::string Bytes;
  bool Open = true;
  // At-most-once execution under client retries: remember the last few
  // responses by sequence number, so a request retransmitted because its
  // *response* was lost or damaged is answered from here instead of being
  // executed twice. One serve thread processes this connection's frames
  // serially, so a retransmit can never race its original.
  constexpr size_t DedupCapacity = 32;
  std::unordered_map<uint64_t, std::string> DedupCache;
  std::deque<uint64_t> DedupOrder;
  while (Open && T.recv(Bytes)) {
    FB.append(Bytes);
    Bytes.clear();
    std::string Body;
    for (;;) {
      FrameBuffer::Poll P = FB.poll(Body);
      if (P == FrameBuffer::Poll::None)
        break;
      if (P != FrameBuffer::Poll::Frame) {
        Stats.FramesMalformed.inc();
        Stats.ErrorsReturned.inc();
        WireError E = P == FrameBuffer::Poll::BadChecksum
                          ? WireError::BadChecksum
                          : WireError::Malformed;
        T.send(encodeFrame(errBody(0, E, wireErrorName(E))));
        continue;
      }
      uint64_t Seq = 0;
      bool HasSeq = (std::istringstream(Body) >> Seq) && Seq != 0;
      if (HasSeq) {
        auto It = DedupCache.find(Seq);
        if (It != DedupCache.end()) {
          Stats.RetriesDeduped.inc();
          T.send(encodeFrame(It->second));
          continue;
        }
      }
      bool Cacheable = true;
      std::string Resp = handleBody(Body, Attached, Cacheable);
      if (HasSeq && Cacheable) {
        if (DedupOrder.size() >= DedupCapacity) {
          DedupCache.erase(DedupOrder.front());
          DedupOrder.pop_front();
        }
        DedupCache.emplace(Seq, Resp);
        DedupOrder.push_back(Seq);
      }
      T.send(encodeFrame(Resp));
      if (shutdownRequested()) {
        Open = false;
        break;
      }
    }
  }
  for (uint64_t Id : Attached)
    Mgr.detach(Id);
}

std::string DebugServer::handleBody(const std::string &Body,
                                    std::set<uint64_t> &Attached,
                                    bool &Cacheable) {
  std::istringstream IS(Body);
  uint64_t Seq = 0;
  std::string Verb;
  if (!(IS >> Seq >> Verb)) {
    Stats.ErrorsReturned.inc();
    return errBody(0, WireError::Malformed, "missing sequence number or verb");
  }
  // Registry label lookup (the verbIndex() linear scan is gone). Unknown
  // verbs get no handle: they are not attributed to any verb, as before.
  ServerStats::VerbHandle *VH = Stats.verb(Verb);
  std::optional<trace::TraceSpan> Span;
  if (VH)
    Span.emplace(VH->Name, "server");
  Stopwatch VerbTimer;
  std::string Resp = dispatchVerb(Seq, Verb, IS, Attached, Cacheable);
  if (VH) {
    VH->Count.inc();
    VH->LatencyUs.record(static_cast<uint64_t>(VerbTimer.seconds() * 1e6));
  }
  return Resp;
}

std::string DebugServer::dispatchVerb(uint64_t Seq, const std::string &Verb,
                                      std::istringstream &IS,
                                      std::set<uint64_t> &Attached,
                                      bool &Cacheable) {
  auto Err = [&](WireError E, const std::string &Msg) {
    Stats.ErrorsReturned.inc();
    return errBody(Seq, E, Msg);
  };
  auto RestOf = [&IS]() {
    std::string Rest;
    std::getline(IS, Rest);
    if (!Rest.empty() && Rest.front() == ' ')
      Rest.erase(0, 1);
    return Rest;
  };

  // The verb registry is the admission gate: existence and the draining
  // policy are table lookups, not per-verb special cases. The per-verb
  // behavior below still needs a branch each, but a verb missing from the
  // registry no longer half-exists (and the drift test asserts the
  // converse: every registry row dispatches).
  const VerbInfo *VI = findVerb(Verb);
  if (!VI)
    return Err(WireError::UnknownVerb, "unknown verb '" + Verb + "'");
  if (VI->RefuseWhenDraining && draining())
    return Err(WireError::Draining, "server is draining");

  if (Verb == "hello")
    return okBody(Seq, helloPayload("drdebugd", DrDebugVersion));

  if (Verb == "help")
    return okBody(Seq, renderHelpPayload());

  if (Verb == "open") {
    uint64_t Id = Mgr.create();
    Attached.insert(Id);
    return okBody(Seq, "sid " + std::to_string(Id));
  }

  if (Verb == "attach" || Verb == "detach" || Verb == "close") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments, "usage: " + Verb + " <sid>");
    if (Verb == "attach") {
      std::string Why;
      if (!Mgr.attach(Sid, Why))
        return Err(Mgr.exists(Sid) ? WireError::SessionFailed
                                   : WireError::NoSuchSession,
                   Why);
      Attached.insert(Sid);
      return okBody(Seq, "sid " + std::to_string(Sid));
    }
    if (Verb == "detach") {
      if (!Mgr.detach(Sid))
        return Err(WireError::NoSuchSession, "no such session");
      Attached.erase(Sid);
      return okBody(Seq, "");
    }
    if (!Mgr.close(Sid))
      return Err(WireError::NoSuchSession, "no such session");
    Attached.erase(Sid);
    return okBody(Seq, "");
  }

  if (Verb == "load" || Verb == "cmd") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments,
                 "usage: " + Verb + " <sid> <text>");
    return runSessionJob(Seq, Verb, Sid, unescapeText(RestOf()),
                         /*IsLoad=*/Verb == "load", Attached, Cacheable);
  }

  // Reverse-execution verbs: first-class wire names for the time-travel
  // commands, so remote front ends don't have to know the session command
  // language. Each translates to its debugger command line and runs through
  // the same worker-pool/deadline path as `cmd`.
  if (Verb == "rstep" || Verb == "rcont" || Verb == "rnext" ||
      Verb == "rwatch" || Verb == "rpos") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments, "usage: " + Verb + " <sid> ...");
    std::string Line;
    if (Verb == "rstep") {
      uint64_t N = 0;
      Line = IS >> N ? "reverse-stepi " + std::to_string(N) : "reverse-stepi";
    } else if (Verb == "rcont") {
      Line = "reverse-continue";
    } else if (Verb == "rnext") {
      Line = "reverse-next";
    } else if (Verb == "rwatch") {
      std::string Global;
      if (!(IS >> Global))
        return Err(WireError::BadArguments, "usage: rwatch <sid> <global>");
      Line = "reverse-watch " + Global;
    } else {
      Line = "replay-position";
    }
    return runSessionJob(Seq, Verb, Sid, Line, /*IsLoad=*/false, Attached,
                         Cacheable);
  }

  // Omniscient-query verbs: wire names for the def-use-index queries, same
  // translate-and-run-through-the-pool shape as the reverse verbs.
  if (Verb == "lastwrite" || Verb == "valuesof" || Verb == "readersof") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments, "usage: " + Verb + " <sid> ...");
    std::string Line;
    if (Verb == "readersof") {
      uint64_t Pos = 0;
      if (!(IS >> Pos))
        return Err(WireError::BadArguments, "usage: readersof <sid> <pos>");
      Line = "readersof " + std::to_string(Pos);
    } else {
      std::string Loc;
      if (!(IS >> Loc))
        return Err(WireError::BadArguments,
                   "usage: " + Verb + " <sid> <loc> ...");
      uint64_t N = 0;
      Line = Verb + " " + Loc;
      if (IS >> N)
        Line += " " + std::to_string(N);
    }
    return runSessionJob(Seq, Verb, Sid, Line, /*IsLoad=*/false, Attached,
                         Cacheable);
  }

  // Flight-recorder verbs: wire names for the always-on recorder, same
  // translate-and-run-through-the-pool shape as the reverse verbs.
  if (Verb == "rattach" || Verb == "rstatus" || Verb == "rdump") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments, "usage: " + Verb + " <sid> ...");
    std::string Line;
    if (Verb == "rattach") {
      uint64_t Seed = 0;
      Line = IS >> Seed ? "record attach " + std::to_string(Seed)
                        : "record attach";
    } else if (Verb == "rstatus") {
      Line = "record status";
    } else {
      std::string Dir = unescapeText(RestOf());
      Line = Dir.empty() ? "record dump" : "record dump " + Dir;
    }
    return runSessionJob(Seq, Verb, Sid, Line, /*IsLoad=*/false, Attached,
                         Cacheable);
  }

  if (Verb == "drain") {
    std::string Dir = unescapeText(RestOf());
    return okBody(Seq, drain(Dir));
  }

  if (Verb == "import") {
    std::string Dir = unescapeText(RestOf());
    if (Dir.empty())
      return Err(WireError::BadArguments, "usage: import <bundle-dir>");
    uint64_t NewId = 0;
    std::string Why;
    if (!Mgr.importBundle(Dir, NewId, Why))
      return Err(WireError::SessionFailed, Why);
    return okBody(Seq, "sid " + std::to_string(NewId));
  }

  if (Verb == "faults")
    return okBody(Seq, FaultInjector::global().describe());

  if (Verb == "stats")
    return okBody(Seq, statsReport());

  if (Verb == "metrics")
    return okBody(Seq, metricsReport());

  if (Verb == "evict") {
    // The reply counts evicted *sessions* (stable wire contract); the
    // slice cache is trimmed on the same sweep and reported via stats.
    size_t N = Mgr.evictIdle();
    SliceRepo.evictIdle(Cfg.IdleTimeout);
    return okBody(Seq, "evicted " + std::to_string(N));
  }

  if (Verb == "shutdown") {
    Shutdown.store(true, std::memory_order_release);
    return okBody(Seq, "shutting down");
  }

  // Registered in the verb registry but not handled above — a drift the
  // registry dispatch test turns into a failure before a release does.
  return Err(WireError::UnknownVerb,
             "verb '" + Verb + "' is registered but unimplemented");
}

std::string DebugServer::runSessionJob(uint64_t Seq, const std::string &Verb,
                                       uint64_t Sid, const std::string &Text,
                                       bool IsLoad,
                                       std::set<uint64_t> &Attached,
                                       bool &Cacheable) {
  auto Err = [&](WireError E, const std::string &Msg) {
    Stats.ErrorsReturned.inc();
    return errBody(Seq, E, Msg);
  };
  // A quarantined session still has a deadline-overrun command wedged in
  // it; queueing more work behind it would tie up another worker. Fail
  // fast until the overdue command completes.
  if (Mgr.isQuarantined(Sid))
    return Err(WireError::SessionFailed,
               "session " + std::to_string(Sid) +
                   " is quarantined (a command overran its deadline and is "
                   "still running)");
  // Admission control: shed rather than queue without bound. The reply is
  // transient and carries a backoff hint the client honors; it must never
  // enter the dedup cache, or the retransmit would replay the rejection
  // instead of re-trying admission.
  size_t Depth = JobsInFlight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Cfg.AdmissionMaxQueue != 0 && Depth > Cfg.AdmissionMaxQueue) {
    JobsInFlight.fetch_sub(1, std::memory_order_acq_rel);
    Stats.AdmissionRejected.inc();
    Cacheable = false;
    uint64_t Hint = std::min<uint64_t>(
        250, 25 * static_cast<uint64_t>(Depth - Cfg.AdmissionMaxQueue));
    return Err(WireError::Overloaded,
               "server overloaded (" + std::to_string(Depth - 1) +
                   " verbs in flight); retry-after-ms " +
                   std::to_string(Hint));
  }
  // The job owns its state on the heap: when the per-verb deadline fires
  // this thread returns an error while the job may still be running, so
  // nothing the job touches can live on this stack frame.
  struct CmdJob {
    std::string Output;
    SessionManager::ExecStatus Status =
        SessionManager::ExecStatus::NoSuchSession;
    bool LoadOk = true;
    std::atomic<bool> TimedOut{false};
    std::atomic<bool> Completed{false};
    std::atomic<bool> OverdueSettled{false};
  };
  auto Job = std::make_shared<CmdJob>();
  Stopwatch SW;
  // Run the session command on the worker pool; this connection thread
  // just waits, so W workers bound how many sessions execute at once.
  // SW doubles as the queue-wait clock: the gap between submission and
  // the job's first instruction is the server-side schedule wait.
  std::future<void> Fut = Pool.async([this, Job, IsLoad, Sid, Text, SW] {
    Stats.QueueWaitUs.record(static_cast<uint64_t>(SW.seconds() * 1e6));
    if (IsLoad)
      Job->Status = Mgr.loadProgram(Sid, Text, Job->Output, Job->LoadOk);
    else
      Job->Status = Mgr.execute(Sid, Text, Job->Output);
    JobsInFlight.fetch_sub(1, std::memory_order_acq_rel);
    Job->Completed.store(true, std::memory_order_release);
    // If the deadline fired while we ran, settle the watchdog gauge and
    // drop this job's quarantine count (exactly one of us — this job or
    // the dispatcher — does so). The quarantine itself only lifts once
    // every overdue job on the session has settled.
    if (Job->TimedOut.load(std::memory_order_acquire) &&
        !Job->OverdueSettled.exchange(true)) {
      Stats.OverdueJobs.sub();
      Mgr.unquarantine(Sid);
    }
  });
  if (Cfg.CmdDeadline.count() > 0 &&
      Fut.wait_for(Cfg.CmdDeadline) == std::future_status::timeout) {
    Stats.DeadlineTimeouts.inc();
    Stats.OverdueJobs.add();
    // Quarantine the session before publishing the timeout: new verbs for
    // it fail fast instead of wedging more workers behind CmdMu. Counted,
    // not flagged: two overlapping overruns keep the session quarantined
    // until the *last* overdue command settles.
    Mgr.quarantine(Sid);
    Job->TimedOut.store(true, std::memory_order_release);
    if (Job->Completed.load(std::memory_order_acquire) &&
        !Job->OverdueSettled.exchange(true)) {
      Stats.OverdueJobs.sub();
      Mgr.unquarantine(Sid);
    }
    return Err(WireError::Timeout,
               Verb + " exceeded the " +
                   std::to_string(Cfg.CmdDeadline.count()) + "ms deadline");
  }
  Fut.wait();
  Stats.CmdLatencyUs.record(static_cast<uint64_t>(SW.seconds() * 1e6));
  if (Job->Status == SessionManager::ExecStatus::NoSuchSession)
    return Err(WireError::NoSuchSession, "no such session");
  if (Job->Status == SessionManager::ExecStatus::Ended)
    Attached.erase(Sid);
  if (IsLoad && !Job->LoadOk)
    return Err(WireError::SessionFailed, Job->Output);
  return okBody(Seq, Job->Output);
}

std::string DebugServer::drain(const std::string &BundleDir) {
  trace::TraceSpan Span("server.drain", "server");
  Draining.store(true, std::memory_order_release);
  // In-flight session verbs finish under the drain deadline; new ones are
  // already being refused with `err draining`.
  auto Deadline = std::chrono::steady_clock::now() + Cfg.DrainDeadline;
  while (JobsInFlight.load(std::memory_order_acquire) != 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::ostringstream OS;
  size_t Remaining = JobsInFlight.load(std::memory_order_acquire);
  if (Remaining)
    OS << "warning: " << Remaining
       << " verbs still in flight past the drain deadline\n";
  size_t Exported = 0, Failed = 0;
  if (!BundleDir.empty()) {
    for (uint64_t Id : Mgr.ids()) {
      if (Mgr.isQuarantined(Id)) {
        // A wedged command still owns the session's command mutex; an
        // export would block behind it indefinitely.
        OS << "skipped session " << Id << " (quarantined)\n";
        ++Failed;
        continue;
      }
      std::string Dir = BundleDir + "/session-" + std::to_string(Id);
      std::string Why;
      if (Mgr.exportBundle(Id, Dir, Why)) {
        OS << "exported session " << Id << " -> " << Dir << "\n";
        ++Exported;
      } else {
        OS << "export of session " << Id << " failed: " << Why << "\n";
        ++Failed;
      }
    }
  }
  OS << "drained " << Exported << " bundles";
  if (Failed)
    OS << " (" << Failed << " failed)";
  return OS.str();
}

namespace {

/// The legacy `stats`-verb alias map: each old key, in its original output
/// order, renders the value of a registry metric. Keeping the old names
/// (and ordering) here is what lets PR-1/PR-3 transcripts and tests keep
/// passing on top of the redesigned backend.
struct LegacyStatAlias {
  const char *Key;    ///< the key the `stats` verb has always emitted
  const char *Metric; ///< the registry family it now reads from
};

constexpr LegacyStatAlias kLegacyStatAliases[] = {
    {"sessions.created", mn::ServerSessionsCreated},
    {"sessions.active", mn::ServerSessionsActive},
    {"sessions.closed", mn::ServerSessionsClosed},
    {"sessions.evicted", mn::ServerSessionsEvicted},
    {"commands.served", mn::ServerCommandsServed},
    {"frames.malformed", mn::ServerFramesMalformed},
    {"errors.returned", mn::ServerErrorsReturned},
    {"pinballs.cached", mn::ServerPinballsCached},
    {"pinballs.cache_hits", mn::ServerPinballCacheHits},
    {"pinballs.cache_misses", mn::ServerPinballCacheMisses},
    {"integrity.pinball_failures", mn::ServerPinballIntegrityFailures},
    {"integrity.divergences", mn::ServerDivergences},
    {"retries.deduped", mn::ServerRetriesDeduped},
    {"deadline.timeouts", mn::ServerDeadlineTimeouts},
    {"watchdog.overdue", mn::ServerOverdueJobs},
    {"slices.cached", mn::ServerSlicesCached},
    {"slices.cache_hits", mn::ServerSliceCacheHits},
    {"slices.cache_misses", mn::ServerSliceCacheMisses},
    {"slices.evicted", mn::ServerSliceCacheEvicted},
    {"slices.index_hits", mn::ServerSliceIndexHits},
    {"slices.index_writes", mn::ServerSliceIndexWrites},
    {"slices.index_load_failures", mn::ServerSliceIndexLoadFailures},
    {"durability.sessions_recovered", mn::ServerSessionsRecovered},
    {"durability.sessions_journaled", mn::ServerSessionsJournaled},
    {"durability.journal_bytes", mn::ServerJournalBytes},
    {"durability.compactions", mn::ServerJournalCompactions},
    {"admission.rejected", mn::ServerAdmissionRejected},
    {"quarantine.sessions", mn::ServerSessionsQuarantined},
};

} // namespace

std::string DebugServer::statsReport() const {
  std::ostringstream OS;
  OS << "server.version " << DrDebugVersion << "\n"
     << "protocol.version " << ProtocolVersion << "\n";
  for (const LegacyStatAlias &A : kLegacyStatAliases)
    OS << A.Key << " " << Registry.sampleValue(A.Metric) << "\n";
  OS << "latency.cmd_us.count " << Stats.CmdLatencyUs.total() << "\n"
     << "latency.cmd_us.p50 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.50)
     << "\n"
     << "latency.cmd_us.p90 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.90)
     << "\n"
     << "latency.cmd_us.p99 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.99)
     << "\n"
     << Stats.CmdLatencyUs.report("latency.cmd_us");
  for (const VerbInfo &V : verbRegistry()) {
    const ServerStats::VerbHandle *VH = Stats.verb(V.Name);
    uint64_t N = VH->Count.value();
    if (N == 0)
      continue;
    OS << "verb." << V.Name << ".count " << N << "\n"
       << "verb." << V.Name << ".us.p50 "
       << VH->LatencyUs.quantileUpperBoundUs(0.50) << "\n"
       << "verb." << V.Name << ".us.p99 "
       << VH->LatencyUs.quantileUpperBoundUs(0.99) << "\n";
  }
  // Flight-recorder state lives in the process-global registry (recorders
  // belong to sessions, not to one server); sampleValue returns 0 when no
  // recorder ever registered, so the keys are always present.
  auto &Global = metrics::MetricsRegistry::global();
  OS << "flight.epochs_retained " << Global.sampleValue(mn::FlightEpochsRetained)
     << "\n"
     << "flight.epochs_gc " << Global.sampleValue(mn::FlightEpochsGc) << "\n"
     << "flight.ring_bytes " << Global.sampleValue(mn::FlightRingBytes) << "\n"
     << "flight.dumps " << Global.sampleValue(mn::FlightDumps) << "\n";
  FaultInjector &FI = FaultInjector::global();
  OS << "faults.injected.total " << FI.totalFired() << "\n";
  for (const auto &[SiteName, Fired] : FI.firedCounts())
    OS << "faults.injected." << SiteName << " " << Fired << "\n";
  return OS.str();
}

std::string DebugServer::metricsReport() const {
  // Per-server registry first, then the process-global library metrics
  // (replay, slicing, pinball I/O). Family names are disjoint, so the
  // concatenation is one valid exposition document.
  return Registry.renderPrometheus() +
         metrics::MetricsRegistry::global().renderPrometheus();
}
