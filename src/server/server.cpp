//===- server/server.cpp - drdebugd: the remote debug server -----------------===//

#include "server/server.h"

#include "debugger/commands.h"
#include "server/protocol.h"
#include "support/stopwatch.h"

#include <sstream>

using namespace drdebug;

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

WorkerPool::WorkerPool(unsigned N) {
  if (N == 0)
    N = 1;
  Threads.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

std::future<std::string> WorkerPool::submit(std::function<std::string()> Fn) {
  std::packaged_task<std::string()> Task(std::move(Fn));
  std::future<std::string> Fut = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  Cv.notify_one();
  return Fut;
}

void WorkerPool::workerMain() {
  for (;;) {
    std::packaged_task<std::string()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

//===----------------------------------------------------------------------===//
// DebugServer
//===----------------------------------------------------------------------===//

DebugServer::DebugServer(ServerConfig CfgIn)
    : Cfg(CfgIn), Mgr(Repo, Stats, Cfg.IdleTimeout), Pool(Cfg.Workers) {
  if (Cfg.JanitorPeriod.count() > 0) {
    Janitor = std::thread([this] {
      std::unique_lock<std::mutex> Lock(JanitorMu);
      while (!JanitorCv.wait_for(Lock, Cfg.JanitorPeriod,
                                 [this] { return JanitorStop; }))
        Mgr.evictIdle();
    });
  }
}

DebugServer::~DebugServer() {
  if (Janitor.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(JanitorMu);
      JanitorStop = true;
    }
    JanitorCv.notify_all();
    Janitor.join();
  }
}

void DebugServer::serve(Transport &T) {
  FrameBuffer FB;
  std::set<uint64_t> Attached;
  std::string Bytes;
  bool Open = true;
  while (Open && T.recv(Bytes)) {
    FB.append(Bytes);
    Bytes.clear();
    std::string Body;
    for (;;) {
      FrameBuffer::Poll P = FB.poll(Body);
      if (P == FrameBuffer::Poll::None)
        break;
      if (P != FrameBuffer::Poll::Frame) {
        Stats.FramesMalformed.fetch_add(1, std::memory_order_relaxed);
        Stats.ErrorsReturned.fetch_add(1, std::memory_order_relaxed);
        WireError E = P == FrameBuffer::Poll::BadChecksum
                          ? WireError::BadChecksum
                          : WireError::Malformed;
        T.send(encodeFrame(errBody(0, E, wireErrorName(E))));
        continue;
      }
      T.send(encodeFrame(handleBody(Body, Attached)));
      if (shutdownRequested()) {
        Open = false;
        break;
      }
    }
  }
  for (uint64_t Id : Attached)
    Mgr.detach(Id);
}

std::string DebugServer::handleBody(const std::string &Body,
                                    std::set<uint64_t> &Attached) {
  std::istringstream IS(Body);
  uint64_t Seq = 0;
  std::string Verb;
  if (!(IS >> Seq >> Verb)) {
    Stats.ErrorsReturned.fetch_add(1, std::memory_order_relaxed);
    return errBody(0, WireError::Malformed, "missing sequence number or verb");
  }
  auto Err = [&](WireError E, const std::string &Msg) {
    Stats.ErrorsReturned.fetch_add(1, std::memory_order_relaxed);
    return errBody(Seq, E, Msg);
  };
  auto RestOf = [&IS]() {
    std::string Rest;
    std::getline(IS, Rest);
    if (!Rest.empty() && Rest.front() == ' ')
      Rest.erase(0, 1);
    return Rest;
  };

  if (Verb == "hello")
    return okBody(Seq, std::string("drdebugd ") + DrDebugVersion + " proto " +
                           std::to_string(ProtocolVersion));

  if (Verb == "open") {
    uint64_t Id = Mgr.create();
    Attached.insert(Id);
    return okBody(Seq, "sid " + std::to_string(Id));
  }

  if (Verb == "attach" || Verb == "detach" || Verb == "close") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments, "usage: " + Verb + " <sid>");
    if (Verb == "attach") {
      std::string Why;
      if (!Mgr.attach(Sid, Why))
        return Err(Mgr.exists(Sid) ? WireError::SessionFailed
                                   : WireError::NoSuchSession,
                   Why);
      Attached.insert(Sid);
      return okBody(Seq, "sid " + std::to_string(Sid));
    }
    if (Verb == "detach") {
      if (!Mgr.detach(Sid))
        return Err(WireError::NoSuchSession, "no such session");
      Attached.erase(Sid);
      return okBody(Seq, "");
    }
    if (!Mgr.close(Sid))
      return Err(WireError::NoSuchSession, "no such session");
    Attached.erase(Sid);
    return okBody(Seq, "");
  }

  if (Verb == "load" || Verb == "cmd") {
    uint64_t Sid = 0;
    if (!(IS >> Sid))
      return Err(WireError::BadArguments,
                 "usage: " + Verb + " <sid> <text>");
    std::string Text = unescapeText(RestOf());
    Stopwatch SW;
    std::string Output;
    SessionManager::ExecStatus Status;
    bool LoadOk = true;
    // Run the session command on the worker pool; this connection thread
    // just waits, so W workers bound how many sessions execute at once.
    std::future<std::string> Fut = Pool.submit([&]() -> std::string {
      std::string Out;
      if (Verb == "load")
        Status = Mgr.loadProgram(Sid, Text, Out, LoadOk);
      else
        Status = Mgr.execute(Sid, Text, Out);
      return Out;
    });
    Output = Fut.get();
    Stats.CmdLatencyUs.record(static_cast<uint64_t>(SW.seconds() * 1e6));
    if (Status == SessionManager::ExecStatus::NoSuchSession)
      return Err(WireError::NoSuchSession, "no such session");
    if (Status == SessionManager::ExecStatus::Ended)
      Attached.erase(Sid);
    if (Verb == "load" && !LoadOk)
      return Err(WireError::SessionFailed, Output);
    return okBody(Seq, Output);
  }

  if (Verb == "stats")
    return okBody(Seq, statsReport());

  if (Verb == "evict")
    return okBody(Seq, "evicted " + std::to_string(Mgr.evictIdle()));

  if (Verb == "shutdown") {
    Shutdown.store(true, std::memory_order_release);
    return okBody(Seq, "shutting down");
  }

  return Err(WireError::UnknownVerb, "unknown verb '" + Verb + "'");
}

std::string DebugServer::statsReport() const {
  std::ostringstream OS;
  OS << "server.version " << DrDebugVersion << "\n"
     << "protocol.version " << ProtocolVersion << "\n"
     << "sessions.created " << Stats.SessionsCreated.load() << "\n"
     << "sessions.active " << Mgr.activeCount() << "\n"
     << "sessions.closed " << Stats.SessionsClosed.load() << "\n"
     << "sessions.evicted " << Stats.SessionsEvicted.load() << "\n"
     << "commands.served " << Stats.CommandsServed.load() << "\n"
     << "frames.malformed " << Stats.FramesMalformed.load() << "\n"
     << "errors.returned " << Stats.ErrorsReturned.load() << "\n"
     << "pinballs.cached " << Repo.cachedCount() << "\n"
     << "pinballs.cache_hits " << Repo.hits() << "\n"
     << "pinballs.cache_misses " << Repo.misses() << "\n"
     << "latency.cmd_us.count " << Stats.CmdLatencyUs.total() << "\n"
     << "latency.cmd_us.p50 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.50)
     << "\n"
     << "latency.cmd_us.p90 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.90)
     << "\n"
     << "latency.cmd_us.p99 " << Stats.CmdLatencyUs.quantileUpperBoundUs(0.99)
     << "\n"
     << Stats.CmdLatencyUs.report("latency.cmd_us");
  return OS.str();
}
