//===- server/transport.h - Byte transports for the server ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream transports the debug server speaks over. Two concrete
/// transports exist: an in-process duplex pipe (deterministic, no OS
/// resources, used by every test and by the in-process benchmarks) and a
/// TCP socket for real remote use. Framing lives one layer up, in
/// server/protocol.h — a Transport only moves bytes.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_TRANSPORT_H
#define DRDEBUG_SERVER_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace drdebug {

/// A blocking, duplex byte stream. Thread-safety: one reader plus one
/// writer may use an endpoint concurrently; multiple concurrent readers
/// (or writers) are not supported.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all of \p Bytes. \returns false once the peer is closed.
  virtual bool send(const std::string &Bytes) = 0;

  /// Blocks for at least one byte; appends what arrived to \p Bytes.
  /// \returns false on end-of-stream (peer closed and buffer drained).
  virtual bool recv(std::string &Bytes) = 0;

  /// Closes this endpoint; unblocks any reader on either side.
  virtual void close() = 0;
};

/// Creates a connected in-process duplex pipe. Bytes sent on one endpoint
/// arrive at the other. Both endpoints may outlive each other.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makePipePair();

/// A TCP server socket. Bind with port 0 for an ephemeral port.
class TcpListener {
public:
  TcpListener();
  ~TcpListener();

  /// Binds and listens on 127.0.0.1:\p Port. \returns false on error.
  bool listen(uint16_t Port, std::string &Error);

  /// The bound port (useful after listening on port 0).
  uint16_t port() const { return BoundPort; }

  /// Accepts one connection; null once the listener is closed.
  std::unique_ptr<Transport> accept();

  /// Closes the listening socket; unblocks a blocked accept(). Safe to
  /// call from a thread other than the accepting one.
  void close();

private:
  std::atomic<int> Fd{-1};
  uint16_t BoundPort = 0;
};

/// Connects to a drdebugd at \p Host:\p Port. \returns null on error.
std::unique_ptr<Transport> tcpConnect(const std::string &Host, uint16_t Port,
                                      std::string &Error);

} // namespace drdebug

#endif // DRDEBUG_SERVER_TRANSPORT_H
