//===- server/transport.h - Byte transports for the server ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream transports the debug server speaks over. Two concrete
/// transports exist: an in-process duplex pipe (deterministic, no OS
/// resources, used by every test and by the in-process benchmarks) and a
/// TCP socket for real remote use. Framing lives one layer up, in
/// server/protocol.h — a Transport only moves bytes.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_TRANSPORT_H
#define DRDEBUG_SERVER_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace drdebug {

/// Outcome of a timed receive.
enum class RecvStatus {
  Data,    ///< at least one byte arrived
  Timeout, ///< the wait expired with nothing received
  Closed,  ///< end-of-stream (peer closed and buffer drained)
};

/// A blocking, duplex byte stream. Thread-safety: one reader plus one
/// writer may use an endpoint concurrently; multiple concurrent readers
/// (or writers) are not supported.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all of \p Bytes. \returns false once the peer is closed.
  virtual bool send(const std::string &Bytes) = 0;

  /// Blocks for at least one byte; appends what arrived to \p Bytes.
  /// \returns false on end-of-stream (peer closed and buffer drained).
  virtual bool recv(std::string &Bytes) = 0;

  /// Like recv() but gives up after \p TimeoutMs milliseconds — the
  /// primitive the retrying client needs to detect a lost response.
  /// \p TimeoutMs of 0 waits forever.
  virtual RecvStatus recvTimed(std::string &Bytes, uint64_t TimeoutMs);

  /// Closes this endpoint; unblocks any reader on either side.
  virtual void close() = 0;
};

/// Creates a connected in-process duplex pipe. Bytes sent on one endpoint
/// arrive at the other. Both endpoints may outlive each other.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makePipePair();

/// A TCP server socket. Bind with port 0 for an ephemeral port.
class TcpListener {
public:
  TcpListener();
  ~TcpListener();

  /// Binds and listens on 127.0.0.1:\p Port. \returns false on error.
  bool listen(uint16_t Port, std::string &Error);

  /// The bound port (useful after listening on port 0).
  uint16_t port() const { return BoundPort; }

  /// Accepts one connection; null once the listener is closed.
  std::unique_ptr<Transport> accept();

  /// Closes the listening socket; unblocks a blocked accept(). Safe to
  /// call from a thread other than the accepting one.
  void close();

private:
  std::atomic<int> Fd{-1};
  uint16_t BoundPort = 0;
};

/// Connects to a drdebugd at \p Host:\p Port. \returns null on error.
std::unique_ptr<Transport> tcpConnect(const std::string &Host, uint16_t Port,
                                      std::string &Error);

/// Wraps \p Inner in a fault-injecting decorator probing the FaultInjector
/// at "<SitePrefix>.send" (ShortWrite drops the whole payload, BitFlip
/// flips one bit, Truncate drops the tail half), "<SitePrefix>.recv"
/// (BitFlip on the newly received bytes), and "<SitePrefix>.latency"
/// (Latency before each send). With no armed sites it forwards verbatim.
std::unique_ptr<Transport> makeFaultyTransport(std::unique_ptr<Transport> Inner,
                                               const std::string &SitePrefix);

} // namespace drdebug

#endif // DRDEBUG_SERVER_TRANSPORT_H
