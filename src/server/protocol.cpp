//===- server/protocol.cpp - drdebugd framed wire protocol -------------------===//

#include "server/protocol.h"

#include "server/verbs.h"

#include <cstdlib>
#include <sstream>

using namespace drdebug;

const char *drdebug::wireErrorName(WireError E) {
  const WireErrorInfo *I = findWireError(static_cast<unsigned>(E));
  return I ? I->Name : "unknown-error";
}

bool drdebug::wireErrorIsTransient(WireError E) {
  const WireErrorInfo *I = findWireError(static_cast<unsigned>(E));
  return I && I->Transient;
}

uint64_t drdebug::parseRetryAfterMs(const std::string &Message) {
  static const std::string Tag = "retry-after-ms ";
  size_t Pos = Message.rfind(Tag);
  if (Pos == std::string::npos)
    return 0;
  return std::strtoull(Message.c_str() + Pos + Tag.size(), nullptr, 10);
}

std::string drdebug::escapeText(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '%')
      Out += "%25";
    else if (C == '$')
      Out += "%24";
    else if (C == '#')
      Out += "%23";
    else if (C == '\n')
      Out += "%0a";
    else if (C == '\r')
      Out += "%0d";
    else
      Out += C;
  }
  return Out;
}

std::string drdebug::unescapeText(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I != Text.size(); ++I) {
    if (Text[I] == '%' && I + 2 < Text.size()) {
      if (Text.compare(I, 3, "%25") == 0) {
        Out += '%';
        I += 2;
        continue;
      }
      if (Text.compare(I, 3, "%24") == 0) {
        Out += '$';
        I += 2;
        continue;
      }
      if (Text.compare(I, 3, "%23") == 0) {
        Out += '#';
        I += 2;
        continue;
      }
      if (Text.compare(I, 3, "%0a") == 0) {
        Out += '\n';
        I += 2;
        continue;
      }
      if (Text.compare(I, 3, "%0d") == 0) {
        Out += '\r';
        I += 2;
        continue;
      }
    }
    Out += Text[I];
  }
  return Out;
}

static unsigned bodyChecksum(const std::string &Body) {
  unsigned Sum = 0;
  for (unsigned char C : Body)
    Sum = (Sum + C) & 0xFF;
  return Sum;
}

std::string drdebug::encodeFrame(const std::string &Body) {
  static const char *Hex = "0123456789abcdef";
  unsigned Sum = bodyChecksum(Body);
  std::string Frame;
  Frame.reserve(Body.size() + 4);
  Frame += '$';
  Frame += Body;
  Frame += '#';
  Frame += Hex[Sum >> 4];
  Frame += Hex[Sum & 0xF];
  return Frame;
}

std::string drdebug::okBody(uint64_t Seq, const std::string &Payload) {
  std::string Body = std::to_string(Seq) + " ok";
  if (!Payload.empty()) {
    Body += ' ';
    Body += escapeText(Payload);
  }
  return Body;
}

std::string drdebug::errBody(uint64_t Seq, WireError E,
                             const std::string &Message) {
  return std::to_string(Seq) + " err " +
         std::to_string(static_cast<unsigned>(E)) + " " +
         (wireErrorIsTransient(E) ? "transient" : "permanent") + " " +
         escapeText(Message);
}

bool drdebug::parseResponseBody(const std::string &Body, uint64_t &Seq,
                                unsigned &Code, std::string &Payload,
                                bool *Transient) {
  std::istringstream IS(Body);
  std::string Status;
  if (Transient)
    *Transient = false;
  if (!(IS >> Seq >> Status))
    return false;
  if (Status == "ok") {
    Code = 0;
    std::string Rest;
    std::getline(IS, Rest);
    if (!Rest.empty() && Rest.front() == ' ')
      Rest.erase(0, 1);
    Payload = unescapeText(Rest);
    return true;
  }
  if (Status == "err") {
    if (!(IS >> Code) || Code == 0)
      return false;
    std::string Rest;
    std::getline(IS, Rest);
    if (!Rest.empty() && Rest.front() == ' ')
      Rest.erase(0, 1);
    // v2 peers prefix the message with a transient/permanent class token;
    // v1 peers do not — derive the class from the code for them.
    bool IsTransient = wireErrorIsTransient(static_cast<WireError>(Code));
    if (Rest.compare(0, 10, "transient ") == 0 || Rest == "transient") {
      IsTransient = true;
      Rest.erase(0, Rest == "transient" ? 9 : 10);
    } else if (Rest.compare(0, 10, "permanent ") == 0 || Rest == "permanent") {
      IsTransient = false;
      Rest.erase(0, Rest == "permanent" ? 9 : 10);
    }
    if (Transient)
      *Transient = IsTransient;
    Payload = unescapeText(Rest);
    return true;
  }
  return false;
}

static int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

FrameBuffer::Poll FrameBuffer::poll(std::string &Body) {
  // Drop any bytes before the next frame start; they are noise.
  size_t Start = Buf.find('$');
  if (Start == std::string::npos) {
    bool HadGarbage = !Buf.empty();
    Buf.clear();
    return HadGarbage ? Poll::Malformed : Poll::None;
  }
  if (Start != 0) {
    Buf.erase(0, Start);
    return Poll::Malformed;
  }
  // Bodies escape '$', so a '$' before the '#' terminator can only be the
  // start of the *next* frame — the current one was truncated in transit.
  // Resync at the inner '$' so one damaged frame doesn't eat its successor.
  size_t Inner = Buf.find('$', 1);
  size_t End = Buf.find('#');
  if (Inner != std::string::npos && Inner < End) {
    Buf.erase(0, Inner);
    return Poll::Malformed;
  }
  if (End == std::string::npos) {
    if (Buf.size() > MaxFrameBytes) {
      Buf.clear();
      return Poll::Malformed;
    }
    return Poll::None;
  }
  if (Buf.size() < End + 3)
    return Poll::None; // checksum digits not arrived yet
  int Hi = hexDigit(Buf[End + 1]);
  int Lo = hexDigit(Buf[End + 2]);
  std::string Candidate = Buf.substr(1, End - 1);
  Buf.erase(0, End + 3);
  if (Hi < 0 || Lo < 0)
    return Poll::Malformed;
  if (static_cast<unsigned>(Hi * 16 + Lo) != bodyChecksum(Candidate))
    return Poll::BadChecksum;
  Body = std::move(Candidate);
  return Poll::Frame;
}
