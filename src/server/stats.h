//===- server/stats.h - Server-level counters -------------------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the server exposes via the `stats` protocol verb: session
/// lifecycle counts, commands served, pinball-cache effectiveness, and a
/// lock-free power-of-two latency histogram for command service times.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_STATS_H
#define DRDEBUG_SERVER_STATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace drdebug {

/// Power-of-two-bucketed latency histogram (microseconds). Bucket I holds
/// samples in [2^I, 2^(I+1)) us; bucket 0 also holds sub-microsecond ones.
class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 24; // up to ~16.8 s

  void record(uint64_t Micros) {
    size_t B = 0;
    while ((1ULL << (B + 1)) <= Micros && B + 1 < NumBuckets)
      ++B;
    Buckets[B].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t total() const {
    uint64_t N = 0;
    for (const auto &B : Buckets)
      N += B.load(std::memory_order_relaxed);
    return N;
  }

  /// Upper bound (us) of the bucket containing the \p Q quantile (0..1).
  uint64_t quantileUpperBoundUs(double Q) const {
    uint64_t N = total();
    if (N == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
    if (Rank >= N)
      Rank = N - 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I != NumBuckets; ++I) {
      Seen += Buckets[I].load(std::memory_order_relaxed);
      if (Seen > Rank)
        return 1ULL << (I + 1);
    }
    return 1ULL << NumBuckets;
  }

  /// One line per non-empty bucket: "latency.cmd_us.le_<bound> <count>".
  std::string report(const char *Prefix) const {
    std::ostringstream OS;
    for (size_t I = 0; I != NumBuckets; ++I) {
      uint64_t C = Buckets[I].load(std::memory_order_relaxed);
      if (C)
        OS << Prefix << ".le_" << (1ULL << (I + 1)) << " " << C << "\n";
    }
    return OS.str();
  }

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// Every verb the protocol knows, in dispatch order. Per-verb counters are
/// indexed by position in this table.
inline constexpr const char *ServerVerbNames[] = {
    "hello", "open",  "attach", "detach", "close",
    "load",  "cmd",   "stats",  "evict",  "shutdown"};
inline constexpr size_t NumServerVerbs =
    sizeof(ServerVerbNames) / sizeof(ServerVerbNames[0]);

/// Index of \p Verb in ServerVerbNames, or -1 for unknown verbs.
inline int verbIndex(const std::string &Verb) {
  for (size_t I = 0; I != NumServerVerbs; ++I)
    if (Verb == ServerVerbNames[I])
      return static_cast<int>(I);
  return -1;
}

/// Per-verb service counters: request count + latency distribution.
struct VerbStats {
  std::atomic<uint64_t> Count{0};
  LatencyHistogram LatencyUs;
};

/// All server-level counters. Every field is independently atomic; the
/// `stats` verb renders them as "key value" lines.
struct ServerStats {
  std::atomic<uint64_t> SessionsCreated{0};
  std::atomic<uint64_t> SessionsClosed{0};
  std::atomic<uint64_t> SessionsEvicted{0};
  std::atomic<uint64_t> CommandsServed{0};
  std::atomic<uint64_t> FramesMalformed{0};
  std::atomic<uint64_t> ErrorsReturned{0};
  /// Replays that stopped on a divergence report (integrity.divergences).
  std::atomic<uint64_t> DivergencesDetected{0};
  /// Verbs cut short by the per-verb deadline (deadline.timeouts).
  std::atomic<uint64_t> DeadlineTimeouts{0};
  /// Duplicate requests answered from the per-connection response cache
  /// instead of re-executing (retries.deduped).
  std::atomic<uint64_t> RetriesDeduped{0};
  /// Gauge: verb jobs past their deadline that are still running
  /// (watchdog.overdue). Incremented when a deadline fires, decremented
  /// when the overdue job finally finishes.
  std::atomic<int64_t> OverdueJobs{0};
  LatencyHistogram CmdLatencyUs;
  std::array<VerbStats, NumServerVerbs> Verbs;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_STATS_H
