//===- server/stats.h - Registry-backed server counters ---------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counters the server exposes via the `stats` and `metrics` protocol
/// verbs. Since the observability redesign these are *handles into a
/// MetricsRegistry* (support/metrics.h), not bespoke atomics: ServerStats
/// registers every counter/gauge/histogram — including one counter and one
/// latency histogram per protocol verb, labelled `verb="<name>"` — and the
/// legacy `stats` rendering in server.cpp re-reads them through the same
/// registry the Prometheus exposition uses. The old bespoke rendering and
/// `verbIndex()`'s linear scan are gone; verb lookup is a registry-shaped
/// label lookup (`ServerStats::verb`).
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_STATS_H
#define DRDEBUG_SERVER_STATS_H

#include "support/metric_names.h"
#include "support/metrics.h"

#include <cstddef>
#include <string>
#include <unordered_map>

namespace drdebug {

/// The legacy histogram type now lives in support/ (generalized, and with
/// the bucket-boundary off-by-one fixed); server code keeps the old name.
using LatencyHistogram = metrics::LatencyHistogram;

/// All server-level counters, as stable handles into one MetricsRegistry.
/// Field names (and `load()` on the handles) match the pre-registry struct
/// so existing call sites read unchanged.
class ServerStats {
public:
  explicit ServerStats(metrics::MetricsRegistry &Reg);

  ServerStats(const ServerStats &) = delete;
  ServerStats &operator=(const ServerStats &) = delete;

  metrics::Counter &SessionsCreated;
  metrics::Counter &SessionsClosed;
  metrics::Counter &SessionsEvicted;
  metrics::Counter &CommandsServed;
  /// Commands whose CommandResult came back with status `error` — the
  /// classification that used to require substring-matching the output.
  metrics::Counter &CommandsFailed;
  metrics::Counter &FramesMalformed;
  metrics::Counter &ErrorsReturned;
  /// Replays that stopped on a divergence report (integrity.divergences).
  metrics::Counter &DivergencesDetected;
  /// Verbs cut short by the per-verb deadline (deadline.timeouts).
  metrics::Counter &DeadlineTimeouts;
  /// Duplicate requests answered from the per-connection response cache
  /// instead of re-executing (retries.deduped).
  metrics::Counter &RetriesDeduped;
  /// Gauge: verb jobs past their deadline that are still running
  /// (watchdog.overdue). Incremented when a deadline fires, decremented
  /// when the overdue job finally finishes.
  metrics::Gauge &OverdueJobs;
  metrics::LatencyHistogram &CmdLatencyUs;
  /// Time a load/cmd job spent queued before a pool worker picked it up —
  /// the server-side schedule-wait.
  metrics::LatencyHistogram &QueueWaitUs;
  // Durability layer (the write-ahead journal + recovery + drain stack).
  /// Sessions rebuilt from their journals at server startup.
  metrics::Counter &SessionsRecovered;
  /// Sessions that got a write-ahead journal (created, recovered, imported).
  metrics::Counter &SessionsJournaled;
  /// Gauge: clean journal bytes currently on disk across all sessions
  /// (grows on append, shrinks on compaction and session close).
  metrics::Gauge &JournalBytes;
  /// Journals rewritten down to a snapshot (pinball ref + replay position).
  metrics::Counter &JournalCompactions;
  /// Verbs shed by admission control with an `overloaded` error.
  metrics::Counter &AdmissionRejected;
  /// Sessions quarantined because a command overran its deadline.
  metrics::Counter &SessionsQuarantined;

  /// Per-verb service handles. `Name` is the canonical (static) verb
  /// string, usable as a trace-span name.
  struct VerbHandle {
    const char *Name;
    metrics::Counter &Count;
    metrics::LatencyHistogram &LatencyUs;
  };

  /// The registry label lookup that replaced verbIndex(): \returns the
  /// handle for \p Verb, or null for unknown verbs. Every verb in the
  /// protocol's verb registry (server/verbs.h) is registered eagerly at
  /// construction, so `metrics` exposition and the drift test see all
  /// verbs even before first use.
  VerbHandle *verb(const std::string &Verb) {
    auto It = Verbs.find(Verb);
    return It == Verbs.end() ? nullptr : &It->second;
  }
  const VerbHandle *verb(const std::string &Verb) const {
    auto It = Verbs.find(Verb);
    return It == Verbs.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, VerbHandle> Verbs;
};

} // namespace drdebug

#endif // DRDEBUG_SERVER_STATS_H
