//===- server/verbs.h - The declarative protocol verb registry --*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the wire protocol's verb set. Every verb
/// is one VerbInfo row: its name, argument schema, reply sketch, mutating
/// flag, routing class (how a fleet gateway forwards it), deadline class,
/// and the protocol version that introduced it. Everything that used to be
/// hand-maintained knowledge spread across the codebase is derived from
/// this table:
///
///   - server dispatch (unknown-verb and draining gates, per-verb metrics)
///   - SessionManager::isMutatingCommand's read-only command word list
///   - the gateway router (drdebug-gw routing + capability negotiation)
///   - ProtocolClient helpers and the `hello` capability payload
///   - the `help` verb, `drdebugd --dump-verbs`, and the docs/SERVER.md
///     verb and error tables (drift-tested against the renderers here)
///
/// The wire error taxonomy lives here too (WireErrorInfo), for the same
/// reason: protocol.cpp's name/class functions are lookups into it, and
/// the docs table is rendered from it.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_SERVER_VERBS_H
#define DRDEBUG_SERVER_VERBS_H

#include "server/protocol.h"

#include <cstddef>
#include <string>
#include <vector>

namespace drdebug {

/// How a fleet gateway (drdebug-gw) forwards a verb.
enum class VerbRouting : unsigned char {
  SessionRouted, ///< first argument is a session id; follows the sid map
  AnyBackend,    ///< no session affinity; the gateway picks a placement
  FanOut,        ///< broadcast to every alive backend, aggregate replies
};

/// Which deadline bounds a verb's execution.
enum class VerbDeadline : unsigned char {
  Inline,    ///< answered on the connection thread; effectively instant
  Command,   ///< runs a session command under ServerConfig::CmdDeadline
  Operation, ///< bounded by its own operation deadline (e.g. drain)
};

/// One protocol verb, declaratively.
struct VerbInfo {
  const char *Name;
  /// Wire argument schema, docs notation ("`<sid> [n]`"; "—" when none).
  const char *Args;
  /// Reply payload sketch for the docs table and the help verb.
  const char *Reply;
  /// True when the verb can change server or session state. The finer
  /// command-level classification (is *this* `cmd` line mutating?) is
  /// isReadOnlyCommandWord below.
  bool Mutating;
  /// True when a draining server refuses the verb with `err draining`.
  bool RefuseWhenDraining;
  VerbRouting Routing;
  VerbDeadline Deadline;
  /// Protocol version that introduced the verb (capability floor for
  /// mixed-version fleets).
  unsigned MinProtoVersion;
};

/// Every verb the protocol knows, in dispatch/stats order.
const std::vector<VerbInfo> &verbRegistry();

/// \returns the registry row for \p Name, or null for unknown verbs.
const VerbInfo *findVerb(const std::string &Name);

const char *verbRoutingName(VerbRouting R);
const char *verbDeadlineName(VerbDeadline D);

/// The comma-joined verb name list the `hello` verb advertises
/// ("hello,help,open,...").
std::string verbListToken();

/// Splits a hello capability token back into verb names.
std::vector<std::string> parseVerbList(const std::string &Token);

/// The `hello` payload: "<server> <version> proto <n> verbs <list>".
std::string helloPayload(const std::string &ServerName,
                         const std::string &Version);

/// The `help` verb payload: one line per verb, rendered from the registry.
std::string renderHelpPayload();

/// True when debugger command word \p Word only inspects session state —
/// the word list behind SessionManager::isMutatingCommand. Conservative:
/// anything not listed counts as mutating (and is journaled).
bool isReadOnlyCommandWord(const std::string &Word);

/// One wire error code, declaratively (name, retry class, meaning).
struct WireErrorInfo {
  WireError Code;
  const char *Name;
  bool Transient;
  const char *Meaning;
};

/// Every error code, ascending.
const std::vector<WireErrorInfo> &wireErrorRegistry();

/// \returns the registry row for \p Code, or null when out of range.
const WireErrorInfo *findWireError(unsigned Code);

/// The docs/SERVER.md verb table, rendered from the registry (the
/// `--dump-verbs` output; the docs drift test compares against this).
std::string renderVerbTableMarkdown();

/// The docs/SERVER.md error table, rendered from wireErrorRegistry().
std::string renderErrorTableMarkdown();

} // namespace drdebug

#endif // DRDEBUG_SERVER_VERBS_H
