//===- server/stats.cpp - Registry-backed server counters --------------------===//

#include "server/stats.h"

#include "server/verbs.h"

using namespace drdebug;

namespace mn = drdebug::metricnames;

ServerStats::ServerStats(metrics::MetricsRegistry &Reg)
    : SessionsCreated(Reg.counter(mn::ServerSessionsCreated, {},
                                  "Sessions created via the open verb")),
      SessionsClosed(
          Reg.counter(mn::ServerSessionsClosed, {}, "Sessions closed")),
      SessionsEvicted(Reg.counter(mn::ServerSessionsEvicted, {},
                                  "Sessions evicted after idling")),
      CommandsServed(Reg.counter(mn::ServerCommandsServed, {},
                                 "Debugger commands executed")),
      CommandsFailed(Reg.counter(mn::ServerCommandsFailed, {},
                                 "Commands whose result status was error")),
      FramesMalformed(Reg.counter(mn::ServerFramesMalformed, {},
                                  "Wire frames dropped as malformed")),
      ErrorsReturned(
          Reg.counter(mn::ServerErrorsReturned, {}, "Error responses sent")),
      DivergencesDetected(Reg.counter(
          mn::ServerDivergences, {}, "Replays stopped on a fatal divergence")),
      DeadlineTimeouts(Reg.counter(mn::ServerDeadlineTimeouts, {},
                                   "Verbs cut short by the per-verb deadline")),
      RetriesDeduped(Reg.counter(mn::ServerRetriesDeduped, {},
                                 "Retransmits answered from the dedup cache")),
      OverdueJobs(Reg.gauge(mn::ServerOverdueJobs, {},
                            "Overdue verb jobs still running")),
      CmdLatencyUs(Reg.histogram(mn::ServerCmdLatencyUs, {},
                                 "load/cmd service latency (us)")),
      QueueWaitUs(Reg.histogram(
          mn::ServerQueueWaitUs, {},
          "Worker-pool schedule wait before a load/cmd job runs (us)")),
      SessionsRecovered(Reg.counter(mn::ServerSessionsRecovered, {},
                                    "Sessions rebuilt from journals at "
                                    "startup")),
      SessionsJournaled(Reg.counter(mn::ServerSessionsJournaled, {},
                                    "Sessions with a write-ahead journal")),
      JournalBytes(Reg.gauge(mn::ServerJournalBytes, {},
                             "Clean journal bytes on disk")),
      JournalCompactions(Reg.counter(mn::ServerJournalCompactions, {},
                                     "Journals compacted to a snapshot")),
      AdmissionRejected(Reg.counter(mn::ServerAdmissionRejected, {},
                                    "Verbs shed by admission control")),
      SessionsQuarantined(Reg.counter(mn::ServerSessionsQuarantined, {},
                                      "Sessions quarantined after a deadline "
                                      "overrun")) {
  // Eager per-verb registration driven by the protocol's verb registry:
  // every verb has its counter and latency histogram from the first
  // scrape, and the drift test can assert the table and the metrics
  // registry never diverge.
  for (const VerbInfo &V : verbRegistry()) {
    metrics::Labels L{{"verb", V.Name}};
    Verbs.emplace(
        V.Name,
        VerbHandle{V.Name,
                   Reg.counter(mn::ServerVerbRequests, L,
                               "Requests per protocol verb"),
                   Reg.histogram(mn::ServerVerbLatencyUs, L,
                                 "Per-verb service latency (us)")});
  }
}
