//===- fleet/gateway.cpp - The sharded drdebugd gateway tier -----------------===//

#include "fleet/gateway.h"

#include "debugger/commands.h"
#include "server/server.h"
#include "server/verbs.h"

#include <deque>
#include <filesystem>
#include <sstream>
#include <unordered_map>

using namespace drdebug;

namespace fs = std::filesystem;

uint64_t drdebug::rendezvousWeight(uint64_t SessionId,
                                   const std::string &BackendName) {
  // FNV-1a over the backend name, then the session id bytes: cheap,
  // well-mixed, and dependent only on stable inputs — a rebuilt gateway
  // ranks backends for a session exactly as its predecessor did.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](unsigned char C) {
    H ^= C;
    H *= 1099511628211ull;
  };
  for (unsigned char C : BackendName)
    Mix(C);
  for (int I = 0; I != 8; ++I)
    Mix(static_cast<unsigned char>(SessionId >> (8 * I)));
  return H;
}

Gateway::Gateway(GatewayConfig CfgIn) : Cfg(std::move(CfgIn)) {
  for (const GatewayBackend &BC : Cfg.Backends) {
    auto B = std::make_unique<Backend>();
    B->Cfg = BC;
    Backends.push_back(std::move(B));
  }
  // Capability probe: one hello per backend. A backend that cannot even
  // say hello is born dead — it never held a session, so there is nothing
  // to fail over.
  for (size_t I = 0; I != Backends.size(); ++I) {
    std::unique_ptr<Pooled> P = acquire(I);
    if (!P) {
      Backends[I]->Alive.store(false, std::memory_order_release);
      continue;
    }
    ClientResult<HelloInfo> H = P->C->hello();
    if (!H.ok()) {
      Backends[I]->Alive.store(false, std::memory_order_release);
      continue;
    }
    Backends[I]->Proto = H.value().Proto;
    Backends[I]->Verbs.insert(H.value().Verbs.begin(), H.value().Verbs.end());
    release(I, std::move(P));
  }
}

Gateway::~Gateway() = default;

size_t Gateway::aliveCount() const {
  size_t N = 0;
  for (const auto &B : Backends)
    N += B->Alive.load(std::memory_order_acquire) ? 1 : 0;
  return N;
}

size_t Gateway::placeSession(uint64_t Sid) const {
  size_t Best = npos;
  uint64_t BestW = 0;
  for (size_t I = 0; I != Backends.size(); ++I) {
    if (!Backends[I]->Alive.load(std::memory_order_acquire))
      continue;
    uint64_t W = rendezvousWeight(Sid, Backends[I]->Cfg.Name);
    if (Best == npos || W > BestW || (W == BestW && I < Best)) {
      Best = I;
      BestW = W;
    }
  }
  return Best;
}

std::unique_ptr<Gateway::Pooled> Gateway::acquire(size_t I) {
  Backend &B = *Backends[I];
  {
    std::lock_guard<std::mutex> Lock(B.PoolMu);
    if (!B.Idle.empty()) {
      std::unique_ptr<Pooled> P = std::move(B.Idle.back());
      B.Idle.pop_back();
      return P;
    }
  }
  std::unique_ptr<Transport> T = B.Cfg.Connect ? B.Cfg.Connect() : nullptr;
  if (!T)
    return nullptr;
  auto P = std::make_unique<Pooled>();
  P->T = std::move(T);
  P->C = std::make_unique<ProtocolClient>(*P->T, Cfg.Retry);
  return P;
}

void Gateway::release(size_t I, std::unique_ptr<Pooled> P) {
  Backend &B = *Backends[I];
  if (!B.Alive.load(std::memory_order_acquire))
    return; // dead backends keep no pool
  std::lock_guard<std::mutex> Lock(B.PoolMu);
  if (B.Idle.size() < Cfg.PoolPerBackend)
    B.Idle.push_back(std::move(P));
}

Gateway::ForwardOutcome Gateway::forward(size_t I,
                                         const std::string &VerbAndArgs) {
  ForwardOutcome Out;
  if (!Backends[I]->Alive.load(std::memory_order_acquire)) {
    Out.TransportDead = true;
    Out.Response = ClientError{ErrClass::Transport, 0, 0, "backend is down"};
    return Out;
  }
  // Two connection attempts: a pooled connection may have died idle; a
  // failure on a *fresh* connection means the backend itself is gone.
  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    std::unique_ptr<Pooled> P = acquire(I);
    if (!P) {
      Out.TransportDead = true;
      Out.Response =
          ClientError{ErrClass::Transport, 0, 0, "backend unreachable"};
      return Out;
    }
    ClientResult<> R = P->C->request(VerbAndArgs);
    if (R.errClass() == ErrClass::Transport) {
      // Discard the broken connection and retry once on a fresh one.
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Stats.ForwardedVerbs;
    }
    release(I, std::move(P));
    Out.Response = std::move(R);
    return Out;
  }
  Out.TransportDead = true;
  Out.Response =
      ClientError{ErrClass::Transport, 0, 0, "backend connection lost"};
  return Out;
}

bool Gateway::backendSupports(const Backend &B,
                              const std::string &Verb) const {
  if (!B.Verbs.empty())
    return B.Verbs.count(Verb) != 0;
  const VerbInfo *VI = findVerb(Verb);
  return VI && VI->MinProtoVersion <= B.Proto;
}

std::string Gateway::helloBanner() const {
  unsigned Proto = ProtocolVersion;
  for (const auto &B : Backends)
    if (B->Alive.load(std::memory_order_acquire) && B->Proto != 0)
      Proto = std::min(Proto, B->Proto);
  std::string Verbs;
  for (const VerbInfo &V : verbRegistry()) {
    bool Everywhere = true;
    if (!(V.Name == std::string("hello") || V.Name == std::string("help")))
      for (const auto &B : Backends)
        if (B->Alive.load(std::memory_order_acquire) &&
            !backendSupports(*B, V.Name))
          Everywhere = false;
    if (!Everywhere)
      continue;
    if (!Verbs.empty())
      Verbs += ',';
    Verbs += V.Name;
  }
  return std::string("drdebug-gw ") + DrDebugVersion + " proto " +
         std::to_string(Proto) + " verbs " + Verbs;
}

void Gateway::serve(Transport &T) {
  // Same framing, dedup, and at-most-once contract as DebugServer::serve:
  // a client retransmission (same seq) is answered from the cache, so a
  // verb the gateway already forwarded is never forwarded twice.
  FrameBuffer FB;
  std::string Bytes;
  bool Open = true;
  constexpr size_t DedupCapacity = 32;
  std::unordered_map<uint64_t, std::string> DedupCache;
  std::deque<uint64_t> DedupOrder;
  while (Open && T.recv(Bytes)) {
    FB.append(Bytes);
    Bytes.clear();
    std::string Body;
    for (;;) {
      FrameBuffer::Poll P = FB.poll(Body);
      if (P == FrameBuffer::Poll::None)
        break;
      if (P != FrameBuffer::Poll::Frame) {
        WireError E = P == FrameBuffer::Poll::BadChecksum
                          ? WireError::BadChecksum
                          : WireError::Malformed;
        T.send(encodeFrame(errBody(0, E, wireErrorName(E))));
        continue;
      }
      uint64_t Seq = 0;
      bool HasSeq = (std::istringstream(Body) >> Seq) && Seq != 0;
      if (HasSeq) {
        auto It = DedupCache.find(Seq);
        if (It != DedupCache.end()) {
          T.send(encodeFrame(It->second));
          continue;
        }
      }
      bool Cacheable = true;
      std::string Resp = handleBody(Body, Cacheable);
      if (HasSeq && Cacheable) {
        if (DedupOrder.size() >= DedupCapacity) {
          DedupCache.erase(DedupOrder.front());
          DedupOrder.pop_front();
        }
        DedupCache.emplace(Seq, Resp);
        DedupOrder.push_back(Seq);
      }
      T.send(encodeFrame(Resp));
      if (shutdownRequested()) {
        Open = false;
        break;
      }
    }
  }
}

std::string Gateway::handleBody(const std::string &Body, bool &Cacheable) {
  std::istringstream IS(Body);
  uint64_t Seq = 0;
  std::string Verb;
  if (!(IS >> Seq >> Verb))
    return errBody(0, WireError::Malformed, "missing sequence number or verb");
  auto RestOf = [&IS]() {
    std::string Rest;
    std::getline(IS, Rest);
    if (!Rest.empty() && Rest.front() == ' ')
      Rest.erase(0, 1);
    return Rest;
  };
  auto EdgeReject = [&](WireError E, const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Stats.EdgeRejects;
    return errBody(Seq, E, Msg);
  };

  const VerbInfo *VI = findVerb(Verb);
  if (!VI)
    return EdgeReject(WireError::UnknownVerb, "unknown verb '" + Verb + "'");

  // Answered at the edge: the gateway is the fleet's identity.
  if (Verb == "hello")
    return okBody(Seq, helloBanner());
  if (Verb == "help")
    return okBody(Seq, renderHelpPayload());

  // Capability gate for mixed-version fleets: if any alive backend cannot
  // serve the verb, fail it here as unknown-verb instead of mid-flight on
  // whichever backend the session happens to land on.
  for (const auto &B : Backends)
    if (B->Alive.load(std::memory_order_acquire) &&
        !backendSupports(*B, Verb))
      return EdgeReject(WireError::UnknownVerb,
                        "verb '" + Verb + "' not supported by backend " +
                            B->Cfg.Name + " (proto " +
                            std::to_string(B->Proto) + ")");

  if (VI->Routing == VerbRouting::FanOut)
    return handleFanOut(Seq, Verb, RestOf());

  if (VI->Routing == VerbRouting::AnyBackend)
    return handlePlacement(Seq, Verb, RestOf(), Cacheable);

  // Session-routed: the first argument is the gateway-side session id.
  uint64_t GwSid = 0;
  if (!(IS >> GwSid))
    return errBody(Seq, WireError::BadArguments,
                   "usage: " + Verb + " <sid> ...");
  return handleSessionRouted(Seq, Verb, GwSid, RestOf(), Cacheable);
}

std::string Gateway::handleFanOut(uint64_t Seq, const std::string &Verb,
                                  const std::string &Args) {
  std::string Dir = Verb == "drain" ? unescapeText(Args) : std::string();
  std::ostringstream OS;
  uint64_t EvictedTotal = 0;
  size_t Reached = 0;
  if (Verb == "stats")
    OS << fleetReport();
  for (size_t I = 0; I != Backends.size(); ++I) {
    Backend &B = *Backends[I];
    if (!B.Alive.load(std::memory_order_acquire))
      continue;
    std::string Line = Verb;
    if (Verb == "drain" && !Dir.empty())
      Line += " " + escapeText(Dir + "/" + B.Cfg.Name);
    else if (!Args.empty())
      Line += " " + Args;
    ForwardOutcome Out = forward(I, Line);
    if (Verb == "metrics")
      OS << "# backend " << B.Cfg.Name << "\n";
    else
      OS << "== backend " << B.Cfg.Name << " ==\n";
    if (!Out.Response.ok()) {
      OS << "unreachable: " << Out.Response.errorText() << "\n";
      continue;
    }
    ++Reached;
    if (Verb == "evict") {
      std::istringstream PIS(Out.Response.value());
      std::string Tag;
      uint64_t N = 0;
      if (PIS >> Tag >> N)
        EvictedTotal += N;
    }
    OS << Out.Response.value();
    if (!Out.Response.value().empty() && Out.Response.value().back() != '\n')
      OS << "\n";
  }
  if (Verb == "shutdown") {
    Shutdown.store(true, std::memory_order_release);
    return okBody(Seq, "shutting down");
  }
  if (Verb == "evict")
    return okBody(Seq, "evicted " + std::to_string(EvictedTotal));
  if (Reached == 0 && Verb != "stats")
    return errBody(Seq, WireError::SessionFailed, "no alive backends");
  return okBody(Seq, OS.str());
}

std::string Gateway::handlePlacement(uint64_t Seq, const std::string &Verb,
                                     const std::string &Args,
                                     bool &Cacheable) {
  uint64_t GwSid;
  {
    std::lock_guard<std::mutex> Lock(MapMu);
    GwSid = NextSid++;
  }
  std::string Line = Args.empty() ? Verb : Verb + " " + Args;
  for (unsigned Attempt = 0; Attempt != Cfg.PlacementRetries; ++Attempt) {
    size_t I = placeSession(GwSid);
    if (I == npos)
      return errBody(Seq, WireError::SessionFailed, "no alive backends");
    ForwardOutcome Out = forward(I, Line);
    if (Out.TransportDead ||
        Out.Response.code() == static_cast<unsigned>(WireError::Draining)) {
      failBackend(I);
      continue; // re-place on the survivors
    }
    if (!Out.Response.ok()) {
      if (Out.Response.code() ==
          static_cast<unsigned>(WireError::Overloaded))
        Cacheable = false;
      return errBody(Seq,
                     static_cast<WireError>(Out.Response.code()
                                                ? Out.Response.code()
                                                : static_cast<unsigned>(
                                                      WireError::SessionFailed)),
                     Out.Response.error().Message);
    }
    std::istringstream PIS(Out.Response.value());
    std::string Tag;
    uint64_t BackendSid = 0;
    if (!(PIS >> Tag >> BackendSid) || Tag != "sid")
      return errBody(Seq, WireError::SessionFailed,
                     "malformed " + Verb + " reply from backend " +
                         backendName(I));
    {
      std::lock_guard<std::mutex> Lock(MapMu);
      Sessions[GwSid] = Placement{I, BackendSid};
    }
    return okBody(Seq, "sid " + std::to_string(GwSid));
  }
  return errBody(Seq, WireError::SessionFailed,
                 "placement failed after " +
                     std::to_string(Cfg.PlacementRetries) + " attempts");
}

std::string Gateway::handleSessionRouted(uint64_t Seq, const std::string &Verb,
                                         uint64_t GwSid,
                                         const std::string &Rest,
                                         bool &Cacheable) {
  for (unsigned Attempt = 0; Attempt != 2; ++Attempt) {
    Placement P;
    {
      std::lock_guard<std::mutex> Lock(MapMu);
      auto It = Sessions.find(GwSid);
      if (It == Sessions.end())
        return errBody(Seq, WireError::NoSuchSession, "no such session");
      P = It->second;
    }
    std::string Line = Verb + " " + std::to_string(P.BackendSid) +
                       (Rest.empty() ? "" : " " + Rest);
    ForwardOutcome Out = forward(P.BackendIdx, Line);
    if (Out.TransportDead ||
        Out.Response.code() == static_cast<unsigned>(WireError::Draining)) {
      // The backend is dying. Fail it over (idempotent — the first thread
      // in does the work) and retry against the session's new home.
      failBackend(P.BackendIdx);
      continue;
    }
    if (!Out.Response.ok()) {
      unsigned Code = Out.Response.code();
      if (Code == static_cast<unsigned>(WireError::NoSuchSession)) {
        // The backend lost the session (evicted or closed behind our
        // back); drop the stale mapping so the error is stable.
        std::lock_guard<std::mutex> Lock(MapMu);
        Sessions.erase(GwSid);
      }
      if (Code == static_cast<unsigned>(WireError::Overloaded))
        Cacheable = false;
      return errBody(Seq,
                     static_cast<WireError>(
                         Code ? Code
                              : static_cast<unsigned>(WireError::SessionFailed)),
                     Out.Response.error().Message);
    }
    // Success. Keep the map coherent with session lifecycle verbs, and
    // rewrite any backend sid in the payload back to the gateway sid.
    std::string Payload = Out.Response.value();
    if (Verb == "close") {
      std::lock_guard<std::mutex> Lock(MapMu);
      Sessions.erase(GwSid);
    } else if (Verb == "attach") {
      Payload = "sid " + std::to_string(GwSid);
    } else if (Verb == "cmd") {
      std::istringstream CIS(unescapeText(Rest));
      std::string Word;
      if (CIS >> Word && (Word == "quit" || Word == "q")) {
        std::lock_guard<std::mutex> Lock(MapMu);
        Sessions.erase(GwSid);
      }
    }
    return okBody(Seq, Payload);
  }
  return errBody(Seq, WireError::NoSuchSession,
                 "session " + std::to_string(GwSid) +
                     " could not be re-homed");
}

std::string Gateway::failBackend(size_t I) {
  std::lock_guard<std::mutex> FailLock(FailoverMu);
  Backend &B = *Backends[I];
  if (!B.Alive.load(std::memory_order_acquire))
    return "backend " + B.Cfg.Name + " already failed over";
  std::ostringstream Report;
  Report << "failing over backend " << B.Cfg.Name << "\n";
  // Mark dead first: placement and forwards exclude it from here on.
  B.Alive.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(B.PoolMu);
    B.Idle.clear();
  }
  // The sessions we owe a new home.
  std::vector<std::pair<uint64_t, uint64_t>> Affected; // (gw sid, backend sid)
  {
    std::lock_guard<std::mutex> Lock(MapMu);
    for (const auto &[GwSid, P] : Sessions)
      if (P.BackendIdx == I)
        Affected.emplace_back(GwSid, P.BackendSid);
  }
  uint64_t Reimported = 0, Lost = 0;
  std::string Scratch;
  if (!Cfg.FailoverDir.empty() && !Affected.empty()) {
    std::string Safe = B.Cfg.Name;
    for (char &C : Safe)
      if (C == '/' || C == ':')
        C = '-';
    Scratch = Cfg.FailoverDir + "/failover-" + std::to_string(FailoverSeq++) +
              "-" + Safe;
    std::error_code Ec;
    fs::create_directories(Scratch, Ec);
    // Graceful first: if the backend still answers (it was draining, not
    // dead), ask it to export its own bundles over the wire.
    bool Exported = false;
    if (std::unique_ptr<Transport> T = B.Cfg.Connect ? B.Cfg.Connect()
                                                     : nullptr) {
      ProtocolClient C(*T, Cfg.Retry);
      ClientResult<> R = C.drain(Scratch);
      if (R.ok()) {
        Exported = true;
        Report << "drain-exported by the backend:\n" << R.value() << "\n";
      }
    }
    // Crashed outright: recover its journal directory in-process — the
    // same recovery a restarted drdebugd would run — and drain the
    // recovered server into the scratch directory. Destroying the
    // recovery server leaves the journals on disk untouched.
    if (!Exported && !B.Cfg.JournalDir.empty()) {
      ServerConfig RC;
      RC.JournalDir = B.Cfg.JournalDir;
      RC.Workers = 2;
      RC.IdleTimeout = std::chrono::milliseconds(0);
      DebugServer Recovery(RC);
      Report << "recovered " << Recovery.sessions().activeCount()
             << " session(s) from " << B.Cfg.JournalDir << "\n";
      Report << Recovery.drain(Scratch) << "\n";
      Exported = true;
    }
    if (!Exported)
      Report << "no export path (backend unreachable, no journal dir)\n";
  }
  for (const auto &[GwSid, BackendSid] : Affected) {
    std::string Bundle = Scratch + "/session-" + std::to_string(BackendSid);
    size_t S = placeSession(GwSid); // excludes the dead backend already
    std::error_code Ec;
    if (Scratch.empty() || S == npos || !fs::exists(Bundle, Ec)) {
      std::lock_guard<std::mutex> Lock(MapMu);
      Sessions.erase(GwSid);
      ++Lost;
      Report << "session " << GwSid << " lost (no bundle or no survivor)\n";
      continue;
    }
    ForwardOutcome Out = forward(S, "import " + escapeText(Bundle));
    std::istringstream PIS(Out.Response.ok() ? Out.Response.value()
                                             : std::string());
    std::string Tag;
    uint64_t NewSid = 0;
    if (Out.Response.ok() && (PIS >> Tag >> NewSid) && Tag == "sid") {
      std::lock_guard<std::mutex> Lock(MapMu);
      Sessions[GwSid] = Placement{S, NewSid};
      ++Reimported;
      Report << "session " << GwSid << " re-imported onto "
             << backendName(S) << " (backend sid " << NewSid << ")\n";
    } else {
      std::lock_guard<std::mutex> Lock(MapMu);
      Sessions.erase(GwSid);
      ++Lost;
      Report << "session " << GwSid
             << " lost (import failed: " << Out.Response.errorText() << ")\n";
    }
  }
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Stats.Failovers;
    Stats.SessionsReimported += Reimported;
    Stats.SessionsLost += Lost;
  }
  Report << "failover complete: " << Reimported << " re-imported, " << Lost
         << " lost";
  return Report.str();
}

Gateway::Counters Gateway::counters() const {
  std::lock_guard<std::mutex> Lock(CountersMu);
  return Stats;
}

size_t Gateway::sessionCount() const {
  std::lock_guard<std::mutex> Lock(MapMu);
  return Sessions.size();
}

std::string Gateway::fleetReport() const {
  Counters C = counters();
  std::ostringstream OS;
  OS << "gateway.version " << DrDebugVersion << "\n"
     << "gateway.backends " << backendCount() << "\n"
     << "gateway.backends_alive " << aliveCount() << "\n"
     << "gateway.sessions " << sessionCount() << "\n"
     << "gateway.forwarded " << C.ForwardedVerbs << "\n"
     << "gateway.edge_rejects " << C.EdgeRejects << "\n"
     << "gateway.failovers " << C.Failovers << "\n"
     << "gateway.sessions_reimported " << C.SessionsReimported << "\n"
     << "gateway.sessions_lost " << C.SessionsLost << "\n";
  return OS.str();
}
