//===- fleet/gateway.h - The sharded drdebugd gateway tier ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// drdebug-gw: one wire-protocol endpoint in front of N drdebugd backends.
/// Clients speak the exact same framed protocol they would speak to a
/// single drdebugd; the gateway owns the fleet topology:
///
///   - `open`/`import` place the new session on a backend chosen by
///     rendezvous (highest-random-weight) hashing of the gateway session
///     id over the alive backend names — deterministic, minimal movement
///     when the backend set changes.
///   - session-routed verbs follow the gateway's session→backend map; the
///     gateway rewrites session ids both ways, so the id a client holds
///     stays stable no matter where the session physically lives.
///   - fan-out verbs (stats/metrics/faults/drain/evict/shutdown) broadcast
///     to every alive backend and aggregate the replies into one payload.
///   - verbs a backend does not support (mixed-version fleets, negotiated
///     via the hello capability list) fail with `unknown-verb` at the
///     edge, before any forwarding.
///
/// Backend loss is survived, not proxied: when a forward fails (transport
/// death) or a backend starts refusing with `err draining`, the gateway
/// fails the backend over — it drain-exports the dying backend's sessions
/// as bundles (gracefully over the wire when the backend still answers,
/// otherwise by recovering its journal directory in-process), re-imports
/// each bundle onto a surviving backend, and updates the map. Client
/// session ids never change across the move; only sessions with no
/// journal (and no reachable backend) are lost.
///
/// Routing classes, deadline classes, and capability floors all come from
/// the verb registry (server/verbs.h) — the gateway contains no verb list
/// of its own. See docs/FLEET.md.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_FLEET_GATEWAY_H
#define DRDEBUG_FLEET_GATEWAY_H

#include "server/client.h"
#include "server/transport.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace drdebug {

/// One drdebugd the gateway routes onto.
struct GatewayBackend {
  /// Stable identity (the rendezvous-hash input), e.g. "127.0.0.1:7321".
  /// Placement depends only on this name and the session id, so a
  /// restarted gateway with the same backend names places identically.
  std::string Name;
  /// Opens a fresh connection to the backend; null on failure. Pipe pairs
  /// in tests and benchmarks, tcpConnect in the drdebug-gw tool.
  std::function<std::unique_ptr<Transport>()> Connect;
  /// The backend's --journal-dir, when the gateway can reach it (shared
  /// filesystem / same host). Empty: a crashed backend's sessions are
  /// unrecoverable (a *draining* one still drain-exports over the wire).
  std::string JournalDir;
};

struct GatewayConfig {
  std::vector<GatewayBackend> Backends;
  /// Per-backend client retry policy (honors err 8 retry-after hints).
  RetryPolicy Retry;
  /// Scratch directory for failover bundles. Empty disables re-import:
  /// a failed backend's sessions are simply lost.
  std::string FailoverDir;
  /// Idle pooled connections kept per backend.
  unsigned PoolPerBackend = 8;
  /// Placement attempts for open/import before giving up (a chosen
  /// backend may die or start draining between choice and forward).
  unsigned PlacementRetries = 3;
};

/// The rendezvous weight of (\p SessionId, \p BackendName): FNV-1a over
/// the name bytes then the id bytes. Each session independently ranks all
/// backends by weight and lives on the highest-ranked alive one.
uint64_t rendezvousWeight(uint64_t SessionId, const std::string &BackendName);

class Gateway {
public:
  explicit Gateway(GatewayConfig Cfg);
  ~Gateway();

  Gateway(const Gateway &) = delete;
  Gateway &operator=(const Gateway &) = delete;

  /// Serves one client connection until its peer disconnects (or a
  /// shutdown fan-out completes). Blocking; one thread per connection.
  void serve(Transport &T);

  /// True once some client issued the `shutdown` verb (fanned out to the
  /// whole fleet first).
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  size_t backendCount() const { return Backends.size(); }
  size_t aliveCount() const;

  /// Deterministic placement: the index of the alive backend that owns
  /// gateway session id \p Sid, or npos when none is alive.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t placeSession(uint64_t Sid) const;
  const std::string &backendName(size_t I) const {
    return Backends[I]->Cfg.Name;
  }
  bool backendAlive(size_t I) const {
    return Backends[I]->Alive.load(std::memory_order_acquire);
  }

  /// Declares backend \p I dead and re-homes its sessions onto survivors:
  /// drain-export over the wire when it still answers, journal-directory
  /// recovery otherwise, then one wire `import` per bundle. Idempotent;
  /// also triggered internally by forward failures. \returns a
  /// human-readable failover report.
  std::string failBackend(size_t I);

  /// Gateway-level counters, rendered into the fan-out `stats` payload.
  struct Counters {
    uint64_t ForwardedVerbs = 0;
    uint64_t EdgeRejects = 0;
    uint64_t Failovers = 0;
    uint64_t SessionsReimported = 0;
    uint64_t SessionsLost = 0;
  };
  Counters counters() const;
  /// "gateway.* <value>" stat lines (the fleet section of `stats`).
  std::string fleetReport() const;
  /// Resident gateway-side session mappings.
  size_t sessionCount() const;

  /// The gateway's own hello payload: identity plus the negotiated
  /// protocol floor and verb intersection across alive backends.
  std::string helloBanner() const;

private:
  /// One pooled backend connection: the transport and a client bound to
  /// it. Checked out exclusively per request (a Transport supports one
  /// reader + one writer).
  struct Pooled {
    std::unique_ptr<Transport> T;
    std::unique_ptr<ProtocolClient> C;
  };

  struct Backend {
    GatewayBackend Cfg;
    std::atomic<bool> Alive{true};
    /// Capabilities from the construction-time hello (empty Verbs +
    /// Proto 0 when the probe failed and the backend was born dead).
    unsigned Proto = 0;
    std::set<std::string> Verbs;
    std::mutex PoolMu;
    std::vector<std::unique_ptr<Pooled>> Idle;
  };

  struct Placement {
    size_t BackendIdx;
    uint64_t BackendSid;
  };

  /// Outcome of one forward: the response (when Delivered) plus whether
  /// the backend itself is gone (transport-level death after retries).
  struct ForwardOutcome {
    ClientResult<> Response{ClientError{}};
    bool TransportDead = false;
  };

  std::unique_ptr<Pooled> acquire(size_t I);
  void release(size_t I, std::unique_ptr<Pooled> P);
  ForwardOutcome forward(size_t I, const std::string &VerbAndArgs);

  /// True when backend \p I supports \p Verb (capability list, or the
  /// registry's MinProtoVersion floor for pre-v4 backends).
  bool backendSupports(const Backend &B, const std::string &Verb) const;

  std::string handleBody(const std::string &Body, bool &Cacheable);
  std::string handleFanOut(uint64_t Seq, const std::string &Verb,
                           const std::string &Args);
  std::string handlePlacement(uint64_t Seq, const std::string &Verb,
                              const std::string &Args, bool &Cacheable);
  std::string handleSessionRouted(uint64_t Seq, const std::string &Verb,
                                  uint64_t GwSid, const std::string &Rest,
                                  bool &Cacheable);

  GatewayConfig Cfg;
  std::vector<std::unique_ptr<Backend>> Backends;

  mutable std::mutex MapMu;
  std::map<uint64_t, Placement> Sessions;
  uint64_t NextSid = 1;

  /// Serializes failovers: the first thread to notice a dead backend runs
  /// the re-home; everyone else blocks here, then re-resolves.
  std::mutex FailoverMu;
  unsigned FailoverSeq = 0;

  std::atomic<bool> Shutdown{false};
  mutable std::mutex CountersMu;
  Counters Stats;
};

} // namespace drdebug

#endif // DRDEBUG_FLEET_GATEWAY_H
