//===- debugger/session.h - DrDebug command-line debugger ------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The debugger front end: the GDB+PinADX+KDbg analog. A DebugSession owns
/// either a live machine or a replayer (cyclic debugging happens on replay)
/// and interprets gdb-flavoured commands plus the paper's new ones:
///
///   load <file>               load a MiniVM assembly program
///   run [seed]                run live under a seeded scheduler
///   break <pc>|<func>[+off]   set a breakpoint; delete <id>; info breakpoints
///   watch <global>            stop when a global's value changes; unwatch <id>
///   continue / stepi [n]      resume / single-step (live or replay)
///   info threads|regs         examine thread state
///   x <addr> [n]              examine memory; print <global>
///   backtrace [tid]           call stack from the shadow stack
///   record region <skip> <len> [seed]   capture a region pinball
///   record failure [seed]     capture start-to-failure (Table 3 style)
///   record attach [seed [epoch [max]]]  always-on flight recorder: attach to
///                             the stopped live machine, or start a fresh run
///   record status             flight-recorder window / epoch / memory report
///   record dump [<dir>]       materialize the retained window as the region
///                             pinball (optionally saving it to <dir>)
///   pinball save|load <dir>   persist / import the region pinball
///   replay                    start replay-based debugging off the pinball
///   slice fail | slice <tid> <pc> [instance]    compute a dynamic slice
///   slice list                show slice statements (the KDbg highlight)
///   slice deps <n>            backwards-navigate the n-th slice entry
///   slice save <file>         write the slice file
///   slice pinball [<dir>]     build the slice pinball via the relogger
///   slice replay              replay the execution slice
///   slice step                step to the next statement in the slice
///   reverse-stepi [n]         step backwards (checkpoint + forward replay)
///   reverse-continue          run backwards to the previous break/watch hit
///   reverse-next              run backwards to the current thread's previous
///                             instruction
///   reverse-watch <global>    run backwards to the last write of a global
///   lastwrite <loc> [pos]     omniscient: last write to a location (before
///                             a position) from the def-use index
///   valuesof <loc> [max]      omniscient: every value a location held
///   readersof <pos>           omniscient: who read the values this entry
///                             defined
///   pinball index [verify] <dir>   build / check the on-disk slice index
///   replay-position / replay-seek <n>   inspect / move the replay clock
///   where / output / quit
///
/// All regular debugging commands keep working during replay; state
/// modification is (deliberately) not offered, matching the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_DEBUGGER_SESSION_H
#define DRDEBUG_DEBUGGER_SESSION_H

#include "replay/checkpoints.h"
#include "replay/flight_recorder.h"
#include "replay/logger.h"
#include "replay/replayer.h"
#include "slicing/slicer.h"
#include "support/metrics.h"

#include <atomic>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace drdebug {

class PinballRepository;
class SliceSessionRepository;

/// How one debugger command ended.
enum class CommandStatus {
  Ok,     ///< the command ran (the output may still describe program events)
  Error,  ///< the command itself failed: bad usage, unknown command, I/O
  Exited, ///< the session ended ("quit")
};

/// Structured outcome of one debugger command: the classification the old
/// bool-returning execute() could not express (callers used to substring-
/// match the output for "error:"), plus exactly the bytes the command wrote.
struct CommandResult {
  CommandStatus Status = CommandStatus::Ok;
  std::string Text;
};

/// An interactive DrDebug session. Construct, load a program, then feed
/// commands; output goes to the supplied stream or sink callback.
class DebugSession {
public:
  /// A non-ostream output sink: receives each chunk of session output.
  /// Used by the remote debug server to capture per-command output.
  using OutputFn = std::function<void(const std::string &)>;

  explicit DebugSession(std::ostream &Out);
  explicit DebugSession(OutputFn Sink);
  ~DebugSession();

  DebugSession(const DebugSession &) = delete;
  DebugSession &operator=(const DebugSession &) = delete;

  /// Loads a program from assembly text, capturing the diagnostics.
  /// Status is Error on assembly failures.
  CommandResult loadProgram(const std::string &AsmText);

  /// Executes one command line: the primary execution API. Output is
  /// captured into the result (and still forwarded to the session's
  /// stream/sink), and the outcome is classified without the caller having
  /// to pattern-match the text.
  CommandResult executeCommand(const std::string &Line);

  /// Back-compat shim over loadProgram(). \returns false on assembly
  /// errors (reported to the output stream).
  bool loadProgramText(const std::string &AsmText);

  /// Back-compat shim over executeCommand(). \returns false when the
  /// session ends ("quit"); failed commands print an error and return true.
  bool execute(const std::string &Line);

  /// Feeds a whole script, stopping at "quit".
  void runScript(const std::vector<std::string> &Commands);

  /// Uses \p Repo for `pinball load`, so sessions sharing a repository
  /// parse each recording once (the server's shared pinball cache).
  void setPinballRepository(PinballRepository *Repo) { PbRepo = Repo; }

  /// Uses \p Repo to share *prepared* slice sessions between debug
  /// sessions attached to the same on-disk pinball: the first `slice`
  /// command prepares, everyone else reuses. Only pinballs loaded from
  /// disk (which have a fingerprint) are shared; in-memory recordings
  /// still prepare privately.
  void setSliceRepository(SliceSessionRepository *Repo) { SliceRepo = Repo; }

  /// Tunables forwarded to SliceSession::prepare (the server raises
  /// PrepareThreads here).
  void setSliceOptions(const SliceSessionOptions &O) { SliceOpts = O; }

  /// If set, bumped once per replay that stops on a fatal divergence — the
  /// server's integrity.divergences metric.
  void setDivergenceCounter(metrics::Counter *C) { DivergenceCtr = C; }

  /// Default integrity-checking mode for `pinball load` (false when the
  /// front end was started with --no-verify).
  void setPinballVerify(bool On) { PbVerifyDefault = On; }

  // --- Introspection for tests and examples -------------------------------
  /// The machine currently being debugged (live or replay), or null.
  Machine *currentMachine();
  bool inReplay() const { return Replay != nullptr; }
  bool inSliceReplay() const { return SliceReplayActive; }
  const std::optional<Pinball> &regionPinball() const { return RegionPb; }
  const std::optional<Slice> &currentSlice() const { return CurrentSlice; }

  // --- Durable-session support (the server's journal compaction) ----------
  /// True when this session's entire state is reproducible from its region
  /// pinball plus the replay clock alone: replaying (not a slice replay),
  /// no live machine or flight recorder, no breakpoints/watchpoints/slices,
  /// and no divergence announced. The journal of such a session compacts to
  /// [load, snap-pinball, replay, replay-seek].
  bool snapshotExpressible() const;
  /// The replay clock (0 when not replaying).
  uint64_t replayPosition() const;
  /// The assembly text the session last loaded (empty before any load).
  const std::string &programText() const { return ProgramText; }
  /// Monotonic counter bumped whenever the region pinball is replaced or
  /// cleared — lets the server's compaction skip re-saving a snapshot
  /// pinball that has not changed since the last one.
  uint64_t regionGeneration() const { return RegionPbGen; }
  /// Fingerprint of the directory the region pinball was loaded from
  /// (0 for in-memory recordings): two loads with equal nonzero
  /// fingerprints hold identical content even across generations.
  uint64_t regionFingerprint() const { return RegionPbFingerprint; }
  /// The directory the region pinball was loaded from (empty for
  /// in-memory recordings) — lets the server's journal compaction
  /// reference the source pinball instead of copying it.
  const std::string &regionSourceDir() const { return RegionPbSourceDir; }

private:
  class BreakpointObserver;
  class SinkStreambuf;

  /// Runs one command line against the handlers below. \returns false on
  /// "quit". Error classification happens via err(): handlers report
  /// command failures through it so executeCommand can set the status.
  bool dispatchCommand(const std::string &Line);

  /// The stream for command-failure diagnostics: marks the in-flight
  /// command failed, then behaves like Out.
  std::ostream &err() {
    CmdFailed = true;
    return Out;
  }

  // Command handlers.
  void cmdRun(std::istringstream &Args);
  void cmdBreak(std::istringstream &Args);
  void cmdWatch(std::istringstream &Args);
  void cmdDelete(std::istringstream &Args);
  void cmdContinue();
  void cmdStepi(std::istringstream &Args);
  void cmdInfo(std::istringstream &Args);
  void cmdExamine(std::istringstream &Args);
  void cmdPrint(std::istringstream &Args);
  void cmdBacktrace(std::istringstream &Args);
  void cmdRecord(std::istringstream &Args);
  void cmdRecordAttach(std::istringstream &Args);
  void cmdRecordStatus();
  void cmdRecordDump(std::istringstream &Args);
  void cmdPinball(std::istringstream &Args);
  void cmdReplay();
  void cmdReverseStepi(std::istringstream &Args);
  void cmdReverseContinue();
  void cmdReverseNext();
  void cmdReverseWatch(std::istringstream &Args);
  void cmdSlice(std::istringstream &Args);
  void cmdLastWrite(std::istringstream &Args);
  void cmdValuesOf(std::istringstream &Args);
  void cmdReadersOf(std::istringstream &Args);
  void cmdFault(std::istringstream &Args);
  void cmdWhere();
  void cmdList(std::istringstream &Args);

  // Helpers.
  bool ensureSliceSession();
  /// The active prepared slice session: privately owned or repository-
  /// shared. All slice queries are const, so both cases read-only.
  const SliceSession *slicing() const {
    return SharedSlicing ? SharedSlicing.get() : Slicing.get();
  }
  void reportStop(Machine::StopReason Reason);
  void printCurrentStatement(uint32_t Tid);
  bool parseLocation(const std::string &Tok, uint64_t &Pc);
  /// Parses a data-location token for the omniscient queries: a global
  /// name, `m[<addr>]`, a bare address, or `r<n>@t<tid>` (`r<n>` uses the
  /// current thread). \returns false on an unresolvable token.
  bool parseDataLocation(const std::string &Tok, Location &L);
  Scheduler &liveScheduler(uint64_t Seed);

  // When constructed with a sink, these own the stream Out refers to; they
  // are declared first so Out can bind to *OwnedOut in the initializer list.
  std::unique_ptr<SinkStreambuf> OwnedBuf;
  std::unique_ptr<std::ostream> OwnedOut;
  std::ostream &Out;
  PinballRepository *PbRepo = nullptr;
  SliceSessionRepository *SliceRepo = nullptr;
  SliceSessionOptions SliceOpts;
  std::unique_ptr<Program> Prog;
  std::string ProgramText;

  // Live execution.
  std::unique_ptr<Machine> Live;
  std::unique_ptr<Scheduler> LiveSched;
  std::unique_ptr<DefaultSyscalls> LiveWorld;
  uint64_t LiveSeed = 1;
  /// The always-on flight recorder over Live. Declared after Live: its
  /// destructor detaches from the machine, so it must run first, and every
  /// reset/reassignment of Live resets Flight beforehand.
  std::unique_ptr<FlightRecorder> Flight;

  // Replay (checkpointed, so backward motion is possible).
  std::unique_ptr<CheckpointedReplay> Replay;
  bool SliceReplayActive = false;
  /// A fatal divergence is described (and counted) only once per replay.
  bool DivergenceAnnounced = false;
  metrics::Counter *DivergenceCtr = nullptr;
  bool PbVerifyDefault = true;
  /// Set by err() while a command runs; read by executeCommand.
  bool CmdFailed = false;

  // Record / slice artifacts.
  std::optional<Pinball> RegionPb;
  /// Bumped on every RegionPb replace/clear (see regionGeneration()).
  uint64_t RegionPbGen = 0;
  /// Fingerprint of the directory RegionPb was loaded from (0 when the
  /// pinball was recorded in-memory or saved only) — the slice-repository
  /// sharing key.
  uint64_t RegionPbFingerprint = 0;
  /// Where RegionPb was loaded from; empty whenever RegionPbFingerprint
  /// is 0 (the two are set and cleared together).
  std::string RegionPbSourceDir;
  std::optional<Pinball> SlicePb;
  std::unique_ptr<SliceSession> Slicing;
  std::shared_ptr<const SliceSession> SharedSlicing;
  std::optional<Slice> CurrentSlice;

  // Breakpoints.
  std::map<unsigned, uint64_t> Breakpoints;
  unsigned NextBreakpointId = 1;
  // Watchpoints: id -> (watched address, global name for display).
  struct Watchpoint {
    uint64_t Addr;
    std::string Name;
  };
  std::map<unsigned, Watchpoint> Watchpoints;
  unsigned NextWatchpointId = 1;
  std::unique_ptr<BreakpointObserver> BpObserver;
  uint32_t CurrentTid = 0;
};

} // namespace drdebug

#endif // DRDEBUG_DEBUGGER_SESSION_H
