//===- debugger/commands.cpp - The debugger command table --------------------===//

#include "debugger/commands.h"

#include <sstream>

using namespace drdebug;

const std::vector<CommandInfo> &drdebug::commandTable() {
  static const std::vector<CommandInfo> Table = {
      {"load <file>", "load a MiniVM assembly program", "load", ""},
      {"run [seed]", "run live under a seeded scheduler", "run", ""},
      {"break <pc>|<func>[+off]", "set a breakpoint", "break", "b"},
      {"delete <id> / info breakpoints", "manage breakpoints", "delete", ""},
      {"watch <global> / unwatch <id>", "stop when a global is written",
       "watch", "unwatch"},
      {"continue | c", "resume", "continue", "c"},
      {"stepi [n] | si", "execute n instructions", "stepi", "si"},
      {"info threads|regs [tid]", "examine thread state", "info", ""},
      {"x <addr> [count]", "examine memory words", "x", ""},
      {"print <global>", "print a global variable", "print", "p"},
      {"backtrace [tid] | bt", "call stack", "backtrace", "bt"},
      {"where", "current statement of every live thread", "where", ""},
      {"list <func>", "disassemble a function", "list", ""},
      {"output", "program output so far", "output", ""},
      {"record region <skip> <len> [seed]",
       "capture an execution-region pinball", "record", ""},
      {"record failure [seed]", "capture from start to assertion failure",
       "record", ""},
      {"record attach [seed [epoch [max]]]",
       "always-on flight recorder (attach or fresh run)", "record", ""},
      {"record status", "flight recorder window / memory report", "record",
       ""},
      {"record dump [<dir>]", "materialize the flight window as a pinball",
       "record", ""},
      {"pinball save|load <dir> [--no-verify]",
       "persist / import the region pinball", "pinball", ""},
      {"pinball verify <dir>", "check a pinball against its manifest",
       "pinball", ""},
      {"pinball index [verify] <dir>", "build / check the on-disk slice index",
       "pinball", ""},
      {"replay", "deterministic replay off the pinball", "replay", ""},
      {"reverse-stepi [n] | rsi", "step backwards during replay",
       "reverse-stepi", "rsi"},
      {"reverse-continue | rc", "run backwards to the last break/watch hit",
       "reverse-continue", "rc"},
      {"reverse-next | rn", "back to the current thread's previous instruction",
       "reverse-next", "rn"},
      {"reverse-watch <global> | rw", "back to the last write of a global",
       "reverse-watch", "rw"},
      {"replay-position", "inspect the replay clock", "replay-position", ""},
      {"replay-seek <n>", "move the replay clock", "replay-seek", ""},
      {"slice fail", "backwards slice at the failure point", "slice", ""},
      {"slice <tid> <pc> [instance]", "backwards slice at any instruction",
       "slice", ""},
      {"slice forward <tid> <pc> [inst]", "forward slice (what it influenced)",
       "slice", ""},
      {"slice list | slice deps <n>", "browse the slice / navigate backwards",
       "slice", ""},
      {"slice save <file>", "write the (special) slice file", "slice", ""},
      {"slice report <file.html>", "write the highlighted HTML report",
       "slice", ""},
      {"slice regions", "show the code-exclusion regions", "slice", ""},
      {"slice pinball [<dir>]", "build the slice pinball (relogger)", "slice",
       ""},
      {"slice replay", "replay only the execution slice", "slice", ""},
      {"slice step", "step to the next slice statement", "slice", ""},
      {"lastwrite <loc> [pos]", "omniscient: last write to a location",
       "lastwrite", ""},
      {"valuesof <loc> [max]", "omniscient: every value a location held",
       "valuesof", ""},
      {"readersof <pos>", "omniscient: who read this entry's values",
       "readersof", ""},
      {"fault list", "the fault-injection site catalog", "fault", ""},
      {"help", "this text", "help", ""},
      {"quit | q", "leave", "quit", "q"},
  };
  return Table;
}

const std::string &drdebug::helpText() {
  static const std::string Text = [] {
    std::ostringstream OS;
    OS << "DrDebug commands:\n";
    for (const CommandInfo &C : commandTable()) {
      OS << "  " << C.Usage;
      for (size_t Pad = std::string(C.Usage).size(); Pad < 34; ++Pad)
        OS << ' ';
      OS << ' ' << C.Help << "\n";
    }
    return OS.str();
  }();
  return Text;
}
