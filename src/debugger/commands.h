//===- debugger/commands.h - The debugger command table ---------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the debugger command set. The CLI help
/// text, the remote server's command validation, and the drift test in
/// tests/test_cli.cpp are all generated from this table, so the
/// documentation can never diverge from what DebugSession::execute accepts.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_DEBUGGER_COMMANDS_H
#define DRDEBUG_DEBUGGER_COMMANDS_H

#include <string>
#include <vector>

namespace drdebug {

/// Version reported by `drdebug --version`, `drdebugd`, and the wire
/// protocol's `hello` verb.
inline constexpr const char *DrDebugVersion = "0.2.0";

/// One debugger command, as shown in help and accepted by
/// DebugSession::execute.
struct CommandInfo {
  const char *Usage;   ///< e.g. "record region <skip> <len> [seed]"
  const char *Help;    ///< one-line description
  const char *Word;    ///< the dispatch keyword ("record", "slice", ...)
  const char *Aliases; ///< space-separated alias keywords, "" if none
};

/// The full command table, in help-display order.
const std::vector<CommandInfo> &commandTable();

/// The "DrDebug commands:" help text, generated from commandTable().
const std::string &helpText();

} // namespace drdebug

#endif // DRDEBUG_DEBUGGER_COMMANDS_H
