//===- debugger/session.cpp - DrDebug command-line debugger -----------------===//

#include "debugger/session.h"

#include "arch/assembler.h"
#include "arch/disasm.h"
#include "debugger/commands.h"
#include "replay/repository.h"
#include "slicing/index_store.h"
#include "slicing/report.h"
#include "slicing/slice_repository.h"
#include "support/fault_injector.h"
#include "support/tracing.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace drdebug;

//===----------------------------------------------------------------------===//
// Breakpoint observer
//===----------------------------------------------------------------------===//

class DebugSession::BreakpointObserver : public Observer {
public:
  BreakpointObserver(DebugSession &S, Machine &M) : Session(S), M(M) {}

  void onPreExec(const Machine &, uint32_t Tid, uint64_t Pc) override {
    if (!Enabled)
      return;
    if (SuppressOnce && SuppressTid == Tid && SuppressPc == Pc) {
      SuppressOnce = false;
      return;
    }
    for (auto &[Id, BpPc] : Session.Breakpoints) {
      if (BpPc != Pc)
        continue;
      HitId = Id;
      HitTid = Tid;
      HitPc = Pc;
      HaveHit = true;
      M.requestStop();
      return;
    }
  }

  void onExec(const Machine &, const ExecRecord &R) override {
    LastTid = R.Tid;
    LastPc = R.Pc;
    HaveLast = true;
    if (!Enabled || Session.Watchpoints.empty())
      return;
    for (const auto &D : R.Defs) {
      if (isRegLoc(D.Loc))
        continue;
      for (const auto &[Id, W] : Session.Watchpoints) {
        if (W.Addr != locAddr(D.Loc))
          continue;
        HaveWatchHit = true;
        WatchId = Id;
        WatchTid = R.Tid;
        WatchPc = R.Pc;
        WatchValue = D.Value;
        M.requestStop();
        return;
      }
    }
  }

  bool takeWatchHit(unsigned &Id, uint32_t &Tid, uint64_t &Pc,
                    int64_t &Value) {
    if (!HaveWatchHit)
      return false;
    Id = WatchId;
    Tid = WatchTid;
    Pc = WatchPc;
    Value = WatchValue;
    HaveWatchHit = false;
    return true;
  }

  /// Disable breakpoint checks entirely (used while a reverse seek replays
  /// forward internally).
  void setEnabled(bool On) { Enabled = On; }

  /// Suppress the breakpoint check once for the thread poised at a
  /// breakpoint (so "continue" makes progress).
  void suppressAt(uint32_t Tid, uint64_t Pc) {
    SuppressOnce = true;
    SuppressTid = Tid;
    SuppressPc = Pc;
  }

  bool takeHit(unsigned &Id, uint32_t &Tid, uint64_t &Pc) {
    if (!HaveHit)
      return false;
    Id = HitId;
    Tid = HitTid;
    Pc = HitPc;
    HaveHit = false;
    return true;
  }

  bool lastExec(uint32_t &Tid, uint64_t &Pc) const {
    if (!HaveLast)
      return false;
    Tid = LastTid;
    Pc = LastPc;
    return true;
  }

private:
  DebugSession &Session;
  Machine &M;
  bool Enabled = true;
  bool SuppressOnce = false;
  uint32_t SuppressTid = 0;
  uint64_t SuppressPc = 0;
  bool HaveHit = false;
  unsigned HitId = 0;
  uint32_t HitTid = 0;
  uint64_t HitPc = 0;
  bool HaveLast = false;
  uint32_t LastTid = 0;
  uint64_t LastPc = 0;
  bool HaveWatchHit = false;
  unsigned WatchId = 0;
  uint32_t WatchTid = 0;
  uint64_t WatchPc = 0;
  int64_t WatchValue = 0;
};

//===----------------------------------------------------------------------===//
// Session lifecycle
//===----------------------------------------------------------------------===//

/// Forwards everything written to the session's ostream to a callback, so a
/// non-ostream consumer (the debug server) can capture per-command output.
class DebugSession::SinkStreambuf : public std::streambuf {
public:
  explicit SinkStreambuf(OutputFn Fn) : Fn(std::move(Fn)) {}

protected:
  int overflow(int Ch) override {
    if (Ch != traits_type::eof())
      Fn(std::string(1, static_cast<char>(Ch)));
    return Ch;
  }
  std::streamsize xsputn(const char *S, std::streamsize N) override {
    Fn(std::string(S, static_cast<size_t>(N)));
    return N;
  }

private:
  OutputFn Fn;
};

DebugSession::DebugSession(std::ostream &Out) : Out(Out) {}

DebugSession::DebugSession(OutputFn Sink)
    : OwnedBuf(std::make_unique<SinkStreambuf>(std::move(Sink))),
      OwnedOut(std::make_unique<std::ostream>(OwnedBuf.get())),
      Out(*OwnedOut) {}

DebugSession::~DebugSession() = default;

Machine *DebugSession::currentMachine() {
  if (Replay)
    return &Replay->machine();
  return Live.get();
}

bool DebugSession::loadProgramText(const std::string &AsmText) {
  Program P;
  std::string Error;
  if (!assemble(AsmText, P, Error)) {
    err() << "error: " << Error << "\n";
    return false;
  }
  Prog = std::make_unique<Program>(std::move(P));
  ProgramText = AsmText;
  Flight.reset();
  Live.reset();
  Replay.reset();
  Slicing.reset();
  SharedSlicing.reset();
  RegionPb.reset();
  ++RegionPbGen;
  RegionPbFingerprint = 0;
  RegionPbSourceDir.clear();
  SlicePb.reset();
  CurrentSlice.reset();
  SliceReplayActive = false;
  Out << "loaded program: " << Prog->Funcs.size() << " functions, "
      << Prog->size() << " instructions\n";
  return true;
}

void DebugSession::runScript(const std::vector<std::string> &Commands) {
  for (const std::string &Cmd : Commands)
    if (!execute(Cmd))
      return;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

bool DebugSession::parseLocation(const std::string &Tok, uint64_t &Pc) {
  assert(Prog);
  // "<func>" or "<func>+off" or a bare pc number.
  size_t Plus = Tok.find('+');
  std::string Name = Tok.substr(0, Plus);
  int FuncIdx = Prog->findFunction(Name);
  if (FuncIdx >= 0) {
    uint64_t Off = 0;
    if (Plus != std::string::npos)
      Off = std::strtoull(Tok.c_str() + Plus + 1, nullptr, 0);
    Pc = Prog->Funcs[static_cast<size_t>(FuncIdx)].Begin + Off;
    return Pc < Prog->size();
  }
  char *End = nullptr;
  Pc = std::strtoull(Tok.c_str(), &End, 0);
  return *End == '\0' && Pc < Prog->size();
}

void DebugSession::printCurrentStatement(uint32_t Tid) {
  Machine *M = currentMachine();
  if (!M || Tid >= M->numThreads())
    return;
  uint64_t Pc = M->thread(Tid).Pc;
  if (Pc >= Prog->size())
    return;
  Out << "  tid " << Tid << " line " << Prog->inst(Pc).Line << ": "
      << disassembleAt(*Prog, Pc) << "\n";
}

void DebugSession::reportStop(Machine::StopReason Reason) {
  unsigned Id;
  uint32_t Tid;
  uint64_t Pc;
  if (BpObserver && BpObserver->takeHit(Id, Tid, Pc)) {
    CurrentTid = Tid;
    Out << "breakpoint " << Id << " hit: tid " << Tid << " at "
        << disassembleAt(*Prog, Pc) << " (line " << Prog->inst(Pc).Line
        << ")\n";
    return;
  }
  {
    int64_t Value;
    if (BpObserver && BpObserver->takeWatchHit(Id, Tid, Pc, Value)) {
      CurrentTid = Tid;
      Out << "watchpoint " << Id << " ("
          << Watchpoints.at(Id).Name << "): new value " << Value
          << " written by tid " << Tid << " at "
          << disassembleAt(*Prog, Pc) << " (line " << Prog->inst(Pc).Line
          << ")\n";
      return;
    }
  }
  Machine *M = currentMachine();
  switch (Reason) {
  case Machine::StopReason::AssertFailed:
    if (M) {
      CurrentTid = M->failedTid();
      Out << "assertion FAILED: tid " << M->failedTid() << " at "
          << disassembleAt(*Prog, M->failedPc()) << " (line "
          << Prog->inst(M->failedPc()).Line << ")\n";
    }
    break;
  case Machine::StopReason::Halted:
    Out << (Replay ? "replay complete\n" : "program exited\n");
    break;
  case Machine::StopReason::Deadlock:
    Out << "deadlock: no runnable threads\n";
    break;
  case Machine::StopReason::StepLimit:
    Out << "stopped (step limit)\n";
    break;
  case Machine::StopReason::StopRequested:
    if (Replay && Replay->divergence() &&
        divergenceIsFatal(Replay->divergence().Kind)) {
      Out << Replay->divergence().describe() << "\n";
      if (!DivergenceAnnounced) {
        DivergenceAnnounced = true;
        if (DivergenceCtr)
          DivergenceCtr->inc();
      }
      break;
    }
    Out << "stopped\n";
    break;
  }
}

Scheduler &DebugSession::liveScheduler(uint64_t Seed) {
  LiveSeed = Seed;
  LiveSched = std::make_unique<RandomScheduler>(Seed, 1, 4);
  return *LiveSched;
}

bool DebugSession::ensureSliceSession() {
  if (slicing())
    return true;
  if (!RegionPb) {
    err() << "error: no region pinball; use 'record' first\n";
    return false;
  }
  std::string Error;
  if (SliceRepo && RegionPbFingerprint != 0) {
    // A fingerprinted (disk-loaded) pinball prepares once per server: the
    // repository hands every attached session the same prepared instance —
    // and, through the durable tier, reuses the on-disk slice index across
    // daemon restarts. An unusable index is surfaced as a warning (the
    // fallback prepare still succeeds).
    std::string Note;
    SharedSlicing = SliceRepo->acquire(RegionPbFingerprint, RegionPbSourceDir,
                                       *RegionPb, SliceOpts, Error, &Note);
    if (!SharedSlicing) {
      err() << "error: " << Error << "\n";
      return false;
    }
    if (!Note.empty())
      Out << "warning: " << Note << "\n";
  } else {
    Slicing = std::make_unique<SliceSession>(*RegionPb, SliceOpts);
    bool Ready = false;
    if (RegionPbFingerprint != 0 && !RegionPbSourceDir.empty()) {
      // No repository (the standalone CLI): use the on-disk index directly.
      std::string LoadErr;
      Ready = Slicing->loadIndex(RegionPbSourceDir, RegionPbFingerprint,
                                 LoadErr);
      if (!Ready && !LoadErr.empty())
        Out << "warning: on-disk slice index unusable, re-preparing ("
            << LoadErr << ")\n";
    }
    if (!Ready && !Slicing->prepare(Error)) {
      err() << "error: " << Error << "\n";
      Slicing.reset();
      return false;
    }
    if (!Ready && RegionPbFingerprint != 0 && !RegionPbSourceDir.empty()) {
      std::string SaveErr;
      Slicing->saveIndex(RegionPbSourceDir, RegionPbFingerprint, SaveErr);
      // A failed write costs only future warm loads; stay silent.
    }
  }
  Out << "slicing ready: " << slicing()->traces().totalEntries()
      << " trace entries\n";
  return true;
}

//===----------------------------------------------------------------------===//
// Command dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Swapped in for the session stream's rdbuf while one command runs: bytes
/// still reach the original sink, and a copy lands in the CommandResult.
class TeeStreambuf : public std::streambuf {
public:
  TeeStreambuf(std::streambuf *Downstream, std::string &Captured)
      : Downstream(Downstream), Captured(Captured) {}

protected:
  int overflow(int Ch) override {
    if (Ch != traits_type::eof()) {
      Captured.push_back(static_cast<char>(Ch));
      if (Downstream)
        Downstream->sputc(static_cast<char>(Ch));
    }
    return Ch;
  }
  std::streamsize xsputn(const char *S, std::streamsize N) override {
    Captured.append(S, static_cast<size_t>(N));
    if (Downstream)
      Downstream->sputn(S, N);
    return N;
  }

private:
  std::streambuf *Downstream;
  std::string &Captured;
};

} // namespace

CommandResult DebugSession::executeCommand(const std::string &Line) {
  trace::TraceSpan Span("session.execute", "debugger");
  CommandResult R;
  TeeStreambuf Tee(Out.rdbuf(), R.Text);
  std::streambuf *Orig = Out.rdbuf(&Tee);
  CmdFailed = false;
  bool Alive = dispatchCommand(Line);
  Out.rdbuf(Orig);
  R.Status = !Alive    ? CommandStatus::Exited
             : CmdFailed ? CommandStatus::Error
                         : CommandStatus::Ok;
  return R;
}

CommandResult DebugSession::loadProgram(const std::string &AsmText) {
  CommandResult R;
  TeeStreambuf Tee(Out.rdbuf(), R.Text);
  std::streambuf *Orig = Out.rdbuf(&Tee);
  bool Ok = loadProgramText(AsmText);
  Out.rdbuf(Orig);
  R.Status = Ok ? CommandStatus::Ok : CommandStatus::Error;
  return R;
}

bool DebugSession::execute(const std::string &Line) {
  return executeCommand(Line).Status != CommandStatus::Exited;
}

bool DebugSession::dispatchCommand(const std::string &Line) {
  std::istringstream Args(Line);
  std::string Cmd;
  if (!(Args >> Cmd))
    return true;
  if (Cmd == "quit" || Cmd == "q")
    return false;
  if (Cmd == "help") {
    Out << helpText();
    return true;
  }

  if (Cmd == "load") {
    std::string Path;
    if (!(Args >> Path)) {
      err() << "usage: load <file>\n";
      return true;
    }
    std::ifstream IS(Path);
    if (!IS) {
      err() << "error: cannot read " << Path << "\n";
      return true;
    }
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    loadProgramText(Buf.str());
    return true;
  }

  if (Cmd == "fault") {
    cmdFault(Args);
    return true;
  }

  if (!Prog) {
    err() << "error: no program loaded\n";
    return true;
  }

  if (Cmd == "run")
    cmdRun(Args);
  else if (Cmd == "break" || Cmd == "b")
    cmdBreak(Args);
  else if (Cmd == "watch")
    cmdWatch(Args);
  else if (Cmd == "unwatch") {
    unsigned Id = 0;
    if (!(Args >> Id) || !Watchpoints.count(Id))
      err() << "error: no such watchpoint\n";
    else {
      Watchpoints.erase(Id);
      Out << "deleted watchpoint " << Id << "\n";
    }
  } else if (Cmd == "delete")
    cmdDelete(Args);
  else if (Cmd == "continue" || Cmd == "c")
    cmdContinue();
  else if (Cmd == "stepi" || Cmd == "si")
    cmdStepi(Args);
  else if (Cmd == "info")
    cmdInfo(Args);
  else if (Cmd == "x")
    cmdExamine(Args);
  else if (Cmd == "print" || Cmd == "p")
    cmdPrint(Args);
  else if (Cmd == "backtrace" || Cmd == "bt")
    cmdBacktrace(Args);
  else if (Cmd == "record")
    cmdRecord(Args);
  else if (Cmd == "pinball")
    cmdPinball(Args);
  else if (Cmd == "replay")
    cmdReplay();
  else if (Cmd == "reverse-stepi" || Cmd == "rsi")
    cmdReverseStepi(Args);
  else if (Cmd == "reverse-continue" || Cmd == "rc")
    cmdReverseContinue();
  else if (Cmd == "reverse-next" || Cmd == "rn")
    cmdReverseNext();
  else if (Cmd == "reverse-watch" || Cmd == "rw")
    cmdReverseWatch(Args);
  else if (Cmd == "replay-position") {
    if (!Replay && Flight) {
      // Not replaying but recording: report the recorder's window instead
      // of only checkpoint counts.
      FlightStatus S = Flight->status();
      Out << "flight recorder: window [" << S.WindowStart << ", "
          << S.WindowEnd << "), " << S.EpochsRetained
          << " epochs retained, ~" << (S.RingBytes + S.CheckpointBytes)
          << " bytes\n";
    } else if (!Replay)
      err() << "error: not replaying\n";
    else
      Out << "replay position: " << Replay->position() << " of "
          << Replay->scheduleLength() << " recorded instructions (checkpoints: "
          << Replay->checkpointCount() << ", ~" << Replay->checkpointBytes()
          << " bytes)\n";
  } else if (Cmd == "replay-seek") {
    uint64_t Target = 0;
    std::istringstream &A = Args;
    if (!Replay || !(A >> Target)) {
      err() << "usage (while replaying): replay-seek <position>\n";
    } else {
      if (BpObserver)
        BpObserver->setEnabled(false);
      bool Ok = Replay->seek(Target);
      if (BpObserver)
        BpObserver->setEnabled(true);
      if (!Ok) {
        if (!Replay->lastError().empty())
          err() << "error: " << Replay->lastError() << " (landed at position "
                << Replay->position() << ")\n";
        else
          err() << "error: position beyond the end of the recording\n";
        return true;
      }
      Out << "replay position: " << Replay->position() << "\n";
      cmdWhere();
    }
  }
  else if (Cmd == "slice")
    cmdSlice(Args);
  else if (Cmd == "lastwrite")
    cmdLastWrite(Args);
  else if (Cmd == "valuesof")
    cmdValuesOf(Args);
  else if (Cmd == "readersof")
    cmdReadersOf(Args);
  else if (Cmd == "where")
    cmdWhere();
  else if (Cmd == "list")
    cmdList(Args);
  else if (Cmd == "output") {
    Machine *M = currentMachine();
    Out << "output:";
    if (M)
      for (int64_t V : M->output())
        Out << " " << V;
    Out << "\n";
  } else
    err() << "error: unknown command '" << Cmd << "'\n";
  return true;
}

//===----------------------------------------------------------------------===//
// Execution commands
//===----------------------------------------------------------------------===//

void DebugSession::cmdRun(std::istringstream &Args) {
  uint64_t Seed = LiveSeed;
  Args >> Seed;
  Flight.reset();
  Replay.reset();
  SliceReplayActive = false;
  Live = std::make_unique<Machine>(*Prog);
  Live->setScheduler(&liveScheduler(Seed));
  LiveWorld = std::make_unique<DefaultSyscalls>(Seed);
  Live->setSyscalls(LiveWorld.get());
  BpObserver = std::make_unique<BreakpointObserver>(*this, *Live);
  Live->addObserver(BpObserver.get());
  Out << "running (seed " << Seed << ")\n";
  reportStop(Live->run());
}

void DebugSession::cmdBreak(std::istringstream &Args) {
  std::string Tok;
  if (!(Args >> Tok)) {
    err() << "usage: break <pc>|<func>[+off]\n";
    return;
  }
  uint64_t Pc = 0;
  if (!parseLocation(Tok, Pc)) {
    err() << "error: bad location '" << Tok << "'\n";
    return;
  }
  unsigned Id = NextBreakpointId++;
  Breakpoints[Id] = Pc;
  Out << "breakpoint " << Id << " at " << disassembleAt(*Prog, Pc) << " (line "
      << Prog->inst(Pc).Line << ")\n";
}

void DebugSession::cmdWatch(std::istringstream &Args) {
  std::string Name;
  if (!(Args >> Name)) {
    err() << "usage: watch <global>\n";
    return;
  }
  const GlobalVar *G = Prog->findGlobal(Name);
  if (!G) {
    err() << "error: unknown global '" << Name << "'\n";
    return;
  }
  unsigned Id = NextWatchpointId++;
  Watchpoints[Id] = {G->Addr, Name};
  Out << "watchpoint " << Id << " on " << Name << " (address " << G->Addr
      << ")\n";
}

void DebugSession::cmdDelete(std::istringstream &Args) {
  unsigned Id = 0;
  if (!(Args >> Id) || !Breakpoints.count(Id)) {
    err() << "error: no such breakpoint\n";
    return;
  }
  Breakpoints.erase(Id);
  Out << "deleted breakpoint " << Id << "\n";
}

void DebugSession::cmdContinue() {
  Machine *M = currentMachine();
  if (!M) {
    err() << "error: nothing is running; use 'run' or 'replay'\n";
    return;
  }
  // Step past the breakpoint the current thread is poised at.
  if (BpObserver && CurrentTid < M->numThreads())
    BpObserver->suppressAt(CurrentTid, M->thread(CurrentTid).Pc);
  reportStop(Replay ? Replay->runForward() : Live->run());
}

void DebugSession::cmdStepi(std::istringstream &Args) {
  Machine *M = currentMachine();
  if (!M) {
    err() << "error: nothing is running; use 'run' or 'replay'\n";
    return;
  }
  uint64_t N = 1;
  Args >> N;
  if (BpObserver && CurrentTid < M->numThreads())
    BpObserver->suppressAt(CurrentTid, M->thread(CurrentTid).Pc);
  Machine::StopReason Reason =
      Replay ? Replay->runForward(N) : Live->run(N);
  uint32_t Tid;
  uint64_t Pc;
  if (BpObserver && BpObserver->lastExec(Tid, Pc)) {
    CurrentTid = Tid;
    Out << "stepped tid " << Tid << ", now at:\n";
    printCurrentStatement(Tid);
  }
  if (Reason != Machine::StopReason::StepLimit)
    reportStop(Reason);
}

//===----------------------------------------------------------------------===//
// State examination
//===----------------------------------------------------------------------===//

void DebugSession::cmdInfo(std::istringstream &Args) {
  std::string What;
  Args >> What;
  Machine *M = currentMachine();
  if (What == "breakpoints") {
    for (auto &[Id, Pc] : Breakpoints)
      Out << "  " << Id << ": " << disassembleAt(*Prog, Pc) << " (line "
          << Prog->inst(Pc).Line << ")\n";
    if (Breakpoints.empty())
      Out << "  no breakpoints\n";
    return;
  }
  if (What == "watchpoints") {
    for (auto &[Id, W] : Watchpoints)
      Out << "  " << Id << ": " << W.Name << " (address " << W.Addr
          << ")\n";
    if (Watchpoints.empty())
      Out << "  no watchpoints\n";
    return;
  }
  if (!M) {
    err() << "error: nothing is running\n";
    return;
  }
  if (What == "threads") {
    for (uint32_t T = 0; T != M->numThreads(); ++T) {
      const ThreadContext &TC = M->thread(T);
      const char *Status = "runnable";
      if (TC.Status == ThreadStatus::BlockedOnLock)
        Status = "blocked-on-lock";
      else if (TC.Status == ThreadStatus::BlockedOnJoin)
        Status = "blocked-on-join";
      else if (TC.Status == ThreadStatus::Exited)
        Status = "exited";
      Out << "  tid " << T << " [" << Status << "] pc " << TC.Pc;
      if (TC.Pc < Prog->size())
        Out << " (line " << Prog->inst(TC.Pc).Line << ")";
      Out << " executed " << TC.ExecCount << "\n";
    }
    return;
  }
  if (What == "regs") {
    uint32_t Tid = CurrentTid;
    Args >> Tid;
    if (Tid >= M->numThreads()) {
      err() << "error: bad tid\n";
      return;
    }
    const ThreadContext &TC = M->thread(Tid);
    for (unsigned R = 0; R != NumRegs; ++R)
      Out << "  r" << R << " = " << TC.Regs[R] << "\n";
    return;
  }
  err() << "usage: info threads|regs|breakpoints\n";
}

void DebugSession::cmdExamine(std::istringstream &Args) {
  Machine *M = currentMachine();
  uint64_t Addr = 0, N = 1;
  if (!M || !(Args >> Addr)) {
    err() << "usage (while running): x <addr> [count]\n";
    return;
  }
  Args >> N;
  for (uint64_t I = 0; I != N; ++I)
    Out << "  [" << (Addr + I) << "] = " << M->mem().load(Addr + I) << "\n";
}

void DebugSession::cmdPrint(std::istringstream &Args) {
  Machine *M = currentMachine();
  std::string Name;
  if (!M || !(Args >> Name)) {
    err() << "usage (while running): print <global>\n";
    return;
  }
  const GlobalVar *G = Prog->findGlobal(Name);
  if (!G) {
    err() << "error: unknown global '" << Name << "'\n";
    return;
  }
  Out << "  " << Name << " = " << M->mem().load(G->Addr) << "\n";
}

void DebugSession::cmdBacktrace(std::istringstream &Args) {
  Machine *M = currentMachine();
  if (!M) {
    err() << "error: nothing is running\n";
    return;
  }
  uint32_t Tid = CurrentTid;
  Args >> Tid;
  if (Tid >= M->numThreads()) {
    err() << "error: bad tid\n";
    return;
  }
  const ThreadContext &TC = M->thread(Tid);
  Out << "backtrace of tid " << Tid << ":\n";
  Out << "  #0 " << disassembleAt(*Prog, TC.Pc) << "\n";
  unsigned Level = 1;
  for (auto It = TC.CallStack.rbegin(); It != TC.CallStack.rend(); ++It)
    Out << "  #" << Level++ << " return to " << disassembleAt(*Prog, *It)
        << "\n";
}

void DebugSession::cmdWhere() {
  Machine *M = currentMachine();
  if (!M) {
    err() << "error: nothing is running\n";
    return;
  }
  for (uint32_t T = 0; T != M->numThreads(); ++T)
    if (M->thread(T).Status != ThreadStatus::Exited)
      printCurrentStatement(T);
}

void DebugSession::cmdList(std::istringstream &Args) {
  std::string Name;
  if (!(Args >> Name)) {
    err() << "usage: list <func>\n";
    return;
  }
  int Idx = Prog->findFunction(Name);
  if (Idx < 0) {
    err() << "error: unknown function '" << Name << "'\n";
    return;
  }
  const Function &F = Prog->Funcs[static_cast<size_t>(Idx)];
  for (uint64_t Pc = F.Begin; Pc != F.End; ++Pc)
    Out << "  " << disassembleAt(*Prog, Pc) << "\n";
}

void DebugSession::cmdFault(std::istringstream &Args) {
  std::string Sub;
  if (!(Args >> Sub) || Sub != "list") {
    err() << "usage: fault list\n";
    return;
  }
  Out << FaultInjector::global().describe();
}

bool DebugSession::snapshotExpressible() const {
  return Replay && !SliceReplayActive && !Live && !Flight &&
         !DivergenceAnnounced && Breakpoints.empty() && Watchpoints.empty() &&
         !CurrentSlice && !SlicePb && !Slicing && !SharedSlicing &&
         RegionPb.has_value();
}

uint64_t DebugSession::replayPosition() const {
  return Replay ? Replay->position() : 0;
}

//===----------------------------------------------------------------------===//
// Record / replay commands
//===----------------------------------------------------------------------===//

void DebugSession::cmdRecord(std::istringstream &Args) {
  std::string What;
  Args >> What;
  if (What == "attach") {
    cmdRecordAttach(Args);
    return;
  }
  if (What == "status") {
    cmdRecordStatus();
    return;
  }
  if (What == "dump") {
    cmdRecordDump(Args);
    return;
  }
  RegionSpec Spec;
  uint64_t Seed = LiveSeed;
  if (What == "region") {
    if (!(Args >> Spec.SkipMainInstrs >> Spec.LengthMainInstrs)) {
      err() << "usage: record region <skip> <len> [seed]\n";
      return;
    }
    Args >> Seed;
  } else if (What == "failure") {
    Args >> Seed;
  } else {
    err() << "usage: record region <skip> <len> [seed] | record failure "
             "[seed] | record attach [seed [epoch [max]]] | record status | "
             "record dump [<dir>]\n";
    return;
  }
  RandomScheduler Sched(Seed, 1, 4);
  DefaultSyscalls World(Seed);
  LogResult Log = Logger::logRegion(*Prog, Sched, &World, Spec);
  RegionPb = std::move(Log.Pb);
  ++RegionPbGen;
  RegionPbFingerprint = 0; // in-memory recording: not shareable by key
  RegionPbSourceDir.clear();
  Slicing.reset();
  SharedSlicing.reset();
  CurrentSlice.reset();
  SlicePb.reset();
  Out << "recorded region pinball: " << Log.TotalInstrs << " instructions ("
      << Log.MainThreadInstrs << " in main thread), "
      << (Log.FailureCaptured ? "failure captured" : "no failure") << "\n";
}

void DebugSession::cmdRecordAttach(std::istringstream &Args) {
  uint64_t Seed = LiveSeed;
  uint64_t EpochInstrs = 0;
  uint64_t MaxEpochs = 0;
  Args >> Seed >> EpochInstrs >> MaxEpochs;
  FlightOptions FO;
  if (EpochInstrs)
    FO.EpochInstrs = EpochInstrs;
  if (MaxEpochs)
    FO.MaxEpochs = static_cast<size_t>(MaxEpochs);
  // Live attach: a machine is stopped mid-run (breakpoint, step limit) —
  // recording starts at its current position without executing anything.
  if (Live && !Live->finished() && !Live->assertFailed() && !Replay) {
    Flight.reset();
    Flight = std::make_unique<FlightRecorder>(*Live, FO);
    Out << "flight recorder attached at instruction " << Live->globalCount()
        << " (epoch " << FO.EpochInstrs << " instrs, max "
        << FO.MaxEpochs << " epochs)\n";
    return;
  }
  // Otherwise start a fresh live run with the recorder on from instruction 0.
  Flight.reset();
  Replay.reset();
  SliceReplayActive = false;
  Live = std::make_unique<Machine>(*Prog);
  Live->setScheduler(&liveScheduler(Seed));
  LiveWorld = std::make_unique<DefaultSyscalls>(Seed);
  Live->setSyscalls(LiveWorld.get());
  Flight = std::make_unique<FlightRecorder>(*Live, FO);
  BpObserver = std::make_unique<BreakpointObserver>(*this, *Live);
  Live->addObserver(BpObserver.get());
  Out << "recording in flight mode (seed " << Seed << ", epoch "
      << FO.EpochInstrs << " instrs, max " << FO.MaxEpochs << " epochs)\n";
  reportStop(Live->run());
}

void DebugSession::cmdRecordStatus() {
  if (!Flight) {
    err() << "error: no flight recorder; use 'record attach'\n";
    return;
  }
  FlightStatus S = Flight->status();
  const FlightOptions &O = Flight->options();
  Out << "flight recorder: window [" << S.WindowStart << ", " << S.WindowEnd
      << ") — " << (S.WindowEnd - S.WindowStart) << " of " << S.WindowEnd
      << " executed instructions retained\n"
      << "  epochs: " << S.EpochsRetained << " retained, " << S.EpochsEvicted
      << " evicted, " << S.EpochsRecorded << " recorded (epoch "
      << O.EpochInstrs << " instrs)\n"
      << "  memory: rings " << S.RingBytes << " bytes + checkpoints "
      << S.CheckpointBytes << " bytes (peak " << S.PeakBytes << ", budget ";
  if (O.MemoryBudgetBytes)
    Out << O.MemoryBudgetBytes << " bytes)\n";
  else
    Out << "unbounded)\n";
  Out << "  dumps: " << S.Dumps << ", failure captured: "
      << (S.FailureSeen ? "yes" : "no") << "\n";
}

void DebugSession::cmdRecordDump(std::istringstream &Args) {
  if (!Flight) {
    err() << "error: no flight recorder; use 'record attach'\n";
    return;
  }
  std::string Dir;
  Args >> Dir;
  Pinball Pb;
  std::string Error;
  if (!Flight->dump(Pb, Error)) {
    err() << "error: " << Error << "\n";
    return;
  }
  FlightStatus S = Flight->status();
  RegionPb = std::move(Pb);
  ++RegionPbGen;
  RegionPbFingerprint = 0; // in-memory dump: not shareable by key
  RegionPbSourceDir.clear();
  Slicing.reset();
  SharedSlicing.reset();
  CurrentSlice.reset();
  SlicePb.reset();
  Out << "flight dump: " << RegionPb->instructionCount()
      << " instructions (window [" << S.WindowStart << ", " << S.WindowEnd
      << ")), "
      << (RegionPb->Meta.count("failtid") ? "failure captured" : "no failure")
      << "\n";
  if (!Dir.empty()) {
    if (!RegionPb->save(Dir, Error))
      err() << "error: " << Error << "\n";
    else
      Out << "pinball saved to " << Dir << " (" << Pinball::diskSizeBytes(Dir)
          << " bytes)\n";
  }
}

void DebugSession::cmdPinball(std::istringstream &Args) {
  std::string What, Dir;
  if (!(Args >> What >> Dir)) {
    err() << "usage: pinball save|load|verify|index [verify] <dir>"
             " [--no-verify]\n";
    return;
  }
  std::string Error;
  if (What == "index") {
    std::string Target = Dir;
    bool CheckOnly = false;
    if (Target == "verify") {
      CheckOnly = true;
      if (!(Args >> Target)) {
        err() << "usage: pinball index [verify] <dir>\n";
        return;
      }
    }
    std::string IndexDir = SliceIndexStore::indexDirFor(Target);
    if (CheckOnly) {
      SliceIndexStore::FsckReport R;
      if (!SliceIndexStore::fsck(IndexDir, R, Error)) {
        err() << "index FAILED: " << Error << "\n";
        return;
      }
      if (PinballRepository::dirFingerprint(Target) != R.Fingerprint) {
        err() << "index STALE: fingerprint mismatch (pinball changed since "
                 "the index was written)\n";
        return;
      }
      Out << "index OK: v" << R.Version << ", fingerprint " << R.Fingerprint
          << ", " << R.Entries << " trace entries, " << R.Threads
          << " threads, " << R.DefLocations << " def locations, " << R.Bytes
          << " bytes\n";
      return;
    }
    Pinball Pb;
    if (!Pb.load(Target, Error)) {
      err() << "error: " << Error << "\n";
      return;
    }
    uint64_t Fp = PinballRepository::dirFingerprint(Target);
    if (!Fp) {
      err() << "error: cannot fingerprint " << Target << "\n";
      return;
    }
    SliceSession S(Pb, SliceOpts);
    if (!S.prepare(Error) || !S.saveIndex(Target, Fp, Error)) {
      err() << "error: " << Error << "\n";
      return;
    }
    Out << "slice index written to " << IndexDir << " ("
        << S.traces().totalEntries() << " trace entries)\n";
    return;
  }
  if (What == "save") {
    if (!RegionPb) {
      err() << "error: nothing recorded\n";
      return;
    }
    if (!RegionPb->save(Dir, Error))
      err() << "error: " << Error << "\n";
    else
      Out << "pinball saved to " << Dir << " ("
          << Pinball::diskSizeBytes(Dir) << " bytes)\n";
    return;
  }
  if (What == "verify") {
    Pinball Pb;
    PinballIntegrity Info;
    if (!Pb.load(Dir, Error, PinballLoadOptions(), &Info)) {
      err() << (Info.IntegrityViolation ? "integrity FAILED: " : "error: ")
          << Error << "\n";
      return;
    }
    if (!Info.ManifestPresent) {
      Out << "warning: " << Info.Warning << "\n";
      return;
    }
    Out << "integrity OK: manifest v" << Info.FormatVersion << ", "
        << Pb.instructionCount() << " instructions\n";
    return;
  }
  if (What == "load") {
    bool Verify = PbVerifyDefault;
    std::string Flag;
    while (Args >> Flag) {
      if (Flag == "--no-verify")
        Verify = false;
      else {
        err() << "usage: pinball load <dir> [--no-verify]\n";
        return;
      }
    }
    PinballIntegrity Info;
    if (PbRepo && Verify) {
      std::shared_ptr<const Pinball> Cached = PbRepo->load(Dir, Error, &Info);
      if (!Cached) {
        err() << "error: " << Error << "\n";
        return;
      }
      RegionPb = *Cached; // the repository keeps the parsed master copy
      ++RegionPbGen;
    } else {
      // --no-verify bypasses the shared cache: an escape hatch must not
      // seed other sessions with an unchecked pinball.
      Pinball Pb;
      PinballLoadOptions Opts;
      Opts.Verify = Verify;
      if (!Pb.load(Dir, Error, Opts, &Info)) {
        err() << "error: " << Error << "\n";
        return;
      }
      RegionPb = std::move(Pb);
      ++RegionPbGen;
    }
    RegionPbFingerprint = PinballRepository::dirFingerprint(Dir);
    RegionPbSourceDir = RegionPbFingerprint ? Dir : std::string();
    Slicing.reset();
    SharedSlicing.reset();
    CurrentSlice.reset();
    SlicePb.reset();
    if (!Info.Warning.empty())
      Out << "warning: " << Info.Warning << "\n";
    Out << "pinball loaded from " << Dir << ": "
        << RegionPb->instructionCount() << " instructions\n";
    return;
  }
  err() << "usage: pinball save|load|verify|index [verify] <dir>"
           " [--no-verify]\n";
}

void DebugSession::cmdReplay() {
  if (!RegionPb) {
    err() << "error: no region pinball; use 'record' or 'pinball load'\n";
    return;
  }
  Flight.reset();
  Live.reset();
  SliceReplayActive = false;
  DivergenceAnnounced = false;
  Replay = std::make_unique<CheckpointedReplay>(*RegionPb, /*Interval=*/256);
  if (!Replay->valid()) {
    err() << "error: " << Replay->error() << "\n";
    Replay.reset();
    return;
  }
  BpObserver = std::make_unique<BreakpointObserver>(*this, Replay->machine());
  Replay->machine().addObserver(BpObserver.get());
  Out << "replaying region pinball (" << RegionPb->instructionCount()
      << " instructions)\n";
  reportStop(Replay->runForward());
}

void DebugSession::cmdReverseStepi(std::istringstream &Args) {
  if (!Replay) {
    err() << "error: reverse stepping needs an active replay\n";
    return;
  }
  uint64_t N = 1;
  Args >> N;
  uint64_t Pos = Replay->position();
  // One seek, whatever n is: the checkpointed replayer restores the nearest
  // checkpoint before the target once and replays forward, so the cost is
  // O(Interval), not O(n x Interval).
  uint64_t Target = Pos > N ? Pos - N : 0;
  if (BpObserver)
    BpObserver->setEnabled(false);
  bool Ok = Replay->seek(Target);
  if (BpObserver)
    BpObserver->setEnabled(true);
  if (!Ok) {
    // Partial landing: say where the replay actually stopped and why,
    // instead of a bare failure with the position silently wrong.
    err() << "error: reverse step stopped at position " << Replay->position()
          << " (wanted " << Target << ")";
    if (!Replay->lastError().empty())
      err() << ": " << Replay->lastError();
    err() << "\n";
    return;
  }
  Out << "stepped backwards to position " << Replay->position() << "\n";
  cmdWhere();
}

void DebugSession::cmdReverseContinue() {
  if (!Replay) {
    err() << "error: reverse execution needs an active replay\n";
    return;
  }
  if (Breakpoints.empty() && Watchpoints.empty()) {
    // Nothing to stop at: rewind to the region start, like gdb.
    if (BpObserver)
      BpObserver->setEnabled(false);
    Replay->seek(0);
    if (BpObserver)
      BpObserver->setEnabled(true);
    Out << "reached the beginning of the recording (position 0)\n";
    cmdWhere();
    return;
  }
  // One forward scan per checkpoint segment, newest first; a position is a
  // breakpoint hit when the recorded schedule's next thread is poised at a
  // breakpoint pc (the exact condition the forward observer checks in
  // onPreExec), and a watchpoint hit when a watched value differs from the
  // previous position's.
  struct HitInfo {
    bool IsWatch = false;
    unsigned Id = 0;
    int64_t Old = 0, New = 0;
  };
  std::map<uint64_t, HitInfo> Hits;
  std::map<unsigned, int64_t> LastVal;
  if (BpObserver)
    BpObserver->setEnabled(false);
  uint64_t Hit = Replay->scanBackward([&](Machine &M, uint64_t Pos,
                                          bool SegmentStart) {
    bool IsHit = false;
    int64_t NextTid = Replay->nextScheduledTid();
    if (NextTid >= 0 && static_cast<uint32_t>(NextTid) < M.numThreads()) {
      uint64_t Pc = M.thread(static_cast<uint32_t>(NextTid)).Pc;
      for (const auto &[Id, BpPc] : Breakpoints)
        if (BpPc == Pc) {
          Hits[Pos] = {false, Id, 0, 0};
          IsHit = true;
          break;
        }
    }
    for (const auto &[Id, W] : Watchpoints) {
      int64_t V = M.mem().load(W.Addr);
      if (!SegmentStart) {
        auto It = LastVal.find(Id);
        if (It != LastVal.end() && It->second != V) {
          Hits[Pos] = {true, Id, It->second, V};
          IsHit = true;
        }
      }
      LastVal[Id] = V;
    }
    return IsHit;
  });
  if (BpObserver)
    BpObserver->setEnabled(true);
  if (Hit == CheckpointedReplay::NotFound) {
    if (!Replay->lastError().empty()) {
      err() << "error: " << Replay->lastError() << "\n";
      return;
    }
    Out << "no breakpoint or watchpoint hit before position "
        << Replay->position() << "; not moving\n";
    return;
  }
  const HitInfo &H = Hits[Hit];
  int64_t NextTid = Replay->nextScheduledTid();
  if (NextTid >= 0)
    CurrentTid = static_cast<uint32_t>(NextTid);
  if (H.IsWatch)
    Out << "reverse-continue: watchpoint " << H.Id << " ("
        << Watchpoints.at(H.Id).Name << ") last changed " << H.Old << " -> "
        << H.New << " at position " << Hit << "\n";
  else
    Out << "reverse-continue: breakpoint " << H.Id << " hit at position "
        << Hit << " (tid " << CurrentTid << ")\n";
  cmdWhere();
}

void DebugSession::cmdReverseNext() {
  if (!Replay) {
    err() << "error: reverse execution needs an active replay\n";
    return;
  }
  uint32_t Tid = CurrentTid;
  if (BpObserver)
    BpObserver->setEnabled(false);
  // Land just before the current thread's previous scheduled instruction.
  uint64_t Hit = Replay->scanBackward([&](Machine &, uint64_t, bool) {
    return Replay->nextScheduledTid() == static_cast<int64_t>(Tid);
  });
  if (BpObserver)
    BpObserver->setEnabled(true);
  if (Hit == CheckpointedReplay::NotFound) {
    if (!Replay->lastError().empty()) {
      err() << "error: " << Replay->lastError() << "\n";
      return;
    }
    Out << "tid " << Tid << " does not run earlier in the recording; "
        << "not moving\n";
    return;
  }
  Out << "reverse-next: tid " << Tid << " about to execute at position " << Hit
      << "\n";
  printCurrentStatement(Tid);
}

void DebugSession::cmdReverseWatch(std::istringstream &Args) {
  if (!Replay) {
    err() << "error: reverse execution needs an active replay\n";
    return;
  }
  std::string Name;
  if (!(Args >> Name)) {
    err() << "usage (while replaying): reverse-watch <global>\n";
    return;
  }
  const GlobalVar *G = Prog->findGlobal(Name);
  if (!G) {
    err() << "error: unknown global '" << Name << "'\n";
    return;
  }
  uint64_t Addr = G->Addr;
  int64_t Last = 0;
  int64_t Old = 0, New = 0;
  if (BpObserver)
    BpObserver->setEnabled(false);
  uint64_t Hit =
      Replay->scanBackward([&](Machine &M, uint64_t, bool SegmentStart) {
        int64_t V = M.mem().load(Addr);
        bool Changed = !SegmentStart && V != Last;
        if (Changed) {
          Old = Last;
          New = V;
        }
        Last = V;
        return Changed;
      });
  if (BpObserver)
    BpObserver->setEnabled(true);
  if (Hit == CheckpointedReplay::NotFound) {
    if (!Replay->lastError().empty()) {
      err() << "error: " << Replay->lastError() << "\n";
      return;
    }
    Out << Name << " is never written before position " << Replay->position()
        << "; not moving\n";
    return;
  }
  Out << "reverse-watch: " << Name << " last changed " << Old << " -> " << New
      << " at position " << Hit << "\n";
  cmdWhere();
}

//===----------------------------------------------------------------------===//
// Slice commands
//===----------------------------------------------------------------------===//

void DebugSession::cmdSlice(std::istringstream &Args) {
  std::string Sub;
  Args >> Sub;

  if (Sub == "fail" || Sub.empty() ||
      std::isdigit(static_cast<unsigned char>(Sub[0]))) {
    if (!ensureSliceSession())
      return;
    std::optional<SliceCriterion> C;
    if (Sub == "fail" || Sub.empty()) {
      C = slicing()->failureCriterion();
      if (!C) {
        err() << "error: pinball has no recorded failure point\n";
        return;
      }
    } else {
      SliceCriterion Crit;
      Crit.Tid = static_cast<uint32_t>(std::strtoul(Sub.c_str(), nullptr, 10));
      if (!(Args >> Crit.Pc)) {
        err() << "usage: slice <tid> <pc> [instance]\n";
        return;
      }
      Args >> Crit.Instance;
      C = Crit;
    }
    auto Sl = slicing()->computeSlice(*C);
    if (!Sl) {
      err() << "error: criterion never executed in the region\n";
      return;
    }
    CurrentSlice = std::move(*Sl);
    auto Lines = CurrentSlice->sourceLines(slicing()->globalTrace());
    Out << "slice: " << CurrentSlice->dynamicSize()
        << " dynamic instructions, "
        << CurrentSlice->staticSize(slicing()->globalTrace())
        << " static instructions, " << Lines.size() << " source lines\n";
    Out << "lines:";
    for (uint32_t L : Lines)
      Out << " " << L;
    Out << "\n";
    return;
  }

  if (Sub == "forward") {
    if (!ensureSliceSession())
      return;
    SliceCriterion Crit;
    if (!(Args >> Crit.Tid >> Crit.Pc)) {
      err() << "usage: slice forward <tid> <pc> [instance]\n";
      return;
    }
    Args >> Crit.Instance;
    auto Sl = slicing()->computeForwardSlice(Crit);
    if (!Sl) {
      err() << "error: criterion never executed in the region\n";
      return;
    }
    CurrentSlice = std::move(*Sl);
    auto Lines = CurrentSlice->sourceLines(slicing()->globalTrace());
    Out << "forward slice: " << CurrentSlice->dynamicSize()
        << " dynamic instructions, " << Lines.size() << " source lines\n";
    Out << "lines:";
    for (uint32_t L : Lines)
      Out << " " << L;
    Out << "\n";
    return;
  }

  if (Sub == "list") {
    if (!CurrentSlice || !slicing()) {
      err() << "error: no slice computed\n";
      return;
    }
    const GlobalTrace &GT = slicing()->globalTrace();
    size_t Shown = 0;
    for (uint32_t Pos : CurrentSlice->Positions) {
      const GlobalRef &R = GT.ref(Pos);
      const TraceEntry &E = GT.entry(Pos);
      Out << "  [" << Shown << "] pos " << Pos << " tid " << R.Tid << " line "
          << E.Line << ": " << disassembleAt(*Prog, E.Pc) << "\n";
      if (++Shown == 200) {
        Out << "  ... ("
            << (CurrentSlice->Positions.size() - Shown) << " more)\n";
        break;
      }
    }
    return;
  }

  if (Sub == "deps") {
    size_t N = 0;
    if (!CurrentSlice || !slicing() || !(Args >> N) ||
        N >= CurrentSlice->Positions.size()) {
      err() << "usage: slice deps <entry-index> (after computing a slice)\n";
      return;
    }
    const GlobalTrace &GT = slicing()->globalTrace();
    uint32_t Pos = CurrentSlice->Positions[N];
    Out << "dependences of pos " << Pos << " ("
        << disassembleAt(*Prog, GT.entry(Pos).Pc) << "):\n";
    for (const DepEdge &E : CurrentSlice->dependencesOf(Pos)) {
      const TraceEntry &P = GT.entry(E.ToPos);
      const GlobalRef &R = GT.ref(E.ToPos);
      Out << "  " << (E.IsControl ? "control" : "data") << " <- pos "
          << E.ToPos << " tid " << R.Tid << " line " << P.Line << ": "
          << disassembleAt(*Prog, P.Pc) << "\n";
    }
    return;
  }

  if (Sub == "save") {
    std::string Path;
    if (!CurrentSlice || !slicing() || !(Args >> Path)) {
      err() << "usage: slice save <file> (after computing a slice)\n";
      return;
    }
    std::ofstream OS(Path);
    if (!OS) {
      err() << "error: cannot write " << Path << "\n";
      return;
    }
    saveSpecialSliceFile(OS, slicing()->globalTrace(), *CurrentSlice,
                         slicing()->exclusionRegions(*CurrentSlice));
    Out << "slice saved to " << Path << "\n";
    return;
  }

  if (Sub == "report") {
    std::string Path;
    if (!CurrentSlice || !slicing() || !(Args >> Path)) {
      err() << "usage: slice report <file.html> (after computing a slice)\n";
      return;
    }
    std::ofstream OS(Path);
    if (!OS) {
      err() << "error: cannot write " << Path << "\n";
      return;
    }
    writeSliceReportHtml(OS, *Prog, slicing()->globalTrace(), *CurrentSlice);
    Out << "slice report written to " << Path << "\n";
    return;
  }

  if (Sub == "regions") {
    if (!CurrentSlice || !slicing()) {
      err() << "error: no slice computed\n";
      return;
    }
    auto Regions = slicing()->exclusionRegions(*CurrentSlice);
    Out << Regions.size() << " exclusion regions\n";
    for (const ExclusionRegion &R : Regions) {
      Out << "  tid " << R.Tid << " [" << R.StartPc << ":" << R.StartInstance
          << ", ";
      if (R.EndIndex == ~0ULL)
        Out << "end";
      else
        Out << R.EndPc << ":" << R.EndInstance;
      Out << ")\n";
    }
    return;
  }

  if (Sub == "pinball") {
    if (!CurrentSlice || !slicing()) {
      err() << "error: no slice computed\n";
      return;
    }
    Pinball Pb;
    std::string Error;
    if (!slicing()->makeSlicePinball(*CurrentSlice, Pb, Error)) {
      err() << "error: " << Error << "\n";
      return;
    }
    SlicePb = std::move(Pb);
    std::string Dir;
    if (Args >> Dir) {
      if (!SlicePb->save(Dir, Error)) {
        err() << "error: " << Error << "\n";
        return;
      }
    }
    Out << "slice pinball: " << SlicePb->instructionCount()
        << " instructions (region had " << RegionPb->instructionCount()
        << ")\n";
    return;
  }

  if (Sub == "replay") {
    if (!SlicePb) {
      err() << "error: no slice pinball; use 'slice pinball' first\n";
      return;
    }
    Flight.reset();
    Live.reset();
    DivergenceAnnounced = false;
    Replay = std::make_unique<CheckpointedReplay>(*SlicePb, /*Interval=*/256);
    if (!Replay->valid()) {
      err() << "error: " << Replay->error() << "\n";
      Replay.reset();
      return;
    }
    SliceReplayActive = true;
    BpObserver =
        std::make_unique<BreakpointObserver>(*this, Replay->machine());
    Replay->machine().addObserver(BpObserver.get());
    Out << "replaying execution slice; use 'slice step' to advance\n";
    return;
  }

  if (Sub == "step") {
    if (!SliceReplayActive || !Replay) {
      err() << "error: not replaying a slice; use 'slice replay'\n";
      return;
    }
    if (!Replay->stepForward()) {
      if (Replay->divergence() &&
          divergenceIsFatal(Replay->divergence().Kind)) {
        reportStop(Machine::StopReason::StopRequested);
      } else if (Replay->machine().stopRequested()) {
        Replay->machine().clearStopRequest();
        reportStop(Machine::StopReason::StopRequested);
      } else if (Replay->machine().assertFailed()) {
        reportStop(Machine::StopReason::AssertFailed);
      } else {
        Out << "slice replay complete\n";
      }
      return;
    }
    uint32_t Tid;
    uint64_t Pc;
    if (BpObserver->lastExec(Tid, Pc)) {
      CurrentTid = Tid;
      Out << "slice step: tid " << Tid << " executed line "
          << Prog->inst(Pc).Line << ": " << disassembleAt(*Prog, Pc) << "\n";
    }
    return;
  }

  err() << "usage: slice fail | slice <tid> <pc> [inst] | slice "
         "forward <tid> <pc> [inst] | slice "
         "list|deps|save|report|regions|pinball|replay|step\n";
}

//===----------------------------------------------------------------------===//
// Omniscient queries (over the persistent def-use index)
//===----------------------------------------------------------------------===//

bool DebugSession::parseDataLocation(const std::string &Tok, Location &L) {
  if (Tok.empty())
    return false;
  // r<n>[@t<tid>] — a register; without the thread suffix, the current one.
  if (Tok[0] == 'r' && Tok.size() > 1 &&
      std::isdigit(static_cast<unsigned char>(Tok[1]))) {
    char *End = nullptr;
    unsigned long Reg = std::strtoul(Tok.c_str() + 1, &End, 10);
    uint32_t Tid = CurrentTid;
    if (End && End[0] == '@' && End[1] == 't') {
      char *TidEnd = nullptr;
      Tid = static_cast<uint32_t>(std::strtoul(End + 2, &TidEnd, 10));
      End = TidEnd;
    }
    if (End && *End == '\0' && Reg < 256) {
      L = regLoc(Tid, static_cast<unsigned>(Reg));
      return true;
    }
    // "r1" may also be a global name; fall through to the lookups below.
  }
  // m[<addr>] — explicit memory address.
  if (Tok.size() > 3 && Tok.compare(0, 2, "m[") == 0 && Tok.back() == ']') {
    char *End = nullptr;
    uint64_t Addr = std::strtoull(Tok.c_str() + 2, &End, 0);
    if (End && End == Tok.c_str() + Tok.size() - 1) {
      L = memLoc(Addr);
      return true;
    }
    return false;
  }
  // A global's name.
  if (const GlobalVar *G = Prog->findGlobal(Tok)) {
    L = memLoc(G->Addr);
    return true;
  }
  // A bare numeric address.
  if (std::isdigit(static_cast<unsigned char>(Tok[0]))) {
    char *End = nullptr;
    uint64_t Addr = std::strtoull(Tok.c_str(), &End, 0);
    if (End && *End == '\0') {
      L = memLoc(Addr);
      return true;
    }
  }
  return false;
}

namespace {

/// Renders \p L the way the omniscient commands report locations: globals
/// print as "name (m[addr])", everything else as locName().
std::string dataLocName(const Program &P, Location L) {
  if (!isRegLoc(L))
    for (const GlobalVar &G : P.Globals)
      if (G.Addr == locAddr(L))
        return G.Name + " (" + locName(L) + ")";
  return locName(L);
}

} // namespace

void DebugSession::cmdLastWrite(std::istringstream &Args) {
  std::string Tok;
  if (!(Args >> Tok)) {
    err() << "usage: lastwrite <loc> [pos]\n";
    return;
  }
  if (!ensureSliceSession())
    return;
  Location L = 0;
  if (!parseDataLocation(Tok, L)) {
    err() << "error: bad location '" << Tok << "'\n";
    return;
  }
  std::optional<uint32_t> Before;
  uint32_t Pos = 0;
  if (Args >> Pos)
    Before = Pos;
  auto W = slicing()->lastWrite(L, Before);
  if (!W) {
    err() << "error: " << dataLocName(*Prog, L) << " is never written"
          << (Before ? " before that position" : " in the region") << "\n";
    return;
  }
  Out << "last write to " << dataLocName(*Prog, L) << ": value " << W->Value
      << " by tid " << W->Tid << " at pos " << W->Pos << ", line " << W->Line
      << ": " << disassembleAt(*Prog, W->Pc) << "\n";
}

void DebugSession::cmdValuesOf(std::istringstream &Args) {
  std::string Tok;
  if (!(Args >> Tok)) {
    err() << "usage: valuesof <loc> [max]\n";
    return;
  }
  if (!ensureSliceSession())
    return;
  Location L = 0;
  if (!parseDataLocation(Tok, L)) {
    err() << "error: bad location '" << Tok << "'\n";
    return;
  }
  size_t Max = 0;
  Args >> Max;
  auto Writes = slicing()->valuesOf(L, Max);
  const auto *AllDefs = slicing()->defUse().defsOf(L);
  size_t Total = AllDefs ? AllDefs->size() : 0;
  if (Total == 0) {
    err() << "error: " << dataLocName(*Prog, L)
          << " is never written in the region\n";
    return;
  }
  Out << dataLocName(*Prog, L) << ": " << Total << " writes";
  if (Writes.size() < Total)
    Out << " (showing last " << Writes.size() << ")";
  Out << "\n";
  for (const auto &W : Writes)
    Out << "  pos " << W.Pos << " tid " << W.Tid << " line " << W.Line
        << ": value " << W.Value << "  (" << disassembleAt(*Prog, W.Pc)
        << ")\n";
}

void DebugSession::cmdReadersOf(std::istringstream &Args) {
  uint32_t Pos = 0;
  if (!(Args >> Pos)) {
    err() << "usage: readersof <pos>\n";
    return;
  }
  if (!ensureSliceSession())
    return;
  const GlobalTrace &GT = slicing()->globalTrace();
  if (Pos >= GT.size()) {
    err() << "error: position " << Pos << " is out of range (trace has "
          << GT.size() << " entries)\n";
    return;
  }
  auto Sets = slicing()->readersOf(Pos);
  const TraceEntry &E = GT.entry(Pos);
  Out << "readers of pos " << Pos << " (tid " << GT.ref(Pos).Tid << " line "
      << E.Line << ": " << disassembleAt(*Prog, E.Pc) << "):\n";
  if (Sets.empty()) {
    Out << "  (no locations defined)\n";
    return;
  }
  for (const auto &S : Sets) {
    Out << "  " << dataLocName(*Prog, S.Loc) << ":";
    if (S.Readers.empty()) {
      Out << " no readers before the next write\n";
      continue;
    }
    for (uint32_t R : S.Readers)
      Out << " " << R;
    Out << "\n";
  }
}
