//===- replay/checkpoints.cpp - Reverse debugging over replay ---------------===//

#include "replay/checkpoints.h"

#include "support/metric_names.h"
#include "support/metrics.h"

#include <algorithm>
#include <cassert>

using namespace drdebug;

namespace {

/// The checkpoint subsystem's global instruments, registered once.
struct CkptMetrics {
  metrics::Counter &Restores;
  metrics::Counter &Reexec;
  metrics::Counter &Taken;
  metrics::Counter &Thinned;
  metrics::Counter &Scans;
  metrics::Gauge &Bytes;

  static CkptMetrics &get() {
    namespace mn = drdebug::metricnames;
    auto &Reg = metrics::MetricsRegistry::global();
    static CkptMetrics M{Reg.counter(mn::ReplayCheckpointRestores),
                         Reg.counter(mn::ReplayReexecutedInstructions),
                         Reg.counter(mn::ReplayCheckpointsTaken),
                         Reg.counter(mn::ReplayCheckpointsThinned),
                         Reg.counter(mn::ReplaySegmentScans),
                         Reg.gauge(mn::ReplayCheckpointBytes)};
    return M;
  }
};

} // namespace

CheckpointedReplay::CheckpointedReplay(const Pinball &Pb, uint64_t Interval)
    : CheckpointedReplay(Pb, [Interval] {
        CheckpointOptions O;
        O.Interval = Interval;
        return O;
      }()) {}

CheckpointedReplay::CheckpointedReplay(const Pinball &Pb,
                                       const CheckpointOptions &Options)
    : Pb(Pb), Opts(Options) {
  if (Opts.Interval == 0)
    Opts.Interval = 1;
  if (Opts.AnchorEvery == 0)
    Opts.AnchorEvery = 1;
  Rep = std::make_unique<Replayer>(this->Pb, Opts.Replay);
  if (Rep->valid()) {
    ScheduleInstrs = this->Pb.instructionCount();
    Rep->machine().mem().enableDirtyTracking();
    maybeCheckpoint(); // position 0, always an anchor
  }
}

CheckpointedReplay::~CheckpointedReplay() {
  if (TotalBytes)
    CkptMetrics::get().Bytes.sub(static_cast<int64_t>(TotalBytes));
}

bool CheckpointedReplay::valid() const { return Rep && Rep->valid(); }
const std::string &CheckpointedReplay::error() const { return Rep->error(); }
Machine &CheckpointedReplay::machine() { return Rep->machine(); }
const Program &CheckpointedReplay::program() const { return Rep->program(); }

bool CheckpointedReplay::atEnd() const { return Rep->done(); }

const DivergenceReport &CheckpointedReplay::divergence() const {
  return Rep->divergence();
}

int64_t CheckpointedReplay::nextScheduledTid() const {
  return Rep->peekNextTid();
}

void CheckpointedReplay::maybeCheckpoint() {
  if (SuppressCheckpoints || Position % Opts.Interval != 0 ||
      Checkpoints.count(Position))
    return;
  takeCheckpoint();
}

void CheckpointedReplay::takeCheckpoint() {
  Memory &Mem = Rep->machine().mem();
  // Fold the pages written since the last checkpoint into the running
  // since-anchor set; deltas are always anchor-relative so any one of them
  // restores without touching its siblings.
  for (uint64_t Page : Mem.dirtyPages())
    DirtySinceAnchor.insert(Page);
  Mem.clearDirtyPages();

  auto AnchorIt = Checkpoints.find(LastAnchorPos);
  bool HaveAnchor = AnchorIt != Checkpoints.end() &&
                    AnchorIt->second.IsAnchor && LastAnchorPos <= Position;
  bool Anchor = !HaveAnchor || Opts.AnchorEvery <= 1 ||
                (Position / Opts.Interval) % Opts.AnchorEvery == 0;

  Checkpoint C;
  C.Cursor = Rep->cursor();
  if (Anchor) {
    C.IsAnchor = true;
    C.Full = Rep->machine().snapshot();
    C.Bytes = C.Full.approxBytes();
  } else {
    C.IsAnchor = false;
    C.AnchorPos = LastAnchorPos;
    C.Thin = Rep->machine().snapshot(/*IncludeMemory=*/false);
    C.DirtyPages.assign(DirtySinceAnchor.begin(), DirtySinceAnchor.end());
    std::sort(C.DirtyPages.begin(), C.DirtyPages.end());
    for (uint64_t Page : C.DirtyPages)
      Mem.collectPage(Page, C.PageWords);
    C.Bytes = C.Thin.approxBytes() + C.DirtyPages.size() * sizeof(uint64_t) +
              C.PageWords.size() * sizeof(std::pair<uint64_t, int64_t>);
    ++DeltaRefs[C.AnchorPos];
  }

  TotalBytes += C.Bytes;
  CkptMetrics::get().Bytes.add(static_cast<int64_t>(C.Bytes));
  CkptMetrics::get().Taken.inc();
  Checkpoints.emplace(Position, std::move(C));
  if (Anchor) {
    LastAnchorPos = Position;
    DirtySinceAnchor.clear();
  }
  enforceBudget();
  // Sample the high-water mark after enforcement: the peak reports the
  // bounded resident set, not the one-checkpoint transient evicted above.
  PeakBytes = std::max(PeakBytes, TotalBytes);
}

void CheckpointedReplay::restoreCheckpoint(CkptMap::const_iterator It) {
  const Checkpoint &C = It->second;
  if (C.IsAnchor) {
    Rep->restore(C.Full, C.Cursor);
  } else {
    // Reconstruct the full state: the governing anchor's memory image with
    // the dirtied pages replaced wholesale, everything else from the thin
    // snapshot. Erase-then-store reproduces the page exactly — including
    // words that were non-zero at the anchor and zero at the delta.
    auto AnchorIt = Checkpoints.find(C.AnchorPos);
    assert(AnchorIt != Checkpoints.end() && AnchorIt->second.IsAnchor &&
           "delta checkpoint outlived its anchor");
    MachineState S = AnchorIt->second.Full;
    S.Threads = C.Thin.Threads;
    S.MutexOwner = C.Thin.MutexOwner;
    S.HeapNext = C.Thin.HeapNext;
    S.GlobalCount = C.Thin.GlobalCount;
    S.NextTid = C.Thin.NextTid;
    S.Output = C.Thin.Output;
    for (uint64_t Page : C.DirtyPages)
      S.Mem.erasePage(Page);
    for (const auto &[Addr, Val] : C.PageWords)
      S.Mem.store(Addr, Val);
    Rep->restore(S, C.Cursor);
  }
  Position = It->first;
  // Re-seed the dirty-page bookkeeping to match the restored instant, so
  // deltas taken after further forward motion stay anchor-relative.
  Memory &Mem = Rep->machine().mem();
  Mem.enableDirtyTracking();
  Mem.clearDirtyPages();
  DirtySinceAnchor.clear();
  if (C.IsAnchor) {
    LastAnchorPos = Position;
  } else {
    LastAnchorPos = C.AnchorPos;
    DirtySinceAnchor.insert(C.DirtyPages.begin(), C.DirtyPages.end());
  }
  CkptMetrics::get().Restores.inc();
}

CheckpointedReplay::CkptMap::iterator
CheckpointedReplay::eraseCheckpoint(CkptMap::iterator It, bool CountThinned) {
  const Checkpoint &C = It->second;
  assert(TotalBytes >= C.Bytes && "checkpoint byte accounting drifted");
  TotalBytes -= C.Bytes;
  CkptMetrics::get().Bytes.sub(static_cast<int64_t>(C.Bytes));
  if (CountThinned)
    CkptMetrics::get().Thinned.inc();
  if (!C.IsAnchor) {
    auto RefIt = DeltaRefs.find(C.AnchorPos);
    assert(RefIt != DeltaRefs.end() && RefIt->second > 0 &&
           "delta refcount drifted");
    if (RefIt != DeltaRefs.end() && RefIt->second > 0 && --RefIt->second == 0)
      DeltaRefs.erase(RefIt);
  }
  return Checkpoints.erase(It);
}

void CheckpointedReplay::enforceBudget() {
  if (!Opts.MemoryBudgetBytes)
    return;
  while (TotalBytes > Opts.MemoryBudgetBytes) {
    // Geometric thinning: evict the checkpoint whose removal creates the
    // smallest gap relative to its distance from the cursor. Near the cursor
    // the tolerated gap is ~Interval; far back it grows with distance, so
    // the retained set ends up dense where reverse motion is likely and
    // sparse in deep history.
    auto Victim = Checkpoints.end();
    double BestScore = 0;
    for (auto It = std::next(Checkpoints.begin()); It != Checkpoints.end();
         ++It) {
      uint64_t P = It->first;
      if (P == LastAnchorPos)
        continue; // pending deltas will reference it
      auto RefIt = DeltaRefs.find(P);
      if (It->second.IsAnchor && RefIt != DeltaRefs.end() && RefIt->second > 0)
        continue; // live deltas depend on it
      uint64_t NextPos =
          std::next(It) == Checkpoints.end() ? P : std::next(It)->first;
      uint64_t Gap = NextPos - std::prev(It)->first;
      uint64_t Dist = P > Position ? P - Position : Position - P;
      double Score =
          static_cast<double>(Gap) / static_cast<double>(Dist + Opts.Interval);
      if (Victim == Checkpoints.end() || Score < BestScore) {
        BestScore = Score;
        Victim = It;
      }
    }
    if (Victim == Checkpoints.end())
      break; // everything left is load-bearing; tolerate the overshoot
    eraseCheckpoint(Victim, /*CountThinned=*/true);
  }
}

size_t CheckpointedReplay::dropCheckpointsBefore(uint64_t Pos) {
  size_t Dropped = 0;
  // Deltas first, so anchors they referenced become free to drop second.
  for (auto It = Checkpoints.begin();
       It != Checkpoints.end() && It->first < Pos;) {
    if (!It->second.IsAnchor) {
      It = eraseCheckpoint(It, /*CountThinned=*/false);
      ++Dropped;
    } else {
      ++It;
    }
  }
  for (auto It = Checkpoints.begin();
       It != Checkpoints.end() && It->first < Pos;) {
    auto RefIt = DeltaRefs.find(It->first);
    bool Referenced = RefIt != DeltaRefs.end() && RefIt->second > 0;
    if (!Referenced && It->first != LastAnchorPos) {
      It = eraseCheckpoint(It, /*CountThinned=*/false);
      ++Dropped;
    } else {
      ++It;
    }
  }
  return Dropped;
}

bool CheckpointedReplay::stepForward() {
  if (!Rep->stepOne())
    return false;
  ++Position;
  maybeCheckpoint();
  return true;
}

uint64_t CheckpointedReplay::advanceBy(uint64_t MaxInstrs) {
  uint64_t Done = 0;
  while (Done < MaxInstrs) {
    uint64_t Want = MaxInstrs - Done;
    if (!SuppressCheckpoints) {
      // Stop each slice exactly where the next checkpoint is due, so the
      // batched path takes the same checkpoint set the per-step path would.
      uint64_t ToBoundary = Opts.Interval - Position % Opts.Interval;
      Want = std::min(Want, ToBoundary);
    }
    uint64_t Got = Rep->replayChunk(Want);
    Position += Got;
    Done += Got;
    if (Got)
      maybeCheckpoint();
    if (Got < Want)
      break;
  }
  return Done;
}

Machine::StopReason CheckpointedReplay::runForward(uint64_t MaxSteps) {
  // One span per debugger command (continue/stepi under replay), not per
  // instruction; the replayed-step counter is shared with Replayer::run.
  static metrics::Counter &Instrs = metrics::MetricsRegistry::global().counter(
      metricnames::ReplayInstructions);
  trace::TraceSpan Span("replay.forward", "replay");
  uint64_t Steps = 0;
  struct StepScope {
    metrics::Counter &Instrs;
    uint64_t &Steps;
    ~StepScope() { Instrs.inc(Steps); }
  } Scope{Instrs, Steps};
  Steps = advanceBy(MaxSteps);
  if (Steps < MaxSteps) {
    if (divergence() && divergenceIsFatal(divergence().Kind))
      return Machine::StopReason::StopRequested;
    if (Rep->machine().stopRequested()) {
      Rep->machine().clearStopRequest();
      return Machine::StopReason::StopRequested;
    }
  }
  if (Steps >= MaxSteps && !atEnd())
    return Machine::StopReason::StepLimit;
  if (atEnd()) {
    Rep->checkEndState();
    if (divergence() && divergenceIsFatal(divergence().Kind))
      return Machine::StopReason::StopRequested;
  }
  return Rep->machine().assertFailed() ? Machine::StopReason::AssertFailed
                                       : Machine::StopReason::Halted;
}

std::string CheckpointedReplay::noRestorePointMessage(uint64_t Target) const {
  std::string Msg =
      "no checkpoint at or before position " + std::to_string(Target);
  if (Checkpoints.empty())
    Msg += " (no checkpoints retained)";
  else
    Msg += "; earliest retained is at position " +
           std::to_string(Checkpoints.begin()->first);
  return Msg;
}

void CheckpointedReplay::chargeReexecution(uint64_t N) {
  Reexecuted += N;
  CkptMetrics::get().Reexec.inc(N);
}

void CheckpointedReplay::noteScanStart() {
  ++ScanCount;
  CkptMetrics::get().Scans.inc();
}

bool CheckpointedReplay::seek(uint64_t Target) {
  CkptError.clear();
  if (Target == Position)
    return true;
  if (Target > Position) {
    advanceBy(Target - Position);
    return Position == Target;
  }
  // Backward: restore the nearest checkpoint at or before Target, then
  // replay forward the remaining distance.
  trace::TraceSpan Span("replay.checkpoint_restore", "replay");
  auto It = Checkpoints.upper_bound(Target);
  if (It == Checkpoints.begin()) {
    // Possible after dropCheckpointsBefore() freed the early history; a
    // diagnostic beats the release-build UB the old assert compiled to.
    CkptError = noRestorePointMessage(Target);
    return false;
  }
  --It;
  restoreCheckpoint(It);
  // Count only what actually re-executes: an observer stop or a divergence
  // can interrupt the catch-up replay partway, and both the re-execution
  // metric and position() must then report where the replay really landed.
  uint64_t From = Position;
  advanceBy(Target - Position);
  bool Ok = Position == Target;
  chargeReexecution(Position - From);
  if (!Ok && divergence() && divergenceIsFatal(divergence().Kind))
    CkptError = divergence().describe();
  return Ok;
}

bool CheckpointedReplay::stepBackward() {
  if (Position == 0)
    return false;
  return seek(Position - 1);
}
