//===- replay/checkpoints.cpp - Reverse debugging over replay -----------------===//

#include "replay/checkpoints.h"

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/tracing.h"

#include <cassert>

using namespace drdebug;

CheckpointedReplay::CheckpointedReplay(const Pinball &Pb, uint64_t Interval)
    : Pb(Pb), Interval(Interval ? Interval : 1) {
  Rep = std::make_unique<Replayer>(this->Pb);
  if (Rep->valid())
    maybeCheckpoint(); // position 0
}

bool CheckpointedReplay::valid() const { return Rep && Rep->valid(); }
const std::string &CheckpointedReplay::error() const { return Rep->error(); }
Machine &CheckpointedReplay::machine() { return Rep->machine(); }
const Program &CheckpointedReplay::program() const { return Rep->program(); }

bool CheckpointedReplay::atEnd() const { return Rep->done(); }

const DivergenceReport &CheckpointedReplay::divergence() const {
  return Rep->divergence();
}

void CheckpointedReplay::maybeCheckpoint() {
  if (Position % Interval != 0 || Checkpoints.count(Position))
    return;
  Checkpoints[Position] = {Rep->machine().snapshot(), Rep->cursor()};
}

bool CheckpointedReplay::stepForward() {
  if (!Rep->stepOne())
    return false;
  ++Position;
  maybeCheckpoint();
  return true;
}

Machine::StopReason CheckpointedReplay::runForward(uint64_t MaxSteps) {
  // One span per debugger command (continue/stepi under replay), not per
  // instruction; the replayed-step counter is shared with Replayer::run.
  static metrics::Counter &Instrs = metrics::MetricsRegistry::global().counter(
      metricnames::ReplayInstructions);
  trace::TraceSpan Span("replay.forward", "replay");
  uint64_t Steps = 0;
  struct StepScope {
    metrics::Counter &Instrs;
    uint64_t &Steps;
    ~StepScope() { Instrs.inc(Steps); }
  } Scope{Instrs, Steps};
  while (Steps < MaxSteps) {
    if (!stepForward()) {
      if (divergence() && divergenceIsFatal(divergence().Kind))
        return Machine::StopReason::StopRequested;
      if (Rep->machine().stopRequested()) {
        Rep->machine().clearStopRequest();
        return Machine::StopReason::StopRequested;
      }
      break;
    }
    ++Steps;
  }
  if (Steps >= MaxSteps && !atEnd())
    return Machine::StopReason::StepLimit;
  if (atEnd()) {
    Rep->checkEndState();
    if (divergence() && divergenceIsFatal(divergence().Kind))
      return Machine::StopReason::StopRequested;
  }
  return Rep->machine().assertFailed() ? Machine::StopReason::AssertFailed
                                       : Machine::StopReason::Halted;
}

bool CheckpointedReplay::seek(uint64_t Target) {
  if (Target == Position)
    return true;
  if (Target > Position) {
    while (Position < Target)
      if (!stepForward())
        return false;
    return true;
  }
  // Backward: restore the nearest checkpoint at or before Target, then
  // replay forward the remaining distance.
  namespace mn = drdebug::metricnames;
  static metrics::Counter &Restores =
      metrics::MetricsRegistry::global().counter(mn::ReplayCheckpointRestores);
  static metrics::Counter &Reexec = metrics::MetricsRegistry::global().counter(
      mn::ReplayReexecutedInstructions);
  trace::TraceSpan Span("replay.checkpoint_restore", "replay");
  auto It = Checkpoints.upper_bound(Target);
  assert(It != Checkpoints.begin() && "position 0 is always checkpointed");
  --It;
  uint64_t CkptPos = It->first;
  Rep->restore(It->second.State, It->second.Cursor);
  Position = CkptPos;
  uint64_t Distance = Target - CkptPos;
  Reexecuted += Distance;
  Restores.inc();
  Reexec.inc(Distance);
  while (Position < Target)
    if (!stepForward())
      return false;
  return true;
}

bool CheckpointedReplay::stepBackward() {
  if (Position == 0)
    return false;
  return seek(Position - 1);
}
