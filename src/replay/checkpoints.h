//===- replay/checkpoints.h - Reverse debugging over replay -----*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse debugging, built the way the paper's §8 sketches it: "reverse
/// debugging can be supported in the DrDebug tool-chain by recording
/// multiple pinballs and then replaying forward using the right pinball
/// ... using PinPlay's user-level check-pointing". A CheckpointedReplay
/// wraps a Replayer, takes periodic snapshots while replaying forward, and
/// implements backward motion by restoring the nearest earlier checkpoint
/// and replaying forward the remaining distance — deterministic thanks to
/// the pinball.
///
/// Two things keep this cheap on large regions (see docs/REVERSE.md):
///
///  - **Delta checkpoints.** Only every AnchorEvery-th checkpoint stores a
///    full MachineState (an *anchor*). The ones between store register/
///    thread state plus the contents of the memory pages dirtied since the
///    anchor (tracked by vm/memory's dirty-page set), and are reconstructed
///    at restore time as anchor-image + page patches. A configurable byte
///    budget triggers geometric thinning — checkpoints stay dense near the
///    cursor and grow sparse far back — so memory is bounded on
///    million-instruction regions.
///
///  - **Segment-scan reverse execution.** reverseFind/scanBackward restore
///    each checkpoint once and replay forward through its segment while
///    watching for hits, remembering the *last* hit before the cursor (the
///    rr reverse-continue algorithm): O(region) re-execution instead of the
///    per-position O(region x Interval) of the naive scheme (kept as
///    reverseFindLinear for comparison benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_CHECKPOINTS_H
#define DRDEBUG_REPLAY_CHECKPOINTS_H

#include "replay/replayer.h"
#include "support/tracing.h"

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

namespace drdebug {

/// Tunables for CheckpointedReplay.
struct CheckpointOptions {
  /// Instructions between checkpoints.
  uint64_t Interval = 1024;
  /// Every AnchorEvery-th checkpoint is a full snapshot (an anchor); the
  /// rest are dirty-page deltas against the previous anchor. 1 = every
  /// checkpoint is a full snapshot (the pre-delta behaviour).
  uint64_t AnchorEvery = 8;
  /// Approximate cap on bytes retained by checkpoints; 0 = unbounded.
  /// When exceeded, checkpoints are thinned geometrically: the retained set
  /// stays dense near the replay cursor and grows sparse far back. The
  /// position-0 anchor is never dropped, so backward seeks always succeed
  /// (they just re-execute more).
  uint64_t MemoryBudgetBytes = 0;
  /// Execution tunables for the wrapped Replayer (trace compilation).
  /// Forward motion and backward catch-up replay both batch through
  /// Replayer::replayChunk, so checkpoint seeks ride the compiled traces.
  ReplayOptions Replay;
};

/// A replayer with periodic checkpoints and backward motion.
class CheckpointedReplay {
public:
  /// \p Interval: instructions between checkpoints (full snapshots every
  /// CheckpointOptions default AnchorEvery-th one).
  explicit CheckpointedReplay(const Pinball &Pb, uint64_t Interval = 1024);
  CheckpointedReplay(const Pinball &Pb, const CheckpointOptions &Opts);
  ~CheckpointedReplay();

  CheckpointedReplay(const CheckpointedReplay &) = delete;
  CheckpointedReplay &operator=(const CheckpointedReplay &) = delete;

  bool valid() const;
  const std::string &error() const;
  /// Diagnostic for the most recent failed backward operation (empty when
  /// the last seek/scan succeeded): a missing restore point, or the
  /// description of a divergence that interrupted re-execution.
  const std::string &lastError() const { return CkptError; }

  Machine &machine();
  const Program &program() const;

  /// Replay position: instructions executed since region start.
  uint64_t position() const { return Position; }

  /// Total instructions in the recorded schedule (the true region length,
  /// independent of the current position).
  uint64_t scheduleLength() const { return ScheduleInstrs; }

  /// True when the recorded schedule is exhausted at the current position.
  bool atEnd() const;

  /// The underlying replayer's divergence report (kind None while the
  /// replay matches the recording).
  const DivergenceReport &divergence() const;

  /// The tid the schedule runs next at the current position (-1 at end).
  int64_t nextScheduledTid() const;

  /// Steps forward one instruction (taking a checkpoint when due).
  /// \returns false at the end of the schedule or on an observer stop.
  bool stepForward();

  /// Runs forward until the schedule ends, a stop is requested, or
  /// \p MaxSteps executed.
  Machine::StopReason runForward(uint64_t MaxSteps = ~0ULL);

  /// Steps backward one instruction. \returns false at position 0.
  bool stepBackward();

  /// Rewinds (or fast-forwards) so that exactly \p Target instructions
  /// have executed. \returns false if Target is beyond the schedule end,
  /// no restore point at or before Target survives (see \c lastError()),
  /// or re-execution is interrupted (divergence / observer stop); in the
  /// failure cases \c position() reports where the replay actually landed
  /// and \c reexecutedInstructions() counts only what actually re-ran.
  bool seek(uint64_t Target);

  /// Sentinel for "no matching position".
  static constexpr uint64_t NotFound = ~0ULL;

  /// Runs backward until \p Pred(machine) holds just after some earlier
  /// instruction; lands on (and returns) the *last* position before the
  /// cursor where it holds, or NotFound — in which case the cursor is put
  /// back where it started. ("Reverse-continue to a watch condition".)
  /// Implemented as a segment scan: one checkpoint restore per segment.
  template <typename PredT> uint64_t reverseFind(PredT Pred) {
    return scanBackward(
        [&Pred](Machine &M, uint64_t, bool) { return Pred(M); });
  }

  /// The naive per-position baseline reverseFind (restore + re-execute for
  /// every candidate position). Kept for the bench_reverse comparison and
  /// bit-identity tests; O(region x Interval) — do not use on large regions.
  template <typename PredT> uint64_t reverseFindLinear(PredT Pred) {
    for (uint64_t Pos = Position; Pos-- > 0;) {
      if (!seek(Pos))
        return NotFound;
      if (Pred(machine()))
        return Pos;
    }
    return NotFound;
  }

  /// The segment-scan engine behind reverseFind and the debugger's
  /// reverse-continue/reverse-next/reverse-watch: walks checkpoint segments
  /// newest-first; within a segment restores the checkpoint once, replays
  /// forward, and calls \p Visit(machine, pos, segmentStart) after every
  /// position. SegmentStart=true marks the first visit of a segment (state
  /// freshly restored, *not* reached by stepping) — transition-style
  /// visitors (value-changed watchpoints) use it to rebaseline. Segments
  /// overlap by one position so transitions across checkpoint boundaries
  /// are still observed. Lands on the last hit before the cursor and
  /// returns it; on no hit restores the cursor and returns NotFound.
  template <typename VisitT> uint64_t scanBackward(VisitT Visit) {
    CkptError.clear();
    if (Position == 0)
      return NotFound;
    const uint64_t Cursor = Position;
    trace::TraceSpan Span("replay.reverse_scan", "replay");
    noteScanStart();
    auto It = Checkpoints.upper_bound(Cursor - 1);
    if (It == Checkpoints.begin()) {
      CkptError = noRestorePointMessage(Cursor - 1);
      return NotFound;
    }
    --It;
    // Checkpoint churn (re-taking thinned positions, budget enforcement)
    // would invalidate the segment iterators; suppress it for the scan.
    SuppressCheckpoints = true;
    struct Guard {
      bool &Flag;
      ~Guard() { Flag = false; }
    } G{SuppressCheckpoints};
    for (;;) {
      const uint64_t SegStart = It->first;
      auto Next = std::next(It);
      const uint64_t SegEnd = Next == Checkpoints.end()
                                  ? Cursor - 1
                                  : std::min<uint64_t>(Next->first, Cursor - 1);
      restoreCheckpoint(It);
      uint64_t Hit =
          Visit(machine(), Position, /*SegmentStart=*/true) ? Position
                                                            : NotFound;
      bool Interrupted = false;
      while (Position < SegEnd) {
        if (!stepForward()) {
          Interrupted = true;
          break;
        }
        if (Visit(machine(), Position, /*SegmentStart=*/false))
          Hit = Position;
      }
      chargeReexecution(Position - SegStart);
      if (Interrupted) {
        if (divergence() && divergenceIsFatal(divergence().Kind))
          CkptError = divergence().describe();
        else
          CkptError = "segment replay stopped at position " +
                      std::to_string(Position);
        return NotFound;
      }
      if (Hit != NotFound) {
        if (!seek(Hit))
          return NotFound;
        return Hit;
      }
      if (It == Checkpoints.begin())
        break;
      --It;
    }
    seek(Cursor); // no hit: put the cursor back where the caller left it
    return NotFound;
  }

  /// Drops every checkpoint strictly before \p Pos except anchors still
  /// needed by surviving deltas. Frees the memory of distant history when
  /// only the recent past matters; rewinding before the earliest retained
  /// checkpoint then fails gracefully (seek returns false, \c lastError()
  /// explains). \returns the number of checkpoints dropped.
  size_t dropCheckpointsBefore(uint64_t Pos);

  /// Number of checkpoints currently held (for tests/diagnostics).
  size_t checkpointCount() const { return Checkpoints.size(); }
  /// Approximate bytes retained by checkpoints right now / at the peak.
  size_t checkpointBytes() const { return TotalBytes; }
  size_t peakCheckpointBytes() const { return PeakBytes; }
  /// Forward instructions re-executed by backward motion so far.
  uint64_t reexecutedInstructions() const { return Reexecuted; }
  /// Segment scans (reverseFind/scanBackward invocations) so far.
  uint64_t segmentScans() const { return ScanCount; }

private:
  /// A checkpoint: either an anchor (full architectural snapshot) or a
  /// delta (registers/threads plus the pages dirtied since its anchor),
  /// plus the replay cursor at the same instant.
  struct Checkpoint {
    bool IsAnchor = true;
    MachineState Full;      ///< anchors: the complete snapshot
    uint64_t AnchorPos = 0; ///< deltas: position of the governing anchor
    MachineState Thin;      ///< deltas: everything but the memory image
    std::vector<uint64_t> DirtyPages; ///< deltas: pages dirtied since anchor
    std::vector<std::pair<uint64_t, int64_t>> PageWords; ///< their contents
    ReplayCursor Cursor;
    size_t Bytes = 0; ///< approximate retained bytes (budget accounting)
  };
  using CkptMap = std::map<uint64_t, Checkpoint>;

  void maybeCheckpoint();
  void takeCheckpoint();
  /// Advances up to \p MaxInstrs via Replayer::replayChunk in slices that
  /// end exactly on checkpoint boundaries (full-width when checkpointing is
  /// suppressed), taking checkpoints between slices. \returns instructions
  /// executed; a short count means the replay was interrupted (schedule
  /// end, observer stop, fatal divergence).
  uint64_t advanceBy(uint64_t MaxInstrs);
  /// Restores the machine+cursor to the checkpoint at \p It and resets the
  /// dirty-page bookkeeping to match.
  void restoreCheckpoint(CkptMap::const_iterator It);
  /// Removes one checkpoint, keeping byte totals and anchor refcounts true.
  CkptMap::iterator eraseCheckpoint(CkptMap::iterator It, bool CountThinned);
  /// Thins checkpoints geometrically until under the byte budget.
  void enforceBudget();
  /// Adds \p N to the re-execution counters (local and global metric).
  void chargeReexecution(uint64_t N);
  void noteScanStart();
  std::string noRestorePointMessage(uint64_t Target) const;

  Pinball Pb;
  CheckpointOptions Opts;
  std::unique_ptr<Replayer> Rep;
  uint64_t Position = 0;
  uint64_t ScheduleInstrs = 0;
  CkptMap Checkpoints; ///< keyed by position
  /// Position of the anchor DirtySinceAnchor accumulates against.
  uint64_t LastAnchorPos = 0;
  /// Pages dirtied since LastAnchorPos (drained from Memory's tracker at
  /// every checkpoint; reset at anchors and after restores).
  std::unordered_set<uint64_t> DirtySinceAnchor;
  /// Deltas referencing each anchor (an anchor is only removable at 0).
  std::map<uint64_t, size_t> DeltaRefs;
  bool SuppressCheckpoints = false;
  size_t TotalBytes = 0;
  size_t PeakBytes = 0;
  uint64_t Reexecuted = 0;
  uint64_t ScanCount = 0;
  std::string CkptError;
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_CHECKPOINTS_H
