//===- replay/checkpoints.h - Reverse debugging over replay -----*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse debugging, built the way the paper's §8 sketches it: "reverse
/// debugging can be supported in the DrDebug tool-chain by recording
/// multiple pinballs and then replaying forward using the right pinball
/// ... using PinPlay's user-level check-pointing". A CheckpointedReplay
/// wraps a Replayer, takes periodic architectural snapshots while replaying
/// forward, and implements backward motion (reverse-stepi, or "rewind to
/// the k-th instruction") by restoring the nearest earlier checkpoint and
/// replaying forward the remaining distance — deterministic thanks to the
/// pinball, and far cheaper than GDB's record-everything approach the
/// paper's related work criticizes.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_CHECKPOINTS_H
#define DRDEBUG_REPLAY_CHECKPOINTS_H

#include "replay/replayer.h"

#include <map>
#include <memory>

namespace drdebug {

/// A replayer with periodic checkpoints and backward motion.
class CheckpointedReplay {
public:
  /// \p Interval: instructions between checkpoints.
  explicit CheckpointedReplay(const Pinball &Pb, uint64_t Interval = 1024);

  bool valid() const;
  const std::string &error() const;

  Machine &machine();
  const Program &program() const;

  /// Replay position: instructions executed since region start.
  uint64_t position() const { return Position; }

  /// True when the recorded schedule is exhausted at the current position.
  bool atEnd() const;

  /// The underlying replayer's divergence report (kind None while the
  /// replay matches the recording).
  const DivergenceReport &divergence() const;

  /// Steps forward one instruction (taking a checkpoint when due).
  /// \returns false at the end of the schedule or on an observer stop.
  bool stepForward();

  /// Runs forward until the schedule ends, a stop is requested, or
  /// \p MaxSteps executed.
  Machine::StopReason runForward(uint64_t MaxSteps = ~0ULL);

  /// Steps backward one instruction. \returns false at position 0.
  bool stepBackward();

  /// Rewinds (or fast-forwards) so that exactly \p Target instructions
  /// have executed. \returns false if Target is beyond the schedule end.
  bool seek(uint64_t Target);

  /// Runs backward until \p Pred(machine) holds just after some earlier
  /// instruction, scanning positions Position-1, Position-2, ...
  /// \returns the found position, or ~0 if no earlier position matches.
  /// (This is "reverse-continue to a watch condition".)
  template <typename PredT> uint64_t reverseFind(PredT Pred) {
    for (uint64_t Pos = Position; Pos-- > 0;) {
      if (!seek(Pos))
        return ~0ULL;
      if (Pred(machine()))
        return Pos;
    }
    return ~0ULL;
  }

  /// Number of checkpoints currently held (for tests/diagnostics).
  size_t checkpointCount() const { return Checkpoints.size(); }
  /// Forward instructions re-executed by backward motion so far.
  uint64_t reexecutedInstructions() const { return Reexecuted; }

private:
  void maybeCheckpoint();

  /// A checkpoint: the architectural snapshot plus the replay cursor
  /// (schedule position and syscall consumption) at the same instant.
  struct Checkpoint {
    MachineState State;
    ReplayCursor Cursor;
  };

  Pinball Pb;
  uint64_t Interval;
  std::unique_ptr<Replayer> Rep;
  uint64_t Position = 0;
  std::map<uint64_t, Checkpoint> Checkpoints; ///< keyed by position
  uint64_t Reexecuted = 0;
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_CHECKPOINTS_H
