//===- replay/manifest.h - Pinball integrity manifest -----------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pinball manifest: a per-directory `manifest.txt` recording the format
/// version and, for every payload file, its byte count and CRC32C. Pinballs
/// exist to be shipped between machines ("a customer can mail a pinball to
/// a vendor"), so a loader must be able to say *which* file arrived
/// truncated, corrupted, or from a newer format — not silently replay
/// garbage. The manifest also anchors crash-safe saves: Pinball::save
/// writes everything (manifest last) into a temp directory, fsyncs, and
/// atomically renames it into place, so a crash mid-save can never leave a
/// loadable-but-wrong pinball behind.
///
/// Format (line-oriented text, like every other artifact):
///
///   drdebug-pinball <version>
///   file <name> <bytes> <crc32c-hex>
///   ...
///   end
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_MANIFEST_H
#define DRDEBUG_REPLAY_MANIFEST_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace drdebug {

/// The manifest of one pinball directory.
class PinballManifest {
public:
  /// Current pinball format version, written by Pinball::save.
  static constexpr unsigned FormatVersion = 1;
  /// The manifest's own file name inside a pinball directory.
  static constexpr const char *FileName = "manifest.txt";

  struct FileEntry {
    uint64_t Bytes = 0;
    uint32_t Crc = 0;
  };

  unsigned Version = FormatVersion;
  /// Payload file name -> expected size and checksum.
  std::map<std::string, FileEntry> Files;

  /// Records \p Content as the expected bytes of \p Name.
  void add(const std::string &Name, const std::string &Content);

  /// Serializes to the manifest text format.
  std::string serialize() const;

  /// Parses \p Text. \returns false (with \p Error set) on malformed text
  /// or a format version newer than this build understands.
  bool parse(const std::string &Text, std::string &Error);

  /// Checks \p Content against the recorded entry for \p Name. \returns
  /// false with a diagnostic naming the file and the failure mode
  /// (truncated / oversized / checksum mismatch / not in manifest).
  bool verify(const std::string &Name, const std::string &Content,
              std::string &Error) const;
};

/// Atomically replaces directory \p Dir with the given files: writes them
/// into a sibling temp directory, fsyncs every file and the directory, then
/// renames over \p Dir (removing any previous version). On failure the temp
/// directory is cleaned up and \p Error says what went wrong. Probes the
/// FaultInjector sites "pinball.write" (ShortWrite/DiskFull, per file) and
/// "pinball.crash" (Crash, before the final rename — simulating kill -9
/// mid-save, which must leave \p Dir untouched).
bool writeDirAtomically(const std::string &Dir,
                        const std::vector<std::pair<std::string, std::string>>
                            &Files,
                        std::string &Error);

} // namespace drdebug

#endif // DRDEBUG_REPLAY_MANIFEST_H
