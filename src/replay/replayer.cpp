//===- replay/replayer.cpp - Deterministic pinball replay -------------------===//

#include "replay/replayer.h"

#include "arch/assembler.h"

#include <cassert>

using namespace drdebug;

//===----------------------------------------------------------------------===//
// RecordedSyscalls
//===----------------------------------------------------------------------===//

RecordedSyscalls::RecordedSyscalls(const std::vector<SyscallRecord> &Records) {
  for (const SyscallRecord &R : Records)
    PerThread[R.Tid].push_back(R);
}

int64_t RecordedSyscalls::pop(uint32_t Tid, Opcode Op) {
  auto It = PerThread.find(Tid);
  if (It == PerThread.end())
    return 0;
  size_t &Cursor = Cursors[Tid];
  if (Cursor >= It->second.size()) {
    // Replaying past the recorded region (should not happen when the
    // schedule drives execution); be forgiving and return zero.
    return 0;
  }
  const SyscallRecord &R = It->second[Cursor++];
  assert(R.Op == Op && "replay diverged: syscall kind mismatch");
  (void)Op;
  return R.Value;
}

int64_t RecordedSyscalls::sysAlloc(uint32_t Tid, int64_t) {
  return pop(Tid, Opcode::SysAlloc);
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

Replayer::Replayer(const Pinball &Pb) : Pb(Pb) {
  if (!assemble(this->Pb.ProgramText, Prog, ErrorMessage))
    return;
  M = std::make_unique<Machine>(Prog);
  M->restore(this->Pb.StartState);
  M->setForcedMode(true);
  Syscalls = std::make_unique<RecordedSyscalls>(this->Pb.Syscalls);
  M->setSyscalls(Syscalls.get());
  for (const Injection &Inj : this->Pb.Injections)
    InjectionById[Inj.Id] = &Inj;
  Valid = true;
}

Replayer::~Replayer() = default;

bool Replayer::done() const {
  assert(Valid && "invalid replayer");
  return EventIndex >= Pb.Schedule.size();
}

void Replayer::applyInjection(const Injection &Inj) {
  for (auto &[Addr, Val] : Inj.MemWrites)
    M->injectMemory(Addr, Val);
  for (auto &[Reg, Val] : Inj.RegWrites)
    M->injectRegister(Inj.Tid, Reg, Val);
  if (Inj.ResumePc != Injection::NoResume)
    M->setThreadPc(Inj.Tid, Inj.ResumePc);
}

bool Replayer::stepOne() {
  assert(Valid && "invalid replayer");
  // Apply any pending injections; they are transparent to stepping.
  while (EventIndex < Pb.Schedule.size() &&
         Pb.Schedule[EventIndex].K == ScheduleEvent::Kind::Inject) {
    auto It = InjectionById.find(Pb.Schedule[EventIndex].InjectId);
    assert(It != InjectionById.end() && "pinball references unknown injection");
    applyInjection(*It->second);
    ++EventIndex;
  }
  if (EventIndex >= Pb.Schedule.size())
    return false;

  const ScheduleEvent &E = Pb.Schedule[EventIndex];
  assert(E.K == ScheduleEvent::Kind::Step);
  if (!M->stepThread(E.Tid)) {
    // An observer requested a stop from onPreExec; do not consume the event
    // so the replay can resume exactly here.
    return false;
  }
  ++Replayed;
  if (++WithinEvent == E.Count) {
    WithinEvent = 0;
    ++EventIndex;
  }
  return true;
}

ReplayCursor Replayer::cursor() const {
  assert(Valid && "invalid replayer");
  ReplayCursor C;
  C.EventIndex = EventIndex;
  C.WithinEvent = WithinEvent;
  C.Replayed = Replayed;
  C.SyscallCursors = Syscalls->cursors();
  return C;
}

void Replayer::restore(const MachineState &State, const ReplayCursor &Cursor) {
  assert(Valid && "invalid replayer");
  M->restore(State);
  M->setForcedMode(true);
  EventIndex = Cursor.EventIndex;
  WithinEvent = Cursor.WithinEvent;
  Replayed = Cursor.Replayed;
  Syscalls->setCursors(Cursor.SyscallCursors);
}

Machine::StopReason Replayer::run(uint64_t MaxSteps) {
  assert(Valid && "invalid replayer");
  uint64_t Steps = 0;
  while (Steps < MaxSteps) {
    if (!stepOne()) {
      if (M->stopRequested()) {
        M->clearStopRequest();
        return Machine::StopReason::StopRequested;
      }
      break;
    }
    ++Steps;
  }
  if (Steps >= MaxSteps && !done())
    return Machine::StopReason::StepLimit;
  return M->assertFailed() ? Machine::StopReason::AssertFailed
                           : Machine::StopReason::Halted;
}
