//===- replay/replayer.cpp - Deterministic pinball replay -------------------===//

#include "replay/replayer.h"

#include "arch/assembler.h"
#include "arch/opcode.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/stopwatch.h"
#include "support/tracing.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

using namespace drdebug;

//===----------------------------------------------------------------------===//
// RecordedSyscalls
//===----------------------------------------------------------------------===//

RecordedSyscalls::RecordedSyscalls(const std::vector<SyscallRecord> &Records) {
  for (const SyscallRecord &R : Records)
    PerThread[R.Tid].push_back(R);
}

int64_t RecordedSyscalls::pop(uint32_t Tid, Opcode Op) {
  auto It = PerThread.find(Tid);
  if (It == PerThread.end() || Cursors[Tid] >= It->second.size()) {
    // Replaying past the thread's recorded stream. Soft divergence: report
    // it, keep replaying with zeros — truncated syscall streams occur in
    // legitimately trimmed pinballs and the schedule still bounds execution.
    if (OnDivergence)
      OnDivergence(DivergenceKind::SyscallStreamExhausted, Tid,
                   "tid " + std::to_string(Tid) +
                       " requested more syscall values than were recorded");
    return 0;
  }
  size_t &Cursor = Cursors[Tid];
  const SyscallRecord &R = It->second[Cursor++];
  if (R.Op != Op) {
    // Hard divergence: the program asked for a different syscall than the
    // recording has next, so every value from here on would be garbage.
    if (OnDivergence)
      OnDivergence(DivergenceKind::SyscallKindMismatch, Tid,
                   std::string("recorded ") + std::string(opcodeName(R.Op)) +
                       ", replay requested " + std::string(opcodeName(Op)));
    return 0;
  }
  return R.Value;
}

int64_t RecordedSyscalls::sysAlloc(uint32_t Tid, int64_t) {
  return pop(Tid, Opcode::SysAlloc);
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

Replayer::Replayer(const Pinball &Pb) : Replayer(Pb, ReplayOptions()) {}

Replayer::Replayer(const Pinball &Pb, const ReplayOptions &Options)
    : Pb(Pb), Opts(Options) {
  if (!assemble(this->Pb.ProgramText, Prog, ErrorMessage))
    return;
  M = std::make_unique<Machine>(Prog);
  M->restore(this->Pb.StartState);
  M->setForcedMode(true);
  Syscalls = std::make_unique<RecordedSyscalls>(this->Pb.Syscalls);
  Syscalls->setDivergenceHandler(
      [this](DivergenceKind K, uint32_t Tid, const std::string &Detail) {
        reportDivergence(K, Tid, Detail);
      });
  M->setSyscalls(Syscalls.get());
  for (const Injection &Inj : this->Pb.Injections)
    InjectionById[Inj.Id] = &Inj;
  if (Opts.CompileTraces && TraceExecutor::available()) {
    TraceCache::Options CO;
    CO.HotThreshold = Opts.HotThreshold;
    CO.MaxTraceInstrs = Opts.MaxTraceInstrs;
    Traces = TraceCache::acquire(Prog, CO);
  }
  Valid = true;
}

Replayer::~Replayer() = default;

bool Replayer::done() const {
  assert(Valid && "invalid replayer");
  return EventIndex >= Pb.Schedule.size();
}

int64_t Replayer::peekNextTid() const {
  assert(Valid && "invalid replayer");
  for (size_t I = EventIndex; I != Pb.Schedule.size(); ++I)
    if (Pb.Schedule[I].K == ScheduleEvent::Kind::Step)
      return Pb.Schedule[I].Tid;
  return -1;
}

void Replayer::applyInjection(const Injection &Inj) {
  for (auto &[Addr, Val] : Inj.MemWrites)
    M->injectMemory(Addr, Val);
  for (auto &[Reg, Val] : Inj.RegWrites)
    M->injectRegister(Inj.Tid, Reg, Val);
  if (Inj.ResumePc != Injection::NoResume)
    M->setThreadPc(Inj.Tid, Inj.ResumePc);
}

void Replayer::reportDivergence(DivergenceKind Kind, uint32_t Tid,
                                const std::string &Detail) {
  // Keep the first report, except that a fatal divergence may supersede an
  // earlier soft one — the fatal stop is what the user must see.
  if (Diverged &&
      (divergenceIsFatal(Diverged.Kind) || !divergenceIsFatal(Kind)))
    return;
  Diverged.Kind = Kind;
  Diverged.Position = EventIndex;
  Diverged.Tid = Tid;
  Diverged.Pc = Tid < M->numThreads() ? M->thread(Tid).Pc : 0;
  Diverged.Detail = Detail;
  FatalFlag = divergenceIsFatal(Diverged.Kind);
}

bool Replayer::applyPendingInjections() {
  // Injections are transparent to stepping: apply them and move on.
  while (EventIndex < Pb.Schedule.size() &&
         Pb.Schedule[EventIndex].K == ScheduleEvent::Kind::Inject) {
    auto It = InjectionById.find(Pb.Schedule[EventIndex].InjectId);
    if (It == InjectionById.end()) {
      reportDivergence(
          DivergenceKind::UnknownInjection, 0,
          "schedule references injection id " +
              std::to_string(Pb.Schedule[EventIndex].InjectId) +
              " but injections.txt has no such record");
      return false;
    }
    applyInjection(*It->second);
    ++EventIndex;
  }
  return true;
}

bool Replayer::stepOne() {
  assert(Valid && "invalid replayer");
  if (FatalFlag)
    return false;
  if (!applyPendingInjections())
    return false;
  if (EventIndex >= Pb.Schedule.size())
    return false;

  const ScheduleEvent &E = Pb.Schedule[EventIndex];
  assert(E.K == ScheduleEvent::Kind::Step);
  // Validate the event against the machine before stepping: a pinball whose
  // schedule outlives the program (or names threads the program never
  // created) must stop with a report, not trip interpreter assertions.
  if (M->finished()) {
    reportDivergence(DivergenceKind::ScheduleNotExhausted, E.Tid,
                     std::to_string(Pb.Schedule.size() - EventIndex) +
                         " schedule event(s) remain after the program "
                         "finished");
    return false;
  }
  if (E.Tid >= M->numThreads()) {
    reportDivergence(DivergenceKind::UnknownThread, E.Tid,
                     "schedule steps tid " + std::to_string(E.Tid) +
                         " but the machine has only " +
                         std::to_string(M->numThreads()) + " thread(s)");
    return false;
  }
  if (M->thread(E.Tid).Status == ThreadStatus::Exited) {
    reportDivergence(DivergenceKind::ThreadExited, E.Tid,
                     "schedule steps tid " + std::to_string(E.Tid) +
                         " which already exited");
    return false;
  }
  if (!M->stepThread(E.Tid)) {
    // An observer requested a stop from onPreExec; do not consume the event
    // so the replay can resume exactly here.
    return false;
  }
  ++Replayed;
  ++TotalExecuted;
  if (++WithinEvent == E.Count) {
    WithinEvent = 0;
    ++EventIndex;
  }
  if (FatalFlag) {
    // A syscall-kind mismatch surfaced inside this instruction; the step
    // itself completed, but nothing after it can be trusted.
    return false;
  }
  return true;
}

uint64_t Replayer::fastForward(uint64_t Budget) {
  uint64_t Done = 0;
  while (Done < Budget) {
    // Entry guards of the deopt contract (docs/COMPILE.md): compiled code
    // runs only while the interpreter path would be a pure Step sequence
    // with nobody watching. Any guard failing hands back to stepOne(),
    // which produces the exact divergence report / stop at this boundary.
    if (FatalFlag || !M->observersEmpty() || M->stopRequested())
      break;
    if (EventIndex >= Pb.Schedule.size() ||
        Pb.Schedule[EventIndex].K != ScheduleEvent::Kind::Step)
      break;
    const ScheduleEvent &E = Pb.Schedule[EventIndex];
    if (M->finished() || E.Tid >= M->numThreads() ||
        M->thread(E.Tid).Status != ThreadStatus::Runnable)
      break;
    uint64_t Remaining = std::min<uint64_t>(E.Count - WithinEvent,
                                            Budget - Done);
    TraceRunResult R =
        TraceExecutor::run(*M, E.Tid, Remaining, *Traces, LocalTraces,
                           &FatalFlag);
    if (R.Executed) {
      Done += R.Executed;
      Replayed += R.Executed;
      TotalExecuted += R.Executed;
      CompiledInstrs += R.Executed;
      WithinEvent += R.Executed;
      if (WithinEvent == E.Count) {
        WithinEvent = 0;
        ++EventIndex;
      }
    }
    if (R.MidTrace)
      ++Deopts;
    if (R.Executed == 0 || R.Exit == TraceExit::Stopped ||
        R.Exit == TraceExit::Aborted)
      break;
  }
  return Done;
}

uint64_t Replayer::replayChunk(uint64_t MaxInstrs) {
  assert(Valid && "invalid replayer");
  uint64_t Done = 0;
  while (Done < MaxInstrs) {
    if (Traces)
      Done += fastForward(MaxInstrs - Done);
    if (Done >= MaxInstrs)
      break;
    // One interpreted step covers whatever the fast path could not: cold
    // code, terminator instructions, injection events, divergence
    // validation, and every observer notification.
    if (!stepOne())
      break;
    ++Done;
  }
  return Done;
}

ReplayCursor Replayer::cursor() const {
  assert(Valid && "invalid replayer");
  ReplayCursor C;
  C.EventIndex = EventIndex;
  C.WithinEvent = WithinEvent;
  C.Replayed = Replayed;
  C.SyscallCursors = Syscalls->cursors();
  return C;
}

void Replayer::restore(const MachineState &State, const ReplayCursor &Cursor) {
  assert(Valid && "invalid replayer");
  M->restore(State);
  M->setForcedMode(true);
  EventIndex = Cursor.EventIndex;
  WithinEvent = Cursor.WithinEvent;
  Replayed = Cursor.Replayed;
  Syscalls->setCursors(Cursor.SyscallCursors);
  // The divergence (if any) lies ahead of the restored position; replaying
  // forward will rediscover it deterministically. TotalExecuted /
  // CompiledInstrs / Deopts are deliberately NOT rewound: they are work
  // counters, not position.
  Diverged = DivergenceReport();
  FatalFlag = false;
  EndChecked = false;
}

void Replayer::checkEndState() {
  if (EndChecked)
    return;
  EndChecked = true;
  auto It = Pb.Meta.find("instrs");
  if (It != Pb.Meta.end()) {
    uint64_t Want = std::strtoull(It->second.c_str(), nullptr, 10);
    if (Want != Replayed)
      reportDivergence(DivergenceKind::InstructionCountDrift, 0,
                       "replayed " + std::to_string(Replayed) +
                           " instructions, recording says " +
                           std::to_string(Want));
  }
  It = Pb.Meta.find("endpcs");
  if (It == Pb.Meta.end())
    return;
  std::istringstream IS(It->second);
  std::string Pair;
  while (IS >> Pair) {
    size_t Colon = Pair.find(':');
    if (Colon == std::string::npos)
      continue;
    uint32_t Tid =
        static_cast<uint32_t>(std::strtoul(Pair.c_str(), nullptr, 10));
    uint64_t WantPc = std::strtoull(Pair.c_str() + Colon + 1, nullptr, 10);
    if (Tid >= M->numThreads()) {
      reportDivergence(DivergenceKind::EndPcDrift, Tid,
                       "recording ended with tid " + std::to_string(Tid) +
                           " which the replay never created");
      return;
    }
    uint64_t GotPc = M->thread(Tid).Pc;
    if (GotPc != WantPc) {
      reportDivergence(DivergenceKind::EndPcDrift, Tid,
                       "tid " + std::to_string(Tid) + " ended at pc " +
                           std::to_string(GotPc) + ", recording says " +
                           std::to_string(WantPc));
      return;
    }
  }
}

Machine::StopReason Replayer::run(uint64_t MaxSteps) {
  assert(Valid && "invalid replayer");
  // Per-run instrumentation only: the stepping loop itself stays untouched
  // so instruction throughput is unaffected.
  namespace mn = drdebug::metricnames;
  static metrics::Counter &Runs =
      metrics::MetricsRegistry::global().counter(mn::ReplayRuns);
  static metrics::Counter &Instrs =
      metrics::MetricsRegistry::global().counter(mn::ReplayInstructions);
  static metrics::LatencyHistogram &RegionUs =
      metrics::MetricsRegistry::global().histogram(mn::ReplayRegionUs);
  trace::TraceSpan Span("replay.run", "replay");
  Stopwatch SW;
  Runs.inc();
  uint64_t Steps = 0;
  struct RunScope {
    metrics::Counter &Instrs;
    metrics::LatencyHistogram &RegionUs;
    Stopwatch &SW;
    uint64_t &Steps;
    ~RunScope() {
      Instrs.inc(Steps);
      RegionUs.record(static_cast<uint64_t>(SW.seconds() * 1e6));
    }
  } Scope{Instrs, RegionUs, SW, Steps};
  Steps = replayChunk(MaxSteps);
  if (Steps < MaxSteps) {
    if (FatalFlag)
      return Machine::StopReason::StopRequested;
    if (M->stopRequested()) {
      M->clearStopRequest();
      return Machine::StopReason::StopRequested;
    }
  }
  if (Steps >= MaxSteps && !done())
    return Machine::StopReason::StepLimit;
  if (done()) {
    checkEndState();
    if (Diverged && divergenceIsFatal(Diverged.Kind))
      return Machine::StopReason::StopRequested;
  }
  return M->assertFailed() ? Machine::StopReason::AssertFailed
                           : Machine::StopReason::Halted;
}
