//===- replay/divergence.h - Replay divergence reports ----------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a pinball no longer matches the program it replays — hand-edited
/// artifacts, version skew, a corrupted-but-checksum-valid file, or a
/// genuine replayer bug — the replay *diverges* from the recording. The
/// paper's workflow (a customer mails a pinball to a vendor) makes this a
/// first-class error, not an assertion: the debugger and server must report
/// what diverged, where, and keep the process alive. A DivergenceReport is
/// that structured answer.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_DIVERGENCE_H
#define DRDEBUG_REPLAY_DIVERGENCE_H

#include <cstdint>
#include <string>

namespace drdebug {

/// How a replay can contradict its pinball.
enum class DivergenceKind : uint8_t {
  None,                   ///< no divergence observed
  UnknownInjection,       ///< schedule names an injection id with no record
  UnknownThread,          ///< schedule steps a tid the machine never had
  ThreadExited,           ///< schedule steps a tid that already exited
  SyscallKindMismatch,    ///< recorded syscall is for a different opcode
  SyscallStreamExhausted, ///< replay consumed more syscalls than recorded
  ScheduleNotExhausted,   ///< machine finished with schedule events left
  InstructionCountDrift,  ///< executed instructions != meta "instrs"
  EndPcDrift,             ///< a thread's final pc != meta "endpcs"
};

const char *divergenceKindName(DivergenceKind K);

/// \returns true for kinds that stop the replay where it stands. Soft kinds
/// (syscall stream exhaustion) are recorded but replay continues — some
/// legitimate pinballs carry truncated syscall streams and tolerate the
/// zero-fill the replayer substitutes.
inline bool divergenceIsFatal(DivergenceKind K) {
  return K != DivergenceKind::None &&
         K != DivergenceKind::SyscallStreamExhausted;
}

/// A structured account of one observed divergence.
struct DivergenceReport {
  DivergenceKind Kind = DivergenceKind::None;
  /// Schedule position (event index) where the divergence was observed.
  uint64_t Position = 0;
  uint32_t Tid = 0;
  uint64_t Pc = 0;
  /// Human-readable specifics (expected vs observed values).
  std::string Detail;

  explicit operator bool() const { return Kind != DivergenceKind::None; }

  /// One-line description, e.g.
  /// "replay divergence: unknown-injection at schedule event 12 (tid 0): ...".
  std::string describe() const;
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_DIVERGENCE_H
