//===- replay/replayer.h - Deterministic pinball replay ---------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replayer runs off a pinball: it assembles the embedded program,
/// restores the region-start snapshot, and drives the machine with the
/// recorded schedule while feeding recorded syscall values, so every replay
/// of the same pinball observes the exact same program state — the paper's
/// repeatability guarantee that makes cyclic debugging and cross-session
/// slices possible. For slice pinballs, Inject events in the schedule apply
/// the recorded side effects of skipped code regions and move the thread's
/// pc past them.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_REPLAYER_H
#define DRDEBUG_REPLAY_REPLAYER_H

#include "replay/divergence.h"
#include "replay/pinball.h"
#include "vm/machine.h"
#include "vm/trace_cache.h"
#include "vm/trace_compiler.h"

#include <deque>
#include <functional>
#include <map>
#include <memory>

namespace drdebug {

/// Feeds recorded syscall values back to the machine, per-thread in FIFO
/// order (each thread executes its own syscalls in program order). The
/// consumption state is a plain cursor map so checkpointed replay can save
/// and restore it.
class RecordedSyscalls : public SyscallProvider {
public:
  /// Called when consumption contradicts the recording: a kind mismatch
  /// (hard divergence) or running off the end of a thread's stream (soft —
  /// pop() keeps returning zeros so replay can continue).
  using DivergenceHandler =
      std::function<void(DivergenceKind, uint32_t, const std::string &)>;

  explicit RecordedSyscalls(const std::vector<SyscallRecord> &Records);

  void setDivergenceHandler(DivergenceHandler H) { OnDivergence = std::move(H); }

  int64_t sysRead(uint32_t Tid) override { return pop(Tid, Opcode::SysRead); }
  int64_t sysRand(uint32_t Tid) override { return pop(Tid, Opcode::SysRand); }
  int64_t sysTime(uint32_t Tid) override { return pop(Tid, Opcode::SysTime); }
  int64_t sysAlloc(uint32_t Tid, int64_t Size) override;

  const std::map<uint32_t, size_t> &cursors() const { return Cursors; }
  void setCursors(const std::map<uint32_t, size_t> &C) { Cursors = C; }

private:
  int64_t pop(uint32_t Tid, Opcode Op);
  std::map<uint32_t, std::vector<SyscallRecord>> PerThread;
  std::map<uint32_t, size_t> Cursors;
  DivergenceHandler OnDivergence;
};

/// Everything needed to resume a Replayer at an intermediate point; pairs
/// with a MachineState snapshot taken at the same instant.
struct ReplayCursor {
  size_t EventIndex = 0;
  uint64_t WithinEvent = 0;
  uint64_t Replayed = 0;
  std::map<uint32_t, size_t> SyscallCursors;
};

/// Tunables for replay execution.
struct ReplayOptions {
  /// Compile hot code into superblock traces and execute them while no
  /// observer is attached (see docs/COMPILE.md). On by default: attaching
  /// any observer deoptimizes to the interpreter automatically, so
  /// breakpoints/watchpoints/recorders behave identically either way.
  bool CompileTraces = true;
  /// Trace-cache tuning (see vm/trace_cache.h).
  uint32_t HotThreshold = 8;
  uint32_t MaxTraceInstrs = 64;
};

/// Replays a pinball deterministically.
class Replayer {
public:
  /// Assembles the pinball's program and restores its start state.
  /// Check \c valid() before use; an invalid pinball reports \c error().
  explicit Replayer(const Pinball &Pb);
  Replayer(const Pinball &Pb, const ReplayOptions &Opts);
  ~Replayer();

  Replayer(const Replayer &) = delete;
  Replayer &operator=(const Replayer &) = delete;

  bool valid() const { return Valid; }
  const std::string &error() const { return ErrorMessage; }

  Machine &machine() { return *M; }
  const Program &program() const { return Prog; }
  const Pinball &pinball() const { return Pb; }

  /// True once the recorded schedule is exhausted.
  bool done() const;

  /// Advances the replay by one instruction (applying any pending injection
  /// events first). \returns false without advancing if the schedule is
  /// exhausted or an observer requested a stop from onPreExec.
  bool stepOne();

  /// Replays until the schedule is exhausted, a stop is requested, or
  /// \p MaxSteps instructions have run.
  Machine::StopReason run(uint64_t MaxSteps = ~0ULL);

  /// Advances up to \p MaxInstrs instructions, using compiled traces for
  /// every stretch the deopt contract allows and the interpreter for the
  /// rest. Unlike run() it never clears a stop request and never triggers
  /// the end-state check — it is the composable work primitive run() and
  /// CheckpointedReplay batch through. \returns instructions executed; a
  /// short count means the schedule ended, a stop was requested, or a
  /// fatal divergence surfaced (inspect \c divergence()).
  uint64_t replayChunk(uint64_t MaxInstrs);

  /// Instructions replayed so far.
  uint64_t replayedInstructions() const { return Replayed; }

  /// Monotonic work counters since construction (not rewound by restore):
  /// instructions executed from compiled traces vs. by the interpreter.
  /// bench_fig12_replay asserts the compiled fraction stays > 90% on
  /// observer-free replays, catching silent deopt regressions.
  uint64_t compiledInstructions() const { return CompiledInstrs; }
  uint64_t interpretedInstructions() const {
    return TotalExecuted - CompiledInstrs;
  }
  /// Mid-trace deoptimizations (side exits) so far.
  uint64_t deopts() const { return Deopts; }
  /// The shared trace cache driving this replay (null when compilation is
  /// disabled or unavailable on this compiler).
  const TraceCache *traceCache() const { return Traces.get(); }

  /// The tid the recorded schedule runs next (peeking past pending Inject
  /// events without applying them), or -1 when the schedule is exhausted.
  /// Reverse-continue uses this to reproduce forward breakpoint semantics:
  /// a breakpoint "fires" at a position exactly when the next scheduled
  /// thread is poised at its pc.
  int64_t peekNextTid() const;

  /// The first divergence observed (kind None when replay matches the
  /// recording). Fatal divergences make \c stepOne() return false and
  /// \c run() return StopRequested; soft ones are recorded and replay
  /// continues. Cleared by \c restore().
  const DivergenceReport &divergence() const { return Diverged; }

  /// End-of-replay cross-checks against the recording's meta anchors
  /// ("instrs", "endpcs"); run() calls this when the schedule is exhausted,
  /// and drivers that step manually should call it at \c done(). Idempotent
  /// until the next \c restore().
  void checkEndState();

  /// Captures / restores the replay position (together with a
  /// machine-state snapshot taken at the same instant) — the checkpointing
  /// primitive behind reverse debugging.
  ReplayCursor cursor() const;
  void restore(const MachineState &State, const ReplayCursor &Cursor);

private:
  void applyInjection(const Injection &Inj);
  /// Applies Inject events pending at the cursor. \returns false when the
  /// schedule references an unknown injection (fatal divergence reported).
  bool applyPendingInjections();
  /// Compiled-trace fast path: executes schedule Step events from traces
  /// while the entry guards hold. \returns instructions executed (0 when
  /// the guards fail or the entry pc is cold).
  uint64_t fastForward(uint64_t Budget);
  /// Records a divergence (keeping an earlier fatal one over a later or
  /// softer report).
  void reportDivergence(DivergenceKind Kind, uint32_t Tid,
                        const std::string &Detail);

  Pinball Pb;
  Program Prog;
  ReplayOptions Opts;
  bool Valid = false;
  std::string ErrorMessage;
  std::unique_ptr<Machine> M;
  std::unique_ptr<RecordedSyscalls> Syscalls;
  std::map<uint64_t, const Injection *> InjectionById;
  std::shared_ptr<TraceCache> Traces; ///< shared across replays of this code
  TraceExecutor::LocalView LocalTraces;
  size_t EventIndex = 0;   ///< cursor into Pb.Schedule
  uint64_t WithinEvent = 0; ///< instructions consumed of the current Step
  uint64_t Replayed = 0;
  uint64_t TotalExecuted = 0;  ///< monotonic: never rewound by restore()
  uint64_t CompiledInstrs = 0; ///< monotonic: executed from traces
  uint64_t Deopts = 0;         ///< monotonic: mid-trace side exits
  DivergenceReport Diverged;
  /// Mirror of "Diverged is fatal", readable by the trace executor after
  /// every syscall (the abort flag of the deopt contract).
  bool FatalFlag = false;
  bool EndChecked = false;
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_REPLAYER_H
