//===- replay/pinball.h - Pinballs (recorded executions) --------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pinball is the PinPlay artifact this reproduction mirrors: everything
/// needed to deterministically re-create a (region of a) program execution.
/// It contains the program text, the architectural snapshot at region start,
/// the thread schedule, the values produced by non-deterministic syscalls,
/// and — for slice pinballs produced by the relogger — the injection records
/// that restore the side effects of skipped code regions.
///
/// Pinballs serialize to a directory of text files and are portable: a
/// pinball saved by one process replays identically in another. Because they
/// are shipped between machines, every save writes a manifest.txt (format
/// version + per-file byte count and CRC32C) through an atomic
/// temp-dir-then-rename commit, and every load verifies it — a truncated,
/// bit-flipped, or half-saved pinball is rejected with a diagnostic naming
/// the offending file, never replayed as garbage.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_PINBALL_H
#define DRDEBUG_REPLAY_PINBALL_H

#include "arch/program.h"
#include "vm/machine.h"

#include <map>
#include <string>
#include <vector>

namespace drdebug {

/// One element of a pinball's schedule stream.
struct ScheduleEvent {
  enum class Kind : uint8_t {
    Step,   ///< run thread Tid for Count instructions
    Inject, ///< apply injection record InjectId
  };
  Kind K = Kind::Step;
  uint32_t Tid = 0;
  uint64_t Count = 0;
  uint64_t InjectId = 0;
};

/// Net side effects of one skipped (excluded) code region, applied before
/// the owning thread resumes at ResumePc. Produced by the relogger using the
/// same mechanism PinPlay uses for system-call side-effect detection.
struct Injection {
  /// ResumePc value meaning "the thread never resumes" (trailing exclusion).
  static constexpr uint64_t NoResume = ~0ULL;

  uint64_t Id = 0;
  uint32_t Tid = 0;
  uint64_t ResumePc = NoResume;
  std::vector<std::pair<uint64_t, int64_t>> MemWrites;
  std::vector<std::pair<uint32_t, int64_t>> RegWrites;
};

/// One recorded non-deterministic syscall result.
struct SyscallRecord {
  uint32_t Tid = 0;
  Opcode Op = Opcode::SysRead;
  int64_t Value = 0;
};

/// Knobs for Pinball::load.
struct PinballLoadOptions {
  /// Verify file sizes and CRC32C checksums against manifest.txt. Off is
  /// the `--no-verify` escape hatch for debugging deliberately hand-edited
  /// pinballs.
  bool Verify = true;
};

/// What the loader learned about a pinball's integrity metadata.
struct PinballIntegrity {
  /// False for legacy pinballs saved before the manifest existed.
  bool ManifestPresent = false;
  /// Format version from the manifest header (0 when absent).
  unsigned FormatVersion = 0;
  /// Set when the load *failed* because verification caught a bad file
  /// (as opposed to a parse error in intact content).
  bool IntegrityViolation = false;
  /// Non-fatal advisory, e.g. "legacy pinball without manifest.txt".
  std::string Warning;
};

/// A recorded execution region.
class Pinball {
public:
  std::string ProgramText;
  MachineState StartState;
  std::vector<ScheduleEvent> Schedule;
  std::vector<SyscallRecord> Syscalls;
  std::vector<Injection> Injections;
  std::map<std::string, std::string> Meta;

  /// Hard cap on per-injection write counts accepted by the loader; a
  /// corrupted count must not drive allocation.
  static constexpr uint64_t MaxInjectionWrites = 1ull << 20;

  /// Total instructions the schedule executes.
  uint64_t instructionCount() const;

  /// Appends a Step event, coalescing with a preceding Step of the same tid.
  void appendStep(uint32_t Tid);
  void appendInject(uint64_t InjectId);

  /// Writes the pinball as a directory of text files plus a manifest,
  /// committed atomically (temp dir + fsync + rename): a crash mid-save
  /// leaves either the old pinball or none, never a partial one.
  bool save(const std::string &Dir, std::string &Error) const;

  /// Loads a pinball saved by \c save(), verifying the manifest by default.
  /// On failure \p Error names the offending file. \p Info (optional)
  /// receives integrity metadata — including the legacy-pinball warning
  /// when manifest.txt is absent (such pinballs still load).
  bool load(const std::string &Dir, std::string &Error,
            const PinballLoadOptions &Opts, PinballIntegrity *Info = nullptr);
  bool load(const std::string &Dir, std::string &Error) {
    return load(Dir, Error, PinballLoadOptions());
  }

  /// Serializes to the (name, content) pairs save() writes, manifest last.
  std::vector<std::pair<std::string, std::string>> serializeFiles() const;

  /// \returns the pinball's on-disk size in bytes (0 if never saved there).
  static uint64_t diskSizeBytes(const std::string &Dir);

  /// The payload file names a saved pinball directory contains, in save
  /// order (excludes manifest.txt). Exposed so the PinballRepository can
  /// fingerprint a directory for cache invalidation without loading it.
  static const std::vector<const char *> &fileNames();
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_PINBALL_H
