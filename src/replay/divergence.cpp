//===- replay/divergence.cpp - Replay divergence reports ---------------------===//

#include "replay/divergence.h"

#include <sstream>

using namespace drdebug;

const char *drdebug::divergenceKindName(DivergenceKind K) {
  switch (K) {
  case DivergenceKind::None:
    return "none";
  case DivergenceKind::UnknownInjection:
    return "unknown-injection";
  case DivergenceKind::UnknownThread:
    return "unknown-thread";
  case DivergenceKind::ThreadExited:
    return "thread-exited";
  case DivergenceKind::SyscallKindMismatch:
    return "syscall-kind-mismatch";
  case DivergenceKind::SyscallStreamExhausted:
    return "syscall-stream-exhausted";
  case DivergenceKind::ScheduleNotExhausted:
    return "schedule-not-exhausted";
  case DivergenceKind::InstructionCountDrift:
    return "instruction-count-drift";
  case DivergenceKind::EndPcDrift:
    return "end-pc-drift";
  }
  return "unknown";
}

std::string DivergenceReport::describe() const {
  if (Kind == DivergenceKind::None)
    return "no divergence";
  std::ostringstream OS;
  OS << "replay divergence: " << divergenceKindName(Kind)
     << " at schedule event " << Position << " (tid " << Tid;
  if (Pc)
    OS << ", pc " << Pc;
  OS << ")";
  if (!Detail.empty())
    OS << ": " << Detail;
  return OS.str();
}
