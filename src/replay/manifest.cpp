//===- replay/manifest.cpp - Pinball integrity manifest ----------------------===//

#include "replay/manifest.h"

#include "support/crc32c.h"
#include "support/fault_injector.h"

#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <sstream>
#include <unistd.h>

using namespace drdebug;
namespace fs = std::filesystem;

void PinballManifest::add(const std::string &Name,
                          const std::string &Content) {
  FileEntry &E = Files[Name];
  E.Bytes = Content.size();
  E.Crc = crc32c(Content);
}

std::string PinballManifest::serialize() const {
  std::ostringstream OS;
  OS << "drdebug-pinball " << Version << "\n";
  char Hex[16];
  for (const auto &[Name, E] : Files) {
    std::snprintf(Hex, sizeof(Hex), "%08x", E.Crc);
    OS << "file " << Name << " " << E.Bytes << " " << Hex << "\n";
  }
  OS << "end\n";
  return OS.str();
}

bool PinballManifest::parse(const std::string &Text, std::string &Error) {
  Files.clear();
  std::istringstream IS(Text);
  std::string Magic;
  if (!(IS >> Magic >> Version) || Magic != "drdebug-pinball") {
    Error = "manifest.txt: bad header (want 'drdebug-pinball <version>')";
    return false;
  }
  if (Version > FormatVersion) {
    Error = "manifest.txt: pinball format version " + std::to_string(Version) +
            " is newer than this build understands (max " +
            std::to_string(FormatVersion) + ")";
    return false;
  }
  std::string Tag;
  bool SawEnd = false;
  while (IS >> Tag) {
    if (Tag == "end") {
      SawEnd = true;
      break;
    }
    if (Tag != "file") {
      Error = "manifest.txt: unexpected token '" + Tag + "'";
      return false;
    }
    std::string Name, Hex;
    uint64_t Bytes = 0;
    if (!(IS >> Name >> Bytes >> Hex)) {
      Error = "manifest.txt: bad file record";
      return false;
    }
    FileEntry E;
    E.Bytes = Bytes;
    char *End = nullptr;
    E.Crc = static_cast<uint32_t>(std::strtoul(Hex.c_str(), &End, 16));
    if (End == Hex.c_str() || *End) {
      Error = "manifest.txt: bad checksum '" + Hex + "' for " + Name;
      return false;
    }
    Files[Name] = E;
  }
  if (!SawEnd) {
    Error = "manifest.txt: truncated (missing 'end' marker)";
    return false;
  }
  return true;
}

bool PinballManifest::verify(const std::string &Name,
                             const std::string &Content,
                             std::string &Error) const {
  auto It = Files.find(Name);
  if (It == Files.end()) {
    Error = Name + ": not listed in manifest.txt";
    return false;
  }
  const FileEntry &E = It->second;
  if (Content.size() != E.Bytes) {
    Error = Name + ": " +
            (Content.size() < E.Bytes ? std::string("truncated")
                                      : std::string("oversized")) +
            " (" + std::to_string(Content.size()) + " bytes, manifest says " +
            std::to_string(E.Bytes) + ")";
    return false;
  }
  uint32_t Crc = crc32c(Content);
  if (Crc != E.Crc) {
    char Got[16], Want[16];
    std::snprintf(Got, sizeof(Got), "%08x", Crc);
    std::snprintf(Want, sizeof(Want), "%08x", E.Crc);
    Error = Name + ": checksum mismatch (crc32c " + Got + ", manifest says " +
            Want + ")";
    return false;
  }
  return true;
}

namespace {

/// Writes \p Content to \p Path and fsyncs it, probing the pinball fault
/// sites. ShortWrite leaves a prefix behind before reporting failure —
/// exactly the partial state a real interrupted write produces.
bool writeFileDurably(const fs::path &Path, const std::string &Content,
                      std::string &Error) {
  FaultInjector &FI = FaultInjector::global();
  if (FI.shouldFail("pinball.write", FaultKind::DiskFull)) {
    Error = Path.filename().string() + ": no space left on device (injected)";
    return false;
  }
  bool Short = FI.shouldFail("pinball.write", FaultKind::ShortWrite);
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot create " + Path.filename().string();
    return false;
  }
  size_t N = Short ? Content.size() / 2 : Content.size();
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = ::write(Fd, Content.data() + Off, N - Off);
    if (W < 0) {
      ::close(Fd);
      Error = "write failed for " + Path.filename().string();
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  if (::fsync(Fd) != 0) {
    ::close(Fd);
    Error = "fsync failed for " + Path.filename().string();
    return false;
  }
  ::close(Fd);
  if (Short) {
    Error = Path.filename().string() + ": short write (injected)";
    return false;
  }
  return true;
}

/// fsyncs a directory so renames/creations inside it are durable.
void syncDir(const fs::path &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

bool drdebug::writeDirAtomically(
    const std::string &Dir,
    const std::vector<std::pair<std::string, std::string>> &Files,
    std::string &Error) {
  fs::path Target(Dir);
  fs::path Parent = Target.parent_path();
  if (Parent.empty())
    Parent = ".";
  std::error_code EC;
  fs::create_directories(Parent, EC);
  if (EC) {
    Error = "cannot create " + Parent.string() + ": " + EC.message();
    return false;
  }

  // The temp dir is a sibling (same filesystem, so the final rename is
  // atomic) with a pid-qualified suffix. A stale one from a crashed earlier
  // save is removed first — it is by construction incomplete.
  fs::path Tmp = Target;
  Tmp += ".tmp-" + std::to_string(static_cast<unsigned long>(::getpid()));
  fs::remove_all(Tmp, EC);
  fs::create_directories(Tmp, EC);
  if (EC) {
    Error = "cannot create temp directory " + Tmp.string() + ": " +
            EC.message();
    return false;
  }

  auto Fail = [&](const std::string &Why) {
    std::error_code Ignored;
    fs::remove_all(Tmp, Ignored);
    Error = "pinball save to " + Dir + " failed: " + Why;
    return false;
  };

  for (const auto &[Name, Content] : Files) {
    std::string FileError;
    if (!writeFileDurably(Tmp / Name, Content, FileError))
      return Fail(FileError);
  }
  syncDir(Tmp);

  // Crash probe: simulates kill -9 after the payload is on disk but before
  // the rename commits. The temp dir stays behind (as after a real crash);
  // the target directory must be untouched.
  if (FaultInjector::global().shouldFail("pinball.crash", FaultKind::Crash)) {
    Error = "pinball save to " + Dir + " failed: crashed before commit "
            "(injected)";
    return false;
  }

  fs::remove_all(Target, EC);
  if (EC)
    return Fail("cannot remove previous " + Dir + ": " + EC.message());
  fs::rename(Tmp, Target, EC);
  if (EC)
    return Fail("cannot rename into place: " + EC.message());
  syncDir(Parent);
  return true;
}
