//===- replay/logger.h - Region logger (PinPlay-analog) ---------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logger captures an *execution region* into a pinball: it fast
/// forwards (with minimal instrumentation, like PinPlay's logger before the
/// region) to the region start, snapshots the architectural state, then
/// records the thread schedule and every non-deterministic syscall value
/// until the region ends. Regions are delimited either by a (skip, length)
/// pair counted in main-thread instructions — the scheme the paper uses for
/// the PARSEC experiments — or by pc:instance triggers, or by the program
/// failing (the Assert symptom), which is how the buggy-region pinballs of
/// Tables 2 and 3 are captured.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_LOGGER_H
#define DRDEBUG_REPLAY_LOGGER_H

#include "replay/pinball.h"
#include "vm/machine.h"
#include "vm/scheduler.h"

namespace drdebug {

/// Delimits the execution region to capture.
struct RegionSpec {
  /// Fast-forward: main-thread instructions to execute before the region.
  uint64_t SkipMainInstrs = 0;
  /// Region length in main-thread instructions (~0 = until program end).
  uint64_t LengthMainInstrs = ~0ULL;
  /// Stop the region when an Assert fails (captures the failure point).
  bool StopAtFailure = true;
  /// Safety budget on total executed instructions (fast-forward plus
  /// region); ~0 = unlimited. Used e.g. by the Maple driver, whose forced
  /// schedules could otherwise livelock a spin-waiting program.
  uint64_t MaxTotalInstrs = ~0ULL;

  /// Optional region-start trigger: snapshot when thread StartTid is poised
  /// to execute StartPc for the StartInstance-th time (1-based). Applied
  /// after SkipMainInstrs.
  bool HaveStartTrigger = false;
  uint32_t StartTid = 0;
  uint64_t StartPc = 0;
  uint64_t StartInstance = 1;

  /// Optional region-end trigger: stop after thread EndTid executes EndPc
  /// for the EndInstance-th time (counted within the region).
  bool HaveEndTrigger = false;
  uint32_t EndTid = 0;
  uint64_t EndPc = 0;
  uint64_t EndInstance = 1;
};

/// Outcome of a logging run.
struct LogResult {
  Pinball Pb;
  Machine::StopReason Reason = Machine::StopReason::Halted;
  /// Main-thread instructions recorded inside the region.
  uint64_t MainThreadInstrs = 0;
  /// Instructions recorded across all threads.
  uint64_t TotalInstrs = 0;
  /// True if the region ended because an Assert failed.
  bool FailureCaptured = false;
};

/// Captures execution regions into pinballs.
class Logger {
public:
  /// Runs \p Prog from the beginning under \p Sched and \p World (may be
  /// null for the default world) and logs the region described by \p Spec.
  static LogResult logRegion(const Program &Prog, Scheduler &Sched,
                             SyscallProvider *World, const RegionSpec &Spec);

  /// Convenience: log the whole execution (skip 0, until program end).
  static LogResult logWholeProgram(const Program &Prog, Scheduler &Sched,
                                   SyscallProvider *World = nullptr);
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_LOGGER_H
