//===- replay/logger.cpp - Region logger (PinPlay-analog) -------------------===//

#include "replay/logger.h"

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/stopwatch.h"
#include "support/tracing.h"

#include <cassert>
#include <sstream>

using namespace drdebug;

namespace {

/// Phase-A observer: cheap monitoring to find the region start.
class FastForwardMonitor : public Observer {
public:
  FastForwardMonitor(Machine &M, const RegionSpec &Spec) : M(M), Spec(Spec) {}

  bool reachedStart() const { return Reached; }

  void onPreExec(const Machine &, uint32_t Tid, uint64_t Pc) override {
    if (Reached || !SkipDone || !Spec.HaveStartTrigger)
      return;
    if (Tid == Spec.StartTid && Pc == Spec.StartPc &&
        ++SeenInstances == Spec.StartInstance) {
      Reached = true;
      M.requestStop(); // stop *before* executing the trigger instruction
    }
  }

  void onExec(const Machine &, const ExecRecord &R) override {
    if (Reached)
      return;
    if (!SkipDone) {
      if (R.Tid == 0 && ++MainCount >= Spec.SkipMainInstrs) {
        SkipDone = true;
        if (!Spec.HaveStartTrigger) {
          Reached = true;
          M.requestStop();
        }
      }
      return;
    }
  }

  /// Handles the degenerate skip==0 case where no instruction ever runs
  /// before the region starts.
  void primeForZeroSkip() {
    if (Spec.SkipMainInstrs == 0) {
      SkipDone = true;
      if (!Spec.HaveStartTrigger)
        Reached = true;
    }
  }

private:
  Machine &M;
  const RegionSpec &Spec;
  uint64_t MainCount = 0;
  uint64_t SeenInstances = 0;
  bool SkipDone = false;
  bool Reached = false;
};

/// Phase-B observer: records the schedule and syscall values.
class RecordingObserver : public Observer {
public:
  RecordingObserver(Machine &M, const RegionSpec &Spec, Pinball &Pb)
      : M(M), Spec(Spec), Pb(Pb) {}

  uint64_t mainInstrs() const { return MainCount; }
  uint64_t totalInstrs() const { return TotalCount; }

  void onExec(const Machine &, const ExecRecord &R) override {
    Pb.appendStep(R.Tid);
    ++TotalCount;
    if (R.Tid == 0)
      ++MainCount;
    if (MainCount >= Spec.LengthMainInstrs) {
      M.requestStop();
      return;
    }
    if (Spec.HaveEndTrigger && R.Tid == Spec.EndTid && R.Pc == Spec.EndPc &&
        ++EndInstances == Spec.EndInstance)
      M.requestStop();
  }

  void onSyscallValue(uint32_t Tid, Opcode Op, int64_t Value) override {
    Pb.Syscalls.push_back({Tid, Op, Value});
  }

private:
  Machine &M;
  const RegionSpec &Spec;
  Pinball &Pb;
  uint64_t MainCount = 0;
  uint64_t TotalCount = 0;
  uint64_t EndInstances = 0;
};

} // namespace

LogResult Logger::logRegion(const Program &Prog, Scheduler &Sched,
                            SyscallProvider *World, const RegionSpec &Spec) {
  namespace mn = drdebug::metricnames;
  static metrics::Counter &Regions =
      metrics::MetricsRegistry::global().counter(mn::LogRegions);
  static metrics::Counter &Instrs =
      metrics::MetricsRegistry::global().counter(mn::LogInstructions);
  static metrics::LatencyHistogram &FastForwardUs =
      metrics::MetricsRegistry::global().histogram(mn::LogFastForwardUs);
  static metrics::LatencyHistogram &RecordUs =
      metrics::MetricsRegistry::global().histogram(mn::LogRecordUs);
  Regions.inc();

  Machine M(Prog);
  M.setScheduler(&Sched);
  if (World)
    M.setSyscalls(World);

  // Phase A: fast-forward to the region start. Only the lightweight monitor
  // is attached, so this proceeds at near-native interpreter speed.
  FastForwardMonitor Monitor(M, Spec);
  Monitor.primeForZeroSkip();
  if (!Monitor.reachedStart()) {
    trace::TraceSpan Span("log.fastforward", "logger");
    Stopwatch SW;
    M.addObserver(&Monitor);
    Machine::StopReason Reason = M.run(Spec.MaxTotalInstrs);
    M.removeObserver(&Monitor);
    FastForwardUs.record(static_cast<uint64_t>(SW.seconds() * 1e6));
    if (!Monitor.reachedStart()) {
      // The program ended before the region start; log an empty region.
      LogResult Result;
      Result.Pb.ProgramText = Prog.SourceText;
      Result.Pb.StartState = M.snapshot();
      Result.Pb.Meta["kind"] = "region";
      Result.Reason = Reason;
      return Result;
    }
    M.clearStopRequest();
  }

  // Phase B: snapshot and record.
  trace::TraceSpan RecordSpan("log.record", "logger");
  Stopwatch RecordSW;
  LogResult Result;
  Result.Pb.ProgramText = Prog.SourceText;
  Result.Pb.StartState = M.snapshot();
  Result.Pb.Meta["kind"] = "region";

  RecordingObserver Recorder(M, Spec, Result.Pb);
  M.addObserver(&Recorder);
  uint64_t Budget = Spec.MaxTotalInstrs == ~0ULL
                        ? ~0ULL
                        : Spec.MaxTotalInstrs - std::min(Spec.MaxTotalInstrs,
                                                         M.globalCount());
  Machine::StopReason Reason = M.run(Budget);
  if (Reason == Machine::StopReason::AssertFailed && !Spec.StopAtFailure) {
    // Not modelled: continuing past a failed assertion. The machine always
    // stops, so just report it.
  }
  M.removeObserver(&Recorder);
  RecordUs.record(static_cast<uint64_t>(RecordSW.seconds() * 1e6));
  Instrs.inc(Recorder.totalInstrs());

  Result.Reason = Reason;
  Result.MainThreadInstrs = Recorder.mainInstrs();
  Result.TotalInstrs = Recorder.totalInstrs();
  // Drift anchors: the replayer cross-checks these against what it actually
  // executed, catching edited or subtly corrupted pinballs that still parse.
  Result.Pb.Meta["instrs"] = std::to_string(Recorder.totalInstrs());
  {
    std::ostringstream EndPcs;
    for (uint32_t T = 0; T != M.numThreads(); ++T) {
      if (T)
        EndPcs << " ";
      EndPcs << T << ":" << M.thread(T).Pc;
    }
    Result.Pb.Meta["endpcs"] = EndPcs.str();
  }
  Result.FailureCaptured = Reason == Machine::StopReason::AssertFailed;
  if (Result.FailureCaptured) {
    Result.Pb.Meta["failtid"] = std::to_string(M.failedTid());
    Result.Pb.Meta["failpc"] = std::to_string(M.failedPc());
  }
  return Result;
}

LogResult Logger::logWholeProgram(const Program &Prog, Scheduler &Sched,
                                  SyscallProvider *World) {
  RegionSpec Spec;
  return logRegion(Prog, Sched, World, Spec);
}
