//===- replay/relogger.cpp - Exclusion relogging (slice pinballs) -----------===//

#include "replay/relogger.h"

#include "replay/replayer.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace drdebug;

namespace {

/// Observer that partitions the replayed stream into included/excluded
/// instructions, accumulates excluded regions' side effects, and emits the
/// slice pinball's schedule.
class RelogObserver : public Observer {
public:
  RelogObserver(Machine &M, const std::vector<ExclusionRegion> &Excl,
                Pinball &Out)
      : M(M), Out(Out) {
    for (const ExclusionRegion &R : Excl)
      Regions[R.Tid].push_back(R);
    for (auto &[Tid, List] : Regions)
      std::sort(List.begin(), List.end(),
                [](const ExclusionRegion &A, const ExclusionRegion &B) {
                  return A.BeginIndex < B.BeginIndex;
                });
  }

  void onPreExec(const Machine &, uint32_t Tid, uint64_t Pc) override {
    uint64_t Idx = M.thread(Tid).ExecCount;
    CurExcluded = isExcluded(Tid, Idx);
    CurTid = Tid;
    ThreadState &TS = States[Tid];
    if (TS.InExclusion && !CurExcluded)
      finalize(Tid, /*ResumePc=*/Pc);
    if (!TS.InExclusion && CurExcluded)
      open(Tid);
  }

  void onExec(const Machine &, const ExecRecord &R) override {
    ThreadState &TS = States[R.Tid];
    if (TS.InExclusion) {
      assert(R.Inst->Op != Opcode::Spawn &&
             "thread-creating instructions must never be excluded");
      for (const auto &Def : R.Defs)
        if (!isRegLoc(Def.Loc))
          TS.TouchedAddrs.insert(locAddr(Def.Loc));
      return;
    }
    Out.appendStep(R.Tid);
  }

  void onSyscallValue(uint32_t Tid, Opcode Op, int64_t Value) override {
    assert(Tid == CurTid && "syscall from unexpected thread");
    if (!CurExcluded)
      Out.Syscalls.push_back({Tid, Op, Value});
  }

  void onThreadExited(uint32_t Tid) override {
    ThreadState &TS = States[Tid];
    if (TS.InExclusion)
      finalize(Tid, Injection::NoResume);
  }

  /// Close any exclusions still open when the replay ends.
  void finish() {
    for (auto &[Tid, TS] : States)
      if (TS.InExclusion)
        finalize(Tid, Injection::NoResume);
  }

private:
  struct ThreadState {
    bool InExclusion = false;
    int64_t SavedRegs[NumRegs] = {};
    std::set<uint64_t> TouchedAddrs;
  };

  bool isExcluded(uint32_t Tid, uint64_t Idx) const {
    auto It = Regions.find(Tid);
    if (It == Regions.end())
      return false;
    // Regions per thread are few (gaps between slice points); linear scan
    // with an advancing cursor would also work, but binary search keeps this
    // correct even if callers pass unsorted interleavings.
    const auto &List = It->second;
    auto Pos = std::upper_bound(
        List.begin(), List.end(), Idx,
        [](uint64_t V, const ExclusionRegion &R) { return V < R.BeginIndex; });
    if (Pos == List.begin())
      return false;
    --Pos;
    return Idx >= Pos->BeginIndex && Idx < Pos->EndIndex;
  }

  void open(uint32_t Tid) {
    ThreadState &TS = States[Tid];
    TS.InExclusion = true;
    TS.TouchedAddrs.clear();
    const ThreadContext &T = M.thread(Tid);
    for (unsigned I = 0; I != NumRegs; ++I)
      TS.SavedRegs[I] = T.Regs[I];
  }

  void finalize(uint32_t Tid, uint64_t ResumePc) {
    ThreadState &TS = States[Tid];
    assert(TS.InExclusion);
    Injection Inj;
    Inj.Id = NextInjectionId++;
    Inj.Tid = Tid;
    Inj.ResumePc = ResumePc;
    // Side-effect detection: for every address the excluded code wrote,
    // record the value it holds *now* (the region boundary). Using the
    // boundary value rather than the last excluded write is what keeps
    // injections correct when another thread overwrote the address in
    // between (its own included write is replayed too).
    for (uint64_t Addr : TS.TouchedAddrs)
      Inj.MemWrites.emplace_back(Addr, M.mem().load(Addr));
    const ThreadContext &T = M.thread(Tid);
    for (unsigned I = 0; I != NumRegs; ++I)
      if (T.Regs[I] != TS.SavedRegs[I])
        Inj.RegWrites.emplace_back(I, T.Regs[I]);
    Out.appendInject(Inj.Id);
    Out.Injections.push_back(std::move(Inj));
    TS.InExclusion = false;
  }

  Machine &M;
  Pinball &Out;
  std::map<uint32_t, std::vector<ExclusionRegion>> Regions;
  std::map<uint32_t, ThreadState> States;
  uint64_t NextInjectionId = 0;
  bool CurExcluded = false;
  uint32_t CurTid = 0;
};

} // namespace

bool Relogger::relog(const Pinball &RegionPb,
                     const std::vector<ExclusionRegion> &Excl, Pinball &Out,
                     std::string &Error) {
  Replayer Rep(RegionPb);
  if (!Rep.valid()) {
    Error = "relog: " + Rep.error();
    return false;
  }
  Out = Pinball();
  Out.ProgramText = RegionPb.ProgramText;
  Out.StartState = RegionPb.StartState;
  Out.Meta = RegionPb.Meta;
  Out.Meta["kind"] = "slice";
  // The drift anchors describe the full region execution; the sliced replay
  // legitimately runs fewer instructions and ends at injection resume points.
  Out.Meta.erase("instrs");
  Out.Meta.erase("endpcs");

  RelogObserver Obs(Rep.machine(), Excl, Out);
  Rep.machine().addObserver(&Obs);
  Rep.run();
  Obs.finish();
  Rep.machine().removeObserver(&Obs);
  return true;
}
