//===- replay/flight_recorder.h - Always-on epoch-ring recorder -*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on flight recorder: in-situ recording that keeps only the
/// *recent* past, so the moment a bug fires the window containing it already
/// exists — no start-to-finish pinball required. This is the iReplayer-style
/// epoch design grafted onto the PinPlay-analog logger:
///
///  - Execution is cut into epochs of K instructions. Each epoch owns
///    per-thread event rings (schedule runs + non-deterministic syscall
///    values) and a checkpoint of the machine state at its start.
///  - Checkpoints reuse the dirty-page delta machinery of
///    CheckpointedReplay: every AnchorEvery-th epoch stores a full snapshot,
///    the rest store thin snapshots plus the pages dirtied since their
///    anchor (cumulative, so any delta reconstructs from any earlier
///    materialized epoch of the same anchor chain).
///  - When the epoch count or the total memory budget is exceeded the oldest
///    epoch (ring segment + checkpoint) is garbage collected; if its
///    successor is a delta it is first materialized into a full anchor, so
///    the invariant "the oldest retained epoch is an anchor" always holds.
///  - dump() materializes the retained window into a normal, manifest-
///    verified pinball (Meta-anchored: instrs + endpcs drift anchors), so
///    replay, reverse execution, slicing and drdebugd sessions consume a
///    flight dump unchanged.
///
/// The recorder is an Observer over an externally owned Machine and can
/// attach mid-run ("live attach"): epoch 0 starts at the machine's current
/// position, whatever that is.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_FLIGHT_RECORDER_H
#define DRDEBUG_REPLAY_FLIGHT_RECORDER_H

#include "replay/pinball.h"
#include "vm/machine.h"
#include "vm/observer.h"

#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace drdebug {

/// Knobs for a FlightRecorder.
struct FlightOptions {
  /// Instructions per epoch (the ring granularity).
  uint64_t EpochInstrs = 2048;
  /// Maximum retained epochs, including the open one (0 = unbounded).
  size_t MaxEpochs = 8;
  /// Total memory budget over rings + checkpoints, in approx bytes
  /// (0 = unbounded). Enforced by evicting oldest epochs; the open epoch
  /// and its checkpoint are never evicted, so a budget smaller than one
  /// epoch degrades to "keep the current epoch only".
  size_t MemoryBudgetBytes = 0;
  /// Every Nth epoch checkpoint is a full snapshot; the rest are
  /// dirty-page deltas (<=1 means every checkpoint is full).
  uint64_t AnchorEvery = 4;
};

/// A point-in-time report of recorder state (the `record status` payload).
struct FlightStatus {
  uint64_t WindowStart = 0;   ///< global instr index of the oldest retained
  uint64_t WindowEnd = 0;     ///< global instr index "now" (exclusive)
  uint64_t EpochsRecorded = 0;///< epochs ever opened
  size_t EpochsRetained = 0;  ///< epochs currently held (incl. the open one)
  uint64_t EpochsEvicted = 0; ///< epochs garbage-collected so far
  size_t RingBytes = 0;       ///< approx bytes in event rings
  size_t CheckpointBytes = 0; ///< approx bytes in epoch checkpoints
  size_t PeakBytes = 0;       ///< high-water mark of rings + checkpoints
  uint64_t Dumps = 0;         ///< successful dump() calls
  bool FailureSeen = false;   ///< an Assert failed inside the window
};

/// The always-on recorder. Attach to a live Machine; detachment happens in
/// the destructor, which must therefore run before the machine is destroyed.
class FlightRecorder : public Observer {
public:
  FlightRecorder(Machine &M, const FlightOptions &Options = FlightOptions());
  ~FlightRecorder() override;
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  const FlightOptions &options() const { return Opts; }
  FlightStatus status() const;

  /// Materializes the retained window (all closed epochs plus the open
  /// partial one) into a pinball that replays to the machine's *current*
  /// state. \returns false with \p Error set on an internal inconsistency.
  bool dump(Pinball &Out, std::string &Error);

  /// dump() followed by the crash-safe manifest-verified save to \p Dir.
  bool dumpTo(const std::string &Dir, Pinball &Out, std::string &Error);

  // --- Observer ------------------------------------------------------------
  void onExec(const Machine &M, const ExecRecord &R) override;
  void onSyscallValue(uint32_t Tid, Opcode Op, int64_t Value) override;
  void onAssertFailed(uint32_t Tid, uint64_t Pc) override;

private:
  /// A maximal run of one thread in the global schedule. Seq orders runs
  /// across threads; an epoch boundary can split one run into two pieces
  /// with the same Seq (re-joined at dump time by stable order).
  struct ThreadRun {
    uint64_t Seq = 0;
    uint64_t Count = 0;
  };
  /// One thread's slice of an epoch: its schedule runs and the syscall
  /// values it consumed. Only this thread appends (under the machine's
  /// single-stepped execution), so no synchronization is needed.
  struct ThreadRing {
    std::vector<ThreadRun> Runs;
    std::vector<SyscallRecord> Syscalls;
  };
  /// One epoch: the checkpoint at its start plus the event rings recorded
  /// during it.
  struct Epoch {
    uint64_t StartPos = 0; ///< global instr index at epoch start
    bool IsAnchor = true;
    MachineState Full;                               ///< anchors only
    MachineState Thin;                               ///< deltas only
    std::vector<uint64_t> DirtyPages;                ///< deltas only
    std::vector<std::pair<uint64_t, int64_t>> PageWords; ///< deltas only
    std::map<uint32_t, ThreadRing> Rings;
    size_t CkptBytes = 0;
    size_t RingBytes = 0;
  };

  void openEpoch();
  void collectGarbage();
  /// Rewrites Epochs[1] (a delta) into a full anchor using Epochs[0]'s
  /// memory image, so the front can be evicted.
  void materializeSecond();
  size_t totalBytes() const { return TotalRingBytes + TotalCkptBytes; }
  void samplePeak();

  Machine &M;
  FlightOptions Opts;
  std::deque<Epoch> Epochs;
  /// Pages dirtied since the last anchor checkpoint (cumulative — cleared
  /// only when an anchor is taken, exactly like CheckpointedReplay).
  std::unordered_set<uint64_t> DirtySinceAnchor;

  uint64_t Position = 0;   ///< global instr index "now"
  uint64_t SeqCounter = 0; ///< bumped on every executing-thread switch
  uint32_t LastTid = ~0u;
  uint64_t EpochsOpened = 0;
  uint64_t EpochsEvicted = 0;
  size_t TotalRingBytes = 0;
  size_t TotalCkptBytes = 0;
  size_t PeakBytes = 0;
  uint64_t Dumps = 0;
  bool FailureSeen = false;
  uint32_t FailTid = 0;
  uint64_t FailPc = 0;
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_FLIGHT_RECORDER_H
