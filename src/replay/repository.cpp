//===- replay/repository.cpp - Shared pinball repository ---------------------===//

#include "replay/repository.h"

#include "replay/manifest.h"

#include <filesystem>

using namespace drdebug;
namespace fs = std::filesystem;

uint64_t PinballRepository::dirFingerprint(const std::string &Dir) {
  uint64_t Fp = 0;
  bool Any = false;
  // The manifest participates so that editing it (or deleting it) also
  // invalidates a cached entry.
  std::vector<const char *> Names = Pinball::fileNames();
  Names.push_back(PinballManifest::FileName);
  for (const char *Name : Names) {
    std::error_code EC;
    fs::path P = fs::path(Dir) / Name;
    uint64_t Size = fs::file_size(P, EC);
    if (EC)
      continue;
    Any = true;
    uint64_t MTime = static_cast<uint64_t>(
        fs::last_write_time(P, EC).time_since_epoch().count());
    // FNV-1a over (size, mtime) of each file.
    for (uint64_t V : {Size, MTime}) {
      for (int Byte = 0; Byte != 8; ++Byte) {
        Fp = (Fp == 0 ? 1469598103934665603ULL : Fp) ^ ((V >> (8 * Byte)) & 0xFF);
        Fp *= 1099511628211ULL;
      }
    }
  }
  return Any ? (Fp ? Fp : 1) : 0;
}

std::shared_ptr<const Pinball> PinballRepository::load(const std::string &Dir,
                                                      std::string &Error,
                                                      PinballIntegrity *Info) {
  std::error_code EC;
  fs::path Canon = fs::weakly_canonical(Dir, EC);
  std::string Key = EC ? Dir : Canon.string();

  uint64_t Fp = dirFingerprint(Dir);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(Key);
  if (It != Cache.end() && Fp != 0 && It->second.Fingerprint == Fp) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    if (Info)
      *Info = It->second.Integrity;
    return It->second.Pb;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  auto Pb = std::make_shared<Pinball>();
  PinballLoadOptions Opts;
  Opts.Verify = Verify.load(std::memory_order_relaxed);
  PinballIntegrity Integrity;
  if (!Pb->load(Dir, Error, Opts, &Integrity)) {
    if (Integrity.IntegrityViolation)
      IntegrityFailures.fetch_add(1, std::memory_order_relaxed);
    if (Info)
      *Info = Integrity;
    Cache.erase(Key);
    return nullptr;
  }
  Entry E;
  E.Fingerprint = Fp;
  E.Pb = std::move(Pb);
  E.Integrity = Integrity;
  if (Info)
    *Info = Integrity;
  std::shared_ptr<const Pinball> Result = E.Pb;
  Cache[Key] = std::move(E);
  return Result;
}

void PinballRepository::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Cache.clear();
}

size_t PinballRepository::cachedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cache.size();
}
