//===- replay/flight_recorder.cpp - Always-on epoch-ring recorder -----------===//

#include "replay/flight_recorder.h"

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/tracing.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>

using namespace drdebug;

namespace {

/// The flight-recorder subsystem's global instruments, registered once.
struct FlightMetrics {
  metrics::Gauge &Retained;
  metrics::Counter &Gc;
  metrics::Gauge &Bytes;
  metrics::Counter &Dumps;
  metrics::LatencyHistogram &DumpLatency;

  static FlightMetrics &get() {
    namespace mn = drdebug::metricnames;
    auto &Reg = metrics::MetricsRegistry::global();
    static FlightMetrics M{Reg.gauge(mn::FlightEpochsRetained),
                           Reg.counter(mn::FlightEpochsGc),
                           Reg.gauge(mn::FlightRingBytes),
                           Reg.counter(mn::FlightDumps),
                           Reg.histogram(mn::FlightDumpLatencyUs)};
    return M;
  }
};

} // namespace

FlightRecorder::FlightRecorder(Machine &M, const FlightOptions &Options)
    : M(M), Opts(Options) {
  if (Opts.EpochInstrs == 0)
    Opts.EpochInstrs = 1;
  if (Opts.AnchorEvery == 0)
    Opts.AnchorEvery = 1;
  Position = M.globalCount();
  M.mem().enableDirtyTracking();
  M.mem().clearDirtyPages();
  openEpoch(); // epoch 0, always an anchor (live attach starts "now")
  samplePeak();
  M.addObserver(this);
}

FlightRecorder::~FlightRecorder() {
  M.removeObserver(this);
  FlightMetrics &FM = FlightMetrics::get();
  FM.Retained.sub(static_cast<int64_t>(Epochs.size()));
  FM.Bytes.sub(static_cast<int64_t>(totalBytes()));
}

void FlightRecorder::openEpoch() {
  // Fold the pages written since the previous epoch checkpoint into the
  // running since-anchor set; deltas are anchor-relative and *cumulative*,
  // so a later delta's page set is a superset of an earlier one's — the
  // property GC relies on when it re-anchors the window front.
  Memory &Mem = M.mem();
  for (uint64_t Page : Mem.dirtyPages())
    DirtySinceAnchor.insert(Page);
  Mem.clearDirtyPages();

  bool Anchor = Epochs.empty() || Opts.AnchorEvery <= 1 ||
                (EpochsOpened % Opts.AnchorEvery) == 0;
  Epoch E;
  E.StartPos = Position;
  if (Anchor) {
    E.IsAnchor = true;
    E.Full = M.snapshot();
    E.CkptBytes = E.Full.approxBytes();
    DirtySinceAnchor.clear();
  } else {
    E.IsAnchor = false;
    E.Thin = M.snapshot(/*IncludeMemory=*/false);
    E.DirtyPages.assign(DirtySinceAnchor.begin(), DirtySinceAnchor.end());
    std::sort(E.DirtyPages.begin(), E.DirtyPages.end());
    for (uint64_t Page : E.DirtyPages)
      Mem.collectPage(Page, E.PageWords);
    E.CkptBytes = E.Thin.approxBytes() +
                  E.DirtyPages.size() * sizeof(uint64_t) +
                  E.PageWords.size() * sizeof(std::pair<uint64_t, int64_t>);
  }
  TotalCkptBytes += E.CkptBytes;
  ++EpochsOpened;
  FlightMetrics &FM = FlightMetrics::get();
  FM.Retained.add(1);
  FM.Bytes.add(static_cast<int64_t>(E.CkptBytes));
  Epochs.push_back(std::move(E));
}

void FlightRecorder::materializeSecond() {
  assert(Epochs.size() > 1 && Epochs.front().IsAnchor &&
         !Epochs[1].IsAnchor && "front invariant violated");
  Epoch &A = Epochs.front();
  Epoch &D = Epochs[1];
  // The delta's page set is cumulative since its governing anchor, so even
  // when A is itself a materialized ex-delta the erase-then-store below
  // touches a superset of A's patches: the reconstruction is exact.
  MachineState S = A.Full;
  S.Threads = D.Thin.Threads;
  S.MutexOwner = D.Thin.MutexOwner;
  S.HeapNext = D.Thin.HeapNext;
  S.GlobalCount = D.Thin.GlobalCount;
  S.NextTid = D.Thin.NextTid;
  S.Output = D.Thin.Output;
  for (uint64_t Page : D.DirtyPages)
    S.Mem.erasePage(Page);
  for (const auto &[Addr, Val] : D.PageWords)
    S.Mem.store(Addr, Val);

  size_t OldBytes = D.CkptBytes;
  D.Full = std::move(S);
  D.IsAnchor = true;
  D.Thin = MachineState();
  D.DirtyPages.clear();
  D.DirtyPages.shrink_to_fit();
  D.PageWords.clear();
  D.PageWords.shrink_to_fit();
  D.CkptBytes = D.Full.approxBytes();
  TotalCkptBytes += D.CkptBytes;
  TotalCkptBytes -= OldBytes;
  FlightMetrics &FM = FlightMetrics::get();
  FM.Bytes.add(static_cast<int64_t>(D.CkptBytes));
  FM.Bytes.sub(static_cast<int64_t>(OldBytes));
}

void FlightRecorder::collectGarbage() {
  FlightMetrics &FM = FlightMetrics::get();
  while (Epochs.size() > 1 &&
         ((Opts.MaxEpochs && Epochs.size() > Opts.MaxEpochs) ||
          (Opts.MemoryBudgetBytes && totalBytes() > Opts.MemoryBudgetBytes))) {
    // The new window front must be able to seed a dump, so promote it to a
    // full anchor before its predecessor (and that predecessor's memory
    // image) disappears.
    if (!Epochs[1].IsAnchor)
      materializeSecond();
    const Epoch &Old = Epochs.front();
    assert(TotalRingBytes >= Old.RingBytes &&
           TotalCkptBytes >= Old.CkptBytes && "flight byte accounting drifted");
    TotalRingBytes -= Old.RingBytes;
    TotalCkptBytes -= Old.CkptBytes;
    FM.Bytes.sub(static_cast<int64_t>(Old.RingBytes + Old.CkptBytes));
    FM.Retained.sub(1);
    FM.Gc.inc();
    ++EpochsEvicted;
    Epochs.pop_front();
  }
}

void FlightRecorder::samplePeak() {
  // High-water mark after GC: the peak reports the bounded resident set,
  // not the one-epoch transient evicted above.
  PeakBytes = std::max(PeakBytes, totalBytes());
}

void FlightRecorder::onExec(const Machine &, const ExecRecord &R) {
  Position = R.GlobalIndex + 1;
  Epoch &E = Epochs.back();
  if (R.Tid != LastTid) {
    ++SeqCounter;
    LastTid = R.Tid;
  }
  ThreadRing &TR = E.Rings[R.Tid];
  if (TR.Runs.empty() || TR.Runs.back().Seq != SeqCounter) {
    TR.Runs.push_back({SeqCounter, 1});
    E.RingBytes += sizeof(ThreadRun);
    TotalRingBytes += sizeof(ThreadRun);
    FlightMetrics::get().Bytes.add(sizeof(ThreadRun));
  } else {
    ++TR.Runs.back().Count;
  }
  if (Position - E.StartPos >= Opts.EpochInstrs) {
    trace::TraceSpan Span("flight.epoch", "flight");
    openEpoch();
    collectGarbage();
    samplePeak();
  } else if (Opts.MemoryBudgetBytes && totalBytes() > Opts.MemoryBudgetBytes) {
    // Rings can outgrow the budget mid-epoch (e.g. heavy thread ping-pong);
    // evict old history eagerly instead of waiting for the rotation.
    collectGarbage();
    samplePeak();
  }
}

void FlightRecorder::onSyscallValue(uint32_t Tid, Opcode Op, int64_t Value) {
  // Fires before the consuming instruction's onExec, so the value lands in
  // the same epoch as its instruction (rotation happens post-onExec).
  Epoch &E = Epochs.back();
  E.Rings[Tid].Syscalls.push_back({Tid, Op, Value});
  E.RingBytes += sizeof(SyscallRecord);
  TotalRingBytes += sizeof(SyscallRecord);
  FlightMetrics::get().Bytes.add(sizeof(SyscallRecord));
}

void FlightRecorder::onAssertFailed(uint32_t Tid, uint64_t Pc) {
  FailureSeen = true;
  FailTid = Tid;
  FailPc = Pc;
}

FlightStatus FlightRecorder::status() const {
  FlightStatus S;
  S.WindowStart = Epochs.empty() ? Position : Epochs.front().StartPos;
  S.WindowEnd = Position;
  S.EpochsRecorded = EpochsOpened;
  S.EpochsRetained = Epochs.size();
  S.EpochsEvicted = EpochsEvicted;
  S.RingBytes = TotalRingBytes;
  S.CheckpointBytes = TotalCkptBytes;
  S.PeakBytes = PeakBytes;
  S.Dumps = Dumps;
  S.FailureSeen = FailureSeen;
  return S;
}

bool FlightRecorder::dump(Pinball &Out, std::string &Error) {
  trace::TraceSpan Span("flight.dump", "flight");
  auto T0 = std::chrono::steady_clock::now();
  if (Epochs.empty()) {
    Error = "flight recorder holds no epochs";
    return false;
  }
  const Epoch &Front = Epochs.front();
  if (!Front.IsAnchor) {
    Error = "flight window front is not an anchor (GC invariant violated)";
    return false;
  }

  Out = Pinball();
  Out.ProgramText = M.program().SourceText;
  Out.StartState = Front.Full;

  // Rebuild the global schedule from the per-thread rings: each run carries
  // the Seq of the thread switch that started it; an epoch boundary splits
  // a run into equal-Seq pieces whose epoch order restores chronology.
  struct Piece {
    uint64_t Seq;
    uint64_t Order;
    uint32_t Tid;
    uint64_t Count;
  };
  std::vector<Piece> Pieces;
  uint64_t Order = 0;
  for (const Epoch &E : Epochs)
    for (const auto &[Tid, Ring] : E.Rings)
      for (const ThreadRun &Run : Ring.Runs)
        Pieces.push_back({Run.Seq, Order++, Tid, Run.Count});
  std::sort(Pieces.begin(), Pieces.end(), [](const Piece &A, const Piece &B) {
    return A.Seq != B.Seq ? A.Seq < B.Seq : A.Order < B.Order;
  });
  for (const Piece &P : Pieces) {
    if (!Out.Schedule.empty() &&
        Out.Schedule.back().K == ScheduleEvent::Kind::Step &&
        Out.Schedule.back().Tid == P.Tid) {
      Out.Schedule.back().Count += P.Count;
    } else {
      ScheduleEvent Ev;
      Ev.K = ScheduleEvent::Kind::Step;
      Ev.Tid = P.Tid;
      Ev.Count = P.Count;
      Out.Schedule.push_back(Ev);
    }
  }

  // Syscall values: replay consumes them as per-thread FIFOs, so epoch-order
  // concatenation per thread is exactly the recorded order.
  for (const Epoch &E : Epochs)
    for (const auto &[Tid, Ring] : E.Rings)
      Out.Syscalls.insert(Out.Syscalls.end(), Ring.Syscalls.begin(),
                          Ring.Syscalls.end());

  uint64_t Instrs = Position - Front.StartPos;
  if (Out.instructionCount() != Instrs) {
    Error = "flight dump schedule covers " +
            std::to_string(Out.instructionCount()) + " instructions, window " +
            std::to_string(Instrs);
    return false;
  }

  // The same drift anchors a conventionally logged region pinball carries,
  // so the replayer's end-state checks apply to dumps unchanged.
  Out.Meta["kind"] = "region";
  Out.Meta["instrs"] = std::to_string(Instrs);
  std::ostringstream EndPcs;
  for (uint32_t T = 0; T != M.numThreads(); ++T) {
    if (T)
      EndPcs << " ";
    EndPcs << T << ":" << M.thread(T).Pc;
  }
  Out.Meta["endpcs"] = EndPcs.str();
  Out.Meta["flight"] = "1";
  Out.Meta["flight_window_start"] = std::to_string(Front.StartPos);
  Out.Meta["flight_epochs"] = std::to_string(Epochs.size());
  if (M.assertFailed()) {
    Out.Meta["failtid"] = std::to_string(M.failedTid());
    Out.Meta["failpc"] = std::to_string(M.failedPc());
  }

  ++Dumps;
  FlightMetrics &FM = FlightMetrics::get();
  FM.Dumps.inc();
  FM.DumpLatency.record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count()));
  return true;
}

bool FlightRecorder::dumpTo(const std::string &Dir, Pinball &Out,
                            std::string &Error) {
  if (!dump(Out, Error))
    return false;
  return Out.save(Dir, Error);
}
