//===- replay/repository.h - Shared pinball repository ----------*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of loaded pinballs, keyed by directory path. When N
/// debug sessions replay the same recording (the common cyclic-debugging
/// pattern the server is built for), the directory is read and parsed once;
/// later loads are served from memory. Entries are invalidated when any of
/// the pinball's files changes size or mtime, so re-recording into the same
/// directory is picked up transparently. Thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_REPOSITORY_H
#define DRDEBUG_REPLAY_REPOSITORY_H

#include "replay/pinball.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace drdebug {

/// A thread-safe cache of parsed pinballs with mtime/size invalidation.
class PinballRepository {
public:
  /// Loads the pinball saved in \p Dir, from cache when fresh. \returns null
  /// (with \p Error set) when the directory cannot be read, fails integrity
  /// verification, or cannot be parsed. \p Info (optional) receives the
  /// integrity metadata — cached along with the pinball, so a cache hit
  /// reports the same legacy-pinball warning the original load did.
  std::shared_ptr<const Pinball> load(const std::string &Dir,
                                      std::string &Error,
                                      PinballIntegrity *Info = nullptr);

  /// Disables (or re-enables) manifest verification for subsequent loads —
  /// the repository-level `--no-verify` switch.
  void setVerify(bool On) { Verify.store(On, std::memory_order_relaxed); }
  bool verifying() const { return Verify.load(std::memory_order_relaxed); }

  /// Drops every cached entry (the next load of each dir re-reads disk).
  void clear();

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  /// Loads rejected because manifest verification caught a bad file.
  uint64_t integrityFailures() const {
    return IntegrityFailures.load(std::memory_order_relaxed);
  }
  size_t cachedCount() const;

  /// A fingerprint of the pinball files in \p Dir (sizes + mtimes).
  /// \returns 0 when the directory holds no readable pinball files.
  static uint64_t dirFingerprint(const std::string &Dir);

private:
  struct Entry {
    uint64_t Fingerprint = 0;
    std::shared_ptr<const Pinball> Pb;
    PinballIntegrity Integrity;
  };

  mutable std::mutex Mu;
  std::map<std::string, Entry> Cache;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> IntegrityFailures{0};
  std::atomic<bool> Verify{true};
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_REPOSITORY_H
