//===- replay/relogger.h - Exclusion relogging (slice pinballs) -*- C++ -*-===//
//
// Part of the DrDebug reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relogger re-runs a region pinball while *excluding* per-thread code
/// regions (everything not in an execution slice), detecting each excluded
/// region's side effects the way PinPlay detects system-call side effects,
/// and emits a new, smaller "slice pinball" whose schedule only steps the
/// included instructions and whose Inject events restore the skipped
/// regions' net memory/register effects at the right points in the global
/// order (paper §4, Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef DRDEBUG_REPLAY_RELOGGER_H
#define DRDEBUG_REPLAY_RELOGGER_H

#include "replay/pinball.h"

#include <string>
#include <vector>

namespace drdebug {

/// A per-thread range of dynamic instructions to exclude from replay.
/// Operationally the range is [BeginIndex, EndIndex) in the thread's
/// absolute dynamic instruction count; the pc:instance fields mirror the
/// paper's [startPc:sinstance:tid, endPc:einstance:tid) notation and are
/// carried for slice files and display.
struct ExclusionRegion {
  uint32_t Tid = 0;
  uint64_t BeginIndex = 0;
  uint64_t EndIndex = ~0ULL; ///< ~0 = to the end of the thread/region
  // Descriptive pc:instance form (informational).
  uint64_t StartPc = 0;
  uint64_t StartInstance = 0;
  uint64_t EndPc = 0;
  uint64_t EndInstance = 0;
};

/// Produces slice pinballs by relogging region pinballs with exclusions.
class Relogger {
public:
  /// Replays \p RegionPb, skipping the instructions covered by \p Excl
  /// (recording their side effects as injections), and fills \p Out with
  /// the resulting slice pinball.
  /// \returns false (with \p Error set) if \p RegionPb cannot be replayed.
  static bool relog(const Pinball &RegionPb,
                    const std::vector<ExclusionRegion> &Excl, Pinball &Out,
                    std::string &Error);
};

} // namespace drdebug

#endif // DRDEBUG_REPLAY_RELOGGER_H
